// Package ue implements the device side of mobility management: the
// measurement engine that evaluates configured 3GPP events (Table 4)
// against serving/neighbour signal strength with hysteresis and
// time-to-trigger, and emits measurement reports (step 2–3 of Fig. 1).
package ue

import (
	"fmt"
	"time"

	"repro/internal/cellular"
)

// Meas is one technology layer's instantaneous measurement input to the
// engine: the serving cell of that layer and the best neighbour.
type Meas struct {
	Valid        bool
	ServingPCI   cellular.PCI
	ServingRSRP  float64
	ServingRRS   cellular.RRS
	NeighborPCI  cellular.PCI
	NeighborRSRP float64
	// NeighborValid reports whether any neighbour was observed.
	NeighborValid bool
}

// Input is the full per-tick measurement context.
type Input struct {
	Time time.Duration
	// LTE is the LTE-layer measurement (anchor in NSA, serving in LTE-only).
	LTE Meas
	// NR is the NR-layer measurement of the *attached* NR cell (invalid when
	// no 5G leg is attached).
	NR Meas
	// NRCandidate is the best detectable NR cell regardless of attachment,
	// used by inter-RAT events (B1) to discover 5G coverage.
	NRCandidate Meas
}

// eventState tracks TTT progress for one configured event.
type eventState struct {
	cfg     cellular.EventConfig
	heldFor time.Duration
	// reports is the number of reports emitted for the current entry;
	// sinceReport tracks the periodic re-reporting interval.
	reports     int
	sinceReport time.Duration
}

// MeasurementEngine evaluates event configurations over time. It is not
// safe for concurrent use; the simulator owns one engine per UE.
type MeasurementEngine struct {
	states []eventState
}

// NewMeasurementEngine creates an engine for the given configurations.
func NewMeasurementEngine(configs []cellular.EventConfig) (*MeasurementEngine, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("ue: measurement engine needs at least one event config")
	}
	states := make([]eventState, len(configs))
	for i, c := range configs {
		states[i] = eventState{cfg: c}
	}
	return &MeasurementEngine{states: states}, nil
}

// Reconfigure replaces the event configurations (step 1 of Fig. 1, issued by
// a new serving cell after handover). TTT state is reset.
func (e *MeasurementEngine) Reconfigure(configs []cellular.EventConfig) {
	states := make([]eventState, len(configs))
	for i, c := range configs {
		states[i] = eventState{cfg: c}
	}
	e.states = states
}

// ResetEvent clears the TTT/report state for all events of the given type
// and technology, typically after the network acted on the report.
func (e *MeasurementEngine) ResetEvent(t cellular.EventType, tech cellular.Tech) {
	for i := range e.states {
		if e.states[i].cfg.Type == t && e.states[i].cfg.Tech == tech {
			e.states[i].heldFor = 0
			e.states[i].reports = 0
			e.states[i].sinceReport = 0
		}
	}
}

// measFor selects the measurement context an event config evaluates
// against.
func measFor(cfg cellular.EventConfig, in Input) (serving, neighbor float64, servingPCI, neighborPCI cellular.PCI, rrs cellular.RRS, ok bool) {
	switch {
	case cfg.Type == cellular.EventB1:
		// Inter-RAT: serving is the LTE anchor, neighbour is the best NR
		// candidate (attached or not).
		if !in.LTE.Valid || !in.NRCandidate.Valid {
			return 0, 0, 0, 0, cellular.RRS{}, false
		}
		return in.LTE.ServingRSRP, in.NRCandidate.ServingRSRP, in.LTE.ServingPCI, in.NRCandidate.ServingPCI, in.LTE.ServingRRS, true
	case cfg.Tech == cellular.TechNR:
		m := in.NR
		if !m.Valid {
			return 0, 0, 0, 0, cellular.RRS{}, false
		}
		n := m.NeighborRSRP
		np := m.NeighborPCI
		if !m.NeighborValid {
			n = -200
			np = 0
		}
		return m.ServingRSRP, n, m.ServingPCI, np, m.ServingRRS, true
	default:
		m := in.LTE
		if !m.Valid {
			return 0, 0, 0, 0, cellular.RRS{}, false
		}
		n := m.NeighborRSRP
		np := m.NeighborPCI
		if !m.NeighborValid {
			n = -200
			np = 0
		}
		return m.ServingRSRP, n, m.ServingPCI, np, m.ServingRRS, true
	}
}

// Tick advances the engine by dt with the given measurements and returns any
// measurement reports raised this tick. An event reports when its entering
// condition has held for TTT, then re-reports every ReportInterval (up to
// ReportAmount times) while the condition persists — 3GPP event-triggered
// periodic reporting. State resets when the condition clears.
func (e *MeasurementEngine) Tick(in Input, dt time.Duration) []cellular.MeasurementReport {
	var out []cellular.MeasurementReport
	for i := range e.states {
		st := &e.states[i]
		serving, neighbor, spci, npci, rrs, ok := measFor(st.cfg, in)
		if !ok {
			st.heldFor = 0
			st.reports = 0
			st.sinceReport = 0
			continue
		}
		if !st.cfg.Entering(serving, neighbor) {
			st.heldFor = 0
			st.reports = 0
			st.sinceReport = 0
			continue
		}
		st.heldFor += dt
		if st.heldFor < st.cfg.TTT {
			continue
		}
		fire := false
		switch {
		case st.reports == 0:
			fire = true
		case st.cfg.ReportInterval > 0 && (st.cfg.ReportAmount == 0 || st.reports < st.cfg.ReportAmount):
			st.sinceReport += dt
			if st.sinceReport >= st.cfg.ReportInterval {
				fire = true
			}
		}
		if !fire {
			continue
		}
		st.reports++
		st.sinceReport = 0
		out = append(out, cellular.MeasurementReport{
			Time:         in.Time,
			Event:        st.cfg.Type,
			Tech:         st.cfg.Tech,
			ServingPCI:   spci,
			NeighborPCI:  npci,
			ServingRSRP:  serving,
			NeighborRSRP: neighbor,
			Serving:      rrs,
		})
	}
	return out
}

// Configs returns the currently active event configurations.
func (e *MeasurementEngine) Configs() []cellular.EventConfig {
	out := make([]cellular.EventConfig, len(e.states))
	for i, s := range e.states {
		out[i] = s.cfg
	}
	return out
}
