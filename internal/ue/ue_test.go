package ue

import (
	"testing"
	"time"

	"repro/internal/cellular"
)

func lteInput(t time.Duration, serving, neighbor float64) Input {
	return Input{
		Time: t,
		LTE: Meas{
			Valid: true, ServingPCI: 1, ServingRSRP: serving,
			NeighborValid: true, NeighborPCI: 2, NeighborRSRP: neighbor,
		},
	}
}

func TestEngineRequiresConfigs(t *testing.T) {
	if _, err := NewMeasurementEngine(nil); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestTTTGatesReporting(t *testing.T) {
	cfg := cellular.EventConfig{Type: cellular.EventA3, Tech: cellular.TechLTE, Offset: 3, TTT: 200 * time.Millisecond}
	e, err := NewMeasurementEngine([]cellular.EventConfig{cfg})
	if err != nil {
		t.Fatal(err)
	}
	dt := 50 * time.Millisecond
	now := time.Duration(0)
	var fired []time.Duration
	for i := 0; i < 10; i++ {
		for _, mr := range e.Tick(lteInput(now, -100, -90), dt) {
			fired = append(fired, mr.Time)
			if mr.Event != cellular.EventA3 || mr.NeighborPCI != 2 {
				t.Fatalf("unexpected report %+v", mr)
			}
		}
		now += dt
	}
	if len(fired) != 1 {
		t.Fatalf("report-on-enter fired %d times, want 1", len(fired))
	}
	// Condition held from t=0; TTT=200ms at 50ms ticks → report on the
	// 4th tick (t=150ms input, heldFor reaches 200ms).
	if fired[0] != 150*time.Millisecond {
		t.Errorf("fired at %v", fired[0])
	}
}

func TestTTTResetsWhenConditionClears(t *testing.T) {
	cfg := cellular.EventConfig{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: -100, TTT: 150 * time.Millisecond}
	e, _ := NewMeasurementEngine([]cellular.EventConfig{cfg})
	dt := 50 * time.Millisecond
	// Two ticks in condition, one out, then back in: TTT must restart.
	seq := []float64{-105, -105, -90, -105, -105, -105}
	count := 0
	for i, rsrp := range seq {
		in := Input{Time: time.Duration(i) * dt, LTE: Meas{Valid: true, ServingPCI: 1, ServingRSRP: rsrp}}
		count += len(e.Tick(in, dt))
	}
	if count != 1 {
		t.Fatalf("got %d reports, want exactly 1 (after the re-entry completes TTT)", count)
	}
}

func TestPeriodicReReporting(t *testing.T) {
	cfg := cellular.EventConfig{
		Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: -100,
		TTT: 50 * time.Millisecond, ReportInterval: 200 * time.Millisecond, ReportAmount: 3,
	}
	e, _ := NewMeasurementEngine([]cellular.EventConfig{cfg})
	dt := 50 * time.Millisecond
	count := 0
	for i := 0; i < 40; i++ {
		in := Input{Time: time.Duration(i) * dt, LTE: Meas{Valid: true, ServingPCI: 1, ServingRSRP: -110}}
		count += len(e.Tick(in, dt))
	}
	if count != 3 {
		t.Fatalf("got %d reports, want 3 (ReportAmount cap)", count)
	}
}

func TestB1UsesNRCandidate(t *testing.T) {
	cfg := cellular.EventConfig{Type: cellular.EventB1, Tech: cellular.TechNR, Threshold1: -104, TTT: 50 * time.Millisecond}
	e, _ := NewMeasurementEngine([]cellular.EventConfig{cfg})
	in := Input{
		Time:        0,
		LTE:         Meas{Valid: true, ServingPCI: 3, ServingRSRP: -95},
		NRCandidate: Meas{Valid: true, ServingPCI: 700, ServingRSRP: -98},
	}
	var got []cellular.MeasurementReport
	for i := 0; i < 4; i++ {
		in.Time = time.Duration(i) * 50 * time.Millisecond
		got = append(got, e.Tick(in, 50*time.Millisecond)...)
	}
	if len(got) != 1 {
		t.Fatalf("B1 fired %d times", len(got))
	}
	if got[0].NeighborPCI != 700 || got[0].ServingPCI != 3 {
		t.Errorf("B1 report %+v: serving must be the LTE anchor, neighbour the NR candidate", got[0])
	}
	// Without an NR candidate the event must not evaluate.
	e.ResetEvent(cellular.EventB1, cellular.TechNR)
	in2 := Input{Time: time.Second, LTE: Meas{Valid: true, ServingPCI: 3, ServingRSRP: -95}}
	for i := 0; i < 4; i++ {
		in2.Time += 50 * time.Millisecond
		if rs := e.Tick(in2, 50*time.Millisecond); len(rs) != 0 {
			t.Fatal("B1 fired without a candidate")
		}
	}
}

func TestNREventsNeedNRLeg(t *testing.T) {
	cfg := cellular.EventConfig{Type: cellular.EventA2, Tech: cellular.TechNR, Threshold1: -110, TTT: 50 * time.Millisecond}
	e, _ := NewMeasurementEngine([]cellular.EventConfig{cfg})
	in := Input{Time: 0, LTE: Meas{Valid: true, ServingPCI: 1, ServingRSRP: -120}}
	for i := 0; i < 4; i++ {
		in.Time = time.Duration(i) * 50 * time.Millisecond
		if rs := e.Tick(in, 50*time.Millisecond); len(rs) != 0 {
			t.Fatal("NR-A2 fired without an NR leg")
		}
	}
}

func TestReconfigureResetsState(t *testing.T) {
	cfg := cellular.EventConfig{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: -100, TTT: 100 * time.Millisecond}
	e, _ := NewMeasurementEngine([]cellular.EventConfig{cfg})
	dt := 50 * time.Millisecond
	in := Input{LTE: Meas{Valid: true, ServingPCI: 1, ServingRSRP: -110}}
	e.Tick(in, dt)
	e.Reconfigure([]cellular.EventConfig{cfg})
	// After reconfigure the TTT restarts: two more ticks to fire.
	if rs := e.Tick(in, dt); len(rs) != 0 {
		t.Fatal("fired immediately after reconfigure")
	}
	if rs := e.Tick(in, dt); len(rs) != 1 {
		t.Fatal("did not fire after full TTT post-reconfigure")
	}
	if got := len(e.Configs()); got != 1 {
		t.Errorf("Configs() returned %d", got)
	}
}
