package policygen

import (
	"fmt"
	"math/rand"
	"time"
)

// AdaptiveSpec is the policy-as-data description of a carrier's
// prediction-driven adaptive handover controls (ROADMAP item 3 / the
// paper's §7 "predictive preparation" and "skip-ahead" extension hooks).
// Like the event tables, it is pure data: internal/ran compiles it into a
// live ran.AdaptiveConfig, and a nil spec means the carrier runs its
// mobility management statically. All three controls are independently
// switchable so ablations can isolate each mechanism.
type AdaptiveSpec struct {
	// EarlyPrep starts handover preparation when a confident prediction of
	// the handover stands before the triggering report fires, crediting the
	// already-elapsed warning time against the preparation stage (T1) and —
	// because the target comes pre-configured, as in conditional handover —
	// part of the execution stage (T2).
	EarlyPrep bool
	// SkipAhead jumps directly to the predicted final cell of a handover
	// chain: SCG target selection picks the strongest adequate cell rather
	// than the first adequate one, eliminating the follow-up intra-band hop
	// the §6.2 "independent release/add legs" behaviour otherwise causes.
	SkipAhead bool
	// AdaptTTT tightens or relaxes the UE's TTT/hysteresis per-UE from
	// recent prediction reliability and observed ping-pong, within the
	// 3GPP-enumerated value sets.
	AdaptTTT bool

	// MinConfidence gates all three controls: a forecast only arms when
	// similarity × pattern reliability reaches this bar.
	MinConfidence float64
	// PrepCapS caps the preparation credit (seconds of standing forecast
	// that count against T1); ExecCredit is the fraction of T2 a fully
	// prepared target saves (0..0.8).
	PrepCapS   float64
	ExecCredit float64

	// RelaxTTTScale / RelaxHysteresisDB are applied per relax step when
	// ping-pong is observed (TTT multiplied, hysteresis added);
	// TightenTTTScale / TightenHysteresisDB when predictions are reliably
	// confirmed and the drive is ping-pong-free.
	RelaxTTTScale       float64
	RelaxHysteresisDB   float64
	TightenTTTScale     float64
	TightenHysteresisDB float64

	// PingPongWindowS is the critical time (seconds) within which an A→B,
	// B→A pair counts as a ping-pong; CalmAfterS how long without one before
	// a relax step is unwound; ReconfMinGapS the minimum spacing between
	// measurement reconfigurations (each reset costs TTT state).
	PingPongWindowS float64
	CalmAfterS      float64
	ReconfMinGapS   float64
}

// DefaultAdaptiveSpec returns the reference adaptive policy: all three
// controls on, with the parameters the holoop gate runs under. Tightening
// is neutral (scale 1, delta 0) by default: ablations showed shrinking TTT
// on reliable forecasts buys little throughput but reliably *adds*
// ping-pongs, defeating the loop's primary goal — opt into it per
// portfolio instead.
func DefaultAdaptiveSpec() AdaptiveSpec {
	return AdaptiveSpec{
		EarlyPrep:           true,
		SkipAhead:           true,
		AdaptTTT:            true,
		MinConfidence:       0.4,
		PrepCapS:            2.0,
		ExecCredit:          0.4,
		RelaxTTTScale:       3.0,
		RelaxHysteresisDB:   2.0,
		TightenTTTScale:     1.0,
		TightenHysteresisDB: 0.0,
		PingPongWindowS:     5.0,
		CalmAfterS:          30.0,
		ReconfMinGapS:       2.0,
	}
}

// Enabled reports whether any control is switched on.
func (s *AdaptiveSpec) Enabled() bool {
	return s != nil && (s.EarlyPrep || s.SkipAhead || s.AdaptTTT)
}

// Validate checks the spec for plausibility: confidences and credits are
// fractions, relax scales relax (≥1), tighten scales tighten (0<x≤1), and
// the timing knobs are non-negative.
func (s *AdaptiveSpec) Validate() error {
	if s == nil {
		return nil
	}
	if s.MinConfidence < 0 || s.MinConfidence > 1 {
		return fmt.Errorf("adaptive: min confidence %.2f outside [0, 1]", s.MinConfidence)
	}
	if s.PrepCapS < 0 {
		return fmt.Errorf("adaptive: negative prep cap")
	}
	if s.ExecCredit < 0 || s.ExecCredit > 0.8 {
		return fmt.Errorf("adaptive: exec credit %.2f outside [0, 0.8]", s.ExecCredit)
	}
	if s.RelaxTTTScale < 1 {
		return fmt.Errorf("adaptive: relax TTT scale %.2f < 1", s.RelaxTTTScale)
	}
	if s.RelaxHysteresisDB < 0 || s.RelaxHysteresisDB > MaxHysteresisDB {
		return fmt.Errorf("adaptive: relax hysteresis %.1f dB outside [0, %.0f]", s.RelaxHysteresisDB, MaxHysteresisDB)
	}
	if s.TightenTTTScale <= 0 || s.TightenTTTScale > 1 {
		return fmt.Errorf("adaptive: tighten TTT scale %.2f outside (0, 1]", s.TightenTTTScale)
	}
	if s.TightenHysteresisDB < 0 || s.TightenHysteresisDB > MaxHysteresisDB {
		return fmt.Errorf("adaptive: tighten hysteresis %.1f dB outside [0, %.0f]", s.TightenHysteresisDB, MaxHysteresisDB)
	}
	if s.PingPongWindowS < 0 || s.CalmAfterS < 0 || s.ReconfMinGapS < 0 {
		return fmt.Errorf("adaptive: negative timing parameter")
	}
	return nil
}

// adaptiveSalt decorrelates adaptive-spec sampling from portfolio sampling
// (both are pure functions of (seed, index)).
const adaptiveSalt = 0x4ad4_97e5

// GenerateAdaptive samples the i-th adaptive spec of the seed's population:
// a randomized-but-valid configuration of the three controls, for fuzzing
// the closed loop the way Generate fuzzes static policy. Sampling draws
// from its own salted stream, so attaching a spec to a generated portfolio
// never perturbs the portfolio bytes existing sweeps pin.
func GenerateAdaptive(seed int64, i int) AdaptiveSpec {
	r := rand.New(rand.NewSource(mix(seed, i) ^ adaptiveSalt))
	s := DefaultAdaptiveSpec()
	s.EarlyPrep = r.Float64() < 0.8
	s.SkipAhead = r.Float64() < 0.8
	s.AdaptTTT = r.Float64() < 0.8
	if !s.Enabled() {
		// A fully-off spec is valid but uninteresting for fuzzing; keep at
		// least the TTT loop alive.
		s.AdaptTTT = true
	}
	s.MinConfidence = 0.3 + 0.4*r.Float64()
	s.PrepCapS = 0.5 + 2.5*r.Float64()
	s.ExecCredit = 0.2 + 0.4*r.Float64()
	s.RelaxTTTScale = 1.5 + r.Float64()
	s.RelaxHysteresisDB = 0.5 + r.Float64()
	s.TightenTTTScale = 0.4 + 0.4*r.Float64()
	s.TightenHysteresisDB = 0.5 * r.Float64()
	s.PingPongWindowS = 3 + 4*r.Float64()
	s.CalmAfterS = 20 + 20*r.Float64()
	s.ReconfMinGapS = 1 + 3*r.Float64()
	return s
}

// QuantizeTTT snaps a duration to the nearest 3GPP-enumerated
// time-to-trigger (ties toward the smaller value; out-of-range values clamp
// to the enumeration's ends).
func QuantizeTTT(d time.Duration) time.Duration {
	best := tttSet[0]
	bestDiff := time.Duration(1<<63 - 1)
	for _, v := range tttSet {
		diff := v - d
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			best = v
		}
	}
	return best
}

// ScaleTTT scales a TTT and snaps the result back into the 3GPP
// enumeration, guaranteeing the move is effective: scaling up always lands
// strictly above the input (until the enumeration's top), scaling down
// strictly below it (until 0). A scale of 1 returns the input unchanged.
func ScaleTTT(d time.Duration, scale float64) time.Duration {
	if scale == 1 {
		return d
	}
	q := QuantizeTTT(time.Duration(float64(d) * scale))
	if scale > 1 && q <= d {
		return nextTTTAbove(d)
	}
	if scale < 1 && q >= d {
		return nextTTTBelow(d)
	}
	return q
}

// nextTTTAbove returns the smallest enumerated TTT strictly above d (d
// itself when d is already the top).
func nextTTTAbove(d time.Duration) time.Duration {
	for _, v := range tttSet {
		if v > d {
			return v
		}
	}
	return tttSet[len(tttSet)-1]
}

// nextTTTBelow returns the largest enumerated TTT strictly below d (0 when
// none is).
func nextTTTBelow(d time.Duration) time.Duration {
	out := tttSet[0]
	for _, v := range tttSet {
		if v < d {
			out = v
		}
	}
	return out
}
