package policygen

import (
	"reflect"
	"testing"
	"time"
)

func TestDefaultAdaptiveSpecValid(t *testing.T) {
	s := DefaultAdaptiveSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if !s.Enabled() {
		t.Fatal("default spec disabled")
	}
	// The default tighten stance is neutral by design (ablations showed an
	// aggressive tighten adds ping-pongs); pin it so a retune is deliberate.
	if s.TightenTTTScale != 1 || s.TightenHysteresisDB != 0 {
		t.Errorf("default tighten stance not neutral: scale=%v delta=%v",
			s.TightenTTTScale, s.TightenHysteresisDB)
	}
}

func TestAdaptiveSpecEnabled(t *testing.T) {
	var nilSpec *AdaptiveSpec
	if nilSpec.Enabled() {
		t.Error("nil spec enabled")
	}
	off := AdaptiveSpec{}
	if off.Enabled() {
		t.Error("zero spec enabled")
	}
	one := AdaptiveSpec{SkipAhead: true}
	if !one.Enabled() {
		t.Error("single-control spec disabled")
	}
}

func TestAdaptiveSpecValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*AdaptiveSpec)
	}{
		{"confidence above 1", func(s *AdaptiveSpec) { s.MinConfidence = 1.5 }},
		{"negative prep cap", func(s *AdaptiveSpec) { s.PrepCapS = -1 }},
		{"exec credit above 0.8", func(s *AdaptiveSpec) { s.ExecCredit = 0.9 }},
		{"relax scale below 1", func(s *AdaptiveSpec) { s.RelaxTTTScale = 0.9 }},
		{"relax hysteresis above max", func(s *AdaptiveSpec) { s.RelaxHysteresisDB = MaxHysteresisDB + 1 }},
		{"tighten scale zero", func(s *AdaptiveSpec) { s.TightenTTTScale = 0 }},
		{"tighten scale above 1", func(s *AdaptiveSpec) { s.TightenTTTScale = 1.2 }},
		{"negative calm window", func(s *AdaptiveSpec) { s.CalmAfterS = -5 }},
	}
	for _, m := range mutations {
		s := DefaultAdaptiveSpec()
		m.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", m.name)
		}
	}
}

// TestPortfolioValidateChecksAdaptive pins that an attached adaptive spec is
// part of the portfolio's validity contract.
func TestPortfolioValidateChecksAdaptive(t *testing.T) {
	p := Generate(7, 0)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated portfolio invalid: %v", err)
	}
	bad := DefaultAdaptiveSpec()
	bad.ExecCredit = 2
	p.Adaptive = &bad
	if err := p.Validate(); err == nil {
		t.Error("portfolio with invalid adaptive spec validated")
	}
	good := DefaultAdaptiveSpec()
	p.Adaptive = &good
	if err := p.Validate(); err != nil {
		t.Errorf("portfolio with default adaptive spec rejected: %v", err)
	}
}

// TestGenerateAdaptive pins the fuzzing sampler: deterministic in
// (seed, index), always valid, always enabled, and decorrelated from the
// static portfolio stream (attaching a spec never perturbs portfolio bytes).
func TestGenerateAdaptive(t *testing.T) {
	for i := 0; i < 50; i++ {
		s := GenerateAdaptive(42, i)
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		if !s.Enabled() {
			t.Fatalf("spec %d fully disabled", i)
		}
	}
	a, b := GenerateAdaptive(42, 3), GenerateAdaptive(42, 3)
	if !reflect.DeepEqual(a, b) {
		t.Error("GenerateAdaptive not deterministic")
	}
	if reflect.DeepEqual(GenerateAdaptive(42, 3), GenerateAdaptive(43, 3)) {
		t.Error("GenerateAdaptive ignores the seed")
	}
	p1, p2 := Generate(42, 3), Generate(42, 3)
	p2.Adaptive = &a
	p2.Adaptive = nil
	if !reflect.DeepEqual(p1, p2) {
		t.Error("attaching an adaptive spec perturbed the portfolio")
	}
}

func TestQuantizeTTT(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{0, 0},
		{-time.Second, 0},
		{39 * time.Millisecond, 40 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond},
		{110 * time.Millisecond, 100 * time.Millisecond},
		{10 * time.Second, 5120 * time.Millisecond},
	}
	for _, c := range cases {
		if got := QuantizeTTT(c.in); got != c.want {
			t.Errorf("QuantizeTTT(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestScaleTTT pins the effectiveness guarantee: scaling up lands strictly
// above the input (until the top of the enumeration), scaling down strictly
// below (until 0), and the result is always enumerated.
func TestScaleTTT(t *testing.T) {
	for _, base := range []time.Duration{0, 40 * time.Millisecond, 160 * time.Millisecond, 1024 * time.Millisecond, 5120 * time.Millisecond} {
		up := ScaleTTT(base, 1.1)
		if !ValidTTT(up) {
			t.Errorf("ScaleTTT(%v, 1.1) = %v not enumerated", base, up)
		}
		if base != 5120*time.Millisecond && up <= base {
			t.Errorf("ScaleTTT(%v, 1.1) = %v did not grow", base, up)
		}
		down := ScaleTTT(base, 0.9)
		if !ValidTTT(down) {
			t.Errorf("ScaleTTT(%v, 0.9) = %v not enumerated", base, down)
		}
		if base != 0 && down >= base {
			t.Errorf("ScaleTTT(%v, 0.9) = %v did not shrink", base, down)
		}
		if got := ScaleTTT(base, 1); got != base {
			t.Errorf("ScaleTTT(%v, 1) = %v changed the input", base, got)
		}
	}
}
