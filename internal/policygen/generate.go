package policygen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cellular"
	"repro/internal/topology"
)

// Sampling ranges for generated portfolios, anchored to the spreads the
// diversity study reports across commercial networks: thresholds and
// offsets cluster in narrow per-event bands, TTT and hysteresis come from
// the 3GPP enumerations, and report cadences sit in the hundreds of
// milliseconds. Values are sampled, not enumerated verbatim, so hundreds
// of carriers stay distinguishable.
var (
	// genTTT is the operational slice of the 3GPP TTT enumeration (the
	// study finds 0 and multi-second values rare in drive conditions).
	genTTT = []time.Duration{
		80 * time.Millisecond,
		100 * time.Millisecond,
		128 * time.Millisecond,
		160 * time.Millisecond,
		256 * time.Millisecond,
		320 * time.Millisecond,
		480 * time.Millisecond,
		640 * time.Millisecond,
	}
	// genHyst: 3GPP hysteresis steps are 0.5 dB; operational configs stay
	// in the low single digits.
	genHyst = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	// genA3Offset: a3-Offset values seen in the wild (dB).
	genA3Offset = []float64{1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0}
	// genReportInterval: 3GPP ReportInterval enumeration slice.
	genReportInterval = []time.Duration{
		240 * time.Millisecond,
		480 * time.Millisecond,
		640 * time.Millisecond,
		1024 * time.Millisecond,
	}
	// genReportAmount: 3GPP ReportAmount enumeration (r1..r64, infinity
	// mapped to a large finite cap by the measurement engine).
	genReportAmount = []int{2, 4, 8, 16, 32}
)

// Continuous threshold spreads (dBm). Continuous sampling makes two
// independently drawn portfolios differ almost surely, which the drift
// property tests rely on.
const (
	genA2LTELo, genA2LTEHi   = -108.0, -96.0
	genA5Phi1Lo, genA5Phi1Hi = -106.0, -98.0
	genA2NRLo, genA2NRHi     = -120.0, -108.0
	genB1NRLo, genB1NRHi     = -112.0, -100.0
)

// mix hashes (seed, index) into one 64-bit RNG seed, splitmix64-style.
// Each generated portfolio owns its RNG outright, so sampling is a pure
// function of (seed, index) — independent of generation order, worker
// count, or how many portfolios were drawn before it.
func mix(seed int64, index int) int64 {
	z := uint64(seed) ^ (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// MixSeed exposes the (seed, index) mixer: sweep runners derive per-carrier
// sim seeds from it (with their own salt) so every derived stream shares the
// generator's order- and worker-independence property.
func MixSeed(seed int64, index int) int64 { return mix(seed, index) }

func pickTTT(r *rand.Rand) time.Duration { return genTTT[r.Intn(len(genTTT))] }
func pickHyst(r *rand.Rand) float64      { return genHyst[r.Intn(len(genHyst))] }
func pickInterval(r *rand.Rand) time.Duration {
	return genReportInterval[r.Intn(len(genReportInterval))]
}
func pickAmount(r *rand.Rand) int { return genReportAmount[r.Intn(len(genReportAmount))] }
func uniform(r *rand.Rand, lo, hi float64) float64 {
	// Quantise to 0.1 dB so generated thresholds read like config dumps,
	// while staying effectively continuous for collision purposes.
	v := lo + (hi-lo)*r.Float64()
	return float64(int(v*10)) / 10
}

// GeneratedName returns the canonical name of the i-th generated carrier,
// e.g. "Gen0042". Names depend only on the index, not the seed, so a
// drifted resample keeps its identity.
func GeneratedName(i int) string { return fmt.Sprintf("Gen%04d", i) }

// Generate samples the i-th portfolio of the seed's population. The result
// is a pure function of (seed, i): any worker of any sweep, in any order,
// reconstructs the identical portfolio. Every generated portfolio passes
// Validate by construction (the property tests re-check rather than trust
// this).
func Generate(seed int64, i int) Portfolio {
	r := rand.New(rand.NewSource(mix(seed, i)))
	p := Portfolio{Name: GeneratedName(i)}
	p.Deployment = sampleDeployment(r, p.Name)
	p.Archs = append([]cellular.Arch{}, p.Deployment.Archs...)
	samplePolicy(r, &p)
	return p
}

// samplePolicy fills the event tables and decision sequence from r,
// leaving identity (Name, Archs, Deployment) untouched. Drift reuses it to
// rewrite policy parameters without rebuilding the network.
func samplePolicy(r *rand.Rand, p *Portfolio) {
	// LTE side: A2 (coverage floor) is always configured, as in every
	// observed carrier; the decision event is A3 or A5, weighted toward
	// the A3 family the study finds dominant.
	a2 := cellular.EventConfig{
		Type: cellular.EventA2, Tech: cellular.TechLTE,
		Threshold1: uniform(r, genA2LTELo, genA2LTEHi),
		Hysteresis: pickHyst(r), TTT: pickTTT(r),
		ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
	}
	useA5 := r.Float64() < 0.4
	var decision cellular.EventConfig
	if useA5 {
		phi1 := uniform(r, genA5Phi1Lo, genA5Phi1Hi)
		// Φ2 = Φ1 + a positive gap: the neighbour bar sits above the
		// serving floor by construction, so Threshold1 ≤ Threshold2 always.
		phi2 := phi1 + 1.0 + uniform(r, 0, 3.0)
		decision = cellular.EventConfig{
			Type: cellular.EventA5, Tech: cellular.TechLTE,
			Threshold1: phi1, Threshold2: phi2,
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		}
	} else {
		decision = cellular.EventConfig{
			Type: cellular.EventA3, Tech: cellular.TechLTE,
			Offset:     genA3Offset[r.Intn(len(genA3Offset))],
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		}
	}
	p.LTEEvents = []cellular.EventConfig{a2, decision}
	// The decision sequence is the carrier fingerprint: about 60% of
	// portfolios require the A2 prelude before the decision event (OpX/OpZ
	// style), the rest fire on the decision event alone (OpY style).
	if r.Float64() < 0.6 {
		p.LTESequence = []string{"A2", decision.Type.String()}
	} else {
		p.LTESequence = []string{decision.Type.String()}
	}

	// NR side under NSA: B1 discovery (the mandatory inter-RAT event),
	// NR-A2 (SCG floor) and NR-A3 (SCG mobility) — the trio every NSA
	// portfolio needs for the SCG rule table to be reachable.
	p.NREvents = []cellular.EventConfig{
		{
			Type: cellular.EventB1, Tech: cellular.TechNR,
			Threshold1: uniform(r, genB1NRLo, genB1NRHi),
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		},
		{
			Type: cellular.EventA2, Tech: cellular.TechNR,
			Threshold1: uniform(r, genA2NRLo, genA2NRHi),
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		},
		{
			Type: cellular.EventA3, Tech: cellular.TechNR,
			Offset:     genA3Offset[r.Intn(len(genA3Offset))],
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		},
	}

	// SA: conservative NR A2+A3, sampled whether or not the carrier
	// currently offers SA (a drifted portfolio may not re-roll Archs, and
	// the extra draws keep the RNG stream shape uniform across carriers).
	p.SAEvents = []cellular.EventConfig{
		{
			Type: cellular.EventA2, Tech: cellular.TechNR,
			Threshold1: uniform(r, genA2NRLo, genA2NRHi),
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		},
		{
			Type: cellular.EventA3, Tech: cellular.TechNR,
			Offset:     genA3Offset[r.Intn(len(genA3Offset))],
			Hysteresis: pickHyst(r), TTT: pickTTT(r),
			ReportInterval: pickInterval(r), ReportAmount: pickAmount(r),
		},
	}
}

// sampleDeployment draws a band portfolio and deployment strategy: the LTE
// anchor layers are the common substrate (every US carrier runs a mid+low
// LTE grid), while the NR side varies — low-band is universal, mid-band
// and mmWave are coin flips, and the co-location fraction spans the wide
// spread the paper measures across operators (§6.3).
func sampleDeployment(r *rand.Rand, name string) topology.CarrierProfile {
	jitter := func(base float64) float64 { return base * (0.85 + 0.3*r.Float64()) }
	prof := topology.CarrierProfile{
		Name:  name,
		Archs: []cellular.Arch{cellular.ArchNSA},
		LTELayers: []topology.Layer{
			{Tech: cellular.TechLTE, Band: cellular.BandMid, SpacingM: jitter(topology.SpacingLTEMid), Sectors: 2, TxPowerDBm: 27},
			{Tech: cellular.TechLTE, Band: cellular.BandLow, SpacingM: jitter(topology.SpacingLTELow), Sectors: 2, TxPowerDBm: 24},
		},
	}
	// ~30% of generated carriers also offer SA, mirroring the early-SA
	// minority in the measurement period.
	if r.Float64() < 0.3 {
		prof.Archs = append(prof.Archs, cellular.ArchSA)
	}
	prof.NRLayers = []topology.Layer{
		{Tech: cellular.TechNR, Band: cellular.BandLow, SpacingM: jitter(topology.SpacingNRLow), Sectors: 2, TxPowerDBm: 25, CoLocate: 0.05 + 0.45*r.Float64()},
	}
	if r.Float64() < 0.45 {
		prof.NRLayers = append(prof.NRLayers, topology.Layer{
			Tech: cellular.TechNR, Band: cellular.BandMid, SpacingM: jitter(topology.SpacingNRMid), Sectors: 2, TxPowerDBm: 28, CoLocate: 0.05 + 0.3*r.Float64(),
		})
	}
	if r.Float64() < 0.4 {
		prof.NRLayers = append(prof.NRLayers, topology.Layer{
			Tech: cellular.TechNR, Band: cellular.BandMMWave, SpacingM: jitter(topology.SpacingNRMMWave), Sectors: 3, TxPowerDBm: 36, CoLocate: 0.05,
		})
	}
	return prof
}

// Drifted resamples carrier i's policy parameters under a drift salt,
// modelling the carrier pushing a reconfiguration: identity (Name, Archs,
// Deployment) is preserved from the base portfolio, every tunable
// (thresholds, TTT, hysteresis, offsets, report cadence, decision
// sequence) is redrawn. Like Generate, it is a pure function of
// (seed, i) — the same drift lands on every worker byte-identically.
func Drifted(seed int64, i int) Portfolio {
	base := Generate(seed, i)
	// A distinct stream from Generate's: same (seed, i), different salt.
	r := rand.New(rand.NewSource(mix(mix(seed, i)^0x5bf03635, i)))
	samplePolicy(r, &base)
	return base
}
