package policygen

import (
	"time"

	"repro/internal/cellular"
	"repro/internal/topology"
)

// The named-carrier parameter constants. These are the exact values the
// hand-coded tables in internal/ran used before policies became data;
// ran's golden test pins the generated tables against the originals, so
// changing any of these breaks golden traces on purpose.
const (
	builtinTTT    = 320 * time.Millisecond
	builtinTTTB1  = 480 * time.Millisecond
	builtinHyst   = 2.0
	builtinPeriod = 480 * time.Millisecond
	builtinA2LTE  = -100.0
	builtinA2NR   = -112.0
	builtinB1NR   = -106.0
	builtinA5Phi1 = -101.0
	builtinA5Phi2 = -99.0
)

// builtinLTEA3 is the A2+A3 LTE table used by OpX and unknown carriers.
func builtinLTEA3() []cellular.EventConfig {
	return []cellular.EventConfig{
		{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: builtinA2LTE, Hysteresis: builtinHyst, TTT: builtinTTT, ReportInterval: builtinPeriod, ReportAmount: 4},
		{Type: cellular.EventA3, Tech: cellular.TechLTE, Offset: 3.0, Hysteresis: builtinHyst, TTT: builtinTTT, ReportInterval: builtinPeriod, ReportAmount: 8},
	}
}

// builtinNR is the NSA dual-connectivity NR table shared by all named
// carriers: B1 discovery plus the NR A2/A3 events the SCG rules consume.
func builtinNR() []cellular.EventConfig {
	return []cellular.EventConfig{
		{Type: cellular.EventB1, Tech: cellular.TechNR, Threshold1: builtinB1NR, Hysteresis: builtinHyst, TTT: builtinTTTB1, ReportInterval: builtinPeriod, ReportAmount: 6},
		{Type: cellular.EventA2, Tech: cellular.TechNR, Threshold1: builtinA2NR, Hysteresis: builtinHyst, TTT: builtinTTT, ReportInterval: 320 * time.Millisecond, ReportAmount: 6},
		{Type: cellular.EventA3, Tech: cellular.TechNR, Offset: 3.0, Hysteresis: builtinHyst, TTT: builtinTTT, ReportInterval: builtinPeriod, ReportAmount: 8},
	}
}

// builtinSA is the standalone table, identical across named carriers:
// conservatively configured (larger offset and TTT), per the paper's
// finding that SA handovers are markedly less frequent (§5.1).
func builtinSA() []cellular.EventConfig {
	return []cellular.EventConfig{
		{Type: cellular.EventA2, Tech: cellular.TechNR, Threshold1: builtinA2NR, Hysteresis: builtinHyst, TTT: 480 * time.Millisecond, ReportInterval: builtinPeriod, ReportAmount: 4},
		{Type: cellular.EventA3, Tech: cellular.TechNR, Offset: 5.0, Hysteresis: builtinHyst, TTT: 480 * time.Millisecond, ReportInterval: builtinPeriod, ReportAmount: 8},
	}
}

// OpX returns the OpX-analogue portfolio: NSA only, [A2,A3] LTE decision
// sequence, NR low-band + mmWave deployment.
func OpX() Portfolio {
	return Portfolio{
		Name:        "OpX",
		Archs:       []cellular.Arch{cellular.ArchNSA},
		LTESequence: []string{"A2", "A3"},
		LTEEvents:   builtinLTEA3(),
		NREvents:    builtinNR(),
		SAEvents:    builtinSA(),
		Deployment:  topology.OpX(),
	}
}

// OpY returns the OpY-analogue portfolio: NSA + SA, [A3] decision
// sequence, NR low-band + mid-band deployment.
func OpY() Portfolio {
	return Portfolio{
		Name:        "OpY",
		Archs:       []cellular.Arch{cellular.ArchNSA, cellular.ArchSA},
		LTESequence: []string{"A3"},
		LTEEvents:   builtinLTEA3(),
		NREvents:    builtinNR(),
		SAEvents:    builtinSA(),
		Deployment:  topology.OpY(),
	}
}

// OpZ returns the OpZ-analogue portfolio: NSA only, [A2,A5] decision
// sequence (the only named carrier using A5), NR low-band + mmWave.
func OpZ() Portfolio {
	return Portfolio{
		Name:        "OpZ",
		Archs:       []cellular.Arch{cellular.ArchNSA},
		LTESequence: []string{"A2", "A5"},
		LTEEvents: []cellular.EventConfig{
			{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: builtinA2LTE, Hysteresis: builtinHyst, TTT: builtinTTT, ReportInterval: builtinPeriod, ReportAmount: 4},
			{Type: cellular.EventA5, Tech: cellular.TechLTE, Threshold1: builtinA5Phi1, Threshold2: builtinA5Phi2, Hysteresis: builtinHyst, TTT: builtinTTT, ReportInterval: builtinPeriod, ReportAmount: 8},
		},
		NREvents:   builtinNR(),
		SAEvents:   builtinSA(),
		Deployment: topology.OpZ(),
	}
}

// Builtins returns the three named-carrier portfolios in the paper's order.
func Builtins() []Portfolio {
	return []Portfolio{OpX(), OpY(), OpZ()}
}

// BuiltinOrDefault returns the named portfolio, or the historical
// unknown-carrier fallback: an OpX-style event table with a bare [A3]
// decision sequence. (The fallback deliberately reproduces the pre-refactor
// quirk that an unknown carrier's decision sequence was [A3] while its LTE
// table was OpX's — golden traces depend on it.)
func BuiltinOrDefault(name string) Portfolio {
	switch name {
	case "OpX":
		return OpX()
	case "OpY":
		return OpY()
	case "OpZ":
		return OpZ()
	}
	dep := topology.OpX()
	dep.Name = name
	return Portfolio{
		Name:        name,
		Archs:       []cellular.Arch{cellular.ArchNSA, cellular.ArchSA},
		LTESequence: []string{"A3"},
		LTEEvents:   builtinLTEA3(),
		NREvents:    builtinNR(),
		SAEvents:    builtinSA(),
		Deployment:  dep,
	}
}
