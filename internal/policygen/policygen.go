// Package policygen turns carrier handover policy into data: a Portfolio
// bundles everything that makes one operator's mobility management unique —
// the measurement-event tables pushed to UEs (thresholds, TTT, hysteresis,
// report cadence), the MR sequence its decision logic keys on, the
// architectures it offers, and its deployment strategy (band portfolio,
// co-location fraction). internal/ran constructs its rule engine and event
// configurations from a Portfolio instead of hard-coded tables, so the
// three named carriers of the paper and hundreds of generated synthetic
// ones run through the same machinery.
//
// The Generator samples randomized-but-plausible portfolios from the
// parameter spreads reported for operational networks ("Handover
// Configurations in Operational 5G Networks: Diversity, Evolution, and
// Impact on Performance", PAPERS.md): every threshold, TTT and hysteresis
// lands inside 3GPP-enumerated value sets, and every sampled portfolio is
// self-consistent (A5 thresholds ordered, an inter-RAT event present
// whenever NSA is offered). Sampling is a pure function of (seed, index),
// so a sweep fanned across any number of workers reproduces byte-identical
// portfolios.
//
// A Scenario adds the time axis: a base portfolio plus Drift rewrites that
// replace the active policy at configured sim times mid-drive, modelling a
// carrier reconfiguring its network while an online learner is running —
// the re-convergence stress behind `vivisect sweep -drift`.
package policygen

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/topology"
)

// Portfolio is one carrier's complete mobility-management configuration,
// expressed as data. internal/ran builds its policy rule table and event
// configurations from it; the sweep runner builds the deployment too.
type Portfolio struct {
	// Name labels the carrier, e.g. "OpX" or "Gen0042".
	Name string
	// Archs lists the 5G architectures offered (ArchNSA and/or ArchSA;
	// ArchLTE is always available).
	Archs []cellular.Arch
	// LTESequence is the MR-key suffix the carrier's LTE-anchor mobility
	// logic fires on (oldest first), e.g. ["A2","A5"]. It is the
	// per-carrier fingerprint the decision learner has to discover (§7.1).
	LTESequence []string
	// LTEEvents are the LTE-side measurement configurations pushed to UEs
	// (always configured; NSA adds NREvents on top).
	LTEEvents []cellular.EventConfig
	// NREvents are the NR-side configurations added under NSA dual
	// connectivity: the inter-RAT B1 discovery event plus the NR A2/A3
	// events the SCG management rules consume.
	NREvents []cellular.EventConfig
	// SAEvents are the standalone-mode configurations (used when the UE
	// operates under ArchSA; typically more conservative, §5.1).
	SAEvents []cellular.EventConfig
	// Deployment is the carrier's radio deployment strategy: band
	// portfolio, tower spacing, sectoring and eNB/gNB co-location
	// fraction. The sweep runner generates topologies from it; the named
	// fallback path (ran.PolicyFor on an unknown carrier) never reads it.
	Deployment topology.CarrierProfile
	// Adaptive, when set, enables the carrier's prediction-driven adaptive
	// handover controls (ran.AdaptiveFromPortfolio compiles it); nil means
	// the carrier's mobility management is static.
	Adaptive *AdaptiveSpec
}

// Has reports whether the portfolio offers the given architecture.
func (p *Portfolio) Has(a cellular.Arch) bool {
	if a == cellular.ArchLTE {
		return true
	}
	for _, x := range p.Archs {
		if x == a {
			return true
		}
	}
	return false
}

// SequenceString renders the LTE decision sequence as "A2,A5" for reports.
func (p *Portfolio) SequenceString() string { return strings.Join(p.LTESequence, ",") }

// tttSet is the 3GPP TimeToTrigger enumeration (TS 36.331 / 38.331
// ReportConfig), in milliseconds. Generated and validated portfolios only
// use these values.
var tttSet = []time.Duration{
	0,
	40 * time.Millisecond,
	64 * time.Millisecond,
	80 * time.Millisecond,
	100 * time.Millisecond,
	128 * time.Millisecond,
	160 * time.Millisecond,
	256 * time.Millisecond,
	320 * time.Millisecond,
	480 * time.Millisecond,
	512 * time.Millisecond,
	640 * time.Millisecond,
	1024 * time.Millisecond,
	1280 * time.Millisecond,
	2560 * time.Millisecond,
	5120 * time.Millisecond,
}

// ValidTTT reports whether d is a 3GPP-enumerated time-to-trigger.
func ValidTTT(d time.Duration) bool {
	for _, v := range tttSet {
		if d == v {
			return true
		}
	}
	return false
}

// Plausibility bounds for event parameters, anchored to the spreads the
// diversity study reports across commercial configurations.
const (
	// MinThresholdDBm / MaxThresholdDBm bound RSRP-valued thresholds
	// (A1/A2/A4/A5/B1).
	MinThresholdDBm = -130.0
	MaxThresholdDBm = -60.0
	// MaxHysteresisDB is the top of the 3GPP hysteresis range (0–15 dB in
	// 0.5 dB steps; operational configs stay well below).
	MaxHysteresisDB = 15.0
	// MaxOffsetDB bounds A3 offsets (3GPP a3-Offset spans −15..+15 dB;
	// operational values are small positive numbers).
	MaxOffsetDB = 15.0
)

// validateEvent checks one event configuration for 3GPP plausibility and
// self-consistency.
func validateEvent(c cellular.EventConfig) error {
	if !ValidTTT(c.TTT) {
		return fmt.Errorf("event %s/%s: TTT %v is not a 3GPP-enumerated value", c.Tech, c.Type, c.TTT)
	}
	if c.Hysteresis < 0 || c.Hysteresis > MaxHysteresisDB {
		return fmt.Errorf("event %s/%s: hysteresis %.1f dB outside [0, %.0f]", c.Tech, c.Type, c.Hysteresis, MaxHysteresisDB)
	}
	if c.ReportInterval < 0 {
		return fmt.Errorf("event %s/%s: negative report interval", c.Tech, c.Type)
	}
	if c.ReportAmount < 0 {
		return fmt.Errorf("event %s/%s: negative report amount", c.Tech, c.Type)
	}
	checkThreshold := func(name string, v float64) error {
		if v < MinThresholdDBm || v > MaxThresholdDBm {
			return fmt.Errorf("event %s/%s: %s %.1f dBm outside [%.0f, %.0f]", c.Tech, c.Type, name, v, MinThresholdDBm, MaxThresholdDBm)
		}
		return nil
	}
	switch c.Type {
	case cellular.EventA1, cellular.EventA2, cellular.EventA4, cellular.EventB1:
		if err := checkThreshold("threshold", c.Threshold1); err != nil {
			return err
		}
	case cellular.EventA5:
		if err := checkThreshold("threshold1", c.Threshold1); err != nil {
			return err
		}
		if err := checkThreshold("threshold2", c.Threshold2); err != nil {
			return err
		}
		// A5 fires when serving < Φ1 and neighbour > Φ2; a portfolio with
		// Φ1 > Φ2 would hand over to neighbours weaker than the serving
		// floor it just declared unusable.
		if c.Threshold1 > c.Threshold2 {
			return fmt.Errorf("event %s/%s: A5 threshold1 %.1f > threshold2 %.1f", c.Tech, c.Type, c.Threshold1, c.Threshold2)
		}
	case cellular.EventA3:
		if c.Offset < -MaxOffsetDB || c.Offset > MaxOffsetDB {
			return fmt.Errorf("event %s/%s: A3 offset %.1f dB outside [−%.0f, %.0f]", c.Tech, c.Type, c.Offset, MaxOffsetDB, MaxOffsetDB)
		}
	}
	return nil
}

// Validate checks the portfolio for self-consistency: every event
// configuration is 3GPP-plausible, the decision sequence only references
// configured LTE events, and NSA portfolios carry at least one inter-RAT
// (B1) discovery event so a 5G leg is attachable at all.
func (p *Portfolio) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("policygen: portfolio has no name")
	}
	if len(p.LTESequence) == 0 {
		return fmt.Errorf("policygen: %s: empty LTE decision sequence", p.Name)
	}
	if len(p.LTEEvents) == 0 {
		return fmt.Errorf("policygen: %s: no LTE event configurations", p.Name)
	}
	configured := map[string]bool{}
	for _, c := range p.LTEEvents {
		if c.Tech != cellular.TechLTE {
			return fmt.Errorf("policygen: %s: non-LTE event %s in LTEEvents", p.Name, c.Type)
		}
		if err := validateEvent(c); err != nil {
			return fmt.Errorf("policygen: %s: %w", p.Name, err)
		}
		configured[c.Type.String()] = true
	}
	for _, k := range p.LTESequence {
		if !configured[k] {
			return fmt.Errorf("policygen: %s: decision sequence references unconfigured event %q", p.Name, k)
		}
	}
	if p.Has(cellular.ArchNSA) {
		interRAT := false
		for _, c := range p.NREvents {
			if c.Tech != cellular.TechNR {
				return fmt.Errorf("policygen: %s: non-NR event %s in NREvents", p.Name, c.Type)
			}
			if err := validateEvent(c); err != nil {
				return fmt.Errorf("policygen: %s: %w", p.Name, err)
			}
			if c.Type == cellular.EventB1 || c.Type == cellular.EventA4 {
				interRAT = true
			}
		}
		if !interRAT {
			return fmt.Errorf("policygen: %s: NSA portfolio has no inter-RAT (B1/A4) event", p.Name)
		}
	}
	if err := p.Adaptive.Validate(); err != nil {
		return fmt.Errorf("policygen: %s: %w", p.Name, err)
	}
	if p.Has(cellular.ArchSA) {
		if len(p.SAEvents) == 0 {
			return fmt.Errorf("policygen: %s: SA offered but no SA event configurations", p.Name)
		}
		for _, c := range p.SAEvents {
			if c.Tech != cellular.TechNR {
				return fmt.Errorf("policygen: %s: non-NR event %s in SAEvents", p.Name, c.Type)
			}
			if err := validateEvent(c); err != nil {
				return fmt.Errorf("policygen: %s: %w", p.Name, err)
			}
		}
	}
	return nil
}

// Drift is one mid-run policy rewrite: at sim time At the carrier replaces
// its active measurement configuration and decision logic with Portfolio's.
// The deployment (towers, bands) is unchanged — reconfiguration is a
// parameter push, not a construction project — so only the policy fields
// of the drifted portfolio are consulted.
type Drift struct {
	// At is the sim time the rewrite takes effect.
	At time.Duration
	// Portfolio is the policy active from At on.
	Portfolio Portfolio
}

// Scenario pairs a base portfolio with the drift rewrites applied during a
// drive. sim.Config.Scenario runs a drive under it; a nil Scenario keeps
// the named-carrier behaviour.
type Scenario struct {
	// Base is the policy active from the start of the drive.
	Base Portfolio
	// Drifts are applied in order; each must have a later At than the
	// previous one.
	Drifts []Drift
}

// ActiveAt returns the portfolio in force at sim time t.
func (s *Scenario) ActiveAt(t time.Duration) *Portfolio {
	active := &s.Base
	for i := range s.Drifts {
		if t >= s.Drifts[i].At {
			active = &s.Drifts[i].Portfolio
		}
	}
	return active
}

// Validate checks the base, every drift portfolio, and drift ordering.
func (s *Scenario) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	last := time.Duration(-1)
	for i := range s.Drifts {
		d := &s.Drifts[i]
		if d.At <= last {
			return fmt.Errorf("policygen: drift %d at %v is not after the previous rewrite", i, d.At)
		}
		last = d.At
		if err := d.Portfolio.Validate(); err != nil {
			return fmt.Errorf("policygen: drift %d: %w", i, err)
		}
	}
	return nil
}
