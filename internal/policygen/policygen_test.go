package policygen

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cellular"
)

// TestBuiltinsValidate: the three named-carrier portfolios and the
// unknown-carrier fallback all pass their own validator.
func TestBuiltinsValidate(t *testing.T) {
	for _, p := range Builtins() {
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %s: %v", p.Name, err)
		}
	}
	fb := BuiltinOrDefault("NoSuchCarrier")
	if fb.Name != "NoSuchCarrier" {
		t.Fatalf("fallback name = %q", fb.Name)
	}
	if err := fb.Validate(); err != nil {
		t.Errorf("fallback: %v", err)
	}
	if got := fb.SequenceString(); got != "A3" {
		t.Errorf("fallback sequence = %q, want the historical bare A3", got)
	}
}

// TestGeneratedPortfoliosValid is the core property test: every sampled
// portfolio is self-consistent — validator-clean (A5 Φ1 ≤ Φ2, TTT and
// hysteresis inside 3GPP ranges, sequence references configured events)
// and carrying at least one inter-RAT event whenever NSA is offered.
func TestGeneratedPortfoliosValid(t *testing.T) {
	const n = 500
	for _, seed := range []int64{1, 7, 424242} {
		for i := 0; i < n; i++ {
			p := Generate(seed, i)
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d carrier %d: %v", seed, i, err)
			}
			if !p.Has(cellular.ArchNSA) {
				t.Fatalf("seed %d carrier %d: generated portfolio without NSA", seed, i)
			}
			for _, c := range append(append([]cellular.EventConfig{}, p.LTEEvents...), p.NREvents...) {
				if c.Type == cellular.EventA5 && c.Threshold1 > c.Threshold2 {
					t.Fatalf("seed %d carrier %d: A5 Φ1 %.1f > Φ2 %.1f", seed, i, c.Threshold1, c.Threshold2)
				}
				if !ValidTTT(c.TTT) {
					t.Fatalf("seed %d carrier %d: TTT %v not in 3GPP set", seed, i, c.TTT)
				}
			}
			if err := (&Scenario{Base: p, Drifts: []Drift{{At: 5 * time.Minute, Portfolio: Drifted(seed, i)}}}).Validate(); err != nil {
				t.Fatalf("seed %d carrier %d: drift scenario: %v", seed, i, err)
			}
		}
	}
}

// TestGenerateDeterministic: sampling is a pure function of (seed, index) —
// identical across repeated calls, generation order, and concurrent
// workers (the property `vivisect sweep -jobs N` byte-identity rests on).
func TestGenerateDeterministic(t *testing.T) {
	const n = 64
	want := make([]Portfolio, n)
	for i := range want {
		want[i] = Generate(9, i)
	}
	// Reverse order.
	for i := n - 1; i >= 0; i-- {
		if got := Generate(9, i); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("carrier %d differs when generated in reverse order", i)
		}
	}
	// Concurrently, as the sweep worker pool would.
	var wg sync.WaitGroup
	errs := make(chan int, n)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				if !reflect.DeepEqual(Generate(9, i), want[i]) {
					errs <- i
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for i := range errs {
		t.Errorf("carrier %d differs under concurrent generation", i)
	}
	// Different seeds produce different populations.
	if reflect.DeepEqual(Generate(9, 0), Generate(10, 0)) {
		t.Error("seeds 9 and 10 generated identical carrier 0")
	}
}

// TestDriftedChangesPolicyKeepsIdentity: a drift rewrite redraws policy
// parameters but never the carrier's identity or deployed network.
func TestDriftedChangesPolicyKeepsIdentity(t *testing.T) {
	changed := 0
	const n = 100
	for i := 0; i < n; i++ {
		base := Generate(3, i)
		drift := Drifted(3, i)
		if drift.Name != base.Name {
			t.Fatalf("carrier %d: drift renamed %q -> %q", i, base.Name, drift.Name)
		}
		if !reflect.DeepEqual(drift.Deployment, base.Deployment) {
			t.Fatalf("carrier %d: drift rebuilt the deployment", i)
		}
		if !reflect.DeepEqual(drift.Archs, base.Archs) {
			t.Fatalf("carrier %d: drift changed offered architectures", i)
		}
		if err := drift.Validate(); err != nil {
			t.Fatalf("carrier %d: drifted portfolio invalid: %v", i, err)
		}
		if !reflect.DeepEqual(drift.LTEEvents, base.LTEEvents) || !reflect.DeepEqual(drift.NREvents, base.NREvents) {
			changed++
		}
	}
	// Thresholds are drawn from continuous ranges, so effectively every
	// drift should actually change the active configuration.
	if changed < n*9/10 {
		t.Errorf("only %d/%d drifts changed the policy", changed, n)
	}
}

// TestScenarioActiveAt: drift scheduling picks the right portfolio per sim
// time and rejects out-of-order rewrites.
func TestScenarioActiveAt(t *testing.T) {
	base := Generate(1, 0)
	d1 := Drifted(1, 0)
	s := &Scenario{Base: base, Drifts: []Drift{{At: 2 * time.Minute, Portfolio: d1}}}
	if err := s.Validate(); err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if got := s.ActiveAt(0); !reflect.DeepEqual(*got, base) {
		t.Error("t=0 should run the base portfolio")
	}
	if got := s.ActiveAt(2 * time.Minute); !reflect.DeepEqual(*got, d1) {
		t.Error("t=At should run the drifted portfolio")
	}
	bad := &Scenario{Base: base, Drifts: []Drift{
		{At: 2 * time.Minute, Portfolio: d1},
		{At: time.Minute, Portfolio: d1},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order drifts validated")
	}
}

// TestValidateRejects: the validator actually bites on each class of
// inconsistency the generator must never produce.
func TestValidateRejects(t *testing.T) {
	mk := func(mut func(*Portfolio)) error {
		p := OpZ()
		mut(&p)
		return p.Validate()
	}
	cases := []struct {
		name string
		mut  func(*Portfolio)
	}{
		{"A5 thresholds inverted", func(p *Portfolio) { p.LTEEvents[1].Threshold1, p.LTEEvents[1].Threshold2 = -90, -101 }},
		{"non-3GPP TTT", func(p *Portfolio) { p.LTEEvents[0].TTT = 123 * time.Millisecond }},
		{"negative hysteresis", func(p *Portfolio) { p.LTEEvents[0].Hysteresis = -1 }},
		{"implausible threshold", func(p *Portfolio) { p.LTEEvents[0].Threshold1 = -10 }},
		{"sequence references unconfigured event", func(p *Portfolio) { p.LTESequence = []string{"A4"} }},
		{"NSA without inter-RAT event", func(p *Portfolio) { p.NREvents = p.NREvents[1:] }},
		{"empty sequence", func(p *Portfolio) { p.LTESequence = nil }},
	}
	for _, c := range cases {
		if err := mk(c.mut); err == nil {
			t.Errorf("%s: Validate accepted it", c.name)
		}
	}
}
