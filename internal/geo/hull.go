package geo

import "sort"

// Note: segment/box comparisons below use the builtin min/max.

// ConvexHull returns the convex hull of pts in counter-clockwise order using
// Andrew's monotone chain. Degenerate inputs (fewer than 3 distinct points,
// or all collinear) return the extreme points.
//
// The paper (§6.3) uses convex hulls of per-PCI sample positions to decide
// whether a 4G eNB and a 5G gNB are served from the same physical tower:
// co-located cells produce overlapping hulls.
func ConvexHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return ps
	}
	hull := make([]Point, 0, 2*len(ps))
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// PolygonArea returns the signed area of the polygon; counter-clockwise
// polygons have positive area.
func PolygonArea(poly []Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	area := 0.0
	for i := range poly {
		j := (i + 1) % len(poly)
		area += poly[i].Cross(poly[j])
	}
	return area / 2
}

// PointInConvex reports whether p lies inside (or on the boundary of) the
// convex polygon poly given in counter-clockwise order.
func PointInConvex(p Point, poly []Point) bool {
	if len(poly) == 0 {
		return false
	}
	if len(poly) == 1 {
		return p == poly[0]
	}
	if len(poly) == 2 {
		// Degenerate segment: p must lie on it.
		d := poly[1].Sub(poly[0])
		v := p.Sub(poly[0])
		if d.Cross(v) != 0 {
			return false
		}
		t := v.Dot(d) / d.Dot(d)
		return t >= 0 && t <= 1
	}
	for i := range poly {
		j := (i + 1) % len(poly)
		if poly[j].Sub(poly[i]).Cross(p.Sub(poly[i])) < 0 {
			return false
		}
	}
	return true
}

// ConvexOverlap reports whether two convex polygons (counter-clockwise)
// intersect, using the separating axis theorem. Touching boundaries count as
// overlap. This is the "simple algorithm" the paper cites for identifying
// overlapping 4G/5G PCI hulls.
func ConvexOverlap(a, b []Point) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	// Degenerate small polygons: fall back to point-in-polygon checks both
	// ways; a separating-axis test needs edges.
	if len(a) < 3 || len(b) < 3 {
		for _, p := range a {
			if PointInConvex(p, b) {
				return true
			}
		}
		for _, p := range b {
			if PointInConvex(p, a) {
				return true
			}
		}
		return segmentsIntersect(a, b)
	}
	return !hasSeparatingAxis(a, b) && !hasSeparatingAxis(b, a)
}

// hasSeparatingAxis reports whether any edge normal of a separates a from b.
func hasSeparatingAxis(a, b []Point) bool {
	for i := range a {
		j := (i + 1) % len(a)
		edge := a[j].Sub(a[i])
		axis := Point{-edge.Y, edge.X}
		minA, maxA := project(a, axis)
		minB, maxB := project(b, axis)
		if maxA < minB || maxB < minA {
			return true
		}
	}
	return false
}

func project(poly []Point, axis Point) (min, max float64) {
	min = poly[0].Dot(axis)
	max = min
	for _, p := range poly[1:] {
		d := p.Dot(axis)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// segmentsIntersect reports whether any segment of a intersects any segment
// of b (used only for degenerate hulls).
func segmentsIntersect(a, b []Point) bool {
	segs := func(poly []Point) [][2]Point {
		if len(poly) < 2 {
			return nil
		}
		var out [][2]Point
		for i := 0; i+1 < len(poly); i++ {
			out = append(out, [2]Point{poly[i], poly[i+1]})
		}
		return out
	}
	for _, s1 := range segs(a) {
		for _, s2 := range segs(b) {
			if segIntersect(s1[0], s1[1], s2[0], s2[1]) {
				return true
			}
		}
	}
	return false
}

func segIntersect(p1, p2, q1, q2 Point) bool {
	d1 := q2.Sub(q1).Cross(p1.Sub(q1))
	d2 := q2.Sub(q1).Cross(p2.Sub(q1))
	d3 := p2.Sub(p1).Cross(q1.Sub(p1))
	d4 := p2.Sub(p1).Cross(q2.Sub(p1))
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) && ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	on := func(p, a, b Point) bool {
		if b.Sub(a).Cross(p.Sub(a)) != 0 {
			return false
		}
		return min(a.X, b.X) <= p.X && p.X <= max(a.X, b.X) &&
			min(a.Y, b.Y) <= p.Y && p.Y <= max(a.Y, b.Y)
	}
	return on(p1, q1, q2) || on(p2, q1, q2) || on(q1, p1, p2) || on(q2, p1, p2)
}
