package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// RouteKind selects the synthetic route generator used for a drive.
type RouteKind int

// Route kinds mirror the two collection environments in the paper: long,
// gently-curving freeway legs and dense grid-like city loops.
const (
	// RouteFreeway is a long, mostly-straight route with gentle curves,
	// matching the paper's inter-state legs.
	RouteFreeway RouteKind = iota
	// RouteCityLoop is a closed rectangular downtown loop with small jitter,
	// matching the paper's city and walking-loop datasets (D1/D2).
	RouteCityLoop
)

// String returns the route kind name.
func (k RouteKind) String() string {
	switch k {
	case RouteFreeway:
		return "freeway"
	case RouteCityLoop:
		return "city-loop"
	default:
		return fmt.Sprintf("RouteKind(%d)", int(k))
	}
}

// ParseRouteKind is the inverse of RouteKind.String, for command-line
// flags ("city" is accepted as shorthand for "city-loop").
func ParseRouteKind(s string) (RouteKind, error) {
	switch s {
	case "freeway":
		return RouteFreeway, nil
	case "city-loop", "city":
		return RouteCityLoop, nil
	default:
		return 0, fmt.Errorf("geo: unknown route kind %q (want freeway or city-loop)", s)
	}
}

// GenFreeway generates a freeway route of approximately length metres. The
// route heads east with smooth random heading drift, producing the gentle
// curvature of an inter-state drive. rng must be non-nil.
func GenFreeway(rng *rand.Rand, length float64) *Polyline {
	if length < 1000 {
		length = 1000
	}
	const seg = 500.0 // metres between waypoints
	n := int(length/seg) + 1
	pts := make([]Point, 0, n+1)
	pos := Point{}
	heading := 0.0 // radians, 0 = east
	pts = append(pts, pos)
	for travelled := 0.0; travelled < length; travelled += seg {
		// Smooth drift: bounded random walk on heading.
		heading += (rng.Float64() - 0.5) * 0.15
		if heading > 0.5 {
			heading = 0.5
		}
		if heading < -0.5 {
			heading = -0.5
		}
		pos = pos.Add(Point{seg * math.Cos(heading), seg * math.Sin(heading)})
		pts = append(pts, pos)
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		panic("geo: internal error building freeway route: " + err.Error())
	}
	return pl
}

// GenCityLoop generates a closed rectangular loop with the given perimeter
// (metres) and small per-vertex jitter, approximating a downtown walking or
// driving loop. rng must be non-nil.
func GenCityLoop(rng *rand.Rand, perimeter float64) *Polyline {
	if perimeter < 400 {
		perimeter = 400
	}
	w := perimeter * 0.3   // width
	h := perimeter*0.5 - w // height so that 2(w+h) == perimeter
	if h < 50 {
		h = 50
	}
	const seg = 50.0
	jitter := func() float64 { return (rng.Float64() - 0.5) * 8 }
	var pts []Point
	appendEdge := func(from, to Point) {
		d := to.Sub(from)
		n := int(d.Norm()/seg) + 1
		for i := 0; i < n; i++ {
			t := float64(i) / float64(n)
			p := Lerp(from, to, t)
			pts = append(pts, Point{p.X + jitter(), p.Y + jitter()})
		}
	}
	c := []Point{{0, 0}, {w, 0}, {w, h}, {0, h}}
	appendEdge(c[0], c[1])
	appendEdge(c[1], c[2])
	appendEdge(c[2], c[3])
	appendEdge(c[3], c[0])
	pts = append(pts, pts[0]) // close the loop exactly
	pl, err := NewPolyline(pts)
	if err != nil {
		panic("geo: internal error building city loop: " + err.Error())
	}
	return pl
}

// Generate builds a route of the given kind and length (metres; perimeter
// for loops).
func Generate(kind RouteKind, rng *rand.Rand, length float64) *Polyline {
	switch kind {
	case RouteCityLoop:
		return GenCityLoop(rng, length)
	default:
		return GenFreeway(rng, length)
	}
}
