// Package geo provides the planar geometry primitives used by the mobility
// simulator: points, polyline routes, synthetic route generation, and the
// convex-hull machinery behind the paper's eNB/gNB co-location heuristic
// (§6.3).
//
// The simulator operates on a local tangent plane in metres rather than
// geodetic coordinates: every distance in the paper's analyses (cell
// coverage, HO spacing) is small enough (< a few km) that planar geometry is
// exact for our purposes and keeps the math dependency-free.
package geo

import (
	"fmt"
	"math"
)

// Point is a position on the local tangent plane, in metres.
type Point struct {
	X float64 // easting, metres
	Y float64 // northing, metres
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q treated as
// vectors; its sign gives the turn direction p→q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String renders the point as "(x, y)" with metre precision.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Lerp linearly interpolates between a and b; t=0 yields a, t=1 yields b.
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// Polyline is an ordered sequence of waypoints describing a route.
type Polyline struct {
	pts    []Point
	cumLen []float64 // cumulative arc length at each vertex
}

// NewPolyline builds a polyline from at least two waypoints. Consecutive
// duplicate points are collapsed so arc-length parameterisation stays
// well defined.
func NewPolyline(pts []Point) (*Polyline, error) {
	clean := make([]Point, 0, len(pts))
	for _, p := range pts {
		if n := len(clean); n > 0 && clean[n-1].Dist(p) == 0 {
			continue
		}
		clean = append(clean, p)
	}
	if len(clean) < 2 {
		return nil, fmt.Errorf("geo: polyline needs at least 2 distinct points, got %d", len(clean))
	}
	cum := make([]float64, len(clean))
	for i := 1; i < len(clean); i++ {
		cum[i] = cum[i-1] + clean[i].Dist(clean[i-1])
	}
	return &Polyline{pts: clean, cumLen: cum}, nil
}

// Length returns the total arc length of the polyline in metres.
func (pl *Polyline) Length() float64 { return pl.cumLen[len(pl.cumLen)-1] }

// Points returns the polyline's waypoints. The returned slice must not be
// modified.
func (pl *Polyline) Points() []Point { return pl.pts }

// At returns the point at arc-length s (metres) from the start. s is clamped
// to [0, Length].
func (pl *Polyline) At(s float64) Point {
	if s <= 0 {
		return pl.pts[0]
	}
	if s >= pl.Length() {
		return pl.pts[len(pl.pts)-1]
	}
	// Binary search for the segment containing s.
	lo, hi := 0, len(pl.cumLen)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cumLen[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := pl.cumLen[hi] - pl.cumLen[lo]
	t := (s - pl.cumLen[lo]) / segLen
	return Lerp(pl.pts[lo], pl.pts[hi], t)
}

// Heading returns the unit direction of travel at arc-length s.
func (pl *Polyline) Heading(s float64) Point {
	if s < 0 {
		s = 0
	}
	if s >= pl.Length() {
		s = pl.Length() - 1e-9
	}
	lo, hi := 0, len(pl.cumLen)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cumLen[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	d := pl.pts[hi].Sub(pl.pts[lo])
	n := d.Norm()
	if n == 0 {
		return Point{1, 0}
	}
	return d.Scale(1 / n)
}

// Sample returns points every step metres along the polyline, always
// including the start and end points.
func (pl *Polyline) Sample(step float64) []Point {
	if step <= 0 {
		step = 1
	}
	n := int(pl.Length()/step) + 1
	out := make([]Point, 0, n+1)
	for s := 0.0; s < pl.Length(); s += step {
		out = append(out, pl.At(s))
	}
	out = append(out, pl.pts[len(pl.pts)-1])
	return out
}
