package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	a := Point{3, 4}
	b := Point{1, 2}
	if got := a.Add(b); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Point{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Dist(b); math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Dot(b); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 2 {
		t.Errorf("Cross = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestNewPolylineValidation(t *testing.T) {
	if _, err := NewPolyline(nil); err == nil {
		t.Error("empty polyline accepted")
	}
	if _, err := NewPolyline([]Point{{1, 1}}); err == nil {
		t.Error("single-point polyline accepted")
	}
	if _, err := NewPolyline([]Point{{1, 1}, {1, 1}}); err == nil {
		t.Error("all-duplicate polyline accepted")
	}
	pl, err := NewPolyline([]Point{{0, 0}, {0, 0}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Length() != 5 {
		t.Errorf("Length = %v, want 5 (duplicates collapsed)", pl.Length())
	}
}

func TestPolylineAt(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {10, 0}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Length(); got != 20 {
		t.Fatalf("Length = %v", got)
	}
	cases := []struct {
		s    float64
		want Point
	}{
		{-5, Point{0, 0}},
		{0, Point{0, 0}},
		{5, Point{5, 0}},
		{10, Point{10, 0}},
		{15, Point{10, 5}},
		{20, Point{10, 10}},
		{25, Point{10, 10}},
	}
	for _, c := range cases {
		if got := pl.At(c.s); got.Dist(c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPolylineHeading(t *testing.T) {
	pl, _ := NewPolyline([]Point{{0, 0}, {10, 0}, {10, 10}})
	if h := pl.Heading(5); h.Dist(Point{1, 0}) > 1e-9 {
		t.Errorf("Heading(5) = %v", h)
	}
	if h := pl.Heading(15); h.Dist(Point{0, 1}) > 1e-9 {
		t.Errorf("Heading(15) = %v", h)
	}
}

func TestPolylineSample(t *testing.T) {
	pl, _ := NewPolyline([]Point{{0, 0}, {10, 0}})
	pts := pl.Sample(2.5)
	if len(pts) != 5 {
		t.Fatalf("Sample returned %d points, want 5", len(pts))
	}
	if pts[len(pts)-1] != (Point{10, 0}) {
		t.Errorf("last sample %v, want end point", pts[len(pts)-1])
	}
}

// TestPolylineAtMonotone is a property test: arc-length parameterisation
// must be monotone in travelled distance.
func TestPolylineAtMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := GenFreeway(rng, 5000)
	f := func(a, b float64) bool {
		sa := math.Mod(math.Abs(a), pl.Length())
		sb := math.Mod(math.Abs(b), pl.Length())
		if sa > sb {
			sa, sb = sb, sa
		}
		// Distance along a polyline between parameters can't exceed the
		// parameter difference (triangle inequality of the embedding).
		return pl.At(sa).Dist(pl.At(sb)) <= sb-sa+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenFreewayLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := GenFreeway(rng, 30000)
	if pl.Length() < 29000 || pl.Length() > 32000 {
		t.Errorf("freeway length %v, want ≈30000", pl.Length())
	}
	// Tiny requests are clamped.
	pl2 := GenFreeway(rng, 10)
	if pl2.Length() < 900 {
		t.Errorf("clamped freeway too short: %v", pl2.Length())
	}
}

func TestGenCityLoopClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pl := GenCityLoop(rng, 3000)
	pts := pl.Points()
	if pts[0].Dist(pts[len(pts)-1]) > 1 {
		t.Errorf("loop not closed: start %v end %v", pts[0], pts[len(pts)-1])
	}
	if pl.Length() < 2000 || pl.Length() > 4500 {
		t.Errorf("perimeter %v, want ≈3000", pl.Length())
	}
}

func TestGenerateDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if Generate(RouteFreeway, rng, 5000) == nil {
		t.Error("freeway nil")
	}
	if Generate(RouteCityLoop, rng, 2000) == nil {
		t.Error("loop nil")
	}
	if RouteFreeway.String() != "freeway" || RouteCityLoop.String() != "city-loop" {
		t.Error("route kind names")
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	if area := PolygonArea(hull); math.Abs(area-1) > 1e-9 {
		t.Errorf("hull area %v, want 1", area)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("nil input produced %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 {
		t.Errorf("single point hull %v", h)
	}
	// Collinear points.
	h := ConvexHull([]Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	if len(h) > 2 {
		t.Errorf("collinear hull has %d vertices", len(h))
	}
}

// TestConvexHullContainsAll is a property test: every input point must lie
// inside (or on) the hull.
func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		n := 3 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		if PolygonArea(hull) <= 0 {
			t.Fatalf("hull not counter-clockwise: %v", hull)
		}
		for _, p := range pts {
			if !PointInConvex(p, hull) {
				t.Fatalf("point %v outside its own hull %v", p, hull)
			}
		}
	}
}

func TestConvexOverlap(t *testing.T) {
	a := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	b := []Point{{1, 1}, {3, 1}, {3, 3}, {1, 3}}
	c := []Point{{5, 5}, {6, 5}, {6, 6}, {5, 6}}
	if !ConvexOverlap(a, b) {
		t.Error("overlapping squares reported disjoint")
	}
	if ConvexOverlap(a, c) {
		t.Error("disjoint squares reported overlapping")
	}
	// Containment counts as overlap.
	inner := []Point{{0.5, 0.5}, {1, 0.5}, {1, 1}, {0.5, 1}}
	if !ConvexOverlap(a, inner) {
		t.Error("contained square reported disjoint")
	}
	// Degenerate: point in square.
	if !ConvexOverlap(a, []Point{{1, 1}}) {
		t.Error("interior point reported disjoint")
	}
	if ConvexOverlap(a, []Point{{9, 9}}) {
		t.Error("exterior point reported overlapping")
	}
	if ConvexOverlap(nil, a) {
		t.Error("empty polygon overlaps")
	}
}

// TestConvexOverlapSymmetric is a property test: overlap must be symmetric.
func TestConvexOverlapSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		mk := func() []Point {
			n := 3 + rng.Intn(8)
			pts := make([]Point, n)
			cx, cy := rng.Float64()*10, rng.Float64()*10
			for i := range pts {
				pts[i] = Point{cx + rng.Float64()*4, cy + rng.Float64()*4}
			}
			return ConvexHull(pts)
		}
		a, b := mk(), mk()
		if ConvexOverlap(a, b) != ConvexOverlap(b, a) {
			t.Fatalf("asymmetric overlap: %v vs %v", a, b)
		}
	}
}
