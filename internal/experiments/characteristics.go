package experiments

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// HOFrequency reproduces §5.1: handover spacing by technology/architecture
// and band, plus per-km signalling overheads (paper: NSA every 0.4 km, 4G
// every 0.6 km, SA every 0.9 km; mmWave 0.13 / mid 0.35 / low 0.4 km; SA
// ≈3.8× fewer HO signalling messages than LTE; NSA mmWave PHY signalling
// >5× low-band).
func HOFrequency(opts Options) (Table, error) {
	opts = opts.withDefaults()
	length := opts.scaleLen(40000)

	type row struct {
		label  string
		log    *trace.Log
		filter func(cellular.HandoverEvent) bool
		paper  string
	}
	lteLog, err := opts.freewayDrive(topology.OpX(), cellular.ArchLTE, length, opts.Seed, true)
	if err != nil {
		return Table{}, err
	}
	nsaLowLog, err := opts.freewayDrive(topology.OpX(), cellular.ArchNSA, length, opts.Seed+1, true)
	if err != nil {
		return Table{}, err
	}
	saLog, err := opts.freewayDrive(saCarrier(), cellular.ArchSA, length, opts.Seed+2, true)
	if err != nil {
		return Table{}, err
	}
	nsaMidLog, err := opts.freewayDrive(topology.OpY(), cellular.ArchNSA, length, opts.Seed+3, true)
	if err != nil {
		return Table{}, err
	}
	// mmWave only exists in cities; use a city drive for its band rate.
	mmwLog, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, 0, 5000, opts.scaleIntAtLeast(4, 3), opts.Seed+4)
	if err != nil {
		return Table{}, err
	}

	bandOf := func(h cellular.HandoverEvent, b cellular.Band) bool { return h.Band == b && h.Type.Is5G() }
	// bandKM measures the distance travelled while the 5G leg was attached
	// to the given band, so per-band HO spacing is normalised by the
	// distance the band actually covered.
	bandKM := func(log *trace.Log, b cellular.Band) float64 {
		km := 0.0
		lastOdo := -1.0
		for _, s := range log.Samples {
			if s.ServingNR.Valid && s.ServingNR.Band == b {
				if lastOdo >= 0 && s.OdometerM > lastOdo {
					km += (s.OdometerM - lastOdo) / 1000
				}
				lastOdo = s.OdometerM
			} else {
				lastOdo = -1
			}
		}
		return km
	}
	rows := []row{
		{"4G/LTE", lteLog, nil, "0.60 km"},
		{"NSA 5G (all procedures)", nsaLowLog, nil, "0.40 km"},
		{"SA 5G", saLog, nil, "0.90 km"},
		{"NSA low-band (5G procedures)", nsaLowLog, func(h cellular.HandoverEvent) bool { return bandOf(h, cellular.BandLow) }, "0.40 km"},
		{"NSA mid-band (5G procedures)", nsaMidLog, func(h cellular.HandoverEvent) bool { return bandOf(h, cellular.BandMid) }, "0.35 km"},
		{"NSA mmWave (5G procedures)", mmwLog, func(h cellular.HandoverEvent) bool { return bandOf(h, cellular.BandMMWave) }, "0.13 km"},
	}
	rowBand := map[string]cellular.Band{
		"NSA low-band (5G procedures)": cellular.BandLow,
		"NSA mid-band (5G procedures)": cellular.BandMid,
		"NSA mmWave (5G procedures)":   cellular.BandMMWave,
	}

	t := Table{
		ID:     "freq",
		Title:  "Handover frequency and signalling overheads (§5.1)",
		Header: []string{"configuration", "HOs", "km", "spacing (km)", "paper", "signalling msgs/km"},
	}
	sigPerKm := map[string]float64{}
	for _, r := range rows {
		count := 0
		var sig cellular.SignalingCount
		for _, h := range r.log.Handovers {
			if r.filter != nil && !r.filter(h) {
				continue
			}
			count++
			sig = sig.Add(h.Signaling)
		}
		km := r.log.DistanceKM()
		if b, ok := rowBand[r.label]; ok {
			km = bandKM(r.log, b)
		}
		if count == 0 || km == 0 {
			return Table{}, fmt.Errorf("freq: no handovers for %q", r.label)
		}
		spacing := km / float64(count)
		sk := float64(sig.Total()) / km
		sigPerKm[r.label] = sk
		t.Rows = append(t.Rows, []string{r.label, fmt.Sprint(count), fmtF(km, 1), fmtF(spacing, 2), r.paper, fmtF(sk, 1)})
	}
	if lte, sa := sigPerKm["4G/LTE"], sigPerKm["SA 5G"]; sa > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("SA signalling reduction vs LTE: %.1fx (paper ~3.8x)", lte/sa))
	}
	// PHY-layer signalling: mmWave vs low-band per 5G HO.
	phyPer := func(log *trace.Log, band cellular.Band) float64 {
		tot, n := 0, 0
		for _, h := range log.Handovers {
			if h.Type.Is5G() && h.Band == band {
				tot += h.Signaling.PHY
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return float64(tot) / float64(n)
	}
	low := phyPer(nsaLowLog, cellular.BandLow)
	mmw := phyPer(mmwLog, cellular.BandMMWave)
	if low > 0 && mmw > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("PHY signalling per 5G HO: mmWave %.0f vs low-band %.0f (%.1fx; paper >5x)", mmw, low, mmw/low))
	}
	return t, nil
}

// Fig8 reproduces the HO preparation stage (T1) comparison for the OpY
// deployments (paper: NSA T1 runs ≈48% above LTE; SA matches LTE in the
// median but with far higher variance).
func Fig8(opts Options) (Table, error) {
	opts = opts.withDefaults()
	length := opts.scaleLen(40000)
	lteLog, err := opts.freewayDrive(topology.OpY(), cellular.ArchLTE, length, opts.Seed+10, true)
	if err != nil {
		return Table{}, err
	}
	nsaLog, err := opts.freewayDrive(topology.OpY(), cellular.ArchNSA, length, opts.Seed+11, true)
	if err != nil {
		return Table{}, err
	}
	saLog, err := opts.freewayDrive(saCarrier(), cellular.ArchSA, length, opts.Seed+12, true)
	if err != nil {
		return Table{}, err
	}

	t1ms := func(log *trace.Log, types ...cellular.HOType) []float64 {
		var out []float64
		for _, h := range log.Handovers {
			ok := len(types) == 0
			for _, ty := range types {
				if h.Type == ty {
					ok = true
				}
			}
			if ok {
				out = append(out, float64(h.T1)/float64(time.Millisecond))
			}
		}
		return out
	}

	t := Table{
		ID:     "fig8",
		Title:  "HO preparation stage T1 by deployment (OpY)",
		Header: []string{"deployment", "HO type", "mean T1 (ms)", "p95 (ms)", "stddev"},
	}
	add := func(dep, label string, vals []float64) error {
		if len(vals) == 0 {
			return fmt.Errorf("fig8: no %s/%s handovers", dep, label)
		}
		t.Rows = append(t.Rows, []string{dep, label, fmtF(stats.Mean(vals), 1), fmtF(stats.Percentile(vals, 95), 1), fmtF(stats.StdDev(vals), 1)})
		return nil
	}
	lte := t1ms(lteLog, cellular.HOLTEH)
	if err := add("LTE", "LTEH", lte); err != nil {
		return Table{}, err
	}
	if err := add("NSA", "MNBH", t1ms(nsaLog, cellular.HOMNBH)); err != nil {
		return Table{}, err
	}
	if err := add("NSA", "SCGA", t1ms(nsaLog, cellular.HOSCGA, cellular.HOSCGC)); err != nil {
		return Table{}, err
	}
	if err := add("NSA", "SCGM", t1ms(nsaLog, cellular.HOSCGM)); err != nil {
		return Table{}, err
	}
	sa := t1ms(saLog, cellular.HOMCGH)
	if err := add("SA", "MCGH", sa); err != nil {
		return Table{}, err
	}

	nsaAll := t1ms(nsaLog)
	t.Notes = append(t.Notes,
		fmt.Sprintf("NSA mean T1 %.0f ms vs LTE %.0f ms (+%.0f%%; paper +48%%)", stats.Mean(nsaAll), stats.Mean(lte), (stats.Mean(nsaAll)/stats.Mean(lte)-1)*100),
		fmt.Sprintf("SA T1 stddev %.1f ms vs LTE %.1f ms (paper: SA has high variance)", stats.StdDev(sa), stats.StdDev(lte)))
	return t, nil
}

// Fig9 reproduces the HO execution stage (T2) comparison across access
// technologies and bands (paper: NSA T2 is 1.4-5.4× LTE; mmWave T2 is
// 42-45% above low-band).
func Fig9(opts Options) (Table, error) {
	opts = opts.withDefaults()
	length := opts.scaleLen(40000)
	lteLog, err := opts.freewayDrive(topology.OpY(), cellular.ArchLTE, length, opts.Seed+20, true)
	if err != nil {
		return Table{}, err
	}
	nsaLog, err := opts.freewayDrive(topology.OpY(), cellular.ArchNSA, length, opts.Seed+21, true)
	if err != nil {
		return Table{}, err
	}
	saLog, err := opts.freewayDrive(saCarrier(), cellular.ArchSA, length, opts.Seed+22, true)
	if err != nil {
		return Table{}, err
	}
	mmwLog, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, 0, 5000, opts.scaleIntAtLeast(4, 3), opts.Seed+23)
	if err != nil {
		return Table{}, err
	}

	t2ms := func(log *trace.Log, filter func(cellular.HandoverEvent) bool) []float64 {
		var out []float64
		for _, h := range log.Handovers {
			if filter == nil || filter(h) {
				out = append(out, float64(h.T2)/float64(time.Millisecond))
			}
		}
		return out
	}
	is := func(ty cellular.HOType) func(cellular.HandoverEvent) bool {
		return func(h cellular.HandoverEvent) bool { return h.Type == ty }
	}

	t := Table{
		ID:     "fig9",
		Title:  "HO execution stage T2 across technologies and bands",
		Header: []string{"configuration", "HO type", "mean T2 (ms)", "median (ms)"},
	}
	add := func(cfg, label string, vals []float64) error {
		if len(vals) == 0 {
			return fmt.Errorf("fig9: no samples for %s/%s", cfg, label)
		}
		t.Rows = append(t.Rows, []string{cfg, label, fmtF(stats.Mean(vals), 1), fmtF(stats.Median(vals), 1)})
		return nil
	}
	lte := t2ms(lteLog, is(cellular.HOLTEH))
	if err := add("OpY LTE (mid)", "LTEH", lte); err != nil {
		return Table{}, err
	}
	if err := add("OpY NSA (mid)", "LTEH/MNBH", t2ms(nsaLog, func(h cellular.HandoverEvent) bool {
		return h.Type == cellular.HOMNBH || h.Type == cellular.HOLTEH
	})); err != nil {
		return Table{}, err
	}
	scgcNSA := t2ms(nsaLog, is(cellular.HOSCGC))
	if err := add("OpY NSA (mid)", "SCGC", scgcNSA); err != nil {
		return Table{}, err
	}
	if err := add("OpY NSA (mid)", "SCGM", t2ms(nsaLog, is(cellular.HOSCGM))); err != nil {
		return Table{}, err
	}
	if err := add("OpY SA (low)", "MCGH", t2ms(saLog, is(cellular.HOMCGH))); err != nil {
		return Table{}, err
	}
	lowSCGC := t2ms(nsaLog, func(h cellular.HandoverEvent) bool { return h.Type == cellular.HOSCGC && h.Band == cellular.BandLow })
	if len(lowSCGC) == 0 {
		lowSCGC = scgcNSA
	}
	mmwSCGC := t2ms(mmwLog, func(h cellular.HandoverEvent) bool { return h.Type == cellular.HOSCGC && h.Band == cellular.BandMMWave })
	if err := add("OpX NSA low-band", "SCGC", lowSCGC); err != nil {
		return Table{}, err
	}
	if err := add("OpX NSA mmWave", "SCGC", mmwSCGC); err != nil {
		return Table{}, err
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("NSA SCGC T2 vs LTE: %.1fx (paper 1.4-5.4x across types)", stats.Mean(scgcNSA)/stats.Mean(lte)),
		fmt.Sprintf("mmWave SCGC T2 vs low-band: +%.0f%% (paper +42-45%%)", (stats.Mean(mmwSCGC)/stats.Mean(lowSCGC)-1)*100))
	return t, nil
}

// Fig10 reproduces the HO energy study (paper: NSA HO power 1.2-2.3× LTE;
// a single mmWave HO draws ~35% less power than low-band yet mmWave costs
// 1.9-2.4× more energy per km; one hour at 130 km/h drains ≈34.7 mAh on
// low-band NSA, ≈81.7 mAh on mmWave, ≈3.4 mAh on LTE).
func Fig10(opts Options) (Table, error) {
	opts = opts.withDefaults()
	length := opts.scaleLen(40000)
	speed := 130.0 / 3.6

	run := func(carrier topology.CarrierProfile, arch cellular.Arch, skipMMW bool, density float64, seed int64) (*trace.Log, error) {
		return opts.simDrive(carrier, arch, length, speed, skipMMW, density, seed)
	}
	lteLog, err := run(topology.OpX(), cellular.ArchLTE, true, 1, opts.Seed+30)
	if err != nil {
		return Table{}, err
	}
	lowLog, err := run(topology.OpX(), cellular.ArchNSA, true, 1, opts.Seed+31)
	if err != nil {
		return Table{}, err
	}
	// The paper's mmWave energy loops were dense urban spots; emulate with
	// a denser city-style corridor.
	mmwLog, err := run(topology.OpX(), cellular.ArchNSA, false, 0.7, opts.Seed+32)
	if err != nil {
		return Table{}, err
	}

	filt := func(log *trace.Log, pred func(cellular.HandoverEvent) bool) []cellular.HandoverEvent {
		var out []cellular.HandoverEvent
		for _, h := range log.Handovers {
			if pred == nil || pred(h) {
				out = append(out, h)
			}
		}
		return out
	}
	lteHOs := filt(lteLog, nil)
	lowHOs := filt(lowLog, nil)
	mmwHOs := filt(mmwLog, func(h cellular.HandoverEvent) bool { return h.Band == cellular.BandMMWave && h.Type.Is5G() })
	if len(lteHOs) == 0 || len(lowHOs) == 0 || len(mmwHOs) == 0 {
		return Table{}, fmt.Errorf("fig10: missing handovers (lte=%d low=%d mmw=%d)", len(lteHOs), len(lowHOs), len(mmwHOs))
	}

	t := Table{
		ID:     "fig10",
		Title:  "HO power and energy: LTE vs NSA low-band vs NSA mmWave",
		Header: []string{"configuration", "HOs", "avg power/HO (W)", "energy/HO (mAh)", "energy/km (mAh)", "per-hour @130km/h (mAh)"},
	}
	hourScale := func(log *trace.Log, d energy.Drain) float64 {
		return d.PerKmMAh * 130
	}
	bandKM := func(log *trace.Log, b cellular.Band) float64 {
		km := 0.0
		lastOdo := -1.0
		for _, s := range log.Samples {
			if s.ServingNR.Valid && s.ServingNR.Band == b {
				if lastOdo >= 0 && s.OdometerM > lastOdo {
					km += (s.OdometerM - lastOdo) / 1000
				}
				lastOdo = s.OdometerM
			} else {
				lastOdo = -1
			}
		}
		return km
	}
	mmwKM := bandKM(mmwLog, cellular.BandMMWave)
	if mmwKM == 0 {
		return Table{}, fmt.Errorf("fig10: no mmWave coverage in energy drive")
	}
	for _, r := range []struct {
		label string
		log   *trace.Log
		hos   []cellular.HandoverEvent
		km    float64
	}{
		{"4G/LTE (mid)", lteLog, lteHOs, lteLog.DistanceKM()},
		{"NSA low-band", lowLog, lowHOs, lowLog.DistanceKM()},
		// Energy per km for mmWave uses the distance mmWave actually
		// covered (the paper's energy loops sat inside mmWave spots).
		{"NSA mmWave", mmwLog, mmwHOs, mmwKM},
	} {
		d := energy.Summarize(r.hos, r.km)
		t.Rows = append(t.Rows, []string{
			r.label, fmt.Sprint(d.Handovers), fmtF(d.PerHOAvgW, 2),
			fmtF(d.TotalMAh/float64(d.Handovers), 4), fmtF(d.PerKmMAh, 3), fmtF(hourScale(r.log, d), 1),
		})
	}
	lteD := energy.Summarize(lteHOs, lteLog.DistanceKM())
	lowD := energy.Summarize(lowHOs, lowLog.DistanceKM())
	mmwD := energy.Summarize(mmwHOs, mmwKM)
	t.Notes = append(t.Notes,
		fmt.Sprintf("NSA low per-HO power vs LTE: %.1fx (paper 1.2-2.3x)", lowD.PerHOAvgW/lteD.PerHOAvgW),
		fmt.Sprintf("mmWave per-HO power vs low-band: %.2fx (paper ~0.65x, '54%% more efficient')", mmwD.PerHOAvgW/lowD.PerHOAvgW),
		fmt.Sprintf("mmWave energy/km vs low-band: %.1fx (paper 1.9-2.4x)", mmwD.PerKmMAh/lowD.PerKmMAh),
		fmt.Sprintf("data equivalents of the hourly drain: low-band %.1f GB down, mmWave %.1f GB down (paper 4.3 / 75.4 GB)",
			firstOf(energy.DataEnergy(cellular.BandLow, lowD.PerKmMAh*130)), firstOf(energy.DataEnergy(cellular.BandMMWave, mmwD.PerKmMAh*130))))
	return t, nil
}

func firstOf(a, _ float64) float64 { return a }
