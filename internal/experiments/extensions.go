package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/stats"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// ExtBearer evaluates the paper's §4.2 proposal: a dual-mode split bearer
// whose 5G traffic takes the direct core→gNB path. The paper argues this
// "can get carriers the best of both worlds — similar performance as
// 5G-only mode while also minimizing HO fluctuations"; this extension
// implements the mode and measures it against the two deployed ones.
func ExtBearer(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, throughput.ModeSCG, 4000, opts.scaleIntAtLeast(6, 3), opts.Seed+120)
	if err != nil {
		return Table{}, err
	}
	rng := opts.RNG(121)
	model := throughput.NewRTTModel(rng)

	modes := []throughput.BearerMode{throughput.ModeSCG, throughput.ModeSplit, throughput.ModeSplitDirect}
	t := Table{
		ID:     "ext-bearer",
		Title:  "EXTENSION (§4.2 proposal): hybrid dual-direct bearer mode",
		Header: []string{"mode", "median RTT no-HO (ms)", "median RTT 5G-HO (ms)", "HO inflation", "tput vs 5G-only (no HO)"},
	}
	// Reference throughput: mean effective tput with each bearer given the
	// same per-leg capacities observed in the drive.
	tputFor := func(mode throughput.BearerMode) float64 {
		var vals []float64
		for _, s := range log.Samples {
			if !s.ServingNR.Valid || !s.ServingLTE.Valid || s.InHO {
				continue
			}
			lte := throughput.CapacityMbps(cellular.TechLTE, s.ServingLTE.Band, s.ServingLTE.SINR)
			nr := throughput.CapacityMbps(cellular.TechNR, s.ServingNR.Band, s.ServingNR.SINR)
			vals = append(vals, throughput.Effective(mode, lte, nr, throughput.Interruption{}, true))
		}
		return stats.Mean(vals)
	}
	scgTput := tputFor(throughput.ModeSCG)
	if scgTput == 0 {
		return Table{}, fmt.Errorf("ext-bearer: no dual-attached samples")
	}

	for _, mode := range modes {
		var base, hoVals []float64
		for i := 0; i < 600; i++ {
			base = append(base, model.Sample(mode, cellular.HONone))
		}
		for _, h := range log.Handovers {
			if !h.Type.Is5G() {
				continue
			}
			for i := 0; i < 4; i++ {
				hoVals = append(hoVals, model.Sample(mode, h.Type))
			}
		}
		if len(hoVals) == 0 {
			return Table{}, fmt.Errorf("ext-bearer: no 5G handovers in drive")
		}
		mb, mh := stats.Median(base), stats.Median(hoVals)
		t.Rows = append(t.Rows, []string{
			mode.String(),
			fmtF(mb, 1), fmtF(mh, 1),
			fmtF((mh/mb-1)*100, 1) + "%",
			fmtX(tputFor(mode) / scgTput),
		})
	}
	t.Notes = append(t.Notes,
		"dual-direct keeps 5G-only's base RTT and throughput while absorbing 5G-NR interruptions like dual mode",
		"this mode is the paper's own suggestion, implemented as a forward-looking extension")
	return t, nil
}

// ExtColocation validates the §6.3 convex-hull co-location heuristic
// against the simulator's ground truth: the detected co-location rate must
// track the deployed fraction, and the paper's 5%-36% observed band should
// be reachable with realistic deployment fractions.
func ExtColocation(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:     "ext-coloc",
		Title:  "EXTENSION: convex-hull co-location heuristic vs deployed ground truth",
		Header: []string{"deployed co-location", "NR cells observed", "detected rate", "paper context"},
	}
	for i, frac := range []float64{0.05, 0.25, 0.36, 0.60} {
		c := topology.OpX()
		c.NRLayers = c.NRLayers[:1]
		c.NRLayers[0].CoLocate = frac
		log, err := opts.simDrive(c, cellular.ArchNSA, opts.scaleLen(50000), 29, true, 1, opts.Seed+130+int64(i))
		if err != nil {
			return Table{}, err
		}
		rate, n := analysis.CoLocationRate(log, 10)
		ctx := "-"
		if frac >= 0.05 && frac <= 0.36 {
			ctx = "paper observed 5%-36% across carriers"
		}
		t.Rows = append(t.Rows, []string{
			fmtF(frac*100, 0) + "%", fmt.Sprint(n), fmtF(rate*100, 0) + "%", ctx,
		})
	}
	return t, nil
}
