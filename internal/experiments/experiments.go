// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate: each experiment function runs
// the required drives, applies the same analysis the authors applied to
// their XCAL logs, and returns a rendered table of the rows/series the
// paper reports. The cmd/vivisect binary and the repository's benchmark
// harness both drive this package.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/emu"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Table is one experiment's output: a titled grid plus free-form notes
// comparing against the paper's reported numbers.
type Table struct {
	ID string // experiment id, e.g. "fig8"
	// Title is the human-readable caption rendered in the header line.
	Title string
	// Header and Rows are the grid; every row must have len(Header) cells.
	Header []string
	Rows   [][]string
	// Notes are free-form comparison lines against the paper's numbers,
	// rendered after the grid.
	Notes []string
}

// Render formats the table as aligned plain text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes experiment scale; the defaults favour a few minutes of
// total runtime while keeping every statistic stable.
//
// Options is a value type: the Runner hands every spec its own copy, and
// all randomness inside an experiment must come from RNG or from seeds
// derived from Seed, so concurrent experiments never share PRNG state and
// parallel runs stay byte-identical to sequential ones.
type Options struct {
	// Seed drives all randomness (default 1). Every experiment derives
	// its drive seeds and sampling PRNGs from Seed plus a per-experiment
	// salt; see RNG.
	Seed int64
	// Scale multiplies drive lengths/lap counts (default 1.0). The
	// benchmark harness uses smaller scales for per-iteration timing.
	Scale float64

	// probe, when set by Runner via WithProbe, receives drive/handover
	// counts for the run-metrics report. Nil outside runner-managed runs.
	probe *metrics.Probe
}

// WithProbe returns a copy of o that credits simulated drives and their
// handover events to p. The Runner gives each spec its own probe so the
// -report output attributes work per experiment even under -jobs N.
func (o Options) WithProbe(p *metrics.Probe) Options {
	o.probe = p
	return o
}

// RNG returns a fresh experiment-owned PRNG seeded from Seed+salt. Each
// experiment must use a distinct salt and must never share the returned
// *rand.Rand with another spec: rand.Rand is not safe for concurrent use,
// and per-spec ownership is what keeps the parallel runner deterministic.
func (o Options) RNG(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(o.Seed + salt))
}

// observe credits one completed drive to the experiment's metrics probe.
func (o Options) observe(log *trace.Log) {
	if o.probe != nil {
		o.probe.ObserveDrive(len(log.Handovers))
	}
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// scaleInt applies the scale factor with a floor of 1.
func (o Options) scaleInt(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// scaleIntAtLeast scales but never below lo (some analyses need a minimum
// number of laps to observe rare events).
func (o Options) scaleIntAtLeast(n, lo int) int {
	v := o.scaleInt(n)
	if v < lo {
		v = lo
	}
	return v
}

func (o Options) scaleLen(m float64) float64 {
	v := m * o.Scale
	if v < 2000 {
		v = 2000
	}
	return v
}

// freewayDrive runs a freeway simulation with common defaults, crediting
// the drive to the experiment's metrics probe.
func (o Options) freewayDrive(carrier topology.CarrierProfile, arch cellular.Arch, lengthM float64, seed int64, skipMMW bool) (*trace.Log, error) {
	return o.run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteFreeway,
		RouteLengthM: lengthM,
		SpeedMPS:     29,
		Seed:         seed,
		TopoOpts:     topology.Options{SkipMMWave: skipMMW},
	})
}

// cityDrive runs a city-loop simulation (driving speed).
func (o Options) cityDrive(carrier topology.CarrierProfile, arch cellular.Arch, mode throughput.BearerMode, perimeterM float64, laps int, seed int64) (*trace.Log, error) {
	return o.run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: perimeterM,
		Laps:         laps,
		SpeedMPS:     8.3,
		BearerMode:   mode,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
}

// walkLoop runs a walking-loop simulation (the D1/D2 collection mode).
func (o Options) walkLoop(carrier topology.CarrierProfile, arch cellular.Arch, perimeterM float64, laps int, seed int64) (*trace.Log, error) {
	return o.run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: perimeterM,
		Laps:         laps,
		SpeedMPS:     1.4,
		BearerMode:   throughput.ModeSCG,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
}

// bandwidthTrace converts a log segment's throughput series into an
// emulator trace at 100 ms granularity.
func bandwidthTrace(log *trace.Log, from, to time.Duration) (*emu.BandwidthTrace, error) {
	const interval = 100 * time.Millisecond
	var mbps []float64
	var acc float64
	var n int
	next := from + interval
	for _, s := range log.Samples {
		if s.Time < from {
			continue
		}
		if s.Time >= to {
			break
		}
		for s.Time >= next {
			if n > 0 {
				mbps = append(mbps, acc/float64(n))
			} else if len(mbps) > 0 {
				mbps = append(mbps, mbps[len(mbps)-1])
			} else {
				mbps = append(mbps, 0)
			}
			acc, n = 0, 0
			next += interval
		}
		acc += s.TputMbps
		n++
	}
	if n > 0 {
		mbps = append(mbps, acc/float64(n))
	}
	return emu.NewBandwidthTrace(mbps, interval)
}

// simDrive is the fully-parameterised freeway drive used by the energy and
// dataset experiments.
func (o Options) simDrive(carrier topology.CarrierProfile, arch cellular.Arch, lengthM, speedMPS float64, skipMMW bool, density float64, seed int64) (*trace.Log, error) {
	return o.run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteFreeway,
		RouteLengthM: lengthM,
		SpeedMPS:     speedMPS,
		Seed:         seed,
		TopoOpts:     topology.Options{SkipMMWave: skipMMW, CityDensity: density},
	})
}

// saCarrier returns OpY restricted to low-band NR: the paper's SA service
// runs on n71 ("SA (over Low-Band)", Fig. 9).
func saCarrier() topology.CarrierProfile {
	c := topology.OpY()
	var nr []topology.Layer
	for _, l := range c.NRLayers {
		if l.Band == cellular.BandLow {
			nr = append(nr, l)
		}
	}
	c.NRLayers = nr
	return c
}

// run executes one simulated drive and records it with the probe. All
// drive helpers (and any experiment calling sim.Run directly) must go
// through it so the -report drive/handover counts stay complete.
func (o Options) run(cfg sim.Config) (*trace.Log, error) {
	log, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	o.observe(log)
	return log, nil
}

// fmtF renders a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// fmtX renders a ratio as "2.26x".
func fmtX(v float64) string { return fmt.Sprintf("%.2fx", v) }
