// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulated substrate: each experiment function runs
// the required drives, applies the same analysis the authors applied to
// their XCAL logs, and returns a rendered table of the rows/series the
// paper reports. The cmd/vivisect binary and the repository's benchmark
// harness both drive this package.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cellular"
	"repro/internal/emu"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Table is one experiment's output: a titled grid plus free-form notes
// comparing against the paper's reported numbers.
type Table struct {
	ID     string // experiment id, e.g. "fig8"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes experiment scale; the defaults favour a few minutes of
// total runtime while keeping every statistic stable.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Scale multiplies drive lengths/lap counts (default 1.0). The
	// benchmark harness uses smaller scales for per-iteration timing.
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// scaleInt applies the scale factor with a floor of 1.
func (o Options) scaleInt(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// scaleIntAtLeast scales but never below lo (some analyses need a minimum
// number of laps to observe rare events).
func (o Options) scaleIntAtLeast(n, lo int) int {
	v := o.scaleInt(n)
	if v < lo {
		v = lo
	}
	return v
}

func (o Options) scaleLen(m float64) float64 {
	v := m * o.Scale
	if v < 2000 {
		v = 2000
	}
	return v
}

// freewayDrive runs a freeway simulation with common defaults.
func freewayDrive(carrier topology.CarrierProfile, arch cellular.Arch, lengthM float64, seed int64, skipMMW bool) (*trace.Log, error) {
	return sim.Run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteFreeway,
		RouteLengthM: lengthM,
		SpeedMPS:     29,
		Seed:         seed,
		TopoOpts:     topology.Options{SkipMMWave: skipMMW},
	})
}

// cityDrive runs a city-loop simulation (driving speed).
func cityDrive(carrier topology.CarrierProfile, arch cellular.Arch, mode throughput.BearerMode, perimeterM float64, laps int, seed int64) (*trace.Log, error) {
	return sim.Run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: perimeterM,
		Laps:         laps,
		SpeedMPS:     8.3,
		BearerMode:   mode,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
}

// walkLoop runs a walking-loop simulation (the D1/D2 collection mode).
func walkLoop(carrier topology.CarrierProfile, arch cellular.Arch, perimeterM float64, laps int, seed int64) (*trace.Log, error) {
	return sim.Run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: perimeterM,
		Laps:         laps,
		SpeedMPS:     1.4,
		BearerMode:   throughput.ModeSCG,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
}

// bandwidthTrace converts a log segment's throughput series into an
// emulator trace at 100 ms granularity.
func bandwidthTrace(log *trace.Log, from, to time.Duration) (*emu.BandwidthTrace, error) {
	const interval = 100 * time.Millisecond
	var mbps []float64
	var acc float64
	var n int
	next := from + interval
	for _, s := range log.Samples {
		if s.Time < from {
			continue
		}
		if s.Time >= to {
			break
		}
		for s.Time >= next {
			if n > 0 {
				mbps = append(mbps, acc/float64(n))
			} else if len(mbps) > 0 {
				mbps = append(mbps, mbps[len(mbps)-1])
			} else {
				mbps = append(mbps, 0)
			}
			acc, n = 0, 0
			next += interval
		}
		acc += s.TputMbps
		n++
	}
	if n > 0 {
		mbps = append(mbps, acc/float64(n))
	}
	return emu.NewBandwidthTrace(mbps, interval)
}

// simDrive is the fully-parameterised freeway drive used by the energy and
// dataset experiments.
func simDrive(carrier topology.CarrierProfile, arch cellular.Arch, lengthM, speedMPS float64, skipMMW bool, density float64, seed int64) (*trace.Log, error) {
	return sim.Run(sim.Config{
		Carrier:      carrier,
		Arch:         arch,
		RouteKind:    geo.RouteFreeway,
		RouteLengthM: lengthM,
		SpeedMPS:     speedMPS,
		Seed:         seed,
		TopoOpts:     topology.Options{SkipMMWave: skipMMW, CityDensity: density},
	})
}

// saCarrier returns OpY restricted to low-band NR: the paper's SA service
// runs on n71 ("SA (over Low-Band)", Fig. 9).
func saCarrier() topology.CarrierProfile {
	c := topology.OpY()
	var nr []topology.Layer
	for _, l := range c.NRLayers {
		if l.Band == cellular.BandLow {
			nr = append(nr, l)
		}
	}
	c.NRLayers = nr
	return c
}

// newRNG returns a seeded PRNG for experiment-local sampling.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fmtF renders a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// fmtX renders a ratio as "2.26x".
func fmtX(v float64) string { return fmt.Sprintf("%.2fx", v) }
