package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/cellular"
	"repro/internal/topology"
)

// determinismOpts is the configuration the acceptance criteria pin down:
// every registered experiment at Scale 0.1 must render byte-identically
// whether run sequentially or on the worker pool.
func determinismOpts() Options { return Options{Seed: 11, Scale: 0.1} }

// determinismSpecs returns the registry, trimmed of the slow experiments
// under -short and under the race detector (which multiplies CPU time).
func determinismSpecs(t *testing.T) []Spec {
	specs := All()
	if !testing.Short() && !raceEnabled {
		return specs
	}
	var fast []Spec
	for _, s := range specs {
		if !trimmed(s.ID) {
			fast = append(fast, s)
		}
	}
	t.Logf("trimmed suite: running %d/%d experiments", len(fast), len(specs))
	return fast
}

// TestRunnerDeterminism renders every experiment through a sequential
// runner and a parallel runner and requires byte-identical tables.
func TestRunnerDeterminism(t *testing.T) {
	specs := determinismSpecs(t)

	// Neither run may fail as a whole, but an individual experiment is
	// allowed to error at this tiny scale (e.g. a drive too short to
	// observe a rare event) — determinism then means the parallel run
	// reproduces the exact same error.
	seq := Runner{Jobs: 1, Options: determinismOpts()}
	seqRes, _ := seq.Run(context.Background(), specs)
	par := Runner{Jobs: 4, Options: determinismOpts()}
	parRes, _ := par.Run(context.Background(), specs)

	for i := range specs {
		if seqRes[i].Spec.ID != specs[i].ID || parRes[i].Spec.ID != specs[i].ID {
			t.Fatalf("result %d out of spec order: seq=%s par=%s want %s",
				i, seqRes[i].Spec.ID, parRes[i].Spec.ID, specs[i].ID)
		}
		if se, pe := fmt.Sprint(seqRes[i].Err), fmt.Sprint(parRes[i].Err); se != pe {
			t.Errorf("%s: parallel error differs from sequential: %q vs %q", specs[i].ID, pe, se)
			continue
		}
		s, p := seqRes[i].Table.Render(), parRes[i].Table.Render()
		if s != p {
			t.Errorf("%s: parallel output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
				specs[i].ID, s, p)
		}
		if seqRes[i].Metrics.Drives != parRes[i].Metrics.Drives ||
			seqRes[i].Metrics.HOEvents != parRes[i].Metrics.HOEvents {
			t.Errorf("%s: work attribution differs: seq %d drives/%d HOs, par %d drives/%d HOs",
				specs[i].ID, seqRes[i].Metrics.Drives, seqRes[i].Metrics.HOEvents,
				parRes[i].Metrics.Drives, parRes[i].Metrics.HOEvents)
		}
	}
}

// fakeSpec builds a spec around an arbitrary run function.
func fakeSpec(id string, run func(Options) (Table, error)) Spec {
	return Spec{ID: id, Paper: "test", Run: run}
}

// runLog records which fake specs executed. Specs run on pool workers,
// so the appends must be synchronized.
type runLog struct {
	mu  sync.Mutex
	ids []string
}

func (l *runLog) add(id string) {
	l.mu.Lock()
	l.ids = append(l.ids, id)
	l.mu.Unlock()
}

func (l *runLog) list() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.ids...)
}

func okSpec(id string, ran *runLog) Spec {
	return fakeSpec(id, func(Options) (Table, error) {
		ran.add(id)
		return Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	})
}

// TestRunnerFailFast checks that the first error cancels every spec not
// yet started, and that the error is surfaced with the experiment id.
func TestRunnerFailFast(t *testing.T) {
	boom := errors.New("boom")
	ran := &runLog{}
	specs := []Spec{
		okSpec("a", ran),
		fakeSpec("bad", func(Options) (Table, error) { return Table{}, boom }),
		okSpec("b", ran),
		okSpec("c", ran),
	}
	r := Runner{Jobs: 1, FailFast: true}
	res, err := r.Run(context.Background(), specs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := ran.list(); len(got) != 1 || got[0] != "a" {
		t.Errorf("executed %v, want only [a] (fail-fast must skip b and c)", got)
	}
	if res[1].Err == nil || res[1].Skipped {
		t.Errorf("bad spec: err=%v skipped=%v, want real error", res[1].Err, res[1].Skipped)
	}
	for _, i := range []int{2, 3} {
		if !res[i].Skipped {
			t.Errorf("spec %s not marked skipped", res[i].Spec.ID)
		}
		if !res[i].Metrics.Skipped || res[i].Metrics.Err == "" {
			t.Errorf("spec %s metrics %+v must record the skip", res[i].Spec.ID, res[i].Metrics)
		}
	}
}

// TestRunnerKeepsGoingWithoutFailFast checks the default mode matches the
// historical `vivisect all` behaviour: every experiment runs, errors are
// collected.
func TestRunnerKeepsGoingWithoutFailFast(t *testing.T) {
	boom := errors.New("boom")
	ran := &runLog{}
	specs := []Spec{
		fakeSpec("bad", func(Options) (Table, error) { return Table{}, boom }),
		okSpec("a", ran),
		okSpec("b", ran),
	}
	r := Runner{Jobs: 1}
	res, err := r.Run(context.Background(), specs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := ran.list(); len(got) != 2 {
		t.Errorf("executed %v, want both a and b despite the earlier error", got)
	}
	for _, re := range res {
		if re.Skipped {
			t.Errorf("spec %s skipped without FailFast", re.Spec.ID)
		}
	}
}

// TestRunnerEvents checks the completion stream: one event per spec with
// coherent progress counters.
func TestRunnerEvents(t *testing.T) {
	ran := &runLog{}
	specs := []Spec{okSpec("a", ran), okSpec("b", ran), okSpec("c", ran)}
	events := make(chan Event, len(specs))
	r := Runner{Jobs: 2, Events: events}
	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	close(events)
	var dones []int
	ids := map[string]bool{}
	for ev := range events {
		if ev.Total != len(specs) {
			t.Errorf("event total %d, want %d", ev.Total, len(specs))
		}
		if ev.Err != nil || ev.Skipped {
			t.Errorf("unexpected failure event %+v", ev)
		}
		if ev.Rows != 1 {
			t.Errorf("event rows %d, want 1", ev.Rows)
		}
		dones = append(dones, ev.Done)
		ids[ev.ID] = true
	}
	sort.Ints(dones)
	if len(dones) != 3 || dones[0] != 1 || dones[2] != 3 {
		t.Errorf("done counters %v, want a permutation of 1..3", dones)
	}
	if !ids["a"] || !ids["b"] || !ids["c"] {
		t.Errorf("event ids %v incomplete", ids)
	}
}

// TestRunnerCancelledContext checks that a dead context skips everything.
func TestRunnerCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := &runLog{}
	r := Runner{Jobs: 2}
	res, err := r.Run(ctx, []Spec{okSpec("a", ran), okSpec("b", ran)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.list(); len(got) != 0 {
		t.Errorf("executed %v, want nothing on a cancelled context", got)
	}
	for _, re := range res {
		if !re.Skipped {
			t.Errorf("spec %s not skipped", re.Spec.ID)
		}
	}
}

// TestRunnerMetricsAttribution runs a real (tiny) drive through the probe
// plumbing and checks the per-experiment counters.
func TestRunnerMetricsAttribution(t *testing.T) {
	spec := fakeSpec("drive", func(opts Options) (Table, error) {
		log, err := opts.freewayDrive(topology.OpX(), cellular.ArchLTE, 2000, opts.Seed, true)
		if err != nil {
			return Table{}, err
		}
		return Table{
			ID:     "drive",
			Header: []string{"hos"},
			Rows:   [][]string{{fmtF(float64(len(log.Handovers)), 0)}},
		}, nil
	})
	r := Runner{Jobs: 1, Options: Options{Seed: 5, Scale: 1}}
	res, err := r.Run(context.Background(), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	m := res[0].Metrics
	if m.Drives != 1 {
		t.Errorf("Drives = %d, want 1", m.Drives)
	}
	if m.HOEvents < 0 {
		t.Errorf("HOEvents = %d", m.HOEvents)
	}
	if m.WallMS <= 0 {
		t.Errorf("WallMS = %v, want > 0", m.WallMS)
	}
	if m.Rows != 1 {
		t.Errorf("Rows = %d, want 1", m.Rows)
	}
	if m.ID != "drive" || m.Paper != "test" {
		t.Errorf("identity %q/%q", m.ID, m.Paper)
	}

	rep := BuildReport(r.Options, r.Jobs, 0, res)
	if rep.Seed != 5 || rep.Jobs != 1 || len(rep.Experiments) != 1 {
		t.Errorf("report %+v", rep)
	}
	if rep.TotalDrives() != 1 || rep.TotalHOEvents() != m.HOEvents {
		t.Errorf("report totals drives=%d hos=%d", rep.TotalDrives(), rep.TotalHOEvents())
	}
}
