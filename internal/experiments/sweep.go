package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/policygen"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Sweep drive shape: a city loop at driving speed, the regime where the
// paper's policy diversity actually bites (dense grid, frequent decisions).
// The loop repeats until at least DriveSeconds of sim time have elapsed.
const (
	sweepPerimeterM  = 2400.0
	sweepSpeedMPS    = 8.3
	sweepCityDensity = 0.7
	// sweepSimSalt decorrelates the per-carrier sim seed from the
	// portfolio-sampling seed (both derive from MixSeed(seed, i)).
	sweepSimSalt = 0x51edd005
)

// SweepConfig parameterises a policy-portfolio sweep: Carriers generated
// portfolios are drawn from Seed, each is driven for at least DriveSeconds
// of sim time, and an online Prognos learner is replayed over the drive to
// measure how fast it converges on the unseen policy — and, with Drift, how
// fast it recovers after the carrier rewrites its policy mid-run.
type SweepConfig struct {
	// Carriers is the population size; Seed determines every portfolio,
	// drift and drive in it.
	Carriers int
	Seed     int64
	// Drift schedules a full policy rewrite at DriveSeconds/2 into each
	// carrier's drive (policygen.Drifted of the same index).
	Drift bool
	// Jobs is the worker count (≤0 ⇒ 1). The report is byte-identical at
	// any value: each carrier owns its RNG streams outright.
	Jobs int
	// F1Threshold is the convergence bar (default 0.6); DriveSeconds the
	// minimum per-carrier sim duration (default 600); BucketSeconds the F1
	// series bucket (default 30); WindowSeconds the prediction-window match
	// tolerance (default 1).
	F1Threshold   float64
	DriveSeconds  float64
	BucketSeconds float64
	WindowSeconds float64
	// Stats, when set, receives each finished carrier for live ops-plane
	// export (obs.RegisterSweepMetrics).
	Stats *metrics.SweepStats
	// OnCarrier, when set, is invoked for each finished carrier from
	// whatever worker ran it (concurrently under Jobs > 1).
	OnCarrier func(metrics.SweepCarrier)
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Carriers <= 0 {
		c.Carriers = 1
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.F1Threshold == 0 {
		c.F1Threshold = 0.6
	}
	if c.DriveSeconds == 0 {
		c.DriveSeconds = 600
	}
	if c.BucketSeconds == 0 {
		c.BucketSeconds = 30
	}
	if c.WindowSeconds == 0 {
		c.WindowSeconds = 1
	}
	return c
}

// RunSweep fans Carriers generated portfolios across Jobs workers and
// returns the assembled report. Per-carrier failures are recorded in the
// carrier's Error field rather than aborting the sweep; RunSweep itself only
// errors on context cancellation. Results are ordered by carrier index and
// the report bytes are independent of Jobs.
func RunSweep(ctx context.Context, cfg SweepConfig) (metrics.SweepReport, error) {
	cfg = cfg.withDefaults()
	report := metrics.SweepReport{
		Seed:          cfg.Seed,
		Carriers:      cfg.Carriers,
		Drift:         cfg.Drift,
		F1Threshold:   cfg.F1Threshold,
		DriveSeconds:  cfg.DriveSeconds,
		BucketSeconds: cfg.BucketSeconds,
		WindowSeconds: cfg.WindowSeconds,
	}
	if cfg.Drift {
		report.DriftAtS = cfg.DriveSeconds / 2
	}
	if cfg.Stats != nil {
		cfg.Stats.Start(cfg.Carriers)
	}

	results := make([]metrics.SweepCarrier, cfg.Carriers)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := runSweepCarrier(cfg, i)
				results[i] = c
				if cfg.Stats != nil {
					cfg.Stats.Observe(c)
				}
				if cfg.OnCarrier != nil {
					cfg.OnCarrier(c)
				}
			}
		}()
	}
	cancelled := false
feed:
	for i := 0; i < cfg.Carriers; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
	}
	close(work)
	wg.Wait()
	if cancelled {
		return report, ctx.Err()
	}
	report.Results = results
	report.Summarize()
	return report, nil
}

// runSweepCarrier runs one generated carrier end to end: sample the
// portfolio (and its drift), simulate the drive under the scenario, replay
// an online Prognos learner over the trace, and read convergence off the
// windowed F1 series. Everything is a pure function of (cfg, i).
func runSweepCarrier(cfg SweepConfig, i int) metrics.SweepCarrier {
	out := metrics.SweepCarrier{Index: i, Name: policygen.GeneratedName(i)}
	base := policygen.Generate(cfg.Seed, i)
	out.Sequence = base.SequenceString()
	scenario := &policygen.Scenario{Base: base}
	driftAt := time.Duration(cfg.DriveSeconds / 2 * float64(time.Second))
	if cfg.Drift {
		drifted := policygen.Drifted(cfg.Seed, i)
		out.DriftSequence = drifted.SequenceString()
		scenario.Drifts = []policygen.Drift{{At: driftAt, Portfolio: drifted}}
	}

	laps := int(math.Ceil(cfg.DriveSeconds * sweepSpeedMPS / sweepPerimeterM))
	if laps < 1 {
		laps = 1
	}
	log, err := sim.Run(sim.Config{
		Carrier:      base.Deployment,
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: sweepPerimeterM,
		Laps:         laps,
		SpeedMPS:     sweepSpeedMPS,
		Seed:         policygen.MixSeed(cfg.Seed, i) ^ sweepSimSalt,
		Scenario:     scenario,
		TopoOpts:     topology.Options{CityDensity: sweepCityDensity},
	})
	if err != nil {
		out.Error = fmt.Sprintf("sim: %v", err)
		return out
	}
	out.Handovers = len(log.Handovers)
	out.Reports = len(log.Reports)

	// The learner sniffs the event configs (Prognos step 1); under drift it
	// must know both vocabularies, since the base decision event (say A3)
	// can drift into a different one (A5).
	configs := ran.EventConfigsFromPortfolio(&base, cellular.ArchNSA)
	if cfg.Drift {
		drifted := scenario.Drifts[0].Portfolio
		configs = unionConfigs(configs, ran.EventConfigsFromPortfolio(&drifted, cellular.ArchNSA))
	}
	prog, err := core.New(core.Config{
		EventConfigs:       configs,
		UseReportPredictor: true,
		Arch:               cellular.ArchNSA,
	})
	if err != nil {
		out.Error = fmt.Sprintf("prognos: %v", err)
		return out
	}
	ticks := core.Replay(prog, log)
	bucket := time.Duration(cfg.BucketSeconds * float64(time.Second))
	window := time.Duration(cfg.WindowSeconds * float64(time.Second))
	series := analysis.F1Series(ticks, log.Handovers, bucket, window)

	// The floor is measured from the first convergence point: every run
	// starts at F1 0 while the pattern DB is empty, so a whole-drive floor
	// would be identically zero and carry no stress signal. Once converged,
	// the floor captures how far quality ever falls again — under drift,
	// the rewrite's damage.
	floorFrom := time.Duration(0)
	if ttf, ok := analysis.TimeToThreshold(series, cfg.F1Threshold, 0); ok {
		out.Converged = true
		out.TimeToF1S = ttf.Seconds()
		floorFrom = ttf
	}
	if fl, ok := analysis.Floor(series, floorFrom); ok {
		out.FloorF1 = fl
	}
	if tail, ok := analysis.Tail(series, 3); ok {
		out.FinalF1 = tail
	}
	if cfg.Drift {
		if re, ok := analysis.TimeToThreshold(series, cfg.F1Threshold, driftAt); ok {
			out.Reconverged = true
			out.ReconvergeS = re.Seconds()
		}
		if fl, ok := analysis.Floor(series, driftAt); ok {
			out.PostDriftMinF1 = fl
		}
		// Pre-drift quality: the last handover-carrying bucket fully
		// before the rewrite.
		for _, p := range series {
			if p.Start+bucket > driftAt {
				break
			}
			if p.Handovers > 0 {
				out.PreDriftF1 = p.F1
			}
		}
	}
	return out
}

// unionConfigs merges two event-config tables, keeping the first occurrence
// of each (Type, Tech) pair.
func unionConfigs(a, b []cellular.EventConfig) []cellular.EventConfig {
	seen := make(map[[2]int]bool, len(a)+len(b))
	var out []cellular.EventConfig
	for _, c := range append(append([]cellular.EventConfig{}, a...), b...) {
		k := [2]int{int(c.Type), int(c.Tech)}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}
