package experiments

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

// TestRunHOLoopDeterministicAcrossJobs is the holoop determinism contract
// (the same one RunSweep carries): the marshalled report bytes are identical
// at -jobs 1 and -jobs 4, because each UE is a pure function of (cfg, index)
// and the report records nothing about the execution (no wall-clock, no
// worker count).
func TestRunHOLoopDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-drive comparison; skipped with -short")
	}
	cfg := HOLoopConfig{UEs: 4, Seed: 7, DriveSeconds: 120}
	cfg.Jobs = 1
	seq, err := RunHOLoop(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen atomic.Int64
	cfg.Jobs = 4
	cfg.OnUE = func(_ metrics.HOLoopUE) { seen.Add(1) }
	par, err := RunHOLoop(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	a, err := seq.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("report bytes differ between -jobs 1 and -jobs 4:\n%s\n----\n%s", a, b)
	}
	if seen.Load() != int64(cfg.UEs) {
		t.Errorf("OnUE fired %d times, want %d", seen.Load(), cfg.UEs)
	}
	for _, u := range seq.Results {
		if u.Error != "" {
			t.Errorf("UE %d errored: %s", u.Index, u.Error)
		}
		if u.Static.Handovers == 0 || u.Adaptive.Handovers == 0 {
			t.Errorf("UE %d saw no handovers — the drive carries no signal", u.Index)
		}
	}
}

// TestRunHOLoopReducesPingPong is the closed loop's reason to exist, asserted
// at fleet scale where the aggregate is statistically meaningful (the same
// bar `vivisect holoop -gate` holds in CI at 64 UEs): the adaptive arm's
// pooled ping-pong rate is below the static arm's, and its in-loop prediction
// F1 is no worse than the static arm's offline replay beyond a small epsilon.
func TestRunHOLoopReducesPingPong(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale comparison; skipped with -short")
	}
	rep, err := RunHOLoop(context.Background(), HOLoopConfig{
		UEs:          32,
		Seed:         1,
		Jobs:         4,
		DriveSeconds: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.StaticPingPongs == 0 {
		t.Fatal("static arm saw no ping-pongs — the scenario carries no churn to reduce")
	}
	if s.AdaptivePingPongRate >= s.StaticPingPongRate {
		t.Errorf("adaptive ping-pong rate %.4f not below static %.4f",
			s.AdaptivePingPongRate, s.StaticPingPongRate)
	}
	if s.PingPongReduction <= 0 {
		t.Errorf("ping-pong reduction %.4f not positive", s.PingPongReduction)
	}
	const f1Epsilon = 0.05
	if s.AdaptiveF1 < s.StaticF1-f1Epsilon {
		t.Errorf("adaptive F1 %.3f fell more than %.2f below static %.3f",
			s.AdaptiveF1, f1Epsilon, s.StaticF1)
	}
	if s.EarlyPreps == 0 || s.Reconfigs == 0 {
		t.Errorf("controller idle at fleet scale: %+v", s)
	}
}

// TestRunHOLoopValidation pins the error paths: an invalid spec and a
// fully-disabled spec both refuse to run, and a cancelled context aborts.
func TestRunHOLoopValidation(t *testing.T) {
	bad := HOLoopConfig{UEs: 1, Seed: 1}
	bad.Adaptive.MinConfidence = 2
	bad.Adaptive.AdaptTTT = true
	if _, err := RunHOLoop(context.Background(), bad); err == nil {
		t.Error("invalid spec accepted")
	}

	off := HOLoopConfig{UEs: 1, Seed: 1}
	off.Adaptive.MinConfidence = 0.4 // non-zero spec, but no control enabled
	if _, err := RunHOLoop(context.Background(), off); err == nil {
		t.Error("all-off spec accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunHOLoop(ctx, HOLoopConfig{UEs: 64, Seed: 1}); err == nil {
		t.Error("cancelled context ran to completion")
	}
}
