package experiments

import (
	"fmt"
	"time"

	"repro/internal/abr"
	"repro/internal/baseline"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/geo"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// d1Carrier returns the D1-style deployment: mmWave 5G plus mid-band LTE
// only (the paper's D1 dataset has no low-band 5G coverage).
func d1Carrier() topology.CarrierProfile {
	c := topology.OpX()
	var nr []topology.Layer
	for _, l := range c.NRLayers {
		if l.Band == cellular.BandMMWave {
			nr = append(nr, l)
		}
	}
	c.NRLayers = nr
	return c
}

// predictionDataset builds one of the §7.3 walking datasets.
func predictionDataset(name string, opts Options) (*trace.Log, error) {
	switch name {
	case "D1":
		// 7× 35-minute walking loops of a tourist area (mmWave + LTE).
		return opts.walkCustom(d1Carrier(), 2900, opts.scaleInt(7), opts.Seed+70)
	case "D2":
		// 10× 25-minute loops downtown, low-band 5G as well.
		return opts.walkCustom(topology.OpX(), 2100, opts.scaleInt(10), opts.Seed+71)
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

// walkCustom is the walking collection run both §7.3 datasets share.
func (opts Options) walkCustom(carrier topology.CarrierProfile, perimeterM float64, laps int, seed int64) (*trace.Log, error) {
	return opts.walkLoop(carrier, cellular.ArchNSA, perimeterM, laps, seed)
}

// splitByTime cuts a log at the given fraction of its duration (the 60/40
// train/test split of §7.3).
func splitByTime(l *trace.Log, frac float64) (train, test *trace.Log) {
	cut := time.Duration(float64(l.Duration()) * frac)
	train = &trace.Log{Carrier: l.Carrier, Arch: l.Arch, RouteKind: l.RouteKind}
	test = &trace.Log{Carrier: l.Carrier, Arch: l.Arch, RouteKind: l.RouteKind}
	for _, s := range l.Samples {
		if s.Time < cut {
			train.Samples = append(train.Samples, s)
		} else {
			test.Samples = append(test.Samples, s)
		}
	}
	for _, r := range l.Reports {
		if r.Time < cut {
			train.Reports = append(train.Reports, r)
		} else {
			test.Reports = append(test.Reports, r)
		}
	}
	for _, h := range l.Handovers {
		if h.Time < cut {
			train.Handovers = append(train.Handovers, h)
		} else {
			test.Handovers = append(test.Handovers, h)
		}
	}
	return train, test
}

// Table3 reproduces the prediction comparison on the D1/D2 walking datasets
// (paper: Prognos F1 0.92/0.94 vs GBC 0.48/0.40 and stacked LSTM
// 0.28/0.24). Event-level F1/precision/recall with a 1 s prediction window;
// accuracy is window-level.
func Table3(opts Options) (Table, error) {
	opts = opts.withDefaults()
	t := Table{
		ID:     "table3",
		Title:  "HO prediction on D1 and D2 (event-level, 1 s window)",
		Header: []string{"dataset", "method", "F1", "precision", "recall", "accuracy"},
	}
	for _, ds := range []string{"D1", "D2"} {
		log, err := predictionDataset(ds, opts)
		if err != nil {
			return Table{}, err
		}
		train, test := splitByTime(log, 0.6)
		if len(test.Handovers) == 0 {
			return Table{}, fmt.Errorf("table3: %s test split has no handovers", ds)
		}

		gbcParams := baseline.GBCParams{Seed: opts.Seed + 80}
		gbc, err := baseline.TrainGBC(baseline.ExtractExamples(train, time.Second, gbcParams), gbcParams)
		if err != nil {
			return Table{}, fmt.Errorf("table3: %s GBC: %w", ds, err)
		}
		lstmParams := baseline.LSTMParams{Seed: opts.Seed + 81, Epochs: 6, NegativeKeep: 0.02}
		lstm, err := baseline.TrainLSTM(baseline.ExtractSequences(train, time.Second, lstmParams), lstmParams)
		if err != nil {
			return Table{}, fmt.Errorf("table3: %s LSTM: %w", ds, err)
		}
		lstmPred := baseline.NewLSTMPredictor(lstm)
		// Ozturk et al.'s model over-fires (high recall, poor precision);
		// the permissive threshold reproduces that profile.
		lstmPred.Threshold = 0.25

		prog, err := core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor(log.Carrier, cellular.ArchNSA),
			Arch:               cellular.ArchNSA,
			UseReportPredictor: true,
		})
		if err != nil {
			return Table{}, err
		}
		progTicks := core.Replay(prog, log)
		cut := test.Samples[0].Time
		var progTest []core.TickPrediction
		for _, tk := range progTicks {
			if tk.Time >= cut {
				progTest = append(progTest, tk)
			}
		}

		evals := []struct {
			name string
			ev   core.EventOutcome
		}{
			{"GBC", core.EvaluateEvents(core.Replay(baseline.NewGBCPredictor(gbc), test), test.Handovers, time.Second)},
			{"Stacked LSTM", core.EvaluateEvents(core.Replay(lstmPred, test), test.Handovers, time.Second)},
			{"Prognos (ours)", core.EvaluateEvents(progTest, test.Handovers, time.Second)},
		}
		for _, e := range evals {
			t.Rows = append(t.Rows, []string{
				ds, e.name,
				fmtF(e.ev.F1(), 3), fmtF(e.ev.Precision(), 3), fmtF(e.ev.Recall(), 3), fmtF(e.ev.Accuracy(), 3),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: Prognos 0.919/0.936, GBC 0.475/0.396, stacked LSTM 0.284/0.241")
	return t, nil
}

// scoreFuncs builds the three ScoreAt variants for an ABR session over a
// log segment: PR queries Prognos' replayed prediction standing at the
// decision instant, GT consults the actual handovers in the decision's
// look-ahead window, and the base variant carries only the HasHO ground
// truth for error attribution.
func scoreFuncs(ticks []core.TickPrediction, handovers []cellular.HandoverEvent, from, horizon time.Duration) (pr, gt, none abr.ScoreAtFunc) {
	scores := core.DefaultScores()
	hasHOIn := func(start, end time.Duration) (bool, cellular.HOType) {
		for _, h := range handovers {
			if h.Time >= start && h.Time < end {
				return true, h.Type
			}
			if h.Time >= end {
				break
			}
		}
		return false, cellular.HONone
	}
	predAt := func(t time.Duration) cellular.HOType {
		lo, hi := 0, len(ticks)-1
		if hi < 0 {
			return cellular.HONone
		}
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if ticks[mid].Time <= t {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return ticks[lo].Type
	}
	pr = func(now time.Duration) abr.ChunkContext {
		t := from + now
		hs, _ := hasHOIn(t, t+horizon)
		return abr.ChunkContext{Score: scores.Score(predAt(t)), HasHO: hs}
	}
	gt = func(now time.Duration) abr.ChunkContext {
		t := from + now
		hs, typ := hasHOIn(t, t+horizon)
		return abr.ChunkContext{Score: scores.Score(typ), HasHO: hs}
	}
	none = func(now time.Duration) abr.ChunkContext {
		t := from + now
		hs, _ := hasHOIn(t, t+horizon)
		return abr.ChunkContext{Score: 1, HasHO: hs}
	}
	return pr, gt, none
}

// abrWindow is one usable 240 s bandwidth window within a drive log.
type abrWindow struct {
	log   *trace.Log
	ticks []core.TickPrediction
	from  time.Duration
	bw    *emu.BandwidthTrace
}

// collectABRWindows generates drive logs and slices them into 240 s windows
// passing the paper's trace filter (mean < 400 Mbps, min > 2 Mbps).
func collectABRWindows(opts Options, want int) ([]abrWindow, error) {
	var out []abrWindow
	const winDur = 240 * time.Second
	for seedOff := int64(0); len(out) < want && seedOff < 8; seedOff++ {
		log, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, 0, 6000, 6, opts.Seed+90+seedOff)
		if err != nil {
			return nil, err
		}
		prog, err := core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor(log.Carrier, cellular.ArchNSA),
			Arch:               cellular.ArchNSA,
			UseReportPredictor: true,
		})
		if err != nil {
			return nil, err
		}
		ticks := core.Replay(prog, log)
		for from := 60 * time.Second; from+winDur < log.Duration() && len(out) < want; from += winDur {
			bw, err := bandwidthTrace(log, from, from+winDur)
			if err != nil {
				continue
			}
			// The paper's trace filter: average below 400 Mbps, minimum
			// above 2 Mbps. The minimum is taken over 1 s smoothing — raw
			// 100 ms bins legitimately hit zero inside HO interruptions.
			if bw.Mean() >= 400 || minOverSeconds(bw.Mbps, 10) <= 2 {
				continue
			}
			out = append(out, abrWindow{log: log, ticks: ticks, from: from, bw: bw})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no bandwidth windows passed the trace filter")
	}
	return out, nil
}

// minOverSeconds returns the minimum of win-sample rolling means.
func minOverSeconds(mbps []float64, win int) float64 {
	if win < 1 || len(mbps) < win {
		return 0
	}
	sum := 0.0
	for i := 0; i < win; i++ {
		sum += mbps[i]
	}
	minv := sum / float64(win)
	for i := win; i < len(mbps); i++ {
		sum += mbps[i] - mbps[i-win]
		if m := sum / float64(win); m < minv {
			minv = m
		}
	}
	return minv
}

// Fig14 reproduces the 16K panoramic VoD study (Fig. 14a/b): stall and
// quality for RB/fastMPC/robustMPC with and without HO-aware throughput
// correction, plus the prediction-error improvement during HO chunks.
func Fig14(opts Options) (Table, error) {
	opts = opts.withDefaults()
	windows, err := collectABRWindows(opts, opts.scaleInt(8))
	if err != nil {
		return Table{}, err
	}
	video := abr.Panoramic16K()
	algs := []abr.Algorithm{abr.RB{}, abr.MPC{}, abr.MPC{Robust: true}}

	type agg struct {
		stall, bitrate []float64
		errHO, errNoHO []float64
	}
	results := map[string]*agg{}
	get := func(k string) *agg {
		if results[k] == nil {
			results[k] = &agg{}
		}
		return results[k]
	}

	for _, w := range windows {
		pr, gt, none := scoreFuncs(w.ticks, w.log.Handovers, w.from, video.ChunkDur)
		for _, alg := range algs {
			for _, v := range []struct {
				suffix string
				scores abr.ScoreAtFunc
			}{{"", none}, {"-GT", gt}, {"-PR", pr}} {
				link := emu.NewLink(w.bw, 40*time.Millisecond)
				res, err := abr.PlayVoD(video, link, alg, v.scores)
				if err != nil {
					return Table{}, err
				}
				a := get(alg.Name() + v.suffix)
				a.stall = append(a.stall, res.StallPct)
				a.bitrate = append(a.bitrate, res.NormalizedBitrate)
				a.errHO = append(a.errHO, res.PredErrHO...)
				a.errNoHO = append(a.errNoHO, res.PredErrNoHO...)
			}
		}
	}

	t := Table{
		ID:     "fig14",
		Title:  "16K panoramic VoD QoE with HO-aware rate adaptation",
		Header: []string{"algorithm", "stall (%)", "norm. bitrate", "stall vs base", "tput MAE w/HO (Mbps)", "MAE w/o HO"},
	}
	for _, alg := range algs {
		base := get(alg.Name())
		for _, suffix := range []string{"", "-PR", "-GT"} {
			a := get(alg.Name() + suffix)
			rel := "-"
			if suffix != "" && stats.Mean(base.stall) > 0 {
				rel = fmtF((stats.Mean(a.stall)/stats.Mean(base.stall)-1)*100, 1) + "%"
			}
			t.Rows = append(t.Rows, []string{
				alg.Name() + suffix,
				fmtF(stats.Mean(a.stall), 2),
				fmtF(stats.Mean(a.bitrate), 3),
				rel,
				fmtF(stats.Mean(a.errHO), 1),
				fmtF(stats.Mean(a.errNoHO), 1),
			})
		}
	}
	fm, fmpr := get("fastMPC"), get("fastMPC-PR")
	if eHO, eHOpr := stats.Mean(fm.errHO), stats.Mean(fmpr.errHO); eHO > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("fastMPC tput prediction error during HO chunks: %.1f -> %.1f Mbps with Prognos (%.0f%% better; paper 52-61%%)",
			eHO, eHOpr, (1-eHOpr/eHO)*100))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d trace windows of 240 s (paper used 40+); paper: stall reduced 34.6-58.6%% with ~unchanged quality", len(windows)))
	return t, nil
}

// Fig14c reproduces the real-time volumetric study: quality and stall for
// ViVo and FESTIVE with GT/PR HO-awareness (paper: quality +15.1-36.2%,
// stall −0.24-3.67%).
func Fig14c(opts Options) (Table, error) {
	opts = opts.withDefaults()
	windows, err := collectABRWindows(opts, opts.scaleInt(8))
	if err != nil {
		return Table{}, err
	}
	video := abr.ViVoVideo()
	algs := []abr.Algorithm{abr.ViVoRate{}, abr.FESTIVE{}}

	type agg struct{ stall, quality []float64 }
	results := map[string]*agg{}
	get := func(k string) *agg {
		if results[k] == nil {
			results[k] = &agg{}
		}
		return results[k]
	}
	for _, w := range windows {
		pr, gt, none := scoreFuncs(w.ticks, w.log.Handovers, w.from, video.SegDur)
		for _, alg := range algs {
			for _, v := range []struct {
				suffix string
				scores abr.ScoreAtFunc
			}{{"", none}, {"-GT", gt}, {"-PR", pr}} {
				link := emu.NewLink(w.bw, 40*time.Millisecond)
				res, err := abr.PlayVolumetric(video, link, alg, v.scores)
				if err != nil {
					return Table{}, err
				}
				a := get(alg.Name() + v.suffix)
				a.stall = append(a.stall, res.StallPct)
				a.quality = append(a.quality, res.AvgLevelBitrate)
			}
		}
	}
	t := Table{
		ID:     "fig14c",
		Title:  "Real-time volumetric streaming QoE with HO-aware rate adaptation",
		Header: []string{"algorithm", "avg quality (Mbps)", "stall (%)", "quality change", "stall change", "paper"},
	}
	for _, alg := range algs {
		base := get(alg.Name())
		for _, suffix := range []string{"", "-PR", "-GT"} {
			a := get(alg.Name() + suffix)
			qc, sc := "-", "-"
			paper := "-"
			if suffix != "" {
				qc = fmtF((stats.Mean(a.quality)/stats.Mean(base.quality)-1)*100, 1) + "%"
				sc = fmtF(stats.Mean(a.stall)-stats.Mean(base.stall), 2) + "pp"
				if suffix == "-PR" {
					paper = "quality +15.1-36.2%"
				}
			}
			t.Rows = append(t.Rows, []string{alg.Name() + suffix, fmtF(stats.Mean(a.quality), 1), fmtF(stats.Mean(a.stall), 2), qc, sc, paper})
		}
	}
	return t, nil
}

// Fig15 reproduces the bootstrapping study: F1 over time for a cold-started
// Prognos vs one seeded with the most frequent pattern per HO type (paper:
// bootstrap reaches F1 0.8 within 1.5 min; cold start needs 11-14 min).
func Fig15(opts Options) (Table, error) {
	opts = opts.withDefaults()
	teacherLog, err := predictionDataset("D1", opts)
	if err != nil {
		return Table{}, err
	}
	mk := func() (*core.Prognos, error) {
		return core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor(teacherLog.Carrier, cellular.ArchNSA),
			Arch:               cellular.ArchNSA,
			UseReportPredictor: true,
		})
	}
	teacher, err := mk()
	if err != nil {
		return Table{}, err
	}
	core.Replay(teacher, teacherLog)
	patterns := frequentPatterns(teacher.Learner().Patterns())

	testLog, err := opts.walkCustom(d1Carrier(), 2900, opts.scaleInt(3), opts.Seed+101)
	if err != nil {
		return Table{}, err
	}
	cold, err := mk()
	if err != nil {
		return Table{}, err
	}
	warm, err := mk()
	if err != nil {
		return Table{}, err
	}
	warm.Bootstrap(patterns)

	coldTicks := core.Replay(cold, testLog)
	warmTicks := core.Replay(warm, testLog)

	t := Table{
		ID:     "fig15",
		Title:  "Startup F1 with and without frequent-pattern bootstrap",
		Header: []string{"minutes elapsed", "F1 cold", "F1 bootstrapped"},
	}
	bucket := 4 * time.Minute
	for from := time.Duration(0); from < testLog.Duration(); from += bucket {
		to := from + bucket
		slice := func(ticks []core.TickPrediction) []core.TickPrediction {
			var out []core.TickPrediction
			for _, tk := range ticks {
				if tk.Time >= from && tk.Time < to {
					out = append(out, tk)
				}
			}
			return out
		}
		var hos []cellular.HandoverEvent
		for _, h := range testLog.Handovers {
			if h.Time >= from && h.Time < to {
				hos = append(hos, h)
			}
		}
		if len(hos) == 0 {
			continue
		}
		fc := core.EvaluateEvents(slice(coldTicks), hos, time.Second).F1()
		fw := core.EvaluateEvents(slice(warmTicks), hos, time.Second).F1()
		t.Rows = append(t.Rows, []string{fmtF(from.Minutes(), 0) + "-" + fmtF(to.Minutes(), 0), fmtF(fc, 3), fmtF(fw, 3)})
	}
	t.Notes = append(t.Notes, "paper: bootstrapping lifts F1 to 0.8 within 1.5 min; cold start stays low for the first minutes")
	return t, nil
}

// frequentPatterns keeps the highest-support pattern per HO type.
func frequentPatterns(ps []core.Pattern) []core.Pattern {
	best := map[cellular.HOType]core.Pattern{}
	for _, p := range ps {
		if b, ok := best[p.HO]; !ok || p.Support > b.Support {
			best[p.HO] = p
		}
	}
	out := make([]core.Pattern, 0, len(best))
	for _, p := range best {
		out = append(out, p)
	}
	return out
}

// Fig18 reproduces the lead-time study: how much earlier handovers are
// predicted with the report predictor enabled (paper: ≈931 ms earlier on
// average, at a 1.2% accuracy cost).
func Fig18(opts Options) (Table, error) {
	opts = opts.withDefaults()
	// Lead-time forecasting works on smoothly-evolving signals; a low-band
	// downtown walk (D2's low-band side) is the forecastable regime, while
	// mmWave blockage onsets are abrupt and bound the lead to the TTT.
	log, err := opts.run(sim.Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 2100,
		Laps:         opts.scaleInt(10),
		SpeedMPS:     1.4,
		Seed:         opts.Seed + 72,
		TopoOpts:     topology.Options{CityDensity: 0.7, SkipMMWave: true},
	})
	if err != nil {
		return Table{}, err
	}
	mk := func(use bool) (*core.Prognos, error) {
		return core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor(log.Carrier, cellular.ArchNSA),
			Arch:               cellular.ArchNSA,
			UseReportPredictor: use,
		})
	}
	with, err := mk(true)
	if err != nil {
		return Table{}, err
	}
	without, err := mk(false)
	if err != nil {
		return Table{}, err
	}
	wTicks := core.Replay(with, log)
	oTicks := core.Replay(without, log)

	classify := func(h cellular.HandoverEvent) string {
		if h.Type.Is5G() {
			return "5G"
		}
		return "LTE"
	}
	lead := func(ticks []core.TickPrediction, class string) []float64 {
		var hos []cellular.HandoverEvent
		for _, h := range log.Handovers {
			if classify(h) == class {
				hos = append(hos, h)
			}
		}
		var out []float64
		for _, d := range core.LeadTime(ticks, hos) {
			out = append(out, float64(d.Milliseconds()))
		}
		return out
	}

	t := Table{
		ID:     "fig18",
		Title:  "Prediction lead time with vs without the report predictor",
		Header: []string{"HO class", "variant", "n", "median lead (ms)", "p90 (ms)"},
	}
	var gains []float64
	for _, class := range []string{"LTE", "5G"} {
		lw := lead(wTicks, class)
		lo := lead(oTicks, class)
		if len(lw) == 0 || len(lo) == 0 {
			continue
		}
		t.Rows = append(t.Rows,
			[]string{class, "w/ report predictor", fmt.Sprint(len(lw)), fmtF(stats.Median(lw), 0), fmtF(stats.Percentile(lw, 90), 0)},
			[]string{class, "w/o report predictor", fmt.Sprint(len(lo)), fmtF(stats.Median(lo), 0), fmtF(stats.Percentile(lo, 90), 0)})
		gains = append(gains, stats.Median(lw)-stats.Median(lo))
	}
	if len(gains) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("median lead-time gain: %.0f ms (paper ~931 ms average)", stats.Mean(gains)))
	}
	return t, nil
}
