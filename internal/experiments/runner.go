package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Event is one completion notice streamed by Runner.Run while a batch is
// executing: enough for a live progress line without waiting for the whole
// run to finish. Events arrive in completion order, which under -jobs N is
// generally not registry order.
type Event struct {
	// ID and Paper identify the finished experiment.
	ID    string
	Paper string
	// Done is how many specs have finished (including this one) out of
	// Total.
	Done  int
	Total int
	// Duration is the experiment's wall-clock time (zero when skipped).
	Duration time.Duration
	// Rows counts the rendered table rows produced.
	Rows int
	// Err is the experiment's failure, nil on success.
	Err error
	// Skipped marks specs cancelled before they started (fail-fast or
	// context cancellation).
	Skipped bool
}

// Result pairs a spec with its output table and run metrics. Runner.Run
// returns results in spec order regardless of completion order, so callers
// can render parallel runs byte-identically to sequential ones.
type Result struct {
	// Spec is the experiment that ran.
	Spec Spec
	// Table is the experiment's output (zero value on error/skip).
	Table Table
	// Metrics records wall time, drives, handover events and allocations.
	Metrics metrics.Experiment
	// Err is the experiment's failure, nil on success.
	Err error
	// Skipped marks specs cancelled before they started.
	Skipped bool
}

// Runner executes experiment specs on a bounded worker pool.
//
// Determinism: every spec receives its own copy of Options and derives all
// of its randomness from Options.Seed plus per-experiment salts
// (Options.RNG and the per-drive seeds), so no PRNG state is shared
// between workers and a parallel run produces tables byte-identical to a
// sequential run with the same seed. The race-enabled tests in this
// package hold that property honest.
type Runner struct {
	// Jobs bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	// Jobs == 1 reproduces the historical strictly-sequential behaviour.
	Jobs int
	// Options is the base configuration handed to every spec.
	Options Options
	// FailFast cancels the specs not yet started after the first error.
	// Experiments already in flight run to completion (specs take no
	// context), so cancellation is between experiments, not within one.
	FailFast bool
	// Events, when non-nil, receives one Event per spec as it completes.
	// Run blocks sending on it and does not close it; the caller must
	// drain the channel until Run returns.
	Events chan<- Event
}

// Run executes specs and returns one Result per spec, in spec order. The
// returned error is the first experiment failure (or ctx's error), with
// the remaining results still populated; fail-fast skips are reported via
// Result.Skipped rather than as run errors.
func (r *Runner) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	opts := r.Options.withDefaults()
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}
	if len(specs) == 0 {
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(specs))
	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards done and firstErr
	var done int
	var firstErr error

	worker := func() {
		defer wg.Done()
		for i := range work {
			res := runOne(ctx, specs[i], opts)
			results[i] = res

			mu.Lock()
			done++
			ev := Event{
				ID:       res.Spec.ID,
				Paper:    res.Spec.Paper,
				Done:     done,
				Total:    len(specs),
				Duration: time.Duration(res.Metrics.WallMS * float64(time.Millisecond)),
				Rows:     res.Metrics.Rows,
				Err:      res.Err,
				Skipped:  res.Skipped,
			}
			if res.Err != nil && !res.Skipped && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", res.Spec.ID, res.Err)
				if r.FailFast {
					cancel()
				}
			}
			mu.Unlock()

			if r.Events != nil {
				r.Events <- ev
			}
		}
	}

	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go worker()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()

	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return results, firstErr
}

// runOne executes a single spec with its own metrics probe, or marks it
// skipped when the run was already cancelled.
func runOne(ctx context.Context, spec Spec, opts Options) Result {
	if err := ctx.Err(); err != nil {
		return Result{
			Spec:    spec,
			Err:     err,
			Skipped: true,
			Metrics: metrics.Experiment{ID: spec.ID, Paper: spec.Paper, Err: err.Error(), Skipped: true},
		}
	}

	probe := new(metrics.Probe)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	tab, err := spec.Run(opts.WithProbe(probe))
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	m := metrics.Experiment{
		ID:         spec.ID,
		Paper:      spec.Paper,
		WallMS:     float64(wall) / float64(time.Millisecond),
		Rows:       len(tab.Rows),
		Drives:     probe.Drives(),
		HOEvents:   probe.HOEvents(),
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if err != nil {
		m.Err = err.Error()
	}
	return Result{Spec: spec, Table: tab, Metrics: m, Err: err}
}

// BuildReport assembles the machine-readable run report for a finished
// batch: the run configuration plus every result's metrics, in spec order.
func BuildReport(opts Options, jobs int, wall time.Duration, results []Result) metrics.Report {
	opts = opts.withDefaults()
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	rep := metrics.Report{
		Seed:       opts.Seed,
		Scale:      opts.Scale,
		Jobs:       jobs,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		WallMS:     float64(wall) / float64(time.Millisecond),
	}
	for _, res := range results {
		rep.Experiments = append(rep.Experiments, res.Metrics)
	}
	return rep
}
