package experiments

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/stats"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Table1 reproduces the dataset-statistics table at 1/10 of the paper's
// mileage (the simulator trades distance for determinism; per-km statistics
// are scale-free). Each carrier gets freeway legs per offered architecture
// plus city loops with mmWave where deployed.
func Table1(opts Options) (Table, error) {
	opts = opts.withDefaults()
	freewayM := opts.scaleLen(480000) // 1/10 of the paper's ~4855-5560 km
	cityPerim := 7000.0
	cityLaps := opts.scaleInt(10)

	t := Table{
		ID:     "table1",
		Title:  "Driving dataset statistics (1/10-scale synthetic reproduction)",
		Header: []string{"statistic", "OpX", "OpY", "OpZ"},
	}
	type colStats struct {
		cells4G, cells5G       int
		cityKM, freewayKM      float64
		ho4G, hoNSA, hoSA      int
		minLow, minMid, minMMW float64
		minNSA, minSA, minLTE  float64
	}
	cols := make([]colStats, 3)

	for ci, carrier := range topology.Carriers() {
		var logs []*trace.Log
		// LTE + NSA freeway legs.
		lte, err := opts.freewayDrive(carrier, cellular.ArchLTE, freewayM*0.45, opts.Seed+int64(ci)*7, true)
		if err != nil {
			return Table{}, err
		}
		nsa, err := opts.freewayDrive(carrier, cellular.ArchNSA, freewayM*0.55, opts.Seed+int64(ci)*7+1, true)
		if err != nil {
			return Table{}, err
		}
		logs = append(logs, lte, nsa)
		cols[ci].freewayKM = lte.DistanceKM() + nsa.DistanceKM()
		var sa *trace.Log
		if carrier.Has(cellular.ArchSA) {
			sa, err = opts.freewayDrive(carrier, cellular.ArchSA, freewayM*0.08, opts.Seed+int64(ci)*7+2, true)
			if err != nil {
				return Table{}, err
			}
			logs = append(logs, sa)
			cols[ci].freewayKM += sa.DistanceKM()
		}
		city, err := opts.cityDrive(carrier, cellular.ArchNSA, throughput.ModeSCG, cityPerim, cityLaps, opts.Seed+int64(ci)*7+3)
		if err != nil {
			return Table{}, err
		}
		logs = append(logs, city)
		cols[ci].cityKM = city.DistanceKM()

		seen4G := map[cellular.PCI]bool{}
		seen5G := map[cellular.PCI]bool{}
		for _, l := range logs {
			for _, s := range l.Samples {
				dt := trace.SamplePeriod.Minutes()
				if s.ServingLTE.Valid {
					seen4G[s.ServingLTE.PCI] = true
				}
				if s.ServingNR.Valid {
					seen5G[s.ServingNR.PCI] = true
					switch s.ServingNR.Band {
					case cellular.BandLow:
						cols[ci].minLow += dt
					case cellular.BandMid:
						cols[ci].minMid += dt
					case cellular.BandMMWave:
						cols[ci].minMMW += dt
					}
				}
				switch s.Arch {
				case cellular.ArchNSA:
					cols[ci].minNSA += dt
				case cellular.ArchSA:
					cols[ci].minSA += dt
				default:
					cols[ci].minLTE += dt
				}
			}
			for _, h := range l.Handovers {
				switch {
				case h.Type == cellular.HOMCGH:
					cols[ci].hoSA++
				case h.Type.Is5G():
					cols[ci].hoNSA++
				default:
					cols[ci].ho4G++
				}
			}
		}
		cols[ci].cells4G = len(seen4G)
		cols[ci].cells5G = len(seen5G)
	}

	cell := func(f func(colStats) string) []string {
		return []string{f(cols[0]), f(cols[1]), f(cols[2])}
	}
	addRow := func(label string, f func(colStats) string) {
		t.Rows = append(t.Rows, append([]string{label}, cell(f)...))
	}
	naIfZero := func(v float64, prec int) string {
		if v == 0 {
			return "N/A"
		}
		return fmtF(v, prec)
	}
	addRow("# unique 4G cells", func(c colStats) string { return fmt.Sprint(c.cells4G) })
	addRow("# unique 5G cells", func(c colStats) string { return fmt.Sprint(c.cells5G) })
	addRow("city distance (km)", func(c colStats) string { return fmtF(c.cityKM, 0) })
	addRow("freeway distance (km)", func(c colStats) string { return fmtF(c.freewayKM, 0) })
	addRow("# 4G/LTE handovers", func(c colStats) string { return fmt.Sprint(c.ho4G) })
	addRow("# 5G-NSA procedures", func(c colStats) string { return fmt.Sprint(c.hoNSA) })
	addRow("# 5G-SA handovers", func(c colStats) string {
		if c.hoSA == 0 {
			return "N/A"
		}
		return fmt.Sprint(c.hoSA)
	})
	addRow("5G-NR low-band trace (min)", func(c colStats) string { return naIfZero(c.minLow, 0) })
	addRow("5G-NR mid-band trace (min)", func(c colStats) string { return naIfZero(c.minMid, 0) })
	addRow("5G-NR mmWave trace (min)", func(c colStats) string { return naIfZero(c.minMMW, 0) })
	addRow("5G-NSA trace (min)", func(c colStats) string { return naIfZero(c.minNSA, 0) })
	addRow("5G-SA trace (min)", func(c colStats) string { return naIfZero(c.minSA, 0) })
	addRow("4G/LTE trace (min)", func(c colStats) string { return naIfZero(c.minLTE, 0) })
	t.Notes = append(t.Notes, "distances are 1/10 of the paper's field trip; OpY deploys SA and mid-band, OpX/OpZ deploy mmWave, matching Table 1's N/A pattern")
	return t, nil
}

// dwellSegments returns per-cell dwell distances (km) of the NR serving
// leg in the given band. When mergeForcedBreaks is set, a dwell interrupted
// by a detach gap that resumes on the same PCI within resumeM metres is
// stitched — the paper's "hypothetical (ideal) scenario" of Fig. 11 where
// NSA-4C anchor churn is ignored.
func dwellSegments(log *trace.Log, band cellular.Band, mergeForcedBreaks bool) []float64 {
	const resumeM = 400.0
	type seg struct {
		pci        cellular.PCI
		start, end float64
	}
	// Build raw segments of contiguous same-PCI attachment.
	var segs []seg
	cur := seg{pci: -1}
	for _, s := range log.Samples {
		valid := s.ServingNR.Valid && s.ServingNR.Band == band
		switch {
		case valid && cur.pci == s.ServingNR.PCI:
			cur.end = s.OdometerM
		case valid:
			if cur.pci >= 0 && cur.end > cur.start {
				segs = append(segs, cur)
			}
			cur = seg{pci: s.ServingNR.PCI, start: s.OdometerM, end: s.OdometerM}
		case cur.pci >= 0:
			if cur.end > cur.start {
				segs = append(segs, cur)
			}
			cur = seg{pci: -1}
		}
	}
	if cur.pci >= 0 && cur.end > cur.start {
		segs = append(segs, cur)
	}
	// Optionally stitch same-PCI segments separated by short forced-release
	// gaps (the ideal "no NSA-4C" scenario).
	if mergeForcedBreaks {
		var merged []seg
		for _, s := range segs {
			if n := len(merged); n > 0 && merged[n-1].pci == s.pci && s.start-merged[n-1].end <= resumeM {
				merged[n-1].end = s.end
				continue
			}
			merged = append(merged, s)
		}
		segs = merged
	}
	out := make([]float64, 0, len(segs))
	for _, s := range segs {
		out = append(out, (s.end-s.start)/1000)
	}
	return out
}

// Fig11 reproduces the coverage landscape: per-band 5G cell dwell (the
// paper's coverage estimator) and the NSA effective-coverage reduction
// (paper: 1.4 / 0.73 / 0.15 km for low/mid/mmWave; NSA cuts low-band
// coverage 1.2-2× vs SA/ideal).
func Fig11(opts Options) (Table, error) {
	opts = opts.withDefaults()
	length := opts.scaleLen(60000)
	// OpX's NSA deployment is low-band-only once mmWave is excluded, so its
	// UEs dwell on low-band NR; OpY supplies the mid-band and SA data.
	nsaLow, err := opts.freewayDrive(topology.OpX(), cellular.ArchNSA, length, opts.Seed+40, true)
	if err != nil {
		return Table{}, err
	}
	nsaMid, err := opts.freewayDrive(topology.OpY(), cellular.ArchNSA, length, opts.Seed+43, true)
	if err != nil {
		return Table{}, err
	}
	saLow, err := opts.freewayDrive(saCarrier(), cellular.ArchSA, length, opts.Seed+41, true)
	if err != nil {
		return Table{}, err
	}
	mmw, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, throughput.ModeSCG, 5000, opts.scaleIntAtLeast(4, 3), opts.Seed+42)
	if err != nil {
		return Table{}, err
	}

	lowNSA := dwellSegments(nsaLow, cellular.BandLow, false)
	lowIdeal := dwellSegments(nsaLow, cellular.BandLow, true)
	lowSA := dwellSegments(saLow, cellular.BandLow, false)
	midNSA := dwellSegments(nsaMid, cellular.BandMid, false)
	midIdeal := dwellSegments(nsaMid, cellular.BandMid, true)
	mmwNSA := dwellSegments(mmw, cellular.BandMMWave, false)
	if len(lowNSA) == 0 || len(lowSA) == 0 || len(mmwNSA) == 0 {
		return Table{}, fmt.Errorf("fig11: missing dwell segments (lowNSA=%d lowSA=%d mmw=%d)", len(lowNSA), len(lowSA), len(mmwNSA))
	}

	t := Table{
		ID:     "fig11",
		Title:  "5G cell effective coverage (dwell diameter) by band and architecture",
		Header: []string{"band / scenario", "segments", "mean (km)", "median (km)", "p90 (km)", "paper"},
	}
	add := func(label string, vals []float64, paper string) {
		if len(vals) == 0 {
			return
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(len(vals)), fmtF(stats.Mean(vals), 2), fmtF(stats.Median(vals), 2), fmtF(stats.Percentile(vals, 90), 2), paper})
	}
	add("low-band, NSA", lowNSA, "~1.4 km avg; <=1.0 km vs SA")
	add("low-band, ideal (no NSA-4C)", lowIdeal, "hypothetical")
	add("low-band, SA", lowSA, ">2.0 km possible")
	add("mid-band, NSA", midNSA, "~0.73 km")
	add("mid-band, ideal", midIdeal, "slightly above NSA")
	add("mmWave, NSA", mmwNSA, "~0.15 km")
	t.Notes = append(t.Notes,
		fmt.Sprintf("NSA low-band coverage reduction vs SA: %.1fx (paper 1.2-2.0x)", stats.Mean(lowSA)/stats.Mean(lowNSA)),
		"coverage ordering low > mid > mmWave emerges from frequency-dependent path loss")
	return t, nil
}

// tputPhases measures mean throughput in the pre/exec/post windows around
// each matching handover (the §6.2 methodology).
func tputPhases(log *trace.Log, match func(cellular.HandoverEvent) bool) (pre, exec, post []float64) {
	meanWin := func(from, to time.Duration) (float64, bool) {
		s := 0.0
		n := 0
		for _, smp := range log.Samples {
			if smp.Time >= from && smp.Time < to {
				s += smp.TputMbps
				n++
			}
		}
		if n == 0 {
			return 0, false
		}
		return s / float64(n), true
	}
	for _, h := range log.Handovers {
		if match != nil && !match(h) {
			continue
		}
		// The pre window sits before the decision (T1 precedes the
		// command); the post window starts once the link has settled.
		preEnd := h.Time - h.T1
		if p, ok := meanWin(preEnd-3*time.Second, preEnd); ok {
			if e, ok2 := meanWin(h.Time, h.Time+h.T2); ok2 {
				if q, ok3 := meanWin(h.Time+h.T2+500*time.Millisecond, h.Time+h.T2+3500*time.Millisecond); ok3 {
					pre = append(pre, p)
					exec = append(exec, e)
					post = append(post, q)
				}
			}
		}
	}
	return pre, exec, post
}

// Fig12 reproduces the SCG Change bandwidth study on mmWave (paper:
// post-HO throughput averages 14% below pre-HO because the 5G→4G→5G
// sequence is decided without end-to-end signal comparison).
func Fig12(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.walkLoop(topology.OpX(), cellular.ArchNSA, 3000, opts.scaleIntAtLeast(6, 3), opts.Seed+50)
	if err != nil {
		return Table{}, err
	}
	pre, exec, post := tputPhases(log, func(h cellular.HandoverEvent) bool {
		return h.Type == cellular.HOSCGC && h.Band == cellular.BandMMWave
	})
	if len(pre) == 0 {
		return Table{}, fmt.Errorf("fig12: no mmWave SCGC handovers in walk")
	}
	t := Table{
		ID:     "fig12",
		Title:  "Impact of SCG Change on mmWave bandwidth (pre/exec/post)",
		Header: []string{"phase", "mean DL tput (Mbps)", "median (Mbps)"},
		Rows: [][]string{
			{"HOpre", fmtF(stats.Mean(pre), 0), fmtF(stats.Median(pre), 0)},
			{"HOexec", fmtF(stats.Mean(exec), 0), fmtF(stats.Median(exec), 0)},
			{"HOpost", fmtF(stats.Mean(post), 0), fmtF(stats.Median(post), 0)},
		},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("post vs pre: %+.0f%% over %d SCGC events (paper: -14%%)",
		(stats.Mean(post)/stats.Mean(pre)-1)*100, len(pre)))
	return t, nil
}

// Fig16 extends Fig12 to every HO type, with the trigger annotations of the
// appendix (paper: SCGA ≈ ×17 post/pre, SCGR ≈ ÷7, horizontal HOs lose
// 1.5-4.8× during execution, SCGM gains ≈43% post, LTEH ≈ −4%).
func Fig16(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.walkLoop(topology.OpX(), cellular.ArchNSA, 3000, opts.scaleIntAtLeast(8, 3), opts.Seed+51)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "fig16",
		Title:  "Per-HO-type throughput around handovers (mmWave NSA walk)",
		Header: []string{"HO type (trigger)", "n", "pre (Mbps)", "exec (Mbps)", "post (Mbps)", "post/pre", "paper"},
	}
	rows := []struct {
		label string
		typ   cellular.HOType
		paper string
	}{
		{"SCGM (NR-A3)", cellular.HOSCGM, "+43% post"},
		{"SCGC (NR-A2+NR-B1)", cellular.HOSCGC, "-14% post"},
		{"MNBH (A3)", cellular.HOMNBH, "~-4% post"},
		{"SCGA (NR-B1)", cellular.HOSCGA, "~17x post"},
		{"SCGR (NR-A2)", cellular.HOSCGR, "~1/7 post"},
	}
	for _, r := range rows {
		pre, exec, post := tputPhases(log, func(h cellular.HandoverEvent) bool { return h.Type == r.typ })
		if len(pre) == 0 {
			t.Rows = append(t.Rows, []string{r.label, "0", "-", "-", "-", "-", r.paper})
			continue
		}
		ratio := stats.Ratio(stats.Mean(post), stats.Mean(pre))
		t.Rows = append(t.Rows, []string{
			r.label, fmt.Sprint(len(pre)),
			fmtF(stats.Mean(pre), 0), fmtF(stats.Mean(exec), 0), fmtF(stats.Mean(post), 0),
			fmtX(ratio), r.paper,
		})
	}
	t.Notes = append(t.Notes, "vertical HOs (SCGA/SCGR) step capacity between the 4G and 5G planes; execution-phase throughput collapses for all horizontal types")
	return t, nil
}

// Fig13 reproduces the co-location study: NSA HO duration with the eNB and
// gNB on the same tower (same PCI) vs different towers (paper: ≈13 ms
// saved when co-located).
func Fig13(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.freewayDrive(topology.OpY(), cellular.ArchNSA, opts.scaleLen(60000), opts.Seed+60, true)
	if err != nil {
		return Table{}, err
	}
	var same, diff []float64
	for _, h := range log.Handovers {
		if !h.Type.Is5G() {
			continue
		}
		d := float64(h.Duration()) / float64(time.Millisecond)
		if h.CoLocated {
			same = append(same, d)
		} else {
			diff = append(diff, d)
		}
	}
	if len(same) == 0 || len(diff) == 0 {
		return Table{}, fmt.Errorf("fig13: need both co-located (%d) and non-co-located (%d) NSA HOs", len(same), len(diff))
	}
	t := Table{
		ID:     "fig13",
		Title:  "NSA HO duration (T1+T2) by eNB/gNB co-location",
		Header: []string{"condition", "n", "mean (ms)", "median (ms)"},
		Rows: [][]string{
			{"same PCI (co-located)", fmt.Sprint(len(same)), fmtF(stats.Mean(same), 1), fmtF(stats.Median(same), 1)},
			{"different PCI", fmt.Sprint(len(diff)), fmtF(stats.Mean(diff), 1), fmtF(stats.Median(diff), 1)},
		},
	}
	t.Notes = append(t.Notes, fmt.Sprintf("co-location saves %.1f ms on average (paper ~13 ms)", stats.Mean(diff)-stats.Mean(same)))
	return t, nil
}
