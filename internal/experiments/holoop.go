package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/policygen"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// holoopSimSalt decorrelates each UE's drive seed from the sweep and fleet
// seed streams (all derive from MixSeed-style mixing of the base seed).
const holoopSimSalt = 0x401_00b5

// HOLoopConfig parameterises the adaptive-vs-static handover comparison:
// UEs independent city drives, each simulated twice over the identical
// seed/route/deployment — once under the carrier's static policy, once with
// the prediction-driven adaptive layer closed over it.
type HOLoopConfig struct {
	// UEs is the fleet size; Seed determines every drive in it.
	UEs  int
	Seed int64
	// Jobs is the worker count (≤0 ⇒ 1). The report is byte-identical at
	// any value: each UE is a pure function of (cfg, index).
	Jobs int
	// Carrier / Arch pick the deployment and policy (default OpX NSA — the
	// dual-connectivity regime where all three adaptive controls apply).
	Carrier topology.CarrierProfile
	Arch    cellular.Arch
	// DriveSeconds is the minimum per-UE sim duration (default 120);
	// WindowSeconds the prediction-window match tolerance (default 1).
	DriveSeconds  float64
	WindowSeconds float64
	// Adaptive is the spec compiled into the adaptive arm's controller
	// (zero value ⇒ policygen.DefaultAdaptiveSpec). Its PingPongWindowS
	// also defines the ping-pong critical window for both arms' metrics.
	Adaptive policygen.AdaptiveSpec
	// OnUE, when set, is invoked for each finished UE from whatever worker
	// ran it (concurrently under Jobs > 1).
	OnUE func(metrics.HOLoopUE)
}

func (c HOLoopConfig) withDefaults() HOLoopConfig {
	if c.UEs <= 0 {
		c.UEs = 1
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Carrier.Name == "" {
		c.Carrier = topology.OpX()
	}
	if c.Arch == 0 {
		c.Arch = cellular.ArchNSA
	}
	if c.DriveSeconds == 0 {
		c.DriveSeconds = 120
	}
	if c.WindowSeconds == 0 {
		c.WindowSeconds = 1
	}
	if !c.Adaptive.Enabled() && c.Adaptive.MinConfidence == 0 {
		c.Adaptive = policygen.DefaultAdaptiveSpec()
	}
	return c
}

// RunHOLoop fans UEs across Jobs workers, driving each twice (static and
// adaptive arm), and returns the assembled comparison report. Per-UE
// failures land in the UE's Error field; RunHOLoop itself only errors on
// context cancellation or an invalid adaptive spec. Results are ordered by
// UE index and the report bytes are independent of Jobs.
func RunHOLoop(ctx context.Context, cfg HOLoopConfig) (metrics.HOLoopReport, error) {
	cfg = cfg.withDefaults()
	report := metrics.HOLoopReport{
		Seed:            cfg.Seed,
		UEs:             cfg.UEs,
		Carrier:         cfg.Carrier.Name,
		Arch:            cfg.Arch.String(),
		DriveSeconds:    cfg.DriveSeconds,
		PingPongWindowS: cfg.Adaptive.PingPongWindowS,
		WindowSeconds:   cfg.WindowSeconds,
		EarlyPrep:       cfg.Adaptive.EarlyPrep,
		SkipAhead:       cfg.Adaptive.SkipAhead,
		AdaptTTT:        cfg.Adaptive.AdaptTTT,
	}
	if err := cfg.Adaptive.Validate(); err != nil {
		return report, err
	}
	if !cfg.Adaptive.Enabled() {
		return report, fmt.Errorf("experiments: holoop needs at least one adaptive control enabled")
	}

	results := make([]metrics.HOLoopUE, cfg.UEs)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				u := runHOLoopUE(cfg, i)
				results[i] = u
				if cfg.OnUE != nil {
					cfg.OnUE(u)
				}
			}
		}()
	}
	cancelled := false
feed:
	for i := 0; i < cfg.UEs; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			cancelled = true
			break feed
		}
	}
	close(work)
	wg.Wait()
	if cancelled {
		return report, ctx.Err()
	}
	report.Results = results
	report.Summarize()
	return report, nil
}

// runHOLoopUE drives one UE through both arms. Everything is a pure
// function of (cfg, i): the two arms share seed, route and deployment, so
// any divergence is the controller's doing.
func runHOLoopUE(cfg HOLoopConfig, i int) metrics.HOLoopUE {
	seed := policygen.MixSeed(cfg.Seed, i) ^ holoopSimSalt
	out := metrics.HOLoopUE{Index: i, Seed: seed}

	laps := int(math.Ceil(cfg.DriveSeconds * sweepSpeedMPS / sweepPerimeterM))
	if laps < 1 {
		laps = 1
	}
	base := sim.Config{
		Carrier:      cfg.Carrier,
		Arch:         cfg.Arch,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: sweepPerimeterM,
		Laps:         laps,
		SpeedMPS:     sweepSpeedMPS,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: sweepCityDensity},
	}
	window := time.Duration(cfg.WindowSeconds * float64(time.Second))
	ppWindow := time.Duration(cfg.Adaptive.PingPongWindowS * float64(time.Second))

	// Static arm: plain drive, forecast quality measured by offline replay
	// of the same predictor the adaptive arm embeds.
	staticLog, err := sim.Run(base)
	if err != nil {
		out.Error = fmt.Sprintf("static sim: %v", err)
		return out
	}
	out.Static = armMetrics(staticLog, ppWindow)
	configs := ran.EventConfigsFor(cfg.Carrier.Name, cfg.Arch)
	prog, err := core.New(core.Config{
		EventConfigs:       configs,
		UseReportPredictor: true,
		Arch:               cfg.Arch,
	})
	if err != nil {
		out.Error = fmt.Sprintf("prognos: %v", err)
		return out
	}
	staticTicks := core.Replay(prog, staticLog)
	fillOutcome(&out.Static, staticTicks, staticLog.Handovers, window)

	// Adaptive arm: same seed, predictor in the loop.
	acfg := base
	acfg.Adaptive = ran.AdaptiveFromSpec(cfg.Adaptive)
	adaptLog, loop, err := sim.RunClosedLoop(acfg)
	if err != nil {
		out.Error = fmt.Sprintf("adaptive sim: %v", err)
		return out
	}
	out.Adaptive = armMetrics(adaptLog, ppWindow)
	fillOutcome(&out.Adaptive, loop.Ticks, adaptLog.Handovers, window)
	out.EarlyPreps = loop.Stats.EarlyPreps
	out.SkipAheads = loop.Stats.SkipAheads
	out.Reconfigs = loop.Stats.Reconfigs
	out.PrepSavedMS = loop.Stats.PrepSavedMS
	return out
}

// armMetrics computes one arm's mobility and QoE numbers from its trace.
func armMetrics(log *trace.Log, ppWindow time.Duration) metrics.HOLoopArm {
	arm := metrics.HOLoopArm{Handovers: len(log.Handovers)}
	for _, ho := range log.Handovers {
		if ho.SourceCell != "" && ho.TargetCell != "" && ho.SourceCell != ho.TargetCell {
			arm.Moves++
		}
	}
	arm.PingPongs = analysis.PingPongs(log.Handovers, ppWindow)
	if arm.Moves > 0 {
		arm.PingPongRate = float64(arm.PingPongs) / float64(arm.Moves)
	}
	intr := analysis.Interruption(log.Handovers)
	arm.InterruptMS = intr.TotalMS
	arm.MeanInterruptMS = intr.MeanMS
	arm.MeanTputMbps, arm.StallFrac = analysis.QoESummary(log.Samples, analysis.DefaultStallMbps)
	return arm
}

// fillOutcome attaches the event-level prediction outcome of one arm's
// forecast series to its metrics.
func fillOutcome(arm *metrics.HOLoopArm, ticks []core.TickPrediction, handovers []cellular.HandoverEvent, window time.Duration) {
	ev := core.EvaluateEvents(ticks, handovers, window)
	arm.TP, arm.FP, arm.FN = ev.TP, ev.FP, ev.FN
	arm.F1 = ev.F1()
}
