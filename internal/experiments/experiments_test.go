package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// fastOpts keeps per-experiment runtime manageable in the test suite.
func fastOpts() Options { return Options{Seed: 2, Scale: 0.25} }

// slowIDs are the experiments that train ML baselines or sweep many ABR
// sessions; they run in the full suite but are skipped under -short.
var slowIDs = map[string]bool{
	"table1": true, "table3": true, "fig14": true, "fig14c": true, "fig15": true,
	"ext-coloc": true,
}

// raceFastIDs is the subset cheap enough for the race detector, whose
// 5-10x CPU overhead would otherwise push the package past the test
// timeout on small machines. Race builds exercise the worker pool with
// these; the plain suite covers every experiment.
var raceFastIDs = map[string]bool{
	"fig4": true, "fig5": true, "fig6": true, "fig7": true,
	"fig8": true, "fig10": true, "fig18": true,
}

// trimmed reports whether the experiment is skipped in this build/mode.
func trimmed(id string) bool {
	if raceEnabled {
		return !raceFastIDs[id]
	}
	return testing.Short() && slowIDs[id]
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20 (every table and figure plus two extensions)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.ID == "" || s.Paper == "" || s.Run == nil {
			t.Fatalf("incomplete spec %+v", s)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate id %q", s.ID)
		}
		seen[s.ID] = true
		if _, err := ByID(s.ID); err != nil {
			t.Errorf("ByID(%q): %v", s.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestAllExperimentsRun executes every experiment at reduced scale and
// sanity-checks the rendered output.
func TestAllExperimentsRun(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			if trimmed(spec.ID) {
				t.Skip("slow experiment skipped under -short/-race")
			}
			tab, err := spec.Run(fastOpts())
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", spec.ID)
			}
			out := tab.Render()
			if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Title) {
				t.Errorf("%s: render missing id/title", spec.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s: row width %d != header %d (%v)", spec.ID, len(row), len(tab.Header), row)
				}
			}
		})
	}
}

// TestHOFrequencyShape asserts the §5.1 ordering from the experiment's own
// rows: SA spacing > LTE spacing > NSA spacing.
func TestHOFrequencyShape(t *testing.T) {
	if raceEnabled {
		t.Skip("single-threaded analysis; covered by the plain suite")
	}
	tab, err := HOFrequency(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	spacing := map[string]float64{}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad spacing cell %q", row[3])
		}
		spacing[row[0]] = v
	}
	lte := spacing["4G/LTE"]
	nsa := spacing["NSA 5G (all procedures)"]
	sa := spacing["SA 5G"]
	if !(nsa < lte && lte < sa) {
		t.Errorf("spacing ordering violated: NSA=%v LTE=%v SA=%v", nsa, lte, sa)
	}
	mmw := spacing["NSA mmWave (5G procedures)"]
	if mmw >= nsa {
		t.Errorf("mmWave spacing %v must be the smallest (NSA all = %v)", mmw, nsa)
	}
}

// TestFig13Shape asserts co-located NSA handovers complete faster.
func TestFig13Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("single-threaded analysis; covered by the plain suite")
	}
	tab, err := Fig13(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var same, diff float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad mean cell %q", row[2])
		}
		if strings.HasPrefix(row[0], "same") {
			same = v
		} else {
			diff = v
		}
	}
	if same >= diff {
		t.Errorf("co-located duration %v must be below non-co-located %v", same, diff)
	}
}

// TestFig8Shape asserts the NSA preparation-stage penalty over LTE.
func TestFig8Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("single-threaded analysis; covered by the plain suite")
	}
	tab, err := Fig8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var lte, nsaMax float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad T1 cell %q", row[2])
		}
		switch row[0] {
		case "LTE":
			lte = v
		case "NSA":
			if v > nsaMax {
				nsaMax = v
			}
		}
	}
	if nsaMax <= lte {
		t.Errorf("NSA T1 (%v) must exceed LTE (%v)", nsaMax, lte)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"note line"},
	}
	out := tab.Render()
	if !strings.Contains(out, "== x: demo ==") {
		t.Error("missing title line")
	}
	if !strings.Contains(out, "note: note line") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}
