package experiments

import (
	"context"
	"testing"

	"repro/internal/metrics"
)

// TestRunSweepDeterministicAcrossJobs is the sweep determinism contract:
// the marshalled report bytes are identical at -jobs 1 and -jobs 4 (per-spec
// RNG ownership — no worker shares a stream).
func TestRunSweepDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-drive sweep; skipped with -short")
	}
	cfg := SweepConfig{
		Carriers:     4,
		Seed:         7,
		Drift:        true,
		DriveSeconds: 120,
	}
	cfg.Jobs = 1
	seq, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stats metrics.SweepStats
	cfg.Jobs = 4
	cfg.Stats = &stats
	par, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	a, err := seq.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("report bytes differ between -jobs 1 and -jobs 4:\n%s\n----\n%s", a, b)
	}

	for i, c := range seq.Results {
		if c.Error != "" {
			t.Errorf("carrier %d errored: %s", i, c.Error)
		}
		if c.Handovers == 0 {
			t.Errorf("carrier %d saw no handovers — the drive carries no signal", i)
		}
		if c.DriftSequence == "" {
			t.Errorf("carrier %d missing drift sequence", i)
		}
	}
	if p := stats.Snapshot(); p.Done != cfg.Carriers || p.Planned != cfg.Carriers {
		t.Errorf("stats snapshot: %+v", p)
	}
}

// TestRunSweepCancel checks RunSweep honours context cancellation instead of
// running the full population.
func TestRunSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSweep(ctx, SweepConfig{Carriers: 64, Seed: 1, DriveSeconds: 120})
	if err == nil {
		t.Fatal("expected context error")
	}
}
