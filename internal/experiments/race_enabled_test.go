//go:build race

package experiments

// raceEnabled reports that this test binary was built with -race. The
// detector multiplies CPU time several-fold, so the suite trims the
// ML-training experiments under race builds the same way it does under
// -short; the plain build still covers every registered experiment.
const raceEnabled = true
