package experiments

import "fmt"

// Spec names one runnable experiment.
type Spec struct {
	// ID is the stable command-line name, e.g. "fig8".
	ID    string
	Paper string // the table/figure it regenerates
	// Run regenerates the table. It must derive all randomness from its
	// Options (seed salts / Options.RNG) and never touch shared mutable
	// state: the Runner may invoke many specs concurrently.
	Run func(Options) (Table, error)
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{ID: "table1", Paper: "Table 1", Run: Table1},
		{ID: "fig4", Paper: "Figure 4", Run: Fig4},
		{ID: "fig5", Paper: "Figure 5", Run: Fig5},
		{ID: "fig6", Paper: "Figure 6", Run: Fig6},
		{ID: "fig7", Paper: "Figure 7", Run: Fig7},
		{ID: "freq", Paper: "Section 5.1", Run: HOFrequency},
		{ID: "fig8", Paper: "Figure 8", Run: Fig8},
		{ID: "fig9", Paper: "Figure 9", Run: Fig9},
		{ID: "fig10", Paper: "Figure 10", Run: Fig10},
		{ID: "fig11", Paper: "Figure 11", Run: Fig11},
		{ID: "fig12", Paper: "Figure 12", Run: Fig12},
		{ID: "fig13", Paper: "Figure 13", Run: Fig13},
		{ID: "table3", Paper: "Table 3", Run: Table3},
		{ID: "fig14", Paper: "Figure 14a/b", Run: Fig14},
		{ID: "fig14c", Paper: "Figure 14c", Run: Fig14c},
		{ID: "fig15", Paper: "Figure 15", Run: Fig15},
		{ID: "fig16", Paper: "Figure 16", Run: Fig16},
		{ID: "fig18", Paper: "Figure 18", Run: Fig18},
		{ID: "ext-bearer", Paper: "§4.2 proposal (extension)", Run: ExtBearer},
		{ID: "ext-coloc", Paper: "§6.3 heuristic validation (extension)", Run: ExtColocation},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
