package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/cellular"
	"repro/internal/stats"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// Fig4 reproduces the video-conferencing study: average latency and packet
// loss inside HO windows vs outside, on a low-band NSA city drive (paper:
// latency ×2.26 average / ×14.5 worst, loss ×2.24).
func Fig4(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, throughput.ModeSCG, 4000, opts.scaleInt(6), opts.Seed)
	if err != nil {
		return Table{}, err
	}
	series := apps.SimulateConferencing(log, opts.Seed+100)

	var latHO, latNo, lossHO, lossNo []float64
	for _, s := range series {
		if s.InHO {
			latHO = append(latHO, s.LatencyMS)
			lossHO = append(lossHO, s.LossPct)
		} else {
			latNo = append(latNo, s.LatencyMS)
			lossNo = append(lossNo, s.LossPct)
		}
	}
	if len(latHO) == 0 || len(latNo) == 0 {
		return Table{}, fmt.Errorf("fig4: no HO (%d) or no-HO (%d) seconds in trace", len(latHO), len(latNo))
	}
	latRatio := stats.Mean(latHO) / stats.Mean(latNo)
	worst := stats.Max(latHO) / stats.Mean(latNo)
	lossRatio := stats.Mean(lossHO) / stats.Mean(lossNo)

	return Table{
		ID:     "fig4",
		Title:  "Video conferencing latency and packet loss during HOs (NSA low-band)",
		Header: []string{"metric", "w/o HO", "w/ HO", "ratio", "paper"},
		Rows: [][]string{
			{"avg latency (ms)", fmtF(stats.Mean(latNo), 1), fmtF(stats.Mean(latHO), 1), fmtX(latRatio), "2.26x"},
			{"worst latency (ms)", fmtF(stats.Max(latNo), 1), fmtF(stats.Max(latHO), 1), fmtX(worst), "up to 14.5x"},
			{"avg packet loss (%)", fmtF(stats.Mean(lossNo), 2), fmtF(stats.Mean(lossHO), 2), fmtX(lossRatio), "2.24x"},
		},
		Notes: []string{fmt.Sprintf("%d HO seconds / %d total seconds across %d handovers", len(latHO), len(series), len(log.Handovers))},
	}, nil
}

// Fig5 reproduces the cloud-gaming study: network latency and dropped
// frames during HOs, contrasting SCG modification (intra-gNB) with the
// MeNB handover (paper: MNBH averages +16.8 ms latency and +65% dropped
// frames over SCGM; overall drops ×2.6 during HOs).
func Fig5(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, throughput.ModeSCG, 4000, opts.scaleInt(6), opts.Seed+1)
	if err != nil {
		return Table{}, err
	}
	series := apps.SimulateGaming(log, opts.Seed+200)

	byType := map[cellular.HOType][]float64{}
	byTypeDrop := map[cellular.HOType][]float64{}
	var latNo, dropNo, dropHO []float64
	for _, s := range series {
		if !s.InHO {
			latNo = append(latNo, s.NetLatencyMS)
			dropNo = append(dropNo, s.DroppedPct)
			continue
		}
		byType[s.HOType] = append(byType[s.HOType], s.NetLatencyMS)
		byTypeDrop[s.HOType] = append(byTypeDrop[s.HOType], s.DroppedPct)
		dropHO = append(dropHO, s.DroppedPct)
	}
	if len(byType[cellular.HOSCGM]) == 0 || len(byType[cellular.HOMNBH]) == 0 {
		return Table{}, fmt.Errorf("fig5: missing SCGM (%d) or MNBH (%d) seconds", len(byType[cellular.HOSCGM]), len(byType[cellular.HOMNBH]))
	}
	scgmLat := stats.Mean(byType[cellular.HOSCGM])
	mnbhLat := stats.Mean(byType[cellular.HOMNBH])
	scgmDrop := stats.Mean(byTypeDrop[cellular.HOSCGM])
	mnbhDrop := stats.Mean(byTypeDrop[cellular.HOMNBH])

	return Table{
		ID:     "fig5",
		Title:  "Cloud gaming latency and frame drops during HOs (NSA)",
		Header: []string{"metric", "value", "paper"},
		Rows: [][]string{
			{"net latency no-HO (ms)", fmtF(stats.Mean(latNo), 1), "-"},
			{"net latency SCGM (ms)", fmtF(scgmLat, 1), "-"},
			{"net latency MNBH (ms)", fmtF(mnbhLat, 1), "-"},
			{"MNBH extra latency vs SCGM (ms)", fmtF(mnbhLat-scgmLat, 1), "16.8"},
			{"dropped frames no-HO (%)", fmtF(stats.Mean(dropNo), 2), "-"},
			{"dropped frames HO ratio", fmtX(stats.Mean(dropHO) / stats.Mean(dropNo)), "2.6x"},
			{"MNBH drop increase vs SCGM", fmtF((mnbhDrop/scgmDrop-1)*100, 0) + "%", "65%"},
		},
	}, nil
}

// Fig6 reproduces the volumetric-streaming band study: bitrate and network
// latency with and without HOs on low-band vs mmWave (paper: bitrate −31%
// low / −58% mmWave; latency +41% low / +107% mmWave).
func Fig6(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, throughput.ModeSCG, 4000, opts.scaleInt(8), opts.Seed+2)
	if err != nil {
		return Table{}, err
	}
	series := apps.SimulateVolumetric(log, opts.Seed+300)

	type bucket struct{ bit, lat []float64 }
	data := map[string]*bucket{}
	get := func(k string) *bucket {
		if data[k] == nil {
			data[k] = &bucket{}
		}
		return data[k]
	}
	for _, s := range series {
		var k string
		switch {
		case s.Band == cellular.BandMMWave && s.InHO:
			k = "mmWave/HO"
		case s.Band == cellular.BandMMWave:
			k = "mmWave/noHO"
		case s.InHO:
			k = "low/HO"
		default:
			k = "low/noHO"
		}
		b := get(k)
		b.bit = append(b.bit, s.BitrateMbps)
		b.lat = append(b.lat, s.NetLatencyMS)
	}
	for _, k := range []string{"low/noHO", "low/HO", "mmWave/noHO", "mmWave/HO"} {
		if data[k] == nil || len(data[k].bit) == 0 {
			return Table{}, fmt.Errorf("fig6: no samples in bucket %s", k)
		}
	}
	med := func(k string, f func(*bucket) []float64) float64 { return stats.Median(f(data[k])) }
	bitLowDrop := (1 - med("low/HO", func(b *bucket) []float64 { return b.bit })/med("low/noHO", func(b *bucket) []float64 { return b.bit })) * 100
	bitMMDrop := (1 - med("mmWave/HO", func(b *bucket) []float64 { return b.bit })/med("mmWave/noHO", func(b *bucket) []float64 { return b.bit })) * 100
	latLowUp := (med("low/HO", func(b *bucket) []float64 { return b.lat })/med("low/noHO", func(b *bucket) []float64 { return b.lat }) - 1) * 100
	latMMUp := (med("mmWave/HO", func(b *bucket) []float64 { return b.lat })/med("mmWave/noHO", func(b *bucket) []float64 { return b.lat }) - 1) * 100

	return Table{
		ID:     "fig6",
		Title:  "Volumetric streaming QoE: HO impact by radio band",
		Header: []string{"band", "median bitrate w/o|w/ HO (Mbps)", "bitrate drop", "paper", "median latency w/o|w/ HO (ms)", "latency rise", "paper"},
		Rows: [][]string{
			{"Low-Band",
				fmtF(med("low/noHO", func(b *bucket) []float64 { return b.bit }), 0) + "|" + fmtF(med("low/HO", func(b *bucket) []float64 { return b.bit }), 0),
				fmtF(bitLowDrop, 0) + "%", "31%",
				fmtF(med("low/noHO", func(b *bucket) []float64 { return b.lat }), 0) + "|" + fmtF(med("low/HO", func(b *bucket) []float64 { return b.lat }), 0),
				fmtF(latLowUp, 0) + "%", "41%"},
			{"mmWave",
				fmtF(med("mmWave/noHO", func(b *bucket) []float64 { return b.bit }), 0) + "|" + fmtF(med("mmWave/HO", func(b *bucket) []float64 { return b.bit }), 0),
				fmtF(bitMMDrop, 0) + "%", "58%",
				fmtF(med("mmWave/noHO", func(b *bucket) []float64 { return b.lat }), 0) + "|" + fmtF(med("mmWave/HO", func(b *bucket) []float64 { return b.lat }), 0),
				fmtF(latMMUp, 0) + "%", "107%"},
		},
	}, nil
}

// Fig7 reproduces the bearer-mode TCP study: RTT with and without HOs in
// dual (MCG split) vs 5G-only (SCG) mode (paper: dual absorbs 5G HOs with a
// 1-4% median shift; 5G-only inflates 37-58%; 5G-only has lower RTT without
// HOs).
func Fig7(opts Options) (Table, error) {
	opts = opts.withDefaults()
	log, err := opts.cityDrive(topology.OpX(), cellular.ArchNSA, throughput.ModeSCG, 4000, opts.scaleInt(6), opts.Seed+3)
	if err != nil {
		return Table{}, err
	}
	rng := opts.RNG(17)
	model := throughput.NewRTTModel(rng)

	modes := []throughput.BearerMode{throughput.ModeSplit, throughput.ModeSCG}
	cases := []cellular.HOType{cellular.HONone, cellular.HOSCGR, cellular.HOSCGA, cellular.HOSCGM}
	t := Table{
		ID:     "fig7",
		Title:  "TCP RTT during HOs: dual vs 5G-only NSA bearer modes",
		Header: []string{"mode", "case", "median RTT (ms)", "vs no-HO", "paper"},
	}
	// Draw per-second RTT samples conditioned on HO windows from the trace.
	for _, mode := range modes {
		var base float64
		for _, c := range cases {
			var vals []float64
			for _, h := range log.Handovers {
				if c != cellular.HONone && h.Type != c {
					continue
				}
				if c == cellular.HONone {
					break
				}
				// Several RTT probes land inside each HO window.
				for i := 0; i < 8; i++ {
					vals = append(vals, model.Sample(mode, c))
				}
			}
			if c == cellular.HONone {
				for i := 0; i < 400; i++ {
					vals = append(vals, model.Sample(mode, cellular.HONone))
				}
			}
			if len(vals) == 0 {
				continue
			}
			m := stats.Median(vals)
			if c == cellular.HONone {
				base = m
			}
			rel := "-"
			paper := "-"
			if c != cellular.HONone && base > 0 {
				rel = fmtF((m/base-1)*100, 1) + "%"
				if mode == throughput.ModeSplit {
					paper = "1-4%"
				} else {
					paper = "37-58%"
				}
			}
			t.Rows = append(t.Rows, []string{mode.String(), c.String(), fmtF(m, 1), rel, paper})
		}
	}
	t.Notes = append(t.Notes, "5G-only mode shows lower baseline RTT (core->gNB direct path); dual mode absorbs 5G-NR interruptions")
	return t, nil
}
