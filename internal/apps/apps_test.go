package apps

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

func driveLog(t *testing.T, seed int64) *trace.Log {
	t.Helper()
	log, err := sim.Run(sim.Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 4000,
		Laps:         3,
		SpeedMPS:     8.3,
		BearerMode:   throughput.ModeSCG,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestConferencingHOImpact(t *testing.T) {
	log := driveLog(t, 31)
	series := SimulateConferencing(log, 1)
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	var latHO, latNo []float64
	for _, s := range series {
		if s.LatencyMS <= 0 || s.LossPct < 0 || s.LossPct > 100 {
			t.Fatalf("implausible sample %+v", s)
		}
		if s.InHO {
			latHO = append(latHO, s.LatencyMS)
		} else {
			latNo = append(latNo, s.LatencyMS)
		}
	}
	if len(latHO) == 0 {
		t.Fatal("no HO seconds in a multi-HO drive")
	}
	ratio := stats.Mean(latHO) / stats.Mean(latNo)
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("HO latency inflation %vx, want ≈2.26x (§4.1)", ratio)
	}
	if stats.Max(latHO) > 14.5*stats.Mean(latNo)*1.2 {
		t.Error("latency tail exceeds the 14.5x cap")
	}
}

func TestGamingMNBHWorseThanSCGM(t *testing.T) {
	log := driveLog(t, 33)
	series := SimulateGaming(log, 2)
	byType := map[cellular.HOType][]float64{}
	drops := map[cellular.HOType][]float64{}
	for _, s := range series {
		if s.InHO {
			byType[s.HOType] = append(byType[s.HOType], s.NetLatencyMS)
			drops[s.HOType] = append(drops[s.HOType], s.DroppedPct)
		}
		if s.OtherLatMS <= 0 {
			t.Fatal("other latency must stay positive and flat")
		}
	}
	if len(byType[cellular.HOMNBH]) == 0 || len(byType[cellular.HOSCGM]) == 0 {
		t.Skip("drive lacked both HO types")
	}
	if stats.Mean(byType[cellular.HOMNBH]) <= stats.Mean(byType[cellular.HOSCGM]) {
		t.Error("MNBH must cost more latency than SCGM (§4.1)")
	}
	if stats.Mean(drops[cellular.HOMNBH]) <= stats.Mean(drops[cellular.HOSCGM]) {
		t.Error("MNBH must drop more frames than SCGM (§4.1)")
	}
}

func TestVolumetricBandSplit(t *testing.T) {
	log := driveLog(t, 35)
	series := SimulateVolumetric(log, 3)
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	var mmwNo, mmwHO []float64
	for _, s := range series {
		if s.BitrateMbps < 0 || s.BitrateMbps > 170 {
			t.Fatalf("bitrate %v outside the ladder", s.BitrateMbps)
		}
		if s.Band == cellular.BandMMWave {
			if s.InHO {
				mmwHO = append(mmwHO, s.BitrateMbps)
			} else {
				mmwNo = append(mmwNo, s.BitrateMbps)
			}
		}
	}
	if len(mmwNo) == 0 {
		t.Skip("no mmWave coverage on this seed")
	}
	if len(mmwHO) > 3 && stats.Median(mmwHO) >= stats.Median(mmwNo) {
		t.Error("mmWave HO seconds must degrade bitrate (§4.1)")
	}
}

func TestHoAtWindow(t *testing.T) {
	hos := []cellular.HandoverEvent{{Time: 10 * time.Second, Type: cellular.HOSCGM, T2: 100 * time.Millisecond}}
	if _, ok := hoAt(hos, 10*time.Second); !ok {
		t.Error("HO instant not covered")
	}
	if _, ok := hoAt(hos, 9600*time.Millisecond); !ok {
		t.Error("pre-window not covered")
	}
	if _, ok := hoAt(hos, 8*time.Second); ok {
		t.Error("far-before covered")
	}
	if _, ok := hoAt(hos, 12*time.Second); ok {
		t.Error("far-after covered")
	}
}
