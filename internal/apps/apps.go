// Package apps models the three interactive applications of §4 — live
// video conferencing (Zoom analogue), real-time cloud gaming (Steam Remote
// Play analogue), and real-time volumetric streaming (ViVo analogue) — on
// top of the simulated data plane. Each model consumes a cross-layer drive
// trace and derives the application-level metric series the paper plots:
// handover interruption windows inflate latency, packet loss and frame
// drops, scaled by handover type and radio band.
package apps

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// hoWindow is the ±window around a handover command inside which the
// paper's Fig. 4 analysis attributes application impact to the HO.
const hoWindow = time.Second

// hoAt returns the handover whose impact window covers t, if any.
func hoAt(handovers []cellular.HandoverEvent, t time.Duration) (cellular.HandoverEvent, bool) {
	for _, h := range handovers {
		if t >= h.Time-hoWindow/2 && t <= h.Time+h.T2+hoWindow/2 {
			return h, true
		}
		if h.Time-hoWindow/2 > t {
			break
		}
	}
	return cellular.HandoverEvent{}, false
}

// ConferencingSample is one per-second observation of the video call.
type ConferencingSample struct {
	Time      time.Duration
	LatencyMS float64
	LossPct   float64
	InHO      bool
	HOType    cellular.HOType
}

// Conferencing severity: HO windows inflate latency by a heavy-tailed
// factor averaging ≈2.26× (up to ≈14.5×) and loss by ≈2.24× (§4.1).
const (
	confBaseLatencyMS = 70.0
	confBaseLossPct   = 0.8
)

// hoSeverity draws the latency inflation factor for a handover window; the
// lognormal's parameters put the mean near 2.26 with a 14.5× tail.
func hoSeverity(rng *rand.Rand, t cellular.HOType) float64 {
	mu, sigma := 0.62, 0.55
	if t == cellular.HOMNBH || t == cellular.HOLTEH {
		mu += 0.12 // anchor HOs stall both radio legs
	}
	f := math.Exp(mu + sigma*rng.NormFloat64())
	if f < 1.1 {
		f = 1.1
	}
	if f > 14.5 {
		f = 14.5
	}
	return f
}

// SimulateConferencing derives a per-second conferencing metric series from
// a drive trace.
func SimulateConferencing(log *trace.Log, seed int64) []ConferencingSample {
	rng := rand.New(rand.NewSource(seed))
	var out []ConferencingSample
	next := time.Duration(0)
	for _, s := range log.Samples {
		if s.Time < next {
			continue
		}
		next = s.Time + time.Second
		cs := ConferencingSample{Time: s.Time}
		cs.LatencyMS = confBaseLatencyMS * math.Exp(rng.NormFloat64()*0.08)
		cs.LossPct = confBaseLossPct * math.Exp(rng.NormFloat64()*0.3)
		if ho, ok := hoAt(log.Handovers, s.Time); ok {
			sev := hoSeverity(rng, ho.Type)
			cs.LatencyMS *= sev
			cs.LossPct *= 1 + (sev-1)*1.0
			if cs.LossPct > 80 {
				cs.LossPct = 80
			}
			cs.InHO = true
			cs.HOType = ho.Type
		}
		out = append(out, cs)
	}
	return out
}

// GamingSample is one per-second cloud-gaming observation.
type GamingSample struct {
	Time         time.Duration
	NetLatencyMS float64
	OtherLatMS   float64
	DroppedPct   float64
	InHO         bool
	HOType       cellular.HOType
}

// Gaming baselines (4K@60FPS): the "other" latency (encode/decode/render)
// stays flat while network latency dominates during HOs (§4.1).
const (
	gameBaseNetMS   = 28.0
	gameBaseOtherMS = 21.0
	gameBaseDropPct = 1.2
	// mnbhExtraLatencyMS is the additional mean network latency of an
	// anchor handover over an intra-gNB SCG modification (§4.1: 16.8 ms).
	mnbhExtraLatencyMS = 16.8
	// mnbhExtraDropFactor is MNBH's dropped-frame increase over SCGM
	// (§4.1: +65%).
	mnbhExtraDropFactor = 1.65
)

// SimulateGaming derives a per-second cloud-gaming metric series.
func SimulateGaming(log *trace.Log, seed int64) []GamingSample {
	rng := rand.New(rand.NewSource(seed))
	var out []GamingSample
	next := time.Duration(0)
	for _, s := range log.Samples {
		if s.Time < next {
			continue
		}
		next = s.Time + time.Second
		gs := GamingSample{Time: s.Time}
		gs.NetLatencyMS = gameBaseNetMS * math.Exp(rng.NormFloat64()*0.08)
		gs.OtherLatMS = gameBaseOtherMS * math.Exp(rng.NormFloat64()*0.04)
		gs.DroppedPct = gameBaseDropPct * math.Exp(rng.NormFloat64()*0.25)
		if ho, ok := hoAt(log.Handovers, s.Time); ok {
			sev := hoSeverity(rng, ho.Type)
			gs.NetLatencyMS *= sev
			drop := gs.DroppedPct * 2.6
			if ho.Type == cellular.HOMNBH || ho.Type == cellular.HOLTEH {
				gs.NetLatencyMS += mnbhExtraLatencyMS
				drop *= mnbhExtraDropFactor
			}
			gs.DroppedPct = drop
			if gs.DroppedPct > 100 {
				gs.DroppedPct = 100
			}
			gs.InHO = true
			gs.HOType = ho.Type
		}
		out = append(out, gs)
	}
	return out
}

// VolumetricSample is one per-second volumetric-streaming observation
// (Fig. 6's band comparison, distinct from the §7.4 ABR study).
type VolumetricSample struct {
	Time         time.Duration
	BitrateMbps  float64
	NetLatencyMS float64
	Band         cellular.Band
	InHO         bool
}

// volumetric density levels (Mbps) from the ViVo setup.
var volumetricLevels = []float64{43, 77, 110, 140, 170}

// SimulateVolumetric derives the Fig. 6 metric series: the achieved bitrate
// follows the per-second mean data-plane capacity (interruption windows
// depress the mean without zeroing whole seconds), and latency reflects the
// serving NR band and handover state. Seconds with no 5G leg and no
// handover context are skipped — the Fig. 6 study runs under 5G coverage.
func SimulateVolumetric(log *trace.Log, seed int64) []VolumetricSample {
	rng := rand.New(rand.NewSource(seed))
	var out []VolumetricSample

	emit := func(t time.Duration, meanTput float64, band cellular.Band, bandKnown bool) {
		ho, inHO := hoAt(log.Handovers, t)
		if inHO && ho.Type.Is5G() {
			band = ho.Band
			bandKnown = true
		}
		if !bandKnown {
			return
		}
		vs := VolumetricSample{Time: t, Band: band, InHO: inHO}
		if inHO && band == cellular.BandMMWave {
			// Beam re-acquisition after a mmWave HO keeps the link degraded
			// well beyond the execution stage (§4.1's ~2 Gbps drops).
			meanTput *= 0.45
		}
		cap80 := meanTput * 0.8
		vs.BitrateMbps = math.Max(math.Min(cap80, volumetricLevels[len(volumetricLevels)-1]), 0)
		for _, l := range volumetricLevels {
			if l <= cap80 {
				vs.BitrateMbps = l
			}
		}
		base := 45.0
		if band == cellular.BandMMWave {
			base = 32.0 // shorter queues on the fat pipe
		}
		vs.NetLatencyMS = base * math.Exp(rng.NormFloat64()*0.1)
		if inHO {
			sev := 1 + (hoSeverity(rng, ho.Type)-1)*0.55
			if band == cellular.BandMMWave {
				// mmWave HOs hit harder: beam re-acquisition on top of the
				// interruption (§4.1: +107% latency vs +41% low-band).
				sev = 1 + (sev-1)*2.2
			}
			vs.NetLatencyMS *= sev
		}
		out = append(out, vs)
	}

	var acc float64
	var n int
	band := cellular.BandLow
	bandKnown := false
	next := time.Duration(0)
	for _, s := range log.Samples {
		if s.Time >= next {
			if n > 0 {
				emit(next-time.Second, acc/float64(n), band, bandKnown)
			}
			acc, n = 0, 0
			bandKnown = false
			next = s.Time + time.Second
		}
		acc += s.TputMbps
		n++
		if s.ServingNR.Valid {
			band = s.ServingNR.Band
			bandKnown = true
		}
	}
	if n > 0 {
		emit(next-time.Second, acc/float64(n), band, bandKnown)
	}
	return out
}
