package emu

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewBandwidthTraceValidation(t *testing.T) {
	if _, err := NewBandwidthTrace(nil, time.Second); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewBandwidthTrace([]float64{10, -1}, time.Second); err == nil {
		t.Error("negative bandwidth accepted")
	}
	tr, err := NewBandwidthTrace([]float64{10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Interval != 100*time.Millisecond {
		t.Errorf("default interval = %v", tr.Interval)
	}
}

func TestTraceLooping(t *testing.T) {
	tr, _ := NewBandwidthTrace([]float64{1, 2, 3}, 100*time.Millisecond)
	if tr.At(0) != 1 || tr.At(150*time.Millisecond) != 2 || tr.At(250*time.Millisecond) != 3 {
		t.Error("indexing")
	}
	if tr.At(300*time.Millisecond) != 1 {
		t.Error("must loop")
	}
	if tr.Duration() != 300*time.Millisecond {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if tr.Mean() != 2 || tr.Min() != 1 {
		t.Error("Mean/Min")
	}
}

func TestDownloadExactCapacity(t *testing.T) {
	// 80 Mbps constant → 10 MB takes 1 s (plus RTT).
	tr, _ := NewBandwidthTrace([]float64{80}, 100*time.Millisecond)
	link := NewLink(tr, 40*time.Millisecond)
	d := link.Download(10e6)
	want := time.Second + 40*time.Millisecond
	if diff := d - want; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
		t.Errorf("download took %v, want ≈%v", d, want)
	}
}

func TestDownloadThroughCapacityDrop(t *testing.T) {
	// 100 Mbps for 1 s, then 10 Mbps: a transfer needing 1.5 s at full rate
	// slows down sharply.
	mbps := make([]float64, 20)
	for i := range mbps {
		if i < 10 {
			mbps[i] = 100
		} else {
			mbps[i] = 10
		}
	}
	tr, _ := NewBandwidthTrace(mbps, 100*time.Millisecond)
	link := NewLink(tr, 0)
	// 15 MB = 120 Mbit: 100 Mbit in the first second, 10 Mbit during the
	// slow second, and the last 10 Mbit after the trace loops back to
	// 100 Mbps → ≈2.1 s total.
	d := link.Download(15e6)
	if d < 2000*time.Millisecond || d > 2300*time.Millisecond {
		t.Errorf("download took %v, want ≈2.1 s", d)
	}
}

func TestDownloadSurvivesOutage(t *testing.T) {
	tr, _ := NewBandwidthTrace([]float64{50, 0, 0, 50}, 100*time.Millisecond)
	link := NewLink(tr, 0)
	d := link.Download(1e6) // 1 MB needs 160 ms of 50 Mbps
	if d <= 0 {
		t.Fatal("no progress through outage")
	}
	// The 200 ms outage must appear in the duration.
	if d < 250*time.Millisecond {
		t.Errorf("outage not reflected: %v", d)
	}
}

// TestDownloadConservation: transferred bytes per unit time never exceed
// the trace's max capacity.
func TestDownloadConservation(t *testing.T) {
	f := func(sizeKB uint16, capMbps uint8) bool {
		size := float64(sizeKB%2000+1) * 1024
		capa := float64(capMbps%200 + 1)
		tr, err := NewBandwidthTrace([]float64{capa}, 100*time.Millisecond)
		if err != nil {
			return false
		}
		link := NewLink(tr, 0)
		d := link.Download(size)
		if d <= 0 {
			return false
		}
		rate := size * 8 / 1e6 / d.Seconds()
		return rate <= capa*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIdleAndSeek(t *testing.T) {
	tr, _ := NewBandwidthTrace([]float64{10}, 100*time.Millisecond)
	link := NewLink(tr, 0)
	link.Idle(2 * time.Second)
	if link.Now() != 2*time.Second {
		t.Errorf("Now = %v", link.Now())
	}
	link.Idle(-time.Second) // negative idles are ignored
	if link.Now() != 2*time.Second {
		t.Error("negative idle changed the clock")
	}
	link.Seek(0)
	if link.Now() != 0 {
		t.Error("seek")
	}
}

func TestThroughputMbps(t *testing.T) {
	if got := ThroughputMbps(1.25e6, time.Second); math.Abs(got-10) > 1e-9 {
		t.Errorf("ThroughputMbps = %v", got)
	}
	if ThroughputMbps(100, 0) != 0 {
		t.Error("zero duration must yield 0")
	}
}
