// Package emu is a trace-driven link emulator in the spirit of Mahimahi's
// record-and-replay shells (§7.4): a recorded bandwidth series dictates the
// per-millisecond byte budget of the emulated downlink, and chunk downloads
// consume that budget with a fixed one-way delay. The ABR evaluations
// replay the paper's 240 s bandwidth traces through it.
package emu

import (
	"fmt"
	"time"
)

// BandwidthTrace is a downlink capacity series sampled at a fixed interval.
type BandwidthTrace struct {
	// Mbps holds one capacity sample per interval.
	Mbps []float64
	// Interval is the sample spacing (default 100 ms).
	Interval time.Duration
}

// NewBandwidthTrace validates and wraps a capacity series.
func NewBandwidthTrace(mbps []float64, interval time.Duration) (*BandwidthTrace, error) {
	if len(mbps) == 0 {
		return nil, fmt.Errorf("emu: empty bandwidth trace")
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for i, v := range mbps {
		if v < 0 {
			return nil, fmt.Errorf("emu: negative bandwidth %f at index %d", v, i)
		}
	}
	return &BandwidthTrace{Mbps: mbps, Interval: interval}, nil
}

// Duration returns the trace length.
func (t *BandwidthTrace) Duration() time.Duration {
	return time.Duration(len(t.Mbps)) * t.Interval
}

// At returns the capacity at the given offset; the trace loops when the
// offset runs past its end (Mahimahi's replay semantics).
func (t *BandwidthTrace) At(offset time.Duration) float64 {
	idx := int(offset/t.Interval) % len(t.Mbps)
	if idx < 0 {
		idx += len(t.Mbps)
	}
	return t.Mbps[idx]
}

// Mean returns the average capacity in Mbps.
func (t *BandwidthTrace) Mean() float64 {
	s := 0.0
	for _, v := range t.Mbps {
		s += v
	}
	return s / float64(len(t.Mbps))
}

// Min returns the minimum capacity in Mbps.
func (t *BandwidthTrace) Min() float64 {
	m := t.Mbps[0]
	for _, v := range t.Mbps[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Link is the emulated downlink: sequential chunk downloads over the traced
// capacity with a fixed RTT.
type Link struct {
	trace *BandwidthTrace
	// RTT is the round-trip time added per transfer (request + first byte).
	RTT time.Duration
	// now is the link-local clock.
	now time.Duration
}

// NewLink creates a link at trace offset zero.
func NewLink(trace *BandwidthTrace, rtt time.Duration) *Link {
	return &Link{trace: trace, RTT: rtt}
}

// Now returns the link-local clock.
func (l *Link) Now() time.Duration { return l.now }

// Seek moves the link-local clock (e.g. to align with a player timeline).
func (l *Link) Seek(t time.Duration) { l.now = t }

// Download transfers size bytes and returns the transfer duration,
// advancing the clock. The transfer consumes the traced per-interval byte
// budget step by step, so capacity drops mid-transfer lengthen it exactly
// as a real bottleneck link would.
func (l *Link) Download(sizeBytes float64) time.Duration {
	start := l.now
	l.now += l.RTT
	remaining := sizeBytes
	const step = time.Millisecond
	for remaining > 0 {
		mbps := l.trace.At(l.now)
		bytesPerStep := mbps * 1e6 / 8 * step.Seconds()
		if bytesPerStep <= 0 {
			// Outage: wait for capacity.
			l.now += step
			continue
		}
		if bytesPerStep >= remaining {
			frac := remaining / bytesPerStep
			l.now += time.Duration(float64(step) * frac)
			remaining = 0
			break
		}
		remaining -= bytesPerStep
		l.now += step
	}
	return l.now - start
}

// Idle advances the clock without transferring (player waiting on buffer).
func (l *Link) Idle(d time.Duration) {
	if d > 0 {
		l.now += d
	}
}

// ThroughputMbps returns the effective throughput of a completed transfer.
func ThroughputMbps(sizeBytes float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return sizeBytes * 8 / 1e6 / d.Seconds()
}
