// Sharded shared state. Every session used to funnel its warm-state pushes
// and park/unpark traffic through two global mutexes; at fleet scale that
// made unrelated sessions serialize on each other. The state is now split
// first per deployment context (carrier, arch) and then per session-token
// hash, so sessions only contend when they genuinely share a slot. The
// externally observable semantics are unchanged: warmSnapshot still
// returns the most recently pushed state per context (a global monotonic
// stamp orders pushes across slots), and checkpoints capture exactly that
// freshest state. ARCHITECTURE.md §Sharding documents the topology and
// lock discipline.

package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// warmSlotsPerContext is the token-hash fan-out within one deployment
// context's warm state; parkedShards the fan-out of the parked-session
// table. Both are fixed powers of two: plenty for the contexts' session
// counts while keeping freshest-slot scans trivially cheap.
const (
	warmSlotsPerContext = 16
	parkedShards        = 16
)

// tokenHash is the shared routing hash (wire.TokenHash): the shard picker
// for warm slots and the parked table, and the same function the cluster
// ring places tokens with.
func tokenHash(token string) uint64 { return wire.TokenHash(token) }

// warmStore holds the latest learned state per deployment context, sharded
// per token hash within each context. Lock discipline: the store-level
// RWMutex guards only the grow-only context map (read-locked on every
// access, write-locked only to add a context); each slot has its own
// mutex, and no slot lock is ever held while taking another.
type warmStore struct {
	mu       sync.RWMutex
	contexts map[warmKey]*warmContext
	// stamp is the global push ordinal: freshest-slot selection compares
	// stamps, so "latest push wins" holds across slots exactly as it did
	// across sessions with one global lock.
	stamp atomic.Int64
}

type warmContext struct {
	slots [warmSlotsPerContext]warmSlot
}

type warmSlot struct {
	mu    sync.Mutex
	stamp int64
	ok    bool
	snap  core.Snapshot
}

func newWarmStore() *warmStore {
	return &warmStore{contexts: make(map[warmKey]*warmContext)}
}

// context returns the per-context shard, creating it on first use.
func (ws *warmStore) context(key warmKey) *warmContext {
	ws.mu.RLock()
	wc := ws.contexts[key]
	ws.mu.RUnlock()
	if wc != nil {
		return wc
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if wc = ws.contexts[key]; wc == nil {
		wc = &warmContext{}
		ws.contexts[key] = wc
	}
	return wc
}

// push records snap as the context's latest state in the token's slot.
func (ws *warmStore) push(key warmKey, token string, snap core.Snapshot) {
	wc := ws.context(key)
	slot := &wc.slots[tokenHash(token)%warmSlotsPerContext]
	stamp := ws.stamp.Add(1)
	slot.mu.Lock()
	// Stamps are taken before the slot lock, so two pushes racing into
	// one slot may arrive out of stamp order; keep the newer.
	if stamp > slot.stamp {
		slot.stamp = stamp
		slot.snap = snap
		slot.ok = true
	}
	slot.mu.Unlock()
}

// freshest returns the most recently pushed state for the context.
func (ws *warmStore) freshest(key warmKey) (core.Snapshot, bool) {
	ws.mu.RLock()
	wc := ws.contexts[key]
	ws.mu.RUnlock()
	if wc == nil {
		return core.Snapshot{}, false
	}
	var (
		best      core.Snapshot
		bestStamp int64
		found     bool
	)
	for i := range wc.slots {
		slot := &wc.slots[i]
		slot.mu.Lock()
		if slot.ok && (!found || slot.stamp > bestStamp) {
			best, bestStamp, found = slot.snap, slot.stamp, true
		}
		slot.mu.Unlock()
	}
	return best, found
}

// all returns the freshest state of every known context, for checkpoints.
func (ws *warmStore) all() map[warmKey]core.Snapshot {
	ws.mu.RLock()
	keys := make([]warmKey, 0, len(ws.contexts))
	for k := range ws.contexts {
		keys = append(keys, k)
	}
	ws.mu.RUnlock()
	out := make(map[warmKey]core.Snapshot, len(keys))
	for _, k := range keys {
		if snap, ok := ws.freshest(k); ok {
			out[k] = snap
		}
	}
	return out
}

// parkedTable is the sharded parked-session store: 16 independent maps
// keyed by token hash, with a global approximate count driving eviction.
// Lock discipline: at most one shard mutex is held at a time; the
// cross-shard eviction scan locks shards strictly one after another.
type parkedTable struct {
	shards [parkedShards]parkedShard
	count  atomic.Int64
}

type parkedShard struct {
	mu sync.Mutex
	m  map[string]*parkedSession
}

func newParkedTable() *parkedTable {
	t := &parkedTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*parkedSession)
	}
	return t
}

func (t *parkedTable) shard(token string) *parkedShard {
	return &t.shards[tokenHash(token)%parkedShards]
}

// insert parks p, replacing any previous park under the same token.
// When the table is over max it evicts the entry closest to expiry
// (approximately, under concurrent inserts) and returns it.
func (t *parkedTable) insert(p *parkedSession, max int) (replaced bool, evicted *parkedSession) {
	sh := t.shard(p.token)
	sh.mu.Lock()
	if _, ok := sh.m[p.token]; ok {
		sh.m[p.token] = p
		sh.mu.Unlock()
		return true, nil
	}
	sh.m[p.token] = p
	t.count.Add(1)
	sh.mu.Unlock()
	if max > 0 && t.count.Load() > int64(max) {
		evicted = t.evictSoonest(p.token)
	}
	return false, evicted
}

// evictSoonest removes the parked session with the nearest expiry,
// skipping keep (the entry just inserted). The scan is shard-by-shard, so
// a concurrent insert or removal can make the choice approximate; the
// bound is a back-pressure valve, not an exact LRU.
func (t *parkedTable) evictSoonest(keep string) *parkedSession {
	var victim *parkedSession
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for token, e := range sh.m {
			if token == keep {
				continue
			}
			if victim == nil || e.expires.Before(victim.expires) {
				victim = e
			}
		}
		sh.mu.Unlock()
	}
	if victim == nil {
		return nil
	}
	sh := t.shard(victim.token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m[victim.token] != victim {
		return nil // raced with an unpark or replacement; nothing to evict
	}
	delete(sh.m, victim.token)
	t.count.Add(-1)
	return victim
}

// has reports whether a live (non-expired) park exists for token without
// removing it. The cluster ownership check uses this to keep migrated
// sessions sticky: a node serves a token it holds warm state for even when
// the ring says another node owns it.
func (t *parkedTable) has(token string, now time.Time) bool {
	sh := t.shard(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.m[token]
	return ok && !now.After(p.expires)
}

// drainAll removes and returns every parked session, expired or not — the
// migration path ships them all; the target re-arms expiry on install.
func (t *parkedTable) drainAll() []*parkedSession {
	var out []*parkedSession
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for token, p := range sh.m {
			delete(sh.m, token)
			t.count.Add(-1)
			out = append(out, p)
		}
		sh.mu.Unlock()
	}
	return out
}

// forEach calls fn on every parked session, one shard lock at a time. fn
// runs under the shard mutex, so an entry cannot be unparked (and its
// Prognos instance handed to a live session) while fn reads it — the
// replication pass snapshots parked state through this.
func (t *parkedTable) forEach(fn func(*parkedSession)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, p := range sh.m {
			fn(p)
		}
		sh.mu.Unlock()
	}
}

// remove unparks and returns the session for token, or nil.
func (t *parkedTable) remove(token string) *parkedSession {
	sh := t.shard(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.m[token]
	if !ok {
		return nil
	}
	delete(sh.m, token)
	t.count.Add(-1)
	return p
}

// sweep removes and returns every parked session past its grace window.
func (t *parkedTable) sweep(now time.Time) []*parkedSession {
	var expired []*parkedSession
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for token, p := range sh.m {
			if now.After(p.expires) {
				delete(sh.m, token)
				t.count.Add(-1)
				expired = append(expired, p)
			}
		}
		sh.mu.Unlock()
	}
	return expired
}
