// Cluster behaviour of the server: ownership redirects, warm migration on
// drain, sticky sessions after migration, and the resilient client's
// redirect-following and fallback rotation.

package server

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/cluster"
)

// clusterRig brings up n cluster-aware servers over pre-bound listeners so
// the ring can carry every node's real address before any node serves.
type clusterRig struct {
	ring  *cluster.Ring
	addrs []string
	srvs  []*Server
}

func newClusterRig(t *testing.T, n int, opts Options) *clusterRig {
	t.Helper()
	rig := &clusterRig{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		rig.addrs = append(rig.addrs, ln.Addr().String())
	}
	ring, err := cluster.New(rig.addrs, cluster.NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	rig.ring = ring
	for i, ln := range lns {
		o := opts
		o.Cluster = ring
		o.NodeAddr = rig.addrs[i]
		rig.srvs = append(rig.srvs, Serve(ln, o))
	}
	t.Cleanup(func() {
		for _, s := range rig.srvs {
			s.Close()
		}
	})
	return rig
}

// byAddr returns the server bound to addr.
func (r *clusterRig) byAddr(t *testing.T, addr string) *Server {
	t.Helper()
	for i, a := range r.addrs {
		if a == addr {
			return r.srvs[i]
		}
	}
	t.Fatalf("no server at %s", addr)
	return nil
}

// tokenOwnedBy finds a session token the ring places on owner, with the
// requested successor preference when wantSecond is set.
func tokenOwnedBy(t *testing.T, ring *cluster.Ring, owner string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		tok := fmt.Sprintf("cluster-ue-%d", i)
		if ring.Owner(tok) == owner {
			return tok
		}
	}
	t.Fatalf("no token owned by %s in 10000 tries", owner)
	return ""
}

// TestClusterRedirect pins the ownership check: a tokened session arriving
// at the wrong node is answered with a structured redirect naming the
// owner, counted as a redirect rather than a session error.
func TestClusterRedirect(t *testing.T) {
	rig := newClusterRig(t, 2, Options{ResumeGrace: time.Minute})
	owner := rig.addrs[0]
	wrong := rig.addrs[1]
	if owner == rig.ring.Owner(tokenOwnedBy(t, rig.ring, wrong)) {
		t.Fatal("token helper is broken")
	}
	tok := tokenOwnedBy(t, rig.ring, owner)

	c, err := Dial(wrong, Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.readAck()
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected ServerError, got %v", err)
	}
	if se.Redirect != owner {
		t.Fatalf("redirect %q, want %q", se.Redirect, owner)
	}
	wrongStats := rig.byAddr(t, wrong).Stats()
	if wrongStats.Redirected != 1 {
		t.Fatalf("redirected counter %d, want 1", wrongStats.Redirected)
	}
	if wrongStats.SessionErrors != 0 {
		t.Fatalf("redirect counted as session error (%d)", wrongStats.SessionErrors)
	}

	// The owner itself, and untokened sessions anywhere, serve normally.
	co, err := Dial(owner, Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	if ack, err := co.readAck(); err != nil || ack.Resumed {
		t.Fatalf("owner hello: ack %+v err %v", ack, err)
	}
	if _, err := co.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}
	cu, err := Dial(wrong, Hello{Carrier: "OpX", Arch: cellular.ArchLTE})
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	if _, err := cu.SendSample(mkSample(0, -85)); err != nil {
		t.Fatalf("untokened session on non-owner: %v", err)
	}
}

// TestDrainMigratesWarmState is the warm-handoff round trip: a session
// parked on a draining node must be shipped to the ring successor and
// resume there warm — resume cursor intact, missed responses replayed —
// and the successor must then hold the session even though the (static)
// ring still names the drained node as owner (sticky sessions).
func TestDrainMigratesWarmState(t *testing.T) {
	rig := newClusterRig(t, 2, Options{ResumeGrace: time.Minute})
	owner := rig.addrs[0]
	tok := tokenOwnedBy(t, rig.ring, owner)
	successor := rig.ring.Candidates(tok)[1]

	c, err := Dial(owner, Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.readAck(); err != nil {
		t.Fatal(err)
	}
	const n = 20
	const readBack = 15 // responses the client "received" before the cut
	for i := 0; i < n; i++ {
		if err := c.SendSampleAsync(mkSample(time.Duration(i)*50*time.Millisecond, -85)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < readBack; i++ {
		if _, err := c.ReadResponse(); err != nil {
			t.Fatal(err)
		}
	}

	// Drain cuts the live session; it parks and ships to the successor.
	ds, err := rig.byAddr(t, owner).DrainToCluster(5 * time.Second)
	if err != nil {
		t.Fatalf("drain: %v (stats %+v)", err, ds)
	}
	if ds.Sessions != 1 {
		t.Fatalf("drain shipped %d sessions, want 1 (stats %+v)", ds.Sessions, ds)
	}
	if ds.Contexts == 0 || ds.Bytes == 0 {
		t.Fatalf("drain shipped no warm contexts or bytes: %+v", ds)
	}
	sStats := rig.byAddr(t, successor).Stats()
	if sStats.MigratedIn != 1 {
		t.Fatalf("successor migrated_in %d, want 1", sStats.MigratedIn)
	}
	if sStats.MigrationBytesIn == 0 {
		t.Fatal("successor counted no migration bytes")
	}

	// Resume on the successor: server-side seq must carry on from the
	// drained node, and the replay must cover exactly what we never read.
	c2, err := Dial(successor, Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok, LastSeq: readBack})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ack, err := c2.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Resumed || ack.Seq != n {
		t.Fatalf("resume ack %+v, want resumed at seq %d", ack, n)
	}
	for want := int64(readBack + 1); want <= n; want++ {
		resp, err := c2.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != want {
			t.Fatalf("replayed seq %d, want %d", resp.Seq, want)
		}
	}
	// The stream continues live on the successor.
	resp, err := c2.SendSample(mkSample(time.Duration(n)*50*time.Millisecond, -85))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != n+1 {
		t.Fatalf("post-resume seq %d, want %d", resp.Seq, n+1)
	}
	after := rig.byAddr(t, successor).Stats()
	if after.MigratedResumes != 1 {
		t.Fatalf("migrated_resumes %d, want 1", after.MigratedResumes)
	}
	if after.Resumed != 1 {
		t.Fatalf("resumed %d, want 1", after.Resumed)
	}
}

// TestResilientClientFollowsRedirect pins the client side of routing: a
// resilient client pointed at the wrong node must land on the owner via
// the redirect error, invisibly to the caller.
func TestResilientClientFollowsRedirect(t *testing.T) {
	rig := newClusterRig(t, 3, Options{ResumeGrace: time.Minute})
	owner := rig.addrs[0]
	tok := tokenOwnedBy(t, rig.ring, owner)
	var wrong string
	for _, a := range rig.addrs {
		if a != owner {
			wrong = a
			break
		}
	}

	rc, err := DialResilient(wrong, ResilientOptions{
		Hello: Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := rc.Addr(); got != owner {
		t.Fatalf("attached to %s, want owner %s", got, owner)
	}
	if _, err := rc.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}
	st := rc.Stats()
	if st.Redirects != 1 {
		t.Fatalf("redirects %d, want 1", st.Redirects)
	}
}

// TestResilientClientSurvivesDrain is the zero-loss drain in miniature:
// a client streams against the owner, the owner drains into the cluster
// mid-stream, and the client — rotating through its ring-derived fallback
// list — must finish the stream on the successor with one response per
// sample and a warm (not cold) resume.
func TestResilientClientSurvivesDrain(t *testing.T) {
	rig := newClusterRig(t, 3, Options{ResumeGrace: time.Minute})
	owner := rig.addrs[0]
	tok := tokenOwnedBy(t, rig.ring, owner)
	cands := rig.ring.Candidates(tok)
	successor := cands[1]

	rc, err := DialResilient(cands[0], ResilientOptions{
		Hello:     Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok},
		Fallbacks: cands[1:],
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const n = 60
	drainAt := 25
	for i := 0; i < n; i++ {
		if i == drainAt {
			if _, err := rig.byAddr(t, owner).DrainToCluster(5 * time.Second); err != nil {
				t.Fatalf("drain: %v", err)
			}
		}
		if _, err := rc.SendSample(mkSample(time.Duration(i)*50*time.Millisecond, -85)); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
	}
	st := rc.Stats()
	if st.Lost() != 0 {
		t.Fatalf("lost %d samples (stats %+v)", st.Lost(), st)
	}
	if st.Received != n {
		t.Fatalf("received %d responses, want %d", st.Received, n)
	}
	if st.Reconnects == 0 {
		t.Fatal("drain did not force a reconnect")
	}
	if st.Resumed == 0 || st.ColdResumes != 0 {
		t.Fatalf("want a warm resume, got %+v", st)
	}
	if got := rc.Addr(); got != successor {
		t.Fatalf("finished on %s, want successor %s", got, successor)
	}
	if ms := rig.byAddr(t, successor).Stats().MigratedResumes; ms != 1 {
		t.Fatalf("successor migrated_resumes %d, want 1", ms)
	}
}

// TestMigrationStreamRequiresBinary pins the §Migration frames gate: a
// JSONL migrate hello is rejected before any state moves.
func TestMigrationStreamRequiresBinary(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{ResumeGrace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), Hello{Migrate: true, Node: "test"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ReadResponse()
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("JSONL migrate hello: got %v, want ServerError", err)
	}
}

// TestDrainToClusterRequiresRing pins the guard rails on a non-clustered
// server.
func TestDrainToClusterRequiresRing(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.DrainToCluster(time.Second); err == nil {
		t.Fatal("DrainToCluster without a ring succeeded")
	}
}
