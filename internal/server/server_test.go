package server

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

func mkSample(at time.Duration, rsrp float64) trace.Sample {
	return trace.Sample{
		Time:       at,
		Arch:       cellular.ArchNSA,
		ServingLTE: trace.CellObs{PCI: 1, Valid: true, RSRP: rsrp},
	}
}

func TestServerRoundTrip(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A healthy sample must yield a no-HO prediction with score 1.
	resp, err := client.SendSample(mkSample(0, -85))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != cellular.HONone || resp.Score != 1 {
		t.Fatalf("healthy sample predicted %+v", resp)
	}
	if resp.TypeName != "NONE" {
		t.Errorf("type name %q", resp.TypeName)
	}

	// Feed a report and a handover; the session must keep flowing.
	if err := client.SendReport(cellular.MeasurementReport{Time: 50 * time.Millisecond, Event: cellular.EventA2, Tech: cellular.TechLTE, ServingPCI: 1}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendHandover(cellular.HandoverEvent{Time: 100 * time.Millisecond, Type: cellular.HOLTEH}); err != nil {
		t.Fatal(err)
	}
	resp, err = client.SendSample(mkSample(150*time.Millisecond, -85))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Time != 150*time.Millisecond {
		t.Errorf("echoed time %v", resp.Time)
	}
}

func TestServerConcurrentSessions(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), Hello{Carrier: "OpY", Arch: cellular.ArchNSA})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for k := 0; k < 50; k++ {
				if _, err := c.SendSample(mkSample(time.Duration(k)*50*time.Millisecond, -90)); err != nil {
					t.Errorf("session %d: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestServerStats drives one session and checks the run metrics both
// in-process (Server.Stats) and over the wire (FetchStats).
func TestServerStats(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		if _, err := client.SendSample(mkSample(time.Duration(k)*50*time.Millisecond, -85)); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.SendReport(cellular.MeasurementReport{Time: 200 * time.Millisecond, Event: cellular.EventA2, Tech: cellular.TechLTE, ServingPCI: 1}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendHandover(cellular.HandoverEvent{Time: 250 * time.Millisecond, Type: cellular.HOLTEH}); err != nil {
		t.Fatal(err)
	}
	// The report/HO records are one-way; a final sample round-trip
	// guarantees the server has consumed them.
	if _, err := client.SendSample(mkSample(300*time.Millisecond, -85)); err != nil {
		t.Fatal(err)
	}

	snap := srv.Stats()
	if snap.Sessions != 1 || snap.Active != 1 {
		t.Errorf("sessions=%d active=%d, want 1/1", snap.Sessions, snap.Active)
	}
	if snap.Samples != 4 || snap.Predictions != 4 || snap.Reports != 1 || snap.Handovers != 1 {
		t.Errorf("snapshot %+v", snap)
	}

	wire, err := FetchStats(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if wire.Samples != snap.Samples || wire.Sessions != snap.Sessions {
		t.Errorf("wire snapshot %+v != in-process %+v", wire, snap)
	}
	if wire.UptimeMS < 0 {
		t.Errorf("uptime %v", wire.UptimeMS)
	}
	client.Close()

	// A stats session must not count as a prediction session.
	if snap2, err := FetchStats(srv.Addr()); err != nil {
		t.Fatal(err)
	} else if snap2.Sessions != 1 {
		t.Errorf("stats queries must not inflate the session count: %+v", snap2)
	}
}

func TestServerRejectsBadHello(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The server must answer with a structured error line, then close.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var line struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(conn).Decode(&line); err != nil {
		t.Fatalf("reading error line: %v", err)
	}
	if !strings.Contains(line.Error, "bad hello") {
		t.Errorf("error line %q, want a bad-hello message", line.Error)
	}
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected session teardown after the error line")
	}
	if got := srv.Stats().SessionErrors; got != 1 {
		t.Errorf("session_errors = %d, want 1", got)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchLTE})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv.Close()
	client.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.SendSample(mkSample(0, -80)); err == nil {
		// The first write may still land in kernel buffers; a second must
		// fail.
		if _, err2 := client.SendSample(mkSample(50*time.Millisecond, -80)); err2 == nil {
			t.Error("sends kept succeeding after server close")
		}
	}
}
