package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/wire"
)

// FuzzSessionProtocol throws arbitrary byte streams at a full session —
// hello parsing, record decoding, the resume handshake — and requires the
// server to survive every one of them: no panic, no hang. The seed corpus
// is the malformed-input catalogue the hardening tests cover one by one.
func FuzzSessionProtocol(f *testing.F) {
	line := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return append(b, '\n')
	}
	sample := mkSample(0, -95)
	hello := line(Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	rec := line(Record{Sample: &sample})

	// Well-formed session: hello plus a sample record.
	f.Add(append(append([]byte{}, hello...), rec...))
	// The hardening corpus: bad hello JSON, bad record JSON, empty input,
	// a stats query, an unknown-field record, a bare newline storm.
	f.Add([]byte("{half a hello\n"))
	f.Add(append(append([]byte{}, hello...), []byte("{\"sample\":42}\n")...))
	f.Add([]byte{})
	f.Add(line(Hello{Stats: true}))
	f.Add(append(append([]byte{}, hello...), []byte("{\"unknown\":true}\n")...))
	f.Add([]byte("\n\n\n\n"))
	// Resume-protocol shapes: tokened hello, absurd cursor, token with no
	// resume support configured server-side.
	f.Add(line(Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "fuzz-tok"}))
	f.Add(line(Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "fuzz-tok", LastSeq: -7}))
	f.Add(line(Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "fuzz-tok", LastSeq: 1 << 40}))
	// An oversized record line (over maxLineBytes).
	f.Add(append(append([]byte{}, hello...), append(bytes.Repeat([]byte("x"), maxLineBytes+1), '\n')...))

	// Binary-framing shapes. The hello is always JSONL; what follows it is
	// binary frames (docs/PROTOCOL.md §negotiation).
	binHello := line(Hello{Carrier: "OpX", Arch: cellular.ArchNSA, Framing: string(wire.FramingBinary)})
	frame := func(write func(*wire.FrameWriter) error) []byte {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := write(wire.NewFrameWriter(bw)); err != nil {
			f.Fatal(err)
		}
		bw.Flush()
		return buf.Bytes()
	}
	// Well-formed binary session: hello plus one sample frame.
	f.Add(append(append([]byte{}, binHello...), frame(func(fw *wire.FrameWriter) error {
		return fw.WriteSample(&sample)
	})...))
	// Truncated frame: header promises more payload than arrives.
	full := frame(func(fw *wire.FrameWriter) error { return fw.WriteSample(&sample) })
	f.Add(append(append([]byte{}, binHello...), full[:len(full)-40]...))
	// Unknown frame type, wrong-direction (server→client) frame type, and a
	// client record whose payload length lies about the fixed layout.
	f.Add(append(append([]byte{}, binHello...), 0x07, 0, 0, 0, 0x7f))
	f.Add(append(append([]byte{}, binHello...), 0x00, 0, 0, 0, wire.FrameResponse))
	f.Add(append(append([]byte{}, binHello...), 0x03, 0, 0, 0, wire.FrameSample, 1, 2, 3))
	// Oversized frame header (length over MaxFrameBytes).
	f.Add(append(append([]byte{}, binHello...), 0xff, 0xff, 0xff, 0xff, wire.FrameSample))
	// A hello naming a framing the server does not speak.
	f.Add(line(Hello{Carrier: "OpX", Arch: cellular.ArchNSA, Framing: "protobuf"}))

	// Replication-stream shapes (docs/PROTOCOL.md §Replication frames). The
	// harness server has no cluster ring, so every replicate hello must be
	// rejected cleanly — the satellite case a mis-wired peer exercises.
	repHello := line(Hello{Replicate: true, Node: "fuzz-peer", Framing: string(wire.FramingBinary)})
	repState := frame(func(fw *wire.FrameWriter) error {
		return fw.WriteReplicate([]byte(`{"v":1,"token":"fuzz-tok","carrier":"OpX","arch":"NSA","seq":3,"partial":true}`))
	})
	// Well-formed replication push, and the same push truncated mid-payload.
	f.Add(append(append([]byte{}, repHello...), repState...))
	f.Add(append(append([]byte{}, repHello...), repState[:len(repState)-10]...))
	// Wrong-direction frame (the ack type belongs to the server side) and a
	// frame from the serving vocabulary inside a replication stream.
	f.Add(append(append([]byte{}, repHello...), 0x09, 0, 0, 0, wire.FrameReplicateAck, 1, 2, 3, 4, 5, 6, 7, 8, 9))
	f.Add(append(append([]byte{}, repHello...), frame(func(fw *wire.FrameWriter) error {
		return fw.WriteSample(&sample)
	})...))
	// A replicate hello asking for JSONL framing (replication is binary-only).
	f.Add(line(Hello{Replicate: true, Node: "fuzz-peer"}))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := newServer(nil, Options{SessionTimeout: time.Second})
		client, srvConn := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer srvConn.Close()
			s.serve(srvConn)
		}()
		// Drain whatever the server writes so its writes never block the
		// pipe, and feed it the fuzzed stream.
		go io.Copy(io.Discard, client)
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		client.Write(data)
		client.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("session hung on fuzzed input")
		}
	})
}
