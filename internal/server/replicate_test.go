// Crash-fault behaviour of the server: async replication to ring
// successors, detector-confirmed failover from replicated state, the
// fast-forward resume contract, and the drain fallback when every peer is
// already gone.

package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/cluster"
)

// TestDrainToClusterLocalFallback pins the all-peers-unreachable drain: a
// clustered node whose every peer is already gone must fall back to local
// persistence — no error, the fallback named in the summary — instead of
// failing a survivable shutdown.
func TestDrainToClusterLocalFallback(t *testing.T) {
	// Reserve a port for the "peer" and close it again, so the ring names
	// a member that is guaranteed unreachable.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.New([]string{ln.Addr().String(), deadAddr}, cluster.NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Options{
		ResumeGrace: time.Minute,
		Cluster:     ring,
		NodeAddr:    ln.Addr().String(),
	})
	defer srv.Close()

	// A live session gives the drain something worth shipping.
	tok := tokenOwnedBy(t, ring, srv.opts.NodeAddr)
	c, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.readAck(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}

	ds, err := srv.DrainToCluster(200 * time.Millisecond)
	if err != nil {
		t.Fatalf("drain with unreachable peers errored: %v (stats %+v)", err, ds)
	}
	if !ds.LocalFallback {
		t.Fatalf("LocalFallback not set: %+v", ds)
	}
	if ds.Targets != 0 || ds.Sessions != 0 {
		t.Fatalf("fallback drain still claims shipped state: %+v", ds)
	}
	if sum := ds.Summary(); !strings.Contains(sum, "local persistence") {
		t.Fatalf("summary %q does not name the fallback", sum)
	}
	// The forced session's warm state survived locally.
	if _, ok := srv.warmSnapshot("OpX", cellular.ArchLTE); !ok {
		t.Fatal("fallback drain lost the warm context state")
	}
}

// TestReplicaGaugeSeparateFromParked is the double-count guard: a token
// held as a replica moves between prognos_replica_sessions and
// prognos_parked_sessions on promotion, and each expiry path decrements
// only its own gauge.
func TestReplicaGaugeSeparateFromParked(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.New([]string{ln.Addr().String(), "127.0.0.1:1"}, cluster.NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Options{
		ResumeGrace: 80 * time.Millisecond,
		Cluster:     ring,
		NodeAddr:    ln.Addr().String(),
	})
	defer srv.Close()

	st := cluster.SessionState{
		Version: cluster.SessionStateVersion,
		Token:   "replica-tok",
		Carrier: "OpX",
		Arch:    cellular.ArchLTE,
		Seq:     3,
		Partial: true,
	}
	if err := srv.installReplica(st, "peer"); err != nil {
		t.Fatal(err)
	}
	// Re-installing the same token refreshes, never re-counts.
	if err := srv.installReplica(st, "peer"); err != nil {
		t.Fatal(err)
	}
	snap := srv.Stats()
	if snap.ReplicaSessions != 1 || snap.Parked != 0 {
		t.Fatalf("after install: replicas %d parked %d, want 1/0", snap.ReplicaSessions, snap.Parked)
	}

	// Promotion moves the state: replica gauge down, parked gauge up.
	if !srv.promoteReplica("replica-tok") {
		t.Fatal("promoteReplica found nothing")
	}
	snap = srv.Stats()
	if snap.ReplicaSessions != 0 || snap.Parked != 1 || snap.Failovers != 1 {
		t.Fatalf("after promote: replicas %d parked %d failovers %d, want 0/1/1",
			snap.ReplicaSessions, snap.Parked, snap.Failovers)
	}

	// Holding both at once (anti-entropy pushes the token back while its
	// promoted state is still parked) counts one each, not two anywhere.
	if err := srv.installReplica(st, "peer"); err != nil {
		t.Fatal(err)
	}
	snap = srv.Stats()
	if snap.ReplicaSessions != 1 || snap.Parked != 1 {
		t.Fatalf("held both: replicas %d parked %d, want 1/1", snap.ReplicaSessions, snap.Parked)
	}

	// Expiry: the housekeeping sweep must return each gauge to zero via its
	// own path (parked_expired for the parked table, a plain drop for the
	// replica table).
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap = srv.Stats()
		if (snap.ReplicaSessions == 0 && snap.Parked == 0) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.ReplicaSessions != 0 || snap.Parked != 0 {
		t.Fatalf("after expiry: replicas %d parked %d, want 0/0", snap.ReplicaSessions, snap.Parked)
	}
	if snap.ParkedExpired != 1 {
		t.Fatalf("parked_expired %d, want exactly 1 (the replica expiry must not count here)", snap.ParkedExpired)
	}
}

// TestReplicationFailoverResume is the crash contract end to end: a
// session streams against its owner, the owner's replication loop pushes
// its live state to the ring successor, the owner is hard-killed, and the
// client must resume warm on the successor — detector-confirmed promotion,
// cursor fast-forwarded past anything the last push missed, stream
// continuing with no acknowledged sample re-asked or lost.
func TestReplicationFailoverResume(t *testing.T) {
	rig := newClusterRig(t, 2, Options{
		ResumeGrace:         time.Minute,
		ReplicationInterval: 20 * time.Millisecond,
		HeartbeatInterval:   10 * time.Millisecond,
	})
	owner := rig.addrs[0]
	tok := tokenOwnedBy(t, rig.ring, owner)
	successor := rig.ring.Candidates(tok)[1]

	c, err := Dial(owner, Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.readAck(); err != nil {
		t.Fatal(err)
	}
	// Stream across several replication intervals so the live session
	// deposits partial states and the loop ships them.
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := c.SendSample(mkSample(time.Duration(i)*50*time.Millisecond, -85)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, "successor to hold a replica", func() bool {
		return rig.byAddr(t, successor).replicas.size() > 0
	})

	// Crash the owner cold and wait for the successor to confirm it.
	rig.byAddr(t, owner).Kill()
	waitFor(t, "detector to confirm the owner down", func() bool {
		return rig.byAddr(t, successor).detector.Down(owner)
	})

	// The client read all n responses before the cut; the replica's cursor
	// may trail it by up to the staleness bound. The resume must be warm
	// with the cursor fast-forwarded to the client's, never behind it.
	c2, err := Dial(successor, Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: tok, LastSeq: n})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ack, err := c2.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Resumed || ack.Seq != n {
		t.Fatalf("failover resume ack %+v, want resumed at seq %d", ack, n)
	}
	resp, err := c2.SendSample(mkSample(n*50*time.Millisecond, -85))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != n+1 {
		t.Fatalf("post-failover seq %d, want %d", resp.Seq, n+1)
	}
	snap := rig.byAddr(t, successor).Stats()
	if snap.Failovers != 1 {
		t.Fatalf("successor failovers %d, want 1", snap.Failovers)
	}
	if snap.MigratedResumes != 1 || snap.Resumed != 1 {
		t.Fatalf("successor resume accounting %+v, want one warm resume", snap)
	}
	if snap.PeerSuspects != 1 {
		t.Fatalf("successor peer_suspect %d, want 1", snap.PeerSuspects)
	}
}

// TestInstallReplicaRejections pins the receiver-side verdicts: a
// newer-than-implemented version, a state without a carrier, and a
// tokened state on a node with resume disabled are all nacked, while a
// token-less state lands as a context snapshot only.
func TestInstallReplicaRejections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.New([]string{ln.Addr().String(), "127.0.0.1:1"}, cluster.NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, Options{Cluster: ring, NodeAddr: ln.Addr().String()}) // resume disabled
	defer srv.Close()

	if err := srv.installReplica(cluster.SessionState{
		Version: cluster.SessionStateVersion + 1, Carrier: "OpX",
	}, "peer"); err == nil {
		t.Error("future-version state installed")
	}
	if err := srv.installReplica(cluster.SessionState{
		Version: cluster.SessionStateVersion,
	}, "peer"); err == nil {
		t.Error("carrier-less state installed")
	}
	if err := srv.installReplica(cluster.SessionState{
		Version: cluster.SessionStateVersion, Carrier: "OpX", Token: "tok",
	}, "peer"); err == nil {
		t.Error("tokened state installed with resume disabled")
	}
	// Token-less context snapshot: accepted into the warm store, no
	// replica entry.
	if err := srv.installReplica(cluster.SessionState{
		Version: cluster.SessionStateVersion, Carrier: "OpX", Arch: cellular.ArchLTE,
	}, "peer"); err != nil {
		t.Errorf("context snapshot rejected: %v", err)
	}
	if n := srv.replicas.size(); n != 0 {
		t.Errorf("context snapshot left %d replica entries", n)
	}
	if _, ok := srv.warmSnapshot("OpX", cellular.ArchLTE); !ok {
		t.Error("context snapshot never reached the warm store")
	}
}

// TestFailoverTarget walks the ownership decision table for a tokened
// hello whose ring owner is somewhere else: redirect while the owner is
// alive (or no detector runs), adopt after confirmation — via replica
// when one is held, via successor ownership when not — and redirect to
// the agreed successor otherwise.
func TestFailoverTarget(t *testing.T) {
	rig := newClusterRig(t, 3, Options{
		ResumeGrace:         time.Minute,
		ReplicationInterval: 20 * time.Millisecond,
		HeartbeatInterval:   10 * time.Millisecond,
	})
	owner := rig.addrs[0]
	tok := tokenOwnedBy(t, rig.ring, owner)
	succ := rig.ring.Candidates(tok)[1]
	other := rig.ring.Candidates(tok)[2]
	succSrv, otherSrv := rig.byAddr(t, succ), rig.byAddr(t, other)

	// Alive owner: everyone redirects there, replica or not.
	if serve, target := succSrv.failoverTarget(owner, tok); serve || target != owner {
		t.Fatalf("alive owner: serve=%v target=%s, want redirect to %s", serve, target, owner)
	}

	// Kill the owner and let both survivors' detectors confirm it.
	rig.byAddr(t, owner).Kill()
	waitFor(t, "both survivors to confirm the owner down", func() bool {
		return succSrv.detector.Down(owner) && otherSrv.detector.Down(owner)
	})

	// Confirmed down, replica held: the holder serves.
	if err := succSrv.installReplica(cluster.SessionState{
		Version: cluster.SessionStateVersion, Carrier: "OpX", Arch: cellular.ArchLTE,
		Token: tok, Seq: 1, Partial: true,
	}, owner); err != nil {
		t.Fatal(err)
	}
	if serve, _ := succSrv.failoverTarget(owner, tok); !serve {
		t.Fatal("replica holder refused to serve a confirmed-down owner's token")
	}

	// Confirmed down, no replica: only the agreed successor adopts the
	// orphan; the third node redirects to it.
	if serve, target := otherSrv.failoverTarget(owner, tok); serve || target != succ {
		t.Fatalf("non-successor: serve=%v target=%s, want redirect to %s", serve, target, succ)
	}
	if serve, _ := succSrv.failoverTarget(owner, tok); !serve {
		t.Fatal("successor refused to adopt an orphan token")
	}
}

// TestReplicationStreamGuards pins the stream-level rejections: a
// replicate hello on a non-clustered server, and JSONL framing on a
// clustered one, both fail before any state lands.
func TestReplicationStreamGuards(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{ResumeGrace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := cluster.ShipReplicas(srv.Addr(), "test-origin", []cluster.SessionState{{
		Carrier: "OpX", Arch: cellular.ArchLTE,
	}}, time.Second); err == nil {
		t.Fatal("replication stream accepted by a non-clustered server")
	}
}
