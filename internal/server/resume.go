package server

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/obs"
)

// replayBufCap bounds the per-session response replay buffer: a resumed
// client can recover up to this many in-flight responses. At 20 Hz this is
// ~51s of stream — far beyond any sane reconnect window — while costing at
// most a few hundred KB per resumable session.
const replayBufCap = 1024

// warmPushEvery is how many samples a session serves between pushes of its
// learned state into the server's warm store (plus one final push at clean
// session end), bounding how much learning a crash can lose.
const warmPushEvery = 512

// warmKey indexes the warm store by deployment context.
type warmKey struct {
	carrier string
	arch    string
}

// replayBuffer holds the most recent responses of a resumable session, in
// seq order ending at the session's current cursor.
type replayBuffer struct {
	max  int
	resp []Response
}

func newReplayBuffer(max int) *replayBuffer {
	return &replayBuffer{max: max}
}

// push appends one response, dropping the oldest past the cap.
func (b *replayBuffer) push(r Response) {
	if len(b.resp) == b.max {
		// Shift in place: the buffer stays at one allocation forever.
		copy(b.resp, b.resp[1:])
		b.resp[len(b.resp)-1] = r
		return
	}
	b.resp = append(b.resp, r)
}

// after returns the responses a client holding cursor last still needs,
// given the session cursor seq. It reports false when the buffer no longer
// covers the gap (or the client claims a cursor ahead of the session) — the
// caller must then cold-start rather than leave a hole in the stream.
func (b *replayBuffer) after(last, seq int64) ([]Response, bool) {
	if last > seq {
		return nil, false
	}
	if last == seq {
		return nil, true
	}
	n := seq - last
	if b == nil || int64(len(b.resp)) < n {
		return nil, false
	}
	return b.resp[int64(len(b.resp))-n:], true
}

// parkedSession is the warm state of an interrupted resumable session,
// waiting out the grace window for its client to reconnect. A parked
// session holds no MaxSessions slot and no conn; only the table entry.
type parkedSession struct {
	token   string
	prog    *core.Prognos
	seq     int64
	buf     *replayBuffer
	carrier string
	arch    cellular.Arch
	expires time.Time
	// migrated marks state installed by a cluster migration rather than
	// parked by a local session; its first resume counts as a migrated
	// (warm-handoff) resume.
	migrated bool
	// replica marks state promoted from the replica table after a
	// confirmed owner crash. Replicated state may trail the client's
	// acknowledged cursor by the samples since the origin's last
	// replication push, so the resume path fast-forwards instead of
	// cold-starting when the client is ahead (the bounded-staleness
	// contract; see session). Cleared on re-park: once served live, the
	// cursor is exact again.
	replica bool
}

// park stores a session's warm state for ResumeGrace, evicting the entry
// closest to expiry when the table is full. The session's learned state is
// also merged into the warm store so a never-resumed park still contributes
// to checkpoints and future cold starts.
func (s *Server) park(p *parkedSession) {
	s.pushWarm(p.carrier, p.arch, p.token, p.prog.Snapshot())
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvSessionPark,
		Session: p.token,
		Carrier: p.carrier,
		Arch:    p.arch.String(),
		RespSeq: p.seq,
	})
	p.expires = time.Now().Add(s.opts.ResumeGrace)
	replaced, evicted := s.parked.insert(p, s.opts.MaxParked)
	if replaced {
		// A duplicate token replaced the previous park (same gauge slot).
		return
	}
	if evicted != nil {
		s.stats.SessionUnparked()
		s.stats.ParkedExpired()
	}
	s.stats.SessionParked()
}

// unpark removes and returns the parked session for token, or nil when no
// live entry exists. Expired entries found here are dropped exactly as the
// sweeper would drop them (lazy expiry).
func (s *Server) unpark(token string) *parkedSession {
	p := s.parked.remove(token)
	if p == nil {
		return nil
	}
	s.stats.SessionUnparked()
	if time.Now().After(p.expires) {
		s.stats.ParkedExpired()
		return nil
	}
	return p
}

// sweepParked drops every parked session past its grace window, merging its
// learned state into the warm store first.
func (s *Server) sweepParked(now time.Time) {
	expired := s.parked.sweep(now)
	// The table no longer references these sessions, so their Prognos
	// instances are exclusively ours to snapshot.
	for _, p := range expired {
		s.stats.SessionUnparked()
		s.stats.ParkedExpired()
		s.pushWarm(p.carrier, p.arch, p.token, p.prog.Snapshot())
	}
}

// pushWarm records the latest learned state for a deployment context,
// sharded by session token (see shard.go). The warm store seeds new
// sessions' learners and is what checkpoints persist.
func (s *Server) pushWarm(carrier string, arch cellular.Arch, token string, snap core.Snapshot) {
	s.warm.push(warmKey{carrier: carrier, arch: arch.String()}, token, snap)
}

// warmSnapshot returns the freshest stored learned state for a deployment
// context.
func (s *Server) warmSnapshot(carrier string, arch cellular.Arch) (core.Snapshot, bool) {
	return s.warm.freshest(warmKey{carrier: carrier, arch: arch.String()})
}

// restoreCheckpoints loads every readable checkpoint in CheckpointDir into
// the warm store at startup; sessions opened after restart bootstrap their
// learners from the pre-crash pattern databases. Unreadable or
// incompatible-version files are skipped — a restart must always come up.
func (s *Server) restoreCheckpoints() {
	files, err := core.LoadCheckpointDir(s.opts.CheckpointDir)
	if err != nil {
		return
	}
	for _, f := range files {
		// Restored state lands in the empty-token slot with a fresh
		// stamp; any later live push outranks it.
		s.warm.push(warmKey{carrier: f.Carrier, arch: f.Arch}, "", f.Snapshot)
		s.stats.CheckpointRestored()
	}
}

// CheckpointNow atomically writes one versioned checkpoint file per warm
// (carrier, arch) entry into CheckpointDir and returns the total bytes
// published. The periodic housekeeping pass and Drain call this; tests and
// operators may too.
func (s *Server) CheckpointNow() (int, error) {
	if s.opts.CheckpointDir == "" {
		return 0, nil
	}
	entries := s.warm.all()
	total := 0
	var firstErr error
	for k, snap := range entries {
		n, err := core.WriteCheckpoint(s.opts.CheckpointDir, core.CheckpointFile{
			Carrier:  k.carrier,
			Arch:     k.arch,
			Snapshot: snap,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		total += n
	}
	if total > 0 {
		s.stats.CheckpointSaved(int64(total))
		s.opts.Tracer.Emit(obs.Event{
			Kind:   obs.EvCheckpoint,
			Bytes:  int64(total),
			Detail: fmt.Sprintf("%d deployment contexts", len(entries)),
		})
	}
	return total, firstErr
}

// housekeeping is the server's background maintenance loop: it expires
// parked sessions on a fraction of the grace window and writes periodic
// checkpoints. It exits when the server stops accepting.
func (s *Server) housekeeping() {
	var sweepC, ckptC <-chan time.Time
	if s.opts.ResumeGrace > 0 {
		interval := s.opts.ResumeGrace / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		if interval > time.Second {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		sweepC = t.C
	}
	if s.opts.CheckpointDir != "" {
		t := time.NewTicker(s.opts.CheckpointInterval)
		defer t.Stop()
		ckptC = t.C
	}
	for {
		select {
		case <-s.done:
			return
		case now := <-sweepC:
			s.sweepParked(now)
			for n := s.replicas.sweep(now); n > 0; n-- {
				s.stats.ReplicaDropped()
			}
		case <-ckptC:
			s.CheckpointNow()
		}
	}
}
