// Crash-fault tolerance, server side. Where migrate.go moves warm state
// deliberately (a drain), this file moves it preemptively: every
// ReplicationInterval the node pushes its live-session resume states,
// parked sessions and warm context snapshots to the ring successor that
// would inherit each token if this node vanished
// (docs/PROTOCOL.md §Replication frames). The receiver holds session
// states passively in a replica table — never in the parked table, so
// prognos_parked_sessions is never double-counted — and promotes one only
// when the failure detector confirms its origin down. The contract is
// bounded staleness: a crash loses at most the samples accumulated since
// the last replication push, never a whole session's learner state
// (docs/ARCHITECTURE.md §Failure model).

package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cellular"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ran"
	"repro/internal/wire"
)

// replicaLiveTail bounds the replay-buffer tail a live session deposits
// with each partial replication push. It only needs to cover responses
// that may be in flight to the client at the moment of a crash — the
// pipelining window plus transport buffering — not the full replayBufCap.
const replicaLiveTail = 64

// replicaOutbox collects the partial session states live sessions deposit
// once per replication tick, keyed by token (latest push wins). The
// replication loop drains it wholesale each pass.
type replicaOutbox struct {
	mu sync.Mutex
	m  map[string]cluster.SessionState
}

func newReplicaOutbox() *replicaOutbox {
	return &replicaOutbox{m: make(map[string]cluster.SessionState)}
}

// put deposits one live session's resume state. Called from the session's
// own goroutine, so reading the replay buffer needs no synchronization;
// the copy taken here is what crosses into the replication loop.
func (o *replicaOutbox) put(token, carrier string, arch cellular.Arch, seq int64, buf *replayBuffer) {
	var resp []Response
	if buf != nil {
		tail := buf.resp
		if len(tail) > replicaLiveTail {
			tail = tail[len(tail)-replicaLiveTail:]
		}
		resp = append(resp, tail...)
	}
	st := cluster.SessionState{
		Token:     token,
		Carrier:   carrier,
		Arch:      arch,
		Seq:       seq,
		Responses: resp,
		Partial:   true,
	}
	o.mu.Lock()
	o.m[token] = st
	o.mu.Unlock()
}

// drain swaps out and returns everything deposited since the last drain.
func (o *replicaOutbox) drain() map[string]cluster.SessionState {
	o.mu.Lock()
	m := o.m
	o.m = make(map[string]cluster.SessionState, len(m))
	o.mu.Unlock()
	return m
}

// replicaEntry is one peer session state held for failover.
type replicaEntry struct {
	st      cluster.SessionState
	origin  string
	expires time.Time
}

// replicaStore holds replicated peer session states, keyed by token,
// latest push wins. Deliberately separate from the parked table: replicas
// are passive (never resumed directly, never counted in the parked
// gauge) until a confirmed owner failure promotes them.
type replicaStore struct {
	mu sync.Mutex
	m  map[string]*replicaEntry
}

func newReplicaStore() *replicaStore {
	return &replicaStore{m: make(map[string]*replicaEntry)}
}

// install stores st, refreshing expiry; it reports whether the token is
// new to the table (the gauge increment signal).
func (r *replicaStore) install(st cluster.SessionState, origin string, expires time.Time) (fresh bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, exists := r.m[st.Token]
	r.m[st.Token] = &replicaEntry{st: st, origin: origin, expires: expires}
	return !exists
}

// take removes and returns the replica for token, or nil.
func (r *replicaStore) take(token string) *replicaEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[token]
	if !ok {
		return nil
	}
	delete(r.m, token)
	return e
}

// sweep drops every replica past its expiry and returns how many fell.
func (r *replicaStore) sweep(now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for token, e := range r.m {
		if now.After(e.expires) {
			delete(r.m, token)
			n++
		}
	}
	return n
}

// size returns the current replica count (tests).
func (r *replicaStore) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// serveReplication runs the receiving side of one replication stream:
// binary framing only, FrameReplicate in, FrameReplicateAck out, one ack
// per state in order — serveMigration's choreography with two deliberate
// differences. States land in the replica table instead of the parked
// table, and transport faults mid-stream are interruptions, not session
// errors: the shipper may be a node dying mid-push, and a crash already
// under way must not inflate this node's error counters.
func (s *Server) serveReplication(hello *Hello, br *bufio.Reader, w *bufio.Writer, framing wire.Framing) (codec, error) {
	if s.opts.Cluster == nil {
		return nil, errors.New("server: replication stream on a non-clustered server")
	}
	if framing != wire.FramingBinary {
		return nil, errors.New("server: replication streams require the binary framing")
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.FramingAck{
		FramingAck:  true,
		Framing:     wire.FramingBinary,
		WireVersion: wire.ProtocolVersion,
	}); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	cdc := newBinaryCodec(br, w)
	fr, fw := cdc.fr, cdc.fw
	var seq int64
	for {
		typ, p, err := fr.ReadFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return cdc, w.Flush()
			}
			if errors.Is(err, wire.ErrFrameTooLarge) {
				return cdc, err
			}
			return cdc, errInterrupted
		}
		if typ != wire.FrameReplicate {
			return cdc, fmt.Errorf("server: unexpected frame type 0x%02x in replication stream", typ)
		}
		seq++
		s.stats.ReplicationReceived(int64(len(p)))
		var st cluster.SessionState
		ok := json.Unmarshal(p, &st) == nil && s.installReplica(st, hello.Node) == nil
		if err := fw.WriteReplicateAck(wire.MigrateAck{OK: ok, Seq: seq}); err != nil {
			return cdc, errInterrupted
		}
		if fr.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return cdc, errInterrupted
			}
		}
	}
}

// installReplica folds one pushed state into this node's passive stores:
// context snapshots into the warm store (exactly as migration does),
// session states into the replica table with a fresh expiry.
func (s *Server) installReplica(st cluster.SessionState, origin string) error {
	if st.Version > cluster.SessionStateVersion {
		return fmt.Errorf("server: replicated state version %d is newer than %d", st.Version, cluster.SessionStateVersion)
	}
	if st.Carrier == "" {
		return errors.New("server: replicated state without carrier")
	}
	if st.Token == "" {
		s.warm.push(warmKey{carrier: st.Carrier, arch: st.Arch.String()}, "", st.Snapshot)
		return nil
	}
	if s.opts.ResumeGrace <= 0 {
		return errors.New("server: resume disabled, cannot hold replica")
	}
	if fresh := s.replicas.install(st, origin, time.Now().Add(s.opts.ResumeGrace)); fresh {
		s.stats.ReplicaStored()
	}
	return nil
}

// promoteReplica turns a held replica into parked state this node can
// serve: the failover moment. Partial states (live-session pushes) carry
// no learner snapshot — the learner warm-starts from the separately
// replicated context snapshot instead — while full states restore
// exactly. It reports whether a replica existed.
func (s *Server) promoteReplica(token string) bool {
	e := s.replicas.take(token)
	if e == nil {
		return false
	}
	s.stats.ReplicaDropped()
	st := e.st
	prog, err := core.New(core.Config{
		EventConfigs: ran.EventConfigsFor(st.Carrier, st.Arch),
		Arch:         st.Arch,
	})
	if err != nil {
		return false
	}
	if st.Partial {
		if snap, ok := s.warmSnapshot(st.Carrier, st.Arch); ok {
			prog.Bootstrap(snap.Learner.Patterns)
		}
	} else {
		prog.Restore(st.Snapshot)
	}
	buf := newReplayBuffer(replayBufCap)
	for _, r := range st.Responses {
		buf.push(r)
	}
	s.park(&parkedSession{
		token:    token,
		prog:     prog,
		seq:      st.Seq,
		buf:      buf,
		carrier:  st.Carrier,
		arch:     st.Arch,
		migrated: true,
		replica:  true,
	})
	s.stats.Failover()
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvFailover,
		Session: token,
		Carrier: st.Carrier,
		Arch:    st.Arch.String(),
		RespSeq: st.Seq,
		Detail:  "replica of " + e.origin,
	})
	return true
}

// failoverTarget decides how to answer a tokened hello whose ring owner
// is another node and for which this node holds no parked state. Unless
// the detector has confirmed the owner down, the answer is the standing
// redirect to the owner. After confirmation, replicated state outranks
// the ring: promote this node's replica and serve, or — holding none —
// serve only if this node is the token's failover successor (the owner
// every surviving node agrees on with the dead member removed, so at most
// one node adopts an orphan token), redirecting there otherwise.
func (s *Server) failoverTarget(owner, token string) (serveHere bool, target string) {
	if s.detector == nil || !s.detector.Down(owner) {
		return false, owner
	}
	if s.promoteReplica(token) {
		return true, ""
	}
	rest, err := s.opts.Cluster.Without(owner)
	if err != nil {
		// The dead owner was the only other member; serving cold here
		// beats redirecting the client at a dead address.
		return true, ""
	}
	if succ := rest.Owner(token); succ != s.opts.NodeAddr {
		return false, succ
	}
	return true, ""
}

// startDetector wires the failure detector over the ring peers and routes
// its confirmed transitions into stats and the tracer.
func (s *Server) startDetector() {
	var peers []string
	for _, m := range s.opts.Cluster.Members() {
		if m != s.opts.NodeAddr {
			peers = append(peers, m)
		}
	}
	if len(peers) == 0 {
		return
	}
	s.detector = cluster.NewDetector(cluster.DetectorConfig{
		Peers:     peers,
		Interval:  s.opts.HeartbeatInterval,
		Threshold: s.opts.SuspectThreshold,
		OnChange: func(peer string, down bool) {
			if down {
				s.stats.PeerSuspected()
				s.opts.Tracer.Emit(obs.Event{Kind: obs.EvPeerDown, Detail: peer})
				return
			}
			s.stats.PeerRecovered()
			s.opts.Tracer.Emit(obs.Event{Kind: obs.EvPeerUp, Detail: peer})
		},
	})
	s.detector.Start()
}

// replicationLoop drives the async replication cadence: each tick bumps
// repGen — the signal live sessions key their outbox deposits off — and
// ships everything deposited since the previous tick. A pass therefore
// carries state at most one interval old, making the end-to-end staleness
// bound two intervals plus ship latency (docs/ARCHITECTURE.md §Failure
// model documents the resulting loss bound).
func (s *Server) replicationLoop() {
	t := time.NewTicker(s.opts.ReplicationInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.repGen.Add(1)
			s.replicateOnce()
		}
	}
}

// replicateOnce ships one replication pass: drained live-session states
// plus a fresh copy of every parked session, each to the ring successor
// that would own its token without this node, and every warm context
// snapshot to every peer. Best-effort per target — a failed push costs
// one interval of staleness, and peers the detector holds down are
// skipped rather than letting a dead successor stall the pass.
func (s *Server) replicateOnce() {
	rest, err := s.opts.Cluster.Without(s.opts.NodeAddr)
	if err != nil {
		return // single-member ring: nowhere to replicate
	}
	states := s.replOut.drain()
	now := time.Now()
	s.parked.forEach(func(p *parkedSession) {
		if now.After(p.expires) {
			return
		}
		var resp []Response
		if p.buf != nil {
			resp = append(resp, p.buf.resp...)
		}
		// forEach holds the shard lock, so the entry cannot be unparked
		// (and its Prognos handed to a session) mid-snapshot.
		states[p.token] = cluster.SessionState{
			Token:     p.token,
			Carrier:   p.carrier,
			Arch:      p.arch,
			Seq:       p.seq,
			Responses: resp,
			Snapshot:  p.prog.Snapshot(),
		}
	})
	byTarget := make(map[string][]cluster.SessionState)
	for _, st := range states {
		target := rest.Owner(st.Token)
		byTarget[target] = append(byTarget[target], st)
	}
	var contexts []cluster.SessionState
	for k, snap := range s.warm.all() {
		arch, err := cellular.ParseArch(k.arch)
		if err != nil {
			continue
		}
		contexts = append(contexts, cluster.SessionState{
			Carrier:  k.carrier,
			Arch:     arch,
			Snapshot: snap,
		})
	}
	timeout := 4 * s.opts.ReplicationInterval
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	var bytes int64
	shipped := false
	for _, target := range rest.Members() {
		sts := append(byTarget[target], contexts...)
		if len(sts) == 0 {
			continue
		}
		if s.detector != nil && s.detector.Down(target) {
			continue
		}
		st, err := cluster.ShipReplicas(target, s.opts.NodeAddr, sts, timeout)
		bytes += st.Bytes
		if err != nil {
			continue
		}
		shipped = true
	}
	if shipped {
		s.stats.ReplicationPushed(bytes)
	}
}
