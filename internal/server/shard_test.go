package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// markedSnap builds a snapshot distinguishable by its Learned counter, so
// tests can tell exactly which push freshest returned.
func markedSnap(mark int) core.Snapshot {
	return core.Snapshot{Learner: core.LearnerState{Learned: mark}}
}

// TestWarmStoreFreshestLatestWins drives the sharded warm store with
// concurrent pushes landing across all slots of one context, then performs
// a single serialized push and asserts freshest returns exactly that one:
// the global stamp must order pushes across slots, not just within one.
// Run under -race this also exercises the store's lock discipline.
func TestWarmStoreFreshestLatestWins(t *testing.T) {
	ws := newWarmStore()
	key := warmKey{carrier: "OpX", arch: "NSA"}
	other := warmKey{carrier: "OpY", arch: "SA"}

	const (
		pushers        = 8
		pushesPerGorou = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < pushesPerGorou; i++ {
				// Distinct tokens spread the pushes across warm slots;
				// a second context ensures no cross-context bleed.
				token := fmt.Sprintf("warm-ue-%d-%d", g, i)
				ws.push(key, token, markedSnap(g*pushesPerGorou+i))
				if i%3 == 0 {
					ws.push(other, token, markedSnap(-1))
				}
				// Interleave reads with the writes: freshest must always
				// see a complete snapshot, never a torn one.
				if i%7 == 0 {
					if snap, ok := ws.freshest(key); ok && snap.Learner.Learned < 0 {
						t.Errorf("freshest(%v) returned a snapshot pushed to another context", key)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// After the storm, one serialized push must win outright regardless of
	// which slot its token hashes into.
	const finalMark = pushers*pushesPerGorou + 1
	ws.push(key, "warm-ue-final", markedSnap(finalMark))
	snap, ok := ws.freshest(key)
	if !ok {
		t.Fatalf("freshest(%v) found nothing after %d pushes", key, pushers*pushesPerGorou+1)
	}
	if snap.Learner.Learned != finalMark {
		t.Fatalf("freshest(%v) = mark %d, want the final serialized push %d",
			key, snap.Learner.Learned, finalMark)
	}

	// The second context saw only its own pushes.
	snap, ok = ws.freshest(other)
	if !ok || snap.Learner.Learned != -1 {
		t.Fatalf("freshest(%v) = (%v, %v), want the -1 marker", other, snap.Learner.Learned, ok)
	}

	// all() must agree with freshest for every context.
	for k, got := range ws.all() {
		want, ok := ws.freshest(k)
		if !ok || got.Learner.Learned != want.Learner.Learned {
			t.Fatalf("all()[%v] = mark %d, freshest = (%d, %v)", k, got.Learner.Learned, want.Learner.Learned, ok)
		}
	}
}

// TestWarmStoreFreshestRacingSlot pins every push to one slot (same token)
// and races stamps deliberately: whatever interleaving occurs, the stored
// stamp must be the maximum ever offered, so a final serialized push wins.
func TestWarmStoreFreshestRacingSlot(t *testing.T) {
	ws := newWarmStore()
	key := warmKey{carrier: "OpX", arch: "LTE"}
	const token = "one-slot-token"

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ws.push(key, token, markedSnap(g*300+i))
			}
		}(g)
	}
	wg.Wait()

	ws.push(key, token, markedSnap(9999))
	snap, ok := ws.freshest(key)
	if !ok || snap.Learner.Learned != 9999 {
		t.Fatalf("freshest after racing single-slot pushes = (%v, %v), want (9999, true)", snap.Learner.Learned, ok)
	}
}
