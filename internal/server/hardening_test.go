package server

import (
	"errors"
	"net"
	"repro/internal/cellular"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubListener scripts Accept results for accept-loop tests.
type stubListener struct {
	mu      sync.Mutex
	results []error // nil means "deliver a live conn"
	conns   chan net.Conn
	addr    net.Addr
	closed  chan struct{}
	once    sync.Once
}

func newStubListener(results []error) *stubListener {
	return &stubListener{
		results: results,
		conns:   make(chan net.Conn, len(results)),
		addr:    &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0},
		closed:  make(chan struct{}),
	}
}

func (l *stubListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if len(l.results) == 0 {
		l.mu.Unlock()
		<-l.closed
		return nil, net.ErrClosed
	}
	res := l.results[0]
	l.results = l.results[1:]
	l.mu.Unlock()
	if res != nil {
		return nil, res
	}
	server, client := net.Pipe()
	l.conns <- client
	return server, nil
}

func (l *stubListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *stubListener) Addr() net.Addr { return l.addr }

// TestAcceptLoopBackoff is the regression test for the accept-loop
// busy-spin: a run of transient Accept errors must be paced by capped
// exponential backoff, and a successful accept must reset the schedule.
func TestAcceptLoopBackoff(t *testing.T) {
	transient := errors.New("accept: too many open files")
	// 5 errors, a success, 2 more errors, then the listener blocks.
	script := []error{transient, transient, transient, transient, transient, nil, transient, transient}
	ln := newStubListener(script)
	srv := newServer(ln, Options{AcceptBackoffMin: time.Millisecond, AcceptBackoffMax: 4 * time.Millisecond})
	var mu sync.Mutex
	var slept []time.Duration
	srv.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	go srv.acceptLoop()
	// The accepted conn: send nothing, just hold it until the loop has
	// consumed the whole script.
	conn := <-ln.conns
	defer conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(slept)
		mu.Unlock()
		if n >= 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accept loop stalled: %d backoff sleeps recorded", n)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()

	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, // doubling...
		4 * time.Millisecond, 4 * time.Millisecond, // ...capped
		1 * time.Millisecond, 2 * time.Millisecond, // reset after the success
	}
	for i, w := range want {
		if i >= len(slept) {
			t.Fatalf("only %d sleeps recorded, want %d", len(slept), len(want))
		}
		if slept[i] != w {
			t.Errorf("sleep[%d] = %v, want %v (full schedule %v)", i, slept[i], w, slept)
		}
	}
}

func TestServerOverLimitRejection(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// First session takes the only slot.
	c1, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}

	// Second session must be politely rejected with a structured error.
	c2, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.SendSample(mkSample(0, -85))
	if err == nil || !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("over-limit sample error = %v, want a session-limit rejection", err)
	}

	snap := srv.Stats()
	if snap.Rejected != 1 {
		t.Errorf("rejected_sessions = %d, want 1", snap.Rejected)
	}
	if snap.Sessions != 1 {
		t.Errorf("rejected session must not count as opened: sessions = %d", snap.Sessions)
	}

	// Stats sessions are exempt from the limit even while it is saturated.
	if _, err := FetchStats(srv.Addr()); err != nil {
		t.Errorf("stats session rejected at the limit: %v", err)
	}

	// Releasing the slot readmits new sessions.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c3.SendSample(mkSample(0, -85))
		c3.Close()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after session close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerOversizedRecord(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}

	// A record longer than the 1 MiB line limit must produce a structured
	// error, not a silent teardown.
	huge := make([]byte, maxLineBytes+1024)
	for i := range huge {
		huge[i] = 'x'
	}
	huge[len(huge)-1] = '\n'
	if _, err := c.conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err = c.ReadResponse()
	if err == nil || !strings.Contains(err.Error(), "line limit") {
		t.Fatalf("oversized record error = %v, want a line-limit message", err)
	}

	snap := srv.Stats()
	if snap.Oversized != 1 {
		t.Errorf("oversized_records = %d, want 1", snap.Oversized)
	}
	if snap.SessionErrors != 1 {
		t.Errorf("session_errors = %d, want 1", snap.SessionErrors)
	}
}

func TestServerSessionDeadline(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{SessionTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}

	// Go quiet past the deadline: the server must expire the session and
	// account the error.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.ReadResponse(); err == nil {
		t.Fatal("expected the idle session to be expired")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().SessionErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("deadline expiry not accounted: %+v", srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Stats().Active != 0 {
		t.Errorf("expired session still counted active: %+v", srv.Stats())
	}
}

func TestServerDrainLetsInflightFinish(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(5 * time.Second) }()

	// New sessions must be refused as soon as the drain starts...
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting during drain")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...while the in-flight session keeps being served.
	if _, err := c.SendSample(mkSample(50*time.Millisecond, -85)); err != nil {
		t.Fatalf("in-flight session broken by drain: %v", err)
	}

	// Finishing the session completes the drain cleanly.
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v, want clean completion", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after the last session ended")
	}
	if snap := srv.Stats(); snap.SessionErrors != 0 {
		t.Errorf("clean drain accounted session errors: %+v", snap)
	}
}

func TestServerDrainForceClosesAfterTimeout(t *testing.T) {
	srv, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SendSample(mkSample(0, -85)); err != nil {
		t.Fatal(err)
	}

	// The client never finishes; the drain must cut it after the deadline.
	err = srv.Drain(100 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "force-closed 1") {
		t.Fatalf("drain = %v, want a forced-close error naming 1 session", err)
	}
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.ReadResponse(); err == nil {
		t.Error("session survived a forced drain")
	}
}

// TestServerManyConcurrentSessions exercises the serving path at a fleet-ish
// session count; `go test -race ./internal/server` holds it data-race clean.
func TestServerManyConcurrentSessions(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{MaxSessions: 64, SessionTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const sessions = 32
	samples := 40
	if testing.Short() {
		samples = 10
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), Hello{Carrier: "OpY", Arch: cellular.ArchNSA})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < samples; k++ {
				if _, err := c.SendSample(mkSample(time.Duration(k)*50*time.Millisecond, -90)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Stats()
	if snap.Sessions != sessions || snap.Rejected != 0 || snap.SessionErrors != 0 {
		t.Errorf("snapshot %+v, want %d clean sessions", snap, sessions)
	}
}
