// Package server implements the Prognos network service: a line-oriented
// TCP protocol through which a UE-side agent streams its cross-layer
// observations (radio samples, sniffed measurement reports and handover
// commands, in the trace package's JSONL record format) and receives a
// handover prediction for every radio sample. This is the deployment shape
// the paper sketches for Prognos-assisted applications: a local daemon the
// application queries for ho_score.
//
// The server is hardened for fleet-scale load (see internal/fleet): a
// session-concurrency limit with polite over-limit rejection, per-session
// read/write deadlines, capped exponential backoff in the accept loop, a
// structured error line before any session teardown the server initiates,
// and a graceful drain that stops accepting while letting in-flight
// sessions finish.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ran"
	"repro/internal/trace"
)

// maxLineBytes bounds one protocol line (hello, record, response).
const maxLineBytes = 1 << 20

// Hello is the first line a client sends: the deployment context the
// Prognos instance needs, or a stats request.
type Hello struct {
	// Carrier ("OpX"/"OpY") and Arch pick the measurement-event
	// configurations and policies the session's Prognos instance loads.
	Carrier string        `json:"carrier"`
	Arch    cellular.Arch `json:"arch"`
	// UseReportPredictor enables the early-warning stage (default true).
	DisableReportPredictor bool `json:"disable_report_predictor,omitempty"`
	// Stats, when true, turns the session into a one-shot stats query:
	// the server answers with one metrics.ServerSnapshot JSON line and
	// closes. Carrier/Arch are ignored for stats sessions, and stats
	// sessions are never counted against the session limit.
	Stats bool `json:"stats,omitempty"`
	// SessionToken, when set, makes the session resumable: if the
	// transport drops mid-stream the server parks the warm Prognos
	// instance for Options.ResumeGrace, and a reconnect presenting the
	// same token re-attaches to it. The server then answers the hello
	// with a ResumeAck line (and replays any buffered responses the
	// client missed) before resuming the record stream. Tokens are
	// client-chosen; they only need to be unique per server.
	SessionToken string `json:"session_token,omitempty"`
	// LastSeq is the highest Response.Seq the client has already read,
	// so a resumed session replays exactly the responses that were lost
	// in flight and nothing the client already has.
	LastSeq int64 `json:"last_seq,omitempty"`
}

// Record is one streamed observation; exactly one payload field is set.
type Record struct {
	// Sample is a 20 Hz radio sample; the server answers it with a
	// Response line. Report (a sniffed measurement report) and HO (a
	// sniffed handover command) are one-way observations.
	Sample *trace.Sample               `json:"sample,omitempty"`
	Report *cellular.MeasurementReport `json:"report,omitempty"`
	HO     *cellular.HandoverEvent     `json:"ho,omitempty"`
}

// Response is the per-sample prediction sent back to the client.
type Response struct {
	// Time echoes the triggering sample's timestamp.
	Time time.Duration `json:"t"`
	// Type and TypeName give the predicted handover for the coming
	// prediction window (HONone/"NONE" when quiet).
	Type     cellular.HOType `json:"type"`
	TypeName string          `json:"type_name"`
	// Score is the ho_score applications act on (§7: 1 = no impact
	// expected, lower = heavier procedure expected).
	Score float64 `json:"score"`
	// Similarity is the matched pattern's similarity (diagnostics), and
	// LeadMS how far ahead the prediction was first standing.
	Similarity float64 `json:"similarity"`
	LeadMS     int64   `json:"lead_ms"`
	// Seq is the 1-based ordinal of the sample this response answers,
	// the resume cursor: a reconnecting client reports the highest Seq
	// it has read and the server replays from there.
	Seq int64 `json:"seq,omitempty"`
}

// ResumeAck is the line the server sends right after the hello of any
// tokened session, before the first response. Resumed reports whether a
// parked warm instance was re-attached; Seq is the server's resume cursor
// (the highest Response.Seq it has answered — 0 for a fresh session).
// When Resumed is true the server guarantees it will replay every buffered
// response in (hello.LastSeq, Seq] immediately after this line, so the
// client only needs to resend samples it sent after Seq. When Resumed is
// false the server state is fresh: the client must reset its cursor to 0
// and resend everything unanswered.
type ResumeAck struct {
	ResumeAck bool  `json:"resume_ack"`
	Resumed   bool  `json:"resumed"`
	Seq       int64 `json:"seq"`
}

// ErrorLine is the structured error the server sends before tearing down a
// session it cannot (or can no longer) serve: over-limit rejection, a
// malformed or oversized record, an engine failure. Clients surface the
// text as the error of the call that read it.
type ErrorLine struct {
	Error string `json:"error"`
}

// Options tunes the hardening knobs of a Server. The zero value preserves
// the historical behaviour: unlimited sessions, no deadlines.
type Options struct {
	// MaxSessions bounds concurrently served prediction sessions
	// (0 = unlimited). A session over the limit receives one ErrorLine
	// and is closed without being counted as opened; stats sessions are
	// exempt.
	MaxSessions int
	// SessionTimeout is the per-read/per-write deadline applied to every
	// session conn (0 = none). An idle or stuck session errors out after
	// one quiet interval, freeing its slot.
	SessionTimeout time.Duration
	// AcceptBackoffMin/Max bound the exponential backoff applied when
	// Accept fails with a non-shutdown error (e.g. EMFILE under load).
	// Defaults: 5ms doubling up to 1s.
	AcceptBackoffMin time.Duration
	AcceptBackoffMax time.Duration
	// ResumeGrace enables session resume: when a tokened session loses
	// its transport, the warm Prognos instance is parked for this long
	// and a reconnect presenting the same token re-attaches to it
	// (0 = resume disabled). Parked sessions hold no MaxSessions slot.
	ResumeGrace time.Duration
	// MaxParked bounds the parked-session table (default 256 when
	// ResumeGrace is set); at the bound the entry closest to expiry is
	// evicted.
	MaxParked int
	// CheckpointDir enables crash-safe learner checkpoints: the server
	// periodically serializes the warmest Prognos state per
	// (carrier, arch) into versioned snapshot files in this directory
	// (atomic rename), restores them on startup, and writes a final
	// checkpoint on Drain. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointInterval is the periodic checkpoint cadence when
	// CheckpointDir is set (default 10s).
	CheckpointInterval time.Duration
	// Tracer, when set, receives structured serving-pipeline events
	// (session lifecycle, actionable ho_score emissions, checkpoint
	// passes) for the ops plane's /events endpoint. Nil disables tracing
	// at zero cost — obs.Tracer methods are nil-safe.
	Tracer *obs.Tracer
}

// withDefaults fills the backoff bounds and the resilience defaults.
func (o Options) withDefaults() Options {
	if o.AcceptBackoffMin <= 0 {
		o.AcceptBackoffMin = 5 * time.Millisecond
	}
	if o.AcceptBackoffMax < o.AcceptBackoffMin {
		o.AcceptBackoffMax = time.Second
	}
	if o.ResumeGrace > 0 && o.MaxParked <= 0 {
		o.MaxParked = 256
	}
	if o.CheckpointDir != "" && o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Second
	}
	return o
}

// Server accepts Prognos prediction sessions.
type Server struct {
	ln    net.Listener
	opts  Options
	stats *metrics.ServerStats
	// sleep is the accept-backoff sleeper; tests swap it to observe the
	// backoff schedule without waiting it out.
	sleep func(time.Duration)

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions int // prediction sessions holding a MaxSessions slot
	parked   map[string]*parkedSession

	// warmMu guards the warm snapshot store (see resume.go); it nests
	// inside nothing — pushWarm is callable from any path.
	warmMu sync.Mutex
	warm   map[warmKey]core.Snapshot

	wg       sync.WaitGroup
	done     chan struct{}
	stopOnce sync.Once
	closeErr error
}

// Listen starts a server on addr (e.g. "127.0.0.1:7015"; port 0 picks a
// free port) with default Options.
func Listen(addr string) (*Server, error) { return ListenWith(addr, Options{}) }

// ListenWith starts a server on addr with explicit hardening options.
func ListenWith(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := newServer(ln, opts)
	go s.acceptLoop()
	return s, nil
}

// newServer wires a Server around an existing listener without starting
// the accept loop (tests drive acceptLoop directly against stub listeners).
func newServer(ln net.Listener, opts Options) *Server {
	s := &Server{
		ln:     ln,
		opts:   opts.withDefaults(),
		stats:  metrics.NewServerStats(),
		sleep:  time.Sleep,
		conns:  make(map[net.Conn]struct{}),
		parked: make(map[string]*parkedSession),
		warm:   make(map[warmKey]core.Snapshot),
		done:   make(chan struct{}),
	}
	if s.opts.CheckpointDir != "" {
		s.restoreCheckpoints()
	}
	if s.opts.ResumeGrace > 0 || s.opts.CheckpointDir != "" {
		go s.housekeeping()
	}
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the service's run metrics: sessions served,
// observations streamed, predictions returned and error counters since
// Listen.
func (s *Server) Stats() metrics.ServerSnapshot { return s.stats.Snapshot() }

// Draining reports whether the server has stopped accepting sessions
// (Close or Drain has begun). The ops plane's /readyz probe keys off
// this so load balancers stop routing to a draining daemon while its
// in-flight sessions finish.
func (s *Server) Draining() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// stopAccept makes the accept loop exit; safe to call more than once.
func (s *Server) stopAccept() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.closeErr = s.ln.Close()
	})
}

// Close stops accepting, force-closes every active session and waits for
// their goroutines to unwind. Drain is the graceful alternative.
func (s *Server) Close() error {
	s.stopAccept()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.closeErr
}

// Drain gracefully shuts the server down: it stops accepting new sessions
// immediately, lets in-flight sessions run to completion for up to timeout,
// then force-closes whatever remains. It returns nil when every session
// finished on its own, or an error naming the number of sessions that had
// to be cut.
func (s *Server) Drain(timeout time.Duration) error {
	s.stopAccept()
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		if s.opts.CheckpointDir != "" {
			s.CheckpointNow()
		}
		return nil
	case <-time.After(timeout):
	}
	s.mu.Lock()
	forced := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.opts.CheckpointDir != "" {
		// Final checkpoint: every session has now pushed its last warm
		// snapshot, so this capture is the complete pre-shutdown state.
		s.CheckpointNow()
	}
	if forced == 0 {
		return nil
	}
	return fmt.Errorf("server: drain timeout after %v: force-closed %d in-flight sessions", timeout, forced)
}

func (s *Server) acceptLoop() {
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept failures (EMFILE, ECONNABORTED, ...) must
			// not busy-spin the loop: back off exponentially, capped, and
			// reset on the next successful accept.
			if backoff == 0 {
				backoff = s.opts.AcceptBackoffMin
			} else if backoff < s.opts.AcceptBackoffMax {
				backoff *= 2
				if backoff > s.opts.AcceptBackoffMax {
					backoff = s.opts.AcceptBackoffMax
				}
			}
			s.sleep(backoff)
			continue
		}
		backoff = 0
		s.mu.Lock()
		select {
		case <-s.done:
			// Shut down between Accept and registration: drop the conn
			// rather than leak a session past Close/Drain.
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				s.wg.Done()
			}()
			s.serve(conn)
		}()
	}
}

// acquireSlot claims a session slot; it reports false at the limit.
func (s *Server) acquireSlot() bool {
	if s.opts.MaxSessions <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessions >= s.opts.MaxSessions {
		return false
	}
	s.sessions++
	return true
}

// releaseSlot returns a session slot claimed with acquireSlot.
func (s *Server) releaseSlot() {
	if s.opts.MaxSessions <= 0 {
		return
	}
	s.mu.Lock()
	s.sessions--
	s.mu.Unlock()
}

// timeoutConn arms a fresh deadline before every read and write so a
// session may idle at most Options.SessionTimeout between protocol events.
type timeoutConn struct {
	net.Conn
	d time.Duration
}

func (c timeoutConn) Read(p []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c timeoutConn) Write(p []byte) (int, error) {
	if err := c.SetWriteDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// errOverLimit marks over-limit rejections so they land in the Rejected
// counter rather than SessionErrors.
var errOverLimit = errors.New("retry later")

// errInterrupted marks a tokened session cut by a transport fault whose
// warm state was parked for resume: not a session error, and the conn is
// already dead so no ErrorLine is attempted.
var errInterrupted = errors.New("session interrupted")

// serve runs one session and accounts its outcome: session errors are
// counted and, when the transport still works, reported to the client as a
// structured ErrorLine before teardown. Interrupted resumable sessions are
// parked instead (see session) and counted separately.
func (s *Server) serve(conn net.Conn) {
	rw := net.Conn(conn)
	if s.opts.SessionTimeout > 0 {
		rw = timeoutConn{Conn: conn, d: s.opts.SessionTimeout}
	}
	w := bufio.NewWriter(rw)
	enc := json.NewEncoder(w)
	if err := s.session(rw, w, enc); err != nil {
		if errors.Is(err, errInterrupted) {
			s.stats.SessionInterrupted()
			return
		}
		if !errors.Is(err, errOverLimit) {
			s.stats.SessionError()
		}
		// Best effort: the conn may already be gone.
		if encErr := enc.Encode(ErrorLine{Error: err.Error()}); encErr == nil && w.Flush() == nil {
			// Absorb whatever the client has in flight until it reads the
			// error line and closes (bounded), so the teardown is a clean
			// FIN rather than a reset that could destroy the error line.
			conn.SetReadDeadline(time.Now().Add(time.Second))
			io.Copy(io.Discard, conn)
		}
	}
}

// session speaks the protocol on one conn: hello, then records in,
// predictions out. The returned error is what the client is told.
func (s *Server) session(conn net.Conn, w *bufio.Writer, enc *json.Encoder) error {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("server: reading hello: %w", err)
		}
		return errors.New("server: no hello")
	}
	var hello Hello
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		return fmt.Errorf("server: bad hello: %w", err)
	}
	if hello.Stats {
		if err := enc.Encode(s.stats.Snapshot()); err != nil {
			return err
		}
		return w.Flush()
	}
	if !s.acquireSlot() {
		s.stats.SessionRejected()
		return fmt.Errorf("server: session limit reached (max %d), %w", s.opts.MaxSessions, errOverLimit)
	}
	defer s.releaseSlot()
	s.stats.SessionOpened()
	defer s.stats.SessionClosed()
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvSessionOpen,
		Session: hello.SessionToken,
		Carrier: hello.Carrier,
		Arch:    hello.Arch.String(),
	})

	// A tokened hello may resume a parked warm instance. Parked sessions
	// hold no MaxSessions slot, so the slot acquired above is this conn's
	// own — resume can never leak or double-count slots.
	resumable := hello.SessionToken != "" && s.opts.ResumeGrace > 0
	var (
		prog   *core.Prognos
		seq    int64
		buf    *replayBuffer
		replay []Response
	)
	resumed := false
	if resumable {
		if p := s.unpark(hello.SessionToken); p != nil {
			if rs, ok := p.buf.after(hello.LastSeq, p.seq); ok {
				prog, seq, buf, replay = p.prog, p.seq, p.buf, rs
				resumed = true
				s.stats.SessionResumed()
				s.opts.Tracer.Emit(obs.Event{
					Kind:    obs.EvSessionResume,
					Session: hello.SessionToken,
					Carrier: hello.Carrier,
					Arch:    hello.Arch.String(),
					RespSeq: seq,
				})
			}
			// A replay gap means the client is missing responses the
			// buffer no longer holds: drop the parked state and cold-start
			// so the accounting stays exact (the warm store still carries
			// its learned patterns).
		}
	}
	if !resumed {
		var err error
		prog, err = core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor(hello.Carrier, hello.Arch),
			Arch:               hello.Arch,
			UseReportPredictor: !hello.DisableReportPredictor,
		})
		if err != nil {
			return err
		}
		// Warm-start the learner from the best snapshot this server has
		// for the deployment context (prior sessions or a restored
		// checkpoint): the cold-start mitigation of §9.
		if snap, ok := s.warmSnapshot(hello.Carrier, hello.Arch); ok {
			prog.Bootstrap(snap.Learner.Patterns)
		}
		if resumable {
			buf = newReplayBuffer(replayBufCap)
		}
	}
	park := func() error {
		s.park(&parkedSession{
			token:   hello.SessionToken,
			prog:    prog,
			seq:     seq,
			buf:     buf,
			carrier: hello.Carrier,
			arch:    hello.Arch,
		})
		return errInterrupted
	}
	if hello.SessionToken != "" {
		// Always acknowledge a token (even when resume is disabled
		// server-side: resumed=false tells the client to start fresh),
		// then replay what the client missed.
		if err := enc.Encode(ResumeAck{ResumeAck: true, Resumed: resumed, Seq: seq}); err != nil {
			if resumable {
				return park()
			}
			return err
		}
		for _, r := range replay {
			if err := enc.Encode(r); err != nil {
				if resumable {
					return park()
				}
				return err
			}
		}
		if err := w.Flush(); err != nil {
			if resumable {
				return park()
			}
			return err
		}
	}

	samplesSinceWarm := 0
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("server: bad record: %w", err)
		}
		switch {
		case rec.Report != nil:
			s.stats.AddReport()
			prog.OnReport(*rec.Report)
		case rec.HO != nil:
			s.stats.AddHandover()
			prog.OnHandover(*rec.HO)
		case rec.Sample != nil:
			reqStart := time.Now()
			s.stats.AddSample()
			prog.OnSample(*rec.Sample)
			pred := prog.Predict()
			s.stats.AddPrediction()
			seq++
			resp := Response{
				Time:       rec.Sample.Time,
				Type:       pred.Type,
				TypeName:   pred.Type.String(),
				Score:      pred.Score,
				Similarity: pred.Similarity,
				LeadMS:     pred.Lead.Milliseconds(),
				Seq:        seq,
			}
			if buf != nil {
				buf.push(resp)
			}
			if err := enc.Encode(resp); err != nil {
				if resumable {
					return park()
				}
				return err
			}
			if err := w.Flush(); err != nil {
				if resumable {
					return park()
				}
				return err
			}
			s.stats.ObserveLatency(time.Since(reqStart))
			if pred.Type != cellular.HONone {
				// Actionable prediction: the serving pipeline warned the
				// application of an impending handover (§7's ho_score).
				s.opts.Tracer.Emit(obs.Event{
					Kind:    obs.EvHOScore,
					Session: hello.SessionToken,
					Carrier: hello.Carrier,
					Arch:    hello.Arch.String(),
					HOType:  pred.Type.String(),
					Score:   pred.Score,
					RespSeq: seq,
					SimMS:   float64(rec.Sample.Time) / float64(time.Millisecond),
				})
			}
			if samplesSinceWarm++; samplesSinceWarm >= warmPushEvery {
				samplesSinceWarm = 0
				s.pushWarm(hello.Carrier, hello.Arch, prog.Snapshot())
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		if errors.Is(err, bufio.ErrTooLong) {
			s.stats.AddOversized()
			return fmt.Errorf("server: record exceeds the %d-byte line limit", maxLineBytes)
		}
		// A read-side transport fault (reset, timeout, chaos cut): park
		// resumable sessions for the grace window instead of erroring.
		if resumable {
			return park()
		}
		return err
	}
	// Clean EOF. A chaos proxy tearing a path down can surface as EOF
	// rather than an error, so resumable sessions park here too — a
	// genuinely finished client simply never resumes and the entry ages
	// out of the table at the end of the grace window.
	s.pushWarm(hello.Carrier, hello.Arch, prog.Snapshot())
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvSessionClose,
		Session: hello.SessionToken,
		Carrier: hello.Carrier,
		Arch:    hello.Arch.String(),
		RespSeq: seq,
	})
	if resumable {
		s.park(&parkedSession{
			token:   hello.SessionToken,
			prog:    prog,
			seq:     seq,
			buf:     buf,
			carrier: hello.Carrier,
			arch:    hello.Arch,
		})
	}
	return nil
}

// Client is a convenience wrapper for talking to a Prognos server. Its
// methods are not safe for concurrent use with each other, with one
// exception carved out for open-loop load generation: one goroutine may
// send (SendReport/SendHandover/SendSampleAsync) while another reads
// (ReadResponse), because the send path touches only the write half and
// ReadResponse only the read half.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	w    *bufio.Writer
	enc  *json.Encoder
}

// ClientOptions tunes how a Client connects. The zero value gives the
// historical defaults.
type ClientOptions struct {
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Dial connects with default options and sends the hello.
func Dial(addr string, hello Hello) (*Client, error) {
	return DialWith(addr, hello, ClientOptions{})
}

// DialWith connects with explicit options and sends the hello.
func DialWith(addr string, hello Hello, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := &Client{
		conn: conn,
		sc:   bufio.NewScanner(conn),
		w:    bufio.NewWriter(conn),
	}
	c.sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
	c.enc = json.NewEncoder(c.w)
	if err := c.enc.Encode(hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// CloseWrite half-closes the session: the server sees EOF (and finishes
// the session cleanly) while responses still in flight remain readable.
func (c *Client) CloseWrite() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return errors.New("server: transport does not support half-close")
}

// SendReport streams one sniffed measurement report.
func (c *Client) SendReport(mr cellular.MeasurementReport) error {
	return c.send(Record{Report: &mr})
}

// SendHandover streams one sniffed handover command.
func (c *Client) SendHandover(ho cellular.HandoverEvent) error {
	return c.send(Record{HO: &ho})
}

// SendSample streams one radio sample and returns the server's prediction.
func (c *Client) SendSample(smp trace.Sample) (Response, error) {
	if err := c.SendSampleAsync(smp); err != nil {
		return Response{}, err
	}
	return c.ReadResponse()
}

// SendSampleAsync streams one radio sample without waiting for the
// prediction; pair it with ReadResponse. Open-loop load generation uses
// this split to keep sending on schedule while a reader goroutine measures
// how late the predictions come back.
func (c *Client) SendSampleAsync(smp trace.Sample) error {
	return c.send(Record{Sample: &smp})
}

// ServerError is a structured error the server sent as an ErrorLine before
// tearing the session down: a protocol-level verdict (rejection, malformed
// input, engine failure), not a transport fault. Resilient clients treat it
// as permanent — retrying the same session would earn the same answer.
type ServerError struct {
	Msg string
}

func (e *ServerError) Error() string { return "server: session error: " + e.Msg }

// ReadResponse reads the next prediction line. Predictions arrive in send
// order, one per sample. A structured server error (ErrorLine) is returned
// as a *ServerError carrying the server's message.
func (c *Client) ReadResponse() (Response, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, io.EOF
	}
	var env struct {
		Response
		Err string `json:"error"`
	}
	if err := json.Unmarshal(c.sc.Bytes(), &env); err != nil {
		return Response{}, fmt.Errorf("server: bad response: %w", err)
	}
	if env.Err != "" {
		return Response{}, &ServerError{Msg: env.Err}
	}
	return env.Response, nil
}

// readAck reads the ResumeAck the server sends for a tokened hello. An
// ErrorLine in its place (e.g. over-limit rejection) surfaces as a
// *ServerError.
func (c *Client) readAck() (ResumeAck, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return ResumeAck{}, err
		}
		return ResumeAck{}, io.EOF
	}
	var env struct {
		ResumeAck
		Err string `json:"error"`
	}
	if err := json.Unmarshal(c.sc.Bytes(), &env); err != nil {
		return ResumeAck{}, fmt.Errorf("server: bad resume ack: %w", err)
	}
	if env.Err != "" {
		return ResumeAck{}, &ServerError{Msg: env.Err}
	}
	if !env.ResumeAck.ResumeAck {
		return ResumeAck{}, fmt.Errorf("server: expected resume ack, got %q", c.sc.Text())
	}
	return env.ResumeAck, nil
}

func (c *Client) send(rec Record) error {
	if err := c.enc.Encode(rec); err != nil {
		return err
	}
	return c.w.Flush()
}

// FetchStats opens a one-shot stats session against a Prognos server and
// returns its run-metrics snapshot. This is what `prognosd` deployments
// use for liveness dashboards.
func FetchStats(addr string) (metrics.ServerSnapshot, error) {
	c, err := Dial(addr, Hello{Stats: true})
	if err != nil {
		return metrics.ServerSnapshot{}, err
	}
	defer c.Close()
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return metrics.ServerSnapshot{}, err
		}
		return metrics.ServerSnapshot{}, io.EOF
	}
	var env struct {
		metrics.ServerSnapshot
		Err string `json:"error"`
	}
	if err := json.Unmarshal(c.sc.Bytes(), &env); err != nil {
		return metrics.ServerSnapshot{}, fmt.Errorf("server: bad stats response: %w", err)
	}
	if env.Err != "" {
		return metrics.ServerSnapshot{}, fmt.Errorf("server: stats error: %s", env.Err)
	}
	return env.ServerSnapshot, nil
}
