// Package server implements the Prognos network service: a line-oriented
// TCP protocol through which a UE-side agent streams its cross-layer
// observations (radio samples, sniffed measurement reports and handover
// commands, in the trace package's JSONL record format) and receives a
// handover prediction for every radio sample. This is the deployment shape
// the paper sketches for Prognos-assisted applications: a local daemon the
// application queries for ho_score.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ran"
	"repro/internal/trace"
)

// Hello is the first line a client sends: the deployment context the
// Prognos instance needs, or a stats request.
type Hello struct {
	// Carrier ("OpX"/"OpY") and Arch pick the measurement-event
	// configurations and policies the session's Prognos instance loads.
	Carrier string        `json:"carrier"`
	Arch    cellular.Arch `json:"arch"`
	// UseReportPredictor enables the early-warning stage (default true).
	DisableReportPredictor bool `json:"disable_report_predictor,omitempty"`
	// Stats, when true, turns the session into a one-shot stats query:
	// the server answers with one metrics.ServerSnapshot JSON line and
	// closes. Carrier/Arch are ignored for stats sessions.
	Stats bool `json:"stats,omitempty"`
}

// Record is one streamed observation; exactly one payload field is set.
type Record struct {
	// Sample is a 20 Hz radio sample; the server answers it with a
	// Response line. Report (a sniffed measurement report) and HO (a
	// sniffed handover command) are one-way observations.
	Sample *trace.Sample               `json:"sample,omitempty"`
	Report *cellular.MeasurementReport `json:"report,omitempty"`
	HO     *cellular.HandoverEvent     `json:"ho,omitempty"`
}

// Response is the per-sample prediction sent back to the client.
type Response struct {
	// Time echoes the triggering sample's timestamp.
	Time time.Duration `json:"t"`
	// Type and TypeName give the predicted handover for the coming
	// prediction window (HONone/"NONE" when quiet).
	Type     cellular.HOType `json:"type"`
	TypeName string          `json:"type_name"`
	// Score is the ho_score applications act on (§7: 1 = no impact
	// expected, lower = heavier procedure expected).
	Score float64 `json:"score"`
	// Similarity is the matched pattern's similarity (diagnostics), and
	// LeadMS how far ahead the prediction was first standing.
	Similarity float64 `json:"similarity"`
	LeadMS     int64   `json:"lead_ms"`
}

// Server accepts Prognos prediction sessions.
type Server struct {
	ln    net.Listener
	stats *metrics.ServerStats

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Listen starts a server on addr (e.g. "127.0.0.1:7015"; port 0 picks a
// free port).
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, stats: metrics.NewServerStats(), conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the service's run metrics: sessions served,
// observations streamed and predictions returned since Listen.
func (s *Server) Stats() metrics.ServerSnapshot { return s.stats.Snapshot() }

// Close stops accepting and closes every active session.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = s.serve(conn)
		}()
	}
}

// serve runs one session: hello, then records in, predictions out.
func (s *Server) serve(conn net.Conn) error {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)

	if !sc.Scan() {
		return errors.New("server: no hello")
	}
	var hello Hello
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		return fmt.Errorf("server: bad hello: %w", err)
	}
	if hello.Stats {
		if err := enc.Encode(s.stats.Snapshot()); err != nil {
			return err
		}
		return w.Flush()
	}
	s.stats.SessionOpened()
	defer s.stats.SessionClosed()
	prog, err := core.New(core.Config{
		EventConfigs:       ran.EventConfigsFor(hello.Carrier, hello.Arch),
		Arch:               hello.Arch,
		UseReportPredictor: !hello.DisableReportPredictor,
	})
	if err != nil {
		return err
	}

	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("server: bad record: %w", err)
		}
		switch {
		case rec.Report != nil:
			s.stats.AddReport()
			prog.OnReport(*rec.Report)
		case rec.HO != nil:
			s.stats.AddHandover()
			prog.OnHandover(*rec.HO)
		case rec.Sample != nil:
			s.stats.AddSample()
			prog.OnSample(*rec.Sample)
			pred := prog.Predict()
			s.stats.AddPrediction()
			resp := Response{
				Time:       rec.Sample.Time,
				Type:       pred.Type,
				TypeName:   pred.Type.String(),
				Score:      pred.Score,
				Similarity: pred.Similarity,
				LeadMS:     pred.Lead.Milliseconds(),
			}
			if err := enc.Encode(resp); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// Client is a convenience wrapper for talking to a Prognos server.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects and sends the hello.
func Dial(addr string, hello Hello) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := &Client{
		conn: conn,
		sc:   bufio.NewScanner(conn),
		w:    bufio.NewWriter(conn),
	}
	c.sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	c.enc = json.NewEncoder(c.w)
	if err := c.enc.Encode(hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// SendReport streams one sniffed measurement report.
func (c *Client) SendReport(mr cellular.MeasurementReport) error {
	return c.send(Record{Report: &mr})
}

// SendHandover streams one sniffed handover command.
func (c *Client) SendHandover(ho cellular.HandoverEvent) error {
	return c.send(Record{HO: &ho})
}

// SendSample streams one radio sample and returns the server's prediction.
func (c *Client) SendSample(smp trace.Sample) (Response, error) {
	if err := c.send(Record{Sample: &smp}); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, io.EOF
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("server: bad response: %w", err)
	}
	return resp, nil
}

func (c *Client) send(rec Record) error {
	if err := c.enc.Encode(rec); err != nil {
		return err
	}
	return c.w.Flush()
}

// FetchStats opens a one-shot stats session against a Prognos server and
// returns its run-metrics snapshot. This is what `prognosd` deployments
// use for liveness dashboards.
func FetchStats(addr string) (metrics.ServerSnapshot, error) {
	c, err := Dial(addr, Hello{Stats: true})
	if err != nil {
		return metrics.ServerSnapshot{}, err
	}
	defer c.Close()
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return metrics.ServerSnapshot{}, err
		}
		return metrics.ServerSnapshot{}, io.EOF
	}
	var snap metrics.ServerSnapshot
	if err := json.Unmarshal(c.sc.Bytes(), &snap); err != nil {
		return metrics.ServerSnapshot{}, fmt.Errorf("server: bad stats response: %w", err)
	}
	return snap, nil
}
