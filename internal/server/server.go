// Package server implements the Prognos network service: a TCP protocol
// through which a UE-side agent streams its cross-layer observations
// (radio samples, sniffed measurement reports and handover commands) and
// receives a handover prediction for every radio sample. This is the
// deployment shape the paper sketches for Prognos-assisted applications: a
// local daemon the application queries for ho_score.
//
// Records travel in one of two framings, negotiated in the hello and
// specified normatively in docs/PROTOCOL.md: line-oriented JSONL (the
// default) or an opt-in length-prefixed binary framing for high-rate
// fleets. The protocol types themselves live in internal/wire; this
// package re-exports them under their historical names.
//
// The server is hardened for fleet-scale load (see internal/fleet): a
// session-concurrency limit with polite over-limit rejection, per-session
// read/write deadlines, capped exponential backoff in the accept loop, a
// structured error (JSONL ErrorLine or binary FrameError, matching the
// session's framing) before any session teardown the server initiates, and
// a graceful drain that stops accepting while letting in-flight sessions
// finish. Shared learner state is sharded per deployment context and per
// session-token hash (see shard.go) so concurrent sessions do not
// serialize on one lock.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellular"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ran"
	"repro/internal/trace"
	"repro/internal/wire"
)

// maxLineBytes bounds one JSONL protocol line (hello, record, response).
const maxLineBytes = wire.MaxLineBytes

// Protocol types, defined in internal/wire and re-exported here under
// their historical names so existing callers keep compiling.
type (
	// Hello is the first line a client sends; see wire.Hello.
	Hello = wire.Hello
	// Record is one streamed observation; see wire.Record.
	Record = wire.Record
	// Response is the per-sample prediction; see wire.Response.
	Response = wire.Response
	// ResumeAck acknowledges a tokened hello; see wire.ResumeAck.
	ResumeAck = wire.ResumeAck
	// ErrorLine is the structured teardown error; see wire.ErrorLine.
	ErrorLine = wire.ErrorLine
)

// Options tunes the hardening knobs of a Server. The zero value preserves
// the historical behaviour: unlimited sessions, no deadlines.
type Options struct {
	// MaxSessions bounds concurrently served prediction sessions
	// (0 = unlimited). A session over the limit receives one ErrorLine
	// and is closed without being counted as opened; stats sessions are
	// exempt.
	MaxSessions int
	// SessionTimeout is the per-read/per-write deadline applied to every
	// session conn (0 = none). An idle or stuck session errors out after
	// one quiet interval, freeing its slot.
	SessionTimeout time.Duration
	// AcceptBackoffMin/Max bound the exponential backoff applied when
	// Accept fails with a non-shutdown error (e.g. EMFILE under load).
	// Defaults: 5ms doubling up to 1s.
	AcceptBackoffMin time.Duration
	AcceptBackoffMax time.Duration
	// ResumeGrace enables session resume: when a tokened session loses
	// its transport, the warm Prognos instance is parked for this long
	// and a reconnect presenting the same token re-attaches to it
	// (0 = resume disabled). Parked sessions hold no MaxSessions slot.
	ResumeGrace time.Duration
	// MaxParked bounds the parked-session table (default 256 when
	// ResumeGrace is set); at the bound the entry closest to expiry is
	// evicted.
	MaxParked int
	// CheckpointDir enables crash-safe learner checkpoints: the server
	// periodically serializes the warmest Prognos state per
	// (carrier, arch) into versioned snapshot files in this directory
	// (atomic rename), restores them on startup, and writes a final
	// checkpoint on Drain. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointInterval is the periodic checkpoint cadence when
	// CheckpointDir is set (default 10s).
	CheckpointInterval time.Duration
	// Tracer, when set, receives structured serving-pipeline events
	// (session lifecycle, actionable ho_score emissions, checkpoint
	// passes) for the ops plane's /events endpoint. Nil disables tracing
	// at zero cost — obs.Tracer methods are nil-safe.
	Tracer *obs.Tracer
	// Cluster and NodeAddr make the server cluster-aware: NodeAddr is this
	// node's identity in the Cluster ring (its serving address as the
	// member list spells it), and a tokened session whose ring owner is
	// another node is answered with a redirect to that owner instead of
	// being served — unless this node holds parked state for the token
	// (the sticky-session rule, ARCHITECTURE.md §Cluster), in which case
	// it serves the resume regardless of the ring so migrated sessions
	// never bounce. Nil Cluster disables all ownership checks. Migration
	// streams (Hello.Migrate) are accepted whether or not Cluster is set.
	Cluster  *cluster.Ring
	NodeAddr string
	// ReplicationInterval enables async warm-state replication: every
	// interval the node pushes its live-session resume states, parked
	// sessions and warm context snapshots to their ring successors
	// (ShipReplicas, docs/PROTOCOL.md §Replication frames), so a crash of
	// this node loses at most the samples accumulated since the last push
	// — never a whole session's learner state (docs/ARCHITECTURE.md
	// §Failure model). 0 disables replication. Requires Cluster.
	ReplicationInterval time.Duration
	// HeartbeatInterval is the failure-detector probe cadence against the
	// other ring members. Defaults to 50ms when ReplicationInterval is
	// set, 0 (off) otherwise; < 0 forces it off. Without a running
	// detector replicas are held but never promoted: confirmed failure is
	// the only signal that lets replica state outrank the ring.
	HeartbeatInterval time.Duration
	// SuspectThreshold is the consecutive failed probes that confirm a
	// peer down (default 2).
	SuspectThreshold int
}

// withDefaults fills the backoff bounds and the resilience defaults.
func (o Options) withDefaults() Options {
	if o.AcceptBackoffMin <= 0 {
		o.AcceptBackoffMin = 5 * time.Millisecond
	}
	if o.AcceptBackoffMax < o.AcceptBackoffMin {
		o.AcceptBackoffMax = time.Second
	}
	if o.ResumeGrace > 0 && o.MaxParked <= 0 {
		o.MaxParked = 256
	}
	if o.CheckpointDir != "" && o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 10 * time.Second
	}
	if o.Cluster == nil {
		o.ReplicationInterval = 0
	}
	if o.ReplicationInterval > 0 && o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 50 * time.Millisecond
	}
	if o.HeartbeatInterval < 0 || o.Cluster == nil {
		o.HeartbeatInterval = 0
	}
	if o.SuspectThreshold <= 0 {
		o.SuspectThreshold = 2
	}
	return o
}

// Server accepts Prognos prediction sessions.
type Server struct {
	ln    net.Listener
	opts  Options
	stats *metrics.ServerStats
	// sleep is the accept-backoff sleeper; tests swap it to observe the
	// backoff schedule without waiting it out.
	sleep func(time.Duration)

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions int // prediction sessions holding a MaxSessions slot

	// parked and warm are internally sharded (see shard.go) and take no
	// part in s.mu's ordering.
	parked *parkedTable
	warm   *warmStore

	// Crash-fault tolerance (replicate.go). replicas holds peer session
	// states for failover; replOut is the outbox live sessions deposit
	// their resume state into, once per repGen bump (the replication
	// ticker's generation counter); detector confirms peer failures.
	replicas *replicaStore
	replOut  *replicaOutbox
	repGen   atomic.Int64
	detector *cluster.Detector

	wg       sync.WaitGroup
	done     chan struct{}
	stopOnce sync.Once
	closeErr error
}

// Listen starts a server on addr (e.g. "127.0.0.1:7015"; port 0 picks a
// free port) with default Options.
func Listen(addr string) (*Server, error) { return ListenWith(addr, Options{}) }

// ListenWith starts a server on addr with explicit hardening options.
func ListenWith(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	return Serve(ln, opts), nil
}

// Serve wires a Server around an existing listener and starts accepting on
// it. Cluster rigs use this to pre-bind every node's listener first — so
// the full member list (real ports included) exists before any node starts
// — and only then bring the servers up around them.
func Serve(ln net.Listener, opts Options) *Server {
	s := newServer(ln, opts)
	go s.acceptLoop()
	return s
}

// newServer wires a Server around an existing listener without starting
// the accept loop (tests drive acceptLoop directly against stub listeners).
func newServer(ln net.Listener, opts Options) *Server {
	s := &Server{
		ln:       ln,
		opts:     opts.withDefaults(),
		stats:    metrics.NewServerStats(),
		sleep:    time.Sleep,
		conns:    make(map[net.Conn]struct{}),
		parked:   newParkedTable(),
		warm:     newWarmStore(),
		replicas: newReplicaStore(),
		replOut:  newReplicaOutbox(),
		done:     make(chan struct{}),
	}
	if s.opts.CheckpointDir != "" {
		s.restoreCheckpoints()
	}
	if s.opts.ResumeGrace > 0 || s.opts.CheckpointDir != "" {
		go s.housekeeping()
	}
	if s.opts.ReplicationInterval > 0 {
		go s.replicationLoop()
	}
	if s.opts.HeartbeatInterval > 0 {
		s.startDetector()
	}
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns a snapshot of the service's run metrics: sessions served,
// observations streamed, predictions returned and error counters since
// Listen.
func (s *Server) Stats() metrics.ServerSnapshot { return s.stats.Snapshot() }

// Draining reports whether the server has stopped accepting sessions
// (Close or Drain has begun). The ops plane's /readyz probe keys off
// this so load balancers stop routing to a draining daemon while its
// in-flight sessions finish.
func (s *Server) Draining() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// stopAccept makes the accept loop exit; safe to call more than once.
func (s *Server) stopAccept() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.closeErr = s.ln.Close()
		if s.detector != nil {
			s.detector.Stop()
		}
	})
}

// Close stops accepting, force-closes every active session and waits for
// their goroutines to unwind. Drain is the graceful alternative.
func (s *Server) Close() error {
	s.stopAccept()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.closeErr
}

// Kill tears the server down the way a crash does: accepting stops, every
// active conn is RST-closed mid-flight (SO_LINGER 0, the signature of a
// dead process as the peer sees it), and nothing is drained, migrated or
// checkpointed — whatever state only this node held dies with it. The
// node-kill chaos mode uses this to prove the cluster's replication path
// bounds that loss (docs/ARCHITECTURE.md §Failure model).
func (s *Server) Kill() {
	s.stopAccept()
	s.mu.Lock()
	for c := range s.conns {
		chaos.RSTClose(c)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Drain gracefully shuts the server down: it stops accepting new sessions
// immediately, lets in-flight sessions run to completion for up to timeout,
// then force-closes whatever remains. It returns nil when every session
// finished on its own, or an error naming the number of sessions that had
// to be cut.
func (s *Server) Drain(timeout time.Duration) error {
	s.stopAccept()
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		if s.opts.CheckpointDir != "" {
			s.CheckpointNow()
		}
		return nil
	case <-time.After(timeout):
	}
	s.mu.Lock()
	forced := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.opts.CheckpointDir != "" {
		// Final checkpoint: every session has now pushed its last warm
		// snapshot, so this capture is the complete pre-shutdown state.
		s.CheckpointNow()
	}
	if forced == 0 {
		return nil
	}
	return fmt.Errorf("server: drain timeout after %v: force-closed %d in-flight sessions", timeout, forced)
}

func (s *Server) acceptLoop() {
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			// Transient accept failures (EMFILE, ECONNABORTED, ...) must
			// not busy-spin the loop: back off exponentially, capped, and
			// reset on the next successful accept.
			if backoff == 0 {
				backoff = s.opts.AcceptBackoffMin
			} else if backoff < s.opts.AcceptBackoffMax {
				backoff *= 2
				if backoff > s.opts.AcceptBackoffMax {
					backoff = s.opts.AcceptBackoffMax
				}
			}
			s.sleep(backoff)
			continue
		}
		backoff = 0
		s.mu.Lock()
		select {
		case <-s.done:
			// Shut down between Accept and registration: drop the conn
			// rather than leak a session past Close/Drain.
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				s.wg.Done()
			}()
			s.serve(conn)
		}()
	}
}

// acquireSlot claims a session slot; it reports false at the limit.
func (s *Server) acquireSlot() bool {
	if s.opts.MaxSessions <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sessions >= s.opts.MaxSessions {
		return false
	}
	s.sessions++
	return true
}

// releaseSlot returns a session slot claimed with acquireSlot.
func (s *Server) releaseSlot() {
	if s.opts.MaxSessions <= 0 {
		return
	}
	s.mu.Lock()
	s.sessions--
	s.mu.Unlock()
}

// timeoutConn arms a fresh deadline before every read and write so a
// session may idle at most Options.SessionTimeout between protocol events.
type timeoutConn struct {
	net.Conn
	d time.Duration
}

func (c timeoutConn) Read(p []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c timeoutConn) Write(p []byte) (int, error) {
	if err := c.SetWriteDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// errOverLimit marks over-limit rejections so they land in the Rejected
// counter rather than SessionErrors.
var errOverLimit = errors.New("retry later")

// errInterrupted marks a tokened session cut by a transport fault whose
// warm state was parked for resume: not a session error, and the conn is
// already dead so no ErrorLine is attempted.
var errInterrupted = errors.New("session interrupted")

// redirectError tells a session its token lives on another cluster node.
// serve writes it as a JSONL ErrorLine with the redirect field set —
// always JSONL, because redirects are issued at hello time, before any
// framing ack (docs/PROTOCOL.md §Redirects) — and accounts it as a
// redirect, not a session error.
type redirectError struct{ owner string }

func (e *redirectError) Error() string {
	return fmt.Sprintf("server: session token is owned by cluster node %s", e.owner)
}

// protocolError wraps a record decode failure: the client's fault, to be
// reported back as a structured error, as opposed to a transport fault
// (which parks resumable sessions instead).
type protocolError struct{ err error }

func (e *protocolError) Error() string { return e.err.Error() }
func (e *protocolError) Unwrap() error { return e.err }

// codec is one session's record framing: it reads client records and
// writes server records in either JSONL or binary form, over the shared
// buffered conn halves. Buffered exposes the read side's already-buffered
// bytes so the session loop can coalesce response flushes while more
// pipelined input is waiting (docs/PROTOCOL.md §Flushing).
type codec interface {
	// ReadRecord decodes the next client record into rec. It returns
	// io.EOF at a clean end of stream, a *protocolError for malformed
	// records, wire.ErrLineTooLong/wire.ErrFrameTooLarge for oversized
	// ones, and the transport error otherwise.
	ReadRecord(rec *Record) error
	WriteResponse(Response) error
	WriteResumeAck(ResumeAck) error
	// WriteError emits the structured teardown error in the session's
	// framing (ErrorLine or FrameError).
	WriteError(msg string) error
	Buffered() int
	Flush() error
}

// jsonlCodec is the default line-oriented framing.
type jsonlCodec struct {
	br  *bufio.Reader
	w   *bufio.Writer
	enc *json.Encoder
}

func newJSONLCodec(br *bufio.Reader, w *bufio.Writer) *jsonlCodec {
	return &jsonlCodec{br: br, w: w, enc: json.NewEncoder(w)}
}

func (c *jsonlCodec) ReadRecord(rec *Record) error {
	line, err := wire.ReadLine(c.br, maxLineBytes)
	if err != nil {
		return err
	}
	*rec = Record{}
	if err := json.Unmarshal(line, rec); err != nil {
		return &protocolError{err: err}
	}
	return nil
}

func (c *jsonlCodec) WriteResponse(r Response) error   { return c.enc.Encode(r) }
func (c *jsonlCodec) WriteResumeAck(a ResumeAck) error { return c.enc.Encode(a) }
func (c *jsonlCodec) WriteError(msg string) error      { return c.enc.Encode(ErrorLine{Error: msg}) }
func (c *jsonlCodec) Buffered() int                    { return c.br.Buffered() }
func (c *jsonlCodec) Flush() error                     { return c.w.Flush() }

// binaryCodec is the negotiated length-prefixed framing. Decoded record
// payloads live in the codec's scratch fields and are overwritten by the
// next ReadRecord; the session loop consumes each record before reading
// the next.
type binaryCodec struct {
	fr *wire.FrameReader
	fw *wire.FrameWriter
	w  *bufio.Writer

	sample trace.Sample
	report cellular.MeasurementReport
	ho     cellular.HandoverEvent
}

func newBinaryCodec(br *bufio.Reader, w *bufio.Writer) *binaryCodec {
	return &binaryCodec{fr: wire.NewFrameReader(br), fw: wire.NewFrameWriter(w), w: w}
}

func (c *binaryCodec) ReadRecord(rec *Record) error {
	typ, p, err := c.fr.ReadFrame()
	if err != nil {
		return err
	}
	rec.Sample, rec.Report, rec.HO = nil, nil, nil
	switch typ {
	case wire.FrameSample:
		if err := wire.DecodeSample(p, &c.sample); err != nil {
			return &protocolError{err: err}
		}
		rec.Sample = &c.sample
	case wire.FrameReport:
		if err := wire.DecodeReport(p, &c.report); err != nil {
			return &protocolError{err: err}
		}
		rec.Report = &c.report
	case wire.FrameHO:
		if err := wire.DecodeHandover(p, &c.ho); err != nil {
			return &protocolError{err: err}
		}
		rec.HO = &c.ho
	default:
		return &protocolError{err: fmt.Errorf("unexpected frame type 0x%02x", typ)}
	}
	return nil
}

func (c *binaryCodec) WriteResponse(r Response) error   { return c.fw.WriteResponse(r) }
func (c *binaryCodec) WriteResumeAck(a ResumeAck) error { return c.fw.WriteResumeAck(a) }
func (c *binaryCodec) WriteError(msg string) error      { return c.fw.WriteError(msg) }
func (c *binaryCodec) Buffered() int                    { return c.fr.Buffered() }
func (c *binaryCodec) Flush() error                     { return c.w.Flush() }

// serve runs one session and accounts its outcome: session errors are
// counted and, when the transport still works, reported to the client as a
// structured error in the session's negotiated framing before teardown.
// Interrupted resumable sessions are parked instead (see session) and
// counted separately.
func (s *Server) serve(conn net.Conn) {
	rw := net.Conn(conn)
	if s.opts.SessionTimeout > 0 {
		rw = timeoutConn{Conn: conn, d: s.opts.SessionTimeout}
	}
	br := bufio.NewReaderSize(rw, 64<<10)
	w := bufio.NewWriter(rw)
	cdc, err := s.session(br, w)
	if err != nil {
		if errors.Is(err, errInterrupted) {
			s.stats.SessionInterrupted()
			return
		}
		var re *redirectError
		if errors.As(err, &re) {
			// Redirect: not a session error. The error line carries the
			// owning node so the client re-dials there instead of retrying.
			s.stats.SessionRedirected()
			enc := json.NewEncoder(w)
			if enc.Encode(ErrorLine{Error: err.Error(), Redirect: re.owner}) == nil && w.Flush() == nil {
				conn.SetReadDeadline(time.Now().Add(time.Second))
				io.Copy(io.Discard, conn)
			}
			return
		}
		if !errors.Is(err, errOverLimit) {
			s.stats.SessionError()
		}
		if cdc == nil {
			cdc = newJSONLCodec(br, w)
		}
		// Best effort: the conn may already be gone.
		if cdc.WriteError(err.Error()) == nil && cdc.Flush() == nil {
			// Absorb whatever the client has in flight until it reads the
			// error and closes (bounded), so the teardown is a clean FIN
			// rather than a reset that could destroy the error record.
			conn.SetReadDeadline(time.Now().Add(time.Second))
			io.Copy(io.Discard, conn)
		}
	}
}

// session speaks the protocol on one conn: hello (always JSONL), framing
// negotiation, then records in, predictions out. The returned error is
// what the client is told, through the returned codec (nil when the
// session never got past the hello: the answer stays JSONL).
func (s *Server) session(br *bufio.Reader, w *bufio.Writer) (codec, error) {
	helloLine, err := wire.ReadLine(br, maxLineBytes)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// A connection that closes before sending a single byte never
			// spoke the protocol at all: an aborted dial (a peer's failure-
			// detector probe timing out in the accept backlog), a port scan,
			// a load balancer's TCP health check. Churn, not a session error
			// — counting it would let a busy accept loop inflate the error
			// gauges the crash gates watch.
			return nil, errInterrupted
		}
		return nil, fmt.Errorf("server: reading hello: %w", err)
	}
	var hello Hello
	if err := json.Unmarshal(helloLine, &hello); err != nil {
		return nil, fmt.Errorf("server: bad hello: %w", err)
	}
	if hello.Stats {
		// Stats exchanges are always JSONL, whatever the hello requested.
		enc := json.NewEncoder(w)
		if err := enc.Encode(s.stats.Snapshot()); err != nil {
			return nil, err
		}
		return nil, w.Flush()
	}
	framing, err := wire.ParseFraming(hello.Framing)
	if err != nil {
		// Unsupported framing is rejected before any ack, so the error
		// reaches the client in the framing it can already parse.
		return nil, fmt.Errorf("server: %w", err)
	}
	if hello.Migrate {
		// Node-to-node migration stream: no MaxSessions slot, no session
		// counters — it is control plane, not serving load.
		return s.serveMigration(&hello, br, w, framing)
	}
	if hello.Replicate {
		// Node-to-node async replication stream: control plane too.
		return s.serveReplication(&hello, br, w, framing)
	}
	if s.opts.Cluster != nil && hello.SessionToken != "" {
		// Ownership check, before the slot claim so redirects cost
		// nothing. The parked-state exception is the sticky-session rule:
		// state migrated here (or parked here) outranks the ring, so a
		// drained-and-restarted origin node never bounces a session back
		// and forth. When the owner is confirmed down by the failure
		// detector, replicated state outranks the ring instead: the
		// failover path promotes this node's replica (or redirects to the
		// token's failover successor) rather than bouncing the client off
		// a dead address (docs/ARCHITECTURE.md §Failure model).
		owner := s.opts.Cluster.Owner(hello.SessionToken)
		if owner != s.opts.NodeAddr && !s.parked.has(hello.SessionToken, time.Now()) {
			if serveHere, target := s.failoverTarget(owner, hello.SessionToken); !serveHere {
				return nil, &redirectError{owner: target}
			}
		}
	}
	if !s.acquireSlot() {
		s.stats.SessionRejected()
		return nil, fmt.Errorf("server: session limit reached (max %d), %w", s.opts.MaxSessions, errOverLimit)
	}
	defer s.releaseSlot()
	s.stats.SessionOpened()
	defer s.stats.SessionClosed()
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvSessionOpen,
		Session: hello.SessionToken,
		Carrier: hello.Carrier,
		Arch:    hello.Arch.String(),
	})

	var cdc codec
	if framing == wire.FramingBinary {
		// Acknowledge the switch on the JSONL layer; everything after
		// this line (ResumeAck, replay, responses) is binary frames.
		enc := json.NewEncoder(w)
		if err := enc.Encode(wire.FramingAck{
			FramingAck:  true,
			Framing:     wire.FramingBinary,
			WireVersion: wire.ProtocolVersion,
		}); err != nil {
			return nil, err
		}
		cdc = newBinaryCodec(br, w)
	} else {
		cdc = newJSONLCodec(br, w)
	}

	// A tokened hello may resume a parked warm instance. Parked sessions
	// hold no MaxSessions slot, so the slot acquired above is this conn's
	// own — resume can never leak or double-count slots.
	resumable := hello.SessionToken != "" && s.opts.ResumeGrace > 0
	var (
		prog   *core.Prognos
		seq    int64
		buf    *replayBuffer
		replay []Response
	)
	resumed := false
	if resumable {
		p := s.unpark(hello.SessionToken)
		if p == nil && s.promoteReplica(hello.SessionToken) {
			// Anti-entropy resume: this node holds the token only as a
			// passive replica — it is a revived owner whose successor pushed
			// the state back, or a failover successor whose detector-gated
			// promotion already ran above. Every redirect decision is behind
			// us, so a replica here is state this node is entitled to serve;
			// promote it rather than cold-start next to warm state.
			p = s.unpark(hello.SessionToken)
		}
		if p != nil {
			rs, ok := p.buf.after(hello.LastSeq, p.seq)
			if !ok && p.replica && hello.LastSeq > p.seq {
				// Promoted replica trailing the client's cursor: the origin
				// died after acknowledging samples the last replication push
				// didn't carry. Fast-forward the cursor to the client's —
				// those samples' learning died with the origin (the bounded-
				// staleness contract), but the stream itself resumes exactly
				// where the client left off, so no acknowledged sample is
				// re-asked or lost. The replay buffer's entries all predate
				// the new cursor, so it restarts empty.
				p.seq = hello.LastSeq
				p.buf = newReplayBuffer(replayBufCap)
				rs, ok = nil, true
			}
			if ok {
				prog, seq, buf, replay = p.prog, p.seq, p.buf, rs
				resumed = true
				s.stats.SessionResumed()
				if p.migrated {
					s.stats.MigratedResume()
				}
				s.opts.Tracer.Emit(obs.Event{
					Kind:    obs.EvSessionResume,
					Session: hello.SessionToken,
					Carrier: hello.Carrier,
					Arch:    hello.Arch.String(),
					RespSeq: seq,
				})
			}
			// A replay gap means the client is missing responses the
			// buffer no longer holds: drop the parked state and cold-start
			// so the accounting stays exact (the warm store still carries
			// its learned patterns).
		}
	}
	if !resumed {
		var err error
		prog, err = core.New(core.Config{
			EventConfigs:       ran.EventConfigsFor(hello.Carrier, hello.Arch),
			Arch:               hello.Arch,
			UseReportPredictor: !hello.DisableReportPredictor,
		})
		if err != nil {
			return cdc, err
		}
		// Warm-start the learner from the best snapshot this server has
		// for the deployment context (prior sessions or a restored
		// checkpoint): the cold-start mitigation of §9.
		if snap, ok := s.warmSnapshot(hello.Carrier, hello.Arch); ok {
			prog.Bootstrap(snap.Learner.Patterns)
		}
		if resumable {
			buf = newReplayBuffer(replayBufCap)
		}
	}
	park := func() error {
		if seq == 0 {
			// Nothing served, nothing to resume: an empty park would only
			// shadow (and, via insert-replace, destroy) real state for the
			// token — migrated state landing during a client's warm probe.
			return errInterrupted
		}
		s.park(&parkedSession{
			token:   hello.SessionToken,
			prog:    prog,
			seq:     seq,
			buf:     buf,
			carrier: hello.Carrier,
			arch:    hello.Arch,
		})
		return errInterrupted
	}
	if hello.SessionToken != "" {
		// Always acknowledge a token (even when resume is disabled
		// server-side: resumed=false tells the client to start fresh),
		// then replay what the client missed.
		if err := cdc.WriteResumeAck(ResumeAck{ResumeAck: true, Resumed: resumed, Seq: seq}); err != nil {
			if resumable {
				return cdc, park()
			}
			return cdc, err
		}
		for _, r := range replay {
			if err := cdc.WriteResponse(r); err != nil {
				if resumable {
					return cdc, park()
				}
				return cdc, err
			}
		}
	}
	// Flush the hello-phase output (framing ack and/or resume preamble)
	// before blocking on the first record.
	if err := cdc.Flush(); err != nil {
		if resumable {
			return cdc, park()
		}
		return cdc, err
	}

	samplesSinceWarm := 0
	// Live-session replication: once per replication tick (observed as a
	// repGen bump, one atomic load per sample) the session deposits its
	// resume state into the outbox from its own goroutine — no cross-
	// goroutine snapshotting, no lock on the hot path.
	replicating := resumable && s.opts.ReplicationInterval > 0
	var lastRepGen int64
	var rec Record
	for {
		if err := cdc.ReadRecord(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var pe *protocolError
			switch {
			case errors.Is(err, wire.ErrLineTooLong):
				s.stats.AddOversized()
				return cdc, fmt.Errorf("server: record exceeds the %d-byte line limit", maxLineBytes)
			case errors.Is(err, wire.ErrFrameTooLarge):
				s.stats.AddOversized()
				return cdc, fmt.Errorf("server: record exceeds the %d-byte frame limit", wire.MaxFrameBytes)
			case errors.As(err, &pe):
				return cdc, fmt.Errorf("server: bad record: %w", pe.err)
			}
			// A read-side transport fault (reset, timeout, chaos cut):
			// park resumable sessions for the grace window instead of
			// erroring.
			if resumable {
				return cdc, park()
			}
			return cdc, err
		}
		switch {
		case rec.Report != nil:
			s.stats.AddReport()
			prog.OnReport(*rec.Report)
		case rec.HO != nil:
			s.stats.AddHandover()
			prog.OnHandover(*rec.HO)
		case rec.Sample != nil:
			reqStart := time.Now()
			s.stats.AddSample()
			prog.OnSample(*rec.Sample)
			pred := prog.Predict()
			s.stats.AddPrediction()
			seq++
			resp := Response{
				Time:       rec.Sample.Time,
				Type:       pred.Type,
				TypeName:   pred.Type.String(),
				Score:      pred.Score,
				Similarity: pred.Similarity,
				LeadMS:     pred.Lead.Milliseconds(),
				Seq:        seq,
			}
			if buf != nil {
				buf.push(resp)
			}
			if err := cdc.WriteResponse(resp); err != nil {
				if resumable {
					return cdc, park()
				}
				return cdc, err
			}
			// Coalesced flushing: while the client has more records
			// already pipelined, hold the responses back and flush the
			// whole batch once the read side runs dry. Clients write
			// records atomically, so an empty read buffer means the
			// client is (or soon will be) blocked waiting on us.
			if cdc.Buffered() == 0 {
				if err := cdc.Flush(); err != nil {
					if resumable {
						return cdc, park()
					}
					return cdc, err
				}
			}
			s.stats.ObserveLatency(time.Since(reqStart))
			if pred.Type != cellular.HONone {
				// Actionable prediction: the serving pipeline warned the
				// application of an impending handover (§7's ho_score).
				s.opts.Tracer.Emit(obs.Event{
					Kind:    obs.EvHOScore,
					Session: hello.SessionToken,
					Carrier: hello.Carrier,
					Arch:    hello.Arch.String(),
					HOType:  pred.Type.String(),
					Score:   pred.Score,
					RespSeq: seq,
					SimMS:   float64(rec.Sample.Time) / float64(time.Millisecond),
				})
			}
			if samplesSinceWarm++; samplesSinceWarm >= warmPushEvery {
				samplesSinceWarm = 0
				s.pushWarm(hello.Carrier, hello.Arch, hello.SessionToken, prog.Snapshot())
			}
			if replicating {
				if gen := s.repGen.Load(); gen != lastRepGen {
					lastRepGen = gen
					s.replOut.put(hello.SessionToken, hello.Carrier, hello.Arch, seq, buf)
				}
			}
		}
	}
	// Clean EOF: release any responses still held by flush coalescing.
	if err := cdc.Flush(); err != nil {
		if resumable {
			return cdc, park()
		}
		return cdc, err
	}
	// A chaos proxy tearing a path down can surface as EOF rather than an
	// error, so resumable sessions park here too — a genuinely finished
	// client simply never resumes and the entry ages out of the table at
	// the end of the grace window. Sessions that served nothing (seq 0)
	// are the exception: they carry no state worth resuming, and parking
	// them is actively harmful in cluster mode — insert replaces by token,
	// so an empty park from a client that declined a cold offer (warm
	// probing, see ResilientClient) would destroy the migrated state the
	// probe was waiting for the moment it lands.
	s.pushWarm(hello.Carrier, hello.Arch, hello.SessionToken, prog.Snapshot())
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvSessionClose,
		Session: hello.SessionToken,
		Carrier: hello.Carrier,
		Arch:    hello.Arch.String(),
		RespSeq: seq,
	})
	if resumable && seq > 0 {
		s.park(&parkedSession{
			token:   hello.SessionToken,
			prog:    prog,
			seq:     seq,
			buf:     buf,
			carrier: hello.Carrier,
			arch:    hello.Arch,
		})
	}
	return cdc, nil
}

// Client is a convenience wrapper for talking to a Prognos server. Its
// methods are not safe for concurrent use with each other, with one
// exception carved out for open-loop load generation: one goroutine may
// send (SendReport/SendHandover/SendSampleAsync) while another reads
// (ReadResponse), because the send path touches only the write half and
// ReadResponse only the read half. ClientOptions.NoAutoFlush forfeits
// this carve-out (see its doc).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	w    *bufio.Writer
	enc  *json.Encoder
	// fr/fw are set iff the session negotiated the binary framing.
	fr *wire.FrameReader
	fw *wire.FrameWriter
	// autoFlush mirrors !ClientOptions.NoAutoFlush.
	autoFlush bool
}

// ClientOptions tunes how a Client connects. The zero value gives the
// historical defaults: JSONL framing, one flush per sample.
type ClientOptions struct {
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// Framing selects the record framing ("" = honour Hello.Framing,
	// defaulting to JSONL). wire.FramingBinary negotiates the binary
	// framing during DialWith; a server that rejects it surfaces as a
	// *ServerError from DialWith.
	Framing wire.Framing
	// NoAutoFlush batches writes: samples are buffered until the client
	// either blocks in ReadResponse (which first flushes anything
	// pending) or calls CloseWrite. This amortises syscalls for windowed
	// closed-loop streaming, but makes ReadResponse touch the write
	// half: a NoAutoFlush client must NOT split sending and reading
	// across goroutines.
	NoAutoFlush bool
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

// Dial connects with default options and sends the hello.
func Dial(addr string, hello Hello) (*Client, error) {
	return DialWith(addr, hello, ClientOptions{})
}

// DialWith connects with explicit options, sends the hello and completes
// framing negotiation. For binary framing it reads the server's
// FramingAck before returning; a structured rejection surfaces as a
// *ServerError.
func DialWith(addr string, hello Hello, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	want := string(opts.Framing)
	if want == "" {
		want = hello.Framing
	}
	framing, err := wire.ParseFraming(want)
	if err != nil {
		return nil, err
	}
	if framing == wire.FramingBinary {
		hello.Framing = string(wire.FramingBinary)
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 64<<10),
		w:         bufio.NewWriter(conn),
		autoFlush: !opts.NoAutoFlush,
	}
	c.enc = json.NewEncoder(c.w)
	if err := c.enc.Encode(hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	if framing == wire.FramingBinary {
		if err := c.readFramingAck(); err != nil {
			conn.Close()
			return nil, err
		}
		c.fr = wire.NewFrameReader(c.br)
		c.fw = wire.NewFrameWriter(c.w)
	}
	return c, nil
}

// readFramingAck consumes the JSONL FramingAck answering a binary hello.
func (c *Client) readFramingAck() error {
	line, err := wire.ReadLine(c.br, maxLineBytes)
	if err != nil {
		return fmt.Errorf("server: reading framing ack: %w", err)
	}
	var env struct {
		wire.FramingAck
		Err      string `json:"error"`
		Redirect string `json:"redirect"`
	}
	if err := json.Unmarshal(line, &env); err != nil {
		return fmt.Errorf("server: bad framing ack: %w", err)
	}
	if env.Err != "" {
		return &ServerError{Msg: env.Err, Redirect: env.Redirect}
	}
	if !env.FramingAck.FramingAck || env.Framing != wire.FramingBinary {
		return fmt.Errorf("server: expected framing ack, got %q", line)
	}
	return nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// CloseWrite half-closes the session: the server sees EOF (and finishes
// the session cleanly) while responses still in flight remain readable.
func (c *Client) CloseWrite() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		return tc.CloseWrite()
	}
	return errors.New("server: transport does not support half-close")
}

// SendReport streams one sniffed measurement report. Control records are
// buffered and ride out with the next sample send, ReadResponse or
// CloseWrite rather than paying their own flush.
func (c *Client) SendReport(mr cellular.MeasurementReport) error {
	if c.fw != nil {
		return c.fw.WriteReport(&mr)
	}
	return c.enc.Encode(Record{Report: &mr})
}

// SendHandover streams one sniffed handover command (buffered like
// SendReport).
func (c *Client) SendHandover(ho cellular.HandoverEvent) error {
	if c.fw != nil {
		return c.fw.WriteHandover(&ho)
	}
	return c.enc.Encode(Record{HO: &ho})
}

// SendSample streams one radio sample and returns the server's prediction.
func (c *Client) SendSample(smp trace.Sample) (Response, error) {
	if err := c.SendSampleAsync(smp); err != nil {
		return Response{}, err
	}
	return c.ReadResponse()
}

// SendSampleAsync streams one radio sample without waiting for the
// prediction; pair it with ReadResponse. Open-loop load generation uses
// this split to keep sending on schedule while a reader goroutine measures
// how late the predictions come back. Windowed closed-loop load instead
// sets NoAutoFlush and sends a burst before reading it back.
func (c *Client) SendSampleAsync(smp trace.Sample) error {
	var err error
	if c.fw != nil {
		err = c.fw.WriteSample(&smp)
	} else {
		err = c.enc.Encode(Record{Sample: &smp})
	}
	if err != nil {
		return err
	}
	if c.autoFlush {
		return c.w.Flush()
	}
	return nil
}

// ServerError is a structured error the server sent (as a JSONL ErrorLine
// or a binary FrameError) before tearing the session down: a
// protocol-level verdict (rejection, malformed input, engine failure), not
// a transport fault. Resilient clients treat it as permanent — retrying
// the same session would earn the same answer — with one exception: a
// non-empty Redirect is routing, not a verdict. It names the cluster node
// that owns the session's token; the client should re-dial there.
type ServerError struct {
	Msg      string
	Redirect string
}

func (e *ServerError) Error() string { return "server: session error: " + e.Msg }

// ReadResponse reads the next prediction. Predictions arrive in send
// order, one per sample. A structured server error is returned as a
// *ServerError carrying the server's message. Under NoAutoFlush,
// ReadResponse first flushes any buffered writes so a blocked read can
// never deadlock against records the client still holds locally.
func (c *Client) ReadResponse() (Response, error) {
	if !c.autoFlush && c.w.Buffered() > 0 {
		if err := c.w.Flush(); err != nil {
			return Response{}, err
		}
	}
	if c.fr != nil {
		typ, p, err := c.fr.ReadFrame()
		if err != nil {
			return Response{}, err
		}
		switch typ {
		case wire.FrameResponse:
			var r Response
			if err := wire.DecodeResponse(p, &r); err != nil {
				return Response{}, fmt.Errorf("server: bad response: %w", err)
			}
			return r, nil
		case wire.FrameError:
			return Response{}, &ServerError{Msg: string(p)}
		default:
			return Response{}, fmt.Errorf("server: unexpected frame type 0x%02x", typ)
		}
	}
	line, err := wire.ReadLine(c.br, maxLineBytes)
	if err != nil {
		return Response{}, err
	}
	var env struct {
		Response
		Err      string `json:"error"`
		Redirect string `json:"redirect"`
	}
	if err := json.Unmarshal(line, &env); err != nil {
		return Response{}, fmt.Errorf("server: bad response: %w", err)
	}
	if env.Err != "" {
		return Response{}, &ServerError{Msg: env.Err, Redirect: env.Redirect}
	}
	return env.Response, nil
}

// readAck reads the ResumeAck the server sends for a tokened hello. An
// error record in its place (e.g. over-limit rejection) surfaces as a
// *ServerError.
func (c *Client) readAck() (ResumeAck, error) {
	if c.fr != nil {
		typ, p, err := c.fr.ReadFrame()
		if err != nil {
			return ResumeAck{}, err
		}
		switch typ {
		case wire.FrameResumeAck:
			var a ResumeAck
			if err := wire.DecodeResumeAck(p, &a); err != nil {
				return ResumeAck{}, fmt.Errorf("server: bad resume ack: %w", err)
			}
			return a, nil
		case wire.FrameError:
			return ResumeAck{}, &ServerError{Msg: string(p)}
		default:
			return ResumeAck{}, fmt.Errorf("server: expected resume ack, got frame type 0x%02x", typ)
		}
	}
	line, err := wire.ReadLine(c.br, maxLineBytes)
	if err != nil {
		return ResumeAck{}, err
	}
	var env struct {
		ResumeAck
		Err      string `json:"error"`
		Redirect string `json:"redirect"`
	}
	if err := json.Unmarshal(line, &env); err != nil {
		return ResumeAck{}, fmt.Errorf("server: bad resume ack: %w", err)
	}
	if env.Err != "" {
		return ResumeAck{}, &ServerError{Msg: env.Err, Redirect: env.Redirect}
	}
	if !env.ResumeAck.ResumeAck {
		return ResumeAck{}, fmt.Errorf("server: expected resume ack, got %q", line)
	}
	return env.ResumeAck, nil
}

// FetchStats opens a one-shot stats session against a Prognos server and
// returns its run-metrics snapshot. This is what `prognosd` deployments
// use for liveness dashboards. Stats sessions are always JSONL.
func FetchStats(addr string) (metrics.ServerSnapshot, error) {
	c, err := Dial(addr, Hello{Stats: true})
	if err != nil {
		return metrics.ServerSnapshot{}, err
	}
	defer c.Close()
	line, err := wire.ReadLine(c.br, maxLineBytes)
	if err != nil {
		return metrics.ServerSnapshot{}, err
	}
	var env struct {
		metrics.ServerSnapshot
		Err string `json:"error"`
	}
	if err := json.Unmarshal(line, &env); err != nil {
		return metrics.ServerSnapshot{}, fmt.Errorf("server: bad stats response: %w", err)
	}
	if env.Err != "" {
		return metrics.ServerSnapshot{}, fmt.Errorf("server: stats error: %s", env.Err)
	}
	return env.ServerSnapshot, nil
}
