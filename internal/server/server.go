// Package server implements the Prognos network service: a line-oriented
// TCP protocol through which a UE-side agent streams its cross-layer
// observations (radio samples, sniffed measurement reports and handover
// commands, in the trace package's JSONL record format) and receives a
// handover prediction for every radio sample. This is the deployment shape
// the paper sketches for Prognos-assisted applications: a local daemon the
// application queries for ho_score.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/trace"
)

// Hello is the first line a client sends: the deployment context the
// Prognos instance needs.
type Hello struct {
	Carrier string        `json:"carrier"`
	Arch    cellular.Arch `json:"arch"`
	// UseReportPredictor enables the early-warning stage (default true).
	DisableReportPredictor bool `json:"disable_report_predictor,omitempty"`
}

// Record is one streamed observation; exactly one payload field is set.
type Record struct {
	Sample *trace.Sample               `json:"sample,omitempty"`
	Report *cellular.MeasurementReport `json:"report,omitempty"`
	HO     *cellular.HandoverEvent     `json:"ho,omitempty"`
}

// Response is the per-sample prediction sent back to the client.
type Response struct {
	Time       time.Duration   `json:"t"`
	Type       cellular.HOType `json:"type"`
	TypeName   string          `json:"type_name"`
	Score      float64         `json:"score"`
	Similarity float64         `json:"similarity"`
	LeadMS     int64           `json:"lead_ms"`
}

// Server accepts Prognos prediction sessions.
type Server struct {
	ln net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Listen starts a server on addr (e.g. "127.0.0.1:7015"; port 0 picks a
// free port).
func Listen(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and closes every active session.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return err
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = s.serve(conn)
		}()
	}
}

// serve runs one session: hello, then records in, predictions out.
func (s *Server) serve(conn net.Conn) error {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)

	if !sc.Scan() {
		return errors.New("server: no hello")
	}
	var hello Hello
	if err := json.Unmarshal(sc.Bytes(), &hello); err != nil {
		return fmt.Errorf("server: bad hello: %w", err)
	}
	prog, err := core.New(core.Config{
		EventConfigs:       ran.EventConfigsFor(hello.Carrier, hello.Arch),
		Arch:               hello.Arch,
		UseReportPredictor: !hello.DisableReportPredictor,
	})
	if err != nil {
		return err
	}

	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("server: bad record: %w", err)
		}
		switch {
		case rec.Report != nil:
			prog.OnReport(*rec.Report)
		case rec.HO != nil:
			prog.OnHandover(*rec.HO)
		case rec.Sample != nil:
			prog.OnSample(*rec.Sample)
			pred := prog.Predict()
			resp := Response{
				Time:       rec.Sample.Time,
				Type:       pred.Type,
				TypeName:   pred.Type.String(),
				Score:      pred.Score,
				Similarity: pred.Similarity,
				LeadMS:     pred.Lead.Milliseconds(),
			}
			if err := enc.Encode(resp); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// Client is a convenience wrapper for talking to a Prognos server.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
	w    *bufio.Writer
	enc  *json.Encoder
}

// Dial connects and sends the hello.
func Dial(addr string, hello Hello) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	c := &Client{
		conn: conn,
		sc:   bufio.NewScanner(conn),
		w:    bufio.NewWriter(conn),
	}
	c.sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	c.enc = json.NewEncoder(c.w)
	if err := c.enc.Encode(hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the session.
func (c *Client) Close() error { return c.conn.Close() }

// SendReport streams one sniffed measurement report.
func (c *Client) SendReport(mr cellular.MeasurementReport) error {
	return c.send(Record{Report: &mr})
}

// SendHandover streams one sniffed handover command.
func (c *Client) SendHandover(ho cellular.HandoverEvent) error {
	return c.send(Record{HO: &ho})
}

// SendSample streams one radio sample and returns the server's prediction.
func (c *Client) SendSample(smp trace.Sample) (Response, error) {
	if err := c.send(Record{Sample: &smp}); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, io.EOF
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("server: bad response: %w", err)
	}
	return resp, nil
}

func (c *Client) send(rec Record) error {
	if err := c.enc.Encode(rec); err != nil {
		return err
	}
	return c.w.Flush()
}
