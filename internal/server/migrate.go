// Cluster warm migration, server side. A draining node collects every
// parked session and warm context snapshot, groups them by the ring
// successor that will own each token once the node is gone, and ships them
// over migration streams (docs/PROTOCOL.md §Migration frames). The
// receiving side installs shipped sessions straight into its parked table
// — replay buffer and resume cursor intact — so the UE's next reconnect
// resumes warm with exact replay, exactly as if the session had parked
// there all along.

package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cellular"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ran"
	"repro/internal/wire"
)

// serveMigration runs the receiving side of one migration stream: binary
// framing only, FrameMigrate in, FrameMigrateAck out, one ack per state in
// order. Migration streams hold no MaxSessions slot and touch no session
// counters — they are cluster control plane, not serving load.
func (s *Server) serveMigration(hello *Hello, br *bufio.Reader, w *bufio.Writer, framing wire.Framing) (codec, error) {
	if framing != wire.FramingBinary {
		return nil, errors.New("server: migration streams require the binary framing")
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(wire.FramingAck{
		FramingAck:  true,
		Framing:     wire.FramingBinary,
		WireVersion: wire.ProtocolVersion,
	}); err != nil {
		return nil, err
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	cdc := newBinaryCodec(br, w)
	fr, fw := cdc.fr, cdc.fw
	var seq int64
	for {
		typ, p, err := fr.ReadFrame()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return cdc, w.Flush()
			}
			return cdc, err
		}
		if typ != wire.FrameMigrate {
			return cdc, fmt.Errorf("server: unexpected frame type 0x%02x in migration stream", typ)
		}
		seq++
		s.stats.MigrationReceived(int64(len(p)))
		var st cluster.SessionState
		ok := json.Unmarshal(p, &st) == nil && s.installMigrated(st, hello.Node) == nil
		if err := fw.WriteMigrateAck(wire.MigrateAck{OK: ok, Seq: seq}); err != nil {
			return cdc, err
		}
		// Coalesce ack flushes exactly like the serving path: hold them
		// while more shipped frames are already buffered.
		if fr.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return cdc, err
			}
		}
	}
}

// installMigrated folds one shipped state into this node. Context states
// (no token) merge into the warm store; session states are re-parked with
// a fresh grace window, rebuilt around a restored Prognos instance.
func (s *Server) installMigrated(st cluster.SessionState, origin string) error {
	if st.Version > cluster.SessionStateVersion {
		return fmt.Errorf("server: migrated state version %d is newer than %d", st.Version, cluster.SessionStateVersion)
	}
	if st.Carrier == "" {
		return errors.New("server: migrated state without carrier")
	}
	if st.Token == "" {
		// Context-level warm snapshot: the empty-token slot, like a
		// restored checkpoint; any later live push outranks it.
		s.warm.push(warmKey{carrier: st.Carrier, arch: st.Arch.String()}, "", st.Snapshot)
		return nil
	}
	if s.opts.ResumeGrace <= 0 {
		// Without a resume grace window this node cannot hold parked
		// state; nacking lets the shipper account the session as rejected
		// instead of silently downgrading it to a cold resume.
		return errors.New("server: resume disabled, cannot hold migrated session")
	}
	prog, err := core.New(core.Config{
		EventConfigs: ran.EventConfigsFor(st.Carrier, st.Arch),
		Arch:         st.Arch,
	})
	if err != nil {
		return err
	}
	prog.Restore(st.Snapshot)
	buf := newReplayBuffer(replayBufCap)
	for _, r := range st.Responses {
		buf.push(r)
	}
	s.park(&parkedSession{
		token:    st.Token,
		prog:     prog,
		seq:      st.Seq,
		buf:      buf,
		carrier:  st.Carrier,
		arch:     st.Arch,
		migrated: true,
	})
	s.stats.SessionMigratedIn()
	s.opts.Tracer.Emit(obs.Event{
		Kind:    obs.EvMigrateIn,
		Session: st.Token,
		Carrier: st.Carrier,
		Arch:    st.Arch.String(),
		RespSeq: st.Seq,
		Detail:  "from " + origin,
	})
	return nil
}

// DrainStats accounts one DrainToCluster pass.
type DrainStats struct {
	// Forced counts in-flight sessions force-closed into the parked table;
	// Sessions and Contexts the states the peers accepted, Rejected the
	// states they nacked.
	Forced   int
	Sessions int
	Contexts int
	Rejected int
	// Targets is the number of peer nodes shipped to, Bytes the total
	// migration payload shipped, Elapsed the whole pass's wall time.
	Targets int
	Bytes   int64
	Elapsed time.Duration
	// LocalFallback reports that no peer could be reached at all, so the
	// drain fell back to local persistence: everything that would have
	// shipped stays merged in the warm store and (if configured) the
	// final checkpoint. Not an error — the state survives locally and the
	// summary says so — whereas a partial ship failure still surfaces one.
	LocalFallback bool
}

// Summary renders the pass for operator logs, naming the fallback
// explicitly when every peer was unreachable.
func (ds DrainStats) Summary() string {
	if ds.LocalFallback {
		return fmt.Sprintf(
			"drain: no reachable peers; fell back to local persistence (forced %d sessions; learned state kept in the warm store and local checkpoint) in %v",
			ds.Forced, ds.Elapsed.Round(time.Millisecond))
	}
	return fmt.Sprintf(
		"drain: %d sessions + %d contexts to %d targets (%d rejected, %d bytes, forced %d) in %v",
		ds.Sessions, ds.Contexts, ds.Targets, ds.Rejected, ds.Bytes, ds.Forced,
		ds.Elapsed.Round(time.Millisecond))
}

// DrainToCluster drains this node into its cluster: it stops accepting,
// cuts in-flight sessions so they park (resumable sessions park on
// transport fault — the same zero-loss path a crash exercises, except
// deliberate), then ships every parked session to the ring successor that
// owns its token once this node is gone, and every warm context snapshot
// to every peer. Shipping is best-effort per target: states a peer could
// not take were still merged into this node's warm store and checkpoint
// (if configured), so the worst case is a cold resume, never a lost
// sample. The per-target timeout bounds each migration stream.
func (s *Server) DrainToCluster(timeout time.Duration) (DrainStats, error) {
	start := time.Now()
	var ds DrainStats
	if s.opts.Cluster == nil {
		return ds, errors.New("server: DrainToCluster on a server without a cluster ring")
	}
	rest, err := s.opts.Cluster.Without(s.opts.NodeAddr)
	if err != nil {
		return ds, fmt.Errorf("server: no drain successors: %w", err)
	}

	// Stop accepting and cut the in-flight sessions. Each resumable
	// session's serve goroutine parks its warm state on the way out, so
	// after wg.Wait the parked table holds everything worth shipping.
	s.stopAccept()
	s.mu.Lock()
	ds.Forced = len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()

	parked := s.parked.drainAll()
	for range parked {
		s.stats.SessionUnparked()
	}
	byTarget := make(map[string][]cluster.SessionState)
	for _, p := range parked {
		var resp []Response
		if p.buf != nil {
			resp = append(resp, p.buf.resp...)
		}
		target := rest.Owner(p.token)
		byTarget[target] = append(byTarget[target], cluster.SessionState{
			Token:     p.token,
			Carrier:   p.carrier,
			Arch:      p.arch,
			Seq:       p.seq,
			Responses: resp,
			Snapshot:  p.prog.Snapshot(),
		})
	}
	// Every peer gets every warm context snapshot: tokens without parked
	// state re-land anywhere on the remaining ring, and wherever they do,
	// the learned patterns should be waiting.
	var contexts []cluster.SessionState
	for k, snap := range s.warm.all() {
		arch, err := cellular.ParseArch(k.arch)
		if err != nil {
			continue
		}
		contexts = append(contexts, cluster.SessionState{
			Carrier:  k.carrier,
			Arch:     arch,
			Snapshot: snap,
		})
	}

	var firstErr error
	for _, target := range rest.Members() {
		states := append(byTarget[target], contexts...)
		if len(states) == 0 {
			continue
		}
		st, err := cluster.Ship(target, s.opts.NodeAddr, states, timeout)
		ds.Bytes += st.Bytes
		ds.Sessions += st.Sessions
		ds.Contexts += st.Contexts
		ds.Rejected += st.Rejected
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ds.Targets++
		for i := 0; i < st.Sessions; i++ {
			s.stats.SessionMigratedOut()
		}
	}
	ds.Elapsed = time.Since(start)
	s.stats.MigrationShipped(ds.Bytes, ds.Elapsed)
	s.opts.Tracer.Emit(obs.Event{
		Kind:  obs.EvMigrateOut,
		Bytes: ds.Bytes,
		Detail: fmt.Sprintf("%d sessions, %d contexts to %d targets in %v",
			ds.Sessions, ds.Contexts, ds.Targets, ds.Elapsed.Round(time.Millisecond)),
	})
	if s.opts.CheckpointDir != "" {
		// The checkpoint is the fallback for anything a peer nacked.
		s.CheckpointNow()
	}
	if ds.Targets == 0 && firstErr != nil {
		// Every peer was unreachable (a partitioned or wholly-crashed
		// cluster): not a drain failure. Everything that would have
		// shipped was already merged into the warm store when it parked,
		// and the checkpoint above (when configured) persisted it — the
		// worst case on restart is a cold resume warmed by that state.
		// Surfacing an error here would make callers treat a survivable
		// shutdown as a failed one.
		ds.LocalFallback = true
		firstErr = nil
	}
	return ds, firstErr
}
