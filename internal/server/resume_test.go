package server

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/chaos"
	"repro/internal/wire"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// bothFramings runs a subtest once per wire framing, so every resume and
// checkpoint invariant is pinned under JSONL and binary alike
// (docs/PROTOCOL.md requires identical semantics from both).
func bothFramings(t *testing.T, run func(t *testing.T, dial ClientOptions)) {
	t.Helper()
	for _, fr := range []wire.Framing{wire.FramingJSONL, wire.FramingBinary} {
		t.Run(string(fr), func(t *testing.T) {
			run(t, ClientOptions{Framing: fr})
		})
	}
}

// TestSessionResumeReplaysLostResponses is the warm-resume round trip: a
// tokened session is cut mid-stream, the reconnect re-attaches the parked
// Prognos instance, and the server replays exactly the responses the
// client reports missing — no gaps, no duplicates.
func TestSessionResumeReplaysLostResponses(t *testing.T) {
	bothFramings(t, testSessionResumeReplaysLostResponses)
}

func testSessionResumeReplaysLostResponses(t *testing.T, dial ClientOptions) {
	srv, err := ListenWith("127.0.0.1:0", Options{ResumeGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hello := Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "ue-resume-1"}
	c1, err := DialWith(srv.Addr(), hello, dial)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := c1.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Resumed || ack.Seq != 0 {
		t.Fatalf("fresh tokened session acked %+v", ack)
	}
	for i := 0; i < 5; i++ {
		resp, err := c1.SendSample(mkSample(time.Duration(i)*50*time.Millisecond, -95))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != int64(i+1) {
			t.Fatalf("sample %d acked seq %d", i, resp.Seq)
		}
	}
	// Abrupt cut (RST, the way a crashed UE looks): the server must park
	// the warm instance, not error.
	c1.conn.(*net.TCPConn).SetLinger(0)
	c1.Close()
	waitFor(t, "session to park", func() bool { return srv.Stats().Parked == 1 })

	// Reconnect claiming we only read up to seq 3: the server owes 4, 5.
	hello.LastSeq = 3
	c2, err := DialWith(srv.Addr(), hello, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ack, err = c2.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Resumed || ack.Seq != 5 {
		t.Fatalf("resume acked %+v, want resumed at seq 5", ack)
	}
	for _, want := range []int64{4, 5} {
		resp, err := c2.ReadResponse()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != want {
			t.Fatalf("replayed seq %d, want %d", resp.Seq, want)
		}
	}
	// The stream continues where it left off.
	resp, err := c2.SendSample(mkSample(300*time.Millisecond, -95))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 6 {
		t.Fatalf("post-resume sample acked seq %d, want 6", resp.Seq)
	}
	if err := c2.CloseWrite(); err != nil {
		t.Fatal(err)
	}

	snap := srv.Stats()
	if snap.Interrupted != 1 || snap.Resumed != 1 {
		t.Errorf("interrupted=%d resumed=%d, want 1/1", snap.Interrupted, snap.Resumed)
	}
	if snap.SessionErrors != 0 {
		t.Errorf("a parked interruption was miscounted as %d session errors", snap.SessionErrors)
	}
}

// TestResumeGapColdStarts covers the other half of the replay invariant:
// when the client's cursor is beyond what the server ever answered (token
// reuse, buffer loss), the server must refuse the resume and cold-start
// rather than leave a hole in the response stream.
func TestResumeGapColdStarts(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{ResumeGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hello := Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "ue-gap"}
	c1, err := Dial(srv.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.readAck(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SendSample(mkSample(0, -95)); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	waitFor(t, "session to park", func() bool { return srv.Stats().Parked == 1 })

	hello.LastSeq = 40 // claims responses the server never sent
	c2, err := Dial(srv.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ack, err := c2.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Resumed || ack.Seq != 0 {
		t.Fatalf("gap resume acked %+v, want a cold start", ack)
	}
	resp, err := c2.SendSample(mkSample(0, -95))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 1 {
		t.Fatalf("cold session restarted at seq %d, want 1", resp.Seq)
	}
}

// TestSessionTimeoutResumeGraceInteraction pins the SessionTimeout ×
// ResumeGrace contract: an idle tokened session is parked (not errored) at
// the deadline, a parked session holds no MaxSessions slot, and the park
// expires at the end of the grace window without leaking anything.
func TestSessionTimeoutResumeGraceInteraction(t *testing.T) {
	srv, err := ListenWith("127.0.0.1:0", Options{
		MaxSessions:    1,
		SessionTimeout: 50 * time.Millisecond,
		ResumeGrace:    400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hello := Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "ue-idle"}
	c1, err := Dial(srv.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.readAck(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SendSample(mkSample(0, -95)); err != nil {
		t.Fatal(err)
	}
	// Idle past the deadline: the server must park, not error.
	waitFor(t, "idle session to park", func() bool { return srv.Stats().Parked == 1 })
	if snap := srv.Stats(); snap.SessionErrors != 0 || snap.Interrupted != 1 {
		t.Fatalf("idle tokened session accounted wrong: %+v", snap)
	}

	// The parked session must not hold the single MaxSessions slot.
	c2, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchLTE})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.SendSample(mkSample(0, -95)); err != nil {
		t.Fatalf("parked session leaked the only session slot: %v", err)
	}
	c2.CloseWrite()
	c2.Close()

	// The park must expire at the end of the grace window...
	waitFor(t, "park to expire", func() bool {
		s := srv.Stats()
		return s.Parked == 0 && s.ParkedExpired >= 1
	})
	// ...and a resume attempt after expiry gets a cold start.
	c3, err := Dial(srv.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "ue-idle", LastSeq: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	ack, err := c3.readAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Resumed {
		t.Fatal("resumed a session that should have expired")
	}
	if err := c3.CloseWrite(); err != nil {
		t.Fatal(err)
	}
}

// learnSession streams enough (sample, A2 report, LTE handover) phases
// through a session for the server-side learner to mine patterns.
func learnSession(t *testing.T, addr string, dial ClientOptions) {
	t.Helper()
	c, err := DialWith(addr, Hello{Carrier: "OpX", Arch: cellular.ArchLTE}, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 6; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		if _, err := c.SendSample(mkSample(at, -95)); err != nil {
			t.Fatal(err)
		}
		if err := c.SendReport(cellular.MeasurementReport{Time: at, Event: cellular.EventA2, Tech: cellular.TechLTE, ServingPCI: 1}); err != nil {
			t.Fatal(err)
		}
		if err := c.SendHandover(cellular.HandoverEvent{Time: at + 10*time.Millisecond, Type: cellular.HOLTEH}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadResponse(); err == nil {
		t.Fatal("expected EOF after drain")
	}
}

// TestCheckpointKillRestart is the crash-recovery acceptance check: a
// server learns, checkpoints, dies; a new server on the same directory
// restores the pattern database — the re-exported checkpoint is
// byte-identical — and fresh sessions predict warm immediately.
func TestCheckpointKillRestart(t *testing.T) {
	bothFramings(t, testCheckpointKillRestart)
}

func testCheckpointKillRestart(t *testing.T, dial ClientOptions) {
	dir := t.TempDir()
	opts := Options{CheckpointDir: dir, CheckpointInterval: time.Hour}

	srv1, err := ListenWith("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	learnSession(t, srv1.Addr(), dial)
	if n, err := srv1.CheckpointNow(); err != nil || n == 0 {
		t.Fatalf("checkpoint: n=%d err=%v", n, err)
	}
	path := filepath.Join(dir, "prognos-OpX-LTE.ckpt.json")
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close() // the kill

	srv2, err := ListenWith("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if snap := srv2.Stats(); snap.CheckpointRestores != 1 {
		t.Fatalf("restored %d checkpoints, want 1", snap.CheckpointRestores)
	}
	// Re-exporting the restored state must reproduce the file exactly.
	if _, err := srv2.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("restored checkpoint is not byte-identical (%d vs %d bytes)", len(before), len(after))
	}

	// A fresh session on the restarted server predicts warm: the learned
	// A2→LTEH pattern fires on the first trigger report.
	c, err := DialWith(srv2.Addr(), Hello{Carrier: "OpX", Arch: cellular.ArchLTE}, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SendSample(mkSample(0, -95)); err != nil {
		t.Fatal(err)
	}
	if err := c.SendReport(cellular.MeasurementReport{Time: 0, Event: cellular.EventA2, Tech: cellular.TechLTE, ServingPCI: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.SendSample(mkSample(50*time.Millisecond, -95))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != cellular.HOLTEH {
		t.Errorf("restarted server predicted %s, want a warm LTEH", resp.TypeName)
	}
}

// TestResilientClientThroughChaos drives a ResilientClient through a
// chaos proxy that keeps resetting connections: every sample must still
// earn exactly one response, with the recovery visible in the stats.
func TestResilientClientThroughChaos(t *testing.T) {
	bothFramings(t, testResilientClientThroughChaos)
}

func testResilientClientThroughChaos(t *testing.T, dial ClientOptions) {
	srv, err := ListenWith("127.0.0.1:0", Options{ResumeGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy, err := chaos.NewProxy("127.0.0.1:0", srv.Addr(), chaos.Config{
		Seed:       99,
		ResetProb:  1,
		ResetBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rc, err := DialResilient(proxy.Addr(), ResilientOptions{
		Hello: Hello{Carrier: "OpX", Arch: cellular.ArchLTE, SessionToken: "ue-chaos"},
		Dial:  dial,
		Retry: RetryPolicy{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Seed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	const n = 60
	for i := 0; i < n; i++ {
		if err := rc.SendSampleAsync(mkSample(time.Duration(i)*50*time.Millisecond, -95)); err != nil {
			t.Fatal(err)
		}
		if _, err := rc.ReadResponse(); err != nil {
			t.Fatal(err)
		}
	}
	st := rc.Stats()
	if st.Sent != n || st.Received != n || st.Lost() != 0 {
		t.Fatalf("accounting: %+v", st)
	}
	if st.Reconnects == 0 {
		t.Fatal("the chaos proxy never forced a reconnect — test is vacuous")
	}
	if st.Resumed == 0 {
		t.Error("no reconnect resumed warm state")
	}
}
