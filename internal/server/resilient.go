package server

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// RetryPolicy bounds a resilient client's reconnect loop: capped
// exponential backoff with seeded jitter. The zero value gives the
// defaults (8 attempts, 50ms doubling to 2s).
type RetryPolicy struct {
	// MaxAttempts is how many connect attempts one recovery makes before
	// giving up (default 8).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt up to MaxDelay (defaults 50ms and 2s). Each delay is
	// jittered uniformly over [delay/2, delay] from the client's seeded
	// RNG so a fleet's reconnects do not arrive as a thundering herd.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// ResilientOptions configures DialResilient.
type ResilientOptions struct {
	// Hello is the session context; Hello.SessionToken must be set (it is
	// the resume identity) and unique per server.
	Hello Hello
	// Dial tunes the underlying connects.
	Dial ClientOptions
	// Retry bounds each recovery.
	Retry RetryPolicy
	// Seed drives the backoff jitter (deterministic per client).
	Seed int64
	// Fallbacks are alternative server addresses tried when the primary
	// stops answering — for cluster clients, the token's ring candidates
	// after the owner, in preference order. A transport fault rotates to
	// the next address; a redirect error jumps straight to the named
	// owner. The client sticks with whatever address last worked.
	Fallbacks []string
}

// ResilientStats counts a resilient client's recovery activity.
type ResilientStats struct {
	// Reconnects counts successful re-establishments after a transport
	// fault; Resumed how many of those re-attached the server's warm
	// state, ColdResumes how many had to start a fresh server session.
	Reconnects  int64
	Resumed     int64
	ColdResumes int64
	// Redirects counts server redirects followed to the node owning the
	// session's token (cluster routing, not faults).
	Redirects int64
	// Sent counts samples handed to SendSampleAsync, Received the
	// prediction responses returned by ReadResponse. After a finished
	// stream the two are equal unless samples were genuinely lost.
	Sent     int64
	Received int64
}

// Lost is the number of samples that never earned a response.
func (s ResilientStats) Lost() int64 { return s.Sent - s.Received }

var errClientClosed = errors.New("server: resilient client closed")

// ResilientClient wraps Client with automatic recovery: dial timeouts,
// capped-exponential reconnect with jitter, and session resume over the
// token protocol, so a transport fault mid-stream costs latency but never
// samples. Structured server errors (*ServerError) are permanent — they
// are protocol verdicts, not faults — and fail fast without retry.
//
// Like Client, one goroutine may send while another reads; sends are
// serialized under an internal mutex so an inline reconnect can never
// interleave with another send.
type ResilientClient struct {
	opts ResilientOptions

	mu sync.Mutex
	// candidates is the address rotation: the primary, the configured
	// fallbacks, then any redirect targets learned along the way. cur
	// indexes the address currently (or most recently) attached.
	candidates []string
	cur        int
	c          *Client
	gen        int // bumped per adopted conn; dedupes concurrent recovery
	pending    []trace.Sample
	lastSeq    int64
	finishing  bool
	closed     bool
	rng        *rand.Rand
	st         ResilientStats
}

// DialResilient connects to a Prognos server with recovery enabled. The
// initial connect uses the same retry policy as reconnects.
func DialResilient(addr string, opts ResilientOptions) (*ResilientClient, error) {
	if opts.Hello.SessionToken == "" {
		return nil, errors.New("server: resilient client requires Hello.SessionToken")
	}
	opts.Retry = opts.Retry.withDefaults()
	rc := &ResilientClient{
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	rc.candidates = append(rc.candidates, addr)
	for _, a := range opts.Fallbacks {
		rc.follow(a)
	}
	rc.cur = 0
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if err := rc.connectLocked(false); err != nil {
		return nil, err
	}
	return rc, nil
}

// follow moves the candidate cursor to target, learning it if new.
func (rc *ResilientClient) follow(target string) {
	for i, a := range rc.candidates {
		if a == target {
			rc.cur = i
			return
		}
	}
	rc.candidates = append(rc.candidates, target)
	rc.cur = len(rc.candidates) - 1
}

// maxRedirectsPerRecovery bounds redirect-following within one recovery so
// two nodes disagreeing about ownership can never trap a client in a loop.
// Each declined cold offer (warm probe, below) may legitimately bounce the
// client off one more non-owner, so the effective bound grows with the
// probe count; it stays finite because the probes themselves are bounded.
const maxRedirectsPerRecovery = 4

// maxWarmProbePasses is how many full passes over the candidate list a
// recovery may spend declining cold acks before accepting one as genuine.
const maxWarmProbePasses = 2

// connectLocked (re)establishes the session under rc.mu: dial, hello with
// the resume cursor, ack, then replay-side repair — resending every pending
// sample the server has not answered and re-half-closing when the stream
// was already finishing. reconnect selects whether recovery counters move.
// Transport faults rotate to the next candidate address with backoff;
// redirect errors jump straight to the named owner without consuming an
// attempt (the redirecting node answered — the cluster is healthy, the
// client was just knocking on the wrong door).
func (rc *ResilientClient) connectLocked(reconnect bool) error {
	var lastErr error
	delay := rc.opts.Retry.BaseDelay
	redirects := 0
	probes := 0
	if reconnect && len(rc.candidates) > 1 {
		// A mid-stream cut in cluster mode usually means the node drained
		// or crashed — either way its parked state ships to the next ring
		// candidate, while the node itself may come straight back with an
		// empty parked table (a rolling restart rebinds in milliseconds).
		// Start recovery one candidate over: if the state actually stayed
		// put, that node redirects us straight home, so the resume is warm
		// either way and no spurious cold session is opened on the owner.
		rc.cur = (rc.cur + 1) % len(rc.candidates)
	}
	for attempt := 0; attempt < rc.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			jittered := delay/2 + time.Duration(rc.rng.Int63n(int64(delay/2)+1))
			time.Sleep(jittered)
			if delay *= 2; delay > rc.opts.Retry.MaxDelay {
				delay = rc.opts.Retry.MaxDelay
			}
		}
		hello := rc.opts.Hello
		hello.LastSeq = rc.lastSeq
		c, err := DialWith(rc.candidates[rc.cur], hello, rc.opts.Dial)
		var ack ResumeAck
		if err == nil {
			ack, err = c.readAck()
			if err != nil {
				c.Close()
			}
		}
		if err != nil {
			var se *ServerError
			if errors.As(err, &se) {
				if se.Redirect != "" && redirects < maxRedirectsPerRecovery+probes {
					redirects++
					rc.st.Redirects++
					rc.follow(se.Redirect)
					attempt-- // routing, not a fault: no attempt, no backoff
					continue
				}
				return err // protocol verdict: retrying earns the same answer
			}
			lastErr = err
			rc.cur = (rc.cur + 1) % len(rc.candidates)
			continue
		}
		if reconnect && !ack.Resumed && rc.lastSeq > 0 &&
			len(rc.candidates) > 1 && probes < maxWarmProbePasses*len(rc.candidates) {
			// A cold ack right after a mid-stream cut in cluster mode is
			// usually the race, not the truth: the drained node's warm state
			// is still in flight to its ring successor while this client has
			// already dialled on. Declining is free — the server parks only
			// on transport faults, so a clean close ends the fresh session
			// without leaving a stub — so close, give the migration one
			// backoff step to land, and knock on the next door. Only after
			// maxWarmProbePasses full passes over the candidates is a cold
			// answer accepted as genuine (grace expired, state lost).
			probes++
			c.Close()
			rc.cur = (rc.cur + 1) % len(rc.candidates)
			jittered := delay/2 + time.Duration(rc.rng.Int63n(int64(delay/2)+1))
			time.Sleep(jittered)
			if delay *= 2; delay > rc.opts.Retry.MaxDelay {
				delay = rc.opts.Retry.MaxDelay
			}
			attempt-- // probing, not a fault: the node answered
			continue
		}
		resend := rc.pending
		if ack.Resumed {
			// The server replays (lastSeq, ack.Seq] itself; we only owe it
			// the samples it never saw.
			skip := ack.Seq - rc.lastSeq
			if skip < 0 {
				skip = 0
			}
			if skip > int64(len(rc.pending)) {
				skip = int64(len(rc.pending))
			}
			resend = rc.pending[skip:]
		} else {
			// Fresh server session: both cursors restart from zero and
			// everything unanswered is resent.
			rc.lastSeq = 0
		}
		if err := rc.repair(c, resend); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		rc.c = c
		rc.gen++
		if reconnect {
			rc.st.Reconnects++
			if ack.Resumed {
				rc.st.Resumed++
			} else {
				rc.st.ColdResumes++
			}
		}
		return nil
	}
	if lastErr == nil {
		lastErr = errors.New("no attempts made")
	}
	return fmt.Errorf("server: reconnect gave up after %d attempts: %w", rc.opts.Retry.MaxAttempts, lastErr)
}

// repair resends the unanswered tail of the stream on a fresh conn and
// restores the half-close when the stream was already finishing.
func (rc *ResilientClient) repair(c *Client, resend []trace.Sample) error {
	for _, smp := range resend {
		if err := c.SendSampleAsync(smp); err != nil {
			return err
		}
	}
	if rc.finishing {
		return c.CloseWrite()
	}
	return nil
}

// recover re-establishes the session after a fault observed on generation
// gen. If another goroutine already recovered past gen it is a no-op.
func (rc *ResilientClient) recover(gen int) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return errClientClosed
	}
	if rc.gen != gen {
		return nil
	}
	rc.c.Close()
	return rc.connectLocked(true)
}

// SendSampleAsync streams one radio sample, reconnecting inline on a
// transport fault; the sample is queued as pending before the first send
// attempt, so recovery replays it exactly once.
func (rc *ResilientClient) SendSampleAsync(smp trace.Sample) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return errClientClosed
	}
	rc.pending = append(rc.pending, smp)
	rc.st.Sent++
	if err := rc.c.SendSampleAsync(smp); err != nil {
		rc.c.Close()
		// connectLocked replays all pending, including this sample.
		return rc.connectLocked(true)
	}
	return nil
}

// SendReport streams one measurement report. Control records are one-way
// observations: a fault triggers a reconnect, but the record itself is not
// replayed (the learner tolerates a dropped report; samples never drop).
func (rc *ResilientClient) SendReport(mr cellular.MeasurementReport) error {
	return rc.sendControl(func(c *Client) error { return c.SendReport(mr) })
}

// SendHandover streams one handover command (same semantics as SendReport).
func (rc *ResilientClient) SendHandover(ho cellular.HandoverEvent) error {
	return rc.sendControl(func(c *Client) error { return c.SendHandover(ho) })
}

func (rc *ResilientClient) sendControl(send func(*Client) error) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return errClientClosed
	}
	if err := send(rc.c); err != nil {
		rc.c.Close()
		if err := rc.connectLocked(true); err != nil {
			return err
		}
		send(rc.c) // best effort on the fresh conn; a second fault drops it
	}
	return nil
}

// ReadResponse returns the next prediction. On a transport fault it
// recovers and keeps reading; server replay and pending-resend guarantee
// every sent sample earns exactly one response, in seq order. io.EOF is
// only returned once the stream was finished (Finish) and fully drained.
func (rc *ResilientClient) ReadResponse() (Response, error) {
	for {
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			return Response{}, errClientClosed
		}
		c, gen := rc.c, rc.gen
		outstanding := len(rc.pending)
		finishing := rc.finishing
		rc.mu.Unlock()

		resp, err := c.ReadResponse()
		if err == nil {
			rc.mu.Lock()
			adv := resp.Seq - rc.lastSeq
			if adv <= 0 {
				// A duplicate would double-count; the protocol never sends
				// one, but chaos testing deserves the belt and braces.
				rc.mu.Unlock()
				continue
			}
			if adv > int64(len(rc.pending)) {
				adv = int64(len(rc.pending))
			}
			rc.pending = rc.pending[adv:]
			rc.lastSeq = resp.Seq
			rc.st.Received++
			rc.mu.Unlock()
			return resp, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return Response{}, err
		}
		if errors.Is(err, io.EOF) && finishing && outstanding == 0 {
			return Response{}, io.EOF
		}
		if rerr := rc.recover(gen); rerr != nil {
			return Response{}, rerr
		}
	}
}

// SendSample streams one radio sample and returns its prediction, the
// blocking round trip closed-loop load uses.
func (rc *ResilientClient) SendSample(smp trace.Sample) (Response, error) {
	if err := rc.SendSampleAsync(smp); err != nil {
		return Response{}, err
	}
	return rc.ReadResponse()
}

// Finish half-closes the stream: the server answers everything in flight
// and ends the session cleanly. Recovery after Finish re-resends pending
// samples and re-half-closes, so ReadResponse still drains to exactly one
// response per sample before reporting io.EOF.
func (rc *ResilientClient) Finish() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return errClientClosed
	}
	rc.finishing = true
	if err := rc.c.CloseWrite(); err != nil {
		rc.c.Close()
		return rc.connectLocked(true)
	}
	return nil
}

// Close tears the client down; no recovery survives it.
func (rc *ResilientClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil
	}
	rc.closed = true
	return rc.c.Close()
}

// Stats returns the recovery counters observed so far.
func (rc *ResilientClient) Stats() ResilientStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.st
}

// Addr returns the server address the client is currently attached to. It
// moves with redirects and fallback rotation, so after a cluster drain it
// names the node actually serving the session.
func (rc *ResilientClient) Addr() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.candidates[rc.cur]
}
