// Package trace defines the cross-layer log records emitted by the drive
// simulator and consumed by every analysis: 20 Hz radio samples (the
// 5G Tracker / XCAL analogue), measurement reports, handover events, and
// throughput samples. It also provides JSONL serialisation and the
// phase-splitting helper (MR sequence → HO command) at the heart of
// Prognos' decision learner (§7.2).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/cellular"
)

// SampleHz is the logging rate used throughout the reproduction, matching
// the paper's 20 Hz dataset.
const SampleHz = 20

// SamplePeriod is the interval between consecutive radio samples.
const SamplePeriod = time.Second / SampleHz

// CellObs is one observed cell in a radio sample.
type CellObs struct {
	PCI   cellular.PCI  `json:"pci"`
	Tech  cellular.Tech `json:"tech"`
	Band  cellular.Band `json:"band"`
	RSRP  float64       `json:"rsrp"`
	RSRQ  float64       `json:"rsrq"`
	SINR  float64       `json:"sinr"`
	Valid bool          `json:"valid"`
}

// Sample is one 20 Hz cross-layer log record.
type Sample struct {
	Time      time.Duration `json:"t"`
	X         float64       `json:"x"`
	Y         float64       `json:"y"`
	OdometerM float64       `json:"odo"`
	SpeedMPS  float64       `json:"speed"`
	Arch      cellular.Arch `json:"arch"`
	// ServingLTE is the LTE anchor observation (always valid in LTE/NSA
	// service; invalid in SA).
	ServingLTE CellObs `json:"lte"`
	// ServingNR is the NR leg observation (valid when a 5G leg is attached).
	ServingNR CellObs `json:"nr"`
	// NeighborLTE/NeighborNR are the strongest neighbour observations.
	NeighborLTE CellObs `json:"nlte"`
	NeighborNR  CellObs `json:"nnr"`
	// InHO reports whether a handover execution (T2) overlapped this
	// sample; HOType gives its type.
	InHO   bool            `json:"inho,omitempty"`
	HOType cellular.HOType `json:"hotype,omitempty"`
	// TputMbps is the instantaneous achievable downlink throughput
	// (0 during data-plane interruption).
	TputMbps float64 `json:"tput"`
}

// Log is a complete simulated drive: the full cross-layer capture for one
// UE on one carrier.
type Log struct {
	Carrier   string                       `json:"carrier"`
	Arch      cellular.Arch                `json:"arch"`
	RouteKind string                       `json:"route"`
	Samples   []Sample                     `json:"-"`
	Reports   []cellular.MeasurementReport `json:"-"`
	Handovers []cellular.HandoverEvent     `json:"-"`
}

// Duration returns the span of the log.
func (l *Log) Duration() time.Duration {
	if len(l.Samples) == 0 {
		return 0
	}
	return l.Samples[len(l.Samples)-1].Time
}

// DistanceKM returns the total distance travelled.
func (l *Log) DistanceKM() float64 {
	if len(l.Samples) == 0 {
		return 0
	}
	return l.Samples[len(l.Samples)-1].OdometerM / 1000
}

// HandoversOfType filters the HO events by type.
func (l *Log) HandoversOfType(types ...cellular.HOType) []cellular.HandoverEvent {
	want := make(map[cellular.HOType]bool, len(types))
	for _, t := range types {
		want[t] = true
	}
	var out []cellular.HandoverEvent
	for _, h := range l.Handovers {
		if want[h.Type] {
			out = append(out, h)
		}
	}
	return out
}

// UniquePCIs returns the number of distinct cells observed for a technology.
func (l *Log) UniquePCIs(tech cellular.Tech) int {
	seen := make(map[cellular.PCI]bool)
	for _, s := range l.Samples {
		obs := s.ServingLTE
		if tech == cellular.TechNR {
			obs = s.ServingNR
		}
		if obs.Valid {
			seen[obs.PCI] = true
		}
	}
	return len(seen)
}

// Phase is one decision-learner unit: the measurement reports observed since
// the previous handover, terminated by a handover command (§7.2).
type Phase struct {
	Reports []cellular.MeasurementReport
	HO      cellular.HandoverEvent
}

// Pattern returns the MR-sequence key for the phase, e.g. "A2,A5".
func (p Phase) Pattern() string {
	s := ""
	for i, r := range p.Reports {
		if i > 0 {
			s += ","
		}
		s += r.Key()
	}
	return s
}

// SplitPhases partitions a report/handover stream into phases. Reports
// arriving after the last handover form no phase (the stream is still open).
// Reports and handovers must each be time-ordered.
func SplitPhases(reports []cellular.MeasurementReport, handovers []cellular.HandoverEvent) []Phase {
	phases := make([]Phase, 0, len(handovers))
	ri := 0
	for _, ho := range handovers {
		var ph Phase
		for ri < len(reports) && reports[ri].Time <= ho.Time {
			ph.Reports = append(ph.Reports, reports[ri])
			ri++
		}
		ph.HO = ho
		phases = append(phases, ph)
	}
	return phases
}

// record is the JSONL envelope: exactly one of the payload fields is set.
type record struct {
	Kind   string                      `json:"kind"`
	Meta   *logMeta                    `json:"meta,omitempty"`
	Sample *Sample                     `json:"sample,omitempty"`
	Report *cellular.MeasurementReport `json:"report,omitempty"`
	HO     *cellular.HandoverEvent     `json:"ho,omitempty"`
}

type logMeta struct {
	Carrier   string        `json:"carrier"`
	Arch      cellular.Arch `json:"arch"`
	RouteKind string        `json:"route"`
}

// Write serialises the log as JSONL: a meta line followed by time-ordered
// sample/report/ho lines.
func (l *Log) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(record{Kind: "meta", Meta: &logMeta{Carrier: l.Carrier, Arch: l.Arch, RouteKind: l.RouteKind}}); err != nil {
		return fmt.Errorf("trace: write meta: %w", err)
	}
	for i := range l.Samples {
		if err := enc.Encode(record{Kind: "sample", Sample: &l.Samples[i]}); err != nil {
			return fmt.Errorf("trace: write sample %d: %w", i, err)
		}
	}
	for i := range l.Reports {
		if err := enc.Encode(record{Kind: "report", Report: &l.Reports[i]}); err != nil {
			return fmt.Errorf("trace: write report %d: %w", i, err)
		}
	}
	for i := range l.Handovers {
		if err := enc.Encode(record{Kind: "ho", HO: &l.Handovers[i]}); err != nil {
			return fmt.Errorf("trace: write ho %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL log written by Write.
func Read(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	l := &Log{}
	line := 0
	for sc.Scan() {
		line++
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch rec.Kind {
		case "meta":
			if rec.Meta == nil {
				return nil, fmt.Errorf("trace: line %d: meta record missing payload", line)
			}
			l.Carrier = rec.Meta.Carrier
			l.Arch = rec.Meta.Arch
			l.RouteKind = rec.Meta.RouteKind
		case "sample":
			if rec.Sample == nil {
				return nil, fmt.Errorf("trace: line %d: sample record missing payload", line)
			}
			l.Samples = append(l.Samples, *rec.Sample)
		case "report":
			if rec.Report == nil {
				return nil, fmt.Errorf("trace: line %d: report record missing payload", line)
			}
			l.Reports = append(l.Reports, *rec.Report)
		case "ho":
			if rec.HO == nil {
				return nil, fmt.Errorf("trace: line %d: ho record missing payload", line)
			}
			l.Handovers = append(l.Handovers, *rec.HO)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	return l, nil
}

// Window extracts the samples within [from, to).
func (l *Log) Window(from, to time.Duration) []Sample {
	var out []Sample
	for _, s := range l.Samples {
		if s.Time >= from && s.Time < to {
			out = append(out, s)
		}
	}
	return out
}

// Merge concatenates several logs (of the same carrier/arch) into one, with
// times and odometers shifted so each log continues where the previous one
// ended. The inputs are not modified.
func Merge(logs ...*Log) *Log {
	out := &Log{}
	var tOff time.Duration
	var dOff float64
	for _, l := range logs {
		if out.Carrier == "" {
			out.Carrier = l.Carrier
			out.Arch = l.Arch
			out.RouteKind = l.RouteKind
		}
		for _, s := range l.Samples {
			s.Time += tOff
			s.OdometerM += dOff
			out.Samples = append(out.Samples, s)
		}
		for _, r := range l.Reports {
			r.Time += tOff
			out.Reports = append(out.Reports, r)
		}
		for _, h := range l.Handovers {
			h.Time += tOff
			h.DistanceM += dOff
			out.Handovers = append(out.Handovers, h)
		}
		tOff += l.Duration() + SamplePeriod
		dOff += l.DistanceKM() * 1000
	}
	return out
}
