package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
)

func sampleLog() *Log {
	l := &Log{Carrier: "OpX", Arch: cellular.ArchNSA, RouteKind: "freeway"}
	for i := 0; i < 100; i++ {
		l.Samples = append(l.Samples, Sample{
			Time:       time.Duration(i) * SamplePeriod,
			OdometerM:  float64(i) * 1.45,
			SpeedMPS:   29,
			Arch:       cellular.ArchNSA,
			ServingLTE: CellObs{PCI: 5, Tech: cellular.TechLTE, Band: cellular.BandMid, RSRP: -95, Valid: true},
			TputMbps:   120,
		})
	}
	l.Reports = append(l.Reports,
		cellular.MeasurementReport{Time: 1 * time.Second, Event: cellular.EventA2, Tech: cellular.TechLTE},
		cellular.MeasurementReport{Time: 2 * time.Second, Event: cellular.EventA3, Tech: cellular.TechLTE},
		cellular.MeasurementReport{Time: 4 * time.Second, Event: cellular.EventB1, Tech: cellular.TechNR},
	)
	l.Handovers = append(l.Handovers,
		cellular.HandoverEvent{Time: 2*time.Second + 100*time.Millisecond, Type: cellular.HOLTEH, T1: 30 * time.Millisecond, T2: 45 * time.Millisecond},
		cellular.HandoverEvent{Time: 4*time.Second + 500*time.Millisecond, Type: cellular.HOSCGA, T1: 60 * time.Millisecond, T2: 85 * time.Millisecond},
	)
	return l
}

func TestWriteReadRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Carrier != l.Carrier || got.Arch != l.Arch || got.RouteKind != l.RouteKind {
		t.Errorf("meta mismatch: %+v", got)
	}
	if len(got.Samples) != len(l.Samples) || len(got.Reports) != len(l.Reports) || len(got.Handovers) != len(l.Handovers) {
		t.Fatalf("record counts differ: %d/%d/%d", len(got.Samples), len(got.Reports), len(got.Handovers))
	}
	if got.Samples[50] != l.Samples[50] {
		t.Errorf("sample 50 mismatch:\n got %+v\nwant %+v", got.Samples[50], l.Samples[50])
	}
	if got.Handovers[1] != l.Handovers[1] {
		t.Errorf("handover mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(strings.NewReader(`{"kind":"unknown"}` + "\n")); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Read(strings.NewReader(`{"kind":"sample"}` + "\n")); err == nil {
		t.Error("missing payload accepted")
	}
}

func TestLogAccessors(t *testing.T) {
	l := sampleLog()
	if l.Duration() != 99*SamplePeriod {
		t.Errorf("Duration = %v", l.Duration())
	}
	if km := l.DistanceKM(); km <= 0 {
		t.Errorf("DistanceKM = %v", km)
	}
	if got := l.HandoversOfType(cellular.HOLTEH); len(got) != 1 {
		t.Errorf("HandoversOfType(LTEH) = %d", len(got))
	}
	if got := l.UniquePCIs(cellular.TechLTE); got != 1 {
		t.Errorf("UniquePCIs = %d", got)
	}
	if got := l.Window(time.Second, 2*time.Second); len(got) != 20 {
		t.Errorf("Window returned %d samples", len(got))
	}
	empty := &Log{}
	if empty.Duration() != 0 || empty.DistanceKM() != 0 {
		t.Error("empty log accessors")
	}
}

func TestSplitPhases(t *testing.T) {
	l := sampleLog()
	phases := SplitPhases(l.Reports, l.Handovers)
	if len(phases) != 2 {
		t.Fatalf("got %d phases", len(phases))
	}
	if phases[0].Pattern() != "A2,A3" {
		t.Errorf("phase 0 pattern %q", phases[0].Pattern())
	}
	if phases[0].HO.Type != cellular.HOLTEH {
		t.Errorf("phase 0 HO %v", phases[0].HO.Type)
	}
	if phases[1].Pattern() != "NR-B1" {
		t.Errorf("phase 1 pattern %q", phases[1].Pattern())
	}
}

func TestMerge(t *testing.T) {
	a, b := sampleLog(), sampleLog()
	m := Merge(a, b)
	if len(m.Samples) != 200 || len(m.Handovers) != 4 {
		t.Fatalf("merged counts: %d samples, %d HOs", len(m.Samples), len(m.Handovers))
	}
	// Times must be strictly increasing across the seam.
	for i := 1; i < len(m.Samples); i++ {
		if m.Samples[i].Time <= m.Samples[i-1].Time {
			t.Fatalf("time went backwards at %d", i)
		}
	}
	if m.Handovers[2].Time <= m.Handovers[1].Time {
		t.Error("handover times not shifted")
	}
	// The second log continues exactly where the first ended.
	if m.Samples[100].OdometerM < m.Samples[99].OdometerM {
		t.Error("odometer went backwards across the seam")
	}
	if m.Samples[199].OdometerM <= m.Samples[99].OdometerM {
		t.Error("odometer not shifted")
	}
}
