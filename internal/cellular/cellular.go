// Package cellular defines the domain model shared by the whole repository:
// radio access technologies, frequency bands, cells and towers, the 4G/5G
// handover taxonomy of the paper's Table 2, the 3GPP measurement events of
// Table 4, and the RRS (RSRP/RSRQ/SINR) signal-quality triple.
//
// The package is purely declarative — behaviour (propagation, HO execution)
// lives in internal/radio and internal/ran — so that every other layer can
// share these types without import cycles.
package cellular

import (
	"fmt"
	"time"
)

// Tech identifies the radio access technology of a cell or a measurement.
type Tech int

// Radio access technologies.
const (
	// TechLTE is 4G/LTE (eNB cells).
	TechLTE Tech = iota
	// TechNR is 5G New Radio (gNB cells).
	TechNR
)

// String returns the conventional name of the technology.
func (t Tech) String() string {
	switch t {
	case TechLTE:
		return "LTE"
	case TechNR:
		return "NR"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// Arch identifies the 5G deployment architecture a UE is attached through.
type Arch int

// Deployment architectures considered in the paper.
const (
	// ArchLTE is plain 4G/LTE service (no 5G leg).
	ArchLTE Arch = iota
	// ArchNSA is 5G non-standalone: 4G control plane (NSA-4C) with a 5G-NR
	// data-plane leg (EN-DC).
	ArchNSA
	// ArchSA is 5G standalone: 5G control and data plane.
	ArchSA
)

// String returns the architecture name used throughout the paper.
func (a Arch) String() string {
	switch a {
	case ArchLTE:
		return "LTE"
	case ArchNSA:
		return "NSA"
	case ArchSA:
		return "SA"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// ParseArch is the inverse of Arch.String, for command-line flags.
func ParseArch(s string) (Arch, error) {
	switch s {
	case "LTE":
		return ArchLTE, nil
	case "NSA":
		return ArchNSA, nil
	case "SA":
		return ArchSA, nil
	default:
		return 0, fmt.Errorf("cellular: unknown architecture %q (want LTE, NSA or SA)", s)
	}
}

// Band is a coarse radio frequency band class. The paper's findings are
// organised around these three 5G-NR classes plus the 4G low/mid bands.
type Band int

// Frequency band classes.
const (
	// BandLow is sub-1 GHz (e.g. n71 at 600-700 MHz).
	BandLow Band = iota
	// BandMid is 1-6 GHz (e.g. n41 at 2.5 GHz, LTE AWS/PCS).
	BandMid
	// BandMMWave is 24 GHz+ (e.g. n260/n261 at 28-39 GHz).
	BandMMWave
)

// String returns the band class name.
func (b Band) String() string {
	switch b {
	case BandLow:
		return "Low-Band"
	case BandMid:
		return "Mid-Band"
	case BandMMWave:
		return "mmWave"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// CenterFrequencyHz returns a representative carrier frequency for the band
// class, used by the propagation model.
func (b Band) CenterFrequencyHz() float64 {
	switch b {
	case BandLow:
		return 700e6
	case BandMid:
		return 2.5e9
	case BandMMWave:
		return 28e9
	default:
		return 2.0e9
	}
}

// HOType enumerates the mobility procedures of the paper's Table 2.
type HOType int

// Handover procedure types (Table 2). HONone is the absence of a handover
// and is used as the negative class by the prediction stack.
const (
	// HONone indicates no handover (prediction negative class).
	HONone HOType = iota
	// HOSCGA is SCG Addition: 4G→5G, adds NR cells to the LTE connection.
	HOSCGA
	// HOSCGR is SCG Release: 5G→4G, removes the NR leg.
	HOSCGR
	// HOSCGM is SCG Modification: 5G→5G within the same gNB.
	HOSCGM
	// HOSCGC is SCG Change: 5G→4G→5G, the inter-gNB procedure NSA uses in
	// place of a direct gNB→gNB handover.
	HOSCGC
	// HOMNBH is a master-eNB handover: the LTE anchor changes while the gNB
	// stays the same (5G→5G from the data plane's perspective).
	HOMNBH
	// HOMCGH is an SA master-cell-group handover: NR cell to NR cell.
	HOMCGH
	// HOLTEH is a plain LTE handover (4G→4G), in either LTE-only or NSA
	// service.
	HOLTEH
)

// String returns the paper's acronym for the handover type.
func (h HOType) String() string {
	switch h {
	case HONone:
		return "NONE"
	case HOSCGA:
		return "SCGA"
	case HOSCGR:
		return "SCGR"
	case HOSCGM:
		return "SCGM"
	case HOSCGC:
		return "SCGC"
	case HOMNBH:
		return "MNBH"
	case HOMCGH:
		return "MCGH"
	case HOLTEH:
		return "LTEH"
	default:
		return fmt.Sprintf("HOType(%d)", int(h))
	}
}

// Is5G reports whether the procedure is categorised as a 5G HO in Table 2
// (i.e. it is carried on NR signalling rather than the LTE anchor).
func (h HOType) Is5G() bool {
	switch h {
	case HOSCGA, HOSCGR, HOSCGM, HOSCGC, HOMCGH:
		return true
	default:
		return false
	}
}

// IsVertical reports whether the procedure changes the access technology of
// the data path (4G→5G or 5G→4G), following Fig. 16's horizontal/vertical
// split.
func (h HOType) IsVertical() bool { return h == HOSCGA || h == HOSCGR }

// AllHOTypes lists every real handover type (excluding HONone) in a stable
// order, for iteration in reports and tests.
func AllHOTypes() []HOType {
	return []HOType{HOSCGA, HOSCGR, HOSCGM, HOSCGC, HOMNBH, HOMCGH, HOLTEH}
}

// RRS bundles the three radio signal quality indicators the paper
// abbreviates as RRS.
type RRS struct {
	RSRP float64 // reference signal received power, dBm
	RSRQ float64 // reference signal received quality, dB
	SINR float64 // signal to interference & noise ratio, dB
}

// PCI is a physical cell identifier. The 3GPP ranges differ between LTE
// (0-503) and NR (0-1007); the topology generator respects them.
type PCI int

// Cell is a single antenna/sector managed by a tower.
type Cell struct {
	PCI     PCI     // physical cell ID
	Tech    Tech    // LTE or NR
	Band    Band    // frequency band class
	TowerID int     // physical tower hosting the cell
	X, Y    float64 // tower position, metres (duplicated for convenience)
	TxPower float64 // transmit power, dBm
	ARFCN   int     // absolute radio frequency channel number (synthetic)
	// Index is the cell's dense position within its deployment
	// (topology.Generate assigns 0..N-1 in generation order). Hot paths use
	// it to address per-cell state as slice slots instead of hashing
	// GlobalID strings.
	Index int

	// gid caches the GlobalID string (see CacheGlobalID).
	gid string
}

// GlobalID returns a string key unique across technologies, since LTE and NR
// PCI spaces overlap. The string is formatted once and cached when the cell
// was built by topology.Generate; hand-built cells fall back to formatting
// on demand.
func (c *Cell) GlobalID() string {
	if c.gid != "" {
		return c.gid
	}
	return formatGlobalID(c.Tech, c.PCI)
}

// CacheGlobalID precomputes the GlobalID string so later calls are
// allocation-free reads. It must be called before the cell is shared across
// goroutines (topology.Generate does this for every cell it creates).
func (c *Cell) CacheGlobalID() { c.gid = formatGlobalID(c.Tech, c.PCI) }

func formatGlobalID(t Tech, p PCI) string { return fmt.Sprintf("%s-%d", t, p) }

// EventType enumerates the LTE/NR measurement events of Table 4. NR events
// are distinguished from their LTE counterparts by the Tech field of the
// EventConfig / MeasurementReport, mirroring the paper's "NR-A3" notation.
type EventType int

// Measurement event types (Table 4).
const (
	// EventA1: serving cell becomes better than a threshold.
	EventA1 EventType = iota
	// EventA2: serving cell becomes worse than a threshold.
	EventA2
	// EventA3: neighbour becomes offset better than serving (A6 is the
	// secondary-cell variant and shares the trigger shape).
	EventA3
	// EventA4: neighbour becomes better than a threshold (B1 is the
	// inter-RAT variant and shares the trigger shape).
	EventA4
	// EventA5: serving worse than threshold 1 and neighbour better than
	// threshold 2.
	EventA5
	// EventB1: inter-RAT neighbour becomes better than a threshold.
	EventB1
	// EventPeriodic: periodic reporting of cell conditions.
	EventPeriodic
)

// String returns the 3GPP event name.
func (e EventType) String() string {
	switch e {
	case EventA1:
		return "A1"
	case EventA2:
		return "A2"
	case EventA3:
		return "A3"
	case EventA4:
		return "A4"
	case EventA5:
		return "A5"
	case EventB1:
		return "B1"
	case EventPeriodic:
		return "P"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// EventConfig is the measurement configuration a serving cell pushes to the
// UE for one event (step 1 of Fig. 1): thresholds, offset, hysteresis and
// time-to-trigger.
type EventConfig struct {
	Type       EventType
	Tech       Tech          // technology of the *measured* cells
	Threshold1 float64       // Φ (dBm RSRP) — A1/A2/A4/B1 threshold, A5 Φ1
	Threshold2 float64       // A5 Φ2 (neighbour threshold)
	Offset     float64       // Δ (dB) — A3 offset
	Hysteresis float64       // dB, applied to entering condition
	TTT        time.Duration // time-to-trigger
	// ReportInterval enables 3GPP periodic re-reporting while the entering
	// condition stays satisfied (0 = report once on entry).
	ReportInterval time.Duration
	// ReportAmount caps the number of reports per entry (0 = unlimited).
	ReportAmount int
}

// Entering reports whether the event's entering condition holds for the
// given serving and neighbour RSRP measurements (Table 4). For A1/A2 the
// neighbour value is ignored; for A4/B1 the serving value is ignored.
func (c EventConfig) Entering(servingRSRP, neighborRSRP float64) bool {
	h := c.Hysteresis
	switch c.Type {
	case EventA1:
		return servingRSRP-h > c.Threshold1
	case EventA2:
		return servingRSRP+h < c.Threshold1
	case EventA3:
		return neighborRSRP-h > servingRSRP+c.Offset
	case EventA4, EventB1:
		return neighborRSRP-h > c.Threshold1
	case EventA5:
		return servingRSRP+h < c.Threshold1 && neighborRSRP-h > c.Threshold2
	case EventPeriodic:
		return true
	default:
		return false
	}
}

// MeasurementReport is the UE→network report raised when an event's trigger
// condition has held for TTT (step 3 of Fig. 1).
type MeasurementReport struct {
	Time         time.Duration // simulation time of the report
	Event        EventType
	Tech         Tech // technology of the measured cells
	ServingPCI   PCI
	NeighborPCI  PCI // best neighbour (0 if n/a)
	ServingRSRP  float64
	NeighborRSRP float64
	Serving      RRS
}

// Key returns the compact event label used by the decision learner, e.g.
// "A2", "NR-B1". It matches the paper's pattern notation (§7.1).
func (m MeasurementReport) Key() string {
	if m.Tech == TechNR {
		return "NR-" + m.Event.String()
	}
	return m.Event.String()
}

// HandoverEvent records one executed handover procedure with its
// decomposition into preparation (T1) and execution (T2) stages (§5.2).
type HandoverEvent struct {
	Time       time.Duration // time the HO command was issued (start of T2)
	Type       HOType
	Arch       Arch // architecture at HO time
	Band       Band // band of the (5G) data plane involved, or LTE band
	SourcePCI  PCI
	TargetPCI  PCI
	SourceCell string // GlobalID of source cell
	TargetCell string // GlobalID of target cell
	T1         time.Duration
	T2         time.Duration
	CoLocated  bool    // eNB/gNB on same tower (NSA only)
	DistanceM  float64 // odometer reading at HO time
	Signaling  SignalingCount
}

// Duration returns the total handover duration T1+T2.
func (h HandoverEvent) Duration() time.Duration { return h.T1 + h.T2 }

// SignalingCount tallies HO-related signalling messages per layer (§5.1's
// overhead comparison): RRC (measurement reports, reconfiguration,
// reconfiguration-complete), MAC (RACH), and PHY (SSB/beam measurements).
type SignalingCount struct {
	RRC int
	MAC int
	PHY int
}

// Total returns the total message count across layers.
func (s SignalingCount) Total() int { return s.RRC + s.MAC + s.PHY }

// Add returns the element-wise sum of two counts.
func (s SignalingCount) Add(o SignalingCount) SignalingCount {
	return SignalingCount{RRC: s.RRC + o.RRC, MAC: s.MAC + o.MAC, PHY: s.PHY + o.PHY}
}
