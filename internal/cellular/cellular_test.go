package cellular

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHOTypeStrings(t *testing.T) {
	want := map[HOType]string{
		HONone: "NONE", HOSCGA: "SCGA", HOSCGR: "SCGR", HOSCGM: "SCGM",
		HOSCGC: "SCGC", HOMNBH: "MNBH", HOMCGH: "MCGH", HOLTEH: "LTEH",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), s)
		}
	}
}

func TestHOTaxonomy(t *testing.T) {
	// Table 2: the 4G/5G categorisation of each procedure.
	fiveG := map[HOType]bool{
		HOSCGA: true, HOSCGR: true, HOSCGM: true, HOSCGC: true, HOMCGH: true,
		HOMNBH: false, HOLTEH: false, HONone: false,
	}
	for ty, want := range fiveG {
		if ty.Is5G() != want {
			t.Errorf("%v.Is5G() = %v, want %v", ty, ty.Is5G(), want)
		}
	}
	if !HOSCGA.IsVertical() || !HOSCGR.IsVertical() {
		t.Error("SCG addition/release are vertical HOs")
	}
	for _, ty := range []HOType{HOSCGM, HOSCGC, HOMNBH, HOMCGH, HOLTEH} {
		if ty.IsVertical() {
			t.Errorf("%v should be horizontal", ty)
		}
	}
	if len(AllHOTypes()) != 7 {
		t.Errorf("AllHOTypes has %d entries", len(AllHOTypes()))
	}
}

func TestBandFrequencies(t *testing.T) {
	if BandLow.CenterFrequencyHz() >= BandMid.CenterFrequencyHz() {
		t.Error("low band must be below mid band")
	}
	if BandMid.CenterFrequencyHz() >= BandMMWave.CenterFrequencyHz() {
		t.Error("mid band must be below mmWave")
	}
}

// TestEventTriggers checks every Table 4 entering condition at
// representative operating points.
func TestEventTriggers(t *testing.T) {
	cases := []struct {
		name     string
		cfg      EventConfig
		serv, nb float64
		want     bool
	}{
		{"A1 above", EventConfig{Type: EventA1, Threshold1: -90, Hysteresis: 1}, -80, 0, true},
		{"A1 below", EventConfig{Type: EventA1, Threshold1: -90, Hysteresis: 1}, -95, 0, false},
		{"A1 inside hysteresis", EventConfig{Type: EventA1, Threshold1: -90, Hysteresis: 2}, -89, 0, false},
		{"A2 below", EventConfig{Type: EventA2, Threshold1: -100, Hysteresis: 1}, -105, 0, true},
		{"A2 above", EventConfig{Type: EventA2, Threshold1: -100, Hysteresis: 1}, -95, 0, false},
		{"A3 offset better", EventConfig{Type: EventA3, Offset: 3, Hysteresis: 1}, -100, -95, true},
		{"A3 not better enough", EventConfig{Type: EventA3, Offset: 3, Hysteresis: 1}, -100, -97.5, false},
		{"A4 neighbour above", EventConfig{Type: EventA4, Threshold1: -100, Hysteresis: 1}, -120, -95, true},
		{"B1 inter-RAT", EventConfig{Type: EventB1, Threshold1: -104, Hysteresis: 1}, -90, -100, true},
		{"B1 weak candidate", EventConfig{Type: EventB1, Threshold1: -104, Hysteresis: 1}, -90, -104, false},
		{"A5 both sides", EventConfig{Type: EventA5, Threshold1: -100, Threshold2: -98, Hysteresis: 1}, -105, -95, true},
		{"A5 serving ok", EventConfig{Type: EventA5, Threshold1: -100, Threshold2: -98, Hysteresis: 1}, -95, -90, false},
		{"A5 neighbour weak", EventConfig{Type: EventA5, Threshold1: -100, Threshold2: -98, Hysteresis: 1}, -105, -99, false},
		{"Periodic", EventConfig{Type: EventPeriodic}, -150, -150, true},
	}
	for _, c := range cases {
		if got := c.cfg.Entering(c.serv, c.nb); got != c.want {
			t.Errorf("%s: Entering(%v, %v) = %v, want %v", c.name, c.serv, c.nb, got, c.want)
		}
	}
}

// TestHysteresisMonotone is a property test: increasing hysteresis can only
// make the entering condition harder to satisfy.
func TestHysteresisMonotone(t *testing.T) {
	f := func(serv, nb, thr, h1, h2 float64) bool {
		h1, h2 = abs(h1), abs(h2)
		if h1 > h2 {
			h1, h2 = h2, h1
		}
		for _, ty := range []EventType{EventA1, EventA2, EventA3, EventA4, EventA5, EventB1} {
			strict := EventConfig{Type: ty, Threshold1: thr, Threshold2: thr, Offset: 2, Hysteresis: h2}
			loose := EventConfig{Type: ty, Threshold1: thr, Threshold2: thr, Offset: 2, Hysteresis: h1}
			if strict.Entering(serv, nb) && !loose.Entering(serv, nb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestMeasurementReportKey(t *testing.T) {
	mr := MeasurementReport{Event: EventA3, Tech: TechLTE}
	if mr.Key() != "A3" {
		t.Errorf("LTE A3 key = %q", mr.Key())
	}
	mr.Tech = TechNR
	if mr.Key() != "NR-A3" {
		t.Errorf("NR A3 key = %q", mr.Key())
	}
	mr.Event = EventB1
	if mr.Key() != "NR-B1" {
		t.Errorf("NR B1 key = %q", mr.Key())
	}
}

func TestHandoverEventDuration(t *testing.T) {
	h := HandoverEvent{T1: 40 * time.Millisecond, T2: 90 * time.Millisecond}
	if h.Duration() != 130*time.Millisecond {
		t.Errorf("Duration = %v", h.Duration())
	}
}

func TestSignalingCount(t *testing.T) {
	a := SignalingCount{RRC: 3, MAC: 2, PHY: 10}
	b := SignalingCount{RRC: 1, MAC: 1, PHY: 5}
	sum := a.Add(b)
	if sum.Total() != 22 {
		t.Errorf("Total = %d", sum.Total())
	}
	if sum.RRC != 4 || sum.MAC != 3 || sum.PHY != 15 {
		t.Errorf("Add = %+v", sum)
	}
}

func TestCellGlobalID(t *testing.T) {
	lte := Cell{PCI: 7, Tech: TechLTE}
	nr := Cell{PCI: 7, Tech: TechNR}
	if lte.GlobalID() == nr.GlobalID() {
		t.Error("LTE and NR cells with the same PCI must have distinct global IDs")
	}
}

func TestArchAndTechStrings(t *testing.T) {
	if ArchLTE.String() != "LTE" || ArchNSA.String() != "NSA" || ArchSA.String() != "SA" {
		t.Error("arch names")
	}
	if TechLTE.String() != "LTE" || TechNR.String() != "NR" {
		t.Error("tech names")
	}
	if BandLow.String() != "Low-Band" || BandMMWave.String() != "mmWave" {
		t.Error("band names")
	}
}
