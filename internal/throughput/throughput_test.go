package throughput

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cellular"
)

func TestCapacityOrdering(t *testing.T) {
	// At a healthy SINR, mmWave > mid > low for NR, and NR low > LTE low.
	const sinr = 20.0
	mmw := CapacityMbps(cellular.TechNR, cellular.BandMMWave, sinr)
	mid := CapacityMbps(cellular.TechNR, cellular.BandMid, sinr)
	low := CapacityMbps(cellular.TechNR, cellular.BandLow, sinr)
	lte := CapacityMbps(cellular.TechLTE, cellular.BandMid, sinr)
	if !(mmw > mid && mid > low) {
		t.Errorf("capacity ordering: mmw=%v mid=%v low=%v", mmw, mid, low)
	}
	if low <= lte*0.5 {
		t.Errorf("NR low (%v) should be comparable to LTE (%v)", low, lte)
	}
	// Headline magnitudes (§3's deployments): mmWave in the Gbps range.
	if mmw < 1500 || mmw > 3500 {
		t.Errorf("mmWave peak %v Mbps, want 1.5-3.5 Gbps", mmw)
	}
}

// TestCapacityMonotoneInSINR is a property test.
func TestCapacityMonotoneInSINR(t *testing.T) {
	f := func(a, b float64) bool {
		sa, sb := clampSINR(a), clampSINR(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		return CapacityMbps(cellular.TechNR, cellular.BandMid, sa) <= CapacityMbps(cellular.TechNR, cellular.BandMid, sb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampSINR(v float64) float64 {
	if v != v || v > 60 {
		return 60
	}
	if v < -30 {
		return -30
	}
	return v
}

func TestCapacityFloor(t *testing.T) {
	if CapacityMbps(cellular.TechNR, cellular.BandLow, -15) != 0 {
		t.Error("deep outage must yield zero capacity")
	}
}

func TestInterruptionSemantics(t *testing.T) {
	// §5.2 footnote: 4G HOs interrupt both planes; 5G HOs only the NR leg.
	for _, ty := range []cellular.HOType{cellular.HOLTEH, cellular.HOMNBH} {
		i := InterruptionFor(ty)
		if !i.LTE || !i.NR {
			t.Errorf("%v must interrupt both planes", ty)
		}
	}
	for _, ty := range []cellular.HOType{cellular.HOSCGA, cellular.HOSCGR, cellular.HOSCGM, cellular.HOSCGC} {
		i := InterruptionFor(ty)
		if i.LTE || !i.NR {
			t.Errorf("%v must interrupt only the NR leg", ty)
		}
	}
	if i := InterruptionFor(cellular.HONone); i.LTE || i.NR {
		t.Error("no handover, no interruption")
	}
}

func TestEffectiveBearerModes(t *testing.T) {
	lte, nr := 50.0, 200.0
	// Dual mode sums both legs (with the split-bearer forwarding penalty).
	dual := Effective(ModeSplit, lte, nr, Interruption{}, true)
	if dual <= nr || dual > lte+nr {
		t.Errorf("dual mode throughput %v", dual)
	}
	// 5G-only mode carries only the NR leg.
	if got := Effective(ModeSCG, lte, nr, Interruption{}, true); got != nr {
		t.Errorf("SCG mode = %v", got)
	}
	// During a 5G-NR interruption, dual mode keeps the LTE leg alive.
	if got := Effective(ModeSplit, lte, nr, Interruption{NR: true}, true); got != lte {
		t.Errorf("dual during NR interruption = %v, want %v", got, lte)
	}
	if got := Effective(ModeSCG, lte, nr, Interruption{NR: true}, true); got != 0 {
		t.Errorf("SCG during NR interruption = %v, want 0", got)
	}
	// Without an NR leg, data rides LTE.
	if got := Effective(ModeSCG, lte, 0, Interruption{}, false); got != lte {
		t.Errorf("LTE fallback = %v", got)
	}
	if got := Effective(ModeSCG, lte, 0, Interruption{LTE: true}, false); got != 0 {
		t.Errorf("LTE fallback during anchor HO = %v", got)
	}
}

func TestRTTModelShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewRTTModel(rng)
	median := func(mode BearerMode, ho cellular.HOType) float64 {
		var vals []float64
		for i := 0; i < 4000; i++ {
			vals = append(vals, m.Sample(mode, ho))
		}
		// Median without pulling in the stats package (import cycle-free).
		lo, hi, mid := 0.0, 1000.0, 0.0
		for iter := 0; iter < 50; iter++ {
			mid = (lo + hi) / 2
			n := 0
			for _, v := range vals {
				if v <= mid {
					n++
				}
			}
			if n*2 < len(vals) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return mid
	}
	scgBase := median(ModeSCG, cellular.HONone)
	dualBase := median(ModeSplit, cellular.HONone)
	if scgBase >= dualBase {
		t.Errorf("5G-only base RTT (%v) must be below dual (%v), §4.2", scgBase, dualBase)
	}
	// Dual absorbs 5G HOs (1-4%), 5G-only inflates 37-58%.
	dualHO := median(ModeSplit, cellular.HOSCGM)
	if rel := dualHO/dualBase - 1; rel < -0.02 || rel > 0.10 {
		t.Errorf("dual-mode HO inflation %.1f%%, want ≈1-4%%", rel*100)
	}
	scgHO := median(ModeSCG, cellular.HOSCGM)
	if rel := scgHO/scgBase - 1; rel < 0.25 || rel > 0.80 {
		t.Errorf("5G-only HO inflation %.1f%%, want ≈37-58%%", rel*100)
	}
}

func TestInterruptionTime(t *testing.T) {
	t2 := 100 * time.Millisecond
	if got := InterruptionTime(cellular.HOSCGM, t2, ModeSplit); got != 0 {
		t.Errorf("dual mode absorbs NR interruptions: %v", got)
	}
	if got := InterruptionTime(cellular.HOSCGM, t2, ModeSCG); got != t2 {
		t.Errorf("SCG interruption = %v", got)
	}
	if got := InterruptionTime(cellular.HOMNBH, t2, ModeSplit); got != t2 {
		t.Errorf("anchor HO interrupts dual mode too: %v", got)
	}
	if got := InterruptionTime(cellular.HONone, t2, ModeSCG); got != 0 {
		t.Errorf("no HO, no interruption: %v", got)
	}
}
