// Package throughput models the data plane: SINR-driven link capacity per
// technology and band, the handover interruption semantics of NSA 5G
// (§4.2, §5.2), bearer modes (dual vs 5G-only), and an RTT model for the
// TCP experiments of Fig. 7.
package throughput

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/cellular"
)

// Channel bandwidth (MHz) per technology/band, representative of the
// carriers' deployments: mmWave aggregates several 100 MHz carriers, NR mid
// uses 60-100 MHz, NR low 10-20 MHz, LTE 15-20 MHz.
func channelMHz(tech cellular.Tech, band cellular.Band) float64 {
	if tech == cellular.TechLTE {
		switch band {
		case cellular.BandLow:
			return 10
		default:
			return 20
		}
	}
	switch band {
	case cellular.BandLow:
		return 20
	case cellular.BandMid:
		return 90
	case cellular.BandMMWave:
		return 400
	default:
		return 20
	}
}

// maxSpectralEff caps the Shannon curve at a practical MIMO-aggregate
// spectral efficiency (bps/Hz).
func maxSpectralEff(tech cellular.Tech, band cellular.Band) float64 {
	if tech == cellular.TechLTE {
		return 5.5
	}
	if band == cellular.BandMMWave {
		return 7.0
	}
	return 7.8
}

// CapacityMbps maps SINR (dB) to achievable downlink throughput (Mbps) for
// one cell, using a capped Shannon bound with a 75% implementation
// efficiency. At the paper's operating points this yields ≈2-3 Gbps mmWave,
// ≈900 Mbps mid-band, ≈250 Mbps low-band NR, and ≈100-150 Mbps LTE peaks.
func CapacityMbps(tech cellular.Tech, band cellular.Band, sinrDB float64) float64 {
	if sinrDB < -10 {
		return 0
	}
	lin := math.Pow(10, sinrDB/10)
	eff := math.Log2(1 + lin)
	if m := maxSpectralEff(tech, band); eff > m {
		eff = m
	}
	const implEff = 0.75
	return channelMHz(tech, band) * eff * implEff
}

// BearerMode selects how NSA splits user traffic between the LTE and NR
// radio legs (§4.2).
type BearerMode int

// NSA bearer modes.
const (
	// ModeSCG sends all user data on the 5G leg ("5G-only mode", SCG
	// bearer). The LTE leg carries control only.
	ModeSCG BearerMode = iota
	// ModeSplit splits traffic across both legs ("dual mode", MCG split
	// bearer). The 4G leg keeps flowing during 5G-NR handovers.
	ModeSplit
	// ModeSplitDirect is the paper's §4.2 proposal: a split bearer whose 5G
	// data takes the direct core→gNB path instead of detouring through the
	// eNB — 5G-only-mode latency and throughput with dual-mode resilience
	// to 5G-NR interruptions. Implemented here as the future-work
	// extension.
	ModeSplitDirect
)

// String names the bearer mode as the paper does.
func (m BearerMode) String() string {
	switch m {
	case ModeSplit:
		return "dual"
	case ModeSplitDirect:
		return "dual-direct"
	default:
		return "5G-only"
	}
}

// Interruption describes which radio legs are halted during a handover's
// execution stage (§5.2 footnote: "5G HOs do not affect the 4G/LTE data
// plane, however, 4G HOs interrupt data activity on 5G radio as well").
type Interruption struct {
	LTE bool
	NR  bool
}

// InterruptionFor returns the data-plane interruption of a handover type.
func InterruptionFor(t cellular.HOType) Interruption {
	switch t {
	case cellular.HOLTEH, cellular.HOMNBH:
		return Interruption{LTE: true, NR: true}
	case cellular.HOSCGA, cellular.HOSCGR, cellular.HOSCGM, cellular.HOSCGC:
		return Interruption{LTE: false, NR: true}
	case cellular.HOMCGH:
		return Interruption{NR: true}
	default:
		return Interruption{}
	}
}

// Effective returns the throughput delivered to the application given the
// per-leg capacities, the bearer mode, and any active interruption.
// In dual mode the split bearer keeps the LTE leg alive through 5G
// interruptions; in 5G-only mode an NR interruption stalls the flow.
func Effective(mode BearerMode, lteMbps, nrMbps float64, intr Interruption, nrAttached bool) float64 {
	switch {
	case !nrAttached:
		if intr.LTE {
			return 0
		}
		return lteMbps
	case mode == ModeSplit, mode == ModeSplitDirect:
		total := 0.0
		if !intr.LTE {
			total += lteMbps
		}
		if !intr.NR {
			nr := nrMbps
			if mode == ModeSplit {
				// Split-bearer forwarding via the eNB shaves a little off
				// the NR leg (§4.2: dual mode is slower without HOs); the
				// direct variant avoids the detour.
				nr *= 0.92
			}
			total += nr
		}
		return total
	default: // ModeSCG
		if intr.NR {
			return 0
		}
		return nrMbps
	}
}

// RTTModel produces round-trip-time samples for the Fig. 7 TCP experiment.
// Base RTTs reflect the paper's observation that 5G-only mode has lower RTT
// without handovers (data goes core→gNB directly) while dual mode routes 5G
// data via the eNB.
type RTTModel struct {
	rng *rand.Rand
}

// NewRTTModel creates an RTT model using rng.
func NewRTTModel(rng *rand.Rand) *RTTModel { return &RTTModel{rng: rng} }

// Base RTT medians (ms).
const (
	rttSCGBase   = 30.0
	rttSplitBase = 42.0
)

// Sample returns one RTT observation (ms) under the given bearer mode and
// handover condition. hoType is HONone outside handover windows.
func (m *RTTModel) Sample(mode BearerMode, hoType cellular.HOType) float64 {
	base := rttSCGBase
	if mode == ModeSplit {
		// Dual mode routes 5G data core→eNB→gNB.
		base = rttSplitBase
	}
	// ModeSplitDirect keeps the direct core→gNB path: 5G-only base RTT.
	// Log-normal-ish jitter around the median.
	v := base * math.Exp(m.rng.NormFloat64()*0.12)
	if hoType == cellular.HONone {
		return v
	}
	intr := InterruptionFor(hoType)
	split := mode == ModeSplit || mode == ModeSplitDirect
	switch {
	case split && !intr.LTE:
		// Dual modes absorb 5G-NR interruptions: only a 1-4% median shift.
		v *= 1.02 + 0.02*m.rng.Float64()
	case split && intr.LTE:
		// Anchor HOs stall both legs.
		v *= 1.5 + 0.6*m.rng.Float64()
	default:
		// 5G-only mode: HO inflates RTT by 37-58% in the median, with a
		// heavy tail from retransmissions queued behind the interruption.
		v *= 1.30 + 0.15*m.rng.Float64() + math.Abs(m.rng.NormFloat64())*0.12
	}
	return v
}

// InterruptionTime returns the expected data-plane outage for a HO given its
// execution stage duration: the full T2 for the halted leg.
func InterruptionTime(t cellular.HOType, t2 time.Duration, mode BearerMode) time.Duration {
	intr := InterruptionFor(t)
	if (mode == ModeSplit || mode == ModeSplitDirect) && !intr.LTE {
		return 0
	}
	if intr.NR || intr.LTE {
		return t2
	}
	return 0
}
