package abr

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/emu"
)

func TestHarmonicMean(t *testing.T) {
	h := NewHarmonicMean(3)
	if h.Predict() != 0 {
		t.Error("empty predictor must return 0")
	}
	h.Observe(10)
	h.Observe(40)
	// Harmonic mean of {10, 40} = 16.
	if got := h.Predict(); math.Abs(got-16) > 1e-9 {
		t.Errorf("Predict = %v", got)
	}
	// Window slides.
	h.Observe(40)
	h.Observe(40)
	h.Observe(40)
	if got := h.Predict(); math.Abs(got-40) > 1e-9 {
		t.Errorf("after sliding: %v", got)
	}
	// Non-positive observations are floored, not fatal.
	h.Observe(0)
	if h.Predict() <= 0 {
		t.Error("prediction must stay positive")
	}
}

// TestHarmonicMeanBounds is a property test: the prediction always lies
// within the min/max of the retained window (harmonic mean is a mean).
func TestHarmonicMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHarmonicMean(5)
		var win []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v < 0.01 || v > 1e6 || math.IsInf(v, 0) || math.IsNaN(v) {
				v = math.Mod(math.Abs(v), 1e6) + 0.01 // keep inputs in a sane Mbps domain
			}
			h.Observe(v)
			win = append(win, v)
			if len(win) > 5 {
				win = win[1:]
			}
			lo, hi := win[0], win[0]
			for _, w := range win {
				lo = math.Min(lo, w)
				hi = math.Max(hi, w)
			}
			p := h.Predict()
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHOAwarePredictor(t *testing.T) {
	base := NewHarmonicMean(5)
	base.Observe(100)
	score := 1.0
	p := &HOAware{Base: base, Score: func() float64 { return score }}
	if got := p.Predict(); math.Abs(got-100) > 1e-9 {
		t.Errorf("score 1 must be identity: %v", got)
	}
	score = 1.0 / 7
	if got := p.Predict(); math.Abs(got-100.0/7) > 1e-9 {
		t.Errorf("scaled prediction: %v", got)
	}
	score = 0 // degenerate scores are floored
	if p.Predict() <= 0 {
		t.Error("zero score must not zero the prediction")
	}
}

func TestErrorTracker(t *testing.T) {
	e := NewErrorTracker(3)
	if e.MaxError() != 0 {
		t.Error("empty tracker")
	}
	e.Record(150, 100) // 50% error
	e.Record(100, 100) // 0
	if got := e.MaxError(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MaxError = %v", got)
	}
	e.Record(0, 0) // ignored (actual 0)
	if got := e.MaxError(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MaxError after ignore = %v", got)
	}
}

func levels() []float64 { return []float64{4, 10, 25, 60, 140, 320} }

func TestRBChoosesUnderPrediction(t *testing.T) {
	alg := RB{}
	for _, c := range []struct {
		pred float64
		want int
	}{{3, 0}, {12, 1}, {26, 2}, {1000, 5}} {
		got := alg.Choose(State{PredictedMbps: c.pred}, levels(), 2*time.Second)
		if got != c.want {
			t.Errorf("RB(%v) = %d, want %d", c.pred, got, c.want)
		}
	}
}

func TestFESTIVEGradualSwitching(t *testing.T) {
	alg := FESTIVE{}
	st := State{PredictedMbps: 1000, LastLevel: 1}
	if got := alg.Choose(st, levels(), 2*time.Second); got != 2 {
		t.Errorf("FESTIVE must climb one level at a time, got %d", got)
	}
	st = State{PredictedMbps: 1, LastLevel: 3}
	if got := alg.Choose(st, levels(), 2*time.Second); got != 2 {
		t.Errorf("FESTIVE must descend one level at a time, got %d", got)
	}
	st = State{PredictedMbps: 1000, LastLevel: -1}
	if got := alg.Choose(st, levels(), 2*time.Second); got != 5 {
		t.Errorf("first chunk jumps to target, got %d", got)
	}
}

func TestMPCAvoidsRebuffering(t *testing.T) {
	alg := MPC{}
	// Tiny buffer and tight throughput: MPC must not pick a level whose
	// download outruns the buffer.
	st := State{BufferS: 1, LastLevel: 2, PredictedMbps: 30, ChunksLeft: 10}
	got := alg.Choose(st, levels(), 2*time.Second)
	// Level "got" downloads in levels[got]*2/30 s; it must fit the 1 s
	// buffer with the QoE weights given.
	dl := levels()[got] * 2 / 30
	if dl > 2.0 {
		t.Errorf("MPC chose level %d with %vs download on a 1s buffer", got, dl)
	}
	// With a huge buffer and bandwidth, MPC goes high.
	st = State{BufferS: 25, LastLevel: 4, PredictedMbps: 1000, ChunksLeft: 10}
	if got := alg.Choose(st, levels(), 2*time.Second); got < 4 {
		t.Errorf("rich conditions chose level %d", got)
	}
}

func TestMPCRobustDiscounts(t *testing.T) {
	plain := MPC{}
	robust := MPC{Robust: true}
	st := State{BufferS: 4, LastLevel: 3, PredictedMbps: 100, MaxError: 1.0, ChunksLeft: 10}
	p := plain.Choose(st, levels(), 2*time.Second)
	r := robust.Choose(st, levels(), 2*time.Second)
	if r > p {
		t.Errorf("robustMPC (%d) must not exceed fastMPC (%d) under high error", r, p)
	}
	if plain.Name() != "fastMPC" || robust.Name() != "robustMPC" {
		t.Error("names")
	}
}

func TestPlayVoDBasics(t *testing.T) {
	tr, err := emu.NewBandwidthTrace([]float64{80}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	video := Panoramic16K()
	res, err := PlayVoD(video, emu.NewLink(tr, 40*time.Millisecond), MPC{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgBitrateMbps <= 0 || res.AvgBitrateMbps > 320 {
		t.Errorf("avg bitrate %v", res.AvgBitrateMbps)
	}
	if res.NormalizedBitrate <= 0 || res.NormalizedBitrate > 1 {
		t.Errorf("normalized bitrate %v", res.NormalizedBitrate)
	}
	if res.StallPct < 0 || res.StallPct > 100 {
		t.Errorf("stall %v%%", res.StallPct)
	}
	// 80 Mbps steady: the player should mostly sit at level 60 Mbps with
	// minimal stall.
	if res.StallS > 5 {
		t.Errorf("steady link stalled %vs", res.StallS)
	}
	if _, err := PlayVoD(Video{}, emu.NewLink(tr, 0), MPC{}, nil); err == nil {
		t.Error("invalid video accepted")
	}
}

func TestPlayVoDScoreDownshiftAvoidsStall(t *testing.T) {
	// Capacity collapses at t=60 s; an oracle that downshifts ahead of the
	// drop should not stall more than the oblivious player.
	mbps := make([]float64, 1200)
	for i := range mbps {
		if i < 600 {
			mbps[i] = 150
		} else {
			mbps[i] = 12
		}
	}
	tr, _ := emu.NewBandwidthTrace(mbps, 100*time.Millisecond)
	video := Panoramic16K()

	run := func(scoreAt ScoreAtFunc) PlayResult {
		res, err := PlayVoD(video, emu.NewLink(tr, 40*time.Millisecond), MPC{}, scoreAt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	oblivious := run(nil)
	oracle := run(func(now time.Duration) ChunkContext {
		if now > 55*time.Second && now < 70*time.Second {
			return ChunkContext{Score: 1.0 / 7, HasHO: true}
		}
		return ChunkContext{Score: 1}
	})
	if oracle.StallS > oblivious.StallS+0.5 {
		t.Errorf("oracle stalled more: %v vs %v", oracle.StallS, oblivious.StallS)
	}
}

func TestPlayVolumetricBasics(t *testing.T) {
	tr, _ := emu.NewBandwidthTrace([]float64{120}, 100*time.Millisecond)
	video := ViVoVideo()
	res, err := PlayVolumetric(video, emu.NewLink(tr, 20*time.Millisecond), ViVoRate{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLevelBitrate < video.Levels[0] || res.AvgLevelBitrate > video.Levels[len(video.Levels)-1] {
		t.Errorf("avg level %v outside ladder", res.AvgLevelBitrate)
	}
	// 120 Mbps link: ViVo targets 0.8×96 — should reach level 77 with few
	// stalls.
	if res.StallPct > 10 {
		t.Errorf("steady link stalled %v%%", res.StallPct)
	}
	if _, err := PlayVolumetric(VolumetricVideo{}, emu.NewLink(tr, 0), ViVoRate{}, nil); err == nil {
		t.Error("invalid video accepted")
	}
}

func TestQualityOfMonotone(t *testing.T) {
	ls := levels()
	for i := 1; i < len(ls); i++ {
		if qualityOf(ls, i) <= qualityOf(ls, i-1) {
			t.Fatal("quality must grow with level")
		}
	}
	if qualityOf(ls, 0) != 0 {
		t.Error("base level quality must be 0")
	}
}
