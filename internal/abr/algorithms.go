package abr

import (
	"math"
	"time"
)

// State is the player state an algorithm sees when choosing the next
// chunk's quality level.
type State struct {
	// BufferS is the playout buffer level in seconds.
	BufferS float64
	// LastLevel is the previously chosen level index (-1 for the first
	// chunk).
	LastLevel int
	// PredictedMbps is the (possibly ho_score-corrected) throughput
	// prediction for upcoming chunks.
	PredictedMbps float64
	// MaxError is the recent relative prediction error (robustMPC).
	MaxError float64
	// ChunksLeft is the number of chunks remaining including this one.
	ChunksLeft int
}

// Algorithm selects the quality level for the next chunk.
type Algorithm interface {
	// Name identifies the algorithm in result tables.
	Name() string
	// Choose returns the level index for the next chunk given the level
	// bitrates (Mbps) and chunk duration.
	Choose(state State, levels []float64, chunkDur time.Duration) int
}

// RB is the rate-based algorithm: highest level whose bitrate fits the
// predicted throughput.
type RB struct{}

// Name implements Algorithm.
func (RB) Name() string { return "RB" }

// Choose implements Algorithm.
func (RB) Choose(state State, levels []float64, _ time.Duration) int {
	best := 0
	for i, b := range levels {
		if b <= state.PredictedMbps {
			best = i
		}
	}
	return best
}

// FESTIVE approximates Jiang et al.'s algorithm: a rate-based target with
// gradual (±1 level) switching to trade efficiency for stability.
type FESTIVE struct{}

// Name implements Algorithm.
func (FESTIVE) Name() string { return "FESTIVE" }

// Choose implements Algorithm.
func (FESTIVE) Choose(state State, levels []float64, _ time.Duration) int {
	target := 0
	for i, b := range levels {
		// FESTIVE's conservative efficiency target.
		if b <= 0.85*state.PredictedMbps {
			target = i
		}
	}
	if state.LastLevel < 0 {
		return target
	}
	switch {
	case target > state.LastLevel:
		return state.LastLevel + 1
	case target < state.LastLevel:
		return state.LastLevel - 1
	default:
		return target
	}
}

// MPC is the model-predictive-control family (fastMPC / robustMPC from Yin
// et al.): an exhaustive search over the next Horizon chunks maximising
// QoE = Σ quality − λ·rebuffer − μ·|quality switches|, assuming the
// predicted throughput holds. Robust mode discounts the prediction by the
// recent maximum error.
type MPC struct {
	// Robust enables robustMPC's error discounting.
	Robust bool
	// Horizon is the lookahead depth in chunks (default 5).
	Horizon int
	// LambdaRebuf weights rebuffering (default 8).
	LambdaRebuf float64
	// MuSwitch weights level switches (default 1).
	MuSwitch float64
}

// Name implements Algorithm.
func (m MPC) Name() string {
	if m.Robust {
		return "robustMPC"
	}
	return "fastMPC"
}

func (m MPC) params() MPC {
	if m.Horizon == 0 {
		m.Horizon = 5
	}
	if m.LambdaRebuf == 0 {
		m.LambdaRebuf = 8
	}
	if m.MuSwitch == 0 {
		m.MuSwitch = 1
	}
	return m
}

// Choose implements Algorithm via depth-first enumeration of level plans.
func (m MPC) Choose(state State, levels []float64, chunkDur time.Duration) int {
	p := m.params()
	horizon := p.Horizon
	if state.ChunksLeft > 0 && state.ChunksLeft < horizon {
		horizon = state.ChunksLeft
	}
	if horizon < 1 {
		horizon = 1
	}
	tput := state.PredictedMbps
	if p.Robust {
		tput /= 1 + state.MaxError
	}
	if tput <= 0 {
		return 0
	}
	durS := chunkDur.Seconds()

	bestFirst := 0
	bestQoE := math.Inf(-1)
	// Iterative DFS over level sequences of length `horizon`.
	plan := make([]int, horizon)
	var walk func(depth int, buffer float64, last int, qoe float64)
	walk = func(depth int, buffer float64, last int, qoe float64) {
		if depth == horizon {
			if qoe > bestQoE {
				bestQoE = qoe
				bestFirst = plan[0]
			}
			return
		}
		for lvl := 0; lvl < len(levels); lvl++ {
			plan[depth] = lvl
			dl := levels[lvl] * durS / tput // seconds to download
			rebuf := 0.0
			b := buffer - dl
			if b < 0 {
				rebuf = -b
				b = 0
			}
			b += durS
			q := qualityOf(levels, lvl)
			sw := 0.0
			if last >= 0 {
				sw = math.Abs(qualityOf(levels, lvl) - qualityOf(levels, last))
			}
			walk(depth+1, b, lvl, qoe+q-p.LambdaRebuf*rebuf-p.MuSwitch*sw)
		}
	}
	walk(0, state.BufferS, state.LastLevel, 0)
	return bestFirst
}

// qualityOf maps a level to a perceptual quality value (log of bitrate,
// as in Pensieve's QoE-log metric).
func qualityOf(levels []float64, lvl int) float64 {
	return math.Log(levels[lvl] / levels[0])
}
