// Package abr implements the adaptive-bitrate stack of §7.4: throughput
// predictors (including the ho_score-corrected variants Prognos plugs
// into), the published rate-adaptation algorithms the paper modifies (RB,
// FESTIVE, fastMPC, robustMPC, and a ViVo-style volumetric controller), and
// chunk-level player simulations for 16K panoramic VoD and real-time
// volumetric streaming over the trace-driven link emulator.
package abr

import "math"

// ThroughputPredictor estimates the next chunk's throughput from past
// chunk-level observations.
type ThroughputPredictor interface {
	// Observe records the measured throughput (Mbps) of a finished chunk.
	Observe(mbps float64)
	// Predict returns the expected throughput (Mbps) for the next chunk.
	Predict() float64
}

// HarmonicMean is the stock predictor used by RB/fastMPC/robustMPC: the
// harmonic mean of the last W chunk throughputs, robust to bursts.
type HarmonicMean struct {
	window int
	buf    []float64
}

// NewHarmonicMean creates the predictor (window default 5).
func NewHarmonicMean(window int) *HarmonicMean {
	if window <= 0 {
		window = 5
	}
	return &HarmonicMean{window: window}
}

// Observe records one throughput sample.
func (h *HarmonicMean) Observe(mbps float64) {
	if mbps <= 0 {
		mbps = 0.01
	}
	h.buf = append(h.buf, mbps)
	if len(h.buf) > h.window {
		h.buf = h.buf[len(h.buf)-h.window:]
	}
}

// Predict returns the harmonic mean of the window (0 before any sample).
func (h *HarmonicMean) Predict() float64 {
	if len(h.buf) == 0 {
		return 0
	}
	inv := 0.0
	for _, v := range h.buf {
		inv += 1 / v
	}
	return float64(len(h.buf)) / inv
}

// ScoreSource supplies the current ho_score: the expected multiplicative
// network-capacity change from a predicted handover (1 = no HO expected).
// Prognos-backed sources return Prognos' live output; ground-truth sources
// return the oracle value.
type ScoreSource func() float64

// HOAware wraps a base predictor and multiplies its output by the ho_score
// — the paper's modification to the rate-adaptation algorithms ("we scale
// up or down the predicted throughput by multiplying it with the ho_score
// received from Prognos", §7.4). With no HO expected (score 1) it is
// exactly the base predictor.
type HOAware struct {
	Base  ThroughputPredictor
	Score ScoreSource
}

// Observe forwards to the base predictor.
func (h *HOAware) Observe(mbps float64) { h.Base.Observe(mbps) }

// Predict returns base prediction × ho_score.
func (h *HOAware) Predict() float64 {
	s := 1.0
	if h.Score != nil {
		s = h.Score()
	}
	if s <= 0 {
		s = 0.05
	}
	return h.Base.Predict() * s
}

// ErrorTracker records relative prediction errors for robustMPC's
// discounting.
type ErrorTracker struct {
	window int
	errs   []float64
}

// NewErrorTracker creates a tracker (window default 5).
func NewErrorTracker(window int) *ErrorTracker {
	if window <= 0 {
		window = 5
	}
	return &ErrorTracker{window: window}
}

// Record logs |predicted-actual|/actual for one chunk.
func (e *ErrorTracker) Record(predicted, actual float64) {
	if actual <= 0 {
		return
	}
	err := math.Abs(predicted-actual) / actual
	e.errs = append(e.errs, err)
	if len(e.errs) > e.window {
		e.errs = e.errs[len(e.errs)-e.window:]
	}
}

// MaxError returns the maximum recent relative error (0 with no history).
func (e *ErrorTracker) MaxError() float64 {
	m := 0.0
	for _, v := range e.errs {
		if v > m {
			m = v
		}
	}
	return m
}
