package abr

import (
	"fmt"
	"time"

	"repro/internal/emu"
)

// Video describes a chunked VoD asset. The paper's 16K panoramic video has
// 60 chunks of 2 s at 6 quality levels (720p … 16K).
type Video struct {
	Levels   []float64 // per-level bitrate, Mbps
	ChunkDur time.Duration
	Chunks   int
}

// Panoramic16K returns the paper's 16K panoramic VoD asset: 120 s in 60
// chunks, 6 levels. Bitrates follow typical H.264 ladder spacing up to a
// 16K top rate.
func Panoramic16K() Video {
	return Video{
		Levels:   []float64{4, 10, 25, 60, 140, 320},
		ChunkDur: 2 * time.Second,
		Chunks:   60,
	}
}

// PlayResult summarises one VoD session.
type PlayResult struct {
	Algorithm string
	// StallS is the total rebuffering time in seconds.
	StallS float64
	// StallPct is stall time relative to video duration.
	StallPct float64
	// AvgBitrateMbps is the mean of the chosen levels' bitrates.
	AvgBitrateMbps float64
	// NormalizedBitrate is AvgBitrate / top-level bitrate.
	NormalizedBitrate float64
	// Switches counts level changes.
	Switches int
	// PredErrMbps collects |predicted − actual| per chunk for the Fig. 14b
	// analysis, split by whether a handover hit the chunk.
	PredErrHO   []float64
	PredErrNoHO []float64
}

// ChunkContext lets the experiment attach per-chunk handover context: the
// ho_score the predictor should see and whether a handover actually
// overlaps the chunk (for error attribution and GT variants).
type ChunkContext struct {
	Score float64 // ho_score for this decision (1 = none)
	HasHO bool    // ground truth: a handover overlaps this chunk
}

// upscaleCap bounds upward ho_score corrections applied by the players;
// see the in-loop comment.
const upscaleCap = 1.25

// ScoreAtFunc supplies the handover context for the chunk whose download
// starts at the given link-local time. The link clock is the authoritative
// position within the bandwidth trace — the player drifts from the
// chunk-index timeline through downloads, stalls and buffer idling.
type ScoreAtFunc func(linkNow time.Duration) ChunkContext

// PlayVoD simulates one session of the video over the emulated link with
// the given algorithm. scoreAt may be nil (no HO correction).
func PlayVoD(video Video, link *emu.Link, alg Algorithm, scoreAt ScoreAtFunc) (PlayResult, error) {
	if len(video.Levels) == 0 || video.Chunks <= 0 {
		return PlayResult{}, fmt.Errorf("abr: invalid video %+v", video)
	}
	base := NewHarmonicMean(5)
	errTracker := NewErrorTracker(5)

	res := PlayResult{Algorithm: alg.Name()}
	buffer := 0.0
	last := -1
	const maxBufferS = 30.0
	durS := video.ChunkDur.Seconds()

	var bitSum float64
	for c := 0; c < video.Chunks; c++ {
		score := 1.0
		hasHO := false
		if scoreAt != nil {
			ctx := scoreAt(link.Now())
			if ctx.Score > 0 {
				score = ctx.Score
			}
			// Downward corrections apply fully (they avert stalls at
			// capacity drops); upward corrections are capped — a chunk
			// overlapping an SCG addition still rides the old capacity
			// for part of its duration.
			if score > upscaleCap {
				score = upscaleCap
			}
			hasHO = ctx.HasHO
		}
		pred := base.Predict() * score
		st := State{
			BufferS:       buffer,
			LastLevel:     last,
			PredictedMbps: pred,
			MaxError:      errTracker.MaxError(),
			ChunksLeft:    video.Chunks - c,
		}
		lvl := alg.Choose(st, video.Levels, video.ChunkDur)
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(video.Levels) {
			lvl = len(video.Levels) - 1
		}
		sizeBytes := video.Levels[lvl] * 1e6 / 8 * durS
		dl := link.Download(sizeBytes).Seconds()

		actual := video.Levels[lvl] * durS / dl
		base.Observe(actual)
		errTracker.Record(pred, actual)
		errAbs := pred - actual
		if errAbs < 0 {
			errAbs = -errAbs
		}
		if hasHO {
			res.PredErrHO = append(res.PredErrHO, errAbs)
		} else {
			res.PredErrNoHO = append(res.PredErrNoHO, errAbs)
		}

		if dl > buffer {
			res.StallS += dl - buffer
			buffer = 0
		} else {
			buffer -= dl
		}
		buffer += durS
		if buffer > maxBufferS {
			link.Idle(time.Duration((buffer - maxBufferS) * float64(time.Second)))
			buffer = maxBufferS
		}

		bitSum += video.Levels[lvl]
		if last >= 0 && lvl != last {
			res.Switches++
		}
		last = lvl
	}
	total := float64(video.Chunks) * durS
	res.AvgBitrateMbps = bitSum / float64(video.Chunks)
	res.NormalizedBitrate = res.AvgBitrateMbps / video.Levels[len(video.Levels)-1]
	res.StallPct = res.StallS / total * 100
	return res, nil
}
