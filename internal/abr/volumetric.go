package abr

import (
	"fmt"
	"time"

	"repro/internal/emu"
)

// VolumetricVideo describes a real-time point-cloud stream: fixed-duration
// segments encoded at several density levels. The paper's 3-minute Draco
// video uses 5 levels at {43, 77, 110, 140, 170} Mbps.
type VolumetricVideo struct {
	Levels []float64 // per-density bitrate, Mbps
	SegDur time.Duration
	Segs   int
}

// ViVoVideo returns the paper's volumetric asset: 180 s in 1 s segments.
func ViVoVideo() VolumetricVideo {
	return VolumetricVideo{
		Levels: []float64{43, 77, 110, 140, 170},
		SegDur: time.Second,
		Segs:   180,
	}
}

// VolumetricResult summarises one real-time session.
type VolumetricResult struct {
	Algorithm string
	// AvgLevelBitrate is the mean chosen bitrate (Mbps): the paper's
	// "content quality" metric.
	AvgLevelBitrate float64
	// StallS / StallPct measure time segments arrived after their playout
	// deadline.
	StallS   float64
	StallPct float64
	// Drops counts segments skipped entirely (arrived a full segment
	// late).
	Drops int
}

// jitterBufferS is the playout slack of the real-time pipeline.
const jitterBufferS = 0.3

// PlayVolumetric simulates a live volumetric session: each segment must
// arrive within its duration plus the jitter buffer; lateness stalls the
// viewer. scoreAt supplies optional per-segment ho_score context as in
// PlayVoD.
func PlayVolumetric(video VolumetricVideo, link *emu.Link, alg Algorithm, scoreAt ScoreAtFunc) (VolumetricResult, error) {
	if len(video.Levels) == 0 || video.Segs <= 0 {
		return VolumetricResult{}, fmt.Errorf("abr: invalid volumetric video %+v", video)
	}
	base := NewHarmonicMean(4)
	errTracker := NewErrorTracker(4)
	res := VolumetricResult{Algorithm: alg.Name()}
	last := -1
	durS := video.SegDur.Seconds()
	var bitSum float64

	for seg := 0; seg < video.Segs; seg++ {
		score := 1.0
		if scoreAt != nil {
			if ctx := scoreAt(link.Now()); ctx.Score > 0 {
				score = ctx.Score
			}
			if score > upscaleCap {
				score = upscaleCap
			}
		}
		pred := base.Predict() * score
		st := State{
			BufferS:       jitterBufferS,
			LastLevel:     last,
			PredictedMbps: pred,
			MaxError:      errTracker.MaxError(),
			ChunksLeft:    video.Segs - seg,
		}
		lvl := alg.Choose(st, video.Levels, video.SegDur)
		if lvl < 0 {
			lvl = 0
		}
		if lvl >= len(video.Levels) {
			lvl = len(video.Levels) - 1
		}
		sizeBytes := video.Levels[lvl] * 1e6 / 8 * durS
		dl := link.Download(sizeBytes).Seconds()

		actual := video.Levels[lvl] * durS / dl
		base.Observe(actual)
		errTracker.Record(pred, actual)

		deadline := durS + jitterBufferS
		switch {
		case dl > 2*durS+jitterBufferS:
			// Hopelessly late: the live pipeline drops the segment.
			res.Drops++
			res.StallS += durS
		case dl > deadline:
			res.StallS += dl - deadline
		}
		// Live source: the next segment is only available at its own
		// capture time; idle out the remainder of this segment slot.
		if dl < durS {
			link.Idle(time.Duration((durS - dl) * float64(time.Second)))
		}

		bitSum += video.Levels[lvl]
		last = lvl
	}
	total := float64(video.Segs) * durS
	res.AvgLevelBitrate = bitSum / float64(video.Segs)
	res.StallPct = res.StallS / total * 100
	return res, nil
}

// ViVoRate is the ViVo-style volumetric controller: a conservative
// rate-based density selector (visibility-aware optimisations disabled for
// parity with the paper's evaluation setup).
type ViVoRate struct{}

// Name implements Algorithm.
func (ViVoRate) Name() string { return "ViVo" }

// Choose implements Algorithm.
func (ViVoRate) Choose(state State, levels []float64, _ time.Duration) int {
	best := 0
	for i, b := range levels {
		if b <= 0.8*state.PredictedMbps {
			best = i
		}
	}
	return best
}

// Ensure interface satisfaction at compile time.
var (
	_ Algorithm = RB{}
	_ Algorithm = FESTIVE{}
	_ Algorithm = MPC{}
	_ Algorithm = ViVoRate{}
)
