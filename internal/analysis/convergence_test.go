package analysis

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
)

// synthetic replay: 50 ms ticks over `total`, predicting `typ` inside the
// given spans and HONone elsewhere.
func synthTicks(total time.Duration, typ cellular.HOType, spans [][2]time.Duration) []core.TickPrediction {
	var out []core.TickPrediction
	for t := time.Duration(0); t < total; t += 50 * time.Millisecond {
		p := core.TickPrediction{Time: t, Type: cellular.HONone}
		for _, sp := range spans {
			if t >= sp[0] && t < sp[1] {
				p.Type = typ
			}
		}
		out = append(out, p)
	}
	return out
}

func TestF1SeriesConvergenceShape(t *testing.T) {
	// One handover per 10 s bucket; predictions only cover the later ones —
	// the F1 series must go from 0 to 1 and TimeToThreshold must land at
	// the first covered bucket.
	const bucket = 10 * time.Second
	var hos []cellular.HandoverEvent
	var spans [][2]time.Duration
	for b := 0; b < 6; b++ {
		at := time.Duration(b)*bucket + 5*time.Second
		hos = append(hos, cellular.HandoverEvent{Time: at, Type: cellular.HOLTEH})
		if b >= 3 {
			spans = append(spans, [2]time.Duration{at - time.Second, at})
		}
	}
	ticks := synthTicks(60*time.Second, cellular.HOLTEH, spans)
	series := F1Series(ticks, hos, bucket, time.Second)
	if len(series) < 6 {
		t.Fatalf("series has %d buckets, want >= 6", len(series))
	}
	if series[0].F1 != 0 || series[0].Handovers != 1 {
		t.Errorf("bucket 0: F1=%.2f handovers=%d, want 0 and 1", series[0].F1, series[0].Handovers)
	}
	if series[4].F1 != 1 {
		t.Errorf("bucket 4: F1=%.2f, want 1", series[4].F1)
	}

	ttf, ok := TimeToThreshold(series, 0.9, 0)
	if !ok {
		t.Fatal("never reached threshold")
	}
	if want := 40 * time.Second; ttf != want {
		t.Errorf("time to threshold = %v, want %v (end of bucket 3)", ttf, want)
	}
	// Re-convergence measured from a later origin.
	re, ok := TimeToThreshold(series, 0.9, 30*time.Second)
	if !ok || re != 10*time.Second {
		t.Errorf("reconverge = %v ok=%v, want 10s", re, ok)
	}
	if fl, ok := Floor(series, 0); !ok || fl != 0 {
		t.Errorf("floor = %.2f ok=%v, want 0", fl, ok)
	}
	if fl, ok := Floor(series, 30*time.Second); !ok || fl != 1 {
		t.Errorf("post-convergence floor = %.2f ok=%v, want 1", fl, ok)
	}
	if tail, ok := Tail(series, 3); !ok || tail != 1 {
		t.Errorf("tail = %.2f ok=%v, want 1", tail, ok)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(vals, 1); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(vals, 0.5); got != 2.5 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated (callers hold live aggregates).
	if vals[0] != 4 {
		t.Error("Percentile sorted its input in place")
	}
}
