package analysis

import (
	"time"

	"repro/internal/cellular"
	"repro/internal/throughput"
	"repro/internal/trace"
)

// This file quantifies mobility-management quality for the closed-loop
// evaluation (ROADMAP item 3): ping-pong rate, handover interruption time,
// and the per-UE QoE series the adaptive-vs-static comparison reads.

// PingPongs counts ping-pong handovers: a cell-changing handover A→B
// followed by B→A within the critical window (the classic mobility-
// robustness-optimisation definition; the paper's §6 churn analysis is the
// motivation). Only events with both endpoints identified participate —
// SCG releases have no target and cannot ping-pong by themselves.
func PingPongs(handovers []cellular.HandoverEvent, window time.Duration) int {
	count := 0
	var lastSrc, lastDst string
	var lastAt time.Duration
	valid := false
	for _, ho := range handovers {
		if ho.SourceCell == "" || ho.TargetCell == "" || ho.SourceCell == ho.TargetCell {
			continue
		}
		if valid && ho.SourceCell == lastDst && ho.TargetCell == lastSrc && ho.Time-lastAt <= window {
			count++
		}
		lastSrc, lastDst, lastAt, valid = ho.SourceCell, ho.TargetCell, ho.Time, true
	}
	return count
}

// PingPongRate is PingPongs normalised by the number of cell-changing
// handovers (0 when there were none).
func PingPongRate(handovers []cellular.HandoverEvent, window time.Duration) float64 {
	moves := 0
	for _, ho := range handovers {
		if ho.SourceCell != "" && ho.TargetCell != "" && ho.SourceCell != ho.TargetCell {
			moves++
		}
	}
	if moves == 0 {
		return 0
	}
	return float64(PingPongs(handovers, window)) / float64(moves)
}

// InterruptionStats summarises handover interruption time: the T2
// (execution-stage) duration of every handover that interrupts a data
// plane, per throughput.InterruptionFor — the §5.2/§6 cost the paper's
// duplex-style mitigations target.
type InterruptionStats struct {
	// Count is the number of interrupting handovers; TotalMS / MeanMS /
	// MaxMS their T2 durations in milliseconds.
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// Interruption computes InterruptionStats over a drive's handovers.
func Interruption(handovers []cellular.HandoverEvent) InterruptionStats {
	var out InterruptionStats
	for _, ho := range handovers {
		intr := throughput.InterruptionFor(ho.Type)
		if !intr.LTE && !intr.NR {
			continue
		}
		ms := float64(ho.T2) / float64(time.Millisecond)
		out.Count++
		out.TotalMS += ms
		if ms > out.MaxMS {
			out.MaxMS = ms
		}
	}
	if out.Count > 0 {
		out.MeanMS = out.TotalMS / float64(out.Count)
	}
	return out
}

// QoEPoint is one bucket of a per-UE QoE series: windowed application-level
// throughput statistics over the drive's effective-throughput samples.
type QoEPoint struct {
	// Start is the bucket's opening sim time.
	Start time.Duration `json:"start"`
	// MeanMbps / MinMbps summarise the bucket's effective throughput;
	// StallFrac is the fraction of samples at or below the stall floor.
	MeanMbps  float64 `json:"mean_mbps"`
	MinMbps   float64 `json:"min_mbps"`
	StallFrac float64 `json:"stall_frac"`
}

// DefaultStallMbps is the throughput floor below which a sample counts as
// a stall (streaming-abandonment territory).
const DefaultStallMbps = 1.0

// QoESeries buckets a drive's samples into fixed windows and summarises
// each (mean/min throughput, stall fraction). stallMbps ≤ 0 uses
// DefaultStallMbps.
func QoESeries(samples []trace.Sample, bucket time.Duration, stallMbps float64) []QoEPoint {
	if len(samples) == 0 || bucket <= 0 {
		return nil
	}
	if stallMbps <= 0 {
		stallMbps = DefaultStallMbps
	}
	var out []QoEPoint
	start := samples[0].Time
	var sum, min float64
	n, stalls := 0, 0
	flush := func() {
		if n == 0 {
			return
		}
		out = append(out, QoEPoint{
			Start:     start,
			MeanMbps:  sum / float64(n),
			MinMbps:   min,
			StallFrac: float64(stalls) / float64(n),
		})
	}
	for _, s := range samples {
		for s.Time >= start+bucket {
			flush()
			start += bucket
			sum, min, n, stalls = 0, 0, 0, 0
		}
		if n == 0 || s.TputMbps < min {
			min = s.TputMbps
		}
		sum += s.TputMbps
		n++
		if s.TputMbps <= stallMbps {
			stalls++
		}
	}
	flush()
	return out
}

// QoESummary collapses a QoE series into drive-level numbers: the
// sample-weighted mean throughput and stall fraction. It recomputes from
// the raw samples so buckets with different populations weigh correctly.
func QoESummary(samples []trace.Sample, stallMbps float64) (meanMbps, stallFrac float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	if stallMbps <= 0 {
		stallMbps = DefaultStallMbps
	}
	var sum float64
	stalls := 0
	for _, s := range samples {
		sum += s.TputMbps
		if s.TputMbps <= stallMbps {
			stalls++
		}
	}
	return sum / float64(len(samples)), float64(stalls) / float64(len(samples))
}
