package analysis

import (
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// syntheticLog builds a log where LTE PCI 7 and NR PCI 7 serve the same
// street segment (co-located), while NR PCI 600 serves a disjoint one.
func syntheticLog() *trace.Log {
	l := &trace.Log{Carrier: "OpX", Arch: cellular.ArchNSA}
	add := func(x, y float64, ltePCI, nrPCI cellular.PCI) {
		s := trace.Sample{X: x, Y: y}
		if ltePCI > 0 {
			s.ServingLTE = trace.CellObs{PCI: ltePCI, Tech: cellular.TechLTE, Valid: true}
		}
		if nrPCI > 0 {
			s.ServingNR = trace.CellObs{PCI: nrPCI, Tech: cellular.TechNR, Valid: true}
		}
		l.Samples = append(l.Samples, s)
	}
	// Segment A: LTE 7 + NR 7 overlap around (0..100, 0..10).
	for i := 0; i < 20; i++ {
		add(float64(i*5), float64(i%3), 7, 7)
	}
	// Segment B: LTE 7 continues; NR 600 takes over at (200..300).
	for i := 0; i < 20; i++ {
		add(200+float64(i*5), float64(i%3), 9, 600)
	}
	return l
}

func TestBuildPCIHulls(t *testing.T) {
	l := syntheticLog()
	lte := BuildPCIHulls(l, cellular.TechLTE)
	if len(lte) != 2 {
		t.Fatalf("got %d LTE hulls", len(lte))
	}
	nr := BuildPCIHulls(l, cellular.TechNR)
	if len(nr) != 2 {
		t.Fatalf("got %d NR hulls", len(nr))
	}
	for _, h := range append(lte, nr...) {
		if h.Samples != 20 {
			t.Errorf("hull %v has %d samples", h.PCI, h.Samples)
		}
		if len(h.Hull) < 3 {
			t.Errorf("hull %v degenerate: %v", h.PCI, h.Hull)
		}
	}
}

func TestDetectCoLocation(t *testing.T) {
	l := syntheticLog()
	det := DetectCoLocation(l, 3)
	if len(det) != 2 {
		t.Fatalf("got %d detections", len(det))
	}
	byPCI := map[cellular.PCI]CoLocation{}
	for _, d := range det {
		byPCI[d.NRPCI] = d
	}
	if !byPCI[7].SamePCIMatch {
		t.Error("NR 7 must be detected as co-located with LTE 7")
	}
	if byPCI[600].SamePCIMatch {
		t.Error("NR 600 must not be co-located")
	}
	rate, n := CoLocationRate(l, 3)
	if n != 2 || rate != 0.5 {
		t.Errorf("rate = %v over %d cells", rate, n)
	}
}

// TestHeuristicAgainstGroundTruth runs the hull heuristic over a simulated
// drive whose topology has a known co-location fraction and checks the
// detected rate lands in the paper's reported band shape (more co-location
// configured → more detected).
func TestHeuristicAgainstGroundTruth(t *testing.T) {
	run := func(coloc float64, seed int64) float64 {
		c := topology.OpX()
		c.NRLayers = c.NRLayers[:1] // low-band only
		c.NRLayers[0].CoLocate = coloc
		log, err := sim.Run(sim.Config{
			Carrier:      c,
			Arch:         cellular.ArchNSA,
			RouteKind:    geo.RouteFreeway,
			RouteLengthM: 40000,
			SpeedMPS:     29,
			Seed:         seed,
			TopoOpts:     topology.Options{SkipMMWave: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		rate, n := CoLocationRate(log, 10)
		if n == 0 {
			t.Fatal("no NR cells observed")
		}
		return rate
	}
	low := run(0.05, 3)
	high := run(0.6, 3)
	if high <= low {
		t.Errorf("heuristic must track configured co-location: 5%%-cfg → %.2f, 60%%-cfg → %.2f", low, high)
	}
}
