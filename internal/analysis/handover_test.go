package analysis

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

func mkHO(typ cellular.HOType, src, dst string, at time.Duration) cellular.HandoverEvent {
	return cellular.HandoverEvent{Type: typ, SourceCell: src, TargetCell: dst, Time: at}
}

func TestPingPongs(t *testing.T) {
	w := 5 * time.Second
	cases := []struct {
		name string
		hos  []cellular.HandoverEvent
		want int
	}{
		{"empty", nil, 0},
		{"single move", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
		}, 0},
		{"return inside window", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOMNBH, "b", "a", 3*time.Second),
		}, 1},
		{"return at window edge", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOMNBH, "b", "a", 5*time.Second),
		}, 1},
		{"return outside window", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOMNBH, "b", "a", 6*time.Second),
		}, 0},
		{"forward chain is not a ping-pong", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOMNBH, "b", "c", time.Second),
			mkHO(cellular.HOMNBH, "c", "d", 2*time.Second),
		}, 0},
		{"oscillation counts every return", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOMNBH, "b", "a", time.Second),
			mkHO(cellular.HOMNBH, "a", "b", 2*time.Second),
			mkHO(cellular.HOMNBH, "b", "a", 3*time.Second),
		}, 3},
		{"targetless release breaks the chain", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOSCGR, "b", "", time.Second),
			mkHO(cellular.HOMNBH, "b", "a", 2*time.Second),
		}, 1},
		{"same-cell event ignored", []cellular.HandoverEvent{
			mkHO(cellular.HOMNBH, "a", "b", 0),
			mkHO(cellular.HOSCGM, "b", "b", time.Second),
			mkHO(cellular.HOMNBH, "b", "a", 2*time.Second),
		}, 1},
	}
	for _, c := range cases {
		if got := PingPongs(c.hos, w); got != c.want {
			t.Errorf("%s: PingPongs = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestPingPongRate(t *testing.T) {
	if got := PingPongRate(nil, time.Second); got != 0 {
		t.Errorf("empty rate = %v, want 0", got)
	}
	hos := []cellular.HandoverEvent{
		mkHO(cellular.HOMNBH, "a", "b", 0),
		mkHO(cellular.HOMNBH, "b", "a", time.Second),
		mkHO(cellular.HOMNBH, "a", "c", 30*time.Second),
		mkHO(cellular.HOMNBH, "c", "d", 60*time.Second),
	}
	if got, want := PingPongRate(hos, 5*time.Second), 0.25; got != want {
		t.Errorf("rate = %v, want %v", got, want)
	}
}

func TestInterruption(t *testing.T) {
	hos := []cellular.HandoverEvent{
		// Interrupts both planes: counted.
		{Type: cellular.HOMNBH, T2: 100 * time.Millisecond},
		// NR-only interruption: counted.
		{Type: cellular.HOSCGC, T2: 50 * time.Millisecond},
		// No interruption: skipped.
		{Type: cellular.HONone, T2: time.Second},
	}
	s := Interruption(hos)
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.TotalMS != 150 || s.MeanMS != 75 || s.MaxMS != 100 {
		t.Errorf("stats = %+v", s)
	}
	if z := Interruption(nil); z != (InterruptionStats{}) {
		t.Errorf("empty stats = %+v", z)
	}
}

func TestQoESeries(t *testing.T) {
	mk := func(at time.Duration, mbps float64) trace.Sample {
		return trace.Sample{Time: at, TputMbps: mbps}
	}
	samples := []trace.Sample{
		mk(0, 100), mk(time.Second, 0.5), // bucket 1: mean 50.25, min 0.5, 1 stall
		mk(2*time.Second, 200), // bucket 2
		// 3s..4s empty: no bucket emitted
		mk(4*time.Second, 10), mk(4*time.Second+500*time.Millisecond, 20), // bucket 3
	}
	pts := QoESeries(samples, 2*time.Second, 0)
	if len(pts) != 3 {
		t.Fatalf("series has %d buckets, want 3", len(pts))
	}
	if pts[0].MeanMbps != 50.25 || pts[0].MinMbps != 0.5 || pts[0].StallFrac != 0.5 {
		t.Errorf("bucket 0: %+v", pts[0])
	}
	if pts[1].Start != 2*time.Second || pts[1].MeanMbps != 200 || pts[1].StallFrac != 0 {
		t.Errorf("bucket 1: %+v", pts[1])
	}
	if pts[2].Start != 4*time.Second || pts[2].MeanMbps != 15 || pts[2].MinMbps != 10 {
		t.Errorf("bucket 2: %+v", pts[2])
	}
	if QoESeries(nil, time.Second, 0) != nil {
		t.Error("empty samples produced a series")
	}
	if QoESeries(samples, 0, 0) != nil {
		t.Error("zero bucket produced a series")
	}
}

func TestQoESummary(t *testing.T) {
	samples := []trace.Sample{
		{TputMbps: 100}, {TputMbps: 0.5}, {TputMbps: 19.5}, {TputMbps: 0},
	}
	mean, stall := QoESummary(samples, 0)
	if mean != 30 {
		t.Errorf("mean = %v, want 30", mean)
	}
	if stall != 0.5 {
		t.Errorf("stall fraction = %v, want 0.5", stall)
	}
	// A custom stall floor sweeps more samples in.
	_, stall = QoESummary(samples, 25)
	if stall != 0.75 {
		t.Errorf("custom-floor stall fraction = %v, want 0.75", stall)
	}
	mean, stall = QoESummary(nil, 0)
	if mean != 0 || stall != 0 {
		t.Errorf("empty summary = %v/%v", mean, stall)
	}
}
