package analysis

import (
	"sort"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
)

// F1Point is one bucket of a windowed F1 time series: the event-level F1
// of the predictions made during [Start, Start+Bucket), together with the
// number of ground-truth handovers inside the bucket. Buckets with no
// handover carry no convergence signal (F1 is undefined without positive
// events), so consumers filter on Handovers > 0.
type F1Point struct {
	Start     time.Duration
	F1        float64
	Handovers int
}

// F1Series buckets a replay into fixed spans and scores each bucket's
// event-level F1 independently (core.EvaluateEvents semantics, with the
// paper's prediction-window matching). The series is the observable an
// online learner's convergence is read from: early buckets score low while
// patterns are still being learned, the curve climbs as the pattern DB
// fills, and a mid-run policy drift knocks it down until re-learning
// catches up.
func F1Series(ticks []core.TickPrediction, handovers []cellular.HandoverEvent, bucket, window time.Duration) []F1Point {
	if len(ticks) == 0 || bucket <= 0 {
		return nil
	}
	end := ticks[len(ticks)-1].Time
	var out []F1Point
	ti, hi := 0, 0
	for start := ticks[0].Time; start <= end; start += bucket {
		stop := start + bucket
		t0 := ti
		for ti < len(ticks) && ticks[ti].Time < stop {
			ti++
		}
		h0 := hi
		for hi < len(handovers) && handovers[hi].Time < stop {
			hi++
		}
		o := core.EvaluateEvents(ticks[t0:ti], handovers[h0:hi], window)
		out = append(out, F1Point{Start: start, F1: o.F1(), Handovers: hi - h0})
	}
	return out
}

// TimeToThreshold returns how long after `from` the series first sustains
// F1 ≥ threshold, measured to the end of the qualifying bucket (the
// learner has converged once a whole bucket with real handovers scores
// above the bar). Buckets without handovers are skipped — silence is not
// evidence of convergence. The second return is false when the series
// never reaches the threshold after `from`.
func TimeToThreshold(series []F1Point, threshold float64, from time.Duration) (time.Duration, bool) {
	for _, p := range series {
		if p.Start < from || p.Handovers == 0 {
			continue
		}
		if p.F1 >= threshold {
			end := p.Start
			if len(series) > 1 {
				end += series[1].Start - series[0].Start
			}
			return end - from, true
		}
	}
	return 0, false
}

// Floor returns the minimum F1 over buckets carrying at least one handover
// after `from` — the worst sustained prediction quality of the run. The
// second return is false when no bucket after `from` had a handover.
func Floor(series []F1Point, from time.Duration) (float64, bool) {
	found := false
	floor := 0.0
	for _, p := range series {
		if p.Start < from || p.Handovers == 0 {
			continue
		}
		if !found || p.F1 < floor {
			floor = p.F1
			found = true
		}
	}
	return floor, found
}

// Tail returns the mean F1 of the last n handover-carrying buckets — the
// converged end-state quality of the run (n is clamped to what exists).
func Tail(series []F1Point, n int) (float64, bool) {
	var vals []float64
	for _, p := range series {
		if p.Handovers > 0 {
			vals = append(vals, p.F1)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	if n > len(vals) {
		n = len(vals)
	}
	sum := 0.0
	for _, v := range vals[len(vals)-n:] {
		sum += v
	}
	return sum / float64(n), true
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of vals by linear
// interpolation; vals need not be sorted. Zero-length input returns 0.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
