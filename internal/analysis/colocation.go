// Package analysis implements the paper's offline log analyses that go
// beyond simple statistics — currently the §6.3 co-location detector: the
// eNB/gNB co-location heuristic built from convex hulls of per-PCI sample
// positions ("we use 4G and 5G PCIs to construct convex hulls ... identify
// the overlapping convex hulls for 4G and 5G PCIs").
package analysis

import (
	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/trace"
)

// PCIHull is the convex hull of the positions where one cell served the UE.
type PCIHull struct {
	PCI     cellular.PCI
	Tech    cellular.Tech
	Samples int
	Hull    []geo.Point
}

// BuildPCIHulls collects, for each serving PCI of the given technology, the
// convex hull of the UE positions observed while attached to it.
func BuildPCIHulls(log *trace.Log, tech cellular.Tech) []PCIHull {
	pts := map[cellular.PCI][]geo.Point{}
	for _, s := range log.Samples {
		obs := s.ServingLTE
		if tech == cellular.TechNR {
			obs = s.ServingNR
		}
		if !obs.Valid {
			continue
		}
		pts[obs.PCI] = append(pts[obs.PCI], geo.Point{X: s.X, Y: s.Y})
	}
	out := make([]PCIHull, 0, len(pts))
	for pci, ps := range pts {
		out = append(out, PCIHull{
			PCI:     pci,
			Tech:    tech,
			Samples: len(ps),
			Hull:    geo.ConvexHull(ps),
		})
	}
	return out
}

// CoLocation is the outcome of the hull heuristic for one NR cell.
type CoLocation struct {
	NRPCI cellular.PCI
	// SamePCIMatch reports the primary signal: an LTE cell with the same
	// PCI whose hull overlaps this NR cell's hull.
	SamePCIMatch bool
	// OverlapCount is the number of LTE hulls overlapping the NR hull
	// (context: dense areas overlap many).
	OverlapCount int
}

// DetectCoLocation applies the paper's heuristic to a drive log: an NR cell
// is deemed co-located with an eNB when an LTE cell with the *same PCI* has
// an overlapping coverage hull. Cells observed for fewer than minSamples
// samples are skipped (their hulls are degenerate).
func DetectCoLocation(log *trace.Log, minSamples int) []CoLocation {
	if minSamples < 3 {
		minSamples = 3
	}
	lte := BuildPCIHulls(log, cellular.TechLTE)
	nr := BuildPCIHulls(log, cellular.TechNR)

	lteByPCI := map[cellular.PCI]PCIHull{}
	for _, h := range lte {
		if h.Samples >= minSamples {
			lteByPCI[h.PCI] = h
		}
	}
	var out []CoLocation
	for _, nh := range nr {
		if nh.Samples < minSamples {
			continue
		}
		c := CoLocation{NRPCI: nh.PCI}
		for _, lh := range lte {
			if lh.Samples < minSamples {
				continue
			}
			if geo.ConvexOverlap(nh.Hull, lh.Hull) {
				c.OverlapCount++
				if lh.PCI == nh.PCI {
					c.SamePCIMatch = true
				}
			}
		}
		out = append(out, c)
	}
	return out
}

// CoLocationRate returns the fraction of (sufficiently observed) NR cells
// the heuristic deems co-located — the paper reports 5%-36% across the
// three carriers for NSA low-band.
func CoLocationRate(log *trace.Log, minSamples int) (rate float64, nrCells int) {
	det := DetectCoLocation(log, minSamples)
	if len(det) == 0 {
		return 0, 0
	}
	co := 0
	for _, d := range det {
		if d.SamePCIMatch {
			co++
		}
	}
	return float64(co) / float64(len(det)), len(det)
}
