package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/trace"
)

// LSTMParams tunes the stacked-LSTM baseline (Ozturk et al.): a two-layer
// LSTM over device location/speed sequences with a softmax head.
type LSTMParams struct {
	Hidden int     // hidden units per layer (default 16)
	SeqLen int     // input sequence length in samples (default 20)
	Epochs int     // training epochs (default 8)
	LR     float64 // Adam learning rate (default 0.01)
	// NegativeKeep subsamples "no HO" sequences (default 0.08).
	NegativeKeep float64
	// Seed drives weight initialisation and subsampling; equal seeds give
	// identical models.
	Seed int64
}

func (p LSTMParams) withDefaults() LSTMParams {
	if p.Hidden == 0 {
		p.Hidden = 16
	}
	if p.SeqLen == 0 {
		p.SeqLen = 20
	}
	if p.Epochs == 0 {
		p.Epochs = 8
	}
	if p.LR == 0 {
		p.LR = 0.01
	}
	if p.NegativeKeep == 0 {
		p.NegativeKeep = 0.08
	}
	return p
}

// lstmInputDim: normalised (x, y, speed, dx, dy) per step.
const lstmInputDim = 5

// adamParam is one parameter tensor with Adam optimiser state.
type adamParam struct {
	w, g, m, v []float64
}

func newAdamParam(n int, scale float64, rng *rand.Rand) *adamParam {
	p := &adamParam{
		w: make([]float64, n),
		g: make([]float64, n),
		m: make([]float64, n),
		v: make([]float64, n),
	}
	if scale > 0 {
		for i := range p.w {
			p.w[i] = rng.NormFloat64() * scale
		}
	}
	return p
}

// step applies one Adam update and clears the gradient.
func (p *adamParam) step(lr float64, t int) {
	const b1, b2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(b1, float64(t))
	bc2 := 1 - math.Pow(b2, float64(t))
	for i := range p.w {
		g := p.g[i]
		p.m[i] = b1*p.m[i] + (1-b1)*g
		p.v[i] = b2*p.v[i] + (1-b2)*g*g
		p.w[i] -= lr * (p.m[i] / bc1) / (math.Sqrt(p.v[i]/bc2) + eps)
		p.g[i] = 0
	}
}

// lstmLayer is one LSTM layer; gate order in the stacked weights is
// [input, forget, output, cell].
type lstmLayer struct {
	in, hid   int
	wx, wh, b *adamParam
}

func newLSTMLayer(in, hid int, rng *rand.Rand) *lstmLayer {
	scale := 1 / math.Sqrt(float64(in+hid))
	l := &lstmLayer{
		in: in, hid: hid,
		wx: newAdamParam(4*hid*in, scale, rng),
		wh: newAdamParam(4*hid*hid, scale, rng),
		b:  newAdamParam(4*hid, 0, rng),
	}
	for i := hid; i < 2*hid; i++ {
		l.b.w[i] = 1 // forget-gate bias
	}
	return l
}

// lstmCache holds one step's activations for BPTT.
type lstmCache struct {
	x, hPrev, cPrev []float64
	ig, fg, og, gg  []float64
	c, tanhC, h     []float64
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// forward computes one time step, returning the cache.
func (l *lstmLayer) forward(x, hPrev, cPrev []float64) lstmCache {
	h := l.hid
	cache := lstmCache{
		x: x, hPrev: hPrev, cPrev: cPrev,
		ig: make([]float64, h), fg: make([]float64, h), og: make([]float64, h), gg: make([]float64, h),
		c: make([]float64, h), tanhC: make([]float64, h), h: make([]float64, h),
	}
	for j := 0; j < 4*h; j++ {
		z := l.b.w[j]
		for k := 0; k < l.in; k++ {
			z += l.wx.w[j*l.in+k] * x[k]
		}
		for k := 0; k < h; k++ {
			z += l.wh.w[j*h+k] * hPrev[k]
		}
		switch {
		case j < h:
			cache.ig[j] = sigmoid(z)
		case j < 2*h:
			cache.fg[j-h] = sigmoid(z)
		case j < 3*h:
			cache.og[j-2*h] = sigmoid(z)
		default:
			cache.gg[j-3*h] = math.Tanh(z)
		}
	}
	for j := 0; j < h; j++ {
		cache.c[j] = cache.fg[j]*cPrev[j] + cache.ig[j]*cache.gg[j]
		cache.tanhC[j] = math.Tanh(cache.c[j])
		cache.h[j] = cache.og[j] * cache.tanhC[j]
	}
	return cache
}

// backward accumulates gradients for one step; dh/dc are gradients flowing
// into this step's h and c. It returns gradients for x, hPrev, cPrev.
func (l *lstmLayer) backward(cache lstmCache, dh, dc []float64) (dx, dhPrev, dcPrev []float64) {
	h := l.hid
	dx = make([]float64, l.in)
	dhPrev = make([]float64, h)
	dcPrev = make([]float64, h)
	dz := make([]float64, 4*h)
	for j := 0; j < h; j++ {
		dcj := dc[j] + dh[j]*cache.og[j]*(1-cache.tanhC[j]*cache.tanhC[j])
		do := dh[j] * cache.tanhC[j]
		di := dcj * cache.gg[j]
		df := dcj * cache.cPrev[j]
		dg := dcj * cache.ig[j]
		dcPrev[j] = dcj * cache.fg[j]
		dz[j] = di * cache.ig[j] * (1 - cache.ig[j])
		dz[h+j] = df * cache.fg[j] * (1 - cache.fg[j])
		dz[2*h+j] = do * cache.og[j] * (1 - cache.og[j])
		dz[3*h+j] = dg * (1 - cache.gg[j]*cache.gg[j])
	}
	for j := 0; j < 4*h; j++ {
		l.b.g[j] += dz[j]
		for k := 0; k < l.in; k++ {
			l.wx.g[j*l.in+k] += dz[j] * cache.x[k]
			dx[k] += dz[j] * l.wx.w[j*l.in+k]
		}
		for k := 0; k < h; k++ {
			l.wh.g[j*h+k] += dz[j] * cache.hPrev[k]
			dhPrev[k] += dz[j] * l.wh.w[j*h+k]
		}
	}
	return dx, dhPrev, dcPrev
}

// StackedLSTM is the two-layer LSTM classifier.
type StackedLSTM struct {
	params LSTMParams
	l1, l2 *lstmLayer
	// head: dense softmax over classes.
	hw, hb  *adamParam
	classes []cellular.HOType
	adamT   int
	// input normalisation (fit on training data).
	mean, std []float64
}

// TrainLSTM fits the stacked LSTM on labelled sequences.
func TrainLSTM(examples []Label, params LSTMParams) (*StackedLSTM, error) {
	params = params.withDefaults()
	if len(examples) == 0 {
		return nil, fmt.Errorf("baseline: no training sequences")
	}
	rng := rand.New(rand.NewSource(params.Seed + 7))
	classes := Classes()
	k := len(classes)
	m := &StackedLSTM{
		params:  params,
		l1:      newLSTMLayer(lstmInputDim, params.Hidden, rng),
		l2:      newLSTMLayer(params.Hidden, params.Hidden, rng),
		hw:      newAdamParam(k*params.Hidden, 1/math.Sqrt(float64(params.Hidden)), rng),
		hb:      newAdamParam(k, 0, rng),
		classes: classes,
	}
	m.fitNorm(examples)

	order := rng.Perm(len(examples))
	for epoch := 0; epoch < params.Epochs; epoch++ {
		for _, idx := range order {
			ex := examples[idx]
			if len(ex.Seq) == 0 {
				continue
			}
			m.trainOne(ex)
		}
	}
	return m, nil
}

// fitNorm computes per-dimension normalisation over the training inputs.
func (m *StackedLSTM) fitNorm(examples []Label) {
	m.mean = make([]float64, lstmInputDim)
	m.std = make([]float64, lstmInputDim)
	n := 0
	for _, e := range examples {
		for _, x := range e.Seq {
			for d := 0; d < lstmInputDim && d < len(x); d++ {
				m.mean[d] += x[d]
			}
			n++
		}
	}
	if n == 0 {
		for d := range m.std {
			m.std[d] = 1
		}
		return
	}
	for d := range m.mean {
		m.mean[d] /= float64(n)
	}
	for _, e := range examples {
		for _, x := range e.Seq {
			for d := 0; d < lstmInputDim && d < len(x); d++ {
				diff := x[d] - m.mean[d]
				m.std[d] += diff * diff
			}
		}
	}
	for d := range m.std {
		m.std[d] = math.Sqrt(m.std[d] / float64(n))
		if m.std[d] < 1e-6 {
			m.std[d] = 1
		}
	}
}

func (m *StackedLSTM) normalize(x []float64) []float64 {
	out := make([]float64, lstmInputDim)
	for d := 0; d < lstmInputDim && d < len(x); d++ {
		out[d] = (x[d] - m.mean[d]) / m.std[d]
	}
	return out
}

// forwardSeq runs the stack over a sequence, returning the caches and the
// softmax probabilities at the final step.
func (m *StackedLSTM) forwardSeq(seq [][]float64) (c1, c2 []lstmCache, probs []float64) {
	h := m.params.Hidden
	h1, cc1 := make([]float64, h), make([]float64, h)
	h2, cc2 := make([]float64, h), make([]float64, h)
	for _, raw := range seq {
		x := m.normalize(raw)
		s1 := m.l1.forward(x, h1, cc1)
		s2 := m.l2.forward(s1.h, h2, cc2)
		c1 = append(c1, s1)
		c2 = append(c2, s2)
		h1, cc1 = s1.h, s1.c
		h2, cc2 = s2.h, s2.c
	}
	k := len(m.classes)
	logits := make([]float64, k)
	for c := 0; c < k; c++ {
		z := m.hb.w[c]
		for j := 0; j < h; j++ {
			z += m.hw.w[c*h+j] * h2[j]
		}
		logits[c] = z
	}
	return c1, c2, softmax(logits)
}

// trainOne runs one sequence forward/backward and applies an Adam step.
func (m *StackedLSTM) trainOne(ex Label) {
	c1, c2, probs := m.forwardSeq(ex.Seq)
	if len(c2) == 0 {
		return
	}
	h := m.params.Hidden
	k := len(m.classes)
	// Head gradients (cross-entropy): dlogit = p - y.
	hTop := c2[len(c2)-1].h
	dh2 := make([]float64, h)
	for c := 0; c < k; c++ {
		d := probs[c]
		if c == ex.Class {
			d -= 1
		}
		m.hb.g[c] += d
		for j := 0; j < h; j++ {
			m.hw.g[c*h+j] += d * hTop[j]
			dh2[j] += d * m.hw.w[c*h+j]
		}
	}
	dc2 := make([]float64, h)
	dh1 := make([]float64, h)
	dc1 := make([]float64, h)
	for t := len(c2) - 1; t >= 0; t-- {
		dxl2, dhPrev2, dcPrev2 := m.l2.backward(c2[t], dh2, dc2)
		for j := 0; j < h; j++ {
			dh1[j] += dxl2[j]
		}
		_, dhPrev1, dcPrev1 := m.l1.backward(c1[t], dh1, dc1)
		dh2, dc2 = dhPrev2, dcPrev2
		dh1, dc1 = dhPrev1, dcPrev1
	}
	m.adamT++
	lr := m.params.LR
	m.l1.wx.step(lr, m.adamT)
	m.l1.wh.step(lr, m.adamT)
	m.l1.b.step(lr, m.adamT)
	m.l2.wx.step(lr, m.adamT)
	m.l2.wh.step(lr, m.adamT)
	m.l2.b.step(lr, m.adamT)
	m.hw.step(lr, m.adamT)
	m.hb.step(lr, m.adamT)
}

// PredictClass classifies a sequence.
func (m *StackedLSTM) PredictClass(seq [][]float64) (cellular.HOType, float64) {
	_, _, probs := m.forwardSeq(seq)
	best, bp := 0, probs[0]
	for c := 1; c < len(probs); c++ {
		if probs[c] > bp {
			best, bp = c, probs[c]
		}
	}
	return m.classes[best], bp
}

// locFeatures derives the LSTM input vector from one sample and its
// predecessor.
func locFeatures(s, prev trace.Sample) []float64 {
	return []float64{
		s.X / 1000, s.Y / 1000, s.SpeedMPS / 30,
		(s.X - prev.X), (s.Y - prev.Y),
	}
}

// ExtractSequences builds labelled location sequences from a log, mirroring
// ExtractExamples' windowing and negative subsampling.
func ExtractSequences(log *trace.Log, window time.Duration, params LSTMParams) []Label {
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(params.Seed + 11))
	var out []Label
	hi := 0
	nextBoundary := time.Duration(0)
	for i, s := range log.Samples {
		if s.Time < nextBoundary || i < params.SeqLen {
			continue
		}
		nextBoundary = s.Time + window
		for hi < len(log.Handovers) && log.Handovers[hi].Time <= s.Time {
			hi++
		}
		cls := 0
		if hi < len(log.Handovers) && log.Handovers[hi].Time <= s.Time+window {
			cls = ClassIndex(log.Handovers[hi].Type)
		}
		if cls == 0 && rng.Float64() > params.NegativeKeep {
			continue
		}
		seq := make([][]float64, 0, params.SeqLen)
		for j := i - params.SeqLen + 1; j <= i; j++ {
			prev := log.Samples[j]
			if j > 0 {
				prev = log.Samples[j-1]
			}
			seq = append(seq, locFeatures(log.Samples[j], prev))
		}
		out = append(out, Label{Seq: seq, Class: cls})
	}
	return out
}

// LSTMPredictor adapts a trained StackedLSTM to the core.Predictor
// interface.
type LSTMPredictor struct {
	model *StackedLSTM
	buf   []trace.Sample
	// Threshold is the minimum probability to emit a positive prediction.
	Threshold float64
}

// NewLSTMPredictor wraps a trained model.
func NewLSTMPredictor(model *StackedLSTM) *LSTMPredictor {
	return &LSTMPredictor{model: model, Threshold: 0.5}
}

// OnSample appends to the rolling sequence buffer.
func (p *LSTMPredictor) OnSample(s trace.Sample) {
	p.buf = append(p.buf, s)
	if max := p.model.params.SeqLen + 1; len(p.buf) > max {
		p.buf = p.buf[len(p.buf)-max:]
	}
}

// OnReport is a no-op: the LSTM uses location only.
func (p *LSTMPredictor) OnReport(cellular.MeasurementReport) {}

// OnHandover is a no-op: the LSTM is trained offline.
func (p *LSTMPredictor) OnHandover(cellular.HandoverEvent) {}

// Predict classifies the current sequence.
func (p *LSTMPredictor) Predict() core.Prediction {
	n := p.model.params.SeqLen
	if len(p.buf) < n+1 {
		return core.Prediction{Type: cellular.HONone, Score: 1}
	}
	seq := make([][]float64, 0, n)
	for i := len(p.buf) - n; i < len(p.buf); i++ {
		seq = append(seq, locFeatures(p.buf[i], p.buf[i-1]))
	}
	cls, prob := p.model.PredictClass(seq)
	if cls == cellular.HONone || prob < p.Threshold {
		return core.Prediction{Type: cellular.HONone, Score: 1}
	}
	return core.Prediction{Type: cls, Score: core.DefaultScores().Score(cls), Similarity: prob}
}
