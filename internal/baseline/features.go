// Package baseline implements the two published handover-prediction
// approaches the paper compares Prognos against (§7.3): the gradient
// boosting classifier of Mei et al. (lower-layer signal features) and the
// stacked LSTM of Ozturk et al. (device location sequences). Both are
// offline-trained, in contrast to Prognos' online learning, and both are
// built from scratch on the standard library.
package baseline

import (
	"math"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// FeatureWindow turns a rolling window of cross-layer samples into the
// fixed-length feature vector the GBC consumes: summary statistics and
// slopes of the serving/neighbour signal qualities, mirroring Mei et al.'s
// lower-layer feature set.
type FeatureWindow struct {
	size int
	buf  []trace.Sample
	head int
	fill int
}

// NewFeatureWindow creates a rolling window over the given number of
// samples (the paper uses 1 s = 20 samples).
func NewFeatureWindow(size int) *FeatureWindow {
	if size < 2 {
		size = 2
	}
	return &FeatureWindow{size: size, buf: make([]trace.Sample, size)}
}

// Push adds one sample.
func (w *FeatureWindow) Push(s trace.Sample) {
	w.buf[w.head] = s
	w.head = (w.head + 1) % w.size
	if w.fill < w.size {
		w.fill++
	}
}

// Ready reports whether the window is full.
func (w *FeatureWindow) Ready() bool { return w.fill == w.size }

// ordered returns the window contents oldest-first.
func (w *FeatureWindow) ordered() []trace.Sample {
	out := make([]trace.Sample, 0, w.fill)
	start := w.head - w.fill
	if start < 0 {
		start += w.size
	}
	for i := 0; i < w.fill; i++ {
		out = append(out, w.buf[(start+i)%w.size])
	}
	return out
}

// NumFeatures is the length of the vector produced by Features.
const NumFeatures = 26

// Features extracts the feature vector from the current window. Missing
// legs (e.g. no NR attachment) are encoded as a floor value plus a validity
// flag, so the trees can split on attachment state.
func (w *FeatureWindow) Features() []float64 {
	samples := w.ordered()
	f := make([]float64, 0, NumFeatures)

	series := func(get func(trace.Sample) (float64, bool)) (mean, minv, maxv, slope, validFrac float64) {
		n := 0
		minv, maxv = math.Inf(1), math.Inf(-1)
		var sx, sy, sxx, sxy float64
		for i, s := range samples {
			v, ok := get(s)
			if !ok {
				continue
			}
			n++
			mean += v
			if v < minv {
				minv = v
			}
			if v > maxv {
				maxv = v
			}
			x := float64(i)
			sx += x
			sy += v
			sxx += x * x
			sxy += x * v
		}
		if n == 0 {
			return -140, -140, -140, 0, 0
		}
		mean /= float64(n)
		den := float64(n)*sxx - sx*sx
		if den != 0 {
			slope = (float64(n)*sxy - sx*sy) / den
		}
		return mean, minv, maxv, slope, float64(n) / float64(len(samples))
	}

	add := func(get func(trace.Sample) (float64, bool)) {
		mean, minv, maxv, slope, valid := series(get)
		f = append(f, mean, minv, maxv, slope, valid)
	}

	add(func(s trace.Sample) (float64, bool) { return s.ServingLTE.RSRP, s.ServingLTE.Valid })
	add(func(s trace.Sample) (float64, bool) { return s.NeighborLTE.RSRP, s.NeighborLTE.Valid })
	add(func(s trace.Sample) (float64, bool) { return s.ServingNR.RSRP, s.ServingNR.Valid })
	add(func(s trace.Sample) (float64, bool) { return s.NeighborNR.RSRP, s.NeighborNR.Valid })

	last := samples[len(samples)-1]
	sinr := last.ServingLTE.SINR
	if !last.ServingLTE.Valid {
		sinr = -20
	}
	rsrq := last.ServingLTE.RSRQ
	if !last.ServingLTE.Valid {
		rsrq = -20
	}
	gap := -40.0
	if last.ServingLTE.Valid && last.NeighborLTE.Valid {
		gap = last.NeighborLTE.RSRP - last.ServingLTE.RSRP
	}
	nrGap := -40.0
	if last.ServingNR.Valid && last.NeighborNR.Valid {
		nrGap = last.NeighborNR.RSRP - last.ServingNR.RSRP
	}
	nrAttached := 0.0
	if last.ServingNR.Valid {
		nrAttached = 1
	}
	band := float64(int(last.ServingNR.Band))
	f = append(f, sinr, rsrq, gap, nrGap, nrAttached, band)
	return f
}

// Label is a training example: features (or location sequence) and the HO
// class occurring within the following prediction window.
type Label struct {
	// Features is the GBC's lower-layer signal feature vector over the
	// history window (Mei et al.'s feature set, §7.3).
	Features []float64
	Seq      [][]float64 // location sequence for the LSTM
	Class    int         // index into Classes
}

// Classes enumerates the prediction classes: index 0 is "no handover".
func Classes() []cellular.HOType {
	return append([]cellular.HOType{cellular.HONone}, cellular.AllHOTypes()...)
}

// ClassIndex maps a handover type to its class index.
func ClassIndex(t cellular.HOType) int {
	for i, c := range Classes() {
		if c == t {
			return i
		}
	}
	return 0
}
