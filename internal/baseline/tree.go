package baseline

import (
	"math"
	"sort"
)

// treeNode is one node of a CART regression tree.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	value     float64
	leaf      bool
}

// regTree is a depth-limited least-squares regression tree, the weak
// learner inside the gradient boosting classifier.
type regTree struct {
	root *treeNode
}

// treeParams tunes tree induction.
type treeParams struct {
	maxDepth    int
	minSamples  int
	minGain     float64
	maxFeatures int // 0 = all
}

// fitTree grows a regression tree on (X, y) with optional per-sample
// weights (nil = uniform).
func fitTree(X [][]float64, y []float64, idx []int, p treeParams) *regTree {
	if p.maxDepth == 0 {
		p.maxDepth = 3
	}
	if p.minSamples == 0 {
		p.minSamples = 8
	}
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	return &regTree{root: growNode(X, y, idx, p, 0)}
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseAt(y []float64, idx []int, mean float64) float64 {
	s := 0.0
	for _, i := range idx {
		d := y[i] - mean
		s += d * d
	}
	return s
}

func growNode(X [][]float64, y []float64, idx []int, p treeParams, depth int) *treeNode {
	mean := meanAt(y, idx)
	if depth >= p.maxDepth || len(idx) < p.minSamples {
		return &treeNode{leaf: true, value: mean}
	}
	parentSSE := sseAt(y, idx, mean)
	if parentSSE <= 1e-12 {
		return &treeNode{leaf: true, value: mean}
	}

	nFeat := len(X[0])
	bestGain := p.minGain
	bestFeat := -1
	bestThr := 0.0

	vals := make([]float64, 0, len(idx))
	for f := 0; f < nFeat; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		// Candidate thresholds at a handful of quantiles keeps induction
		// fast without hurting boosting quality.
		for _, q := range []float64{0.15, 0.3, 0.5, 0.7, 0.85} {
			thr := vals[int(q*float64(len(vals)-1))]
			var sl, sr, nl, nr float64
			for _, i := range idx {
				if X[i][f] <= thr {
					sl += y[i]
					nl++
				} else {
					sr += y[i]
					nr++
				}
			}
			if nl < 2 || nr < 2 {
				continue
			}
			ml, mr := sl/nl, sr/nr
			// SSE reduction = parentSSE - (SSE_l + SSE_r); computed via
			// the decomposition n_l*(m-m_l)^2 + n_r*(m-m_r)^2.
			gain := nl*(mean-ml)*(mean-ml) + nr*(mean-mr)*(mean-mr)
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = thr
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{leaf: true, value: mean}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      growNode(X, y, li, p, depth+1),
		right:     growNode(X, y, ri, p, depth+1),
	}
}

// predict returns the tree's output for one feature vector.
func (t *regTree) predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// clampLog guards softmax inputs.
func clampLog(v float64) float64 {
	if v > 30 {
		return 30
	}
	if v < -30 {
		return -30
	}
	return v
}

// softmax computes a numerically stable softmax in place.
func softmax(z []float64) []float64 {
	maxv := math.Inf(-1)
	for _, v := range z {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	out := make([]float64, len(z))
	for i, v := range z {
		out[i] = math.Exp(clampLog(v - maxv))
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
