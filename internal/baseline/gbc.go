package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/trace"
)

// GBCParams tunes the gradient boosting classifier.
type GBCParams struct {
	Rounds       int     // boosting iterations (default 40)
	LearningRate float64 // shrinkage (default 0.15)
	MaxDepth     int     // tree depth (default 3)
	WindowSize   int     // feature window in samples (default 20 = 1 s)
	// NegativeKeep is the fraction of "no HO" windows kept for training
	// (the raw stream is ~99.6% negative; default 0.08).
	NegativeKeep float64
	// Seed drives subsampling and tree construction; equal seeds give
	// identical models.
	Seed int64
}

func (p GBCParams) withDefaults() GBCParams {
	if p.Rounds == 0 {
		p.Rounds = 40
	}
	if p.LearningRate == 0 {
		p.LearningRate = 0.15
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 3
	}
	if p.WindowSize == 0 {
		p.WindowSize = 20
	}
	if p.NegativeKeep == 0 {
		p.NegativeKeep = 0.08
	}
	return p
}

// GBC is a multi-class gradient boosting classifier over lower-layer signal
// features, reproducing the approach of Mei et al. that the paper compares
// against. One regression tree per class per round fits the softmax
// residuals.
type GBC struct {
	params  GBCParams
	classes []cellular.HOType
	trees   [][]*regTree // [round][class]
	prior   []float64
}

// TrainGBC fits a GBC on labelled windows extracted from training logs.
func TrainGBC(examples []Label, params GBCParams) (*GBC, error) {
	params = params.withDefaults()
	if len(examples) == 0 {
		return nil, fmt.Errorf("baseline: no training examples")
	}
	classes := Classes()
	k := len(classes)
	n := len(examples)
	X := make([][]float64, n)
	Y := make([]int, n)
	for i, e := range examples {
		if len(e.Features) == 0 {
			return nil, fmt.Errorf("baseline: example %d has no features", i)
		}
		X[i] = e.Features
		Y[i] = e.Class
	}

	// Priors from class frequencies (log-odds init).
	prior := make([]float64, k)
	for _, y := range Y {
		prior[y]++
	}
	for c := range prior {
		p := (prior[c] + 1) / float64(n+k)
		prior[c] = clampLog(logit(p))
	}

	F := make([][]float64, n) // current scores per sample per class
	for i := range F {
		F[i] = append([]float64(nil), prior...)
	}

	g := &GBC{params: params, classes: classes, prior: prior}
	resid := make([]float64, n)
	for round := 0; round < params.Rounds; round++ {
		roundTrees := make([]*regTree, k)
		for c := 0; c < k; c++ {
			for i := range X {
				p := softmax(F[i])
				target := 0.0
				if Y[i] == c {
					target = 1
				}
				resid[i] = target - p[c]
			}
			tree := fitTree(X, resid, nil, treeParams{maxDepth: params.MaxDepth, minSamples: 10})
			roundTrees[c] = tree
			for i := range X {
				F[i][c] += params.LearningRate * tree.predict(X[i])
			}
		}
		g.trees = append(g.trees, roundTrees)
	}
	return g, nil
}

func logit(p float64) float64 {
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	return math.Log(p / (1 - p))
}

// Probabilities returns the class probability vector for a feature vector.
func (g *GBC) Probabilities(x []float64) []float64 {
	scores := append([]float64(nil), g.prior...)
	for _, round := range g.trees {
		for c, tree := range round {
			scores[c] += g.params.LearningRate * tree.predict(x)
		}
	}
	return softmax(scores)
}

// PredictClass returns the most likely class and its probability.
func (g *GBC) PredictClass(x []float64) (cellular.HOType, float64) {
	p := g.Probabilities(x)
	best, bp := 0, p[0]
	for c := 1; c < len(p); c++ {
		if p[c] > bp {
			best, bp = c, p[c]
		}
	}
	return g.classes[best], bp
}

// ExtractExamples builds labelled windows from a log: the feature window
// ending at each second, labelled with the HO type commanded in the next
// prediction window. Negative windows are subsampled for class balance.
func ExtractExamples(log *trace.Log, window time.Duration, params GBCParams) []Label {
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(params.Seed + 1))
	fw := NewFeatureWindow(params.WindowSize)
	var out []Label
	hi := 0
	nextBoundary := time.Duration(0)
	for _, s := range log.Samples {
		fw.Push(s)
		if s.Time < nextBoundary || !fw.Ready() {
			continue
		}
		nextBoundary = s.Time + window
		// Label: first HO within (s.Time, s.Time+window].
		for hi < len(log.Handovers) && log.Handovers[hi].Time <= s.Time {
			hi++
		}
		cls := 0
		if hi < len(log.Handovers) && log.Handovers[hi].Time <= s.Time+window {
			cls = ClassIndex(log.Handovers[hi].Type)
		}
		if cls == 0 && rng.Float64() > params.NegativeKeep {
			continue
		}
		out = append(out, Label{Features: fw.Features(), Class: cls})
	}
	return out
}

// GBCPredictor adapts a trained GBC to the core.Predictor interface for
// trace-driven evaluation.
type GBCPredictor struct {
	model  *GBC
	window *FeatureWindow
	// Threshold is the minimum positive-class probability required to emit
	// a HO prediction (default 0.5).
	Threshold float64
}

// NewGBCPredictor wraps a trained model.
func NewGBCPredictor(model *GBC) *GBCPredictor {
	return &GBCPredictor{model: model, window: NewFeatureWindow(model.params.WindowSize), Threshold: 0.5}
}

// OnSample feeds the rolling feature window.
func (p *GBCPredictor) OnSample(s trace.Sample) { p.window.Push(s) }

// OnReport is a no-op: the GBC uses lower-layer features only.
func (p *GBCPredictor) OnReport(cellular.MeasurementReport) {}

// OnHandover is a no-op: the GBC is trained offline.
func (p *GBCPredictor) OnHandover(cellular.HandoverEvent) {}

// Predict classifies the current window.
func (p *GBCPredictor) Predict() core.Prediction {
	if !p.window.Ready() {
		return core.Prediction{Type: cellular.HONone, Score: 1}
	}
	cls, prob := p.model.PredictClass(p.window.Features())
	if cls == cellular.HONone || prob < p.Threshold {
		return core.Prediction{Type: cellular.HONone, Score: 1}
	}
	return core.Prediction{Type: cls, Score: core.DefaultScores().Score(cls), Similarity: prob}
}
