package baseline_test

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

func walkLog(t *testing.T, seed int64, laps int) *trace.Log {
	t.Helper()
	log, err := sim.Run(sim.Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 2500,
		Laps:         laps,
		SpeedMPS:     1.4,
		BearerMode:   throughput.ModeSCG,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// splitLog cuts a log at the given fraction of its duration.
func splitLog(l *trace.Log, frac float64) (train, test *trace.Log) {
	cut := time.Duration(float64(l.Duration()) * frac)
	train = &trace.Log{Carrier: l.Carrier, Arch: l.Arch, RouteKind: l.RouteKind}
	test = &trace.Log{Carrier: l.Carrier, Arch: l.Arch, RouteKind: l.RouteKind}
	for _, s := range l.Samples {
		if s.Time < cut {
			train.Samples = append(train.Samples, s)
		} else {
			test.Samples = append(test.Samples, s)
		}
	}
	for _, r := range l.Reports {
		if r.Time < cut {
			train.Reports = append(train.Reports, r)
		} else {
			test.Reports = append(test.Reports, r)
		}
	}
	for _, h := range l.Handovers {
		if h.Time < cut {
			train.Handovers = append(train.Handovers, h)
		} else {
			test.Handovers = append(test.Handovers, h)
		}
	}
	return train, test
}

func TestGBCTrainsAndPredicts(t *testing.T) {
	log := walkLog(t, 21, 4)
	train, test := splitLog(log, 0.6)
	params := baseline.GBCParams{Seed: 1}
	examples := baseline.ExtractExamples(train, time.Second, params)
	if len(examples) < 50 {
		t.Fatalf("too few training examples: %d", len(examples))
	}
	pos := 0
	for _, e := range examples {
		if e.Class != 0 {
			pos++
		}
	}
	if pos == 0 {
		t.Fatal("no positive examples extracted")
	}
	model, err := baseline.TrainGBC(examples, params)
	if err != nil {
		t.Fatal(err)
	}
	ticks := core.Replay(baseline.NewGBCPredictor(model), test)
	ev := core.EvaluateEvents(ticks, test.Handovers, time.Second)
	t.Logf("GBC on %d test HOs: F1=%.3f P=%.3f R=%.3f", len(test.Handovers), ev.F1(), ev.Precision(), ev.Recall())
	if ev.TP+ev.FP+ev.FN == 0 {
		t.Fatal("GBC evaluation produced no events at all")
	}
	// Training-set probabilities should be sane (sum to 1).
	p := model.Probabilities(examples[0].Features)
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probabilities do not sum to 1: %v", sum)
	}
}

func TestLSTMTrainsAndPredicts(t *testing.T) {
	log := walkLog(t, 23, 3)
	train, test := splitLog(log, 0.6)
	params := baseline.LSTMParams{Seed: 2, Epochs: 4}
	seqs := baseline.ExtractSequences(train, time.Second, params)
	if len(seqs) < 30 {
		t.Fatalf("too few training sequences: %d", len(seqs))
	}
	model, err := baseline.TrainLSTM(seqs, params)
	if err != nil {
		t.Fatal(err)
	}
	ticks := core.Replay(baseline.NewLSTMPredictor(model), test)
	ev := core.EvaluateEvents(ticks, test.Handovers, time.Second)
	t.Logf("LSTM on %d test HOs: F1=%.3f P=%.3f R=%.3f", len(test.Handovers), ev.F1(), ev.Precision(), ev.Recall())
}

func TestPrognosOutperformsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	log := walkLog(t, 25, 6)
	train, test := splitLog(log, 0.6)

	gbcParams := baseline.GBCParams{Seed: 3}
	gbc, err := baseline.TrainGBC(baseline.ExtractExamples(train, time.Second, gbcParams), gbcParams)
	if err != nil {
		t.Fatal(err)
	}
	lstmParams := baseline.LSTMParams{Seed: 4, Epochs: 4}
	lstm, err := baseline.TrainLSTM(baseline.ExtractSequences(train, time.Second, lstmParams), lstmParams)
	if err != nil {
		t.Fatal(err)
	}

	// Prognos learns online over the whole trace but is scored on the same
	// test segment.
	prog, err := core.New(core.Config{
		EventConfigs:       ran.EventConfigsFor("OpX", cellular.ArchNSA),
		Arch:               cellular.ArchNSA,
		UseReportPredictor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	progTicks := core.Replay(prog, log)
	cut := test.Samples[0].Time
	var progTest []core.TickPrediction
	for _, tk := range progTicks {
		if tk.Time >= cut {
			progTest = append(progTest, tk)
		}
	}

	f1 := map[string]float64{}
	f1["prognos"] = core.EvaluateEvents(progTest, test.Handovers, time.Second).F1()
	f1["gbc"] = core.EvaluateEvents(core.Replay(baseline.NewGBCPredictor(gbc), test), test.Handovers, time.Second).F1()
	f1["lstm"] = core.EvaluateEvents(core.Replay(baseline.NewLSTMPredictor(lstm), test), test.Handovers, time.Second).F1()
	t.Logf("F1: prognos=%.3f gbc=%.3f lstm=%.3f", f1["prognos"], f1["gbc"], f1["lstm"])

	if f1["prognos"] <= f1["gbc"] {
		t.Errorf("Prognos (%.3f) must outperform GBC (%.3f), Table 3", f1["prognos"], f1["gbc"])
	}
	if f1["prognos"] <= f1["lstm"] {
		t.Errorf("Prognos (%.3f) must outperform LSTM (%.3f), Table 3", f1["prognos"], f1["lstm"])
	}
}
