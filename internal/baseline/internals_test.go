package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/trace"
)

func TestSoftmax(t *testing.T) {
	p := softmax([]float64{1, 2, 3})
	sum := 0.0
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Error("softmax must preserve ordering")
		}
	}
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
	// Numerical stability with huge logits.
	p = softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Error("softmax overflowed")
	}
}

func TestRegressionTreeFitsStep(t *testing.T) {
	// y = 1 when x0 > 0.5 else 0: a depth-1 tree should nail it.
	var X [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		x := rng.Float64()
		X = append(X, []float64{x, rng.Float64()})
		if x > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	tree := fitTree(X, y, nil, treeParams{maxDepth: 2, minSamples: 4})
	errs := 0
	for i := range X {
		pred := tree.predict(X[i])
		if math.Abs(pred-y[i]) > 0.3 {
			errs++
		}
	}
	if float64(errs)/float64(len(X)) > 0.1 {
		t.Errorf("tree misfit %d/%d samples on a step function", errs, len(X))
	}
}

func TestRegressionTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	tree := fitTree(X, y, nil, treeParams{maxDepth: 3, minSamples: 2})
	if got := tree.predict([]float64{2.5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("constant target predicted %v", got)
	}
}

func TestFeatureWindow(t *testing.T) {
	w := NewFeatureWindow(4)
	if w.Ready() {
		t.Error("empty window ready")
	}
	for i := 0; i < 4; i++ {
		w.Push(trace.Sample{ServingLTE: trace.CellObs{Valid: true, RSRP: float64(-90 - i)}})
	}
	if !w.Ready() {
		t.Error("full window not ready")
	}
	f := w.Features()
	if len(f) != NumFeatures {
		t.Fatalf("feature vector length %d, want %d", len(f), NumFeatures)
	}
	// First block is serving-LTE RSRP stats: mean, min, max, slope, valid.
	if f[0] > -90 || f[0] < -93 {
		t.Errorf("mean RSRP feature %v", f[0])
	}
	if f[1] != -93 || f[2] != -90 {
		t.Errorf("min/max features %v/%v", f[1], f[2])
	}
	if f[3] >= 0 {
		t.Errorf("declining series slope %v", f[3])
	}
	if f[4] != 1 {
		t.Errorf("validity fraction %v", f[4])
	}
	// Missing NR leg encodes the floor with zero validity.
	if f[10] != -140 || f[14] != 0 {
		t.Errorf("missing NR features: %v / %v", f[10], f[14])
	}
}

func TestClasses(t *testing.T) {
	cs := Classes()
	if cs[0] != cellular.HONone {
		t.Error("class 0 must be the negative class")
	}
	if len(cs) != 8 {
		t.Errorf("%d classes", len(cs))
	}
	if ClassIndex(cellular.HOSCGC) == 0 {
		t.Error("SCGC must map to a positive class")
	}
	if ClassIndex(cellular.HOType(99)) != 0 {
		t.Error("unknown types default to the negative class")
	}
}

// TestLSTMGradient numerically verifies the BPTT gradients of one LSTM
// layer: analytic dL/dw must match (L(w+e)-L(w-e))/2e.
func TestLSTMGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	layer := newLSTMLayer(3, 4, rng)
	x := []float64{0.3, -0.2, 0.5}
	hPrev := []float64{0.1, -0.1, 0.2, 0}
	cPrev := []float64{0, 0.2, -0.3, 0.1}

	// Loss = sum(h): dL/dh = 1.
	loss := func() float64 {
		cache := layer.forward(x, hPrev, cPrev)
		s := 0.0
		for _, v := range cache.h {
			s += v
		}
		return s
	}

	cache := layer.forward(x, hPrev, cPrev)
	dh := []float64{1, 1, 1, 1}
	dc := make([]float64, 4)
	for i := range layer.wx.g {
		layer.wx.g[i] = 0
	}
	layer.backward(cache, dh, dc)

	const eps = 1e-5
	checked := 0
	for _, idx := range []int{0, 5, 17, 30, len(layer.wx.w) - 1} {
		orig := layer.wx.w[idx]
		layer.wx.w[idx] = orig + eps
		lp := loss()
		layer.wx.w[idx] = orig - eps
		lm := loss()
		layer.wx.w[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := layer.wx.g[idx]
		if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("wx[%d]: analytic %v vs numeric %v", idx, analytic, numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

func TestLSTMLearnsToSeparate(t *testing.T) {
	// Two trivially separable sequence classes: constant positive vs
	// constant negative inputs. A working trainer must fit them.
	var examples []Label
	for i := 0; i < 40; i++ {
		pos := make([][]float64, 6)
		neg := make([][]float64, 6)
		for k := range pos {
			pos[k] = []float64{1, 1, 1, 1, 1}
			neg[k] = []float64{-1, -1, -1, -1, -1}
		}
		examples = append(examples, Label{Seq: pos, Class: 1}, Label{Seq: neg, Class: 0})
	}
	m, err := TrainLSTM(examples, LSTMParams{Hidden: 8, SeqLen: 6, Epochs: 25, Seed: 3, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range examples {
		cls, _ := m.PredictClass(ex.Seq)
		if ClassIndex(cls) == ex.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.95 {
		t.Errorf("LSTM accuracy %v on a separable toy problem", acc)
	}
}

func TestGBCLearnsToSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var examples []Label
	for i := 0; i < 300; i++ {
		f := make([]float64, NumFeatures)
		for d := range f {
			f[d] = rng.NormFloat64()
		}
		cls := 0
		if f[0] > 0.2 {
			cls = 1
		}
		examples = append(examples, Label{Features: f, Class: cls})
	}
	m, err := TrainGBC(examples, GBCParams{Rounds: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range examples {
		cls, _ := m.PredictClass(ex.Features)
		if ClassIndex(cls) == ex.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.9 {
		t.Errorf("GBC accuracy %v on a separable toy problem", acc)
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := TrainGBC(nil, GBCParams{}); err == nil {
		t.Error("GBC accepted empty training set")
	}
	if _, err := TrainLSTM(nil, LSTMParams{}); err == nil {
		t.Error("LSTM accepted empty training set")
	}
}
