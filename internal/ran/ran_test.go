package ran

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cellular"
)

func TestAnchoredSubseq(t *testing.T) {
	cases := []struct {
		hist, seq []string
		want      bool
	}{
		{[]string{"A2", "A3"}, []string{"A2", "A3"}, true},
		{[]string{"A2", "B1", "A3"}, []string{"A2", "A3"}, true},
		{[]string{"A3", "A2"}, []string{"A2", "A3"}, false}, // wrong anchor
		{[]string{"A3"}, []string{"A2", "A3"}, false},       // missing prefix
		{[]string{"A2", "A3"}, []string{"A3"}, true},
		{nil, []string{"A3"}, false},
		{[]string{"A3"}, nil, false},
	}
	for _, c := range cases {
		if got := anchoredSubseq(c.hist, c.seq); got != c.want {
			t.Errorf("anchoredSubseq(%v, %v) = %v, want %v", c.hist, c.seq, got, c.want)
		}
	}
}

func TestPolicyGuards(t *testing.T) {
	p := PolicyFor("OpX", cellular.ArchNSA)
	// NR-B1 with no NR leg → SCGA.
	ho, rule := p.Decide([]string{"NR-B1"}, Context{Arch: cellular.ArchNSA, NRAttached: false})
	if ho != cellular.HOSCGA || rule == nil {
		t.Fatalf("B1/no-leg → %v", ho)
	}
	// NR-B1 while attached (without a preceding NR-A2) → nothing.
	if ho, _ := p.Decide([]string{"NR-B1"}, Context{Arch: cellular.ArchNSA, NRAttached: true}); ho != cellular.HONone {
		t.Fatalf("B1/attached → %v, want none", ho)
	}
	// NR-A2 then NR-B1 while attached → SCGC.
	if ho, _ := p.Decide([]string{"NR-A2", "NR-B1"}, Context{Arch: cellular.ArchNSA, NRAttached: true}); ho != cellular.HOSCGC {
		t.Fatalf("A2,B1/attached → %v, want SCGC", ho)
	}
	// Two NR-A2 → SCGR.
	if ho, _ := p.Decide([]string{"NR-A2", "NR-A2"}, Context{Arch: cellular.ArchNSA, NRAttached: true}); ho != cellular.HOSCGR {
		t.Fatalf("A2,A2/attached → %v, want SCGR", ho)
	}
	// NR-A3 same/diff gNB → SCGM/SCGC.
	if ho, _ := p.Decide([]string{"NR-A3"}, Context{NRAttached: true, TargetSameGNB: true}); ho != cellular.HOSCGM {
		t.Fatalf("A3 same-gNB → %v", ho)
	}
	if ho, _ := p.Decide([]string{"NR-A3"}, Context{NRAttached: true, TargetSameGNB: false}); ho != cellular.HOSCGC {
		t.Fatalf("A3 diff-gNB → %v", ho)
	}
	// LTE anchor: OpX needs A2 before A3.
	if ho, _ := p.Decide([]string{"A3"}, Context{NRAttached: true}); ho != cellular.HONone {
		t.Fatalf("lone A3 fired %v for OpX", ho)
	}
	if ho, _ := p.Decide([]string{"A2", "A3"}, Context{NRAttached: true}); ho != cellular.HOMNBH {
		t.Fatalf("A2,A3 attached → %v, want MNBH", ho)
	}
	if ho, _ := p.Decide([]string{"A2", "A3"}, Context{NRAttached: false}); ho != cellular.HOLTEH {
		t.Fatalf("A2,A3 detached → %v, want LTEH", ho)
	}
}

func TestCarrierPoliciesDiffer(t *testing.T) {
	// OpY acts on a lone A3; OpZ needs A2,A5.
	opy := PolicyFor("OpY", cellular.ArchLTE)
	if ho, _ := opy.Decide([]string{"A3"}, Context{}); ho != cellular.HOLTEH {
		t.Error("OpY must act on a lone A3")
	}
	opz := PolicyFor("OpZ", cellular.ArchLTE)
	if ho, _ := opz.Decide([]string{"A3"}, Context{}); ho != cellular.HONone {
		t.Error("OpZ must not act on A3")
	}
	if ho, _ := opz.Decide([]string{"A2", "A5"}, Context{}); ho != cellular.HOLTEH {
		t.Error("OpZ must act on A2,A5")
	}
}

func TestSAPolicy(t *testing.T) {
	p := PolicyFor("OpY", cellular.ArchSA)
	if ho, _ := p.Decide([]string{"NR-A3"}, Context{Arch: cellular.ArchSA}); ho != cellular.HOMCGH {
		t.Error("SA NR-A3 must trigger MCGH")
	}
}

func TestEngineHistoryAging(t *testing.T) {
	e := NewEngine(PolicyFor("OpX", cellular.ArchLTE))
	// A2 at t=0; A3 arrives 20 s later: the stale A2 must not pair.
	mr := func(ty cellular.EventType, at time.Duration) cellular.MeasurementReport {
		return cellular.MeasurementReport{Time: at, Event: ty, Tech: cellular.TechLTE}
	}
	if d := e.OnReport(mr(cellular.EventA2, 0), Context{}); d != nil {
		t.Fatal("A2 alone decided")
	}
	if d := e.OnReport(mr(cellular.EventA3, 20*time.Second), Context{}); d != nil {
		t.Fatalf("stale A2 paired with fresh A3: %v", d.Type)
	}
	// Fresh pair works.
	if d := e.OnReport(mr(cellular.EventA2, 21*time.Second), Context{}); d != nil {
		t.Fatal("A2 alone decided")
	}
	d := e.OnReport(mr(cellular.EventA3, 21*time.Second+200*time.Millisecond), Context{})
	if d == nil || d.Type != cellular.HOLTEH {
		t.Fatalf("fresh A2,A3 → %v", d)
	}
}

func TestEngineBusy(t *testing.T) {
	e := NewEngine(PolicyFor("OpY", cellular.ArchLTE))
	mr := cellular.MeasurementReport{Time: 0, Event: cellular.EventA3, Tech: cellular.TechLTE}
	d := e.OnReport(mr, Context{})
	if d == nil {
		t.Fatal("no decision")
	}
	e.Begin(500 * time.Millisecond)
	if !e.Busy(100 * time.Millisecond) {
		t.Error("engine should be busy")
	}
	mr.Time = 200 * time.Millisecond
	if d := e.OnReport(mr, Context{}); d != nil {
		t.Error("decision during busy window")
	}
	if e.Busy(time.Second) {
		t.Error("busy after completion time")
	}
	if len(e.History()) == 0 {
		t.Error("history should accumulate during busy")
	}
}

func TestSampleDurationsCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	meanOf := func(p DurationParams) (t1m, t2m float64) {
		var s1, s2 time.Duration
		const n = 2000
		for i := 0; i < n; i++ {
			t1, t2 := SampleDurations(p, rng)
			if t1 <= 0 || t2 <= 0 {
				t.Fatal("non-positive duration")
			}
			s1 += t1
			s2 += t2
		}
		return float64(s1/n) / 1e6, float64(s2/n) / 1e6
	}
	lte1, lte2 := meanOf(DurationParams{Type: cellular.HOLTEH, Band: cellular.BandMid})
	if tot := lte1 + lte2; tot < 60 || tot > 95 {
		t.Errorf("LTE HO total %v ms, want ≈76 (§5.2)", tot)
	}
	scgc1, scgc2 := meanOf(DurationParams{Type: cellular.HOSCGC, Band: cellular.BandLow})
	if tot := scgc1 + scgc2; tot < 180 || tot > 260 {
		t.Errorf("SCGC total %v ms", tot)
	}
	// mmWave execution runs 42-45% longer.
	_, lowT2 := meanOf(DurationParams{Type: cellular.HOSCGM, Band: cellular.BandLow})
	_, mmwT2 := meanOf(DurationParams{Type: cellular.HOSCGM, Band: cellular.BandMMWave})
	if r := mmwT2 / lowT2; r < 1.3 || r > 1.6 {
		t.Errorf("mmWave T2 factor %v, want ≈1.43", r)
	}
	// Co-location shortens preparation.
	co1, _ := meanOf(DurationParams{Type: cellular.HOSCGC, Band: cellular.BandLow, CoLocated: true})
	if co1 >= scgc1 {
		t.Errorf("co-located T1 %v must be below non-co-located %v", co1, scgc1)
	}
}

func TestSignalingCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mean := func(ty cellular.HOType, b cellular.Band) float64 {
		tot := 0
		for i := 0; i < 500; i++ {
			tot += SignalingFor(ty, b, rng).Total()
		}
		return float64(tot) / 500
	}
	lte := mean(cellular.HOLTEH, cellular.BandMid)
	sa := mean(cellular.HOMCGH, cellular.BandLow)
	if sa >= lte {
		t.Errorf("SA per-HO signalling (%v) must be below LTE (%v)", sa, lte)
	}
	low := mean(cellular.HOSCGM, cellular.BandLow)
	mmw := mean(cellular.HOSCGM, cellular.BandMMWave)
	if mmw < 3*low {
		t.Errorf("mmWave signalling %v must dwarf low-band %v (beam management)", mmw, low)
	}
}

func TestEventConfigsPerCarrier(t *testing.T) {
	hasEvent := func(cfgs []cellular.EventConfig, ty cellular.EventType, tech cellular.Tech) bool {
		for _, c := range cfgs {
			if c.Type == ty && c.Tech == tech {
				return true
			}
		}
		return false
	}
	opz := EventConfigsFor("OpZ", cellular.ArchLTE)
	if hasEvent(opz, cellular.EventA3, cellular.TechLTE) {
		t.Error("OpZ must not configure LTE A3")
	}
	if !hasEvent(opz, cellular.EventA5, cellular.TechLTE) {
		t.Error("OpZ must configure A5")
	}
	nsa := EventConfigsFor("OpX", cellular.ArchNSA)
	if !hasEvent(nsa, cellular.EventB1, cellular.TechNR) {
		t.Error("NSA must configure B1")
	}
	sa := EventConfigsFor("OpY", cellular.ArchSA)
	if hasEvent(sa, cellular.EventB1, cellular.TechNR) {
		t.Error("SA must not configure B1")
	}
	for _, c := range sa {
		if c.Tech != cellular.TechNR {
			t.Error("SA configures only NR measurements")
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Sequence: []string{"A2", "A5"}, HO: cellular.HOLTEH}
	if r.String() != "[A2,A5] -> LTEH" {
		t.Errorf("Rule.String() = %q", r.String())
	}
}
