// Package ran implements the network side of mobility management: the
// carrier-specific "black-box" handover decision logic (an MR-sequence →
// HO-type policy, §7.1), the handover procedure with its preparation (T1)
// and execution (T2) stages (§5.2, Fig. 1), and per-layer signalling
// accounting (§5.1).
package ran

import (
	"fmt"
	"strings"

	"repro/internal/cellular"
	"repro/internal/policygen"
)

// Guard constrains when a policy rule may fire, capturing decision context
// a bare MR sequence cannot express (e.g. SCGM vs SCGC both follow NR-A3,
// distinguished by whether the target NR cell is on the serving gNB).
type Guard int

// Rule guards.
const (
	// GuardNone: rule fires whenever its MR sequence matches.
	GuardNone Guard = iota
	// GuardSameGNB: target NR cell is hosted by the serving gNB (tower).
	GuardSameGNB
	// GuardDiffGNB: target NR cell is hosted by a different gNB.
	GuardDiffGNB
	// GuardNRAttached: the UE currently has a 5G leg.
	GuardNRAttached
	// GuardNoNRLeg: the UE currently has no 5G leg.
	GuardNoNRLeg
)

// String names the guard.
func (g Guard) String() string {
	switch g {
	case GuardNone:
		return "none"
	case GuardSameGNB:
		return "same-gnb"
	case GuardDiffGNB:
		return "diff-gnb"
	case GuardNRAttached:
		return "nr-attached"
	case GuardNoNRLeg:
		return "no-nr-leg"
	default:
		return fmt.Sprintf("Guard(%d)", int(g))
	}
}

// Rule maps a suffix of the recent MR-key sequence to a handover decision.
type Rule struct {
	// Sequence is the MR-key suffix that triggers the rule, oldest first,
	// e.g. ["A2", "A5"]. Keys follow cellular.MeasurementReport.Key
	// ("A3", "NR-B1", ...).
	Sequence []string
	// Guard restricts when the rule may fire (co-location, NR attachment);
	// GuardNone admits everything.
	Guard Guard
	// HO is the handover type the carrier runs for this sequence.
	HO cellular.HOType
}

// String renders the rule in the paper's pattern notation, e.g.
// "[A2,A5] -> LTEH".
func (r Rule) String() string {
	return fmt.Sprintf("[%s] -> %s", strings.Join(r.Sequence, ","), r.HO)
}

// Context carries the decision-time facts a guard may consult.
type Context struct {
	// Arch is the deployment architecture the UE is operating under.
	Arch cellular.Arch
	// NRAttached reports whether the UE currently holds an NR leg (an
	// SCG); SCG-addition vs. SCG-change decisions hinge on it (§4.1).
	NRAttached bool
	// TargetSameGNB reports whether the best NR neighbour is hosted by the
	// serving gNB (only meaningful for NR-A3 decisions).
	TargetSameGNB bool
}

// admits reports whether the guard allows the rule in this context.
func (g Guard) admits(ctx Context) bool {
	switch g {
	case GuardSameGNB:
		return ctx.TargetSameGNB
	case GuardDiffGNB:
		return !ctx.TargetSameGNB
	case GuardNRAttached:
		return ctx.NRAttached
	case GuardNoNRLeg:
		return !ctx.NRAttached
	default:
		return true
	}
}

// Policy is one carrier's handover decision logic for one architecture.
// Rules are checked in order; the first whose sequence suffix-matches the
// recent MR history and whose guard admits the context wins.
type Policy struct {
	// Name labels the policy for diagnostics, e.g. "OpX/NSA".
	Name string
	// Rules are checked in order; earlier rules take precedence (the
	// paper's MNBH-before-SCG orderings live here, §7.1).
	Rules []Rule
}

// Decide matches the recent MR-key history (oldest first) against the
// policy. It returns the decided HO type and the matched rule, or HONone.
//
// A rule matches when its final event is the newest report and its earlier
// events appear, in order, somewhere in the current phase's history. This
// anchored-subsequence semantics is robust to interleaved reports from
// other configured events — the network reacts to the report it just
// received, in the context of what preceded it.
func (p *Policy) Decide(history []string, ctx Context) (cellular.HOType, *Rule) {
	for i := range p.Rules {
		r := &p.Rules[i]
		if !r.Guard.admits(ctx) {
			continue
		}
		if anchoredSubseq(history, r.Sequence) {
			return r.HO, r
		}
	}
	return cellular.HONone, nil
}

// anchoredSubseq reports whether seq's last element equals the newest
// history entry and the remaining prefix is an in-order subsequence of the
// earlier history.
func anchoredSubseq(history, seq []string) bool {
	if len(seq) == 0 || len(history) == 0 {
		return false
	}
	if history[len(history)-1] != seq[len(seq)-1] {
		return false
	}
	prefix := seq[:len(seq)-1]
	hi := 0
	rest := history[:len(history)-1]
	for _, want := range prefix {
		found := false
		for hi < len(rest) {
			if rest[hi] == want {
				found = true
				hi++
				break
			}
			hi++
		}
		if !found {
			return false
		}
	}
	return true
}

// PolicyFor returns the (synthetic) carrier policy for an architecture.
// The three carriers use deliberately different LTE-side sequences so the
// decision learner faces genuinely distinct per-carrier patterns, as the
// paper observed (§7.1: "the policy-based HO logic is unique for each HO
// type"). Since the policy-as-data refactor this is a lookup into the
// policygen builtin portfolios — the golden test in portfolio_test.go pins
// the result against the original hand-coded tables.
func PolicyFor(carrier string, arch cellular.Arch) *Policy {
	p := policygen.BuiltinOrDefault(carrier)
	return PolicyFromPortfolio(&p, arch)
}

// EventConfigsFor returns the measurement configurations a serving cell
// pushes to the UE under the given carrier/architecture (step 1 of Fig. 1).
// Carriers configure only the events their policies consume, which is why
// the phase patterns a decision learner observes differ per carrier (§7.1).
// Threshold values live in the policygen builtin portfolios and are
// representative of commercial configurations reported in prior
// measurement work.
func EventConfigsFor(carrier string, arch cellular.Arch) []cellular.EventConfig {
	p := policygen.BuiltinOrDefault(carrier)
	return EventConfigsFromPortfolio(&p, arch)
}
