package ran

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/policygen"
)

func sec(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }

// ho builds a cell-changing handover event for controller feeding.
func ho(typ cellular.HOType, src, dst string, at time.Duration) cellular.HandoverEvent {
	return cellular.HandoverEvent{Type: typ, SourceCell: src, TargetCell: dst, Time: at}
}

func TestAdaptiveConfigEnabled(t *testing.T) {
	cases := []struct {
		name string
		cfg  *AdaptiveConfig
		want bool
	}{
		{"nil", nil, false},
		{"zero", &AdaptiveConfig{}, false},
		{"early-prep", &AdaptiveConfig{EarlyPrep: true}, true},
		{"skip-ahead", &AdaptiveConfig{SkipAhead: true}, true},
		{"adapt-ttt", &AdaptiveConfig{AdaptTTT: true}, true},
		{"default", DefaultAdaptive(), true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("%s: Enabled() = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestForecastArmAndResolve walks the armed-forecast lifecycle: low
// confidence is ignored, a confident forecast arms once (extension is not a
// new forecast), a matching handover resolves as a hit, and an unrenewed
// forecast lapses as a miss.
func TestForecastArmAndResolve(t *testing.T) {
	a := NewAdaptiveController(*DefaultAdaptive())

	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.1}, sec(1))
	if got := a.Stats().Forecasts; got != 0 {
		t.Fatalf("low-confidence forecast armed (%d)", got)
	}
	a.OnForecast(Forecast{Type: cellular.HONone, Confidence: 0.9}, sec(1))
	if got := a.Stats().Forecasts; got != 0 {
		t.Fatalf("HONone forecast armed (%d)", got)
	}

	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(1)}, sec(2))
	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(1)}, sec(2.05))
	if got := a.Stats().Forecasts; got != 1 {
		t.Fatalf("extension re-armed: %d forecasts, want 1", got)
	}
	a.OnHandover(ho(cellular.HOSCGC, "nr1", "nr2", sec(2.5)), sec(2.5))
	s := a.Stats()
	if s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("matching handover: hits=%d misses=%d, want 1/0", s.Hits, s.Misses)
	}

	// Arm again, then let it lapse: the next forecast call past armedUntil
	// resolves it as a miss.
	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(1)}, sec(10))
	a.OnForecast(Forecast{Type: cellular.HONone, Confidence: 0}, sec(20))
	s = a.Stats()
	if s.Misses != 1 {
		t.Fatalf("lapsed forecast: misses=%d, want 1", s.Misses)
	}

	// A type flip without a handover is also a miss, and re-arms.
	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(1)}, sec(30))
	a.OnForecast(Forecast{Type: cellular.HOMNBH, Confidence: 0.9, Lead: sec(1)}, sec(30.5))
	s = a.Stats()
	if s.Misses != 2 || s.Forecasts != 4 {
		t.Fatalf("type flip: misses=%d forecasts=%d, want 2/4", s.Misses, s.Forecasts)
	}
}

// TestApplyPrep pins the early-preparation credit rules: no credit without a
// matching armed forecast, T1 keeps its 20% floor, T2 credit ramps to
// ExecCredit, and the savings are tallied.
func TestApplyPrep(t *testing.T) {
	a := NewAdaptiveController(*DefaultAdaptive())
	t1, t2 := 100*time.Millisecond, 50*time.Millisecond

	// Not armed: unchanged.
	g1, g2 := a.ApplyPrep(cellular.HOSCGC, sec(1), t1, t2)
	if g1 != t1 || g2 != t2 {
		t.Fatalf("unarmed prep changed durations: %v %v", g1, g2)
	}

	// Armed with the wrong type: unchanged.
	a.OnForecast(Forecast{Type: cellular.HOMNBH, Confidence: 0.9, Lead: sec(5)}, sec(1))
	g1, g2 = a.ApplyPrep(cellular.HOSCGC, sec(2), t1, t2)
	if g1 != t1 || g2 != t2 {
		t.Fatalf("type-mismatched prep changed durations: %v %v", g1, g2)
	}

	// Armed long enough for full credit: T1 at its floor, T2 at ExecCredit.
	a = NewAdaptiveController(*DefaultAdaptive())
	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(5)}, sec(1))
	g1, g2 = a.ApplyPrep(cellular.HOSCGC, sec(3), t1, t2)
	if want := t1 / 5; g1 != want {
		t.Errorf("T1 floor: got %v, want %v", g1, want)
	}
	if want := t2 - time.Duration(float64(t2)*0.4); g2 != want {
		t.Errorf("T2 credit: got %v, want %v", g2, want)
	}
	s := a.Stats()
	if s.EarlyPreps != 1 || s.PrepSavedMS <= 0 {
		t.Errorf("prep stats: %+v", s)
	}

	// EarlyPrep disabled: never credited.
	cfg := *DefaultAdaptive()
	cfg.EarlyPrep = false
	a = NewAdaptiveController(cfg)
	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(5)}, sec(1))
	g1, g2 = a.ApplyPrep(cellular.HOSCGC, sec(3), t1, t2)
	if g1 != t1 || g2 != t2 {
		t.Errorf("disabled prep changed durations: %v %v", g1, g2)
	}
}

// TestSkipAheadActive pins the skip-ahead gate: only armed SCG-mobility
// forecasts activate it, and only with the control enabled.
func TestSkipAheadActive(t *testing.T) {
	cases := []struct {
		typ  cellular.HOType
		want bool
	}{
		{cellular.HOSCGA, true},
		{cellular.HOSCGC, true},
		{cellular.HOSCGM, true},
		{cellular.HOMNBH, false},
		{cellular.HOLTEH, false},
	}
	for _, c := range cases {
		a := NewAdaptiveController(*DefaultAdaptive())
		a.OnForecast(Forecast{Type: c.typ, Confidence: 0.9, Lead: sec(5)}, sec(1))
		if got := a.SkipAheadActive(); got != c.want {
			t.Errorf("%s: SkipAheadActive = %v, want %v", c.typ, got, c.want)
		}
	}
	cfg := *DefaultAdaptive()
	cfg.SkipAhead = false
	a := NewAdaptiveController(cfg)
	a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(5)}, sec(1))
	if a.SkipAheadActive() {
		t.Error("disabled skip-ahead reported active")
	}
}

// TestStanceMachine drives the relax/calm cycle: a ping-pong relaxes the
// stance (rate-limited), repeated ping-pong saturates at maxRelaxStance, and
// a calm period unwinds one step at a time.
func TestStanceMachine(t *testing.T) {
	cfg := *DefaultAdaptive()
	a := NewAdaptiveController(cfg)

	if _, _, ok := a.ReconfigDue(sec(1)); ok {
		t.Fatal("base stance asked for a reconfig")
	}

	// A→B then B→A inside the window: ping-pong, stance relaxes.
	a.OnHandover(ho(cellular.HOMNBH, "a", "b", sec(10)), sec(10))
	a.OnHandover(ho(cellular.HOMNBH, "b", "a", sec(12)), sec(12))
	scale, delta, ok := a.ReconfigDue(sec(12))
	if !ok {
		t.Fatal("ping-pong did not trigger a relax reconfig")
	}
	if scale != cfg.RelaxTTTScale || delta != cfg.RelaxHysteresisDB {
		t.Fatalf("relax params: scale=%v delta=%v", scale, delta)
	}

	// Another ping-pong immediately: desired moves but the rate limit holds
	// the rewrite until ReconfMinGap has passed.
	a.OnHandover(ho(cellular.HOMNBH, "a", "b", sec(13)), sec(13))
	a.OnHandover(ho(cellular.HOMNBH, "b", "a", sec(13.5)), sec(13.5))
	if _, _, ok := a.ReconfigDue(sec(13.5)); ok {
		t.Fatal("reconfig applied inside ReconfMinGap")
	}
	scale, delta, ok = a.ReconfigDue(sec(16))
	if !ok {
		t.Fatal("second relax never applied")
	}
	if want := cfg.RelaxTTTScale * cfg.RelaxTTTScale; scale != want || delta != 2*cfg.RelaxHysteresisDB {
		t.Fatalf("stance-2 params: scale=%v delta=%v, want %v/%v", scale, delta, want, 2*cfg.RelaxHysteresisDB)
	}

	// A third ping-pong: saturated at maxRelaxStance, no further rewrite.
	a.OnHandover(ho(cellular.HOMNBH, "a", "b", sec(17)), sec(17))
	a.OnHandover(ho(cellular.HOMNBH, "b", "a", sec(17.5)), sec(17.5))
	if _, _, ok := a.ReconfigDue(sec(25)); ok {
		t.Fatal("stance exceeded maxRelaxStance")
	}

	// Calm: one step unwinds per CalmAfter.
	calmAt := sec(17.5) + cfg.CalmAfter + sec(1)
	scale, _, ok = a.ReconfigDue(calmAt)
	if !ok {
		t.Fatal("calm period did not unwind a relax step")
	}
	if scale != cfg.RelaxTTTScale {
		t.Fatalf("after one unwind: scale=%v, want %v", scale, cfg.RelaxTTTScale)
	}
	// Every within-window return counts as a ping-pong (the a↔b churn above
	// flips five times), and the calm unwind is tallied as a tighten step.
	s := a.Stats()
	if s.PingPongs != 5 || s.Relaxes != 2 || s.Tightens != 1 || s.FinalStance != 1 {
		t.Fatalf("stance stats: %+v", s)
	}
}

// TestTightenRequiresEffectiveSpec pins that the default (neutral) tighten
// stance is never entered, while a spec that actually tightens is — but only
// on a proven hit record.
func TestTightenRequiresEffectiveSpec(t *testing.T) {
	run := func(cfg AdaptiveConfig) *AdaptiveController {
		a := NewAdaptiveController(cfg)
		// Twelve straight hits: hitEMA climbs well above tightenAbove.
		for i := 0; i < 12; i++ {
			at := sec(float64(10 * (i + 1)))
			a.OnForecast(Forecast{Type: cellular.HOSCGC, Confidence: 0.9, Lead: sec(2)}, at)
			a.OnHandover(ho(cellular.HOSCGC, "x", "y", at+sec(1)), at+sec(1))
			// Alternate directions would ping-pong; move on distinct cells.
			a.lastValid = false
		}
		return a
	}

	a := run(*DefaultAdaptive()) // neutral tighten params
	if _, _, ok := a.ReconfigDue(sec(200)); ok {
		t.Error("neutral tighten spec entered the tighten stance")
	}

	cfg := *DefaultAdaptive()
	cfg.TightenTTTScale = 0.5
	cfg.TightenHysteresisDB = 0.5
	a = run(cfg)
	scale, delta, ok := a.ReconfigDue(sec(200))
	if !ok {
		t.Fatal("effective tighten spec never tightened on a proven record")
	}
	if scale != 0.5 || delta != -0.5 {
		t.Errorf("tighten params: scale=%v delta=%v", scale, delta)
	}
	if s := a.Stats(); s.Tightens != 1 || s.FinalStance != -1 {
		t.Errorf("tighten stats: %+v", s)
	}
}

// TestAdaptEventConfigs pins the stance-to-event-table compilation: TTTs
// scale within the 3GPP enumeration, hysteresis shifts clamp to the valid
// range, and the base table is untouched.
func TestAdaptEventConfigs(t *testing.T) {
	base := []cellular.EventConfig{
		{Type: cellular.EventA3, Hysteresis: 2, TTT: 160 * time.Millisecond},
		{Type: cellular.EventA5, Hysteresis: 14.5, TTT: 0},
	}
	out := AdaptEventConfigs(base, 2, 1)
	if base[0].TTT != 160*time.Millisecond || base[0].Hysteresis != 2 {
		t.Fatal("AdaptEventConfigs mutated the base table")
	}
	if out[0].TTT <= base[0].TTT {
		t.Errorf("relaxed TTT did not grow: %v", out[0].TTT)
	}
	if !policygen.ValidTTT(out[0].TTT) || !policygen.ValidTTT(out[1].TTT) {
		t.Errorf("scaled TTTs left the 3GPP enumeration: %v %v", out[0].TTT, out[1].TTT)
	}
	if out[0].Hysteresis != 3 {
		t.Errorf("hysteresis shift: got %v, want 3", out[0].Hysteresis)
	}
	if out[1].Hysteresis != policygen.MaxHysteresisDB {
		t.Errorf("hysteresis clamp: got %v, want %v", out[1].Hysteresis, policygen.MaxHysteresisDB)
	}
	down := AdaptEventConfigs(base, 0.5, -5)
	if down[0].TTT >= base[0].TTT {
		t.Errorf("tightened TTT did not shrink: %v", down[0].TTT)
	}
	if down[0].Hysteresis != 0 {
		t.Errorf("hysteresis floor: got %v, want 0", down[0].Hysteresis)
	}
}

// TestAdaptiveFromPortfolio pins the portfolio compilation path.
func TestAdaptiveFromPortfolio(t *testing.T) {
	if AdaptiveFromPortfolio(nil) != nil {
		t.Error("nil portfolio compiled to a config")
	}
	p := policygen.Generate(1, 0)
	if AdaptiveFromPortfolio(&p) != nil {
		t.Error("static portfolio compiled to a config")
	}
	spec := policygen.DefaultAdaptiveSpec()
	p.Adaptive = &spec
	cfg := AdaptiveFromPortfolio(&p)
	if !cfg.Enabled() {
		t.Fatal("adaptive portfolio compiled to a disabled config")
	}
	if cfg.PingPongWindow != 5*time.Second || cfg.CalmAfter != 30*time.Second {
		t.Errorf("duration compilation: window=%v calm=%v", cfg.PingPongWindow, cfg.CalmAfter)
	}
}
