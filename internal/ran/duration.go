package ran

import (
	"math/rand"
	"time"

	"repro/internal/cellular"
)

// durSpec is a clamped-normal duration distribution in milliseconds.
type durSpec struct {
	mean, sigma, min, max float64
}

func (d durSpec) sample(rng *rand.Rand) time.Duration {
	v := d.mean + rng.NormFloat64()*d.sigma
	if v < d.min {
		v = d.min
	}
	if v > d.max {
		v = d.max
	}
	return time.Duration(v * float64(time.Millisecond))
}

// Stage duration specifications per HO type, calibrated to the paper's §5.2
// findings:
//
//   - LTE handovers average ~76 ms total, with T1 the smaller share.
//   - NSA handovers average ~167 ms total, with T1 ≈ 41% of the total and
//     T2 1.4–5.4× the LTE execution stage.
//   - SA handovers average ~110 ms with LTE-like median T1 but much higher
//     variance ("technical immaturity").
//   - mmWave execution runs 42–45% longer than low-band (beam management),
//     applied as a multiplier below.
//   - Non-co-located eNB/gNB adds cross-tower latency to NSA preparation
//     (≈13 ms measured end-to-end in Fig. 13).
var (
	t1Spec = map[cellular.HOType]durSpec{
		cellular.HOLTEH: {mean: 31, sigma: 8, min: 10, max: 70},
		cellular.HOMNBH: {mean: 68, sigma: 15, min: 25, max: 130},
		cellular.HOSCGA: {mean: 62, sigma: 14, min: 22, max: 120},
		cellular.HOSCGR: {mean: 52, sigma: 12, min: 20, max: 110},
		cellular.HOSCGM: {mean: 58, sigma: 13, min: 20, max: 115},
		cellular.HOSCGC: {mean: 88, sigma: 18, min: 35, max: 170},
		cellular.HOMCGH: {mean: 35, sigma: 30, min: 8, max: 200},
	}
	t2Spec = map[cellular.HOType]durSpec{
		cellular.HOLTEH: {mean: 45, sigma: 10, min: 18, max: 90},
		cellular.HOMNBH: {mean: 95, sigma: 18, min: 45, max: 170},
		cellular.HOSCGA: {mean: 85, sigma: 16, min: 40, max: 160},
		cellular.HOSCGR: {mean: 72, sigma: 14, min: 35, max: 140},
		cellular.HOSCGM: {mean: 88, sigma: 16, min: 40, max: 160},
		cellular.HOSCGC: {mean: 128, sigma: 24, min: 60, max: 240},
		cellular.HOMCGH: {mean: 75, sigma: 20, min: 30, max: 160},
	}
)

// mmWaveT2Factor lengthens mmWave execution stages (§5.2: +42–45%).
const mmWaveT2Factor = 1.43

// crossTowerT1ExtraMS is the added preparation latency when the eNB and gNB
// involved in an NSA HO are not co-located (§6.3: ≈13 ms end-to-end).
const crossTowerT1ExtraMS = 13

// DurationParams identifies the conditions of one handover for duration
// sampling.
type DurationParams struct {
	// Type is the handover procedure being executed (§5.2's per-type
	// duration profiles).
	Type cellular.HOType
	// Band is the target cell's band; mmWave lengthens execution by
	// mmWaveT2Factor (beam management, §5.2).
	Band      cellular.Band
	CoLocated bool // eNB/gNB co-located (only consulted for NSA 5G types)
}

// SampleDurations draws the preparation (T1) and execution (T2) stage
// durations for a handover.
func SampleDurations(p DurationParams, rng *rand.Rand) (t1, t2 time.Duration) {
	s1, ok := t1Spec[p.Type]
	if !ok {
		s1 = t1Spec[cellular.HOLTEH]
	}
	s2, ok := t2Spec[p.Type]
	if !ok {
		s2 = t2Spec[cellular.HOLTEH]
	}
	t1 = s1.sample(rng)
	t2 = s2.sample(rng)
	if p.Type.Is5G() && !p.CoLocated && p.Type != cellular.HOMCGH {
		t1 += time.Duration(crossTowerT1ExtraMS*(0.8+0.4*rng.Float64())) * time.Millisecond
	}
	if p.Band == cellular.BandMMWave && p.Type.Is5G() {
		t2 = time.Duration(float64(t2) * mmWaveT2Factor)
	}
	return t1, t2
}

// MeanTotalMS returns the mean total duration (ms) for a handover type at
// default conditions, used by analytic sanity checks in tests.
func MeanTotalMS(t cellular.HOType) float64 {
	return t1Spec[t].mean + t2Spec[t].mean
}

// SignalingFor returns the handover-related signalling message counts per
// layer for one procedure (§5.1). NSA procedures carry extra RRC traffic for
// eNB↔gNB coordination; mmWave inflates PHY-layer counts by the beam
// management factor the paper reports (>5× low-band).
func SignalingFor(t cellular.HOType, band cellular.Band, rng *rand.Rand) cellular.SignalingCount {
	jitter := func(n int) int {
		if n <= 1 {
			return n
		}
		return n + rng.Intn(3) - 1
	}
	var c cellular.SignalingCount
	switch t {
	case cellular.HOLTEH:
		c = cellular.SignalingCount{RRC: 3, MAC: 2, PHY: 10}
	case cellular.HOMCGH:
		// Single-RAT handover: no dual-connectivity coordination and a
		// single measurement context keep SA signalling lean.
		c = cellular.SignalingCount{RRC: 3, MAC: 2, PHY: 4}
	case cellular.HOMNBH:
		c = cellular.SignalingCount{RRC: 5, MAC: 2, PHY: 12}
	case cellular.HOSCGA, cellular.HOSCGR:
		c = cellular.SignalingCount{RRC: 4, MAC: 2, PHY: 12}
	case cellular.HOSCGM:
		c = cellular.SignalingCount{RRC: 4, MAC: 2, PHY: 14}
	case cellular.HOSCGC:
		c = cellular.SignalingCount{RRC: 6, MAC: 4, PHY: 16}
	default:
		c = cellular.SignalingCount{}
	}
	if band == cellular.BandMMWave && t.Is5G() {
		c.PHY *= 6 // beam search/track/select procedures
		c.MAC += 2
	}
	return cellular.SignalingCount{RRC: jitter(c.RRC), MAC: jitter(c.MAC), PHY: jitter(c.PHY)}
}
