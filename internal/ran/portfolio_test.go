package ran

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/policygen"
)

// legacyPolicyFor is the pre-refactor hand-coded implementation of
// PolicyFor, carried verbatim as the golden reference: the policy-as-data
// path must reproduce it rule for rule, or golden traces shift.
func legacyPolicyFor(carrier string, arch cellular.Arch) *Policy {
	lteSeq := map[string][]string{
		"OpX": {"A2", "A3"},
		"OpY": {"A3"},
		"OpZ": {"A2", "A5"},
	}[carrier]
	if lteSeq == nil {
		lteSeq = []string{"A3"}
	}
	switch arch {
	case cellular.ArchSA:
		return &Policy{
			Name: carrier + "/SA",
			Rules: []Rule{
				{Sequence: []string{"NR-A3"}, Guard: GuardNone, HO: cellular.HOMCGH},
			},
		}
	case cellular.ArchNSA:
		return &Policy{
			Name: carrier + "/NSA",
			Rules: []Rule{
				{Sequence: []string{"NR-B1"}, Guard: GuardNoNRLeg, HO: cellular.HOSCGA},
				{Sequence: []string{"NR-A2", "NR-B1"}, Guard: GuardNRAttached, HO: cellular.HOSCGC},
				{Sequence: []string{"NR-A2", "NR-A2"}, Guard: GuardNRAttached, HO: cellular.HOSCGR},
				{Sequence: []string{"NR-A3"}, Guard: GuardSameGNB, HO: cellular.HOSCGM},
				{Sequence: []string{"NR-A3"}, Guard: GuardDiffGNB, HO: cellular.HOSCGC},
				{Sequence: lteSeq, Guard: GuardNRAttached, HO: cellular.HOMNBH},
				{Sequence: lteSeq, Guard: GuardNoNRLeg, HO: cellular.HOLTEH},
			},
		}
	default:
		return &Policy{
			Name: carrier + "/LTE",
			Rules: []Rule{
				{Sequence: lteSeq, Guard: GuardNone, HO: cellular.HOLTEH},
			},
		}
	}
}

// legacyEventConfigsFor is the pre-refactor hand-coded implementation of
// EventConfigsFor, carried verbatim as the golden reference.
func legacyEventConfigsFor(carrier string, arch cellular.Arch) []cellular.EventConfig {
	const (
		ttt    = 320 * time.Millisecond
		tttB1  = 480 * time.Millisecond
		hyst   = 2.0
		period = 480 * time.Millisecond
		a2LTE  = -100.0
		a2NR   = -112.0
		b1NR   = -106.0
		a5Phi1 = -101.0
		a5Phi2 = -99.0
	)
	var lte []cellular.EventConfig
	switch carrier {
	case "OpY":
		lte = []cellular.EventConfig{
			{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: a2LTE, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 4},
			{Type: cellular.EventA3, Tech: cellular.TechLTE, Offset: 3.0, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 8},
		}
	case "OpZ":
		lte = []cellular.EventConfig{
			{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: a2LTE, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 4},
			{Type: cellular.EventA5, Tech: cellular.TechLTE, Threshold1: a5Phi1, Threshold2: a5Phi2, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 8},
		}
	default: // OpX and unknown carriers
		lte = []cellular.EventConfig{
			{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: a2LTE, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 4},
			{Type: cellular.EventA3, Tech: cellular.TechLTE, Offset: 3.0, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 8},
		}
	}
	nrDC := []cellular.EventConfig{
		{Type: cellular.EventB1, Tech: cellular.TechNR, Threshold1: b1NR, Hysteresis: hyst, TTT: tttB1, ReportInterval: period, ReportAmount: 6},
		{Type: cellular.EventA2, Tech: cellular.TechNR, Threshold1: a2NR, Hysteresis: hyst, TTT: ttt, ReportInterval: 320 * time.Millisecond, ReportAmount: 6},
		{Type: cellular.EventA3, Tech: cellular.TechNR, Offset: 3.0, Hysteresis: hyst, TTT: ttt, ReportInterval: period, ReportAmount: 8},
	}
	switch arch {
	case cellular.ArchSA:
		return []cellular.EventConfig{
			{Type: cellular.EventA2, Tech: cellular.TechNR, Threshold1: a2NR, Hysteresis: hyst, TTT: 480 * time.Millisecond, ReportInterval: period, ReportAmount: 4},
			{Type: cellular.EventA3, Tech: cellular.TechNR, Offset: 5.0, Hysteresis: hyst, TTT: 480 * time.Millisecond, ReportInterval: period, ReportAmount: 8},
		}
	case cellular.ArchNSA:
		return append(append([]cellular.EventConfig{}, lte...), nrDC...)
	default:
		return lte
	}
}

// TestPortfolioGoldenEquivalence is the policy-as-data golden test: for
// every named carrier (plus an unknown one exercising the fallback) and
// every architecture, the portfolio-built policy and event tables are
// identical to the pre-refactor hand-coded ones. Any diff here means
// golden traces are about to shift.
func TestPortfolioGoldenEquivalence(t *testing.T) {
	carriers := []string{"OpX", "OpY", "OpZ", "NoSuchCarrier"}
	archs := []cellular.Arch{cellular.ArchLTE, cellular.ArchNSA, cellular.ArchSA}
	for _, c := range carriers {
		for _, a := range archs {
			if got, want := PolicyFor(c, a), legacyPolicyFor(c, a); !reflect.DeepEqual(got, want) {
				t.Errorf("PolicyFor(%s, %s):\n got %+v\nwant %+v", c, a, got, want)
			}
			if got, want := EventConfigsFor(c, a), legacyEventConfigsFor(c, a); !reflect.DeepEqual(got, want) {
				t.Errorf("EventConfigsFor(%s, %s):\n got %+v\nwant %+v", c, a, got, want)
			}
		}
	}
}

// TestGeneratedPortfolioPolicies: policies built from generated portfolios
// are structurally sound — every rule sequence references an event the
// portfolio actually configures, so each rule is reachable in principle.
func TestGeneratedPortfolioPolicies(t *testing.T) {
	for i := 0; i < 50; i++ {
		p := policygen.Generate(11, i)
		for _, arch := range []cellular.Arch{cellular.ArchLTE, cellular.ArchNSA} {
			pol := PolicyFromPortfolio(&p, arch)
			cfgs := EventConfigsFromPortfolio(&p, arch)
			keys := map[string]bool{}
			for _, c := range cfgs {
				k := c.Type.String()
				if c.Tech == cellular.TechNR {
					k = "NR-" + k
				}
				keys[k] = true
			}
			for _, r := range pol.Rules {
				for _, want := range r.Sequence {
					if !keys[want] {
						t.Errorf("carrier %d %s: rule %v references unconfigured event %q", i, arch, r, want)
					}
				}
			}
		}
	}
}
