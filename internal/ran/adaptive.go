package ran

import (
	"time"

	"repro/internal/cellular"
	"repro/internal/policygen"
)

// This file closes the prediction loop (ROADMAP item 3): Prognos output,
// distilled into Forecasts, feeds an AdaptiveController that steers the
// live carrier policy — predictive early-prep of the handover stages,
// skip-ahead target selection, and per-UE TTT/hysteresis adaptation. The
// controller is pure control logic over sim time: it owns no RNG and does
// no I/O, so an adaptive drive stays a deterministic function of its seed.

// Forecast is one Prognos prediction distilled for RAN control: the
// predicted handover type, a confidence in [0, 1] (pattern similarity ×
// learned reliability), and the estimated lead until the command.
type Forecast struct {
	Type       cellular.HOType
	Confidence float64
	Lead       time.Duration
}

// AdaptiveConfig switches and tunes the three prediction-driven controls.
// Each control is independent; the zero value (all off) disables the layer
// entirely and a drive behaves bit-identically to the static policy.
type AdaptiveConfig struct {
	// EarlyPrep credits standing-forecast time against T1 (preparation ran
	// ahead of the trigger) and part of T2 (the target is pre-configured,
	// as in 3GPP conditional handover).
	EarlyPrep bool
	// SkipAhead makes SCG target selection jump to the strongest adequate
	// cell — the predicted final cell of the would-be handover chain —
	// instead of the first adequate one.
	SkipAhead bool
	// AdaptTTT relaxes TTT/hysteresis on observed ping-pong and tightens
	// them when predictions are reliably confirmed, per-UE, within the
	// 3GPP-enumerated value sets.
	AdaptTTT bool

	// MinConfidence is the arming bar for forecasts.
	MinConfidence float64
	// PrepCap bounds the T1 credit; ExecCredit the T2 fraction a fully
	// prepared target saves.
	PrepCap    time.Duration
	ExecCredit float64

	// Relax/Tighten steps (see policygen.AdaptiveSpec for semantics).
	RelaxTTTScale       float64
	RelaxHysteresisDB   float64
	TightenTTTScale     float64
	TightenHysteresisDB float64

	// PingPongWindow is the critical A→B→A time; CalmAfter how long without
	// a ping-pong before one relax step unwinds; ReconfMinGap the minimum
	// spacing between measurement reconfigurations.
	PingPongWindow time.Duration
	CalmAfter      time.Duration
	ReconfMinGap   time.Duration
}

// Enabled reports whether any control is on.
func (c *AdaptiveConfig) Enabled() bool {
	return c != nil && (c.EarlyPrep || c.SkipAhead || c.AdaptTTT)
}

// AdaptiveFromSpec compiles a policygen spec into a live config.
func AdaptiveFromSpec(s policygen.AdaptiveSpec) *AdaptiveConfig {
	return &AdaptiveConfig{
		EarlyPrep:           s.EarlyPrep,
		SkipAhead:           s.SkipAhead,
		AdaptTTT:            s.AdaptTTT,
		MinConfidence:       s.MinConfidence,
		PrepCap:             time.Duration(s.PrepCapS * float64(time.Second)),
		ExecCredit:          s.ExecCredit,
		RelaxTTTScale:       s.RelaxTTTScale,
		RelaxHysteresisDB:   s.RelaxHysteresisDB,
		TightenTTTScale:     s.TightenTTTScale,
		TightenHysteresisDB: s.TightenHysteresisDB,
		PingPongWindow:      time.Duration(s.PingPongWindowS * float64(time.Second)),
		CalmAfter:           time.Duration(s.CalmAfterS * float64(time.Second)),
		ReconfMinGap:        time.Duration(s.ReconfMinGapS * float64(time.Second)),
	}
}

// AdaptiveFromPortfolio compiles the portfolio's adaptive spec (nil when
// the carrier runs static mobility management).
func AdaptiveFromPortfolio(p *policygen.Portfolio) *AdaptiveConfig {
	if p == nil || p.Adaptive == nil {
		return nil
	}
	return AdaptiveFromSpec(*p.Adaptive)
}

// DefaultAdaptive compiles the reference spec (all three controls on).
func DefaultAdaptive() *AdaptiveConfig {
	return AdaptiveFromSpec(policygen.DefaultAdaptiveSpec())
}

// AdaptiveStats counts what the closed loop actually did during a drive.
type AdaptiveStats struct {
	// Forecasts is the number of distinct armed forecasts; Hits/Misses how
	// they resolved (a matching handover vs a lapse or type flip).
	Forecasts int64 `json:"forecasts"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	// EarlyPreps counts handovers granted preparation credit; PrepSavedMS
	// the total T1+T2 time saved.
	EarlyPreps  int64   `json:"early_preps"`
	PrepSavedMS float64 `json:"prep_saved_ms"`
	// SkipAheads counts SCG target selections that actually changed cell.
	SkipAheads int64 `json:"skip_aheads"`
	// Reconfigs counts applied TTT/hysteresis rewrites, split into relax
	// and tighten direction changes; FinalStance is the stance at drive
	// end (+n relaxed, −1 tightened, 0 base).
	Reconfigs   int64 `json:"reconfigs"`
	Relaxes     int64 `json:"relaxes"`
	Tightens    int64 `json:"tightens"`
	FinalStance int   `json:"final_stance"`
	// PingPongs is the controller's own count of observed A→B→A pairs.
	PingPongs int64 `json:"ping_pongs"`
}

// maxRelaxStance bounds how far repeated ping-pong can relax the policy
// (each step multiplies TTT by RelaxTTTScale).
const maxRelaxStance = 2

// armedHold is how long an armed forecast stands past its last confirming
// prediction tick before it lapses as a miss.
const armedHold = 1500 * time.Millisecond

// prepRamp is the standing time after which a forecast earns the full
// ExecCredit on T2 (credit ramps linearly up to it).
const prepRamp = 500 * time.Millisecond

// hitEMAAlpha smooths the forecast hit-rate the tighten rule reads.
const hitEMAAlpha = 0.2

// tightenAbove / tightenMinResolved / untightenBelow parameterise the
// tighten rule: only a proven predictor (hit-rate EMA over enough resolved
// forecasts) may shorten TTT, and it backs off as soon as reliability dips.
const (
	tightenAbove       = 0.75
	tightenMinResolved = 8
	untightenBelow     = 0.6
)

// AdaptiveController is the per-UE closed-loop state machine. It is not
// safe for concurrent use; the simulator owns one per drive.
type AdaptiveController struct {
	cfg   AdaptiveConfig
	stats AdaptiveStats

	// Armed forecast: a confident prediction run currently standing.
	armed      bool
	armedType  cellular.HOType
	armedAt    time.Duration
	armedUntil time.Duration

	// Forecast reliability feedback.
	hitEMA   float64
	resolved int64

	// Last executed cell-changing handover, for ping-pong detection.
	lastSrc, lastDst string
	lastAt           time.Duration
	lastValid        bool

	// Stance machine: desired is what the evidence asks for, applied what
	// the network last pushed. ReconfigDue reconciles them under the
	// reconfiguration-rate budget.
	desired    int
	applied    int
	lastPP     time.Duration
	hasPP      bool
	lastReconf time.Duration
	reconfEver bool
}

// NewAdaptiveController creates a controller for one drive.
func NewAdaptiveController(cfg AdaptiveConfig) *AdaptiveController {
	if cfg.MinConfidence == 0 {
		cfg.MinConfidence = 0.4
	}
	if cfg.PrepCap == 0 {
		cfg.PrepCap = 2 * time.Second
	}
	if cfg.ExecCredit == 0 {
		cfg.ExecCredit = 0.4
	}
	if cfg.RelaxTTTScale == 0 {
		cfg.RelaxTTTScale = 2.0
	}
	if cfg.TightenTTTScale == 0 {
		cfg.TightenTTTScale = 0.5
	}
	if cfg.PingPongWindow == 0 {
		cfg.PingPongWindow = 5 * time.Second
	}
	if cfg.CalmAfter == 0 {
		cfg.CalmAfter = 30 * time.Second
	}
	if cfg.ReconfMinGap == 0 {
		cfg.ReconfMinGap = 2 * time.Second
	}
	return &AdaptiveController{cfg: cfg, hitEMA: 0.5}
}

// Stats returns the counters accumulated so far.
func (a *AdaptiveController) Stats() AdaptiveStats {
	s := a.stats
	s.FinalStance = a.applied
	return s
}

// resolve closes the armed forecast with a hit/miss verdict.
func (a *AdaptiveController) resolve(hit bool) {
	a.armed = false
	a.resolved++
	v := 0.0
	if hit {
		a.stats.Hits++
		v = 1.0
	} else {
		a.stats.Misses++
	}
	a.hitEMA = a.hitEMA*(1-hitEMAAlpha) + v*hitEMAAlpha
}

// OnForecast feeds the prediction standing at sim time now (one call per
// 20 Hz tick). Low-confidence and no-HO predictions only age the armed
// state; a confident prediction arms or re-arms it.
func (a *AdaptiveController) OnForecast(f Forecast, now time.Duration) {
	if a.armed && now > a.armedUntil {
		a.resolve(false) // forecast lapsed with no handover
	}
	if f.Type == cellular.HONone || f.Confidence < a.cfg.MinConfidence {
		return
	}
	hold := f.Lead
	if hold < armedHold {
		hold = armedHold
	}
	if a.armed {
		if a.armedType == f.Type {
			a.armedUntil = now + hold // still standing: extend
			return
		}
		a.resolve(false) // prediction flipped type without a handover
	}
	a.armed = true
	a.armedType = f.Type
	a.armedAt = now
	a.armedUntil = now + hold
	a.stats.Forecasts++
}

// OnHandover feeds one executed handover command (at its command time). It
// resolves the armed forecast and runs ping-pong detection on the
// cell-changing transition.
func (a *AdaptiveController) OnHandover(ev cellular.HandoverEvent, now time.Duration) {
	if a.armed {
		a.resolve(ev.Type == a.armedType)
	}
	if ev.SourceCell == "" || ev.TargetCell == "" || ev.SourceCell == ev.TargetCell {
		return
	}
	if a.lastValid && ev.SourceCell == a.lastDst && ev.TargetCell == a.lastSrc &&
		ev.Time-a.lastAt <= a.cfg.PingPongWindow {
		a.stats.PingPongs++
		a.lastPP = now
		a.hasPP = true
		if a.desired < maxRelaxStance {
			a.desired++
		}
	}
	a.lastSrc, a.lastDst, a.lastAt, a.lastValid = ev.SourceCell, ev.TargetCell, ev.Time, true
}

// ApplyPrep grants early-preparation credit to a scheduled handover of the
// given type: T1 shrinks by up to the standing-forecast age (preparation
// effectively started when the forecast armed), and T2 by ExecCredit once
// the forecast has stood for prepRamp. The credited savings are tallied.
func (a *AdaptiveController) ApplyPrep(typ cellular.HOType, now time.Duration, t1, t2 time.Duration) (time.Duration, time.Duration) {
	if !a.cfg.EarlyPrep || !a.armed || a.armedType != typ {
		return t1, t2
	}
	standing := now - a.armedAt
	if standing <= 0 {
		return t1, t2
	}
	if standing > a.cfg.PrepCap {
		standing = a.cfg.PrepCap
	}
	// T1 keeps a floor of 20%: even a fully prepared handover pays admission
	// and command signalling.
	save1 := standing
	if floor := t1 / 5; t1-save1 < floor {
		save1 = t1 - floor
	}
	if save1 < 0 {
		save1 = 0
	}
	frac := float64(standing) / float64(prepRamp)
	if frac > 1 {
		frac = 1
	}
	save2 := time.Duration(float64(t2) * a.cfg.ExecCredit * frac)
	if save1 == 0 && save2 == 0 {
		return t1, t2
	}
	a.stats.EarlyPreps++
	a.stats.PrepSavedMS += float64(save1+save2) / float64(time.Millisecond)
	return t1 - save1, t2 - save2
}

// SkipAheadActive reports whether SCG target selection should jump to the
// strongest adequate cell: a confident forecast of an SCG procedure stands.
func (a *AdaptiveController) SkipAheadActive() bool {
	if !a.cfg.SkipAhead || !a.armed {
		return false
	}
	switch a.armedType {
	case cellular.HOSCGA, cellular.HOSCGC, cellular.HOSCGM:
		return true
	}
	return false
}

// NoteSkipAhead records one target selection that actually changed cell.
func (a *AdaptiveController) NoteSkipAhead() { a.stats.SkipAheads++ }

// ReconfigDue reconciles the desired stance with the applied one. When a
// rewrite is due (and the reconfiguration-rate budget allows), it returns
// the TTT scale and hysteresis delta to apply to the base event table and
// records the change; otherwise ok is false.
func (a *AdaptiveController) ReconfigDue(now time.Duration) (tttScale, hystDelta float64, ok bool) {
	if !a.cfg.AdaptTTT {
		return 0, 0, false
	}
	// Calm unwinding: each CalmAfter without a ping-pong retires one relax
	// step.
	if a.desired > 0 && a.hasPP && now-a.lastPP > a.cfg.CalmAfter {
		a.desired--
		a.lastPP = now // restart the calm clock for the next step
	}
	// Tighten only on proven reliability and a ping-pong-free recent past —
	// and only when the spec's tighten stance actually changes something
	// (the default is neutral), so no reconfiguration is spent on a no-op.
	tightens := a.cfg.TightenTTTScale < 1 || a.cfg.TightenHysteresisDB > 0
	quiet := !a.hasPP || now-a.lastPP > 2*a.cfg.CalmAfter
	if tightens && a.desired == 0 && quiet && a.resolved >= tightenMinResolved && a.hitEMA >= tightenAbove {
		a.desired = -1
	}
	if a.desired < 0 && a.hitEMA < untightenBelow {
		a.desired = 0
	}
	if a.desired == a.applied {
		return 0, 0, false
	}
	if a.reconfEver && now-a.lastReconf < a.cfg.ReconfMinGap {
		return 0, 0, false
	}
	if a.desired > a.applied {
		a.stats.Relaxes++
	} else {
		a.stats.Tightens++
	}
	a.applied = a.desired
	a.lastReconf = now
	a.reconfEver = true
	a.stats.Reconfigs++
	scale, delta := a.StanceParams()
	return scale, delta, true
}

// StanceParams returns the TTT scale and hysteresis delta of the currently
// applied stance (scale 1, delta 0 at base).
func (a *AdaptiveController) StanceParams() (tttScale, hystDelta float64) {
	switch {
	case a.applied > 0:
		scale := 1.0
		for i := 0; i < a.applied; i++ {
			scale *= a.cfg.RelaxTTTScale
		}
		return scale, a.cfg.RelaxHysteresisDB * float64(a.applied)
	case a.applied < 0:
		return a.cfg.TightenTTTScale, -a.cfg.TightenHysteresisDB
	default:
		return 1, 0
	}
}

// AdaptEventConfigs applies a stance to a base event table: every TTT is
// scaled and snapped back into the 3GPP enumeration, every hysteresis
// shifted and clamped to the valid range. The base table is not modified.
func AdaptEventConfigs(base []cellular.EventConfig, tttScale, hystDelta float64) []cellular.EventConfig {
	out := make([]cellular.EventConfig, len(base))
	for i, c := range base {
		c.TTT = policygen.ScaleTTT(c.TTT, tttScale)
		c.Hysteresis += hystDelta
		if c.Hysteresis < 0 {
			c.Hysteresis = 0
		}
		if c.Hysteresis > policygen.MaxHysteresisDB {
			c.Hysteresis = policygen.MaxHysteresisDB
		}
		out[i] = c
	}
	return out
}
