package ran

import (
	"time"

	"repro/internal/cellular"
)

// Decision is a handover decision made by the serving cell: the type of the
// procedure to run and the measurement reports that triggered it.
type Decision struct {
	// Type is the decided handover procedure (§4.1's taxonomy), and Rule
	// the policy rule that fired.
	Type cellular.HOType
	Rule *Rule
	// At is the time the triggering MR was received (start of T1).
	At time.Duration
	// Trigger is the final MR of the matched sequence (carries the target
	// neighbour PCI).
	Trigger cellular.MeasurementReport
}

// historyMaxAge bounds how long a measurement report stays decision-
// relevant: carriers react to the recent radio picture, not to a report
// from a minute ago.
const historyMaxAge = 10 * time.Second

// histEntry is one remembered measurement-report key.
type histEntry struct {
	key string
	at  time.Duration
}

// Engine is the serving-cell decision process: it accumulates measurement
// reports and applies the carrier policy (step 4 of Fig. 1). One engine
// serves one UE.
type Engine struct {
	policy *Policy
	// history holds MR keys since the last handover (one "phase" in
	// decision-learner terms), time-bounded by historyMaxAge.
	history    []histEntry
	busyUntil  time.Duration // no new decisions while a HO is in flight
	maxHistory int
}

// NewEngine creates a decision engine for the given policy.
func NewEngine(policy *Policy) *Engine {
	return &Engine{policy: policy, maxHistory: 16}
}

// Policy returns the engine's policy.
func (e *Engine) Policy() *Policy { return e.policy }

// SetPolicy swaps the active policy (e.g. after an architecture change).
// History is retained: carriers keep recent MR context across
// reconfiguration.
func (e *Engine) SetPolicy(p *Policy) { e.policy = p }

// Busy reports whether a handover is currently in flight at time t.
func (e *Engine) Busy(t time.Duration) bool { return t < e.busyUntil }

// OnReport feeds one measurement report into the engine. If the carrier
// policy fires, the returned Decision is non-nil and the engine marks itself
// busy until the caller invokes Complete.
func (e *Engine) OnReport(mr cellular.MeasurementReport, ctx Context) *Decision {
	e.history = append(e.history, histEntry{key: mr.Key(), at: mr.Time})
	e.prune(mr.Time)
	if e.Busy(mr.Time) {
		return nil
	}
	ho, rule := e.policy.Decide(e.keys(), ctx)
	if ho == cellular.HONone {
		return nil
	}
	return &Decision{Type: ho, Rule: rule, At: mr.Time, Trigger: mr}
}

// prune drops history entries that are too old or beyond the depth cap.
func (e *Engine) prune(now time.Duration) {
	start := 0
	for start < len(e.history) && now-e.history[start].at > historyMaxAge {
		start++
	}
	if over := len(e.history) - start - e.maxHistory; over > 0 {
		start += over
	}
	if start > 0 {
		e.history = e.history[start:]
	}
}

// keys returns the current history as a key slice.
func (e *Engine) keys() []string {
	out := make([]string, len(e.history))
	for i, h := range e.history {
		out[i] = h.key
	}
	return out
}

// Begin marks a handover in flight until the given completion time and
// starts a fresh phase (the MR history is consumed by the decision).
func (e *Engine) Begin(completeAt time.Duration) {
	e.busyUntil = completeAt
	e.history = e.history[:0]
}

// History returns the MR keys accumulated in the current phase.
func (e *Engine) History() []string { return e.keys() }
