package ran

import (
	"repro/internal/cellular"
	"repro/internal/policygen"
)

// PolicyFromPortfolio constructs a carrier's decision logic for one
// architecture from a policy-as-data portfolio. The rule-table *shape* is
// fixed per architecture — it models how NSA networks universally structure
// SCG management (§4.1/§7.1) — while everything carrier-specific (the LTE
// anchor decision sequence, and via EventConfigsFromPortfolio the event
// parameters that gate which reports exist at all) comes from the
// portfolio.
func PolicyFromPortfolio(p *policygen.Portfolio, arch cellular.Arch) *Policy {
	lteSeq := p.LTESequence
	switch arch {
	case cellular.ArchSA:
		return &Policy{
			Name: p.Name + "/SA",
			Rules: []Rule{
				{Sequence: []string{"NR-A3"}, Guard: GuardNone, HO: cellular.HOMCGH},
			},
		}
	case cellular.ArchNSA:
		return &Policy{
			Name: p.Name + "/NSA",
			Rules: []Rule{
				// NR leg management. An SCG release needs two consecutive
				// NR-A2 reports; if a B1 for another NR cell lands between
				// them the network converts the release into an SCG Change
				// (the paper's Fig. 16 trigger annotations: SCGC = NR-A2 +
				// NR-B1, SCGR = NR-A2).
				{Sequence: []string{"NR-B1"}, Guard: GuardNoNRLeg, HO: cellular.HOSCGA},
				{Sequence: []string{"NR-A2", "NR-B1"}, Guard: GuardNRAttached, HO: cellular.HOSCGC},
				{Sequence: []string{"NR-A2", "NR-A2"}, Guard: GuardNRAttached, HO: cellular.HOSCGR},
				{Sequence: []string{"NR-A3"}, Guard: GuardSameGNB, HO: cellular.HOSCGM},
				{Sequence: []string{"NR-A3"}, Guard: GuardDiffGNB, HO: cellular.HOSCGC},
				// LTE anchor mobility.
				{Sequence: lteSeq, Guard: GuardNRAttached, HO: cellular.HOMNBH},
				{Sequence: lteSeq, Guard: GuardNoNRLeg, HO: cellular.HOLTEH},
			},
		}
	default:
		return &Policy{
			Name: p.Name + "/LTE",
			Rules: []Rule{
				{Sequence: lteSeq, Guard: GuardNone, HO: cellular.HOLTEH},
			},
		}
	}
}

// EventConfigsFromPortfolio returns the measurement configurations the
// portfolio's serving cells push to a UE under the given architecture
// (step 1 of Fig. 1): the LTE table alone for plain LTE service, LTE plus
// the NR dual-connectivity table under NSA, and the standalone table under
// SA. The returned slice is freshly allocated — callers reconfigure
// measurement engines with it and may hold it across a mid-run drift.
func EventConfigsFromPortfolio(p *policygen.Portfolio, arch cellular.Arch) []cellular.EventConfig {
	switch arch {
	case cellular.ArchSA:
		return append([]cellular.EventConfig{}, p.SAEvents...)
	case cellular.ArchNSA:
		return append(append([]cellular.EventConfig{}, p.LTEEvents...), p.NREvents...)
	default:
		return append([]cellular.EventConfig{}, p.LTEEvents...)
	}
}
