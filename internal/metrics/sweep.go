package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// SweepCarrier is one generated carrier's outcome in a policy sweep: did
// the online learner converge on this carrier's (unseen) policy, how fast,
// and — under drift — how fast did it recover after the carrier rewrote
// the policy mid-run.
type SweepCarrier struct {
	// Index is the carrier's position in the seed's population; together
	// with the sweep seed it fully determines the portfolio.
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Sequence is the base LTE decision sequence (e.g. "A2,A5");
	// DriftSequence the post-drift one (empty without drift).
	Sequence      string `json:"sequence"`
	DriftSequence string `json:"drift_sequence,omitempty"`
	// Handovers / Reports are the drive's ground-truth volumes.
	Handovers int `json:"handovers"`
	Reports   int `json:"reports"`
	// Converged / TimeToF1S: whether (and how many sim-seconds in) the
	// windowed F1 first sustained the sweep threshold.
	Converged bool    `json:"converged"`
	TimeToF1S float64 `json:"time_to_f1_s,omitempty"`
	// Reconverged / ReconvergeS: same measure restarted at the drift
	// point (meaningful only when the sweep ran with drift).
	Reconverged bool    `json:"reconverged,omitempty"`
	ReconvergeS float64 `json:"reconverge_s,omitempty"`
	// PreDriftF1 is the converged quality just before the rewrite;
	// PostDriftMinF1 the trough right after it (the drift damage).
	PreDriftF1     float64 `json:"pre_drift_f1,omitempty"`
	PostDriftMinF1 float64 `json:"post_drift_min_f1,omitempty"`
	// FloorF1 is the worst handover-carrying bucket after the carrier
	// first converged (whole drive when it never did) — under drift, the
	// rewrite's damage; FinalF1 the tail mean (converged end state).
	FloorF1 float64 `json:"floor_f1"`
	FinalF1 float64 `json:"final_f1"`
	// Error records a per-carrier failure (carrier excluded from the
	// summary aggregates).
	Error string `json:"error,omitempty"`
}

// SweepSummary aggregates a sweep population.
type SweepSummary struct {
	Carriers int `json:"carriers"`
	Errors   int `json:"errors,omitempty"`
	// Converged counts carriers whose F1 reached the threshold;
	// MedianTimeToF1S / P90TimeToF1S describe how fast (converged
	// carriers only).
	Converged       int     `json:"converged"`
	MedianTimeToF1S float64 `json:"median_time_to_f1_s"`
	P90TimeToF1S    float64 `json:"p90_time_to_f1_s"`
	// Reconverged / MedianReconvergeS / P90ReconvergeS: the post-drift
	// recovery statistics (drift sweeps only).
	Reconverged       int     `json:"reconverged,omitempty"`
	MedianReconvergeS float64 `json:"median_reconverge_s,omitempty"`
	P90ReconvergeS    float64 `json:"p90_reconverge_s,omitempty"`
	// F1Floor is the population minimum of per-carrier floors — the
	// paper-claim stress number ("how bad does online adaptation ever
	// get") — with its P10 and median for shape.
	F1Floor       float64 `json:"f1_floor"`
	F1FloorP10    float64 `json:"f1_floor_p10"`
	F1FloorMedian float64 `json:"f1_floor_median"`
	// MedianFinalF1 is the population's converged end-state quality.
	MedianFinalF1 float64 `json:"median_final_f1"`
}

// SweepReport is the full result of one policy-portfolio sweep. It
// deliberately contains no wall-clock or worker-count fields: the report
// bytes for a given (seed, carriers, drift, thresholds) are identical at
// any -jobs setting, which the determinism test pins.
type SweepReport struct {
	Seed     int64 `json:"seed"`
	Carriers int   `json:"carriers"`
	Drift    bool  `json:"drift"`
	// DriftAtS is the sim time of the mid-run rewrite (drift sweeps).
	DriftAtS float64 `json:"drift_at_s,omitempty"`
	// F1Threshold is the convergence bar; DriveSeconds the per-carrier
	// sim duration; BucketSeconds the F1-series bucket; WindowSeconds the
	// prediction-window match tolerance.
	F1Threshold   float64        `json:"f1_threshold"`
	DriveSeconds  float64        `json:"drive_seconds"`
	BucketSeconds float64        `json:"bucket_seconds"`
	WindowSeconds float64        `json:"window_seconds"`
	Results       []SweepCarrier `json:"results"`
	Summary       SweepSummary   `json:"summary"`
}

// Summarize computes the population aggregates from Results.
func (r *SweepReport) Summarize() {
	s := SweepSummary{Carriers: len(r.Results)}
	var ttf, reconv, floors, finals []float64
	for _, c := range r.Results {
		if c.Error != "" {
			s.Errors++
			continue
		}
		if c.Converged {
			s.Converged++
			ttf = append(ttf, c.TimeToF1S)
		}
		if c.Reconverged {
			s.Reconverged++
			reconv = append(reconv, c.ReconvergeS)
		}
		floors = append(floors, c.FloorF1)
		finals = append(finals, c.FinalF1)
	}
	s.MedianTimeToF1S = percentile(ttf, 0.5)
	s.P90TimeToF1S = percentile(ttf, 0.9)
	s.MedianReconvergeS = percentile(reconv, 0.5)
	s.P90ReconvergeS = percentile(reconv, 0.9)
	s.F1Floor = percentile(floors, 0)
	s.F1FloorP10 = percentile(floors, 0.1)
	s.F1FloorMedian = percentile(floors, 0.5)
	s.MedianFinalF1 = percentile(finals, 0.5)
	r.Summary = s
}

// percentile is the linear-interpolation quantile used by the sweep
// aggregates (duplicated from internal/analysis to keep metrics
// dependency-free for tools like benchjson).
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Marshal renders the report as indented JSON (stable key order via struct
// tags — the bytes are the determinism contract).
func (r SweepReport) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteFile writes the report to path.
func (r SweepReport) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSweepFile loads a report written by WriteFile.
func ReadSweepFile(path string) (SweepReport, error) {
	var r SweepReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("metrics: parse sweep report %s: %w", path, err)
	}
	return r, nil
}

// SweepProgress is a point-in-time snapshot of a running sweep, exported
// through the ops plane so a long fleet run is observable mid-flight.
type SweepProgress struct {
	Planned         int
	Done            int
	Errors          int
	Converged       int
	Reconverged     int
	MedianTimeToF1S float64
	F1Floor         float64
	HasFloor        bool
}

// SweepStats is the live, concurrency-safe aggregator behind
// SweepProgress: the sweep runner Observes each finished carrier from
// whatever worker ran it.
type SweepStats struct {
	mu          sync.Mutex
	planned     int
	done        int
	errors      int
	converged   int
	reconverged int
	ttf         []float64
	floor       float64
	hasFloor    bool
}

// Start resets the aggregator for a run of n carriers.
func (s *SweepStats) Start(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planned = n
	s.done, s.errors, s.converged, s.reconverged = 0, 0, 0, 0
	s.ttf = nil
	s.floor, s.hasFloor = 0, false
}

// Observe folds one finished carrier into the running aggregates.
func (s *SweepStats) Observe(c SweepCarrier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	if c.Error != "" {
		s.errors++
		return
	}
	if c.Converged {
		s.converged++
		s.ttf = append(s.ttf, c.TimeToF1S)
	}
	if c.Reconverged {
		s.reconverged++
	}
	if !s.hasFloor || c.FloorF1 < s.floor {
		s.floor = c.FloorF1
		s.hasFloor = true
	}
}

// Snapshot returns the current progress.
func (s *SweepStats) Snapshot() SweepProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SweepProgress{
		Planned:         s.planned,
		Done:            s.done,
		Errors:          s.errors,
		Converged:       s.converged,
		Reconverged:     s.reconverged,
		MedianTimeToF1S: percentile(s.ttf, 0.5),
		F1Floor:         s.floor,
		HasFloor:        s.hasFloor,
	}
}
