package metrics

import (
	"path/filepath"
	"testing"
)

func TestSweepReportSummarizeAndRoundTrip(t *testing.T) {
	r := SweepReport{
		Seed: 1, Carriers: 3, Drift: true, DriftAtS: 300,
		F1Threshold: 0.6, DriveSeconds: 600, BucketSeconds: 30, WindowSeconds: 1,
		Results: []SweepCarrier{
			{Index: 0, Name: "Gen0000", Converged: true, TimeToF1S: 60, Reconverged: true, ReconvergeS: 90, FloorF1: 0.2, FinalF1: 0.8},
			{Index: 1, Name: "Gen0001", Converged: true, TimeToF1S: 120, FloorF1: 0.4, FinalF1: 0.7},
			{Index: 2, Name: "Gen0002", Error: "boom"},
		},
	}
	r.Summarize()
	s := r.Summary
	if s.Carriers != 3 || s.Errors != 1 || s.Converged != 2 || s.Reconverged != 1 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.MedianTimeToF1S != 90 {
		t.Errorf("median ttf = %v, want 90", s.MedianTimeToF1S)
	}
	if s.F1Floor != 0.2 || s.F1FloorMedian < 0.299 || s.F1FloorMedian > 0.301 {
		t.Errorf("floor stats: floor=%v median=%v", s.F1Floor, s.F1FloorMedian)
	}

	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSweepFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != s || len(got.Results) != 3 || got.Results[2].Error != "boom" {
		t.Errorf("round trip mismatch: %+v", got)
	}
	// Marshal is the determinism contract: identical reports produce
	// identical bytes.
	a, _ := r.Marshal()
	b, _ := r.Marshal()
	if string(a) != string(b) {
		t.Error("Marshal not stable")
	}
}

func TestSweepStats(t *testing.T) {
	var st SweepStats
	st.Start(10)
	st.Observe(SweepCarrier{Converged: true, TimeToF1S: 50, FloorF1: 0.5})
	st.Observe(SweepCarrier{Converged: true, TimeToF1S: 70, Reconverged: true, ReconvergeS: 30, FloorF1: 0.3})
	st.Observe(SweepCarrier{Error: "x"})
	p := st.Snapshot()
	if p.Planned != 10 || p.Done != 3 || p.Errors != 1 || p.Converged != 2 || p.Reconverged != 1 {
		t.Fatalf("progress: %+v", p)
	}
	if p.MedianTimeToF1S != 60 || !p.HasFloor || p.F1Floor != 0.3 {
		t.Errorf("aggregates: %+v", p)
	}
}
