package metrics

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsCoverInt64(t *testing.T) {
	// Indices must be monotone in the value, in range, and the bucket's
	// bounds must bracket every probed value.
	last := -1
	for _, ns := range []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1 << 40, 1<<62 + 12345} {
		idx := bucketIndex(ns)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", ns, idx)
		}
		if idx < last {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", ns, idx, last)
		}
		last = idx
		if up := bucketUpperNS(idx); up < ns {
			t.Errorf("bucketUpperNS(%d) = %d < value %d", idx, up, ns)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	// Uniform sample over 0..100ms.
	for i := 0; i < 20000; i++ {
		h.Observe(time.Duration(rng.Float64() * 1e5 * float64(time.Microsecond)))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q)) / float64(time.Microsecond)
		want := q * 1e5 // quantile of U(0, 100ms)
		if got < want*0.95 || got > want*1.2 {
			t.Errorf("q%.3f = %.0fµs, want ≈%.0fµs (±bucket width)", q, got, want)
		}
	}
	if h.Max() < h.Quantile(0.999) {
		t.Errorf("max %v below p999 %v", h.Max(), h.Quantile(0.999))
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	for _, ms := range []int64{5, 1, 9, 3} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 9*time.Millisecond {
		t.Errorf("min/max %v/%v", h.Min(), h.Max())
	}
	snap := h.Snapshot()
	if snap.MeanUS != 4500 {
		t.Errorf("mean %vµs, want 4500", snap.MeanUS)
	}
	if len(snap.Buckets) == 0 {
		t.Error("snapshot lost the bucket dump")
	}
	var total int64
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d", total)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	snap := h.Snapshot()
	if snap.Count != 0 || snap.MaxUS != 0 || len(snap.Buckets) != 0 {
		t.Errorf("empty snapshot %+v", snap)
	}
	if h.Quantile(0.99) != 0 {
		t.Errorf("quantile of empty histogram %v", h.Quantile(0.99))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 16, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 0 || h.Max() != time.Duration(workers*per-1)*time.Microsecond {
		t.Errorf("min/max %v/%v", h.Min(), h.Max())
	}
}

func TestLatencySnapshotJSONRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.Observe(7 * time.Millisecond)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back LatencySnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 2 || back.P50US == 0 || back.P999US == 0 {
		t.Errorf("round-tripped snapshot %+v", back)
	}
}
