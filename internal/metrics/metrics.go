// Package metrics is the run-metrics layer for the experiment harness and
// the Prognos service: per-experiment counters collected while the paper's
// tables are regenerated (wall time, drives simulated, handover events
// processed, allocations), a machine-readable JSON run report
// (vivisect -report run.json), and the session/sample counters prognosd
// exposes over its stats endpoint. The package has no dependencies on the
// rest of the repository so every layer can record into it.
package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Experiment records how one experiment regeneration went. It is one row
// of the run report and of the summary table vivisect prints after a run.
type Experiment struct {
	// ID is the experiment id from the registry, e.g. "fig8".
	ID string `json:"id"`
	// Paper names the table/figure the experiment regenerates.
	Paper string `json:"paper"`
	// WallMS is the experiment's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Rows counts the rendered table rows the experiment produced.
	Rows int `json:"rows"`
	// Drives counts the synthetic drives the experiment simulated.
	Drives int64 `json:"drives"`
	// HOEvents counts the handover events across those drives.
	HOEvents int64 `json:"ho_events"`
	// Allocs and AllocBytes are heap-allocation deltas measured around the
	// experiment (runtime.MemStats). The runtime only exposes process-wide
	// totals, so with more than one worker the numbers include concurrent
	// experiments; they are exact at -jobs 1.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// Err is the failure message, empty on success.
	Err string `json:"error,omitempty"`
	// Skipped marks experiments cancelled before they started (fail-fast).
	Skipped bool `json:"skipped,omitempty"`
}

// Report is the machine-readable run report vivisect emits with -report:
// the run configuration plus one Experiment entry per spec, in registry
// order.
type Report struct {
	// Seed and Scale are the experiments.Options the run used.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Jobs is the worker-pool size the run used (1 = sequential).
	Jobs int `json:"jobs"`
	// GoMaxProcs records runtime.GOMAXPROCS(0) at run time.
	GoMaxProcs int `json:"gomaxprocs"`
	// WallMS is the whole run's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Experiments holds the per-experiment metrics in registry order.
	Experiments []Experiment `json:"experiments"`
}

// TotalDrives sums the drives simulated across all experiments.
func (r Report) TotalDrives() int64 {
	var n int64
	for _, e := range r.Experiments {
		n += e.Drives
	}
	return n
}

// TotalHOEvents sums the handover events processed across all experiments.
func (r Report) TotalHOEvents() int64 {
	var n int64
	for _, e := range r.Experiments {
		n += e.HOEvents
	}
	return n
}

// Failed counts experiments that errored (skipped ones excluded).
func (r Report) Failed() int {
	n := 0
	for _, e := range r.Experiments {
		if e.Err != "" && !e.Skipped {
			n++
		}
	}
	return n
}

// Marshal renders the report as indented JSON.
func (r Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metrics: marshal report: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report as indented JSON to path.
func (r Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("metrics: write report: %w", err)
	}
	return nil
}

// ReadFile parses a report previously written with WriteFile.
func ReadFile(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("metrics: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("metrics: parse report %s: %w", path, err)
	}
	return r, nil
}

// Probe counts the simulator work attributable to one experiment. The
// runner hands every spec its own probe via Options.WithProbe, and the
// drive helpers credit each completed drive to it; counters are atomic so
// an experiment may itself fan drives out across goroutines later.
type Probe struct {
	drives   atomic.Int64
	hoEvents atomic.Int64
}

// ObserveDrive credits one completed drive carrying hoEvents handovers.
func (p *Probe) ObserveDrive(hoEvents int) {
	p.drives.Add(1)
	p.hoEvents.Add(int64(hoEvents))
}

// Drives returns the number of drives observed so far.
func (p *Probe) Drives() int64 { return p.drives.Load() }

// HOEvents returns the number of handover events observed so far.
func (p *Probe) HOEvents() int64 { return p.hoEvents.Load() }

// ServerStats aggregates the liveness counters of a Prognos service:
// sessions served, observations streamed, predictions returned. All
// methods are safe for concurrent sessions.
type ServerStats struct {
	start         time.Time
	sessions      atomic.Int64
	active        atomic.Int64
	samples       atomic.Int64
	reports       atomic.Int64
	handovers     atomic.Int64
	predictions   atomic.Int64
	rejected      atomic.Int64
	sessionErrors atomic.Int64
	oversized     atomic.Int64

	interrupted     atomic.Int64
	resumed         atomic.Int64
	parked          atomic.Int64
	parkedExpired   atomic.Int64
	checkpointSaves atomic.Int64
	checkpointLoads atomic.Int64
	checkpointBytes atomic.Int64

	redirected        atomic.Int64
	migratedOut       atomic.Int64
	migratedIn        atomic.Int64
	migratedResumes   atomic.Int64
	migrationBytesOut atomic.Int64
	migrationBytesIn  atomic.Int64
	migrationPasses   atomic.Int64
	migrationLastUS   atomic.Int64

	replicationPushes    atomic.Int64
	replicationBytesOut  atomic.Int64
	replicationBytesIn   atomic.Int64
	replicationLastPushU atomic.Int64 // unix µs of the last outbound push
	replicaSessions      atomic.Int64
	peerSuspects         atomic.Int64
	failovers            atomic.Int64

	latency Histogram
}

// NewServerStats returns a stats block with the uptime clock started.
func NewServerStats() *ServerStats {
	return &ServerStats{start: time.Now()}
}

// SessionOpened records a new prediction session.
func (s *ServerStats) SessionOpened() {
	s.sessions.Add(1)
	s.active.Add(1)
}

// SessionClosed records the end of a prediction session.
func (s *ServerStats) SessionClosed() { s.active.Add(-1) }

// AddSample records one streamed radio sample.
func (s *ServerStats) AddSample() { s.samples.Add(1) }

// AddReport records one sniffed measurement report.
func (s *ServerStats) AddReport() { s.reports.Add(1) }

// AddHandover records one sniffed handover command.
func (s *ServerStats) AddHandover() { s.handovers.Add(1) }

// AddPrediction records one prediction returned to a client.
func (s *ServerStats) AddPrediction() { s.predictions.Add(1) }

// SessionRejected records a session turned away at the concurrency limit.
func (s *ServerStats) SessionRejected() { s.rejected.Add(1) }

// SessionError records a session that ended with an error (bad hello,
// malformed record, deadline expiry, oversized input, ...).
func (s *ServerStats) SessionError() { s.sessionErrors.Add(1) }

// AddOversized records one input record that exceeded the line limit.
func (s *ServerStats) AddOversized() { s.oversized.Add(1) }

// SessionInterrupted records a resumable session cut by a transport fault
// and parked for reconnection (not counted as a session error).
func (s *ServerStats) SessionInterrupted() { s.interrupted.Add(1) }

// SessionResumed records a reconnecting client re-attached to its parked
// warm Prognos instance.
func (s *ServerStats) SessionResumed() { s.resumed.Add(1) }

// SessionParked / SessionUnparked move the parked-session gauge.
func (s *ServerStats) SessionParked() int64   { return s.parked.Add(1) }
func (s *ServerStats) SessionUnparked() int64 { return s.parked.Add(-1) }

// ParkedExpired records a parked session dropped at the end of its resume
// grace window (or evicted at the parked-table bound).
func (s *ServerStats) ParkedExpired() { s.parkedExpired.Add(1) }

// CheckpointSaved records one checkpoint write pass publishing n bytes of
// snapshot state; the byte gauge tracks the latest pass's total size.
func (s *ServerStats) CheckpointSaved(n int64) {
	s.checkpointSaves.Add(1)
	s.checkpointBytes.Store(n)
}

// CheckpointRestored records one (carrier, arch) snapshot restored from
// disk at startup.
func (s *ServerStats) CheckpointRestored() { s.checkpointLoads.Add(1) }

// SessionRedirected records a session turned away with a redirect to the
// cluster node that owns its token (not a session error: the client
// re-dials and is served there).
func (s *ServerStats) SessionRedirected() { s.redirected.Add(1) }

// SessionMigratedOut records one warm session state shipped to another
// node; SessionMigratedIn one installed from another node.
func (s *ServerStats) SessionMigratedOut() { s.migratedOut.Add(1) }
func (s *ServerStats) SessionMigratedIn()  { s.migratedIn.Add(1) }

// MigratedResume records a resumed session whose warm state arrived by
// migration rather than being parked locally — the warm-handoff success
// signal of a drain.
func (s *ServerStats) MigratedResume() { s.migratedResumes.Add(1) }

// MigrationShipped records the payload bytes of one outbound migration
// pass and its duration; MigrationReceived the inbound payload bytes.
func (s *ServerStats) MigrationShipped(bytes int64, d time.Duration) {
	s.migrationPasses.Add(1)
	s.migrationBytesOut.Add(bytes)
	s.migrationLastUS.Store(d.Microseconds())
}
func (s *ServerStats) MigrationReceived(bytes int64) { s.migrationBytesIn.Add(bytes) }

// ReplicationPushed records one outbound async replication pass shipping
// n payload bytes to ring successors; the push timestamp feeds the
// replication-lag gauge. ReplicationReceived records inbound replica
// payload bytes installed from a peer.
func (s *ServerStats) ReplicationPushed(bytes int64) {
	s.replicationPushes.Add(1)
	s.replicationBytesOut.Add(bytes)
	s.replicationLastPushU.Store(time.Now().UnixMicro())
}
func (s *ServerStats) ReplicationReceived(bytes int64) { s.replicationBytesIn.Add(bytes) }

// ReplicaStored / ReplicaDropped move the replica-session gauge: the
// number of peer session states held passively for crash failover. The
// gauge is deliberately separate from the parked-session gauge so a token
// that exists both locally and as a replica is never double-counted in
// prognos_parked_sessions.
func (s *ServerStats) ReplicaStored() int64  { return s.replicaSessions.Add(1) }
func (s *ServerStats) ReplicaDropped() int64 { return s.replicaSessions.Add(-1) }

// PeerSuspected / PeerRecovered move the suspect-peer gauge maintained by
// the failure detector.
func (s *ServerStats) PeerSuspected() int64 { return s.peerSuspects.Add(1) }
func (s *ServerStats) PeerRecovered() int64 { return s.peerSuspects.Add(-1) }

// Failover records one session promoted from replicated state after its
// ring owner was confirmed down.
func (s *ServerStats) Failover() { s.failovers.Add(1) }

// ObserveLatency records one request's server-side serving latency (for
// the prediction path: sample decode through response flush).
func (s *ServerStats) ObserveLatency(d time.Duration) { s.latency.Observe(d) }

// Snapshot returns a consistent-enough copy of the counters for export.
func (s *ServerStats) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		UptimeMS:      float64(time.Since(s.start)) / float64(time.Millisecond),
		Sessions:      s.sessions.Load(),
		Active:        s.active.Load(),
		Samples:       s.samples.Load(),
		Reports:       s.reports.Load(),
		Handovers:     s.handovers.Load(),
		Predictions:   s.predictions.Load(),
		Rejected:      s.rejected.Load(),
		SessionErrors: s.sessionErrors.Load(),
		Oversized:     s.oversized.Load(),

		Interrupted:        s.interrupted.Load(),
		Resumed:            s.resumed.Load(),
		Parked:             s.parked.Load(),
		ParkedExpired:      s.parkedExpired.Load(),
		CheckpointSaves:    s.checkpointSaves.Load(),
		CheckpointRestores: s.checkpointLoads.Load(),
		CheckpointBytes:    s.checkpointBytes.Load(),

		Redirected:        s.redirected.Load(),
		MigratedOut:       s.migratedOut.Load(),
		MigratedIn:        s.migratedIn.Load(),
		MigratedResumes:   s.migratedResumes.Load(),
		MigrationBytesOut: s.migrationBytesOut.Load(),
		MigrationBytesIn:  s.migrationBytesIn.Load(),
		MigrationPasses:   s.migrationPasses.Load(),
		MigrationLastUS:   s.migrationLastUS.Load(),

		ReplicationPushes:   s.replicationPushes.Load(),
		ReplicationBytesOut: s.replicationBytesOut.Load(),
		ReplicationBytesIn:  s.replicationBytesIn.Load(),
		ReplicationLagUS:    s.replicationLag(),
		ReplicaSessions:     s.replicaSessions.Load(),
		PeerSuspects:        s.peerSuspects.Load(),
		Failovers:           s.failovers.Load(),

		Latency: s.latency.Snapshot(),
	}
}

// replicationLag is the age of the last outbound replication push in
// microseconds — the bounded-staleness gauge: a crash of this node loses
// at most the samples accumulated over this window. Zero until the first
// push (replication off, or not yet started).
func (s *ServerStats) replicationLag() int64 {
	last := s.replicationLastPushU.Load()
	if last <= 0 {
		return 0
	}
	if lag := time.Now().UnixMicro() - last; lag > 0 {
		return lag
	}
	return 0
}

// ServerSnapshot is the JSON shape of a ServerStats export: what prognosd
// returns for a {"stats":true} hello and prints at shutdown.
type ServerSnapshot struct {
	// UptimeMS is the service uptime in milliseconds.
	UptimeMS float64 `json:"uptime_ms"`
	// Sessions counts sessions accepted since start; Active counts the
	// sessions currently open.
	Sessions int64 `json:"sessions"`
	Active   int64 `json:"active_sessions"`
	// Samples, Reports and Handovers count the streamed observations by
	// record kind; Predictions counts prediction lines returned.
	Samples     int64 `json:"samples"`
	Reports     int64 `json:"reports"`
	Handovers   int64 `json:"handovers"`
	Predictions int64 `json:"predictions"`
	// Rejected counts sessions turned away at the MaxSessions limit,
	// SessionErrors counts sessions that ended with an error, and
	// Oversized counts input records dropped for exceeding the line limit.
	Rejected      int64 `json:"rejected_sessions"`
	SessionErrors int64 `json:"session_errors"`
	Oversized     int64 `json:"oversized_records"`
	// Interrupted counts resumable sessions cut by a transport fault and
	// parked; Resumed counts reconnects that re-attached a warm instance.
	// Parked is the current parked-session gauge and ParkedExpired counts
	// parked sessions dropped at the end of their grace window.
	Interrupted   int64 `json:"interrupted_sessions"`
	Resumed       int64 `json:"resumed_sessions"`
	Parked        int64 `json:"parked_sessions"`
	ParkedExpired int64 `json:"expired_parked_sessions"`
	// CheckpointSaves counts checkpoint write passes, CheckpointRestores
	// the snapshots restored at startup, and CheckpointBytes the total
	// size of the most recent write pass.
	CheckpointSaves    int64 `json:"checkpoint_saves"`
	CheckpointRestores int64 `json:"checkpoint_restores"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`
	// Cluster counters. Redirected counts sessions answered with a
	// redirect to their ring owner; MigratedOut/In count warm session
	// states shipped to / installed from peer nodes, MigratedResumes the
	// resumes served from migrated (rather than locally parked) state.
	// MigrationBytesOut/In total the migration payload bytes moved,
	// MigrationPasses the outbound drain/rebalance passes, and
	// MigrationLastUS the duration of the most recent pass.
	Redirected        int64 `json:"redirected_sessions"`
	MigratedOut       int64 `json:"migrated_out_sessions"`
	MigratedIn        int64 `json:"migrated_in_sessions"`
	MigratedResumes   int64 `json:"migrated_resumes"`
	MigrationBytesOut int64 `json:"migration_bytes_out"`
	MigrationBytesIn  int64 `json:"migration_bytes_in"`
	MigrationPasses   int64 `json:"migration_passes"`
	MigrationLastUS   int64 `json:"migration_last_us"`
	// Crash-fault tolerance counters. ReplicationPushes counts outbound
	// async replication passes and ReplicationBytesOut/In the replica
	// payload bytes moved; ReplicationLagUS is the age of the most recent
	// outbound push (the bounded-staleness window — what a crash of this
	// node can lose). ReplicaSessions gauges the peer session states held
	// passively for failover (never folded into Parked), PeerSuspects the
	// ring peers the failure detector currently believes down, and
	// Failovers counts sessions promoted from replicated state after a
	// confirmed owner crash.
	ReplicationPushes   int64 `json:"replication_pushes"`
	ReplicationBytesOut int64 `json:"replication_bytes_out"`
	ReplicationBytesIn  int64 `json:"replication_bytes_in"`
	ReplicationLagUS    int64 `json:"replication_lag_us"`
	ReplicaSessions     int64 `json:"replica_sessions"`
	PeerSuspects        int64 `json:"peer_suspects"`
	Failovers           int64 `json:"failovers"`
	// Latency is the server-side per-sample serving latency histogram
	// (decode through response flush), the source of the ops plane's
	// prognos_request_latency_seconds series.
	Latency LatencySnapshot `json:"latency"`
}
