package metrics

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestReportRoundTrip writes a report to disk and reads it back unchanged.
func TestReportRoundTrip(t *testing.T) {
	r := Report{
		Seed:       7,
		Scale:      0.25,
		Jobs:       4,
		GoMaxProcs: 8,
		WallMS:     1234.5,
		Experiments: []Experiment{
			{ID: "fig8", Paper: "Figure 8", WallMS: 412.25, Rows: 9, Drives: 4, HOEvents: 311, Allocs: 1000, AllocBytes: 65536},
			{ID: "fig9", Paper: "Figure 9", WallMS: 88, Rows: 3, Drives: 1, HOEvents: 17},
			{ID: "table3", Paper: "Table 3", Err: "boom", Skipped: false},
			{ID: "fig18", Paper: "Figure 18", Err: "context canceled", Skipped: true},
		},
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestReportAggregates(t *testing.T) {
	r := Report{Experiments: []Experiment{
		{Drives: 3, HOEvents: 40},
		{Drives: 2, HOEvents: 2},
		{Err: "boom"},
		{Err: "context canceled", Skipped: true},
	}}
	if got := r.TotalDrives(); got != 5 {
		t.Errorf("TotalDrives = %d, want 5", got)
	}
	if got := r.TotalHOEvents(); got != 42 {
		t.Errorf("TotalHOEvents = %d, want 42", got)
	}
	if got := r.Failed(); got != 1 {
		t.Errorf("Failed = %d, want 1 (skipped experiments are not failures)", got)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("ReadFile on a missing path must fail")
	}
}

// TestProbeConcurrent exercises the atomic counters from many goroutines.
func TestProbeConcurrent(t *testing.T) {
	var p Probe
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.ObserveDrive(2)
			}
		}()
	}
	wg.Wait()
	if p.Drives() != 800 {
		t.Errorf("Drives = %d, want 800", p.Drives())
	}
	if p.HOEvents() != 1600 {
		t.Errorf("HOEvents = %d, want 1600", p.HOEvents())
	}
}

func TestServerStats(t *testing.T) {
	s := NewServerStats()
	s.SessionOpened()
	s.SessionOpened()
	s.SessionClosed()
	s.AddSample()
	s.AddSample()
	s.AddReport()
	s.AddHandover()
	s.AddPrediction()
	snap := s.Snapshot()
	if snap.Sessions != 2 || snap.Active != 1 {
		t.Errorf("sessions = %d active = %d, want 2/1", snap.Sessions, snap.Active)
	}
	if snap.Samples != 2 || snap.Reports != 1 || snap.Handovers != 1 || snap.Predictions != 1 {
		t.Errorf("counter snapshot %+v", snap)
	}
	if snap.UptimeMS < 0 {
		t.Errorf("uptime %v must be non-negative", snap.UptimeMS)
	}
}
