package metrics

import (
	"encoding/json"
	"fmt"
	"os"
)

// HOLoopArm is one policy arm's outcome for one UE in the adaptive-vs-
// static handover comparison: the same seed, route and deployment driven
// once under the static carrier policy and once under the prediction-driven
// adaptive layer.
type HOLoopArm struct {
	// Handovers counts every procedure; Moves the cell-changing subset the
	// ping-pong rate normalises over.
	Handovers int `json:"handovers"`
	Moves     int `json:"moves"`
	PingPongs int `json:"ping_pongs"`
	// PingPongRate is PingPongs/Moves (0 when no moves).
	PingPongRate float64 `json:"ping_pong_rate"`
	// InterruptMS is the summed execution-stage (T2) time of interrupting
	// handovers; MeanInterruptMS the per-handover mean.
	InterruptMS     float64 `json:"interrupt_ms"`
	MeanInterruptMS float64 `json:"mean_interrupt_ms"`
	// MeanTputMbps / StallFrac are the drive-level QoE summary.
	MeanTputMbps float64 `json:"mean_tput_mbps"`
	StallFrac    float64 `json:"stall_frac"`
	// TP/FP/FN are the event-level prediction outcomes of this arm's
	// forecast series (in-loop for adaptive, offline replay for static);
	// F1 the per-UE harmonic mean. The summary recomputes F1 from the
	// pooled tallies, which is why they are carried per arm.
	TP int     `json:"tp"`
	FP int     `json:"fp"`
	FN int     `json:"fn"`
	F1 float64 `json:"f1"`
}

// HOLoopUE is one UE's paired result.
type HOLoopUE struct {
	// Index is the UE's position in the fleet; Seed its derived drive seed.
	Index int   `json:"index"`
	Seed  int64 `json:"seed"`
	// Static and Adaptive are the two arms over identical seed/topology.
	Static   HOLoopArm `json:"static"`
	Adaptive HOLoopArm `json:"adaptive"`
	// EarlyPreps / SkipAheads / Reconfigs / PrepSavedMS summarise what the
	// controller did during the adaptive arm.
	EarlyPreps  int64   `json:"early_preps"`
	SkipAheads  int64   `json:"skip_aheads"`
	Reconfigs   int64   `json:"reconfigs"`
	PrepSavedMS float64 `json:"prep_saved_ms"`
	// Error records a per-UE failure (UE excluded from the summary).
	Error string `json:"error,omitempty"`
}

// HOLoopSummary aggregates the fleet.
type HOLoopSummary struct {
	UEs    int `json:"ues"`
	Errors int `json:"errors,omitempty"`
	// Pooled handover volumes and ping-pong tallies per arm; the rates are
	// pooled (total ping-pongs / total moves), not means of per-UE rates,
	// so sparse UEs do not distort them.
	StaticHandovers      int     `json:"static_handovers"`
	AdaptiveHandovers    int     `json:"adaptive_handovers"`
	StaticPingPongs      int     `json:"static_ping_pongs"`
	AdaptivePingPongs    int     `json:"adaptive_ping_pongs"`
	StaticPingPongRate   float64 `json:"static_ping_pong_rate"`
	AdaptivePingPongRate float64 `json:"adaptive_ping_pong_rate"`
	// PingPongReduction is the relative rate drop (1 − adaptive/static;
	// 0 when the static rate is 0).
	PingPongReduction float64 `json:"ping_pong_reduction"`
	// Mean per-handover interruption (pooled) per arm.
	StaticMeanInterruptMS   float64 `json:"static_mean_interrupt_ms"`
	AdaptiveMeanInterruptMS float64 `json:"adaptive_mean_interrupt_ms"`
	// Fleet-mean QoE per arm.
	StaticMeanTputMbps   float64 `json:"static_mean_tput_mbps"`
	AdaptiveMeanTputMbps float64 `json:"adaptive_mean_tput_mbps"`
	StaticStallFrac      float64 `json:"static_stall_frac"`
	AdaptiveStallFrac    float64 `json:"adaptive_stall_frac"`
	// Pooled event-level F1 per arm (recomputed from summed TP/FP/FN).
	StaticF1   float64 `json:"static_f1"`
	AdaptiveF1 float64 `json:"adaptive_f1"`
	// Controller action totals.
	EarlyPreps  int64   `json:"early_preps"`
	SkipAheads  int64   `json:"skip_aheads"`
	Reconfigs   int64   `json:"reconfigs"`
	PrepSavedMS float64 `json:"prep_saved_ms"`
}

// HOLoopReport is the full adaptive-vs-static comparison. Like SweepReport
// it carries no wall-clock or worker-count fields: the bytes for a given
// configuration are identical at any -jobs setting.
type HOLoopReport struct {
	Seed    int64  `json:"seed"`
	UEs     int    `json:"ues"`
	Carrier string `json:"carrier"`
	Arch    string `json:"arch"`
	// DriveSeconds is the per-UE sim duration; PingPongWindowS the A→B→A
	// critical window; WindowSeconds the prediction-window match tolerance.
	DriveSeconds    float64 `json:"drive_seconds"`
	PingPongWindowS float64 `json:"ping_pong_window_s"`
	WindowSeconds   float64 `json:"window_seconds"`
	// EarlyPrep/SkipAhead/AdaptTTT record which controls the adaptive arm
	// ran with (ablations switch them individually).
	EarlyPrep bool `json:"early_prep"`
	SkipAhead bool `json:"skip_ahead"`
	AdaptTTT  bool `json:"adapt_ttt"`

	Results []HOLoopUE    `json:"results"`
	Summary HOLoopSummary `json:"summary"`
}

// Summarize computes the fleet aggregates from Results.
func (r *HOLoopReport) Summarize() {
	s := HOLoopSummary{UEs: len(r.Results)}
	var sMoves, aMoves int
	var sIntrTotal, aIntrTotal float64
	var sIntrCount, aIntrCount int
	var sTput, aTput, sStall, aStall float64
	var sTP, sFP, sFN, aTP, aFP, aFN int
	n := 0
	for _, u := range r.Results {
		if u.Error != "" {
			s.Errors++
			continue
		}
		n++
		s.StaticHandovers += u.Static.Handovers
		s.AdaptiveHandovers += u.Adaptive.Handovers
		s.StaticPingPongs += u.Static.PingPongs
		s.AdaptivePingPongs += u.Adaptive.PingPongs
		sMoves += u.Static.Moves
		aMoves += u.Adaptive.Moves
		sIntrTotal += u.Static.InterruptMS
		aIntrTotal += u.Adaptive.InterruptMS
		if u.Static.MeanInterruptMS > 0 {
			sIntrCount += int(u.Static.InterruptMS/u.Static.MeanInterruptMS + 0.5)
		}
		if u.Adaptive.MeanInterruptMS > 0 {
			aIntrCount += int(u.Adaptive.InterruptMS/u.Adaptive.MeanInterruptMS + 0.5)
		}
		sTput += u.Static.MeanTputMbps
		aTput += u.Adaptive.MeanTputMbps
		sStall += u.Static.StallFrac
		aStall += u.Adaptive.StallFrac
		sTP += u.Static.TP
		sFP += u.Static.FP
		sFN += u.Static.FN
		aTP += u.Adaptive.TP
		aFP += u.Adaptive.FP
		aFN += u.Adaptive.FN
		s.EarlyPreps += u.EarlyPreps
		s.SkipAheads += u.SkipAheads
		s.Reconfigs += u.Reconfigs
		s.PrepSavedMS += u.PrepSavedMS
	}
	if sMoves > 0 {
		s.StaticPingPongRate = float64(s.StaticPingPongs) / float64(sMoves)
	}
	if aMoves > 0 {
		s.AdaptivePingPongRate = float64(s.AdaptivePingPongs) / float64(aMoves)
	}
	if s.StaticPingPongRate > 0 {
		s.PingPongReduction = 1 - s.AdaptivePingPongRate/s.StaticPingPongRate
	}
	if sIntrCount > 0 {
		s.StaticMeanInterruptMS = sIntrTotal / float64(sIntrCount)
	}
	if aIntrCount > 0 {
		s.AdaptiveMeanInterruptMS = aIntrTotal / float64(aIntrCount)
	}
	if n > 0 {
		s.StaticMeanTputMbps = sTput / float64(n)
		s.AdaptiveMeanTputMbps = aTput / float64(n)
		s.StaticStallFrac = sStall / float64(n)
		s.AdaptiveStallFrac = aStall / float64(n)
	}
	s.StaticF1 = pooledF1(sTP, sFP, sFN)
	s.AdaptiveF1 = pooledF1(aTP, aFP, aFN)
	r.Summary = s
}

// pooledF1 computes the event-level F1 from pooled tallies.
func pooledF1(tp, fp, fn int) float64 {
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	rc := float64(tp) / float64(tp+fn)
	return 2 * p * rc / (p + rc)
}

// Marshal renders the report as indented JSON (stable key order — the
// bytes are the determinism contract, as with SweepReport).
func (r HOLoopReport) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteFile writes the report to path.
func (r HOLoopReport) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadHOLoopFile loads a report written by WriteFile.
func ReadHOLoopFile(path string) (HOLoopReport, error) {
	var r HOLoopReport
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("metrics: parse holoop report %s: %w", path, err)
	}
	return r, nil
}
