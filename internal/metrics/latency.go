package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe, log-bucketed latency histogram: the
// recording side of the fleet load generator and of any other path that
// needs tail percentiles without keeping every observation. Buckets follow
// the classic log-linear scheme (8 linear sub-buckets per power-of-two
// octave of nanoseconds), bounding the relative quantile error at 12.5%
// while keeping the whole structure a fixed 4 KiB of atomic counters —
// Observe is lock-free and allocation-free, so a thousand UEs can record
// into one Histogram concurrently.
//
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	minNS   atomic.Int64 // stored as -min so zero value means "unset"
	buckets [histBuckets]atomic.Int64
}

const (
	// histSubBits fixes 2^histSubBits linear sub-buckets per octave.
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	// histBuckets covers every int64 nanosecond value under the log-linear
	// index (maximum index is 495 for durations near 2^63 ns).
	histBuckets = 512
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	v := uint64(ns)
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits
	return (exp+1)<<histSubBits + int((v>>uint(exp))&(histSubBuckets-1))
}

// bucketUpperNS returns the inclusive upper bound of a bucket, i.e. the
// conservative value quantile lookups report for observations in it.
func bucketUpperNS(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	exp := uint(idx>>histSubBits - 1)
	lower := int64(histSubBuckets+idx&(histSubBuckets-1)) << exp
	return lower + int64(1)<<exp - 1
}

// Observe records one latency measurement. Negative durations clamp to 0.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.minNS.Load()
		if (cur != 0 && -ns <= cur) || h.minNS.CompareAndSwap(cur, -ns-1) {
			break
		}
	}
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns the q-quantile (0 < q <= 1) as a duration: the upper
// bound of the bucket holding the ceil(q*count)-th observation, clamped to
// the exact maximum. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	max := h.maxNS.Load()
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			if up := bucketUpperNS(i); up < max {
				return time.Duration(up)
			}
			break
		}
	}
	return time.Duration(max)
}

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Min returns the smallest observation (exact); 0 when empty.
func (h *Histogram) Min() time.Duration {
	v := h.minNS.Load()
	if v == 0 {
		return 0
	}
	return time.Duration(-v - 1)
}

// LatencyBucket is one non-empty histogram bucket in a snapshot.
type LatencyBucket struct {
	// UpperUS is the bucket's inclusive upper bound in microseconds.
	UpperUS float64 `json:"upper_us"`
	// Count is the number of observations that landed in the bucket.
	Count int64 `json:"count"`
}

// LatencySnapshot is the JSON shape of a Histogram export: the summary
// quantiles the paper-style latency tables need plus the full non-empty
// bucket list for re-analysis. All durations are microseconds.
type LatencySnapshot struct {
	// Count is the number of observations; all other fields are zero when
	// it is.
	Count int64 `json:"count"`
	// MeanUS is the exact arithmetic mean (from a running sum, not the
	// buckets); SumUS the exact running sum itself (what a Prometheus
	// histogram exposes as _sum).
	MeanUS float64 `json:"mean_us"`
	SumUS  float64 `json:"sum_us,omitempty"`
	// MinUS and MaxUS are the exact extremes.
	MinUS float64 `json:"min_us"`
	MaxUS float64 `json:"max_us"`
	// P50US..P999US are bucketed quantiles: upper bounds with at most
	// 12.5% relative error.
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	// Buckets lists the non-empty buckets in ascending order.
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// usOf converts nanoseconds to float microseconds.
func usOf(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Snapshot exports the histogram. Concurrent Observes may land between
// counter reads; the snapshot is consistent enough for reporting.
func (h *Histogram) Snapshot() LatencySnapshot {
	n := h.count.Load()
	if n == 0 {
		return LatencySnapshot{}
	}
	snap := LatencySnapshot{
		Count:  n,
		MeanUS: usOf(time.Duration(h.sumNS.Load() / n)),
		SumUS:  usOf(time.Duration(h.sumNS.Load())),
		MinUS:  usOf(h.Min()),
		MaxUS:  usOf(h.Max()),
		P50US:  usOf(h.Quantile(0.50)),
		P90US:  usOf(h.Quantile(0.90)),
		P99US:  usOf(h.Quantile(0.99)),
		P999US: usOf(h.Quantile(0.999)),
	}
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			snap.Buckets = append(snap.Buckets, LatencyBucket{UpperUS: usOf(time.Duration(bucketUpperNS(i))), Count: c})
		}
	}
	return snap
}
