package obs

import (
	"repro/internal/metrics"
)

// RegisterSweepMetrics exposes a running policy sweep's aggregates on a
// registry, so `vivisect sweep -ops-addr` makes a long portfolio run
// observable from the ops plane: carriers planned/done, convergence and
// re-convergence counts, the running median time-to-F1, and the population
// F1 floor so far.
func RegisterSweepMetrics(r *Registry, snap func() metrics.SweepProgress) {
	gauge := func(name, help string, sel func(metrics.SweepProgress) float64) {
		r.Gauge(name, help, func() float64 { return sel(snap()) })
	}
	gauge("prognos_sweep_carriers_planned", "Carriers this sweep will run.",
		func(p metrics.SweepProgress) float64 { return float64(p.Planned) })
	gauge("prognos_sweep_carriers_done", "Carriers finished so far.",
		func(p metrics.SweepProgress) float64 { return float64(p.Done) })
	gauge("prognos_sweep_carrier_errors", "Carriers that failed to run.",
		func(p metrics.SweepProgress) float64 { return float64(p.Errors) })
	gauge("prognos_sweep_converged", "Carriers whose windowed F1 reached the sweep threshold.",
		func(p metrics.SweepProgress) float64 { return float64(p.Converged) })
	gauge("prognos_sweep_reconverged", "Carriers that recovered the threshold after the mid-run policy drift.",
		func(p metrics.SweepProgress) float64 { return float64(p.Reconverged) })
	gauge("prognos_sweep_median_time_to_f1_seconds", "Running median sim-seconds to first reach the F1 threshold (converged carriers).",
		func(p metrics.SweepProgress) float64 { return p.MedianTimeToF1S })
	gauge("prognos_sweep_f1_floor", "Worst per-carrier F1 floor observed so far (0 until the first carrier finishes).",
		func(p metrics.SweepProgress) float64 {
			if !p.HasFloor {
				return 0
			}
			return p.F1Floor
		})
}
