package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseMetrics parses Prometheus text exposition into a flat
// name → value map. Unlabelled series are keyed by bare name; labelled
// series (histogram buckets) by the full `name{labels}` sample name. It
// understands exactly the subset Render emits, which is all the fleet's
// end-of-run cross-check needs.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: malformed exposition line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad sample value in %q: %w", line, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return out, nil
}

// Scrape fetches and parses /metrics from an ops plane at addr
// (host:port). The fleet load generator calls this at the end of a run to
// fold the server's own counters into its report.
func Scrape(addr string) (map[string]float64, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("obs: scrape %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s: status %s", addr, resp.Status)
	}
	return ParseMetrics(resp.Body)
}
