package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Config wires a Plane's endpoints. Every field is optional: a nil
// Registry serves an empty /metrics, a nil Tracer an empty /events, and a
// nil Ready func reports ready unconditionally.
type Config struct {
	// Registry backs /metrics.
	Registry *Registry
	// Tracer backs /events.
	Tracer *Tracer
	// Ready is the /readyz probe: it should report true once the daemon
	// can take traffic (listener up, checkpoint restore finished) and
	// flip to false the moment a drain begins, so load balancers stop
	// routing to a daemon that is finishing its last sessions.
	Ready func() bool
}

// ContentType is the exposition content type /metrics serves.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// NewHandler builds the ops-plane HTTP handler: /metrics, /healthz,
// /readyz, /events (JSONL, optional ?kind= filter) and the net/http/pprof
// suite under /debug/pprof/. It is exported separately from Listen so
// tests can drive it through httptest and embedders can mount it on an
// existing mux.
func NewHandler(c Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if c.Registry != nil {
			c.Registry.Render(w) //nolint:errcheck // client gone mid-write
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving HTTP. Anything deeper
		// belongs in /readyz.
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.Ready != nil && !c.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if c.Tracer == nil {
			return
		}
		kind := r.URL.Query().Get("kind")
		enc := json.NewEncoder(w)
		for _, e := range c.Tracer.Events() {
			if kind != "" && e.Kind != kind {
				continue
			}
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
	// pprof must be mounted explicitly: the ops plane uses its own mux,
	// never http.DefaultServeMux, so importing net/http/pprof elsewhere
	// cannot leak profiling onto an unexpected listener.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "prognos ops plane\n\n/metrics\n/healthz\n/readyz\n/events\n/debug/pprof/\n")
	})
	return mux
}

// Plane is a running ops-plane HTTP server.
type Plane struct {
	ln  net.Listener
	srv *http.Server
}

// Listen starts an ops plane on addr (port 0 picks a free port) and
// serves it on a background goroutine.
func Listen(addr string, c Config) (*Plane, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	p := &Plane{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(c),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go p.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return p, nil
}

// Addr returns the bound address.
func (p *Plane) Addr() string { return p.ln.Addr().String() }

// Shutdown gracefully stops the plane, letting in-flight scrapes finish
// until ctx expires. prognosd calls this after the session server has
// drained, so /metrics stays scrapeable throughout the drain itself.
func (p *Plane) Shutdown(ctx context.Context) error { return p.srv.Shutdown(ctx) }

// Close force-closes the plane.
func (p *Plane) Close() error { return p.srv.Close() }
