package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestRegisterSweepMetrics renders the sweep gauges off a live SweepStats
// and reads them back: mid-run progress must be scrapeable, and the floor
// gauge must report 0 until the first carrier finishes.
func TestRegisterSweepMetrics(t *testing.T) {
	var st metrics.SweepStats
	r := obs.NewRegistry()
	obs.RegisterSweepMetrics(r, st.Snapshot)

	scrape := func() map[string]float64 {
		var b bytes.Buffer
		if err := r.Render(&b); err != nil {
			t.Fatal(err)
		}
		got, err := obs.ParseMetrics(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	st.Start(10)
	got := scrape()
	if got["prognos_sweep_carriers_planned"] != 10 || got["prognos_sweep_carriers_done"] != 0 {
		t.Errorf("fresh sweep: %v", got)
	}
	if got["prognos_sweep_f1_floor"] != 0 {
		t.Errorf("floor before any carrier = %v, want 0", got["prognos_sweep_f1_floor"])
	}

	st.Observe(metrics.SweepCarrier{Converged: true, TimeToF1S: 60, FloorF1: 0.4})
	st.Observe(metrics.SweepCarrier{Converged: true, TimeToF1S: 120, Reconverged: true, ReconvergeS: 30, FloorF1: 0.2})
	st.Observe(metrics.SweepCarrier{Error: "boom"})
	got = scrape()
	want := map[string]float64{
		"prognos_sweep_carriers_planned":          10,
		"prognos_sweep_carriers_done":             3,
		"prognos_sweep_carrier_errors":            1,
		"prognos_sweep_converged":                 2,
		"prognos_sweep_reconverged":               1,
		"prognos_sweep_median_time_to_f1_seconds": 90,
		"prognos_sweep_f1_floor":                  0.2,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}
