package obs_test

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
)

// TestExpositionGolden pins the exposition encoder's exact output for a
// seeded registry: one counter, one gauge, one histogram with known
// observations. Series are sorted by name; histogram buckets are
// cumulative with second-valued le bounds.
func TestExpositionGolden(t *testing.T) {
	var h metrics.Histogram
	h.Observe(1000 * time.Nanosecond)
	h.Observe(3000 * time.Nanosecond)

	r := obs.NewRegistry()
	r.Counter("requests_total", "Requests served.", func() float64 { return 42 })
	r.Gauge("queue_depth", "Items in queue.", func() float64 { return 3.5 })
	r.Histogram("test_latency_seconds", "Request latency.", h.Snapshot)

	const want = `# HELP queue_depth Items in queue.
# TYPE queue_depth gauge
queue_depth 3.5
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total 42
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="1.023e-06"} 1
test_latency_seconds_bucket{le="3.0710000000000003e-06"} 2
test_latency_seconds_bucket{le="+Inf"} 2
test_latency_seconds_sum 4e-06
test_latency_seconds_count 2
`
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionLabeledGolden pins the labeled exposition: registry-wide
// const labels land on every sample (including each histogram bucket,
// before le), per-series labels merge in sorted key order, and the
// build_info identity gauge renders the version pair over a constant 1.
func TestExpositionLabeledGolden(t *testing.T) {
	var h metrics.Histogram
	h.Observe(1000 * time.Nanosecond)

	r := obs.NewRegistry()
	r.SetConstLabels(map[string]string{"node": "127.0.0.1:9000"})
	r.Counter("requests_total", "Requests served.", func() float64 { return 42 })
	r.Histogram("test_latency_seconds", "Request latency.", h.Snapshot)
	obs.RegisterBuildInfoValues(r, "go1.24", "abc123def456")

	const want = `# HELP prognos_build_info Build identity of this binary: constant 1 with the version labels.
# TYPE prognos_build_info gauge
prognos_build_info{go_version="go1.24",node="127.0.0.1:9000",revision="abc123def456"} 1
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{node="127.0.0.1:9000"} 42
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{node="127.0.0.1:9000",le="1.023e-06"} 1
test_latency_seconds_bucket{node="127.0.0.1:9000",le="+Inf"} 1
test_latency_seconds_sum{node="127.0.0.1:9000"} 1e-06
test_latency_seconds_count{node="127.0.0.1:9000"} 1
`
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("labeled exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Clearing the const labels restores bare per-series output.
	r.SetConstLabels(nil)
	b.Reset()
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); !strings.Contains(got, "\nrequests_total 42\n") {
		t.Errorf("clearing const labels did not restore bare samples:\n%s", got)
	}
	if !strings.Contains(b.String(), `prognos_build_info{go_version="go1.24",revision="abc123def456"} 1`) {
		t.Errorf("per-series labels lost after clearing const labels:\n%s", b.String())
	}
}

// TestRegisterBuildInfo exercises the debug.ReadBuildInfo path: under go
// test the revision is unknown, but the go_version label must match the
// running toolchain and the value must be 1.
func TestRegisterBuildInfo(t *testing.T) {
	r := obs.NewRegistry()
	obs.RegisterBuildInfo(r)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `go_version="`+runtime.Version()+`"`) {
		t.Errorf("build_info missing toolchain version %s:\n%s", runtime.Version(), b.String())
	}
	if !strings.Contains(b.String(), "prognos_build_info{") {
		t.Errorf("build_info series missing:\n%s", b.String())
	}
}

// TestServerMetricsRoundTrip renders the full prognosd metric family over
// a canned snapshot and checks the parsed values land on the snapshot's
// fields — the same path the fleet's end-of-run cross-check takes.
func TestServerMetricsRoundTrip(t *testing.T) {
	snap := metrics.ServerSnapshot{
		UptimeMS:           12_000,
		Sessions:           7,
		Active:             2,
		Samples:            140,
		Reports:            9,
		Handovers:          4,
		Predictions:        140,
		Rejected:           1,
		SessionErrors:      3,
		Oversized:          1,
		Interrupted:        5,
		Resumed:            4,
		Parked:             1,
		ParkedExpired:      1,
		CheckpointSaves:    2,
		CheckpointRestores: 1,
		CheckpointBytes:    2048,
		Redirected:         6,
		MigratedOut:        3,
		MigratedIn:         2,
		MigratedResumes:    2,
		MigrationBytesOut:  4096,
		MigrationBytesIn:   1024,
		MigrationPasses:    1,
		MigrationLastUS:    1_500_000,

		ReplicationPushes:   11,
		ReplicationBytesOut: 8192,
		ReplicationBytesIn:  512,
		ReplicationLagUS:    250_000,
		ReplicaSessions:     5,
		PeerSuspects:        1,
		Failovers:           2,
	}
	r := obs.NewRegistry()
	obs.RegisterServerMetrics(r, func() metrics.ServerSnapshot { return snap })

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"prognos_uptime_seconds":                            12,
		"prognos_sessions_total":                            7,
		"prognos_active_sessions":                           2,
		"prognos_samples_total":                             140,
		"prognos_reports_total":                             9,
		"prognos_handovers_total":                           4,
		"prognos_predictions_total":                         140,
		"prognos_rejected_sessions_total":                   1,
		"prognos_session_errors_total":                      3,
		"prognos_oversized_records_total":                   1,
		"prognos_interrupted_sessions_total":                5,
		"prognos_resumed_sessions_total":                    4,
		"prognos_parked_sessions":                           1,
		"prognos_expired_parked_sessions_total":             1,
		"prognos_checkpoint_saves_total":                    2,
		"prognos_checkpoint_restores_total":                 1,
		"prognos_checkpoint_bytes":                          2048,
		"prognos_redirected_sessions_total":                 6,
		"prognos_migrated_out_sessions_total":               3,
		"prognos_migrated_in_sessions_total":                2,
		"prognos_migrated_resumes_total":                    2,
		"prognos_migration_bytes_out_total":                 4096,
		"prognos_migration_bytes_in_total":                  1024,
		"prognos_migration_passes_total":                    1,
		"prognos_migration_last_seconds":                    1.5,
		"prognos_replication_pushes_total":                  11,
		"prognos_replication_bytes_total":                   8192,
		"prognos_replication_bytes_in_total":                512,
		"prognos_replication_lag_seconds":                   0.25,
		"prognos_replica_sessions":                          5,
		"prognos_peer_suspect":                              1,
		"prognos_failovers_total":                           2,
		"prognos_request_latency_seconds_count":             0,
		`prognos_request_latency_seconds_bucket{le="+Inf"}`: 0,
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}
}

// TestTracerRingOverwrite pins the ring semantics: past the capacity the
// oldest events are overwritten FIFO, Seq keeps counting globally, and
// Events() returns the surviving window oldest-first.
func TestTracerRingOverwrite(t *testing.T) {
	tr := obs.NewTracer(4)
	tr.SetWallClock(func() int64 { return 99 })
	for i := 0; i < 10; i++ {
		tr.Emit(obs.Event{Kind: obs.EvHOTrigger, MRSeq: int64(i)})
	}
	if got := tr.Total(); got != 10 {
		t.Errorf("Total() = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events() returned %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.MRSeq != int64(6+i) {
			t.Errorf("event %d = seq %d mr %d, want seq %d mr %d", i, e.Seq, e.MRSeq, wantSeq, 6+i)
		}
		if e.WallNS != 99 {
			t.Errorf("event %d wall %d, want pinned 99", i, e.WallNS)
		}
	}
}

// TestTracerMirror checks the -trace-file hook: every emitted event is
// written through as one JSON line at emit time, including ones the ring
// later overwrites.
func TestTracerMirror(t *testing.T) {
	var sink strings.Builder
	tr := obs.NewTracer(2)
	tr.SetWallClock(nil)
	tr.MirrorTo(&sink)
	for i := 0; i < 5; i++ {
		tr.Emit(obs.Event{Kind: obs.EvSessionOpen, Session: "s"})
	}
	if got := strings.Count(sink.String(), "\n"); got != 5 {
		t.Errorf("mirror captured %d lines, want 5 (ring cap must not bound the mirror)", got)
	}
}

// TestPlaneEndpoints drives the handler through httptest: /healthz,
// /metrics content type, /events JSONL with kind filtering, and the pprof
// index.
func TestPlaneEndpoints(t *testing.T) {
	tr := obs.NewTracer(16)
	tr.SetWallClock(nil)
	tr.Emit(obs.Event{Kind: obs.EvSessionOpen, Session: "a"})
	tr.Emit(obs.Event{Kind: obs.EvHOScore, Session: "a", Score: 0.4})
	reg := obs.NewRegistry()
	reg.Counter("x_total", "X.", func() float64 { return 1 })

	ts := httptest.NewServer(obs.NewHandler(obs.Config{Registry: reg, Tracer: tr}))
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, b.String()
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}
	resp, body = get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz with nil Ready = %d %q", resp.StatusCode, body)
	}
	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != obs.ContentType {
		t.Errorf("/metrics = %d, content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "x_total 1") {
		t.Errorf("/metrics body missing series:\n%s", body)
	}
	_, body = get("/events")
	if got := strings.Count(body, "\n"); got != 2 {
		t.Errorf("/events returned %d lines, want 2:\n%s", got, body)
	}
	_, body = get("/events?kind=" + obs.EvHOScore)
	if got := strings.Count(body, "\n"); got != 1 || !strings.Contains(body, `"ho_score"`) {
		t.Errorf("/events?kind=ho_score = %q", body)
	}
	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}
	resp, _ = get("/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", resp.StatusCode)
	}
}

// TestReadyzFlipsDuringDrain wires /readyz to a live server's Draining
// probe, exactly as prognosd does, and checks the flip: ready while
// serving, 503 the moment a drain begins.
func TestReadyzFlipsDuringDrain(t *testing.T) {
	srv, err := server.ListenWith("127.0.0.1:0", server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ts := httptest.NewServer(obs.NewHandler(obs.Config{
		Ready: func() bool { return !srv.Draining() },
	}))
	defer ts.Close()

	status := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(); got != http.StatusOK {
		t.Fatalf("/readyz while serving = %d, want 200", got)
	}
	if err := srv.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := status(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", got)
	}
}

// TestServerTracerEvents runs one real prediction session against a
// tracer-equipped server and checks the lifecycle events arrive with
// their deployment context.
func TestServerTracerEvents(t *testing.T) {
	tr := obs.NewTracer(64)
	srv, err := server.ListenWith("127.0.0.1:0", server.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := server.Dial(srv.Addr(), server.Hello{Carrier: "OpX", Arch: cellular.ArchNSA})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SendSample(trace.Sample{Arch: cellular.ArchNSA, ServingLTE: trace.CellObs{PCI: 1, Valid: true, RSRP: -85}}); err != nil {
		t.Fatal(err)
	}
	client.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		kinds := make(map[string]obs.Event)
		for _, e := range tr.Events() {
			kinds[e.Kind] = e
		}
		open, haveOpen := kinds[obs.EvSessionOpen]
		_, haveClose := kinds[obs.EvSessionClose]
		if haveOpen && haveClose {
			if open.Carrier != "OpX" || open.Arch != "NSA" {
				t.Errorf("session_open context = %q/%q, want OpX/NSA", open.Carrier, open.Arch)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session events never arrived; have %v", kinds)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParseMetricsErrors covers the parser's failure modes.
func TestParseMetricsErrors(t *testing.T) {
	if _, err := obs.ParseMetrics(strings.NewReader("busted\n")); err == nil {
		t.Error("malformed line parsed")
	}
	if _, err := obs.ParseMetrics(strings.NewReader("name notafloat\n")); err == nil {
		t.Error("bad value parsed")
	}
	m, err := obs.ParseMetrics(strings.NewReader("# HELP a b\n\na 1\n"))
	if err != nil || m["a"] != 1 {
		t.Errorf("ParseMetrics = %v, %v", m, err)
	}
}
