// Package obs is the out-of-band observability layer of the serving stack:
// a dependency-free HTTP ops plane (Prometheus text-format /metrics,
// /healthz, /readyz, /events, net/http/pprof) plus a bounded ring-buffer
// event tracer for the serving pipeline and the simulator's handover
// machinery.
//
// The paper's whole method is observation — XCAL and 5G Tracker expose
// every measurement report, handover event and stack transition so §4–§6
// can be measured. This package gives the reproduction's own serving
// daemon the same property: every counter internal/metrics records is
// scrapeable out of band, and the discrete events that drive the analysis
// (session lifecycle, ho_score emissions, HO triggers, checkpoint writes)
// stream through a Tracer that /events exposes as JSONL.
//
// Everything here is hand-rolled on the standard library: the exposition
// encoder speaks `text/plain; version=0.0.4` directly rather than pulling
// in a client library, matching the repo's no-new-dependencies rule.
package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// metricKind is the TYPE line vocabulary of the exposition format.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// metric is one registered series: a name, its metadata, and the collect
// closure sampled at scrape time.
type metric struct {
	name string
	help string
	kind metricKind
	// labels are per-series constant labels (e.g. build_info's version
	// pair), rendered merged with the registry's own constant labels.
	labels map[string]string
	// value collects a counter or gauge; hist collects a histogram.
	value func() float64
	hist  func() metrics.LatencySnapshot
}

// Registry holds the metrics the ops plane exposes. Collection is pull
// based: registration stores a closure, and every render samples the live
// value, so the registry adapts the existing atomic counters in
// internal/metrics without any double bookkeeping on the hot path.
//
// A Registry is safe for concurrent registration and rendering.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	// constLabels are stamped on every rendered sample — the cluster ops
	// plane sets {node="host:port"} so one scraper can tell N prognosd
	// instances apart. Empty means bare sample lines, byte-identical to
	// the pre-cluster exposition.
	constLabels map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// SetConstLabels sets labels rendered on every sample the registry emits
// (merged with any per-series labels; per-series wins on collision).
// prognosd uses this to stamp its cluster node identity on the /metrics
// exposition. Call before serving scrapes; an empty or nil map restores
// bare output.
func (r *Registry) SetConstLabels(labels map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(labels) == 0 {
		r.constLabels = nil
		return
	}
	r.constLabels = make(map[string]string, len(labels))
	for k, v := range labels {
		r.constLabels[k] = v
	}
}

// register stores one series, replacing any previous registration of the
// same name (last writer wins, like repeated flag definitions).
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[m.name] = m
}

// Counter registers a monotonically increasing series. fn is sampled at
// every scrape and must be safe for concurrent use.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, value: fn})
}

// Gauge registers a series that can go up and down.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, value: fn})
}

// LabeledGauge registers a gauge carrying per-series constant labels —
// the identity-series idiom (build_info and friends), where the labels
// are the payload and the value is a constant 1.
func (r *Registry) LabeledGauge(name, help string, labels map[string]string, fn func() float64) {
	ls := make(map[string]string, len(labels))
	for k, v := range labels {
		ls[k] = v
	}
	r.register(&metric{name: name, help: help, kind: kindGauge, labels: ls, value: fn})
}

// Histogram registers a latency distribution. fn returns a
// metrics.LatencySnapshot (the log-linear histogram export); the encoder
// renders it as a classic Prometheus cumulative-bucket histogram with
// second-valued `le` bounds.
func (r *Registry) Histogram(name, help string, fn func() metrics.LatencySnapshot) {
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: fn})
}

// Render writes the registry in Prometheus text exposition format
// (version 0.0.4), series sorted by name so output is deterministic and
// golden-testable.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	constLabels := r.constLabels
	r.mu.Unlock()

	// Collect outside the registry lock: collect closures may themselves
	// take locks (e.g. a server stats snapshot) and must not nest inside
	// ours.
	var b strings.Builder
	for _, m := range ms {
		labels := mergeLabels(constLabels, m.labels)
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		if m.kind == kindHistogram {
			renderHistogram(&b, m.name, labels, m.hist())
			continue
		}
		fmt.Fprintf(&b, "%s%s %s\n", m.name, renderLabels(labels, ""), formatValue(m.value()))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels overlays per-series labels on the registry constants
// (per-series wins). Both nil yields nil, keeping bare output bare.
func mergeLabels(base, over map[string]string) map[string]string {
	if len(base) == 0 {
		return over
	}
	out := make(map[string]string, len(base)+len(over))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// renderLabels formats a label set as `{k="v",...}` with keys sorted, or
// "" when there is nothing to render. le, when non-empty, is appended last
// — the histogram bucket convention.
func renderLabels(labels map[string]string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if le != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "le=%q", le)
	}
	b.WriteByte('}')
	return b.String()
}

// renderHistogram emits the cumulative `le` bucket series plus _sum and
// _count. The log-linear snapshot stores per-bucket counts with
// microsecond upper bounds; the exposition uses cumulative counts with
// second-valued bounds, which is what PromQL's histogram_quantile expects.
func renderHistogram(b *strings.Builder, name string, labels map[string]string, snap metrics.LatencySnapshot) {
	var cum int64
	for _, bk := range snap.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labels, formatValue(bk.UpperUS/1e6)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(labels, "+Inf"), snap.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels, ""), formatValue(snap.SumUS/1e6))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels, ""), snap.Count)
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trippable float, so integral values print without a
// decimal point.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes the characters the exposition format reserves in
// HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// RegisterServerMetrics registers the full prognosd metric family over a
// server-stats snapshot function (typically (*server.Server).Stats). Every
// scrape takes fresh snapshots, so the series always reflect the live
// atomic counters.
func RegisterServerMetrics(r *Registry, snap func() metrics.ServerSnapshot) {
	counter := func(name, help string, sel func(metrics.ServerSnapshot) int64) {
		r.Counter(name, help, func() float64 { return float64(sel(snap())) })
	}
	gauge := func(name, help string, sel func(metrics.ServerSnapshot) int64) {
		r.Gauge(name, help, func() float64 { return float64(sel(snap())) })
	}

	r.Gauge("prognos_uptime_seconds", "Seconds since the server started.",
		func() float64 { return snap().UptimeMS / 1e3 })
	counter("prognos_sessions_total", "Prediction sessions accepted since start.",
		func(s metrics.ServerSnapshot) int64 { return s.Sessions })
	gauge("prognos_active_sessions", "Prediction sessions currently open.",
		func(s metrics.ServerSnapshot) int64 { return s.Active })
	counter("prognos_samples_total", "Radio samples streamed in by clients.",
		func(s metrics.ServerSnapshot) int64 { return s.Samples })
	counter("prognos_reports_total", "Sniffed measurement reports streamed in.",
		func(s metrics.ServerSnapshot) int64 { return s.Reports })
	counter("prognos_handovers_total", "Sniffed handover commands streamed in.",
		func(s metrics.ServerSnapshot) int64 { return s.Handovers })
	counter("prognos_predictions_total", "Prediction lines returned to clients.",
		func(s metrics.ServerSnapshot) int64 { return s.Predictions })
	counter("prognos_rejected_sessions_total", "Sessions turned away at the MaxSessions limit.",
		func(s metrics.ServerSnapshot) int64 { return s.Rejected })
	counter("prognos_session_errors_total", "Sessions that ended with a protocol or engine error.",
		func(s metrics.ServerSnapshot) int64 { return s.SessionErrors })
	counter("prognos_oversized_records_total", "Input records dropped for exceeding the line limit.",
		func(s metrics.ServerSnapshot) int64 { return s.Oversized })
	counter("prognos_interrupted_sessions_total", "Resumable sessions cut by a transport fault and parked.",
		func(s metrics.ServerSnapshot) int64 { return s.Interrupted })
	counter("prognos_resumed_sessions_total", "Reconnects that re-attached a parked warm instance.",
		func(s metrics.ServerSnapshot) int64 { return s.Resumed })
	gauge("prognos_parked_sessions", "Warm instances currently parked awaiting resume.",
		func(s metrics.ServerSnapshot) int64 { return s.Parked })
	counter("prognos_expired_parked_sessions_total", "Parked sessions dropped at the end of their grace window.",
		func(s metrics.ServerSnapshot) int64 { return s.ParkedExpired })
	counter("prognos_checkpoint_saves_total", "Checkpoint write passes completed.",
		func(s metrics.ServerSnapshot) int64 { return s.CheckpointSaves })
	counter("prognos_checkpoint_restores_total", "Snapshots restored from checkpoint files at startup.",
		func(s metrics.ServerSnapshot) int64 { return s.CheckpointRestores })
	gauge("prognos_checkpoint_bytes", "Bytes published by the most recent checkpoint pass.",
		func(s metrics.ServerSnapshot) int64 { return s.CheckpointBytes })
	counter("prognos_redirected_sessions_total", "Sessions answered with a redirect to their cluster ring owner.",
		func(s metrics.ServerSnapshot) int64 { return s.Redirected })
	counter("prognos_migrated_out_sessions_total", "Warm session states shipped to peer cluster nodes.",
		func(s metrics.ServerSnapshot) int64 { return s.MigratedOut })
	counter("prognos_migrated_in_sessions_total", "Warm session states installed from peer cluster nodes.",
		func(s metrics.ServerSnapshot) int64 { return s.MigratedIn })
	counter("prognos_migrated_resumes_total", "Resumes served from state that arrived by cluster migration.",
		func(s metrics.ServerSnapshot) int64 { return s.MigratedResumes })
	counter("prognos_migration_bytes_out_total", "Migration payload bytes shipped to peer nodes.",
		func(s metrics.ServerSnapshot) int64 { return s.MigrationBytesOut })
	counter("prognos_migration_bytes_in_total", "Migration payload bytes received from peer nodes.",
		func(s metrics.ServerSnapshot) int64 { return s.MigrationBytesIn })
	counter("prognos_migration_passes_total", "Outbound cluster drain/rebalance passes completed.",
		func(s metrics.ServerSnapshot) int64 { return s.MigrationPasses })
	r.Gauge("prognos_migration_last_seconds", "Duration of the most recent outbound migration pass.",
		func() float64 { return float64(snap().MigrationLastUS) / 1e6 })
	counter("prognos_replication_pushes_total", "Outbound async warm-state replication passes completed.",
		func(s metrics.ServerSnapshot) int64 { return s.ReplicationPushes })
	counter("prognos_replication_bytes_total", "Replication payload bytes shipped to ring successors.",
		func(s metrics.ServerSnapshot) int64 { return s.ReplicationBytesOut })
	counter("prognos_replication_bytes_in_total", "Replication payload bytes received from peer nodes.",
		func(s metrics.ServerSnapshot) int64 { return s.ReplicationBytesIn })
	r.Gauge("prognos_replication_lag_seconds",
		"Age of the most recent outbound replication push: the bounded-staleness window a crash of this node can lose.",
		func() float64 { return float64(snap().ReplicationLagUS) / 1e6 })
	gauge("prognos_replica_sessions", "Peer session states held passively for crash failover.",
		func(s metrics.ServerSnapshot) int64 { return s.ReplicaSessions })
	gauge("prognos_peer_suspect", "Ring peers the failure detector currently holds down.",
		func(s metrics.ServerSnapshot) int64 { return s.PeerSuspects })
	counter("prognos_failovers_total", "Sessions promoted from replicated state after a confirmed owner crash.",
		func(s metrics.ServerSnapshot) int64 { return s.Failovers })
	r.Histogram("prognos_request_latency_seconds",
		"Server-side per-sample serving latency (OnSample through response flush).",
		func() metrics.LatencySnapshot { return snap().Latency })
}

// RegisterBuildInfo registers prognos_build_info, the identity gauge that
// carries the binary's Go toolchain version and VCS revision as labels
// over a constant 1 — the Prometheus convention for joining build
// metadata onto any other series.
func RegisterBuildInfo(r *Registry) {
	revision := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	RegisterBuildInfoValues(r, runtime.Version(), revision)
}

// RegisterBuildInfoValues is RegisterBuildInfo with the label values
// injected — the golden-testable core (build metadata is not available
// under `go test`).
func RegisterBuildInfoValues(r *Registry, goVersion, revision string) {
	r.LabeledGauge("prognos_build_info",
		"Build identity of this binary: constant 1 with the version labels.",
		map[string]string{"go_version": goVersion, "revision": revision},
		func() float64 { return 1 })
}
