package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds recorded by the serving pipeline and the simulator. The
// vocabulary is deliberately small and flat: one JSONL line per event,
// every field optional except kind, so the stream greps and jqs cleanly.
const (
	// EvSessionOpen / EvSessionClose bracket a prediction session's clean
	// lifetime; EvSessionPark and EvSessionResume are the resilience-layer
	// transitions between them (an interrupted tokened session parks, a
	// reconnect resumes it).
	EvSessionOpen   = "session_open"
	EvSessionClose  = "session_close"
	EvSessionPark   = "session_park"
	EvSessionResume = "session_resume"
	// EvHOScore is an actionable prediction: the serving pipeline emitted
	// a response whose predicted handover type is not NONE.
	EvHOScore = "ho_score"
	// EvHOTrigger is a simulator-side handover command: the RAN policy
	// fired on a measurement report and scheduled the procedure.
	EvHOTrigger = "ho_trigger"
	// EvPolicyDrift is a simulator-side mid-run policy rewrite: the
	// carrier replaced its active measurement configuration and decision
	// logic while the drive (and any attached learner) was running.
	EvPolicyDrift = "policy_drift"
	// EvCheckpoint is one checkpoint persistence pass.
	EvCheckpoint = "checkpoint_persist"
	// EvMigrateOut is one warm-state shipment to a peer cluster node (a
	// drain or rebalance pass); EvMigrateIn is one session state
	// installed from a peer's shipment.
	EvMigrateOut = "migrate_out"
	EvMigrateIn  = "migrate_in"
	// EvPeerDown / EvPeerUp are failure-detector transitions: a ring peer
	// confirmed down after consecutive missed probes, and its later
	// recovery. EvFailover is one session promoted from replicated state
	// after its owner was confirmed down.
	EvPeerDown = "peer_down"
	EvPeerUp   = "peer_up"
	EvFailover = "failover"
)

// Event is one structured trace record. Seq and WallNS are assigned by
// the Tracer at emit time (WallNS only when unset, so deterministic
// producers like the simulator can suppress wall-clock noise via
// SetWallClock(nil)).
type Event struct {
	// Seq is the 1-based emission ordinal across the tracer's lifetime;
	// gaps in /events output mean the ring overwrote older entries.
	Seq uint64 `json:"seq"`
	// WallNS is the wall-clock emission time in Unix nanoseconds.
	WallNS int64 `json:"wall_ns,omitempty"`
	// SimMS is the simulation-time coordinate of simulator events, in
	// milliseconds of drive time.
	SimMS float64 `json:"sim_ms,omitempty"`
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// Session identifies the session (its resume token when it has one).
	Session string `json:"session,omitempty"`
	// Carrier/Arch are the deployment context of the event.
	Carrier string `json:"carrier,omitempty"`
	Arch    string `json:"arch,omitempty"`
	// HOType names the handover type of ho_score and ho_trigger events.
	HOType string `json:"ho_type,omitempty"`
	// Source/Target are the cells of a simulator HO trigger.
	Source string `json:"source,omitempty"`
	Target string `json:"target,omitempty"`
	// MRSeq is the measurement-report ordinal at a simulator HO trigger:
	// how many MRs the drive had logged when the policy fired.
	MRSeq int64 `json:"mr_seq,omitempty"`
	// Score is the emitted ho_score; RespSeq the response cursor of
	// session events (how many responses the session had answered).
	Score   float64 `json:"score,omitempty"`
	RespSeq int64   `json:"resp_seq,omitempty"`
	// Bytes carries the payload size of checkpoint events.
	Bytes int64 `json:"bytes,omitempty"`
	// Detail is free-form context for anything the fields above miss.
	Detail string `json:"detail,omitempty"`
}

// Tracer is a bounded, concurrency-safe ring buffer of Events. Emission
// never blocks and never grows past the capacity: when the ring is full
// the oldest event is overwritten, so a tracer can stay attached to a
// busy server forever and /events always returns the most recent window.
//
// A nil *Tracer is valid and ignores every call, so instrumentation sites
// need no guards.
type Tracer struct {
	mu     sync.Mutex
	buf    []Event
	cap    int
	total  uint64
	mirror *json.Encoder
	wall   func() int64
}

// DefaultTracerCap is the ring capacity NewTracer uses for capacity <= 0.
const DefaultTracerCap = 4096

// NewTracer returns a tracer holding up to capacity events
// (DefaultTracerCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{
		buf:  make([]Event, 0, capacity),
		cap:  capacity,
		wall: func() int64 { return time.Now().UnixNano() },
	}
}

// SetWallClock overrides the wall-clock source used to stamp events
// (tests pin it for golden output). A nil clock disables wall stamping
// entirely — the simulator uses this so identical seeds produce
// byte-identical event streams.
func (t *Tracer) SetWallClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.wall = fn
	t.mu.Unlock()
}

// MirrorTo additionally writes every subsequent event to w as one JSON
// line at emit time (the -trace-file hook). The writer is used under the
// tracer's lock; hand it an *os.File or other self-serializing sink.
func (t *Tracer) MirrorTo(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if w == nil {
		t.mirror = nil
	} else {
		t.mirror = json.NewEncoder(w)
	}
	t.mu.Unlock()
}

// Emit records one event, stamping Seq and (when unset) WallNS.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	e.Seq = t.total
	if e.WallNS == 0 && t.wall != nil {
		e.WallNS = t.wall()
	}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		// The ring is full: position (total-1) mod cap continues exactly
		// where the fill phase left off, so overwrite order is FIFO.
		t.buf[int((t.total-1)%uint64(t.cap))] = e
	}
	if t.mirror != nil {
		t.mirror.Encode(e) //nolint:errcheck // mirror is best-effort
	}
}

// Total returns how many events were ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.total <= uint64(t.cap) {
		return append(out, t.buf...)
	}
	head := int(t.total % uint64(t.cap)) // index of the oldest entry
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// WriteJSONL writes the buffered events to w, one JSON object per line,
// oldest first — the /events payload and the `vivisect trace` output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
