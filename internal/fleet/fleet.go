// Package fleet is the UE-fleet load-generation subsystem: it spins up N
// concurrent synthetic UEs, each replaying an independent simulated drive
// (internal/sim with a per-UE seed) through the real server.Client
// protocol, and measures the serving path the way the paper's deployment
// sketch would be measured in production — per-sample prediction latency
// into a log-bucketed histogram (internal/metrics.Histogram) plus a
// machine-readable Report.
//
// Two load modes mirror the two questions one asks of a serving stack:
//
//   - ModeOpen paces every UE at the paper's fixed 20 Hz sample rate and
//     measures latency from each sample's *scheduled* send time, so server
//     queueing (and coordinated omission) shows up in the tail instead of
//     silently shifting the send schedule.
//   - ModeClosed sends as fast as the round trip allows and measures
//     capacity: how many predictions per second the server sustains.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellular"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ran"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Mode selects how UEs pace their sample stream.
type Mode int

const (
	// ModeOpen is fixed 20 Hz pacing per UE (measures queueing).
	ModeOpen Mode = iota
	// ModeClosed is as-fast-as-possible round trips (measures capacity).
	ModeClosed
)

// String returns the mode name used in flags and reports.
func (m Mode) String() string {
	switch m {
	case ModeOpen:
		return "open"
	case ModeClosed:
		return "closed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode is the inverse of Mode.String, for command-line flags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "open":
		return ModeOpen, nil
	case "closed":
		return ModeClosed, nil
	default:
		return 0, fmt.Errorf("fleet: unknown mode %q (want open or closed)", s)
	}
}

// Config describes one fleet run.
type Config struct {
	// Addr is the Prognos server to load. Empty starts an in-process
	// server (with Server options) on a loopback port for the run —
	// the self-contained shape `make loadtest` uses.
	Addr string
	// Addrs points the fleet at an external cluster: the full member
	// list, in any order (the ring dedups and sorts). Each UE computes
	// its token's candidate order over the same consistent-hash ring the
	// servers use and dials the owner first, with the rest as fallbacks.
	// A single-element list degenerates to Addr. Mutually exclusive with
	// Addr, ClusterNodes and Chaos.
	Addrs []string
	// ClusterNodes > 1 starts an in-process cluster of that many nodes
	// (each with Server options plus its ring wiring) instead of the
	// single self-serve server. Mutually exclusive with Addr/Addrs/Chaos.
	ClusterNodes int
	// RollingRestart, in ClusterNodes mode, restarts every node once
	// during the load phase — drain-to-cluster, close, rebind, serve —
	// staggered evenly across the run. The acceptance bar is the same as
	// chaos: zero lost samples.
	RollingRestart bool
	// NodeKill, in ClusterNodes mode, hard-crashes node 0 halfway through
	// the load window — listener closed, every connection RST, no drain —
	// and revives it a quarter-window later with no local state. Survival
	// rests entirely on the async replication layer: the failure detector
	// confirms the node down, successors promote its sessions from their
	// replica tables, and anti-entropy re-warms the revived node. Defaults
	// Server.ReplicationInterval to 100ms when unset. Mutually exclusive
	// with RollingRestart (both workloads steer the same nodes).
	NodeKill bool
	// UEs is the fleet size (default 8).
	UEs int
	// Duration is how long each UE streams (default 10s).
	Duration time.Duration
	// Mode picks open- or closed-loop pacing.
	Mode Mode
	// Framing selects the record framing the UEs speak: "jsonl" (or "",
	// the default), "binary" (negotiated per docs/PROTOCOL.md), or
	// "mixed" — even-indexed UEs binary, odd-indexed JSONL — which is how
	// the protocol-compat suite exercises both framings against one
	// server in one run.
	Framing string
	// ClosedWindow is the closed-loop pipelining window (default 1: the
	// strict one-in-flight round trip). With a window W > 1 each UE
	// sends a burst of W samples before reading the W predictions back,
	// batching write flushes (ClientOptions.NoAutoFlush) so the syscall
	// cost amortises across the window. Ignored in open loop.
	ClosedWindow int
	// Carrier ("OpX"/"OpY"/"OpZ", default "OpX") and Arch (default NSA)
	// shape the drives and the per-session Prognos instances.
	Carrier string
	Arch    cellular.Arch
	// Route selects the drive route kind (default freeway); SpeedMPS the
	// travel speed (default 29 ≈ 105 km/h).
	Route    geo.RouteKind
	SpeedMPS float64
	// Seed makes the whole fleet deterministic: UE i drives the trace of
	// seed Seed + i*7919 + 1.
	Seed int64
	// Ramp staggers session starts uniformly across this window so a
	// large fleet does not arrive as a thundering herd (default 0: all
	// UEs start at once).
	Ramp time.Duration
	// DialTimeout bounds each UE's TCP connect (default: the client's
	// own 5s).
	DialTimeout time.Duration
	// MaxReconnects bounds each recovery's connect attempts (0 = the
	// resilient client's default of 8; negative = a single attempt, i.e.
	// no retries). Structured server rejections always fail fast.
	MaxReconnects int
	// OpsAddr wires the run to an HTTP ops plane (internal/obs). For a
	// self-serve run it is the address the fleet starts one on ("127.0.0.1:0"
	// picks a free port); for an external server it is the address of that
	// server's existing ops plane. Either way the run scrapes /metrics when
	// the load finishes and folds the counters into Report.OpsMetrics, so a
	// report carries both sides of the ledger: what the fleet sent and what
	// the server says it served. Empty disables the scrape.
	OpsAddr string
	// Adaptive, when set with at least one control enabled, closes the
	// prediction loop in every UE's drive generation: each drive is
	// simulated twice over the identical seed — once static (the baseline),
	// once with a ran.AdaptiveController steering the live policy — the
	// adaptive traces are what the fleet serves, and Report.Adaptive
	// carries the ping-pong comparison. Nil keeps generation unchanged.
	Adaptive *ran.AdaptiveConfig
	// Chaos, when set, interposes a fault-injecting proxy (internal/chaos)
	// between the fleet and the server: UEs dial the proxy, the proxy
	// forwards to the real server through seeded per-connection fault
	// plans. Self-serve runs default the server's ResumeGrace to 5s so
	// cut sessions resume instead of erroring.
	Chaos *chaos.Config
	// Server configures the in-process server when Addr is empty.
	Server server.Options
}

// withDefaults fills the documented defaults.
func (c Config) withDefaults() Config {
	if c.UEs <= 0 {
		c.UEs = 8
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Carrier == "" {
		c.Carrier = "OpX"
		if c.Arch == 0 { // ArchLTE zero value: default the pair to OpX/NSA
			c.Arch = cellular.ArchNSA
		}
	}
	if c.SpeedMPS <= 0 {
		c.SpeedMPS = 29
	}
	if c.ClosedWindow <= 0 {
		c.ClosedWindow = 1
	}
	if c.Chaos != nil && c.Addr == "" && c.Server.ResumeGrace == 0 {
		c.Server.ResumeGrace = 5 * time.Second
	}
	if len(c.Addrs) == 1 && c.Addr == "" {
		c.Addr, c.Addrs = c.Addrs[0], nil
	}
	// A cluster rig needs a resume grace window: migration parks shipped
	// sessions on the successor, and a restart is survivable only if the
	// cut sessions can resume.
	if c.ClusterNodes > 1 && c.Server.ResumeGrace == 0 {
		c.Server.ResumeGrace = 5 * time.Second
	}
	// A node-kill run is only survivable with replication streaming warm
	// state ahead of the crash; 100ms keeps the staleness bound (two
	// intervals + ship latency) well under the default resume grace.
	if c.NodeKill && c.Server.ReplicationInterval == 0 {
		c.Server.ReplicationInterval = 100 * time.Millisecond
	}
	return c
}

// ueSeed derives UE i's drive seed from the fleet seed.
func (c Config) ueSeed(i int) int64 { return c.Seed + int64(i)*7919 + 1 }

// ueToken is UE i's deterministic session token — the identity the ring
// places and a reconnect resumes.
func (c Config) ueToken(i int) string { return fmt.Sprintf("fleet-%d-ue-%d", c.Seed, i) }

// ueFraming picks UE i's wire framing under the fleet framing policy.
func (c Config) ueFraming(i int) wire.Framing {
	switch c.Framing {
	case "binary":
		return wire.FramingBinary
	case "mixed":
		if i%2 == 0 {
			return wire.FramingBinary
		}
	}
	return wire.FramingJSONL
}

// routeLengthM sizes each UE's route so an open-loop run of Duration never
// wraps, within the simulator's bounds.
func (c Config) routeLengthM() float64 {
	m := c.SpeedMPS*c.Duration.Seconds()*1.1 + 200
	if m < 1000 {
		m = 1000
	}
	if m > 25000 {
		m = 25000
	}
	return m
}

// Report is the machine-readable result of a fleet run: the run
// configuration, aggregate stream counters, the latency histogram, and
// (when reachable) the server's own snapshot for cross-checking.
type Report struct {
	// UEs..Ramp echo the configuration the run used.
	UEs  int    `json:"ues"`
	Mode string `json:"mode"`
	// Framing echoes the fleet framing policy ("jsonl"/"binary"/"mixed");
	// ClosedWindow the closed-loop pipelining window when it was >1.
	Framing      string  `json:"framing,omitempty"`
	ClosedWindow int     `json:"closed_window,omitempty"`
	Carrier      string  `json:"carrier"`
	Arch         string  `json:"arch"`
	Route        string  `json:"route"`
	Seed         int64   `json:"seed"`
	DurationMS   float64 `json:"duration_ms"`
	RampMS       float64 `json:"ramp_ms,omitempty"`
	// GenMS is the wall time spent generating the fleet's drive traces
	// (before any load was applied); WallMS the wall time of the load
	// phase itself.
	GenMS  float64 `json:"gen_ms"`
	WallMS float64 `json:"wall_ms"`
	// Samples counts radio samples sent, Predictions the prediction lines
	// read back; Reports/Handovers are the one-way control-plane records
	// interleaved into the streams.
	Samples     int64 `json:"samples"`
	Predictions int64 `json:"predictions"`
	Reports     int64 `json:"reports"`
	Handovers   int64 `json:"handovers"`
	// FailedUEs counts UEs whose session ended in error; Errors lists up
	// to eight distinct error messages for diagnosis.
	FailedUEs int      `json:"failed_ues"`
	Errors    []string `json:"errors,omitempty"`
	// LostSamples counts samples that never earned a prediction across
	// the whole fleet (sent minus received, summed per UE). A healthy
	// run — even through chaos — is exactly zero.
	LostSamples int64 `json:"lost_samples"`
	// Reconnects counts successful session re-establishments after
	// transport faults; ResumedSessions how many re-attached server-side
	// warm state, ColdResumes how many had to start fresh.
	Reconnects      int64 `json:"reconnects,omitempty"`
	ResumedSessions int64 `json:"resumed_sessions,omitempty"`
	ColdResumes     int64 `json:"cold_resumes,omitempty"`
	// ChaosSeed/ChaosFaults describe the injected fault load when the
	// run went through a chaos proxy: the seed that replays it and how
	// many of the drawn per-connection plans carried at least one fault.
	ChaosSeed   int64 `json:"chaos_seed,omitempty"`
	ChaosFaults int   `json:"chaos_faults,omitempty"`
	// Cluster fields. Addrs is the member list the UEs routed over;
	// ClusterSize its length; RollingRestarts how many node restarts the
	// run performed under load. Redirects counts client-followed
	// ownership redirects; MigratedSessions/MigrationBytes the warm
	// states and payload bytes the cluster moved (server-side, outbound);
	// WarmResumeRatio is resumed/(resumed+cold) across the fleet — the
	// zero-loss acceptance bar wants it near 1.
	Addrs            []string `json:"addrs,omitempty"`
	ClusterSize      int      `json:"cluster_size,omitempty"`
	RollingRestarts  int      `json:"rolling_restarts,omitempty"`
	Redirects        int64    `json:"redirects,omitempty"`
	MigratedSessions int64    `json:"migrated_sessions,omitempty"`
	MigrationBytes   int64    `json:"migration_bytes,omitempty"`
	WarmResumeRatio  float64  `json:"warm_resume_ratio,omitempty"`
	// Crash-fault fields (Config.NodeKill). NodeKills counts hard node
	// crashes the run inflicted; Failovers the sessions peers promoted from
	// replicated state; ReplicationPushes/ReplicationBytes the async
	// replication passes and payload the cluster shipped (server-side,
	// outbound).
	NodeKills         int          `json:"node_kills,omitempty"`
	Failovers         int64        `json:"failovers,omitempty"`
	ReplicationPushes int64        `json:"replication_pushes,omitempty"`
	ReplicationBytes  int64        `json:"replication_bytes,omitempty"`
	PerNode           []NodeReport `json:"per_node,omitempty"`
	// Adaptive is the closed-loop adaptive-vs-static comparison when the
	// run generated its drives under Config.Adaptive.
	Adaptive *AdaptiveSummary `json:"adaptive,omitempty"`
	// PredictionsPerSec is the fleet-wide serving throughput over the
	// load phase.
	PredictionsPerSec float64 `json:"predictions_per_sec"`
	// Latency is the per-sample prediction latency histogram. In open
	// loop it is measured from each sample's scheduled send time; in
	// closed loop it is the blocking round-trip time.
	Latency metrics.LatencySnapshot `json:"latency"`
	// Server is the served instance's own snapshot (always present for
	// self-serve runs; best-effort via the stats endpoint otherwise).
	Server *metrics.ServerSnapshot `json:"server,omitempty"`
	// OpsMetrics is the end-of-run /metrics scrape of the ops plane
	// (Config.OpsAddr), keyed by exposition sample name. Healthy runs
	// satisfy prognos_samples_total == Samples and
	// prognos_predictions_total == Predictions.
	OpsMetrics map[string]float64 `json:"ops_metrics,omitempty"`
}

// replay cycles one drive log as an endless, time-monotone stream: when
// the trace runs out it restarts with all timestamps shifted past the
// previous pass, exactly like trace.Merge chains logs.
type replay struct {
	log       *trace.Log
	i, ri, hi int
	tOff      time.Duration
}

// step returns the next sample (time-shifted) plus the index bounds of the
// control records due at or before it; the caller shifts their times by
// off when sending.
func (r *replay) step() (smp trace.Sample, reports []cellular.MeasurementReport, hos []cellular.HandoverEvent, off time.Duration) {
	if r.i >= len(r.log.Samples) {
		r.tOff += r.log.Duration() + trace.SamplePeriod
		r.i, r.ri, r.hi = 0, 0, 0
	}
	base := r.log.Samples[r.i]
	r.i++
	r0 := r.ri
	for r.ri < len(r.log.Reports) && r.log.Reports[r.ri].Time <= base.Time {
		r.ri++
	}
	h0 := r.hi
	for r.hi < len(r.log.Handovers) && r.log.Handovers[r.hi].Time <= base.Time {
		r.hi++
	}
	smp = base
	smp.Time += r.tOff
	return smp, r.log.Reports[r0:r.ri], r.log.Handovers[h0:r.hi], r.tOff
}

// counters aggregates the fleet-wide stream totals.
type counters struct {
	samples     atomic.Int64
	predictions atomic.Int64
	reports     atomic.Int64
	handovers   atomic.Int64
	lost        atomic.Int64
	reconnects  atomic.Int64
	resumed     atomic.Int64
	cold        atomic.Int64
	redirects   atomic.Int64
}

// Run executes one fleet load-generation run and returns its report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	switch cfg.Framing {
	case "", "jsonl", "binary", "mixed":
	default:
		return nil, fmt.Errorf("fleet: unknown framing %q (want jsonl, binary or mixed)", cfg.Framing)
	}
	carrier, err := topology.CarrierByName(cfg.Carrier)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if !carrier.Has(cfg.Arch) {
		return nil, fmt.Errorf("fleet: carrier %s does not offer %s", carrier.Name, cfg.Arch)
	}
	clustered := cfg.ClusterNodes > 1 || len(cfg.Addrs) > 1
	if clustered && (cfg.Addr != "" || cfg.Chaos != nil) {
		return nil, fmt.Errorf("fleet: cluster mode is mutually exclusive with Addr and Chaos")
	}
	if cfg.ClusterNodes > 1 && len(cfg.Addrs) > 1 {
		return nil, fmt.Errorf("fleet: set ClusterNodes or Addrs, not both")
	}
	if cfg.RollingRestart && cfg.ClusterNodes <= 1 {
		return nil, fmt.Errorf("fleet: RollingRestart requires an in-process cluster (ClusterNodes > 1)")
	}
	if cfg.NodeKill && cfg.ClusterNodes <= 1 {
		return nil, fmt.Errorf("fleet: NodeKill requires an in-process cluster (ClusterNodes > 1)")
	}
	if cfg.NodeKill && cfg.RollingRestart {
		return nil, fmt.Errorf("fleet: NodeKill and RollingRestart are mutually exclusive")
	}

	addr := cfg.Addr
	var (
		selfServe  *server.Server
		rig        *clusterRig
		clientRing *cluster.Ring
	)
	switch {
	case cfg.ClusterNodes > 1:
		rig, err = newClusterRig(cfg.ClusterNodes, cfg.Server)
		if err != nil {
			return nil, err
		}
		defer rig.close()
		clientRing = rig.ring
	case len(cfg.Addrs) > 1:
		// External cluster: the UEs route over their own ring built from
		// the same member list the servers were started with; redirects
		// correct any residual disagreement.
		clientRing, err = cluster.New(cfg.Addrs, cluster.NewRingPolicy())
		if err != nil {
			return nil, fmt.Errorf("fleet: cluster ring: %w", err)
		}
	case addr == "":
		selfServe, err = server.ListenWith("127.0.0.1:0", cfg.Server)
		if err != nil {
			return nil, fmt.Errorf("fleet: self-serve: %w", err)
		}
		defer selfServe.Close()
		addr = selfServe.Addr()
	}
	// A self-serve run with an OpsAddr gets its own ops plane over the
	// in-process counters — the single server's, or the cluster-wide
	// aggregate — exactly as prognosd -ops-addr would serve them; against
	// an external server the configured address is assumed to be that
	// daemon's already-running plane.
	scrapeAddr := cfg.OpsAddr
	if cfg.OpsAddr != "" && (selfServe != nil || rig != nil) {
		reg := obs.NewRegistry()
		ready := func() bool { return true }
		if rig != nil {
			obs.RegisterServerMetrics(reg, rig.aggregate)
		} else {
			obs.RegisterServerMetrics(reg, selfServe.Stats)
			ready = func() bool { return !selfServe.Draining() }
		}
		plane, err := obs.Listen(cfg.OpsAddr, obs.Config{
			Registry: reg,
			Ready:    ready,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: ops plane: %w", err)
		}
		defer plane.Close()
		scrapeAddr = plane.Addr()
	}
	// With chaos enabled, UEs dial the fault-injecting proxy; stats still
	// come from the server directly.
	loadAddr := addr
	var proxy *chaos.Proxy
	if cfg.Chaos != nil {
		proxy, err = chaos.NewProxy("127.0.0.1:0", addr, *cfg.Chaos)
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos proxy: %w", err)
		}
		defer proxy.Close()
		loadAddr = proxy.Addr()
	}

	// Phase 1: generate every UE's drive up front (bounded parallelism),
	// so trace generation cost never pollutes the latency measurements.
	genStart := time.Now()
	logs := make([]*trace.Log, cfg.UEs)
	genErrs := make([]error, cfg.UEs)
	var tally *adaptiveTally
	if cfg.Adaptive.Enabled() {
		tally = &adaptiveTally{}
	}
	var wg sync.WaitGroup
	genSlots := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < cfg.UEs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			genSlots <- struct{}{}
			defer func() { <-genSlots }()
			simCfg := sim.Config{
				Carrier:      carrier,
				Arch:         cfg.Arch,
				RouteKind:    cfg.Route,
				RouteLengthM: cfg.routeLengthM(),
				SpeedMPS:     cfg.SpeedMPS,
				Seed:         cfg.ueSeed(i),
				Adaptive:     cfg.Adaptive,
			}
			if tally != nil {
				logs[i], genErrs[i] = genAdaptive(simCfg, tally)
			} else {
				logs[i], genErrs[i] = sim.Run(simCfg)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range genErrs {
		if err != nil {
			return nil, fmt.Errorf("fleet: generating UE %d drive: %w", i, err)
		}
		if len(logs[i].Samples) == 0 {
			return nil, fmt.Errorf("fleet: UE %d drive produced no samples", i)
		}
	}
	genWall := time.Since(genStart)

	// Phase 2: apply the load.
	var (
		hist  metrics.Histogram
		tot   counters
		errMu sync.Mutex
		errs  []string
	)
	failed := atomic.Int64{}
	addErr := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		msg := err.Error()
		for _, e := range errs {
			if e == msg {
				return
			}
		}
		if len(errs) < 8 {
			errs = append(errs, msg)
		}
	}
	recordErr := func(err error) {
		failed.Add(1)
		addErr(err)
	}

	loadStart := time.Now()
	// The rolling-restart workload: under full load, drain-restart every
	// rig node once, staggered evenly across the run (node i restarts at
	// the (i+1)/(n+1) mark, so the first and last restart both land well
	// inside the load window).
	var restarts atomic.Int64
	restartDone := make(chan struct{})
	if cfg.RollingRestart && rig != nil {
		go func() {
			defer close(restartDone)
			n := len(rig.nodes)
			for i := 0; i < n; i++ {
				due := loadStart.Add(cfg.Duration * time.Duration(i+1) / time.Duration(n+1))
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				if err := rig.restart(i, 2*time.Second); err != nil {
					addErr(fmt.Errorf("rolling restart node %d: %w", i, err))
				}
				restarts.Add(1)
			}
		}()
	} else {
		close(restartDone)
	}
	// The node-kill workload: crash node 0 cold at the midpoint of the load
	// window, leave it dead for a quarter window (long enough for the
	// failure detector to confirm it and every affected UE to fail over),
	// then revive it empty so anti-entropy has load time left to re-warm it.
	var kills atomic.Int64
	killDone := make(chan struct{})
	if cfg.NodeKill && rig != nil {
		go func() {
			defer close(killDone)
			due := loadStart.Add(cfg.Duration / 2)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			rig.kill(0)
			kills.Add(1)
			due = due.Add(cfg.Duration / 4)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			if err := rig.revive(0); err != nil {
				addErr(fmt.Errorf("reviving killed node 0: %w", err))
			}
		}()
	} else {
		close(killDone)
	}
	for i := 0; i < cfg.UEs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.Ramp > 0 && cfg.UEs > 1 {
				time.Sleep(cfg.Ramp * time.Duration(i) / time.Duration(cfg.UEs))
			}
			ue := &ueRunner{
				id:     i,
				cfg:    cfg,
				addr:   loadAddr,
				replay: replay{log: logs[i]},
				hist:   &hist,
				tot:    &tot,
			}
			if clientRing != nil {
				// Cluster routing: dial the token's ring owner first; the
				// remaining candidates are the recovery fallbacks, in the
				// same order a drain would migrate the session.
				ue.route = clientRing.Candidates(cfg.ueToken(i))
			}
			if err := ue.run(); err != nil {
				recordErr(fmt.Errorf("ue %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	loadWall := time.Since(loadStart)
	<-restartDone
	<-killDone

	rep := &Report{
		UEs:        cfg.UEs,
		Mode:       cfg.Mode.String(),
		Framing:    cfg.Framing,
		Carrier:    cfg.Carrier,
		Arch:       cfg.Arch.String(),
		Route:      cfg.Route.String(),
		Seed:       cfg.Seed,
		DurationMS: float64(cfg.Duration) / float64(time.Millisecond),
		RampMS:     float64(cfg.Ramp) / float64(time.Millisecond),
		GenMS:      float64(genWall) / float64(time.Millisecond),
		WallMS:     float64(loadWall) / float64(time.Millisecond),

		Samples:         tot.samples.Load(),
		Predictions:     tot.predictions.Load(),
		Reports:         tot.reports.Load(),
		Handovers:       tot.handovers.Load(),
		FailedUEs:       int(failed.Load()),
		Errors:          errs,
		LostSamples:     tot.lost.Load(),
		Reconnects:      tot.reconnects.Load(),
		ResumedSessions: tot.resumed.Load(),
		ColdResumes:     tot.cold.Load(),
		Latency:         hist.Snapshot(),
	}
	if cfg.Mode == ModeClosed && cfg.ClosedWindow > 1 {
		rep.ClosedWindow = cfg.ClosedWindow
	}
	if tally != nil {
		rep.Adaptive = tally.summary(cfg.Adaptive)
	}
	if proxy != nil {
		rep.ChaosSeed = cfg.Chaos.Seed
		for _, p := range proxy.History() {
			if p.Active() {
				rep.ChaosFaults++
			}
		}
	}
	sort.Strings(rep.Errors)
	if secs := loadWall.Seconds(); secs > 0 {
		rep.PredictionsPerSec = float64(rep.Predictions) / secs
	}
	if clientRing != nil {
		rep.Addrs = clientRing.Members()
		rep.ClusterSize = clientRing.Size()
		rep.Redirects = tot.redirects.Load()
		rep.RollingRestarts = int(restarts.Load())
		rep.NodeKills = int(kills.Load())
	}
	if denom := tot.resumed.Load() + tot.cold.Load(); denom > 0 {
		rep.WarmResumeRatio = float64(tot.resumed.Load()) / float64(denom)
	}
	switch {
	case rig != nil:
		agg := rig.aggregate()
		rep.Server = &agg
		rep.MigratedSessions = agg.MigratedOut
		rep.MigrationBytes = agg.MigrationBytesOut
		rep.Failovers = agg.Failovers
		rep.ReplicationPushes = agg.ReplicationPushes
		rep.ReplicationBytes = agg.ReplicationBytesOut
		for _, n := range rig.nodes {
			rep.PerNode = append(rep.PerNode, nodeReport(n))
		}
	case clientRing != nil:
		// External cluster: per-node stats are best-effort — a member
		// mid-restart just drops out of this pass's report.
		var agg metrics.ServerSnapshot
		polled := false
		for _, a := range clientRing.Members() {
			snap, err := server.FetchStats(a)
			if err != nil {
				continue
			}
			polled = true
			agg = sumSnapshots(agg, snap)
			rep.PerNode = append(rep.PerNode, snapshotReport(a, snap))
		}
		if polled {
			rep.Server = &agg
			rep.MigratedSessions = agg.MigratedOut
			rep.MigrationBytes = agg.MigrationBytesOut
		}
	case selfServe != nil:
		snap := selfServe.Stats()
		rep.Server = &snap
	default:
		if snap, err := server.FetchStats(addr); err == nil {
			rep.Server = &snap
		}
	}
	if scrapeAddr != "" {
		m, err := obs.Scrape(scrapeAddr)
		if err != nil {
			return nil, fmt.Errorf("fleet: scraping ops plane: %w", err)
		}
		rep.OpsMetrics = m
	}
	return rep, nil
}

// ueRunner is one synthetic UE's session state.
type ueRunner struct {
	id   int
	cfg  Config
	addr string
	// route, in cluster mode, is the token's full candidate list in ring
	// order: route[0] is the owner the UE dials, the rest are recovery
	// fallbacks. Empty means single-target (addr).
	route  []string
	replay replay
	hist   *metrics.Histogram
	tot    *counters
}

// run dials the server through a resilient client — each UE carries a
// deterministic session token derived from its identity, so a transport
// fault mid-drive reconnects and resumes instead of failing the UE — and
// streams the drive for cfg.Duration.
func (u *ueRunner) run() error {
	retry := server.RetryPolicy{MaxAttempts: u.cfg.MaxReconnects}
	if u.cfg.MaxReconnects < 0 {
		retry.MaxAttempts = 1
	}
	// Windowed closed loop batches write flushes; the open-loop
	// writer/reader goroutine split requires auto-flush (see
	// ClientOptions.NoAutoFlush).
	batched := u.cfg.Mode == ModeClosed && u.cfg.ClosedWindow > 1
	addr := u.addr
	var fallbacks []string
	if len(u.route) > 0 {
		addr = u.route[0]
		fallbacks = u.route[1:]
	}
	client, err := server.DialResilient(addr, server.ResilientOptions{
		Hello: server.Hello{
			Carrier:      u.cfg.Carrier,
			Arch:         u.cfg.Arch,
			SessionToken: u.cfg.ueToken(u.id),
		},
		Dial: server.ClientOptions{
			DialTimeout: u.cfg.DialTimeout,
			Framing:     u.cfg.ueFraming(u.id),
			NoAutoFlush: batched,
		},
		Retry:     retry,
		Seed:      u.cfg.ueSeed(u.id),
		Fallbacks: fallbacks,
	})
	if err != nil {
		return err
	}
	defer func() {
		st := client.Stats()
		u.tot.lost.Add(st.Lost())
		u.tot.reconnects.Add(st.Reconnects)
		u.tot.resumed.Add(st.Resumed)
		u.tot.cold.Add(st.ColdResumes)
		u.tot.redirects.Add(st.Redirects)
		client.Close()
	}()
	if u.cfg.Mode == ModeClosed {
		return u.runClosed(client)
	}
	return u.runOpen(client)
}

// sendControl streams the control-plane records due before a sample.
func (u *ueRunner) sendControl(client *server.ResilientClient, reports []cellular.MeasurementReport, hos []cellular.HandoverEvent, off time.Duration) error {
	for _, mr := range reports {
		mr.Time += off
		if err := client.SendReport(mr); err != nil {
			return err
		}
		u.tot.reports.Add(1)
	}
	for _, ho := range hos {
		ho.Time += off
		if err := client.SendHandover(ho); err != nil {
			return err
		}
		u.tot.handovers.Add(1)
	}
	return nil
}

// runClosed measures capacity. With ClosedWindow 1 it is the strict
// blocking round trip, back to back. With a window W > 1 each iteration
// pipelines a burst of W samples and then reads the W predictions back;
// per-sample latency is still measured from that sample's own send time,
// so queueing behind the rest of the burst shows up honestly.
func (u *ueRunner) runClosed(client *server.ResilientClient) error {
	deadline := time.Now().Add(u.cfg.Duration)
	win := u.cfg.ClosedWindow
	if win <= 1 {
		for time.Now().Before(deadline) {
			smp, reports, hos, off := u.replay.step()
			if err := u.sendControl(client, reports, hos, off); err != nil {
				return err
			}
			t0 := time.Now()
			if _, err := client.SendSample(smp); err != nil {
				return err
			}
			u.hist.Observe(time.Since(t0))
			u.tot.samples.Add(1)
			u.tot.predictions.Add(1)
		}
		return nil
	}
	t0s := make([]time.Time, 0, win)
	for time.Now().Before(deadline) {
		t0s = t0s[:0]
		for k := 0; k < win; k++ {
			smp, reports, hos, off := u.replay.step()
			if err := u.sendControl(client, reports, hos, off); err != nil {
				return err
			}
			t0s = append(t0s, time.Now())
			if err := client.SendSampleAsync(smp); err != nil {
				return err
			}
			u.tot.samples.Add(1)
		}
		for _, t0 := range t0s {
			if _, err := client.ReadResponse(); err != nil {
				return err
			}
			u.hist.Observe(time.Since(t0))
			u.tot.predictions.Add(1)
		}
	}
	return nil
}

// runOpen measures queueing: a writer goroutine keeps the fixed 20 Hz
// schedule no matter how the server is doing, while the reader matches
// every prediction to its sample's *scheduled* send time — late responses
// therefore accumulate in the histogram tail rather than stretching the
// send schedule (no coordinated omission).
func (u *ueRunner) runOpen(client *server.ResilientClient) error {
	n := int(u.cfg.Duration / trace.SamplePeriod)
	if n < 1 {
		n = 1
	}
	sendTimes := make(chan time.Time, n)
	var writeErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(sendTimes)
		start := time.Now()
		for i := 0; i < n; i++ {
			due := start.Add(time.Duration(i) * trace.SamplePeriod)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			smp, reports, hos, off := u.replay.step()
			if err := u.sendControl(client, reports, hos, off); err != nil {
				writeErr = err
				return
			}
			if err := client.SendSampleAsync(smp); err != nil {
				writeErr = err
				return
			}
			u.tot.samples.Add(1)
			sendTimes <- due
		}
		// Half-close so the server finishes the session cleanly and the
		// reader sees every in-flight prediction before EOF (Finish
		// re-half-closes after any later recovery too).
		if err := client.Finish(); err != nil {
			writeErr = err
		}
	}()

	var readErr error
	for t0 := range sendTimes {
		if readErr != nil {
			continue // drain so the writer's channel sends never block
		}
		if _, err := client.ReadResponse(); err != nil {
			readErr = err
			client.Close() // unblock the writer
			continue
		}
		u.hist.Observe(time.Since(t0))
		u.tot.predictions.Add(1)
	}
	wg.Wait()
	if readErr != nil {
		return readErr
	}
	return writeErr
}
