package fleet

import (
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AdaptiveSummary is the fleet-level adaptive-vs-static comparison attached
// to a Report when Config.Adaptive is set: every UE's drive is generated
// twice over the identical seed — once static, once with the closed-loop
// controller — the adaptive traces are what the fleet serves, and the two
// arms' mobility quality is compared here.
type AdaptiveSummary struct {
	// EarlyPrep/SkipAhead/AdaptTTT echo the controls the arm ran with.
	EarlyPrep bool `json:"early_prep"`
	SkipAhead bool `json:"skip_ahead"`
	AdaptTTT  bool `json:"adapt_ttt"`
	// Pooled handover and ping-pong tallies per arm (rates over
	// cell-changing moves).
	StaticHandovers      int     `json:"static_handovers"`
	AdaptiveHandovers    int     `json:"adaptive_handovers"`
	StaticPingPongs      int     `json:"static_ping_pongs"`
	AdaptivePingPongs    int     `json:"adaptive_ping_pongs"`
	StaticPingPongRate   float64 `json:"static_ping_pong_rate"`
	AdaptivePingPongRate float64 `json:"adaptive_ping_pong_rate"`
	// PingPongReduction is the relative rate drop (1 − adaptive/static).
	PingPongReduction float64 `json:"ping_pong_reduction"`
	// Controller action totals across the fleet's drives.
	EarlyPreps  int64   `json:"early_preps"`
	SkipAheads  int64   `json:"skip_aheads"`
	Reconfigs   int64   `json:"reconfigs"`
	PrepSavedMS float64 `json:"prep_saved_ms"`
}

// adaptiveTally accumulates the comparison across concurrently generated
// drives.
type adaptiveTally struct {
	mu                   sync.Mutex
	staticHOs, adaptHOs  int
	staticMoves, aMoves  int
	staticPPs, adaptPPs  int
	preps, skips, reconf int64
	savedMS              float64
}

// observe folds one UE's pair of drives into the tally.
func (t *adaptiveTally) observe(staticLog, adaptLog *trace.Log, stats ran.AdaptiveStats, window time.Duration) {
	sMoves, sPP := movesAndPingPongs(staticLog, window)
	aMoves, aPP := movesAndPingPongs(adaptLog, window)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.staticHOs += len(staticLog.Handovers)
	t.adaptHOs += len(adaptLog.Handovers)
	t.staticMoves += sMoves
	t.aMoves += aMoves
	t.staticPPs += sPP
	t.adaptPPs += aPP
	t.preps += stats.EarlyPreps
	t.skips += stats.SkipAheads
	t.reconf += stats.Reconfigs
	t.savedMS += stats.PrepSavedMS
}

// summary renders the tally as the report's AdaptiveSummary.
func (t *adaptiveTally) summary(cfg *ran.AdaptiveConfig) *AdaptiveSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &AdaptiveSummary{
		EarlyPrep:         cfg.EarlyPrep,
		SkipAhead:         cfg.SkipAhead,
		AdaptTTT:          cfg.AdaptTTT,
		StaticHandovers:   t.staticHOs,
		AdaptiveHandovers: t.adaptHOs,
		StaticPingPongs:   t.staticPPs,
		AdaptivePingPongs: t.adaptPPs,
		EarlyPreps:        t.preps,
		SkipAheads:        t.skips,
		Reconfigs:         t.reconf,
		PrepSavedMS:       t.savedMS,
	}
	if t.staticMoves > 0 {
		s.StaticPingPongRate = float64(t.staticPPs) / float64(t.staticMoves)
	}
	if t.aMoves > 0 {
		s.AdaptivePingPongRate = float64(t.adaptPPs) / float64(t.aMoves)
	}
	if s.StaticPingPongRate > 0 {
		s.PingPongReduction = 1 - s.AdaptivePingPongRate/s.StaticPingPongRate
	}
	return s
}

// movesAndPingPongs counts a drive's cell-changing handovers and ping-pongs.
func movesAndPingPongs(log *trace.Log, window time.Duration) (moves, pps int) {
	for _, ho := range log.Handovers {
		if ho.SourceCell != "" && ho.TargetCell != "" && ho.SourceCell != ho.TargetCell {
			moves++
		}
	}
	return moves, analysis.PingPongs(log.Handovers, window)
}

// genAdaptive generates one UE's paired drives: the static baseline (for the
// comparison) and the closed-loop adaptive drive the fleet will serve.
func genAdaptive(cfg sim.Config, tally *adaptiveTally) (*trace.Log, error) {
	staticCfg := cfg
	staticCfg.Adaptive = nil
	staticLog, err := sim.Run(staticCfg)
	if err != nil {
		return nil, err
	}
	adaptLog, loop, err := sim.RunClosedLoop(cfg)
	if err != nil {
		return nil, err
	}
	window := cfg.Adaptive.PingPongWindow
	if window <= 0 {
		window = 5 * time.Second // NewAdaptiveController's default
	}
	tally.observe(staticLog, adaptLog, loop.Stats, window)
	return adaptLog, nil
}
