package fleet

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ran"
)

// TestFleetAdaptiveSummary pins the -adaptive fleet path: drives are
// generated twice (static and closed-loop), the adaptive traces are the ones
// served, and the report carries the aggregated comparison.
func TestFleetAdaptiveSummary(t *testing.T) {
	cfg := Config{
		UEs:      3,
		Duration: 300 * time.Millisecond,
		Mode:     ModeOpen,
		Seed:     11,
		Route:    geo.RouteCityLoop,
		Adaptive: ran.DefaultAdaptive(),
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("fleet errors: %+v", rep.Errors)
	}
	a := rep.Adaptive
	if a == nil {
		t.Fatal("adaptive run missing the comparison summary")
	}
	if !a.EarlyPrep || !a.SkipAhead || !a.AdaptTTT {
		t.Errorf("control echo: %+v", a)
	}
	if a.StaticHandovers == 0 || a.AdaptiveHandovers == 0 {
		t.Errorf("summary saw no handovers: %+v", a)
	}

	// Without Adaptive the report must not carry a summary — and the serve
	// path is unchanged.
	cfg.Adaptive = nil
	rep, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Adaptive != nil {
		t.Error("static run grew an adaptive summary")
	}
}
