package fleet

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

// TestFleetClusterClosedLoop drives a 3-node in-process cluster in closed
// loop: every UE dials its token's ring owner directly, so the run needs
// no redirects, every node serves its share, and the per-node rows sum to
// the aggregate.
func TestFleetClusterClosedLoop(t *testing.T) {
	rep, err := Run(Config{
		UEs:          12,
		Duration:     600 * time.Millisecond,
		Mode:         ModeClosed,
		Seed:         3,
		ClusterNodes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("failed UEs %d, errors %v", rep.FailedUEs, rep.Errors)
	}
	if rep.LostSamples != 0 || rep.Samples != rep.Predictions {
		t.Fatalf("lost %d (samples %d, predictions %d)", rep.LostSamples, rep.Samples, rep.Predictions)
	}
	if rep.ClusterSize != 3 || len(rep.Addrs) != 3 || len(rep.PerNode) != 3 {
		t.Fatalf("cluster accounting: size %d, addrs %v, per-node %d", rep.ClusterSize, rep.Addrs, len(rep.PerNode))
	}
	var nodeSamples, nodeSessions int64
	for _, n := range rep.PerNode {
		nodeSamples += n.Samples
		nodeSessions += n.Sessions
		if n.SessionErrors != 0 {
			t.Errorf("node %s counted %d session errors", n.Addr, n.SessionErrors)
		}
	}
	if nodeSamples != rep.Samples {
		t.Errorf("per-node samples sum %d != fleet samples %d", nodeSamples, rep.Samples)
	}
	if nodeSessions != int64(rep.UEs) {
		t.Errorf("per-node sessions sum %d != %d UEs", nodeSessions, rep.UEs)
	}
	// Ring-routed UEs land on their owner first try: no redirects.
	if rep.Redirects != 0 {
		t.Errorf("direct-routed run followed %d redirects", rep.Redirects)
	}
	if rep.Server == nil || rep.Server.Samples != rep.Samples {
		t.Fatalf("aggregate snapshot mismatch: %+v", rep.Server)
	}
}

// TestFleetRollingRestartZeroLoss is the cluster acceptance check in
// miniature (make cluster runs the full-size version): an open-loop fleet
// over a 3-node rig, with every node drain-restarted once under load, must
// finish with zero lost samples — warm migration parks each cut session on
// its ring successor, and the resilient clients resume there.
func TestFleetRollingRestartZeroLoss(t *testing.T) {
	rep, err := Run(Config{
		UEs:            8,
		Duration:       2 * time.Second,
		Mode:           ModeOpen,
		Seed:           9,
		ClusterNodes:   3,
		RollingRestart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("failed UEs %d, errors %v", rep.FailedUEs, rep.Errors)
	}
	if rep.LostSamples != 0 {
		t.Fatalf("lost %d samples through rolling restart (sent %d, predictions %d)",
			rep.LostSamples, rep.Samples, rep.Predictions)
	}
	if rep.RollingRestarts != 3 {
		t.Fatalf("rolling restarts %d, want 3", rep.RollingRestarts)
	}
	if rep.Server == nil {
		t.Fatal("cluster run lost the aggregate snapshot")
	}
	if rep.Server.SessionErrors != 0 {
		t.Fatalf("cluster counted %d session errors; drains must park, not error (errors %v)",
			rep.Server.SessionErrors, rep.Errors)
	}
	// Each restart cuts the sessions the node was serving; their warm
	// state must move and be resumed from, not rebuilt cold.
	if rep.MigratedSessions == 0 {
		t.Error("no sessions migrated — the drains never bit, test is vacuous")
	}
	if rep.MigrationBytes == 0 {
		t.Error("migration moved zero bytes")
	}
	if rep.ResumedSessions == 0 {
		t.Error("restarts happened but no session ever resumed")
	}
	if rep.WarmResumeRatio < 0.9 {
		t.Errorf("warm resume ratio %.2f (resumed %d, cold %d), want >= 0.9",
			rep.WarmResumeRatio, rep.ResumedSessions, rep.ColdResumes)
	}
	var restarts int
	for _, n := range rep.PerNode {
		restarts += n.Restarts
	}
	if restarts != 3 {
		t.Errorf("per-node restart sum %d, want 3", restarts)
	}
}

// TestFleetNodeKillZeroLoss is the crash-contract smoke at test scale: a
// closed-loop fleet over an in-process 3-node cluster with node 0
// hard-killed mid-run (no drain) and revived later. Replication plus
// detector-confirmed failover must hold the run to zero lost samples and
// zero session errors; which sessions fail over depends on where the
// ring placed the tokens (the ports are ephemeral), so the failover
// count itself is asserted only through the per-node kill accounting.
func TestFleetNodeKillZeroLoss(t *testing.T) {
	rep, err := Run(Config{
		UEs:          8,
		Duration:     2 * time.Second,
		Mode:         ModeClosed,
		Seed:         11,
		ClusterNodes: 3,
		NodeKill:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("failed UEs %d, errors %v", rep.FailedUEs, rep.Errors)
	}
	if rep.LostSamples != 0 {
		t.Fatalf("lost %d samples through the node kill (sent %d, predictions %d)",
			rep.LostSamples, rep.Samples, rep.Predictions)
	}
	if rep.NodeKills != 1 {
		t.Fatalf("node kills %d, want 1", rep.NodeKills)
	}
	if rep.Server == nil {
		t.Fatal("crash run lost the aggregate snapshot")
	}
	if rep.Server.SessionErrors != 0 {
		t.Fatalf("cluster counted %d session errors through the kill (errors %v)",
			rep.Server.SessionErrors, rep.Errors)
	}
	// The kill config forces a replication interval, so the loop must
	// have shipped state whether or not any session needed it.
	if rep.ReplicationPushes == 0 {
		t.Error("node-kill run recorded no replication pushes — the loop never ran")
	}
	if rep.ReplicationBytes == 0 {
		t.Error("replication pushed zero bytes")
	}
	// Sessions that did fail over must have resumed warm.
	if rep.ResumedSessions > 0 && rep.WarmResumeRatio < 0.9 {
		t.Errorf("warm resume ratio %.2f (resumed %d, cold %d), want >= 0.9",
			rep.WarmResumeRatio, rep.ResumedSessions, rep.ColdResumes)
	}
	var kills int
	for _, n := range rep.PerNode {
		kills += n.Kills
	}
	if kills != 1 {
		t.Errorf("per-node kill sum %d, want 1", kills)
	}
}

// TestFleetClusterExternalAddrs exercises the Addrs path: the servers are
// "external" (a rig the fleet run does not own), the UEs route over their
// own ring built from the member list, and per-node stats come from each
// node's stats endpoint.
func TestFleetClusterExternalAddrs(t *testing.T) {
	rig, err := newClusterRig(3, server.Options{ResumeGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.close()

	rep, err := Run(Config{
		UEs:      6,
		Duration: 400 * time.Millisecond,
		Mode:     ModeClosed,
		Seed:     17,
		Addrs:    rig.addrs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("failed UEs %d, errors %v", rep.FailedUEs, rep.Errors)
	}
	if rep.LostSamples != 0 {
		t.Fatalf("lost %d samples", rep.LostSamples)
	}
	if rep.ClusterSize != 3 || len(rep.PerNode) != 3 {
		t.Fatalf("external cluster accounting: size %d, per-node %d", rep.ClusterSize, len(rep.PerNode))
	}
	if rep.Server == nil || rep.Server.Samples != rep.Samples {
		t.Fatalf("fetched aggregate mismatch: %+v", rep.Server)
	}
}

// TestFleetClusterConfigErrors pins the mutual-exclusion rules.
func TestFleetClusterConfigErrors(t *testing.T) {
	bad := []Config{
		{ClusterNodes: 3, Addr: "127.0.0.1:1"},
		{Addrs: []string{"a:1", "b:2"}, Addr: "127.0.0.1:1"},
		{ClusterNodes: 3, Addrs: []string{"a:1", "b:2"}},
		{ClusterNodes: 2, Chaos: &chaos.Config{}},
		{RollingRestart: true},
		{RollingRestart: true, Addrs: []string{"a:1", "b:2"}},
		{NodeKill: true},
		{NodeKill: true, RollingRestart: true, ClusterNodes: 3},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}
