package fleet

import (
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestFleetChaosZeroLostSamples is the resilience acceptance check in
// miniature (make chaos runs the full-size version): an open-loop fleet
// through a fault-heavy chaos proxy must finish with every UE healthy and
// exactly zero lost samples — reconnect+resume absorbs the faults — while
// the server counts interruptions, not session errors.
func TestFleetChaosZeroLostSamples(t *testing.T) {
	cfg := Config{
		UEs:      8,
		Duration: 1500 * time.Millisecond,
		Mode:     ModeOpen,
		Seed:     5,
		Chaos: &chaos.Config{
			Seed:        11,
			ResetProb:   0.5,
			PartialProb: 0.4,
			LatencyProb: 0.25,
			StallProb:   0.25,
			StallFor:    5 * time.Millisecond,
		},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("failed UEs %d, errors %v", rep.FailedUEs, rep.Errors)
	}
	if rep.LostSamples != 0 {
		t.Fatalf("lost %d samples through chaos (sent %d, predictions %d)", rep.LostSamples, rep.Samples, rep.Predictions)
	}
	if rep.Samples != rep.Predictions {
		t.Fatalf("samples %d != predictions %d", rep.Samples, rep.Predictions)
	}
	if rep.ChaosSeed != 11 || rep.ChaosFaults == 0 {
		t.Fatalf("chaos accounting: seed %d, faults %d", rep.ChaosSeed, rep.ChaosFaults)
	}
	if rep.Reconnects == 0 {
		t.Fatal("no reconnects — the fault plan never bit, test is vacuous")
	}
	if rep.Server == nil {
		t.Fatal("self-serve report lost the server snapshot")
	}
	if rep.Server.SessionErrors != 0 {
		t.Fatalf("server counted %d session errors; transport faults must park, not error", rep.Server.SessionErrors)
	}
	// The proxy turns a client-side cut into a clean FIN toward the server,
	// so Interrupted may stay zero; resumed sessions are the proof that the
	// park/resume machinery (not blind resends) absorbed the faults.
	if rep.Server.Resumed == 0 && rep.ResumedSessions == 0 {
		t.Error("reconnects happened but no session ever resumed warm")
	}
}
