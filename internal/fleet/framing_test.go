package fleet

import (
	"testing"
	"time"
)

// TestFleetMixedFramingInterop is the wire-protocol interop check: half
// the fleet negotiates binary framing, half stays on JSONL (Framing
// "mixed"), all against one self-served server, with a pipelining window
// so the binary UEs exercise batched flushing. Every sample must earn a
// prediction regardless of which framing carried it — this is the smoke
// `make protocol-compat` runs under -race.
func TestFleetMixedFramingInterop(t *testing.T) {
	rep, err := Run(Config{
		UEs:          4,
		Duration:     400 * time.Millisecond,
		Mode:         ModeClosed,
		Seed:         13,
		Framing:      "mixed",
		ClosedWindow: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("fleet errors: %+v", rep.Errors)
	}
	if rep.Samples == 0 || rep.Samples != rep.Predictions {
		t.Errorf("samples/predictions = %d/%d, want equal and nonzero", rep.Samples, rep.Predictions)
	}
	if rep.Server == nil || rep.Server.Sessions != 4 || rep.Server.SessionErrors != 0 {
		t.Errorf("server snapshot %+v", rep.Server)
	}
	if rep.Framing != "mixed" || rep.ClosedWindow != 4 {
		t.Errorf("report echo framing=%q window=%d, want mixed/4", rep.Framing, rep.ClosedWindow)
	}
	if rep.Latency.Count != rep.Samples {
		t.Errorf("windowed run recorded %d latencies for %d samples", rep.Latency.Count, rep.Samples)
	}
}

// TestFleetBinaryOpenLoop pins the other quadrant: binary framing under
// the paper's 20 Hz open-loop pacing, where flushes are per-sample rather
// than batched. The schedule-bound invariant (every paced sample answered)
// must hold exactly as it does for JSONL.
func TestFleetBinaryOpenLoop(t *testing.T) {
	rep, err := Run(Config{
		UEs:      2,
		Duration: 400 * time.Millisecond,
		Mode:     ModeOpen,
		Seed:     17,
		Framing:  "binary",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("fleet errors: %+v", rep.Errors)
	}
	// 400ms at 20 Hz = 8 samples per UE, every one answered.
	want := int64(2 * 8)
	if rep.Samples != want || rep.Predictions != want {
		t.Errorf("samples/predictions = %d/%d, want %d", rep.Samples, rep.Predictions, want)
	}
}

// TestFleetRejectsBadFraming pins config validation for the new knob.
func TestFleetRejectsBadFraming(t *testing.T) {
	if _, err := Run(Config{UEs: 1, Duration: time.Millisecond, Framing: "protobuf"}); err == nil {
		t.Error("unknown framing accepted")
	}
}
