package fleet

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"open", ModeOpen}, {"closed", ModeClosed}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("Mode round trip %q -> %q", tc.in, got)
		}
	}
	if _, err := ParseMode("laps"); err == nil {
		t.Error("ParseMode accepted garbage")
	}
}

func TestReplayWrapsMonotonically(t *testing.T) {
	log, err := sim.Run(sim.Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteLengthM: 1000,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := replay{log: log}
	steps := 2*len(log.Samples) + 10 // force at least two wraps
	last := time.Duration(-1)
	var reports, hos int
	for i := 0; i < steps; i++ {
		smp, mrs, hs, off := r.step()
		if smp.Time <= last {
			t.Fatalf("step %d: time %v not after %v (wrap broke monotonicity)", i, smp.Time, last)
		}
		last = smp.Time
		for _, mr := range mrs {
			if shifted := mr.Time + off; shifted > smp.Time {
				t.Fatalf("report due at %v delivered with sample at %v", shifted, smp.Time)
			}
		}
		reports += len(mrs)
		hos += len(hs)
	}
	// Two full passes must deliver each control record twice.
	if want := 2 * len(log.Reports); reports < want {
		t.Errorf("replayed %d reports across two wraps, want >= %d", reports, want)
	}
	if want := 2 * len(log.Handovers); hos < want {
		t.Errorf("replayed %d handovers across two wraps, want >= %d", hos, want)
	}
}

// TestFleetOpenLoopSelfServe runs a small open-loop fleet against an
// in-process server and checks the report invariants end to end.
func TestFleetOpenLoopSelfServe(t *testing.T) {
	rep, err := Run(Config{
		UEs:      4,
		Duration: 600 * time.Millisecond,
		Mode:     ModeOpen,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 || len(rep.Errors) != 0 {
		t.Fatalf("fleet errors: %+v", rep.Errors)
	}
	// 600ms at 20 Hz = 12 samples per UE, every one answered.
	wantSamples := int64(4 * 12)
	if rep.Samples != wantSamples || rep.Predictions != wantSamples {
		t.Errorf("samples/predictions = %d/%d, want %d", rep.Samples, rep.Predictions, wantSamples)
	}
	if rep.Latency.Count != wantSamples {
		t.Errorf("histogram count %d, want %d", rep.Latency.Count, wantSamples)
	}
	if rep.Latency.P50US <= 0 || rep.Latency.P999US < rep.Latency.P50US || rep.Latency.MaxUS < rep.Latency.P999US {
		t.Errorf("implausible latency snapshot %+v", rep.Latency)
	}
	if rep.PredictionsPerSec <= 0 {
		t.Errorf("throughput %v", rep.PredictionsPerSec)
	}
	if rep.Mode != "open" || rep.UEs != 4 || rep.Carrier != "OpX" || rep.Arch != "NSA" {
		t.Errorf("config echo %+v", rep)
	}
	if rep.Server == nil {
		t.Fatal("self-serve run lost the server snapshot")
	}
	if rep.Server.Predictions != wantSamples || rep.Server.SessionErrors != 0 || rep.Server.Rejected != 0 {
		t.Errorf("server snapshot %+v", rep.Server)
	}
}

func TestFleetClosedLoopAgainstExternalServer(t *testing.T) {
	srv, err := server.ListenWith("127.0.0.1:0", server.Options{MaxSessions: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep, err := Run(Config{
		Addr:     srv.Addr(),
		UEs:      3,
		Duration: 300 * time.Millisecond,
		Mode:     ModeClosed,
		Carrier:  "OpY",
		Arch:     cellular.ArchSA,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs != 0 {
		t.Fatalf("fleet errors: %+v", rep.Errors)
	}
	if rep.Samples == 0 || rep.Samples != rep.Predictions {
		t.Errorf("samples/predictions = %d/%d", rep.Samples, rep.Predictions)
	}
	// Closed loop must push far past the 20 Hz open-loop rate per UE.
	perUEHz := float64(rep.Samples) / 3 / (float64(rep.WallMS) / 1000)
	if perUEHz < 2*trace.SampleHz {
		t.Errorf("closed loop managed only %.0f Hz per UE", perUEHz)
	}
	if rep.Server == nil || rep.Server.Sessions != 3 {
		t.Errorf("server snapshot %+v", rep.Server)
	}
}

// TestFleetSurfacesRejections drives more UEs than the server admits and
// checks that over-limit rejections surface as per-UE errors in the report.
func TestFleetSurfacesRejections(t *testing.T) {
	rep, err := Run(Config{
		UEs:      3,
		Duration: 300 * time.Millisecond,
		Mode:     ModeOpen,
		Seed:     5,
		Server:   server.Options{MaxSessions: 1},
		Ramp:     150 * time.Millisecond, // serialize arrivals so exactly one UE wins the slot
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedUEs == 0 {
		t.Fatal("over-limit fleet reported no failed UEs")
	}
	if len(rep.Errors) == 0 {
		t.Fatal("failed UEs left no error messages")
	}
	if rep.Server == nil || rep.Server.Rejected == 0 {
		t.Errorf("server snapshot lost the rejections: %+v", rep.Server)
	}
}

func TestFleetReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(Config{UEs: 1, Duration: 200 * time.Millisecond, Mode: ModeOpen, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.UEs != rep.UEs || back.Samples != rep.Samples || back.Latency.Count != rep.Latency.Count {
		t.Errorf("round trip lost fields: %+v vs %+v", back, rep)
	}
}

func TestFleetRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Carrier: "OpQ", UEs: 1, Duration: time.Millisecond}); err == nil {
		t.Error("unknown carrier accepted")
	}
	if _, err := Run(Config{Carrier: "OpX", Arch: cellular.ArchSA, UEs: 1, Duration: time.Millisecond}); err == nil {
		t.Error("OpX+SA accepted (OpX does not deploy SA)")
	}
}

// TestOpsScrapeMatchesReport is the acceptance cross-check for the ops
// plane: a self-serve run that starts one must end with scraped counters
// exactly matching the fleet's own report. Any drift here means /metrics
// is lying about the serving path.
func TestOpsScrapeMatchesReport(t *testing.T) {
	rep, err := Run(Config{
		UEs:      4,
		Duration: 600 * time.Millisecond,
		Mode:     ModeOpen,
		Seed:     11,
		OpsAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsMetrics == nil {
		t.Fatal("report carries no ops metrics despite OpsAddr being set")
	}
	if rep.Server == nil {
		t.Fatal("self-serve run lost its server snapshot")
	}
	for name, want := range map[string]float64{
		"prognos_samples_total":     float64(rep.Server.Samples),
		"prognos_sessions_total":    float64(rep.Server.Sessions),
		"prognos_predictions_total": float64(rep.Server.Predictions),
	} {
		got, ok := rep.OpsMetrics[name]
		if !ok {
			t.Errorf("scrape is missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s scraped %v, server counted %v", name, got, want)
		}
	}
	// The fleet's client-side sample count must agree with the scrape too:
	// every sample a UE sent was answered and counted exactly once.
	if got := rep.OpsMetrics["prognos_samples_total"]; got != float64(rep.Samples) {
		t.Errorf("scraped samples_total %v != fleet-side samples %d", got, rep.Samples)
	}
	// Each answered sample observes one request latency.
	if got := rep.OpsMetrics["prognos_request_latency_seconds_count"]; got != float64(rep.Server.Samples) {
		t.Errorf("latency histogram count %v != samples %d", got, rep.Server.Samples)
	}
}
