// Cluster load mode. The fleet can drive a multi-node prognosd cluster in
// two shapes: Config.Addrs points the UEs at an external member list, or
// Config.ClusterNodes spins up an in-process N-node rig on loopback ports
// — pre-bound listeners so every node knows the full ring before the
// first byte is served. Either way each UE routes itself by the same
// consistent-hash ring the servers use (ARCHITECTURE.md §Cluster), dialing
// its token's owner first with the remaining candidates as fallbacks, and
// follows server-issued redirects when its picture of ownership is stale.
//
// The rig also implements the rolling-restart workload: drain one node
// into the cluster (warm migration), close it, rebind the same address,
// bring it back, move to the next — all under load, asserting the
// zero-loss property end to end.

package fleet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
)

// clusterNode is one member of the in-process rig. A node outlives its
// server generations: restart swaps srv and folds the closed generation's
// counters into prior, so stats() spans the whole run. The mutex guards
// srv/prior against the ops plane scraping mid-restart; only the single
// rolling-restart goroutine ever mutates them.
type clusterNode struct {
	addr     string
	mu       sync.Mutex
	srv      *server.Server
	opts     server.Options
	prior    metrics.ServerSnapshot
	restarts int
	kills    int
}

// stats returns the node's counters across every generation so far.
func (n *clusterNode) stats() metrics.ServerSnapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	return sumSnapshots(n.prior, n.srv.Stats())
}

// clusterRig is the self-serve N-node cluster.
type clusterRig struct {
	ring  *cluster.Ring
	addrs []string
	nodes []*clusterNode
}

// newClusterRig pre-binds n loopback listeners, builds the ring over the
// resulting addresses, and only then starts the servers — so every node's
// ownership view is complete before it accepts its first session.
func newClusterRig(n int, opts server.Options) (*clusterRig, error) {
	lns := make([]net.Listener, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("fleet: cluster node %d: %w", i, err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	ring, err := cluster.New(addrs, cluster.NewRingPolicy())
	if err != nil {
		for _, l := range lns {
			l.Close()
		}
		return nil, fmt.Errorf("fleet: cluster ring: %w", err)
	}
	rig := &clusterRig{ring: ring, addrs: addrs}
	for i, ln := range lns {
		o := opts
		o.Cluster = ring
		o.NodeAddr = addrs[i]
		rig.nodes = append(rig.nodes, &clusterNode{
			addr: addrs[i],
			srv:  server.Serve(ln, o),
			opts: o,
		})
	}
	return rig, nil
}

// restart performs one rolling-restart step on node i: drain its warm
// state into the cluster, close it, rebind the same address, and serve
// again. The drain is best-effort — anything a peer nacked was folded
// into the node's own checkpoint path — so the restart proceeds even on a
// partial ship, and the error is reported for accounting.
func (r *clusterRig) restart(i int, drainTimeout time.Duration) error {
	n := r.nodes[i]
	_, drainErr := n.srv.DrainToCluster(drainTimeout)
	n.mu.Lock()
	n.prior = sumSnapshots(n.prior, n.srv.Stats())
	n.mu.Unlock()
	n.srv.Close()

	// The old listener held the port until Close; rebinding can still race
	// the kernel briefly, so retry across a short window.
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("fleet: rebinding restarted node %s: %w", n.addr, err)
	}
	n.mu.Lock()
	n.srv = server.Serve(ln, n.opts)
	n.restarts++
	n.mu.Unlock()
	return drainErr
}

// kill crashes node i: no drain, no checkpoint, no goodbye — the listener
// closes and every live connection is torn down with an RST, exactly the
// failure the replication layer exists to survive. The dead server object
// stays in place (its counters remain readable) until revive folds it into
// prior and swaps in a fresh generation.
func (r *clusterRig) kill(i int) {
	n := r.nodes[i]
	n.srv.Kill()
	n.mu.Lock()
	n.kills++
	n.mu.Unlock()
}

// revive brings a killed node back on its old address with a fresh, empty
// server — a crashed process restarting has no local state; whatever its
// sessions need now lives in its peers' replica tables and warm stores,
// and anti-entropy pushes it back over the following replication passes.
func (r *clusterRig) revive(i int) error {
	n := r.nodes[i]
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("fleet: rebinding revived node %s: %w", n.addr, err)
	}
	n.mu.Lock()
	n.prior = sumSnapshots(n.prior, n.srv.Stats())
	n.srv = server.Serve(ln, n.opts)
	n.mu.Unlock()
	return nil
}

// close shuts every node down.
func (r *clusterRig) close() {
	for _, n := range r.nodes {
		n.srv.Close()
	}
}

// aggregate sums every node's counters — the cluster-wide snapshot the
// ops plane and the report expose. Latency histograms do not sum across
// nodes (sparse buckets); the fleet's own client-side histogram covers
// the distribution, so the aggregate carries counters only.
func (r *clusterRig) aggregate() metrics.ServerSnapshot {
	var out metrics.ServerSnapshot
	for _, n := range r.nodes {
		out = sumSnapshots(out, n.stats())
	}
	return out
}

// sumSnapshots adds b's counters onto a. Gauges that only make sense per
// instance keep the maximum (uptime) or sum of current values (active,
// parked); the latency histogram is dropped (see aggregate).
func sumSnapshots(a, b metrics.ServerSnapshot) metrics.ServerSnapshot {
	if b.UptimeMS > a.UptimeMS {
		a.UptimeMS = b.UptimeMS
	}
	a.Sessions += b.Sessions
	a.Active += b.Active
	a.Samples += b.Samples
	a.Reports += b.Reports
	a.Handovers += b.Handovers
	a.Predictions += b.Predictions
	a.Rejected += b.Rejected
	a.SessionErrors += b.SessionErrors
	a.Oversized += b.Oversized
	a.Interrupted += b.Interrupted
	a.Resumed += b.Resumed
	a.Parked += b.Parked
	a.ParkedExpired += b.ParkedExpired
	a.CheckpointSaves += b.CheckpointSaves
	a.CheckpointRestores += b.CheckpointRestores
	a.CheckpointBytes += b.CheckpointBytes
	a.Redirected += b.Redirected
	a.MigratedOut += b.MigratedOut
	a.MigratedIn += b.MigratedIn
	a.MigratedResumes += b.MigratedResumes
	a.MigrationBytesOut += b.MigrationBytesOut
	a.MigrationBytesIn += b.MigrationBytesIn
	a.MigrationPasses += b.MigrationPasses
	if b.MigrationLastUS > a.MigrationLastUS {
		a.MigrationLastUS = b.MigrationLastUS
	}
	a.ReplicationPushes += b.ReplicationPushes
	a.ReplicationBytesOut += b.ReplicationBytesOut
	a.ReplicationBytesIn += b.ReplicationBytesIn
	// Lag is a per-instance freshness gauge; the aggregate reports the
	// worst (largest) member, the one bounding the cluster's staleness.
	if b.ReplicationLagUS > a.ReplicationLagUS {
		a.ReplicationLagUS = b.ReplicationLagUS
	}
	a.ReplicaSessions += b.ReplicaSessions
	a.PeerSuspects += b.PeerSuspects
	a.Failovers += b.Failovers
	a.Latency = metrics.LatencySnapshot{}
	return a
}

// NodeReport is one cluster member's slice of a fleet report.
type NodeReport struct {
	Addr     string `json:"addr"`
	Restarts int    `json:"restarts,omitempty"`
	// Kills counts hard crashes the run inflicted on this node (no drain;
	// the node's live state died with it and failover took over).
	Kills int `json:"kills,omitempty"`
	// Counters span every server generation of the node (restarts fold
	// the closed generation in), so a restarted node keeps its history.
	Sessions        int64 `json:"sessions"`
	Samples         int64 `json:"samples"`
	Predictions     int64 `json:"predictions"`
	Resumed         int64 `json:"resumed_sessions,omitempty"`
	Redirected      int64 `json:"redirected_sessions,omitempty"`
	MigratedOut     int64 `json:"migrated_out_sessions,omitempty"`
	MigratedIn      int64 `json:"migrated_in_sessions,omitempty"`
	MigratedResumes int64 `json:"migrated_resumes,omitempty"`
	SessionErrors   int64 `json:"session_errors,omitempty"`
	// Failovers counts sessions this node promoted from replicated state.
	Failovers int64 `json:"failovers,omitempty"`
}

// nodeReport flattens one rig node's lifetime counters.
func nodeReport(n *clusterNode) NodeReport {
	rep := snapshotReport(n.addr, n.stats())
	rep.Restarts = n.restarts
	rep.Kills = n.kills
	return rep
}

// snapshotReport flattens one member's snapshot (rig-held or fetched from
// an external node's stats endpoint) into its report row.
func snapshotReport(addr string, s metrics.ServerSnapshot) NodeReport {
	return NodeReport{
		Addr:            addr,
		Sessions:        s.Sessions,
		Samples:         s.Samples,
		Predictions:     s.Predictions,
		Resumed:         s.Resumed,
		Redirected:      s.Redirected,
		MigratedOut:     s.MigratedOut,
		MigratedIn:      s.MigratedIn,
		MigratedResumes: s.MigratedResumes,
		SessionErrors:   s.SessionErrors,
		Failovers:       s.Failovers,
	}
}
