package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanMedianBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Error("Min/Max")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty inputs must yield NaN")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("single-element stddev must be NaN")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-25) > 1e-9 {
		t.Errorf("p50 = %v", got)
	}
}

// TestPercentileProperties: percentile is monotone in p and bounded by
// min/max, regardless of input order.
func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone at p=%v", p)
			}
			if v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				t.Fatalf("percentile %v outside data range", v)
			}
			prev = v
		}
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF has %d points", len(pts))
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) {
		t.Error("CDF not sorted by X")
	}
	if pts[len(pts)-1].P != 1 {
		t.Errorf("CDF must end at 1, got %v", pts[len(pts)-1].P)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	eval := Linspace(-6, 6, 600)
	dens := KDE(xs, eval, 0)
	integral := 0.0
	for i := 1; i < len(eval); i++ {
		integral += (dens[i] + dens[i-1]) / 2 * (eval[i] - eval[i-1])
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("KDE integrates to %v, want ≈1", integral)
	}
	for _, d := range dens {
		if d < 0 {
			t.Fatal("negative density")
		}
	}
}

func TestKDEEmpty(t *testing.T) {
	dens := KDE(nil, Linspace(0, 1, 5), 0)
	for _, d := range dens {
		if d != 0 {
			t.Error("empty KDE must be zero")
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 10, 11)
	if len(xs) != 11 || xs[0] != 0 || xs[10] != 10 || xs[5] != 5 {
		t.Errorf("Linspace = %v", xs)
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 TP, 1 FP, 1 FN, 10 TN, 1 mismatch.
	for i := 0; i < 3; i++ {
		c.Add("A", "A", "none")
	}
	c.Add("none", "A", "none")
	c.Add("A", "none", "none")
	for i := 0; i < 10; i++ {
		c.Add("none", "none", "none")
	}
	c.Add("A", "B", "none")
	// mismatch counts as FP+FN.
	if c.TP != 3 || c.FP != 2 || c.FN != 2 || c.TN != 10 {
		t.Fatalf("confusion = %+v", c)
	}
	if p := c.Precision(); math.Abs(p-0.6) > 1e-9 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-0.6) > 1e-9 {
		t.Errorf("recall = %v", r)
	}
	if f := c.F1(); math.Abs(f-0.6) > 1e-9 {
		t.Errorf("f1 = %v", f)
	}
	if a := c.Accuracy(); a <= 0 || a > 1 {
		t.Errorf("accuracy = %v", a)
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion must yield zeros")
	}
}

// TestF1Bounds: F1 always lies within [0, 1] and between precision and
// recall... actually between min and max of them is false in general; F1 ≤
// max(P,R) and ≥ min(P,R) holds for the harmonic mean.
func TestF1Bounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn)}
		f1 := c.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		p, r := c.Precision(), c.Recall()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-9 && f1 <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Error("ratio")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("division by zero must be NaN")
	}
}
