// Package stats provides the statistical helpers the experiment harness
// uses to regenerate the paper's tables and figures: moments, percentiles,
// CDFs, Gaussian kernel density estimation (for the Fig. 11 coverage
// densities), and classification metrics with the class-imbalance-robust
// F1/precision/recall evaluation of §7.3.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (NaN for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0-100) using linear
// interpolation; NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the smallest value (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical cumulative distribution of xs.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// KDE evaluates a Gaussian kernel density estimate of xs at the given
// evaluation points, with Silverman's rule-of-thumb bandwidth when bw <= 0.
func KDE(xs []float64, eval []float64, bw float64) []float64 {
	out := make([]float64, len(eval))
	if len(xs) == 0 {
		return out
	}
	if bw <= 0 {
		sd := StdDev(xs)
		if math.IsNaN(sd) || sd == 0 {
			sd = 1
		}
		bw = 1.06 * sd * math.Pow(float64(len(xs)), -0.2)
		if bw <= 0 {
			bw = 1
		}
	}
	norm := 1 / (bw * math.Sqrt(2*math.Pi) * float64(len(xs)))
	for i, e := range eval {
		d := 0.0
		for _, x := range xs {
			u := (e - x) / bw
			d += math.Exp(-0.5 * u * u)
		}
		out[i] = d * norm
	}
	return out
}

// Linspace returns n evenly spaced points in [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Confusion accumulates multi-class prediction outcomes where one class
// (the negative class) dominates, as in HO prediction where "no HO" covers
// 99.6% of windows (§7.3).
type Confusion struct {
	// TP/FP/FN count positive-class outcomes micro-averaged across the
	// positive classes; TN counts correct negatives.
	TP, FP, FN, TN int
	// Mismatch counts positive predictions with the wrong positive class
	// (both an FP for the predicted class and an FN for the true class).
	Mismatch int
}

// Add records one prediction. truth and pred are class labels; negative is
// the negative class label.
func (c *Confusion) Add(truth, pred, negative string) {
	switch {
	case truth == negative && pred == negative:
		c.TN++
	case truth == negative && pred != negative:
		c.FP++
	case truth != negative && pred == negative:
		c.FN++
	case truth == pred:
		c.TP++
	default:
		c.Mismatch++
		c.FP++
		c.FN++
	}
}

// Precision returns TP / (TP + FP); 0 when undefined.
func (c *Confusion) Precision() float64 {
	den := c.TP + c.FP
	if den == 0 {
		return 0
	}
	return float64(c.TP) / float64(den)
}

// Recall returns TP / (TP + FN); 0 when undefined.
func (c *Confusion) Recall() float64 {
	den := c.TP + c.FN
	if den == 0 {
		return 0
	}
	return float64(c.TP) / float64(den)
}

// F1 returns the harmonic mean of precision and recall; 0 when undefined.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct predictions overall.
func (c *Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN - c.Mismatch // mismatches counted once
	if total <= 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Ratio returns a/b, or NaN when b is 0; convenient for "×" comparisons in
// experiment tables.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
