package wire

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestTokenHashMatchesFNV1a pins TokenHash to the standard library's
// 64-bit FNV-1a. The warm store, the parked table, and the cluster ring
// all route on this function; this test is the cross-package equivalence
// guarantee that a token's shard on a node and its owner in the ring were
// computed from the same hash.
func TestTokenHashMatchesFNV1a(t *testing.T) {
	tokens := []string{
		"", "a", "fleet-1-ue-0", "fleet-1-ue-63",
		"prognos-session-token-with-some-length-to-it",
		"\x00\xff\x80 binary-ish bytes \x01",
	}
	for i := 0; i < 256; i++ {
		tokens = append(tokens, fmt.Sprintf("fleet-%d-ue-%d", i*7919, i))
	}
	for _, tok := range tokens {
		h := fnv.New64a()
		h.Write([]byte(tok))
		if got, want := TokenHash(tok), h.Sum64(); got != want {
			t.Fatalf("TokenHash(%q) = %#x, want FNV-1a %#x", tok, got, want)
		}
	}
}

// TestTokenHashZeroAlloc pins the routing hash as allocation-free: it runs
// on every record-path shard pick and every ring placement.
func TestTokenHashZeroAlloc(t *testing.T) {
	tok := "fleet-42-ue-7"
	if n := testing.AllocsPerRun(100, func() { _ = TokenHash(tok) }); n != 0 {
		t.Fatalf("TokenHash allocates %.1f per call, want 0", n)
	}
}
