// Binary framing: the length-prefixed record encoding of
// docs/PROTOCOL.md §Binary framing. Every frame is
//
//	uint32 LE payload length | uint8 frame type | payload
//
// where the length counts payload bytes only (not the type byte). All
// multi-byte integers and floats are little-endian; floats are IEEE 754
// binary64. The per-type payload layouts are fixed-width except for
// handover events, whose two cell-ID strings carry uint16 length prefixes.

package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// Frame types. Client→server types have the high bit clear, server→client
// types have it set, so a captured stream is unambiguous about direction.
const (
	// FrameSample carries one 20 Hz radio sample (client→server).
	FrameSample byte = 0x01
	// FrameReport carries one measurement report (client→server).
	FrameReport byte = 0x02
	// FrameHO carries one handover event (client→server).
	FrameHO byte = 0x03
	// FrameMigrate carries one warm session state between cluster nodes
	// (shipping node→receiving node). Only valid on sessions whose hello
	// set "migrate": true, so its absence never occurs mid-session and no
	// version bump is needed (docs/PROTOCOL.md §Migration frames). The
	// payload is the JSON encoding of a cluster session state; migration
	// is a control-plane path, so it trades the fixed-width layout for an
	// evolvable schema.
	FrameMigrate byte = 0x04
	// FrameReplicate carries one warm session state from a node to its
	// ring successor on the async replication path (shipping
	// node→replica holder). Only valid on sessions whose hello set
	// "replicate": true, so — like FrameMigrate — no version bump is
	// needed (docs/PROTOCOL.md §Replication frames). The payload is the
	// same JSON session-state schema FrameMigrate carries; the frame type
	// differs so a receiver can never mistake a replica push (held
	// passively until confirmed failure) for a drain handoff (served
	// immediately).
	FrameReplicate byte = 0x05
	// FrameResponse carries one per-sample prediction (server→client).
	FrameResponse byte = 0x81
	// FrameResumeAck carries the post-hello resume acknowledgement
	// (server→client).
	FrameResumeAck byte = 0x82
	// FrameError carries a UTF-8 teardown error message (server→client),
	// the binary twin of the JSONL ErrorLine.
	FrameError byte = 0x83
	// FrameMigrateAck acknowledges one FrameMigrate (receiving
	// node→shipping node): uint8 ok | int64 seq, where seq is the 1-based
	// ordinal of the migrate frame it answers.
	FrameMigrateAck byte = 0x84
	// FrameReplicateAck acknowledges one FrameReplicate (replica
	// holder→shipping node); same uint8 ok | int64 seq layout as
	// FrameMigrateAck.
	FrameReplicateAck byte = 0x85
)

// Fixed payload lengths (bytes) of the fixed-width frame types.
const (
	sampleFrameLen     = 8 + 4*8 + 3 + 8 + 4*cellObsLen // 175
	cellObsLen         = 4 + 2 + 3*8 + 1                // 31
	reportFrameLen     = 8 + 2 + 2*4 + 2*8 + 3*8        // 58
	responseFrameLen   = 8 + 1 + 2*8 + 2*8              // 41
	resumeAckFrameLen  = 1 + 8                          // 9
	migrateAckFrameLen = 1 + 8                          // 9
	frameHeaderLen     = 4 + 1
)

// ErrFrameTooLarge reports a frame whose declared payload length exceeds
// MaxFrameBytes; the session is torn down rather than buffering it.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// FrameWriter encodes protocol records as binary frames onto a buffered
// writer. It reuses one scratch buffer across calls, so steady-state
// writes allocate nothing. Not safe for concurrent use. Callers flush the
// underlying writer themselves (the server coalesces flushes across
// pipelined responses; see docs/PROTOCOL.md §Flushing).
type FrameWriter struct {
	w       *bufio.Writer
	scratch []byte
}

// NewFrameWriter returns a FrameWriter emitting onto w.
func NewFrameWriter(w *bufio.Writer) *FrameWriter {
	return &FrameWriter{w: w, scratch: make([]byte, 0, 256)}
}

// begin resets the scratch buffer with room for the header and returns it.
func (fw *FrameWriter) begin(typ byte) []byte {
	b := append(fw.scratch[:0], 0, 0, 0, 0, typ)
	return b
}

// finish back-fills the length prefix and writes the frame.
func (fw *FrameWriter) finish(b []byte) error {
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-frameHeaderLen))
	fw.scratch = b
	_, err := fw.w.Write(b)
	return err
}

func appendU8(b []byte, v byte) []byte   { return append(b, v) }
func appendBool(b []byte, v bool) []byte { return append(b, boolByte(v)) }

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendI32(b []byte, v int32) []byte  { return binary.LittleEndian.AppendUint32(b, uint32(v)) }
func appendI64(b []byte, v int64) []byte  { return binary.LittleEndian.AppendUint64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendCellObs(b []byte, o *trace.CellObs) []byte {
	b = appendI32(b, int32(o.PCI))
	b = appendU8(b, byte(o.Tech))
	b = appendU8(b, byte(o.Band))
	b = appendF64(b, o.RSRP)
	b = appendF64(b, o.RSRQ)
	b = appendF64(b, o.SINR)
	return appendBool(b, o.Valid)
}

// WriteSample emits one radio sample as a FrameSample frame.
func (fw *FrameWriter) WriteSample(s *trace.Sample) error {
	b := fw.begin(FrameSample)
	b = appendI64(b, int64(s.Time))
	b = appendF64(b, s.X)
	b = appendF64(b, s.Y)
	b = appendF64(b, s.OdometerM)
	b = appendF64(b, s.SpeedMPS)
	b = appendU8(b, byte(s.Arch))
	b = appendBool(b, s.InHO)
	b = appendU8(b, byte(s.HOType))
	b = appendF64(b, s.TputMbps)
	b = appendCellObs(b, &s.ServingLTE)
	b = appendCellObs(b, &s.ServingNR)
	b = appendCellObs(b, &s.NeighborLTE)
	b = appendCellObs(b, &s.NeighborNR)
	return fw.finish(b)
}

// WriteReport emits one measurement report as a FrameReport frame.
func (fw *FrameWriter) WriteReport(mr *cellular.MeasurementReport) error {
	b := fw.begin(FrameReport)
	b = appendI64(b, int64(mr.Time))
	b = appendU8(b, byte(mr.Event))
	b = appendU8(b, byte(mr.Tech))
	b = appendI32(b, int32(mr.ServingPCI))
	b = appendI32(b, int32(mr.NeighborPCI))
	b = appendF64(b, mr.ServingRSRP)
	b = appendF64(b, mr.NeighborRSRP)
	b = appendF64(b, mr.Serving.RSRP)
	b = appendF64(b, mr.Serving.RSRQ)
	b = appendF64(b, mr.Serving.SINR)
	return fw.finish(b)
}

// WriteHandover emits one handover event as a FrameHO frame.
func (fw *FrameWriter) WriteHandover(ho *cellular.HandoverEvent) error {
	if len(ho.SourceCell) > math.MaxUint16 || len(ho.TargetCell) > math.MaxUint16 {
		return fmt.Errorf("wire: handover cell ID exceeds %d bytes", math.MaxUint16)
	}
	b := fw.begin(FrameHO)
	b = appendI64(b, int64(ho.Time))
	b = appendU8(b, byte(ho.Type))
	b = appendU8(b, byte(ho.Arch))
	b = appendU8(b, byte(ho.Band))
	b = appendI32(b, int32(ho.SourcePCI))
	b = appendI32(b, int32(ho.TargetPCI))
	b = appendU16(b, uint16(len(ho.SourceCell)))
	b = append(b, ho.SourceCell...)
	b = appendU16(b, uint16(len(ho.TargetCell)))
	b = append(b, ho.TargetCell...)
	b = appendI64(b, int64(ho.T1))
	b = appendI64(b, int64(ho.T2))
	b = appendBool(b, ho.CoLocated)
	b = appendF64(b, ho.DistanceM)
	b = appendI32(b, int32(ho.Signaling.RRC))
	b = appendI32(b, int32(ho.Signaling.MAC))
	b = appendI32(b, int32(ho.Signaling.PHY))
	return fw.finish(b)
}

// WriteResponse emits one prediction as a FrameResponse frame. TypeName is
// not transmitted; decoders reconstruct it from Type.
func (fw *FrameWriter) WriteResponse(r Response) error {
	b := fw.begin(FrameResponse)
	b = appendI64(b, int64(r.Time))
	b = appendU8(b, byte(r.Type))
	b = appendF64(b, r.Score)
	b = appendF64(b, r.Similarity)
	b = appendI64(b, r.LeadMS)
	b = appendI64(b, r.Seq)
	return fw.finish(b)
}

// WriteResumeAck emits the post-hello resume acknowledgement.
func (fw *FrameWriter) WriteResumeAck(a ResumeAck) error {
	b := fw.begin(FrameResumeAck)
	b = appendBool(b, a.Resumed)
	b = appendI64(b, a.Seq)
	return fw.finish(b)
}

// WriteError emits a teardown error message as a FrameError frame.
func (fw *FrameWriter) WriteError(msg string) error {
	b := fw.begin(FrameError)
	b = append(b, msg...)
	return fw.finish(b)
}

// WriteMigrate emits one JSON-encoded session state as a FrameMigrate
// frame. The encoding is the caller's (internal/cluster owns the schema);
// the wire layer only frames it.
func (fw *FrameWriter) WriteMigrate(payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	b := fw.begin(FrameMigrate)
	b = append(b, payload...)
	return fw.finish(b)
}

// WriteMigrateAck emits the acknowledgement of one migrate frame.
func (fw *FrameWriter) WriteMigrateAck(a MigrateAck) error {
	b := fw.begin(FrameMigrateAck)
	b = appendBool(b, a.OK)
	b = appendI64(b, a.Seq)
	return fw.finish(b)
}

// WriteReplicate emits one JSON-encoded session state as a
// FrameReplicate frame. Like WriteMigrate, the encoding is the caller's
// (internal/cluster owns the schema); the wire layer only frames it.
func (fw *FrameWriter) WriteReplicate(payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return ErrFrameTooLarge
	}
	b := fw.begin(FrameReplicate)
	b = append(b, payload...)
	return fw.finish(b)
}

// WriteReplicateAck emits the acknowledgement of one replicate frame. It
// reuses the MigrateAck layout (uint8 ok | int64 seq) under the
// FrameReplicateAck type.
func (fw *FrameWriter) WriteReplicateAck(a MigrateAck) error {
	b := fw.begin(FrameReplicateAck)
	b = appendBool(b, a.OK)
	b = appendI64(b, a.Seq)
	return fw.finish(b)
}

// FrameReader decodes binary frames from a buffered reader, reusing one
// payload buffer across calls. Not safe for concurrent use.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte
	hdr [frameHeaderLen]byte
}

// NewFrameReader returns a FrameReader consuming from br. The reader may
// already hold buffered bytes (e.g. records pipelined behind the hello
// line); framing picks up exactly where the line protocol left off.
func NewFrameReader(br *bufio.Reader) *FrameReader {
	return &FrameReader{br: br, buf: make([]byte, 0, 256)}
}

// ReadFrame reads the next frame and returns its type and payload. The
// payload slice is only valid until the next ReadFrame call. A clean EOF
// on a frame boundary returns io.EOF; EOF inside a frame returns
// io.ErrUnexpectedEOF. Oversized frames return ErrFrameTooLarge.
func (fr *FrameReader) ReadFrame() (byte, []byte, error) {
	// The header scratch lives on the reader so the io.ReadFull interface
	// call cannot force a per-frame heap allocation.
	if _, err := io.ReadFull(fr.br, fr.hdr[:1]); err != nil {
		return 0, nil, err // io.EOF on a frame boundary stays io.EOF
	}
	if _, err := io.ReadFull(fr.br, fr.hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:4])
	typ := fr.hdr[4]
	if n > MaxFrameBytes {
		return 0, nil, ErrFrameTooLarge
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, fr.buf, nil
}

// Buffered reports the bytes buffered on the read side, used by servers to
// coalesce response flushes while more pipelined input is already waiting.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }

// fixedLen returns payload length errors with the frame type's name.
func fixedLen(p []byte, want int, what string) error {
	if len(p) != want {
		return fmt.Errorf("wire: bad %s frame: %d payload bytes, want %d", what, len(p), want)
	}
	return nil
}

func getI32(p []byte) int32   { return int32(binary.LittleEndian.Uint32(p)) }
func getI64(p []byte) int64   { return int64(binary.LittleEndian.Uint64(p)) }
func getF64(p []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(p)) }

func decodeCellObs(p []byte, o *trace.CellObs) {
	o.PCI = cellular.PCI(getI32(p[0:]))
	o.Tech = cellular.Tech(p[4])
	o.Band = cellular.Band(p[5])
	o.RSRP = getF64(p[6:])
	o.RSRQ = getF64(p[14:])
	o.SINR = getF64(p[22:])
	o.Valid = p[30] != 0
}

// DecodeSample decodes a FrameSample payload into s.
func DecodeSample(p []byte, s *trace.Sample) error {
	if err := fixedLen(p, sampleFrameLen, "sample"); err != nil {
		return err
	}
	s.Time = time.Duration(getI64(p[0:]))
	s.X = getF64(p[8:])
	s.Y = getF64(p[16:])
	s.OdometerM = getF64(p[24:])
	s.SpeedMPS = getF64(p[32:])
	s.Arch = cellular.Arch(p[40])
	s.InHO = p[41] != 0
	s.HOType = cellular.HOType(p[42])
	s.TputMbps = getF64(p[43:])
	decodeCellObs(p[51:], &s.ServingLTE)
	decodeCellObs(p[51+cellObsLen:], &s.ServingNR)
	decodeCellObs(p[51+2*cellObsLen:], &s.NeighborLTE)
	decodeCellObs(p[51+3*cellObsLen:], &s.NeighborNR)
	return nil
}

// DecodeReport decodes a FrameReport payload into mr.
func DecodeReport(p []byte, mr *cellular.MeasurementReport) error {
	if err := fixedLen(p, reportFrameLen, "report"); err != nil {
		return err
	}
	mr.Time = time.Duration(getI64(p[0:]))
	mr.Event = cellular.EventType(p[8])
	mr.Tech = cellular.Tech(p[9])
	mr.ServingPCI = cellular.PCI(getI32(p[10:]))
	mr.NeighborPCI = cellular.PCI(getI32(p[14:]))
	mr.ServingRSRP = getF64(p[18:])
	mr.NeighborRSRP = getF64(p[26:])
	mr.Serving.RSRP = getF64(p[34:])
	mr.Serving.RSRQ = getF64(p[42:])
	mr.Serving.SINR = getF64(p[50:])
	return nil
}

// DecodeHandover decodes a FrameHO payload into ho.
func DecodeHandover(p []byte, ho *cellular.HandoverEvent) error {
	const fixedHead = 8 + 3 + 2*4 // fields before the cell-ID strings
	bad := func() error { return fmt.Errorf("wire: bad ho frame: truncated at %d payload bytes", len(p)) }
	if len(p) < fixedHead+2 {
		return bad()
	}
	ho.Time = time.Duration(getI64(p[0:]))
	ho.Type = cellular.HOType(p[8])
	ho.Arch = cellular.Arch(p[9])
	ho.Band = cellular.Band(p[10])
	ho.SourcePCI = cellular.PCI(getI32(p[11:]))
	ho.TargetPCI = cellular.PCI(getI32(p[15:]))
	q := p[fixedHead:]
	n := int(binary.LittleEndian.Uint16(q))
	if len(q) < 2+n+2 {
		return bad()
	}
	ho.SourceCell = string(q[2 : 2+n])
	q = q[2+n:]
	n = int(binary.LittleEndian.Uint16(q))
	const tail = 2*8 + 1 + 8 + 3*4 // T1 T2 CoLocated DistanceM Signaling
	if len(q) != 2+n+tail {
		return bad()
	}
	ho.TargetCell = string(q[2 : 2+n])
	q = q[2+n:]
	ho.T1 = time.Duration(getI64(q[0:]))
	ho.T2 = time.Duration(getI64(q[8:]))
	ho.CoLocated = q[16] != 0
	ho.DistanceM = getF64(q[17:])
	ho.Signaling.RRC = int(getI32(q[25:]))
	ho.Signaling.MAC = int(getI32(q[29:]))
	ho.Signaling.PHY = int(getI32(q[33:]))
	return nil
}

// DecodeResponse decodes a FrameResponse payload into r, reconstructing
// TypeName from Type.
func DecodeResponse(p []byte, r *Response) error {
	if err := fixedLen(p, responseFrameLen, "response"); err != nil {
		return err
	}
	r.Time = time.Duration(getI64(p[0:]))
	r.Type = cellular.HOType(p[8])
	r.TypeName = r.Type.String()
	r.Score = getF64(p[9:])
	r.Similarity = getF64(p[17:])
	r.LeadMS = getI64(p[25:])
	r.Seq = getI64(p[33:])
	return nil
}

// DecodeResumeAck decodes a FrameResumeAck payload into a.
func DecodeResumeAck(p []byte, a *ResumeAck) error {
	if err := fixedLen(p, resumeAckFrameLen, "resume_ack"); err != nil {
		return err
	}
	a.ResumeAck = true
	a.Resumed = p[0] != 0
	a.Seq = getI64(p[1:])
	return nil
}

// DecodeMigrateAck decodes a FrameMigrateAck payload into a.
func DecodeMigrateAck(p []byte, a *MigrateAck) error {
	if err := fixedLen(p, migrateAckFrameLen, "migrate_ack"); err != nil {
		return err
	}
	a.OK = p[0] != 0
	a.Seq = getI64(p[1:])
	return nil
}

// DecodeReplicateAck decodes a FrameReplicateAck payload into a.
func DecodeReplicateAck(p []byte, a *MigrateAck) error {
	if err := fixedLen(p, migrateAckFrameLen, "replicate_ack"); err != nil {
		return err
	}
	a.OK = p[0] != 0
	a.Seq = getI64(p[1:])
	return nil
}
