package wire

// TokenHash is FNV-1a over a session token. It is the single routing hash
// of the serving stack: the server's warm-store slots and parked-session
// shards (internal/server/shard.go) and the cluster ring's token placement
// (internal/cluster) all key off this exact function, so a token's shard
// on one node and its owner in the ring can never disagree about what was
// hashed. TestTokenHashMatchesFNV1a pins the implementation against the
// standard library's hash/fnv.
func TokenHash(token string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(token); i++ {
		h ^= uint64(token[i])
		h *= prime64
	}
	return h
}
