package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

func obsAt(pci int, rsrp float64) trace.CellObs {
	return trace.CellObs{
		PCI: cellular.PCI(pci), Tech: cellular.TechNR, Band: cellular.BandMid,
		RSRP: rsrp, RSRQ: -11.5, SINR: 13.25, Valid: true,
	}
}

func testSample() trace.Sample {
	return trace.Sample{
		Time: 1250 * time.Millisecond, X: 12.5, Y: -3.75, OdometerM: 812.125,
		SpeedMPS: 29, Arch: cellular.ArchNSA, InHO: true, HOType: cellular.HOSCGC,
		TputMbps:   412.75,
		ServingLTE: obsAt(101, -95.5), ServingNR: obsAt(502, -88.25),
		NeighborLTE: obsAt(103, -99), NeighborNR: trace.CellObs{},
	}
}

// roundTrip writes one record through a FrameWriter and reads it back.
func roundTrip(t *testing.T, write func(*FrameWriter) error) (byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	fw := NewFrameWriter(bw)
	if err := write(fw); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bufio.NewReader(&buf))
	typ, p, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return typ, p
}

// TestBinaryRoundTrips pins the binary framing: every record type must
// decode back to exactly what was encoded, for representative and edge
// payloads alike.
func TestBinaryRoundTrips(t *testing.T) {
	t.Run("sample", func(t *testing.T) {
		for _, in := range []trace.Sample{testSample(), {}} {
			typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteSample(&in) })
			if typ != FrameSample {
				t.Fatalf("frame type 0x%02x", typ)
			}
			var out trace.Sample
			if err := DecodeSample(p, &out); err != nil {
				t.Fatal(err)
			}
			if out != in {
				t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
			}
		}
	})
	t.Run("report", func(t *testing.T) {
		in := cellular.MeasurementReport{
			Time: 2 * time.Second, Event: cellular.EventA3, Tech: cellular.TechNR,
			ServingPCI: 501, NeighborPCI: 502, ServingRSRP: -97.5, NeighborRSRP: -91.25,
			Serving: cellular.RRS{RSRP: -97.5, RSRQ: -12, SINR: 9.5},
		}
		typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteReport(&in) })
		if typ != FrameReport {
			t.Fatalf("frame type 0x%02x", typ)
		}
		var out cellular.MeasurementReport
		if err := DecodeReport(p, &out); err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
	})
	t.Run("handover", func(t *testing.T) {
		for _, in := range []cellular.HandoverEvent{
			{
				Time: 3 * time.Second, Type: cellular.HOSCGC, Arch: cellular.ArchNSA,
				Band: cellular.BandMMWave, SourcePCI: 501, TargetPCI: 611,
				SourceCell: "NR-501", TargetCell: "NR-611",
				T1: 45 * time.Millisecond, T2: 30 * time.Millisecond,
				CoLocated: true, DistanceM: 1812.5,
				Signaling: cellular.SignalingCount{RRC: 7, MAC: 2, PHY: 64},
			},
			{}, // empty cell IDs
			{SourceCell: strings.Repeat("s", 300), TargetCell: strings.Repeat("t", 4096)},
		} {
			typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteHandover(&in) })
			if typ != FrameHO {
				t.Fatalf("frame type 0x%02x", typ)
			}
			var out cellular.HandoverEvent
			if err := DecodeHandover(p, &out); err != nil {
				t.Fatal(err)
			}
			if out != in {
				t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
			}
		}
	})
	t.Run("response", func(t *testing.T) {
		in := Response{
			Time: 1500 * time.Millisecond, Type: cellular.HOLTEH, TypeName: "LTEH",
			Score: 0.42, Similarity: 0.91, LeadMS: 850, Seq: 12345,
		}
		typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteResponse(in) })
		if typ != FrameResponse {
			t.Fatalf("frame type 0x%02x", typ)
		}
		var out Response
		if err := DecodeResponse(p, &out); err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
		}
		// TypeName must be reconstructed, not transmitted.
		if out.TypeName != cellular.HOLTEH.String() {
			t.Fatalf("TypeName %q", out.TypeName)
		}
	})
	t.Run("resume_ack", func(t *testing.T) {
		in := ResumeAck{ResumeAck: true, Resumed: true, Seq: 777}
		typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteResumeAck(in) })
		if typ != FrameResumeAck {
			t.Fatalf("frame type 0x%02x", typ)
		}
		var out ResumeAck
		if err := DecodeResumeAck(p, &out); err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
		}
	})
	t.Run("error", func(t *testing.T) {
		typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteError("session limit reached") })
		if typ != FrameError {
			t.Fatalf("frame type 0x%02x", typ)
		}
		if string(p) != "session limit reached" {
			t.Fatalf("payload %q", p)
		}
	})
	t.Run("migrate", func(t *testing.T) {
		state := []byte(`{"token":"ue-7","seq":42,"snapshot":{"version":1}}`)
		typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteMigrate(state) })
		if typ != FrameMigrate {
			t.Fatalf("frame type 0x%02x", typ)
		}
		if string(p) != string(state) {
			t.Fatalf("payload %q", p)
		}
		if err := NewFrameWriter(bufio.NewWriter(io.Discard)).WriteMigrate(make([]byte, MaxFrameBytes+1)); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("oversized migrate payload: err = %v, want ErrFrameTooLarge", err)
		}
	})
	t.Run("migrate_ack", func(t *testing.T) {
		for _, in := range []MigrateAck{{OK: true, Seq: 9}, {OK: false, Seq: 1}} {
			typ, p := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteMigrateAck(in) })
			if typ != FrameMigrateAck {
				t.Fatalf("frame type 0x%02x", typ)
			}
			var out MigrateAck
			if err := DecodeMigrateAck(p, &out); err != nil {
				t.Fatal(err)
			}
			if out != in {
				t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
			}
		}
		var a MigrateAck
		if err := DecodeMigrateAck(make([]byte, 8), &a); err == nil {
			t.Error("short migrate-ack payload decoded")
		}
	})
}

// TestBinaryDecodeRejectsMalformed pins the decoder's failure mode: short,
// long and truncated payloads must error, never panic or mis-read.
func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	var s trace.Sample
	if err := DecodeSample(make([]byte, 10), &s); err == nil {
		t.Error("short sample payload decoded")
	}
	if err := DecodeSample(make([]byte, 1000), &s); err == nil {
		t.Error("long sample payload decoded")
	}
	var mr cellular.MeasurementReport
	if err := DecodeReport(nil, &mr); err == nil {
		t.Error("empty report payload decoded")
	}
	var r Response
	if err := DecodeResponse(make([]byte, 40), &r); err == nil {
		t.Error("short response payload decoded")
	}
	var a ResumeAck
	if err := DecodeResumeAck(make([]byte, 8), &a); err == nil {
		t.Error("short resume-ack payload decoded")
	}
	// Handover frames are variable-width: truncate a valid frame at every
	// length and require an error each time.
	ho := cellular.HandoverEvent{SourceCell: "NR-501", TargetCell: "NR-611"}
	_, full := roundTrip(t, func(fw *FrameWriter) error { return fw.WriteHandover(&ho) })
	for n := 0; n < len(full); n++ {
		var out cellular.HandoverEvent
		if err := DecodeHandover(full[:n], &out); err == nil {
			t.Fatalf("truncated ho payload (%d of %d bytes) decoded", n, len(full))
		}
	}
	// A lying string length must not read past the payload.
	lying := append([]byte(nil), full...)
	binary.LittleEndian.PutUint16(lying[19:], 60000)
	var out cellular.HandoverEvent
	if err := DecodeHandover(lying, &out); err == nil {
		t.Error("oversized inner string length decoded")
	}
}

// TestFrameReaderLimitsAndEOF pins the reader's boundary behaviour:
// oversized frames are rejected, a clean EOF on a frame boundary is
// io.EOF, and an EOF inside a frame is io.ErrUnexpectedEOF.
func TestFrameReaderLimitsAndEOF(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrameBytes+1)
	hdr[4] = FrameSample
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(hdr[:])))
	if _, _, err := fr.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}

	fr = NewFrameReader(bufio.NewReader(bytes.NewReader(nil)))
	if _, _, err := fr.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v", err)
	}

	s := testSample()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := NewFrameWriter(bw).WriteSample(&s); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	cut := buf.Bytes()[:buf.Len()-3]
	fr = NewFrameReader(bufio.NewReader(bytes.NewReader(cut)))
	if _, _, err := fr.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame EOF: %v", err)
	}
}

// TestReadLine pins the line reader: line-ending stripping, the final
// unterminated line, the size limit, and — the property bufio.Scanner
// cannot offer — leaving the reader's buffer intact so binary frames can
// follow a line on the same reader.
func TestReadLine(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("alpha\nbeta\r\n\ngamma"))
	for _, want := range []string{"alpha", "beta", "", "gamma"} {
		line, err := ReadLine(br, 64)
		if err != nil {
			t.Fatalf("ReadLine: %v", err)
		}
		if string(line) != want {
			t.Fatalf("line %q, want %q", line, want)
		}
	}
	if _, err := ReadLine(br, 64); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}

	if _, err := ReadLine(bufio.NewReader(strings.NewReader(strings.Repeat("x", 100)+"\n")), 64); !errors.Is(err, ErrLineTooLong) {
		t.Fatal("oversized line accepted")
	}
	// Lines longer than the bufio buffer but under the limit still work.
	long := strings.Repeat("y", 200)
	line, err := ReadLine(bufio.NewReaderSize(strings.NewReader(long+"\n"), 16), 256)
	if err != nil {
		t.Fatal(err)
	}
	if string(line) != long {
		t.Fatalf("long line mangled (%d bytes)", len(line))
	}

	// Handoff: a hello line followed by a binary frame on one reader.
	s := testSample()
	var buf bytes.Buffer
	buf.WriteString("{\"hello\":true}\n")
	bw := bufio.NewWriter(&buf)
	if err := NewFrameWriter(bw).WriteSample(&s); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	br = bufio.NewReader(&buf)
	if line, err := ReadLine(br, MaxLineBytes); err != nil || string(line) != "{\"hello\":true}" {
		t.Fatalf("hello line: %q, %v", line, err)
	}
	typ, p, err := NewFrameReader(br).ReadFrame()
	if err != nil || typ != FrameSample {
		t.Fatalf("frame after line: type 0x%02x err %v", typ, err)
	}
	var out trace.Sample
	if err := DecodeSample(p, &out); err != nil {
		t.Fatal(err)
	}
	if out != s {
		t.Fatal("sample corrupted across the line/frame handoff")
	}
}

// TestFramingNegotiationTypes pins ParseFraming and the frame-type
// direction convention (high bit = server→client).
func TestFramingNegotiationTypes(t *testing.T) {
	for in, want := range map[string]Framing{"": FramingJSONL, "jsonl": FramingJSONL, "binary": FramingBinary} {
		got, err := ParseFraming(in)
		if err != nil || got != want {
			t.Fatalf("ParseFraming(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFraming("protobuf"); err == nil {
		t.Fatal("unknown framing accepted")
	}
	for _, typ := range []byte{FrameSample, FrameReport, FrameHO} {
		if typ&0x80 != 0 {
			t.Fatalf("client frame 0x%02x has the server direction bit", typ)
		}
	}
	for _, typ := range []byte{FrameResponse, FrameResumeAck, FrameError} {
		if typ&0x80 == 0 {
			t.Fatalf("server frame 0x%02x lacks the direction bit", typ)
		}
	}
}

// TestBinaryHotPathAllocs pins the steady-state allocation contract of the
// framing layer itself: encoding and decoding sample/response frames
// reuses the writer's and reader's scratch buffers.
func TestBinaryHotPathAllocs(t *testing.T) {
	s := testSample()
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<16)
	fw := NewFrameWriter(bw)
	// Warm the scratch buffers.
	if err := fw.WriteSample(&s); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	bw.Reset(&buf)
	allocs := testing.AllocsPerRun(200, func() {
		buf.Reset()
		bw.Reset(&buf)
		if err := fw.WriteSample(&s); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
	})
	if allocs > 0 {
		t.Errorf("WriteSample allocates %.1f/op in steady state", allocs)
	}

	if err := fw.WriteSample(&s); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	frame := append([]byte(nil), buf.Bytes()...)
	rd := bytes.NewReader(frame)
	br := bufio.NewReader(rd)
	fr := NewFrameReader(br)
	var out trace.Sample
	allocs = testing.AllocsPerRun(200, func() {
		rd.Reset(frame)
		br.Reset(rd)
		_, p, err := fr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeSample(p, &out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("ReadFrame+DecodeSample allocates %.1f/op in steady state", allocs)
	}
}
