package wire

import (
	"bufio"
	"errors"
	"io"
)

// ErrLineTooLong reports a JSONL line exceeding the caller's limit.
var ErrLineTooLong = errors.New("wire: line exceeds size limit")

// ReadLine reads one newline-terminated JSONL line from br, up to max
// bytes, and returns it without its line ending ("\n" or "\r\n"). Unlike
// bufio.Scanner it leaves br's buffer intact across calls, so the same
// reader can be handed to a FrameReader after framing negotiation — the
// reason both protocol endpoints read lines through this helper.
//
// A final line without a newline is returned as-is (with a nil error); the
// next call returns io.EOF. The returned slice aliases br's buffer and is
// only valid until the next read from br.
func ReadLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		if line == nil && err == nil {
			// Whole line in one fragment: hand out the buffer alias.
			line = frag
			break
		}
		line = append(line, frag...)
		if len(line) > max+1 { // +1 for the not-yet-stripped newline
			return nil, ErrLineTooLong
		}
		if err == nil {
			break
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			continue
		}
		if errors.Is(err, io.EOF) {
			if len(line) == 0 {
				return nil, io.EOF
			}
			if len(line) > max {
				return nil, ErrLineTooLong
			}
			return line, nil // partial final line, Scanner-compatible
		}
		return nil, err
	}
	line = line[:len(line)-1] // strip '\n'
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	if len(line) > max {
		return nil, ErrLineTooLong
	}
	return line, nil
}
