// Package wire defines the Prognos session protocol: the record and
// response types exchanged between a UE-side agent and a prognosd server,
// and the two framings they can travel in — line-oriented JSONL (the
// default, debuggable with netcat) and an opt-in length-prefixed binary
// framing negotiated in the hello for high-rate fleets.
//
// docs/PROTOCOL.md is the normative specification of everything in this
// package: handshake and framing negotiation, record and response layouts,
// sequence/resume semantics, error reporting and version rules. The types
// here are the single source of truth both the server (internal/server) and
// the load generator (internal/fleet) compile against.
package wire

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// ProtocolVersion is the wire protocol version this package implements.
// It only moves on incompatible changes to the binary framing or the
// handshake; the JSONL framing evolves compatibly by field addition (see
// docs/PROTOCOL.md §Versioning).
const ProtocolVersion = 1

// MaxLineBytes bounds one JSONL protocol line (hello, record, response).
const MaxLineBytes = 1 << 20

// MaxFrameBytes bounds one binary frame payload. It matches MaxLineBytes
// so neither framing can make the peer buffer more than 1 MiB per record.
const MaxFrameBytes = 1 << 20

// Framing names a session's record encoding, negotiated in the hello.
type Framing string

// Supported framings.
const (
	// FramingJSONL is newline-delimited JSON, one record per line: the
	// default, and the only framing for hello and stats exchanges.
	FramingJSONL Framing = "jsonl"
	// FramingBinary is the length-prefixed binary framing of
	// docs/PROTOCOL.md §Binary framing. Sessions opt in via
	// Hello.Framing; every record after the server's FramingAck travels
	// as a binary frame.
	FramingBinary Framing = "binary"
)

// ParseFraming validates a framing name from a hello or a command line.
// The empty string parses as FramingJSONL, the wire default.
func ParseFraming(s string) (Framing, error) {
	switch Framing(s) {
	case "", FramingJSONL:
		return FramingJSONL, nil
	case FramingBinary:
		return FramingBinary, nil
	default:
		return "", fmt.Errorf("wire: unknown framing %q (want %q or %q)", s, FramingJSONL, FramingBinary)
	}
}

// Hello is the first line a client sends — always JSONL, regardless of the
// framing it requests: the deployment context the Prognos instance needs,
// or a stats request.
type Hello struct {
	// Carrier ("OpX"/"OpY") and Arch pick the measurement-event
	// configurations and policies the session's Prognos instance loads.
	Carrier string        `json:"carrier"`
	Arch    cellular.Arch `json:"arch"`
	// DisableReportPredictor disables the early-warning stage
	// (default: enabled).
	DisableReportPredictor bool `json:"disable_report_predictor,omitempty"`
	// Stats, when true, turns the session into a one-shot stats query:
	// the server answers with one metrics.ServerSnapshot JSON line and
	// closes. Carrier/Arch are ignored for stats sessions, and stats
	// sessions are never counted against the session limit. Stats
	// sessions are always JSONL; a Framing request is ignored.
	Stats bool `json:"stats,omitempty"`
	// SessionToken, when set, makes the session resumable: if the
	// transport drops mid-stream the server parks the warm Prognos
	// instance for Options.ResumeGrace, and a reconnect presenting the
	// same token re-attaches to it. The server then answers the hello
	// with a ResumeAck (and replays any buffered responses the client
	// missed) before resuming the record stream. Tokens are
	// client-chosen; they only need to be unique per server.
	SessionToken string `json:"session_token,omitempty"`
	// LastSeq is the highest Response.Seq the client has already read,
	// so a resumed session replays exactly the responses that were lost
	// in flight and nothing the client already has.
	LastSeq int64 `json:"last_seq,omitempty"`
	// Framing requests a record framing for the rest of the session:
	// "" or "jsonl" for JSONL (no acknowledgement line), "binary" for
	// the length-prefixed binary framing. A binary request is answered
	// with one JSONL FramingAck line before the switch; servers that
	// cannot satisfy it send an ErrorLine instead (see
	// docs/PROTOCOL.md §Negotiation).
	Framing string `json:"framing,omitempty"`
	// Migrate, when true, turns the session into a node-to-node warm-state
	// migration stream (docs/PROTOCOL.md §Migration frames): the peer is
	// another prognosd shipping parked-session state and warm snapshots,
	// not a UE. Migration streams require the binary framing and exchange
	// FrameMigrate/FrameMigrateAck frames. Node names the shipping node.
	Migrate bool   `json:"migrate,omitempty"`
	Node    string `json:"node,omitempty"`
	// Replicate, when true, turns the session into a node-to-node async
	// replication stream (docs/PROTOCOL.md §Replication frames): the peer
	// is another prognosd pushing warm snapshots and session states for
	// passive safekeeping on this node — the crash-fault successor copy,
	// not a drain handoff. Replication streams require the binary framing
	// and exchange FrameReplicate/FrameReplicateAck frames; Node names
	// the shipping node, as for Migrate.
	Replicate bool `json:"replicate,omitempty"`
}

// FramingAck is the JSONL line a server sends in answer to a hello that
// requested a non-default framing, immediately before switching to it.
// Everything after this line — ResumeAck, replayed responses, records —
// travels in the acknowledged framing.
type FramingAck struct {
	FramingAck  bool    `json:"framing_ack"`
	Framing     Framing `json:"framing"`
	WireVersion int     `json:"wire_version"`
}

// Record is one streamed observation; exactly one payload field is set.
type Record struct {
	// Sample is a 20 Hz radio sample; the server answers it with a
	// Response. Report (a sniffed measurement report) and HO (a sniffed
	// handover command) are one-way observations.
	Sample *trace.Sample               `json:"sample,omitempty"`
	Report *cellular.MeasurementReport `json:"report,omitempty"`
	HO     *cellular.HandoverEvent     `json:"ho,omitempty"`
}

// Response is the per-sample prediction sent back to the client.
type Response struct {
	// Time echoes the triggering sample's timestamp.
	Time time.Duration `json:"t"`
	// Type and TypeName give the predicted handover for the coming
	// prediction window (HONone/"NONE" when quiet). TypeName is
	// redundant with Type and is reconstructed, not transmitted, by the
	// binary framing.
	Type     cellular.HOType `json:"type"`
	TypeName string          `json:"type_name"`
	// Score is the ho_score applications act on (§7: 1 = no impact
	// expected, lower = heavier procedure expected).
	Score float64 `json:"score"`
	// Similarity is the matched pattern's similarity (diagnostics), and
	// LeadMS how far ahead the prediction was first standing.
	Similarity float64 `json:"similarity"`
	LeadMS     int64   `json:"lead_ms"`
	// Seq is the 1-based ordinal of the sample this response answers,
	// the resume cursor: a reconnecting client reports the highest Seq
	// it has read and the server replays from there.
	Seq int64 `json:"seq,omitempty"`
}

// ResumeAck is the acknowledgement the server sends right after the hello
// of any tokened session, before the first response. Resumed reports
// whether a parked warm instance was re-attached; Seq is the server's
// resume cursor (the highest Response.Seq it has answered — 0 for a fresh
// session). When Resumed is true the server guarantees it will replay
// every buffered response in (hello.LastSeq, Seq] immediately after this
// record, so the client only needs to resend samples it sent after Seq.
// When Resumed is false the server state is fresh: the client must reset
// its cursor to 0 and resend everything unanswered.
type ResumeAck struct {
	ResumeAck bool  `json:"resume_ack"`
	Resumed   bool  `json:"resumed"`
	Seq       int64 `json:"seq"`
}

// ErrorLine is the structured error the server sends before tearing down a
// session it cannot (or can no longer) serve: over-limit rejection, a
// malformed or oversized record, an engine failure. In JSONL sessions it is
// one {"error": ...} line; in binary sessions the same text travels as a
// FrameError frame. Clients surface the text as the error of the call that
// read it.
type ErrorLine struct {
	Error string `json:"error"`
	// Redirect, when set, names the cluster node that owns the session's
	// token (host:port): the client should re-dial there rather than
	// retry here. Redirects are issued at hello time, before any framing
	// ack, so they always travel as a JSONL line (docs/PROTOCOL.md
	// §Redirects).
	Redirect string `json:"redirect,omitempty"`
}

// MigrateAck is the per-record acknowledgement of a migration stream: the
// receiving node confirms (or rejects) one shipped session state. Seq is
// the 1-based ordinal of the FrameMigrate it answers, so a shipping node
// can pipeline frames and still attribute every verdict.
type MigrateAck struct {
	OK  bool  `json:"ok"`
	Seq int64 `json:"seq"`
}
