// Package chaos is deterministic, seed-driven fault injection for the
// Prognos serving path. It wraps net.Listener/net.Conn so the protocol
// stack above experiences realistic transport misbehaviour — added
// latency, read/write stalls, partial writes, abrupt RST-style closes,
// byte truncation, accept failures — while every run of the same seed and
// config draws the identical sequence of per-connection fault plans.
//
// Determinism contract: plans are drawn from one seeded RNG at accept
// time, in accept order, under a lock. The i-th accepted connection always
// receives the i-th plan, so History() of two runs with equal seed, config
// and connection count is equal element-for-element. Which client lands on
// which plan depends on dial/accept interleaving — the fault *sequence* is
// what replays, which is exactly what a failure investigation needs.
//
// Use Wrap to serve straight through faults (unit tests), or Proxy to
// interpose a chaos hop between real clients and a real server
// (`prognosload -chaos`).
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the per-connection fault probabilities and magnitudes. All
// probabilities are in [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every random draw; equal seeds replay equal plans.
	Seed int64
	// LatencyProb is the chance a connection gets LatencyMin..LatencyMax
	// of one-time added latency before its first byte moves
	// (defaults 1ms..20ms).
	LatencyProb float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration
	// StallProb is the chance a connection freezes once for StallFor
	// (default 50ms) after 1..StallBytes (default 4096) bytes moved.
	StallProb  float64
	StallFor   time.Duration
	StallBytes int64
	// PartialProb is the chance every write on the connection is chopped
	// into 1..16-byte pieces, each written separately.
	PartialProb float64
	// ResetProb is the chance the connection is abruptly RST-closed after
	// 1..ResetBytes (default 8192) bytes moved.
	ResetProb  float64
	ResetBytes int64
	// TruncateProb is the chance one write is cut mid-buffer after
	// 1..TruncateBytes (default 8192) bytes moved: the tail of that write
	// is dropped and the connection RST-closed.
	TruncateProb  float64
	TruncateBytes int64
	// AcceptFailProb is the chance an accepted connection is immediately
	// dropped and surfaced to the accept loop as a transient error.
	AcceptFailProb float64
}

func (c Config) withDefaults() Config {
	if c.LatencyMin <= 0 {
		c.LatencyMin = time.Millisecond
	}
	if c.LatencyMax < c.LatencyMin {
		c.LatencyMax = 20 * time.Millisecond
	}
	if c.StallFor <= 0 {
		c.StallFor = 50 * time.Millisecond
	}
	if c.StallBytes <= 0 {
		c.StallBytes = 4096
	}
	if c.ResetBytes <= 0 {
		c.ResetBytes = 8192
	}
	if c.TruncateBytes <= 0 {
		c.TruncateBytes = 8192
	}
	return c
}

// Plan is the fault assignment of one accepted connection: which faults
// fire and when. Plans are value types with no internal state, so History
// slices compare with ==.
type Plan struct {
	// Conn is the accept ordinal (0-based).
	Conn int `json:"conn"`
	// AcceptFail drops the connection at accept; no other fault applies.
	AcceptFail bool `json:"accept_fail,omitempty"`
	// Latency is one-time added delay before the first byte moves.
	Latency time.Duration `json:"latency,omitempty"`
	// Partial chops every write into small pieces.
	Partial bool `json:"partial,omitempty"`
	// StallAfter freezes the connection once for StallFor after that many
	// bytes moved (0 = never).
	StallAfter int64         `json:"stall_after,omitempty"`
	StallFor   time.Duration `json:"stall_for,omitempty"`
	// ResetAfter RST-closes the connection after that many bytes moved
	// (0 = never).
	ResetAfter int64 `json:"reset_after,omitempty"`
	// TruncateAfter cuts a write mid-buffer once that many bytes moved,
	// dropping the tail and RST-closing (0 = never).
	TruncateAfter int64 `json:"truncate_after,omitempty"`
	// seed drives the per-connection draws (partial piece sizes).
	seed int64
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.AcceptFail || p.Latency > 0 || p.Partial || p.StallAfter > 0 || p.ResetAfter > 0 || p.TruncateAfter > 0
}

// String renders the plan compactly for logs.
func (p Plan) String() string {
	if p.AcceptFail {
		return fmt.Sprintf("conn %d: accept-fail", p.Conn)
	}
	s := fmt.Sprintf("conn %d:", p.Conn)
	if p.Latency > 0 {
		s += fmt.Sprintf(" latency=%v", p.Latency)
	}
	if p.Partial {
		s += " partial"
	}
	if p.StallAfter > 0 {
		s += fmt.Sprintf(" stall@%dB/%v", p.StallAfter, p.StallFor)
	}
	if p.ResetAfter > 0 {
		s += fmt.Sprintf(" reset@%dB", p.ResetAfter)
	}
	if p.TruncateAfter > 0 {
		s += fmt.Sprintf(" truncate@%dB", p.TruncateAfter)
	}
	if !p.Active() {
		s += " clean"
	}
	return s
}

// AcceptError is the transient error a chaos listener returns when a plan
// fails the accept; accept loops treat it like any transient failure
// (back off and keep accepting).
type AcceptError struct {
	// Conn is the accept ordinal the failure was assigned to.
	Conn int
}

func (e *AcceptError) Error() string {
	return fmt.Sprintf("chaos: accept failure injected (conn %d)", e.Conn)
}
func (e *AcceptError) Timeout() bool   { return false }
func (e *AcceptError) Temporary() bool { return true }

// Listener wraps a net.Listener with fault injection.
type Listener struct {
	inner net.Listener
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	plans []Plan
}

// Wrap returns a chaos listener drawing per-connection plans from the
// config's seed.
func Wrap(ln net.Listener, cfg Config) *Listener {
	cfg = cfg.withDefaults()
	return &Listener{
		inner: ln,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// nextPlan draws the next connection's plan. Every gate and magnitude is
// drawn unconditionally in a fixed order, so the draw count per connection
// is constant and the plan sequence depends only on (seed, config).
func (l *Listener) nextPlan() Plan {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := Plan{Conn: len(l.plans), seed: l.rng.Int63()}
	acceptFail := l.rng.Float64() < l.cfg.AcceptFailProb
	latGate, latFrac := l.rng.Float64() < l.cfg.LatencyProb, l.rng.Float64()
	stallGate, stallAt := l.rng.Float64() < l.cfg.StallProb, 1+l.rng.Int63n(l.cfg.StallBytes)
	partial := l.rng.Float64() < l.cfg.PartialProb
	resetGate, resetAt := l.rng.Float64() < l.cfg.ResetProb, 1+l.rng.Int63n(l.cfg.ResetBytes)
	truncGate, truncAt := l.rng.Float64() < l.cfg.TruncateProb, 1+l.rng.Int63n(l.cfg.TruncateBytes)
	switch {
	case acceptFail:
		p.AcceptFail = true
	default:
		if latGate {
			p.Latency = l.cfg.LatencyMin + time.Duration(latFrac*float64(l.cfg.LatencyMax-l.cfg.LatencyMin))
		}
		if stallGate {
			p.StallAfter, p.StallFor = stallAt, l.cfg.StallFor
		}
		p.Partial = partial
		if resetGate {
			p.ResetAfter = resetAt
		} else if truncGate {
			p.TruncateAfter = truncAt
		}
	}
	l.plans = append(l.plans, p)
	return p
}

// Accept returns the next connection wrapped with its fault plan, or an
// *AcceptError when the plan injects an accept failure.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	plan := l.nextPlan()
	if plan.AcceptFail {
		RSTClose(conn)
		return nil, &AcceptError{Conn: plan.Conn}
	}
	return newConn(conn, plan), nil
}

// Close closes the underlying listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the underlying listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// History returns the plans drawn so far, in accept order. Two runs with
// equal seed, config and connection count yield equal histories.
func (l *Listener) History() []Plan {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Plan(nil), l.plans...)
}

// RSTClose tears a connection down abruptly: SO_LINGER 0 makes the close
// send an RST instead of a FIN, the way a crashed peer or cleared NAT
// entry looks from the other side. The chaos proxy uses it for reset
// faults; the node-kill chaos mode (server.Kill, fleet Config.NodeKill)
// uses it to make a whole node's teardown look like a crash.
func RSTClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// conn applies one Plan to a net.Conn.
type conn struct {
	net.Conn
	plan Plan

	forwarded atomic.Int64 // bytes moved, both directions
	cut       atomic.Bool  // reset/truncate fired; conn is dead

	latencyOnce sync.Once
	stallOnce   sync.Once

	wmu sync.Mutex // guards rng (partial piece sizes) under concurrent writes
	rng *rand.Rand
}

func newConn(inner net.Conn, plan Plan) *conn {
	return &conn{Conn: inner, plan: plan, rng: rand.New(rand.NewSource(plan.seed))}
}

// errCut is returned once a reset/truncate fault has killed the conn.
type errCut struct{ p Plan }

func (e *errCut) Error() string   { return "chaos: " + e.p.String() + " (connection cut)" }
func (e *errCut) Timeout() bool   { return false }
func (e *errCut) Temporary() bool { return false }

func (c *conn) firstByteLatency() {
	if c.plan.Latency > 0 {
		c.latencyOnce.Do(func() { time.Sleep(c.plan.Latency) })
	}
}

// account moves the byte counter and fires threshold faults (stall once,
// reset permanently). It reports whether the conn is still usable.
func (c *conn) account(n int) bool {
	if n <= 0 {
		return !c.cut.Load()
	}
	total := c.forwarded.Add(int64(n))
	if c.plan.StallAfter > 0 && total >= c.plan.StallAfter {
		c.stallOnce.Do(func() { time.Sleep(c.plan.StallFor) })
	}
	if c.plan.ResetAfter > 0 && total >= c.plan.ResetAfter && c.cut.CompareAndSwap(false, true) {
		RSTClose(c.Conn)
	}
	return !c.cut.Load()
}

func (c *conn) Read(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, &errCut{p: c.plan}
	}
	c.firstByteLatency()
	n, err := c.Conn.Read(p)
	// Deliver what was read even when the reset fires on this very call;
	// the *next* operation observes the cut.
	c.account(n)
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, &errCut{p: c.plan}
	}
	c.firstByteLatency()
	if c.plan.TruncateAfter > 0 {
		if total := c.forwarded.Load(); total+int64(len(p)) > c.plan.TruncateAfter {
			// Cut mid-buffer: forward the head, drop the tail, kill the
			// conn. The short count plus an error keeps the io.Writer
			// contract honest.
			keep := c.plan.TruncateAfter - total
			if keep < 0 {
				keep = 0
			}
			n := 0
			if keep > 0 {
				n, _ = c.writePieces(p[:keep])
			}
			if c.cut.CompareAndSwap(false, true) {
				RSTClose(c.Conn)
			}
			return n, &errCut{p: c.plan}
		}
	}
	n, err := c.writePieces(p)
	if !c.account(n) && err == nil {
		err = &errCut{p: c.plan}
		// The bytes were written before the cut, so the count stands.
	}
	return n, err
}

// writePieces forwards p, chopped into 1..16-byte pieces when the plan
// injects partial writes.
func (c *conn) writePieces(p []byte) (int, error) {
	if !c.plan.Partial {
		return c.Conn.Write(p)
	}
	written := 0
	for written < len(p) {
		c.wmu.Lock()
		size := 1 + c.rng.Intn(16)
		c.wmu.Unlock()
		if size > len(p)-written {
			size = len(p) - written
		}
		n, err := c.Conn.Write(p[written : written+size])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// CloseWrite propagates a half-close to the underlying connection, so
// clean end-of-stream still works through a chaos hop.
func (c *conn) CloseWrite() error {
	if cw, ok := c.Conn.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return fmt.Errorf("chaos: transport does not support half-close")
}
