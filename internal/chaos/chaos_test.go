package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// chaosCfg is a fault-heavy config used across the tests.
func chaosCfg(seed int64) Config {
	return Config{
		Seed:           seed,
		LatencyProb:    0.5,
		StallProb:      0.3,
		StallFor:       time.Millisecond,
		PartialProb:    0.5,
		ResetProb:      0.3,
		TruncateProb:   0.2,
		AcceptFailProb: 0.1,
	}
}

// drawPlans pulls n plans straight from a listener's generator (no real
// conns needed — the draw is what determinism is about).
func drawPlans(seed int64, n int) []Plan {
	l := Wrap(nil, chaosCfg(seed))
	out := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.nextPlan())
	}
	return out
}

// TestPlanSequenceDeterministic is the replay contract: equal seed and
// config draw the identical plan sequence, different seeds do not.
func TestPlanSequenceDeterministic(t *testing.T) {
	a := drawPlans(42, 200)
	b := drawPlans(42, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d diverged across runs of the same seed:\n%v\n%v", i, a[i], b[i])
		}
	}
	c := drawPlans(43, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds drew identical plan sequences")
	}
	// The fault mix must actually exercise the configured faults.
	var resets, partials, accepts int
	for _, p := range a {
		if p.ResetAfter > 0 {
			resets++
		}
		if p.Partial {
			partials++
		}
		if p.AcceptFail {
			accepts++
		}
	}
	if resets == 0 || partials == 0 || accepts == 0 {
		t.Fatalf("fault mix degenerate: resets=%d partials=%d accept-fails=%d", resets, partials, accepts)
	}
}

// TestPartialWritesPreserveBytes pushes a payload through a partial-write
// plan over a real TCP pair and checks byte-exact arrival: chopping writes
// must reorder or lose nothing.
func TestPartialWritesPreserveBytes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := Wrap(ln, Config{Seed: 7, PartialProb: 1})
	type result struct {
		data []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		conn, err := cl.Accept()
		if err != nil {
			got <- result{err: err}
			return
		}
		payload := bytes.Repeat([]byte("prognos-chaos-partial-write-"), 64)
		if _, err := conn.Write(payload); err != nil {
			got <- result{err: err}
			return
		}
		conn.Close()
		got <- result{data: payload}
	}()
	conn, err := net.Dial("tcp", cl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer cl.Close()
	received, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !bytes.Equal(received, r.data) {
		t.Fatalf("partial writes corrupted the stream: sent %d bytes, received %d", len(r.data), len(received))
	}
}

// TestResetCutsConnection drives bytes into a reset plan until the cut
// fires, and checks the failure is surfaced, not silently swallowed.
func TestResetCutsConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := Wrap(ln, Config{Seed: 3, ResetProb: 1, ResetBytes: 64})
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := cl.Accept()
		if err != nil {
			accepted <- nil
			return
		}
		accepted <- conn
	}()
	peer, err := net.Dial("tcp", cl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	defer cl.Close()
	conn := <-accepted
	if conn == nil {
		t.Fatal("accept failed")
	}
	var wErr error
	for i := 0; i < 64; i++ {
		if _, wErr = conn.Write(bytes.Repeat([]byte("x"), 32)); wErr != nil {
			break
		}
	}
	if wErr == nil {
		t.Fatal("reset plan never cut the connection")
	}
	var cut *errCut
	if !errors.As(wErr, &cut) {
		t.Fatalf("cut surfaced as %v, want *errCut", wErr)
	}
}

// TestProxyForwardsCleanly runs a clean-config proxy end to end with
// half-close propagation: client sends, half-closes, and still reads the
// server's full answer through the hop.
func TestProxyForwardsCleanly(t *testing.T) {
	// Echo server.
	srvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvLn.Close()
	go func() {
		for {
			conn, err := srvLn.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				b, _ := io.ReadAll(conn)
				conn.Write(b)
			}()
		}
	}()

	p, err := NewProxy("127.0.0.1:0", srvLn.Addr().String(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("through the chaos hop and back\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	back, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatalf("echoed %q, want %q", back, msg)
	}
	if h := p.History(); len(h) != 1 || h[0].Conn != 0 {
		t.Fatalf("history %v, want exactly conn 0", h)
	}
}
