package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a chaos hop between real clients and a real server: it accepts
// through a chaos Listener (so every client connection gets a fault plan)
// and forwards bytes to the target address. This is what
// `prognosload -chaos` interposes in front of prognosd.
type Proxy struct {
	ln     *Listener
	target string

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

// NewProxy listens on addr (port 0 picks a free port) and forwards every
// accepted connection — through its fault plan — to target.
func NewProxy(addr, target string, cfg Config) (*Proxy, error) {
	raw, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", addr, err)
	}
	p := &Proxy{
		ln:     Wrap(raw, cfg),
		target: target,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// History returns the fault plans drawn so far, in accept order.
func (p *Proxy) History() []Plan { return p.ln.History() }

// Close stops accepting, cuts every in-flight forward and waits for the
// forwarding goroutines to unwind.
func (p *Proxy) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		err = p.ln.Close()
	})
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			var af *AcceptError
			if errors.As(err, &af) {
				continue // injected accept failure: keep accepting
			}
			select {
			case <-p.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		p.mu.Lock()
		select {
		case <-p.done:
			p.mu.Unlock()
			conn.Close()
			return
		default:
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer func() {
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
				conn.Close()
				p.wg.Done()
			}()
			p.forward(conn)
		}()
	}
}

// forward pumps bytes between one chaos-wrapped client connection and a
// fresh upstream connection, propagating half-closes so a clean
// client-side end of stream still drains the server's responses. A fault
// on either leg tears both down — exactly what a mid-path failure does.
func (p *Proxy) forward(client net.Conn) {
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		RSTClose(client)
		return
	}
	defer up.Close()

	var w sync.WaitGroup
	w.Add(1)
	go func() {
		defer w.Done()
		_, err := io.Copy(up, client) // client → server
		if err != nil {
			// The chaos leg died (or the server stopped reading): cut
			// both directions so neither side waits on a dead path.
			up.Close()
			client.Close()
			return
		}
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	_, err = io.Copy(client, up) // server → client
	if err != nil {
		up.Close()
		client.Close()
	} else if cw, ok := client.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	w.Wait()
}
