// Package radio implements the physical-layer substrate: a
// frequency-dependent log-distance propagation model with spatially
// correlated shadowing and small-scale fading, SINR computation, the
// triangular-kernel signal smoother of Long & Sikdar that Prognos uses to
// suppress fast fading, and a linear-regression RRS forecaster.
//
// The propagation model is the root cause of the paper's band findings:
// higher carrier frequencies attenuate faster, shrinking mmWave cells to a
// fraction of low-band coverage (§6.1) and driving up mmWave HO frequency
// (§5.1).
package radio

import (
	"math"
	"math/rand"

	"repro/internal/cellular"
)

// Physical constants for the propagation model.
const (
	speedOfLight = 2.998e8
	refDistanceM = 1.0 // reference distance d0 for log-distance model
)

// PropagationModel computes received signal quality from geometry. All
// methods are safe for concurrent use once constructed.
type PropagationModel struct {
	// PathLossExp is the path-loss exponent n; urban macro is ~3.0-3.7.
	PathLossExp float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation.
	ShadowSigmaDB float64
	// ShadowCorrDistM is the Gudmundson decorrelation distance in metres.
	ShadowCorrDistM float64
	// FadingSigmaDB approximates small-scale fading as zero-mean Gaussian
	// jitter in dB on top of shadowing (a light-weight stand-in for
	// Rayleigh/Rician envelopes at 20 Hz sampling).
	FadingSigmaDB float64
	// NoiseFloorDBm is the thermal noise floor used for SINR.
	NoiseFloorDBm float64
	// MMWaveExtraLossDB adds blockage/oxygen-absorption penalty applied to
	// mmWave links beyond free-space frequency scaling.
	MMWaveExtraLossDB float64
}

// DefaultModel returns the propagation model used throughout the
// reproduction, calibrated so that emergent cell coverage matches the
// paper's §6.1 diameters (1.4 km low, 0.73 km mid, 0.15 km mmWave) for the
// default topology parameters.
func DefaultModel() *PropagationModel {
	return &PropagationModel{
		PathLossExp:       3.2,
		ShadowSigmaDB:     6.0,
		ShadowCorrDistM:   50.0,
		FadingSigmaDB:     1.5,
		NoiseFloorDBm:     -100.0,
		MMWaveExtraLossDB: 10.0,
	}
}

// FreeSpaceRefLossDB returns the free-space path loss at the reference
// distance for carrier frequency f (Hz): 20·log10(4πd0·f/c).
func FreeSpaceRefLossDB(freqHz float64) float64 {
	return 20 * math.Log10(4*math.Pi*refDistanceM*freqHz/speedOfLight)
}

// refLossDB caches FreeSpaceRefLossDB per band class. A band's center
// frequency is a constant, so recomputing the reference loss for every
// observation wasted a Log10 (plus the surrounding float ops) in the
// simulator's per-cell hot path.
var refLossDB = [...]float64{
	cellular.BandLow:    FreeSpaceRefLossDB(cellular.BandLow.CenterFrequencyHz()),
	cellular.BandMid:    FreeSpaceRefLossDB(cellular.BandMid.CenterFrequencyHz()),
	cellular.BandMMWave: FreeSpaceRefLossDB(cellular.BandMMWave.CenterFrequencyHz()),
}

// refLossFor returns the cached reference loss for known band classes,
// computing on the fly for out-of-range values.
func refLossFor(band cellular.Band) float64 {
	if band >= 0 && int(band) < len(refLossDB) {
		return refLossDB[band]
	}
	return FreeSpaceRefLossDB(band.CenterFrequencyHz())
}

// PathLossDB returns the deterministic (median) path loss in dB at distance
// d metres for the given band.
func (m *PropagationModel) PathLossDB(band cellular.Band, d float64) float64 {
	if d < refDistanceM {
		d = refDistanceM
	}
	pl := refLossFor(band) + 10*m.PathLossExp*math.Log10(d/refDistanceM)
	if band == cellular.BandMMWave {
		pl += m.MMWaveExtraLossDB
	}
	return pl
}

// MedianRSRP returns the median received power (dBm) at distance d metres
// from a cell transmitting at txPower dBm.
func (m *PropagationModel) MedianRSRP(band cellular.Band, txPowerDBm, d float64) float64 {
	return txPowerDBm - m.PathLossDB(band, d)
}

// ShadowField generates spatially correlated log-normal shadowing along a
// 1-D trajectory using the Gudmundson exponential-correlation model. Each
// cell gets an independent field; the UE samples it by travelled distance.
type ShadowField struct {
	sigma    float64
	corrDist float64
	rng      *rand.Rand
	lastPos  float64
	lastVal  float64
	primed   bool
}

// NewShadowField creates a correlated shadowing process with the model's
// parameters, using rng for the innovation sequence.
func (m *PropagationModel) NewShadowField(rng *rand.Rand) *ShadowField {
	return &ShadowField{sigma: m.ShadowSigmaDB, corrDist: m.ShadowCorrDistM, rng: rng}
}

// At returns the shadowing value (dB) at odometer position pos metres.
// Positions must be non-decreasing across calls; the process is an AR(1) in
// travelled distance with correlation exp(-Δ/corrDist).
func (f *ShadowField) At(pos float64) float64 {
	if !f.primed {
		f.primed = true
		f.lastPos = pos
		f.lastVal = f.rng.NormFloat64() * f.sigma
		return f.lastVal
	}
	delta := pos - f.lastPos
	if delta < 0 {
		delta = 0
	}
	rho := math.Exp(-delta / f.corrDist)
	f.lastVal = rho*f.lastVal + math.Sqrt(1-rho*rho)*f.rng.NormFloat64()*f.sigma
	f.lastPos = pos
	return f.lastVal
}

// Fading returns one small-scale fading sample in dB.
func (m *PropagationModel) Fading(rng *rand.Rand) float64 {
	return rng.NormFloat64() * m.FadingSigmaDB
}

// RSRQFromRSRP derives a plausible RSRQ (dB) from RSRP and the count of
// overlapping same-frequency cells; more interferers depress RSRQ.
func RSRQFromRSRP(rsrp float64, interferers int) float64 {
	// RSRQ in LTE spans roughly [-19.5, -3]; map signal strength and
	// interference load into that range.
	q := -3.0 - float64(interferers)*1.5 - (rsrpRef-rsrp)*0.08
	if q < -19.5 {
		q = -19.5
	}
	if q > -3 {
		q = -3
	}
	return q
}

const rsrpRef = -80.0

// SINR computes the signal-to-interference-plus-noise ratio (dB) given the
// serving RSRP (dBm) and the RSRPs of co-channel interferers (dBm).
func (m *PropagationModel) SINR(servingRSRP float64, interferers []float64) float64 {
	noise := math.Pow(10, m.NoiseFloorDBm/10)
	denom := noise
	for _, i := range interferers {
		denom += math.Pow(10, i/10)
	}
	sig := math.Pow(10, servingRSRP/10)
	return 10 * math.Log10(sig/denom)
}
