package radio

import (
	"fmt"
	"math"
)

// LinearForecaster predicts future signal strength by ordinary least squares
// over a sliding history window, exactly the "light-weight linear regression
// model" Prognos' report predictor uses to forecast the serving and
// neighbour RRS in the next prediction window (§7.2).
//
// Samples are pushed at a fixed rate; Forecast(k) extrapolates k steps ahead
// of the most recent sample.
type LinearForecaster struct {
	window int
	buf    []float64
	head   int
	filled int

	// Cached least-squares fit. Forecast and Slope are called many times
	// per pushed sample (once per look-ahead step per event config on the
	// prediction hot path), so the O(window) regression is computed at most
	// once per Push and reused until the history changes.
	fitA, fitB float64
	fitOK      bool
}

// NewLinearForecaster creates a forecaster with the given history window
// (number of samples). Window must be at least 2 so a slope is defined.
func NewLinearForecaster(window int) (*LinearForecaster, error) {
	if window < 2 {
		return nil, fmt.Errorf("radio: forecaster window must be >= 2, got %d", window)
	}
	return &LinearForecaster{window: window, buf: make([]float64, window)}, nil
}

// Push appends one sample to the history window.
func (f *LinearForecaster) Push(v float64) {
	f.buf[f.head] = v
	f.head = (f.head + 1) % f.window
	if f.filled < f.window {
		f.filled++
	}
	f.fitOK = false
}

// Ready reports whether enough history has accumulated to fit a slope.
func (f *LinearForecaster) Ready() bool { return f.filled >= 2 }

// fit returns intercept a and slope b of the least-squares line through the
// history, with x = 0 at the oldest retained sample. The result is cached
// until the history changes.
func (f *LinearForecaster) fit() (a, b float64) {
	if f.fitOK {
		return f.fitA, f.fitB
	}
	n := float64(f.filled)
	start := f.head - f.filled
	if start < 0 {
		start += f.window
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < f.filled; i++ {
		x := float64(i)
		y := f.buf[(start+i)%f.window]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		a, b = sy/n, 0
	} else {
		b = (n*sxy - sx*sy) / den
		a = (sy - b*sx) / n
	}
	f.fitA, f.fitB, f.fitOK = a, b, true
	return a, b
}

// Forecast extrapolates k steps beyond the newest sample (k >= 1). With
// fewer than 2 samples it returns the last sample, or 0 with none.
func (f *LinearForecaster) Forecast(k int) float64 {
	if f.filled == 0 {
		return 0
	}
	if f.filled == 1 {
		idx := f.head - 1
		if idx < 0 {
			idx += f.window
		}
		return f.buf[idx]
	}
	a, b := f.fit()
	x := float64(f.filled-1) + float64(k)
	return a + b*x
}

// Slope returns the fitted slope per step (0 until Ready).
func (f *LinearForecaster) Slope() float64 {
	if f.filled < 2 {
		return 0
	}
	_, b := f.fit()
	return b
}

// Reset clears the history window.
func (f *LinearForecaster) Reset() {
	f.head = 0
	f.filled = 0
	f.fitOK = false
}

// History returns the retained window contents oldest-first, for state
// checkpointing. An empty slice means the forecaster is empty.
func (f *LinearForecaster) History() []float64 {
	out := make([]float64, 0, f.filled)
	start := f.head - f.filled
	if start < 0 {
		start += f.window
	}
	for i := 0; i < f.filled; i++ {
		out = append(out, f.buf[(start+i)%f.window])
	}
	return out
}

// SetHistory replaces the history window with vs (oldest-first), the
// inverse of History. When vs is longer than the window only the newest
// window-many samples are kept.
func (f *LinearForecaster) SetHistory(vs []float64) {
	f.Reset()
	if over := len(vs) - f.window; over > 0 {
		vs = vs[over:]
	}
	for _, v := range vs {
		f.Push(v)
	}
}

// MAE computes the mean absolute error between two equal-length series; it
// is used by tests and the Fig. 14b throughput-prediction analysis.
func MAE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred))
}
