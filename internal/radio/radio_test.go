package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cellular"
)

func TestPathLossMonotoneInDistance(t *testing.T) {
	m := DefaultModel()
	f := func(a, b float64) bool {
		da := 1 + math.Abs(a)
		db := 1 + math.Abs(b)
		if da > db {
			da, db = db, da
		}
		return m.PathLossDB(cellular.BandMid, da) <= m.PathLossDB(cellular.BandMid, db)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLossOrderedByFrequency(t *testing.T) {
	m := DefaultModel()
	for _, d := range []float64{10, 100, 1000, 5000} {
		low := m.PathLossDB(cellular.BandLow, d)
		mid := m.PathLossDB(cellular.BandMid, d)
		mmw := m.PathLossDB(cellular.BandMMWave, d)
		if !(low < mid && mid < mmw) {
			t.Errorf("d=%v: path loss ordering violated: low=%v mid=%v mmWave=%v", d, low, mid, mmw)
		}
	}
}

func TestPathLossClampsReference(t *testing.T) {
	m := DefaultModel()
	if m.PathLossDB(cellular.BandLow, 0.1) != m.PathLossDB(cellular.BandLow, 1) {
		t.Error("sub-reference distances must clamp to d0")
	}
}

func TestMedianRSRPDecreases(t *testing.T) {
	m := DefaultModel()
	near := m.MedianRSRP(cellular.BandLow, 25, 100)
	far := m.MedianRSRP(cellular.BandLow, 25, 2000)
	if near <= far {
		t.Errorf("RSRP near (%v) must exceed far (%v)", near, far)
	}
}

func TestShadowFieldCorrelation(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(5))
	f := m.NewShadowField(rng)
	v0 := f.At(0)
	v1 := f.At(1) // 1 m later: highly correlated
	if math.Abs(v1-v0) > 3*m.ShadowSigmaDB/2 {
		t.Errorf("shadowing jumped %v dB over 1 m", v1-v0)
	}
	// After many decorrelation distances, variance should look like the
	// configured sigma.
	var vals []float64
	pos := 1.0
	for i := 0; i < 2000; i++ {
		pos += m.ShadowCorrDistM * 3
		vals = append(vals, f.At(pos))
	}
	mean, sd := meanStd(vals)
	if math.Abs(mean) > 0.5 {
		t.Errorf("shadow mean %v, want ≈0", mean)
	}
	if sd < m.ShadowSigmaDB*0.8 || sd > m.ShadowSigmaDB*1.2 {
		t.Errorf("shadow stddev %v, want ≈%v", sd, m.ShadowSigmaDB)
	}
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)-1))
}

func TestSINRWithInterferers(t *testing.T) {
	m := DefaultModel()
	clean := m.SINR(-80, nil)
	dirty := m.SINR(-80, []float64{-85, -90})
	if clean <= dirty {
		t.Errorf("interference must reduce SINR: clean=%v dirty=%v", clean, dirty)
	}
	// With no interferers, SINR = RSRP - noise floor.
	if math.Abs(clean-(-80-m.NoiseFloorDBm)) > 1e-9 {
		t.Errorf("noise-limited SINR = %v", clean)
	}
}

func TestRSRQBounds(t *testing.T) {
	f := func(rsrp float64, interferers int) bool {
		if interferers < 0 {
			interferers = -interferers
		}
		q := RSRQFromRSRP(rsrp, interferers%20)
		return q >= -19.5 && q <= -3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangularSmootherConstantSignal(t *testing.T) {
	s, err := NewTriangularSmoother(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := s.Push(-90); math.Abs(got+90) > 1e-9 {
			t.Fatalf("constant signal smoothed to %v", got)
		}
	}
}

func TestTriangularSmootherWeightsRecent(t *testing.T) {
	s, _ := NewTriangularSmoother(4)
	for _, v := range []float64{0, 0, 0, 10} {
		s.Push(v)
	}
	// Weighted mean with weights 1,2,3,4 → 40/10 = 4, above the plain mean
	// of 2.5: recent samples dominate.
	if got := s.Value(); math.Abs(got-4) > 1e-9 {
		t.Errorf("Value = %v, want 4", got)
	}
}

func TestTriangularSmootherBounds(t *testing.T) {
	// Smoothed output must stay within the min/max of the window.
	rng := rand.New(rand.NewSource(2))
	s, _ := NewTriangularSmoother(8)
	var win []float64
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64() * 10
		win = append(win, v)
		if len(win) > 8 {
			win = win[1:]
		}
		got := s.Push(v)
		lo, hi := win[0], win[0]
		for _, w := range win {
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Fatalf("smoothed %v outside window [%v, %v]", got, lo, hi)
		}
	}
}

func TestSmootherValidation(t *testing.T) {
	if _, err := NewTriangularSmoother(0); err == nil {
		t.Error("zero window accepted")
	}
	s, _ := NewTriangularSmoother(3)
	if s.Value() != 0 {
		t.Error("empty smoother value")
	}
	s.Push(5)
	s.Reset()
	if s.Value() != 0 {
		t.Error("reset did not clear")
	}
	if s.Window() != 3 {
		t.Error("window accessor")
	}
}

func TestLinearForecasterExactLine(t *testing.T) {
	f, err := NewLinearForecaster(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.Push(float64(i) * 2)
	}
	// Perfect line: forecast k steps ahead continues it.
	for k := 1; k <= 5; k++ {
		want := float64(9+k) * 2
		if got := f.Forecast(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("Forecast(%d) = %v, want %v", k, got, want)
		}
	}
	if math.Abs(f.Slope()-2) > 1e-9 {
		t.Errorf("Slope = %v", f.Slope())
	}
}

func TestLinearForecasterEdgeCases(t *testing.T) {
	if _, err := NewLinearForecaster(1); err == nil {
		t.Error("window 1 accepted")
	}
	f, _ := NewLinearForecaster(5)
	if f.Forecast(3) != 0 {
		t.Error("empty forecaster should return 0")
	}
	f.Push(7)
	if f.Forecast(3) != 7 {
		t.Error("single-sample forecast should repeat the sample")
	}
	if f.Ready() {
		t.Error("not ready with one sample")
	}
	f.Push(7)
	if !f.Ready() {
		t.Error("ready with two samples")
	}
	f.Reset()
	if f.Ready() {
		t.Error("reset did not clear")
	}
}

func TestLinearForecasterConstant(t *testing.T) {
	f, _ := NewLinearForecaster(8)
	for i := 0; i < 20; i++ {
		f.Push(-95)
	}
	if got := f.Forecast(10); math.Abs(got+95) > 1e-9 {
		t.Errorf("constant forecast = %v", got)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, 2, 3}, []float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("MAE = %v", got)
	}
	if !math.IsNaN(MAE(nil, nil)) {
		t.Error("empty MAE should be NaN")
	}
	if !math.IsNaN(MAE([]float64{1}, []float64{1, 2})) {
		t.Error("mismatched MAE should be NaN")
	}
}

func TestFreeSpaceRefLoss(t *testing.T) {
	// Doubling frequency adds ~6 dB at the reference distance.
	d := FreeSpaceRefLossDB(2e9) - FreeSpaceRefLossDB(1e9)
	if math.Abs(d-6.02) > 0.1 {
		t.Errorf("frequency doubling adds %v dB, want ≈6", d)
	}
}
