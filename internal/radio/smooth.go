package radio

import "fmt"

// TriangularSmoother implements the triangular-kernel signal smoothing of
// Long & Sikdar ("A Real-Time Algorithm for Long Range Signal Strength
// Prediction in Wireless Networks"), which Prognos' report predictor uses to
// eliminate variations caused by small-scale fading and measurement noise
// (§7.2).
//
// The smoother maintains a ring of the last W samples and returns the
// triangular-weighted mean, with weights rising linearly toward the most
// recent sample: w_i = i+1 for i = 0..W-1 (oldest to newest).
type TriangularSmoother struct {
	window  int
	buf     []float64
	head    int
	filled  int
	weights []float64
	wsum    float64
}

// NewTriangularSmoother creates a smoother over the given window length.
// Window must be at least 1.
func NewTriangularSmoother(window int) (*TriangularSmoother, error) {
	if window < 1 {
		return nil, fmt.Errorf("radio: smoother window must be >= 1, got %d", window)
	}
	w := make([]float64, window)
	sum := 0.0
	for i := range w {
		w[i] = float64(i + 1)
		sum += w[i]
	}
	return &TriangularSmoother{window: window, buf: make([]float64, window), weights: w, wsum: sum}, nil
}

// Push adds a sample and returns the current smoothed value. Until the
// window fills, the weighted mean over the available samples is returned.
func (s *TriangularSmoother) Push(v float64) float64 {
	s.buf[s.head] = v
	s.head = (s.head + 1) % s.window
	if s.filled < s.window {
		s.filled++
	}
	return s.Value()
}

// Value returns the smoothed value over the samples seen so far. With no
// samples it returns 0.
func (s *TriangularSmoother) Value() float64 {
	if s.filled == 0 {
		return 0
	}
	// Oldest sample index in the ring.
	start := s.head - s.filled
	if start < 0 {
		start += s.window
	}
	num, den := 0.0, 0.0
	for i := 0; i < s.filled; i++ {
		idx := (start + i) % s.window
		w := float64(i + 1)
		num += w * s.buf[idx]
		den += w
	}
	return num / den
}

// Reset clears the smoother state.
func (s *TriangularSmoother) Reset() {
	s.head = 0
	s.filled = 0
}

// Samples returns the retained window contents oldest-first, for state
// checkpointing. An empty slice means the smoother is empty.
func (s *TriangularSmoother) Samples() []float64 {
	out := make([]float64, 0, s.filled)
	start := s.head - s.filled
	if start < 0 {
		start += s.window
	}
	for i := 0; i < s.filled; i++ {
		out = append(out, s.buf[(start+i)%s.window])
	}
	return out
}

// SetSamples replaces the smoother contents with vs (oldest-first), the
// inverse of Samples. When vs is longer than the window only the newest
// window-many samples are kept.
func (s *TriangularSmoother) SetSamples(vs []float64) {
	s.Reset()
	if over := len(vs) - s.window; over > 0 {
		vs = vs[over:]
	}
	for _, v := range vs {
		s.Push(v)
	}
}

// Window returns the configured window length.
func (s *TriangularSmoother) Window() int { return s.window }
