package core_test

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/ran"
	"repro/internal/trace"
)

// TestServePathSteadyStateAllocs pins the allocation contract of the
// per-sample serve path (docs/ARCHITECTURE.md §Performance): once a
// Prognos instance has warmed its scratch state, OnSample+Predict over a
// quiet radio stream must not allocate at all. This is the invariant the
// sharded server's throughput rests on — any regression here multiplies
// by every sample of every session.
func TestServePathSteadyStateAllocs(t *testing.T) {
	p, err := core.New(core.Config{
		EventConfigs:       ran.EventConfigsFor("OpX", cellular.ArchNSA),
		Arch:               cellular.ArchNSA,
		UseReportPredictor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	smp := trace.Sample{
		Arch:       cellular.ArchNSA,
		ServingLTE: trace.CellObs{PCI: 101, Tech: cellular.TechLTE, Band: cellular.BandLow, RSRP: -95, RSRQ: -11, SINR: 12, Valid: true},
		ServingNR:  trace.CellObs{PCI: 501, Tech: cellular.TechNR, Band: cellular.BandMid, RSRP: -90, RSRQ: -10, SINR: 15, Valid: true},
	}
	now := time.Duration(0)
	tick := func() {
		smp.Time = now
		p.OnSample(smp)
		p.Predict()
		now += trace.SamplePeriod
	}
	// Warm up: fill the forecaster rings and scratch buffers.
	for i := 0; i < 256; i++ {
		tick()
	}
	if allocs := testing.AllocsPerRun(500, tick); allocs > 0 {
		t.Errorf("steady-state serve path allocates %.2f/op, want 0", allocs)
	}
}
