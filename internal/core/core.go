package core
