package core

import (
	"fmt"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// Config tunes a Prognos instance. The defaults mirror the paper's
// evaluation settings: 1 s history and prediction windows at 20 Hz.
type Config struct {
	// EventConfigs are the measurement configurations sniffed from the RRC
	// layer (step 1 of Fig. 1); required.
	EventConfigs []cellular.EventConfig
	// HistoryWindow bounds how far back observed/predicted reports feed a
	// prediction, and PredictionWindow is how far ahead each prediction
	// claims (default 1 s each, the paper's §7.3 setting).
	HistoryWindow, PredictionWindow time.Duration
	// SmootherWindow is the triangular-kernel length in samples (default 8).
	SmootherWindow int
	// Learner tunes the decision learner.
	Learner LearnerConfig
	// UseReportPredictor enables the first pipeline stage; when false,
	// Prognos predicts from observed MRs only (the Fig. 18 ablation).
	UseReportPredictor bool
	// Scores overrides the ho_score table (default DefaultScores).
	Scores ScoreTable
	// Arch is the current deployment architecture, used for prediction
	// sanity checks (an SCGM cannot be predicted on LTE, §7.1).
	Arch cellular.Arch
}

// Prediction is Prognos' output for one prediction window.
type Prediction struct {
	// Type is the predicted handover type (HONone when no HO is expected).
	Type cellular.HOType
	// Score is the ho_score applications multiply into their throughput
	// predictions (1.0 for no HO).
	Score float64
	// Similarity is the matched pattern's similarity (0 when no match).
	Similarity float64
	// Lead estimates how far ahead the HO will occur.
	Lead time.Duration
	// PatternKey is the canonical identity of the matched pattern ("" when
	// Type is HONone). It is an interned string — hot paths (core.Replay,
	// the serving loop) read it without the allocation Pattern.Key() costs.
	PatternKey string
	// Pattern is the matched pattern (empty when Type is HONone).
	Pattern Pattern
}

// Prognos is the holistic HO prediction system of §7.2: report predictor →
// decision learner → handover predictor.
type Prognos struct {
	cfg     Config
	report  *ReportPredictor
	learner *DecisionLearner
	scores  ScoreTable

	// phaseKeys accumulates observed MR keys since the last handover, with
	// arrival times for age-based pruning (the decision logic reacts to the
	// recent radio picture, so stale reports are not decision evidence).
	phaseKeys []string
	keyTimes  []time.Duration
	// nrAttached / lteValid track the UE state for sanity checks.
	nrAttached bool
	lteValid   bool
	lastSample trace.Sample
	stepDur    time.Duration

	// now tracks the latest sample time; lastKeyAt the arrival of the most
	// recent phase key. An observed-anchored match is only considered
	// fresh for a short bridging interval (the network's preparation
	// stage) after its anchoring report arrived — afterwards the report is
	// stale evidence and only forecast-anchored predictions stand.
	now       time.Duration
	lastKeyAt time.Duration
	// active prediction awaiting resolution at the next handover (for
	// reliability feedback). activeForecast marks a run currently standing
	// on forecast evidence: its end is not a reliability signal (forecasts
	// flap), while an observed-anchored run ending without a handover is a
	// false alarm for the pattern.
	activeKey      string
	activeType     cellular.HOType
	activeForecast bool

	// Per-tick scratch, reused so the steady-state Predict path allocates
	// nothing: the candidate key sequence and the forecast-report buffer.
	seqScratch  []string
	predScratch []PredictedReport
	// admitObserved/admitForecast are the match sanity predicates, built
	// once in New so Predict does not allocate a closure per call.
	admitObserved func(Pattern) bool
	admitForecast func(Pattern) bool
}

// New creates a Prognos instance.
func New(cfg Config) (*Prognos, error) {
	if len(cfg.EventConfigs) == 0 {
		return nil, fmt.Errorf("core: Prognos requires the sniffed RRC event configurations")
	}
	if cfg.HistoryWindow == 0 {
		cfg.HistoryWindow = time.Second
	}
	if cfg.PredictionWindow == 0 {
		cfg.PredictionWindow = time.Second
	}
	if cfg.SmootherWindow == 0 {
		cfg.SmootherWindow = 8
	}
	if cfg.Scores == nil {
		cfg.Scores = DefaultScores()
	}
	stepDur := trace.SamplePeriod
	histSteps := int(cfg.HistoryWindow / stepDur)
	if histSteps < 2 {
		histSteps = 2
	}
	predSteps := int(cfg.PredictionWindow / stepDur)
	if predSteps < 1 {
		predSteps = 1
	}
	p := &Prognos{
		cfg:     cfg,
		report:  NewReportPredictor(cfg.EventConfigs, cfg.SmootherWindow, histSteps, predSteps, stepDur),
		learner: NewDecisionLearner(cfg.Learner),
		scores:  cfg.Scores,
		stepDur: stepDur,
	}
	p.admitObserved = func(pat Pattern) bool { return p.admit(pat.HO) }
	// Forecast-anchored predictions only use patterns whose reliability has
	// been proven through observed-anchor feedback: forecasts are the
	// early-warning extension of trusted rules, not a vehicle for unvetted
	// ones.
	p.admitForecast = func(pat Pattern) bool {
		return p.admit(pat.HO) && pat.Hits+pat.Misses >= 5 && pat.Reliability() >= 0.5
	}
	return p, nil
}

// Bootstrap pre-loads learned patterns (Fig. 15's warm start).
func (p *Prognos) Bootstrap(patterns []Pattern) { p.learner.Bootstrap(patterns) }

// Learner exposes the decision learner (read-mostly: pattern snapshots,
// churn statistics).
func (p *Prognos) Learner() *DecisionLearner { return p.learner }

// SetEventConfigs replaces the sniffed measurement configurations mid-run:
// the serving network pushed a reconfiguration (e.g. the adaptive handover
// layer rewrote TTT/hysteresis), and a real Prognos would sniff the new
// table off the RRC layer exactly like the original one. The report
// predictor re-arms its trigger emulation against the new configs; learned
// patterns are untouched.
func (p *Prognos) SetEventConfigs(configs []cellular.EventConfig) {
	p.report.SetConfigs(configs)
}

// OnSample feeds one 20 Hz cross-layer sample (signal strengths and
// attachment state).
func (p *Prognos) OnSample(s trace.Sample) {
	p.report.Observe(s)
	p.nrAttached = s.ServingNR.Valid
	p.lteValid = s.ServingLTE.Valid
	p.lastSample = s
	p.now = s.Time
}

// keyFor derives the learner key of a measurement report. NR A3 reports are
// enriched with a same/diff-gNB hint derived from PCI grouping (sectors of
// one gNB carry consecutive PCIs, a UE-observable convention), because the
// network's response to an NR-A3 differs precisely on that distinction
// (SCG Modification within the gNB vs SCG Change across gNBs).
func keyFor(mr cellular.MeasurementReport) string {
	v, ok := internedVariant(mr.Tech, mr.Event)
	if !ok {
		// Outside the interned alphabet: fall back to formatting.
		v = keyVariant{base: mr.Key()}
		v.s, v.d = v.base+"s", v.base+"d"
	}
	if mr.Tech == cellular.TechNR && mr.Event == cellular.EventA3 && mr.NeighborPCI != 0 {
		if pciSameGNB(mr.ServingPCI, mr.NeighborPCI) {
			return v.s
		}
		return v.d
	}
	return v.base
}

// pciSameGNB reports whether two NR PCIs belong to the same gNB under the
// consecutive-PCI sectoring convention.
func pciSameGNB(a, b cellular.PCI) bool {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	return d <= 2
}

// OnReport feeds one RRC-sniffed measurement report; it extends the current
// phase. Consecutive repeats of the same key (3GPP periodic re-reports of a
// still-standing event) are collapsed: they carry no new decision evidence,
// and collapsing them bounds how long a prediction armed by the first
// report can stand.
func (p *Prognos) OnReport(mr cellular.MeasurementReport) {
	k := keyFor(mr)
	// Periodic re-reports of a standing event are collapsed, but the first
	// repeat is recorded as a distinct "k+" key: some decision rules fire
	// on the second report of a condition (e.g. an SCG release needs two
	// NR-A2 reports), so repetition itself is evidence.
	if n := len(p.phaseKeys); n > 0 {
		last := p.phaseKeys[n-1]
		if last == plusOf(k) {
			return
		}
		if last == k {
			k = plusOf(k)
		}
	}
	p.phaseKeys = append(p.phaseKeys, k)
	p.keyTimes = append(p.keyTimes, mr.Time)
	p.prunePhase(mr.Time)
	p.lastKeyAt = mr.Time
}

// phaseKeyMaxAge matches the network side's effective decision memory.
const phaseKeyMaxAge = 10 * time.Second

// prunePhase drops phase keys that are too old or beyond the depth cap.
func (p *Prognos) prunePhase(now time.Duration) {
	start := 0
	for start < len(p.phaseKeys) && now-p.keyTimes[start] > phaseKeyMaxAge {
		start++
	}
	if over := len(p.phaseKeys) - start - 16; over > 0 {
		start += over
	}
	if start > 0 {
		p.phaseKeys = append(p.phaseKeys[:0], p.phaseKeys[start:]...)
		p.keyTimes = append(p.keyTimes[:0], p.keyTimes[start:]...)
	}
}

// HOKeyPrefix marks the pseudo-key that seeds a phase with the previous
// handover's type. Past HOs are one of Prognos' three inputs (§7:
// "observed signal strength readings, UE-side measurement reports, and past
// HOs") — they make procedure chains like the forced SCG change after an
// anchor handover learnable.
const HOKeyPrefix = "HO:"

// OnHandover feeds one RRC-sniffed handover command: the current phase
// closes and is learned online, the active prediction is resolved for
// reliability feedback, and the next phase is seeded with the handover's
// pseudo-key.
func (p *Prognos) OnHandover(ho cellular.HandoverEvent) {
	if p.activeKey != "" {
		p.learner.Feedback(p.activeKey, ho.Type == p.activeType)
		p.activeKey = ""
	}
	p.learner.ObservePhase(p.phaseKeys, ho.Type)
	p.phaseKeys = p.phaseKeys[:0]
	p.keyTimes = p.keyTimes[:0]
	p.phaseKeys = append(p.phaseKeys, hoKey(ho.Type))
	p.keyTimes = append(p.keyTimes, ho.Time)
	p.lastKeyAt = ho.Time
}

// admit is the context sanity check of §7.2: predictions impossible in the
// current radio state are excluded from the candidate set, shrinking the
// action space.
func (p *Prognos) admit(ho cellular.HOType) bool {
	switch p.cfg.Arch {
	case cellular.ArchSA:
		return ho == cellular.HOMCGH
	case cellular.ArchLTE:
		return ho == cellular.HOLTEH
	}
	switch ho {
	case cellular.HOMCGH:
		return false
	case cellular.HOSCGA:
		return !p.nrAttached
	case cellular.HOSCGR, cellular.HOSCGM, cellular.HOSCGC, cellular.HOMNBH:
		return p.nrAttached
	case cellular.HOLTEH:
		return !p.nrAttached
	default:
		return true
	}
}

// Predict produces the prediction for the next prediction window. The
// candidate MR sequence is the observed phase so far plus (when the report
// predictor is enabled) the reports forecast to trigger within the window.
// Matches anchored at the newest *observed* key take priority — a
// completing report in hand means the HO command is imminent — with
// forecast-anchored matches as the early-warning fallback. An active
// prediction expires at a deadline; expiry penalises and suppresses the
// pattern until new observed evidence arrives.
func (p *Prognos) Predict() Prediction {
	p.prunePhase(p.now)
	seq := append(p.seqScratch[:0], p.phaseKeys...)
	nObserved := len(seq)
	var preds []PredictedReport
	if p.cfg.UseReportPredictor {
		preds = p.report.PredictInto(p.predScratch[:0])
		p.predScratch = preds
		for _, pr := range preds {
			key := p.predictedKey(pr)
			if len(seq) > 0 && seq[len(seq)-1] == key {
				continue // trigger already fired and was logged
			}
			seq = append(seq, key)
		}
	}
	p.seqScratch = seq
	if len(seq) == 0 {
		return Prediction{Type: cellular.HONone, Score: 1}
	}

	var bestPat *Pattern
	bestKey := ""
	bestSim := -1.0
	bestForecast := false
	tryAnchor := func(cut int) {
		if cut < 1 || cut > len(seq) {
			return
		}
		admit := p.admitObserved
		if cut > nObserved {
			admit = p.admitForecast
		}
		pat, key, simil, ok := p.learner.match(seq[:cut], admit)
		if ok && simil > bestSim {
			bestSim = simil
			bestPat = pat
			bestKey = key
			bestForecast = cut > nObserved
		}
	}
	// The observed anchor only stands while fresh — a completing report in
	// hand means the command lands within the preparation stage; after
	// that the evidence is stale. Forecast anchors always stand: they
	// describe the upcoming window by construction.
	const anchorFresh = 700 * time.Millisecond
	if nObserved >= 1 && p.now-p.lastKeyAt <= anchorFresh {
		tryAnchor(nObserved)
	}
	for cut := nObserved + 1; cut <= len(seq); cut++ {
		tryAnchor(cut)
	}
	if bestPat == nil {
		// An observed-anchored run ending with no handover is a false
		// alarm; a lapsed forecast run is neutral.
		if p.activeKey != "" {
			if !p.activeForecast {
				p.learner.Feedback(p.activeKey, false)
			}
			p.activeKey = ""
		}
		return Prediction{Type: cellular.HONone, Score: 1}
	}

	lead := time.Duration(0)
	if len(preds) > 0 {
		lead = time.Duration(preds[0].LeadSteps) * p.stepDur
	}
	// A different pattern taking over without an intervening handover
	// resolves an observed-anchored prediction as a false alarm.
	if p.activeKey != "" && p.activeKey != bestKey && !p.activeForecast {
		p.learner.Feedback(p.activeKey, false)
	}
	p.activeKey = bestKey
	p.activeType = bestPat.HO
	p.activeForecast = bestForecast
	cp := *bestPat
	cp.Seq = append([]string(nil), bestPat.Seq...)
	return Prediction{
		Type:       bestPat.HO,
		Score:      p.scores.Score(bestPat.HO),
		Similarity: bestSim,
		Lead:       lead,
		PatternKey: bestKey,
		Pattern:    cp,
	}
}

// predictedKey derives the learner key of a forecast report, applying the
// same NR-A3 gNB enrichment as keyFor using the latest observed PCIs, and
// the repeat marker for forecast re-reports.
func (p *Prognos) predictedKey(pr PredictedReport) string {
	v, ok := internedVariant(pr.Tech, pr.Event)
	if !ok {
		v = keyVariant{base: pr.Key()}
		v.s, v.d = v.base+"s", v.base+"d"
	}
	k := v.base
	if pr.Tech == cellular.TechNR && pr.Event == cellular.EventA3 {
		s, n := p.lastSample.ServingNR, p.lastSample.NeighborNR
		if s.Valid && n.Valid {
			if pciSameGNB(s.PCI, n.PCI) {
				k = v.s
			} else {
				k = v.d
			}
		}
	}
	if pr.Repeat {
		k = plusOf(k)
	}
	return k
}

// PhaseKeys returns the observed MR keys of the open phase (for tests and
// diagnostics).
func (p *Prognos) PhaseKeys() []string {
	return append([]string(nil), p.phaseKeys...)
}
