package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// SnapshotVersion is the checkpoint format version this build writes and
// accepts. Bump it on any incompatible change to Snapshot's encoding; old
// files are then skipped at load time instead of being misinterpreted.
const SnapshotVersion = 1

// LearnerState is the serialized decision learner: the full pattern
// database (sorted by pattern key) plus the phase/churn counters.
type LearnerState struct {
	Patterns []Pattern `json:"patterns"`
	Phase    int       `json:"phase"`
	Learned  int       `json:"learned"`
	Evicted  int       `json:"evicted"`
}

// TrackState is one serialized signal track of the report predictor:
// smoother and forecaster window contents, oldest-first.
type TrackState struct {
	Valid   bool      `json:"valid,omitempty"`
	Last    float64   `json:"last,omitempty"`
	Smooth  []float64 `json:"smooth,omitempty"`
	History []float64 `json:"history,omitempty"`
}

// ReportState is the serialized report predictor: the four signal tracks
// plus the per-event condition counters (indexed like the event configs).
type ReportState struct {
	ServLTE    TrackState `json:"serv_lte"`
	NeighLTE   TrackState `json:"neigh_lte"`
	ServNR     TrackState `json:"serv_nr"`
	NeighNR    TrackState `json:"neigh_nr"`
	Held       []int      `json:"held,omitempty"`
	EdgeActive []int      `json:"edge_active,omitempty"`
}

// Snapshot is the crash-safe serialization of a Prognos instance's learned
// state: the decision learner's pattern database and the report predictor's
// smoothing state (§7.2's two online-learned stages). Everything else in
// Prognos (the open phase, the active prediction) is short-lived context
// that a restarted daemon rebuilds within one phase.
type Snapshot struct {
	Learner LearnerState `json:"learner"`
	Report  ReportState  `json:"report"`
}

// Snapshot exports the instance's learned state. The encoding is canonical:
// exporting, restoring into a fresh instance, and exporting again yields
// byte-identical JSON.
func (p *Prognos) Snapshot() Snapshot {
	return Snapshot{Learner: p.learner.State(), Report: p.report.State()}
}

// Restore replaces the instance's learned state with a snapshot previously
// exported with Snapshot.
func (p *Prognos) Restore(s Snapshot) {
	p.learner.SetState(s.Learner)
	p.report.SetState(s.Report)
}

// CheckpointFile is the on-disk envelope of one snapshot, keyed by the
// (carrier, arch) deployment context the state was learned under.
type CheckpointFile struct {
	Version  int      `json:"version"`
	Carrier  string   `json:"carrier"`
	Arch     string   `json:"arch"`
	Snapshot Snapshot `json:"snapshot"`
}

// EncodeCheckpoint renders the canonical checkpoint bytes. The output is
// deterministic for a given state (sorted patterns, fixed field order), so
// byte comparison is a valid state-equality check.
func EncodeCheckpoint(f CheckpointFile) ([]byte, error) {
	b, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return nil, fmt.Errorf("core: encode checkpoint: %w", err)
	}
	return append(b, '\n'), nil
}

// CheckpointFileName returns the file name a (carrier, arch) checkpoint is
// stored under inside a checkpoint directory. Carrier names are sanitized
// to keep the name portable.
func CheckpointFileName(carrier, arch string) string {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
				b.WriteRune(r)
			default:
				b.WriteByte('_')
			}
		}
		return b.String()
	}
	return fmt.Sprintf("prognos-%s-%s.ckpt.json", clean(carrier), clean(arch))
}

// WriteCheckpoint atomically writes a checkpoint into dir: the canonical
// bytes land in a temporary file first and are renamed into place, so a
// crash mid-write can never leave a torn checkpoint behind — readers see
// either the previous complete file or the new one. It returns the number
// of bytes written.
func WriteCheckpoint(dir string, f CheckpointFile) (int, error) {
	f.Version = SnapshotVersion
	b, err := EncodeCheckpoint(f)
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	final := filepath.Join(dir, CheckpointFileName(f.Carrier, f.Arch))
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("core: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return 0, fmt.Errorf("core: publish checkpoint: %w", err)
	}
	return len(b), nil
}

// ErrCheckpointVersion marks a checkpoint written by an incompatible format
// version; callers skip such files rather than misreading them.
var ErrCheckpointVersion = errors.New("unsupported checkpoint version")

// ReadCheckpoint parses one checkpoint file and validates its version.
func ReadCheckpoint(path string) (CheckpointFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return CheckpointFile{}, fmt.Errorf("core: read checkpoint: %w", err)
	}
	var f CheckpointFile
	if err := json.Unmarshal(b, &f); err != nil {
		return CheckpointFile{}, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	if f.Version != SnapshotVersion {
		return CheckpointFile{}, fmt.Errorf("core: checkpoint %s version %d: %w", path, f.Version, ErrCheckpointVersion)
	}
	return f, nil
}

// LoadCheckpointDir reads every *.ckpt.json in dir, skipping files that are
// unparseable or carry an incompatible version (a restart must come up even
// when one checkpoint is from another build). A missing directory is not an
// error — it simply yields no checkpoints.
func LoadCheckpointDir(dir string) ([]CheckpointFile, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	var out []CheckpointFile
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt.json") {
			continue
		}
		f, err := ReadCheckpoint(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, f)
	}
	return out, nil
}
