package core

import "repro/internal/cellular"

// The prediction hot path derives a learner key for every observed and
// forecast measurement report, every sample tick. The key alphabet is tiny
// and fixed — one base key per (tech, event) pair, plus the "s"/"d" NR-A3
// gNB hints and the "+" repeat marker — so all variants are interned once at
// init and the per-tick derivations become allocation-free table lookups.

// keyVariant holds the interned strings for one (tech, event) base key.
type keyVariant struct {
	base string // e.g. "A2", "NR-A3"
	s    string // same-gNB hint, e.g. "NR-A3s"
	d    string // different-gNB hint, e.g. "NR-A3d"
}

var (
	// internedKeys is indexed [tech][event].
	internedKeys [2][cellular.EventPeriodic + 1]keyVariant
	// plusVariants maps every interned key to its interned "+"-suffixed
	// repeat variant (e.g. "NR-A3s" → "NR-A3s+").
	plusVariants map[string]string
	// hoKeys interns the HO pseudo-keys that seed a phase ("HO:LTEH", ...).
	hoKeys map[cellular.HOType]string
)

func init() {
	plusVariants = make(map[string]string)
	for _, tech := range []cellular.Tech{cellular.TechLTE, cellular.TechNR} {
		for ev := cellular.EventA1; ev <= cellular.EventPeriodic; ev++ {
			mr := cellular.MeasurementReport{Event: ev, Tech: tech}
			base := mr.Key()
			v := keyVariant{base: base, s: base + "s", d: base + "d"}
			internedKeys[tech][ev] = v
			for _, k := range []string{v.base, v.s, v.d} {
				plusVariants[k] = k + "+"
			}
		}
	}
	hoKeys = make(map[cellular.HOType]string)
	for _, h := range append(cellular.AllHOTypes(), cellular.HONone) {
		hoKeys[h] = HOKeyPrefix + h.String()
	}
}

// internedVariant returns the interned variants for a (tech, event) pair,
// or false for values outside the known alphabet (callers then fall back to
// allocating formatting, preserving behaviour for exotic inputs).
func internedVariant(tech cellular.Tech, ev cellular.EventType) (keyVariant, bool) {
	if tech < 0 || int(tech) >= len(internedKeys) || ev < 0 || int(ev) >= len(internedKeys[0]) {
		return keyVariant{}, false
	}
	return internedKeys[tech][ev], true
}

// plusOf returns the interned "+"-suffixed repeat variant of key.
func plusOf(key string) string {
	if v, ok := plusVariants[key]; ok {
		return v
	}
	return key + "+"
}

// hoKey returns the interned phase-seeding pseudo-key for a handover type.
func hoKey(h cellular.HOType) string {
	if k, ok := hoKeys[h]; ok {
		return k
	}
	return HOKeyPrefix + h.String()
}
