package core

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

func TestLearnerSupportAndSuffixMining(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{})
	for i := 0; i < 5; i++ {
		l.ObservePhase([]string{"A2", "A3"}, cellular.HOLTEH)
	}
	found := map[string]int{}
	for _, p := range l.Patterns() {
		found[p.Key()] = p.Support
	}
	if found["A3->LTEH"] != 5 {
		t.Errorf("suffix pattern support = %d", found["A3->LTEH"])
	}
	if found["A2,A3->LTEH"] != 5 {
		t.Errorf("full pattern support = %d", found["A2,A3->LTEH"])
	}
	learned, evicted, phases, live := l.Stats()
	if learned != 2 || evicted != 0 || phases != 5 || live != 2 {
		t.Errorf("stats = %d/%d/%d/%d", learned, evicted, phases, live)
	}
}

func TestLearnerIgnoresEmptyAndNone(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{})
	l.ObservePhase(nil, cellular.HOLTEH)
	l.ObservePhase([]string{"A3"}, cellular.HONone)
	if _, _, phases, live := l.Stats(); phases != 0 || live != 0 {
		t.Error("degenerate phases must be ignored")
	}
}

func TestLearnerFreshnessEviction(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{FreshnessPhases: 3})
	l.ObservePhase([]string{"A2"}, cellular.HOLTEH)
	for i := 0; i < 5; i++ {
		l.ObservePhase([]string{"NR-A3s"}, cellular.HOSCGM)
	}
	for _, p := range l.Patterns() {
		if p.Key() == "A2->LTEH" {
			t.Fatal("stale pattern survived the freshness threshold")
		}
	}
	_, evicted, _, _ := l.Stats()
	if evicted == 0 {
		t.Error("eviction count not incremented")
	}
}

func TestLearnerCapEviction(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{MaxPatterns: 4, MaxSuffixLen: 1, FreshnessPhases: 10000})
	keys := []string{"A1", "A2", "A3", "A4", "A5", "B1"}
	for _, k := range keys {
		l.ObservePhase([]string{k}, cellular.HOLTEH)
	}
	if _, _, _, live := l.Stats(); live > 4 {
		t.Errorf("store grew to %d, cap is 4", live)
	}
}

func TestMatchAnchoredAtLastKey(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{})
	for i := 0; i < 3; i++ {
		l.ObservePhase([]string{"A2", "A3"}, cellular.HOLTEH)
	}
	if _, _, ok := l.Match([]string{"A2", "A3"}, nil); !ok {
		t.Error("exact sequence must match")
	}
	if _, _, ok := l.Match([]string{"A2", "B1", "A3"}, nil); !ok {
		t.Error("interleaved subsequence must match")
	}
	if _, _, ok := l.Match([]string{"A3", "A2"}, nil); ok {
		t.Error("match must anchor at the newest key")
	}
	if _, _, ok := l.Match(nil, nil); ok {
		t.Error("empty sequence matched")
	}
	// Admit predicate filters.
	if _, _, ok := l.Match([]string{"A2", "A3"}, func(p Pattern) bool { return p.HO != cellular.HOLTEH }); ok {
		t.Error("admit predicate ignored")
	}
}

func TestReliabilityGating(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{})
	l.ObservePhase([]string{"A3"}, cellular.HOLTEH)
	pat, _, ok := l.Match([]string{"A3"}, nil)
	if !ok {
		t.Fatal("no match")
	}
	for i := 0; i < 12; i++ {
		l.Feedback(pat.Key(), false)
	}
	if _, _, ok := l.Match([]string{"A3"}, nil); ok {
		t.Error("a persistently wrong pattern must be gated out")
	}
	// Feedback on unknown keys is a no-op.
	l.Feedback("nope->LTEH", true)
}

func TestReliabilityLaplace(t *testing.T) {
	p := Pattern{}
	if p.Reliability() != 0.5 {
		t.Errorf("prior reliability = %v, want 0.5", p.Reliability())
	}
	p.Hits = 8
	p.Misses = 0
	if p.Reliability() <= 0.8 {
		t.Errorf("hit-heavy reliability = %v", p.Reliability())
	}
}

func TestBootstrap(t *testing.T) {
	l := NewDecisionLearner(LearnerConfig{})
	l.Bootstrap([]Pattern{{Seq: []string{"NR-B1"}, HO: cellular.HOSCGA, Support: 10}})
	pat, _, ok := l.Match([]string{"NR-B1"}, nil)
	if !ok || pat.HO != cellular.HOSCGA {
		t.Fatal("bootstrapped pattern not matchable")
	}
}

func TestScoreTable(t *testing.T) {
	s := DefaultScores()
	if s.Score(cellular.HONone) != 1 {
		t.Error("no-HO score must be 1")
	}
	if s.Score(cellular.HOSCGR) >= 1 {
		t.Error("SCG release must predict a throughput drop")
	}
	if s.Score(cellular.HOSCGA) <= 1 {
		t.Error("SCG addition must predict a throughput gain")
	}
	if s.Score(cellular.HOType(99)) != 1 {
		t.Error("unknown types default to 1")
	}
}

func TestPrognosRequiresConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("missing event configs accepted")
	}
}

func TestKeyEnrichment(t *testing.T) {
	mr := cellular.MeasurementReport{Event: cellular.EventA3, Tech: cellular.TechNR, ServingPCI: 600, NeighborPCI: 601}
	if keyFor(mr) != "NR-A3s" {
		t.Errorf("adjacent PCIs = %q, want same-gNB", keyFor(mr))
	}
	mr.NeighborPCI = 640
	if keyFor(mr) != "NR-A3d" {
		t.Errorf("distant PCIs = %q", keyFor(mr))
	}
	mr.Tech = cellular.TechLTE
	if keyFor(mr) != "A3" {
		t.Errorf("LTE A3 = %q", keyFor(mr))
	}
}

func TestWindows(t *testing.T) {
	mk := func(at time.Duration, ty cellular.HOType) TickPrediction {
		return TickPrediction{Time: at, Type: ty}
	}
	ticks := []TickPrediction{
		mk(0, cellular.HONone), mk(500*time.Millisecond, cellular.HOSCGM),
		mk(time.Second, cellular.HOSCGM), mk(1500*time.Millisecond, cellular.HONone),
		mk(2*time.Second, cellular.HONone),
	}
	hos := []cellular.HandoverEvent{{Time: 1200 * time.Millisecond, Type: cellular.HOSCGM}}
	wins := Windows(ticks, hos, time.Second)
	if len(wins) != 3 {
		t.Fatalf("got %d windows", len(wins))
	}
	if wins[0].Truth != cellular.HONone || wins[0].Pred != cellular.HONone {
		t.Errorf("window 0 = %+v", wins[0])
	}
	if wins[1].Truth != cellular.HOSCGM {
		t.Errorf("window 1 truth = %v", wins[1].Truth)
	}
	if wins[1].Pred != cellular.HOSCGM {
		t.Errorf("window 1 pred = %v (prediction standing at 1s)", wins[1].Pred)
	}
	if Windows(nil, hos, time.Second) != nil {
		t.Error("empty ticks")
	}
}

func TestEvaluateEvents(t *testing.T) {
	var ticks []TickPrediction
	// One correct run before a HO, one spurious run, rest silent.
	for i := 0; i < 200; i++ {
		ty := cellular.HONone
		at := time.Duration(i) * 50 * time.Millisecond
		if at >= 2*time.Second && at < 3*time.Second {
			ty = cellular.HOSCGM // correct: HO at 3.2 s
		}
		if at >= 6*time.Second && at < 7*time.Second {
			ty = cellular.HOSCGR // spurious
		}
		ticks = append(ticks, TickPrediction{Time: at, Type: ty})
	}
	hos := []cellular.HandoverEvent{
		{Time: 3200 * time.Millisecond, Type: cellular.HOSCGM},
		{Time: 9 * time.Second, Type: cellular.HOSCGC}, // missed
	}
	ev := EvaluateEvents(ticks, hos, time.Second)
	if ev.TP != 1 || ev.FP != 1 || ev.FN != 1 {
		t.Fatalf("TP/FP/FN = %d/%d/%d", ev.TP, ev.FP, ev.FN)
	}
	if ev.Precision() != 0.5 || ev.Recall() != 0.5 || ev.F1() != 0.5 {
		t.Errorf("metrics = %v/%v/%v", ev.Precision(), ev.Recall(), ev.F1())
	}
	if ev.Accuracy() <= 0.5 {
		t.Errorf("accuracy = %v", ev.Accuracy())
	}
}

func TestLeadTimeMeasurement(t *testing.T) {
	var ticks []TickPrediction
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		ty := cellular.HONone
		if at >= 1500*time.Millisecond && at < 2500*time.Millisecond {
			ty = cellular.HOSCGM
		}
		ticks = append(ticks, TickPrediction{Time: at, Type: ty})
	}
	hos := []cellular.HandoverEvent{{Time: 2450 * time.Millisecond, Type: cellular.HOSCGM}}
	leads := LeadTime(ticks, hos)
	if len(leads) != 1 {
		t.Fatalf("leads = %v", leads)
	}
	if leads[0] < 900*time.Millisecond || leads[0] > 1000*time.Millisecond {
		t.Errorf("lead = %v, want ≈950ms", leads[0])
	}
	// An unpredicted HO yields no lead entry.
	hos2 := []cellular.HandoverEvent{{Time: 4 * time.Second, Type: cellular.HOSCGC}}
	if got := LeadTime(ticks, hos2); len(got) != 0 {
		t.Errorf("unpredicted HO produced leads %v", got)
	}
}

func TestReportPredictorTTTCases(t *testing.T) {
	cfg := cellular.EventConfig{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: -100, TTT: 200 * time.Millisecond}
	rp := NewReportPredictor([]cellular.EventConfig{cfg}, 4, 20, 20, 50*time.Millisecond)
	mk := func(rsrp float64, at time.Duration) trace.Sample {
		return trace.Sample{Time: at, ServingLTE: trace.CellObs{Valid: true, RSRP: rsrp, PCI: 1}}
	}
	// Healthy signal: nothing forecast.
	for i := 0; i < 30; i++ {
		rp.Observe(mk(-80, time.Duration(i)*50*time.Millisecond))
	}
	if preds := rp.Predict(); len(preds) != 0 {
		t.Fatalf("healthy signal forecast %v", preds)
	}
	// Condition just entered: TTT running → case-2 forecast.
	rp.Observe(mk(-140, 2*time.Second))
	preds := rp.Predict()
	foundA2 := false
	for _, p := range preds {
		if p.Event == cellular.EventA2 && !p.Repeat {
			foundA2 = true
			if p.LeadSteps < 1 || p.LeadSteps > 4 {
				t.Errorf("case-2 lead %d steps", p.LeadSteps)
			}
		}
	}
	if !foundA2 {
		// The smoothed value may need another deep sample to cross.
		rp.Observe(mk(-140, 2050*time.Millisecond))
		for _, p := range rp.Predict() {
			if p.Event == cellular.EventA2 {
				foundA2 = true
			}
		}
	}
	if !foundA2 {
		t.Error("entering condition did not yield a forecast")
	}
}
