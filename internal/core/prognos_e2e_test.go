package core_test

import (
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ran"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/throughput"
	"repro/internal/topology"
	"repro/internal/trace"
)

// walkLog simulates a D2-style downtown walking loop for OpX NSA.
func walkLog(t *testing.T, seed int64, laps int) *trace.Log {
	t.Helper()
	log, err := sim.Run(sim.Config{
		Carrier:      topology.OpX(),
		Arch:         cellular.ArchNSA,
		RouteKind:    geo.RouteCityLoop,
		RouteLengthM: 2500,
		Laps:         laps,
		SpeedMPS:     1.4,
		BearerMode:   throughput.ModeSCG,
		Seed:         seed,
		TopoOpts:     topology.Options{CityDensity: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func newPrognos(t *testing.T, useReport bool) *core.Prognos {
	t.Helper()
	p, err := core.New(core.Config{
		EventConfigs:       ran.EventConfigsFor("OpX", cellular.ArchNSA),
		Arch:               cellular.ArchNSA,
		UseReportPredictor: useReport,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func evalF1(t *testing.T, log *trace.Log, p *core.Prognos) (f1, precision, recall, acc float64) {
	t.Helper()
	ticks := core.Replay(p, log)
	ev := core.EvaluateEvents(ticks, log.Handovers, time.Second)
	return ev.F1(), ev.Precision(), ev.Recall(), ev.Accuracy()
}

func TestPrognosEndToEndF1(t *testing.T) {
	log := walkLog(t, 3, 8)
	if len(log.Handovers) < 30 {
		t.Fatalf("walk produced only %d handovers; topology too sparse for the test", len(log.Handovers))
	}
	p := newPrognos(t, true)
	f1, prec, rec, acc := evalF1(t, log, p)
	t.Logf("Prognos on %d HOs / %v: F1=%.3f P=%.3f R=%.3f Acc=%.3f",
		len(log.Handovers), log.Duration().Round(time.Second), f1, prec, rec, acc)
	if f1 < 0.55 {
		t.Errorf("Prognos F1 = %.3f; want >= 0.55 (paper reports 0.92-0.94 on real traces; the simulated walking loops carry heavier mmWave churn)", f1)
	}
}

func TestPrognosLearnsPatterns(t *testing.T) {
	log := walkLog(t, 5, 4)
	p := newPrognos(t, true)
	core.Replay(p, log)
	learned, evicted, phases, live := p.Learner().Stats()
	if live == 0 || learned == 0 {
		t.Fatalf("no patterns learned (learned=%d evicted=%d phases=%d live=%d)", learned, evicted, phases, live)
	}
	if phases == 0 {
		t.Fatal("no phases observed")
	}
	// Every live pattern must target a real HO type.
	for _, pat := range p.Learner().Patterns() {
		if pat.HO == cellular.HONone {
			t.Errorf("pattern %v targets HONone", pat)
		}
		if pat.Support < 1 {
			t.Errorf("pattern %v has support %d", pat, pat.Support)
		}
	}
}

func TestReportPredictorImprovesLeadTime(t *testing.T) {
	log := walkLog(t, 7, 6)
	with := core.Replay(newPrognos(t, true), log)
	without := core.Replay(newPrognos(t, false), log)
	lw := durations(core.LeadTime(with, log.Handovers))
	lo := durations(core.LeadTime(without, log.Handovers))
	if len(lw) == 0 || len(lo) == 0 {
		t.Fatalf("no lead times measured (with=%d without=%d)", len(lw), len(lo))
	}
	mw, mo := stats.Median(lw), stats.Median(lo)
	t.Logf("median lead: with report predictor %.0f ms, without %.0f ms (n=%d/%d)",
		mw, mo, len(lw), len(lo))
	if mw <= mo {
		t.Errorf("report predictor should extend lead time: with=%.0f ms without=%.0f ms", mw, mo)
	}
}

func TestBootstrapAcceleratesStartup(t *testing.T) {
	// Learn patterns on one trace, bootstrap a fresh instance, and compare
	// early F1 on a second trace (Fig. 15's mechanism).
	train := walkLog(t, 11, 4)
	teacher := newPrognos(t, true)
	core.Replay(teacher, train)
	patterns := teacher.Learner().Patterns()
	if len(patterns) == 0 {
		t.Fatal("teacher learned nothing")
	}

	// Per the paper, bootstrap with the most frequent pattern per HO type
	// (not the whole store, which would import another area's noise).
	best := map[cellular.HOType]core.Pattern{}
	for _, p := range patterns {
		if b, ok := best[p.HO]; !ok || p.Support > b.Support {
			best[p.HO] = p
		}
	}
	var frequent []core.Pattern
	for _, p := range best {
		frequent = append(frequent, p)
	}

	test := walkLog(t, 13, 2)
	cold := newPrognos(t, true)
	warm := newPrognos(t, true)
	warm.Bootstrap(frequent)

	early := func(p *core.Prognos) float64 {
		ticks := core.Replay(p, test)
		// Look only at the first 5 minutes.
		cut := ticks[:0]
		for _, tk := range ticks {
			if tk.Time < 5*time.Minute {
				cut = append(cut, tk)
			}
		}
		var hos []cellular.HandoverEvent
		for _, h := range test.Handovers {
			if h.Time < 5*time.Minute {
				hos = append(hos, h)
			}
		}
		return core.EvaluateEvents(cut, hos, time.Second).F1()
	}
	fCold, fWarm := early(cold), early(warm)
	t.Logf("early F1: cold=%.3f warm=%.3f", fCold, fWarm)
	if fWarm < fCold-0.05 {
		t.Errorf("bootstrapping must not hurt early F1: cold=%.3f warm=%.3f", fCold, fWarm)
	}
}

func durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d.Milliseconds())
	}
	return out
}
