package core

import (
	"time"

	"repro/internal/cellular"
	"repro/internal/radio"
	"repro/internal/trace"
)

// signalTrack follows one RRS stream (e.g. "serving LTE RSRP"): a
// triangular-kernel smoother to strip fast fading followed by a
// linear-regression forecaster over the history window (§7.2's report
// predictor internals).
type signalTrack struct {
	smoother *radio.TriangularSmoother
	forecast *radio.LinearForecaster
	valid    bool
	last     float64
}

func newSignalTrack(smoothWin, histWin int) *signalTrack {
	sm, err := radio.NewTriangularSmoother(smoothWin)
	if err != nil {
		panic("core: " + err.Error())
	}
	fc, err := radio.NewLinearForecaster(histWin)
	if err != nil {
		panic("core: " + err.Error())
	}
	return &signalTrack{smoother: sm, forecast: fc}
}

// push feeds one sample (valid=false resets the track, e.g. after the UE
// detaches from the measured cell).
func (t *signalTrack) push(v float64, valid bool) {
	if !valid {
		t.valid = false
		t.smoother.Reset()
		t.forecast.Reset()
		return
	}
	t.valid = true
	sm := t.smoother.Push(v)
	t.forecast.Push(sm)
	t.last = sm
}

// at extrapolates k steps ahead (k=0 returns the smoothed current value).
func (t *signalTrack) at(k int) (float64, bool) {
	if !t.valid {
		return 0, false
	}
	if k <= 0 {
		return t.last, true
	}
	if !t.forecast.Ready() {
		return t.last, true
	}
	return t.forecast.Forecast(k), true
}

// PredictedReport is a measurement report the report predictor expects the
// UE to send within the prediction window.
type PredictedReport struct {
	// Event is the 3GPP measurement event expected to trigger (A2, A3,
	// NR-B1, ...), and Tech the RAT it concerns.
	Event cellular.EventType
	Tech  cellular.Tech
	// LeadSteps is how many sample steps ahead the trigger completes.
	LeadSteps int
	// Repeat marks a forecast periodic re-report of a standing condition.
	Repeat bool
}

// Key returns the MR-key notation of the predicted report ("NR-A3" etc.).
func (p PredictedReport) Key() string {
	mr := cellular.MeasurementReport{Event: p.Event, Tech: p.Tech}
	return mr.Key()
}

// ReportPredictor forecasts which measurement events will trigger within
// the next prediction window, from the event configurations sniffed off the
// RRC layer and the predicted RRS of serving and neighbour cells. It
// emulates the UE's measurement engine on the smoothed signals: conditions
// whose time-to-trigger is already running are forecast to complete, while
// conditions that have held past TTT are assumed already reported.
type ReportPredictor struct {
	configs []cellular.EventConfig

	servLTE  *signalTrack
	neighLTE *signalTrack
	servNR   *signalTrack
	neighNR  *signalTrack

	// heldSteps tracks, per config, how many consecutive samples the
	// entering condition has held on the smoothed measurements.
	heldSteps []int
	// edgeActive tracks, per config, how long a rising-edge forecast has
	// been continuously emitted. A forecast claiming an imminent trigger
	// that fails to materialise within twice its own horizon is silenced
	// until the condition forecast clears — otherwise a hovering trend
	// keeps predicting a crossing that never comes.
	edgeActive []int

	// predictionSteps is the look-ahead horizon in samples.
	predictionSteps int
	stepDur         time.Duration
}

// forecastMarginDB makes rising-edge forecasts conservative: the predicted
// signals must clear the trigger condition by this margin. Linear fits over
// a short history pick up shadowing wiggles; without a margin they forecast
// phantom crossings continuously at pedestrian speeds.
const forecastMarginDB = 1.5

// edgeDebounceTicks requires a rising-edge forecast to persist this many
// consecutive prediction calls before it is emitted.
const edgeDebounceTicks = 6

// minClosingRateDBPerStep requires the signal geometry to approach the
// trigger at a meaningful rate (≈0.16 dB/s at 20 Hz sampling — walking
// through a 50 m-correlated shadow field moves signals by well under
// 1 dB/s) before a rising edge is forecast; hovering trends otherwise
// produce phantom crossings from fit noise.
const minClosingRateDBPerStep = 0.008

// approachSignificant reports whether the fitted slopes actually drive the
// event's condition toward triggering.
func approachSignificant(cfg cellular.EventConfig, servSlope, neighSlope float64) bool {
	switch cfg.Type {
	case cellular.EventA1:
		return servSlope >= minClosingRateDBPerStep
	case cellular.EventA2:
		return -servSlope >= minClosingRateDBPerStep
	case cellular.EventA3:
		return neighSlope-servSlope >= minClosingRateDBPerStep
	case cellular.EventA4, cellular.EventB1:
		return neighSlope >= minClosingRateDBPerStep
	case cellular.EventA5:
		return -servSlope >= minClosingRateDBPerStep/2 || neighSlope >= minClosingRateDBPerStep/2
	default:
		return true
	}
}

// NewReportPredictor creates a report predictor. smoothWin/histWin are in
// samples (the paper uses 1 s windows at 20 Hz); predSteps is the
// prediction window length in samples.
func NewReportPredictor(configs []cellular.EventConfig, smoothWin, histWin, predSteps int, stepDur time.Duration) *ReportPredictor {
	return &ReportPredictor{
		configs:         configs,
		servLTE:         newSignalTrack(smoothWin, histWin),
		neighLTE:        newSignalTrack(smoothWin, histWin),
		servNR:          newSignalTrack(smoothWin, histWin),
		neighNR:         newSignalTrack(smoothWin, histWin),
		heldSteps:       make([]int, len(configs)),
		edgeActive:      make([]int, len(configs)),
		predictionSteps: predSteps,
		stepDur:         stepDur,
	}
}

// SetConfigs replaces the sniffed event configurations (after an RRC
// reconfiguration).
func (r *ReportPredictor) SetConfigs(configs []cellular.EventConfig) {
	r.configs = configs
	r.heldSteps = make([]int, len(configs))
	r.edgeActive = make([]int, len(configs))
}

// Observe feeds one 20 Hz cross-layer sample and advances the per-event
// condition trackers.
func (r *ReportPredictor) Observe(s trace.Sample) {
	r.servLTE.push(s.ServingLTE.RSRP, s.ServingLTE.Valid)
	r.neighLTE.push(s.NeighborLTE.RSRP, s.NeighborLTE.Valid)
	r.servNR.push(s.ServingNR.RSRP, s.ServingNR.Valid)
	r.neighNR.push(s.NeighborNR.RSRP, s.NeighborNR.Valid)
	for i, cfg := range r.configs {
		if r.enteringNow(cfg) {
			r.heldSteps[i]++
		} else {
			r.heldSteps[i] = 0
		}
	}
}

// enteringNow evaluates an event's entering condition on the current
// smoothed measurements.
func (r *ReportPredictor) enteringNow(cfg cellular.EventConfig) bool {
	serv, neigh := r.tracksFor(cfg)
	sv, sok := serv.at(0)
	if !sok {
		return false
	}
	nv, nok := neigh.at(0)
	if !nok {
		if cfg.Type != cellular.EventA1 && cfg.Type != cellular.EventA2 {
			return false
		}
		nv = -200
	}
	return cfg.Entering(sv, nv)
}

// tracksFor returns the (serving, neighbour) tracks an event evaluates.
func (r *ReportPredictor) tracksFor(cfg cellular.EventConfig) (*signalTrack, *signalTrack) {
	if cfg.Type == cellular.EventB1 {
		// Inter-RAT: LTE serving vs NR candidate (logged as the NR
		// neighbour when no NR leg is attached).
		return r.servLTE, r.neighNR
	}
	if cfg.Tech == cellular.TechNR {
		return r.servNR, r.neighNR
	}
	return r.servLTE, r.neighLTE
}

// trackState exports one signal track for checkpointing.
func (t *signalTrack) state() TrackState {
	return TrackState{
		Valid:   t.valid,
		Last:    t.last,
		Smooth:  t.smoother.Samples(),
		History: t.forecast.History(),
	}
}

// setState restores a signal track exported with state.
func (t *signalTrack) setState(st TrackState) {
	t.valid = st.Valid
	t.last = st.Last
	t.smoother.SetSamples(st.Smooth)
	t.forecast.SetHistory(st.History)
}

// State exports the report predictor's smoothing and condition-tracking
// state for checkpointing: the four signal tracks plus the per-event TTT
// and edge-debounce counters. SetState is the inverse; counter slices are
// truncated or zero-extended to the current event-configuration count.
func (r *ReportPredictor) State() ReportState {
	return ReportState{
		ServLTE:    r.servLTE.state(),
		NeighLTE:   r.neighLTE.state(),
		ServNR:     r.servNR.state(),
		NeighNR:    r.neighNR.state(),
		Held:       append([]int(nil), r.heldSteps...),
		EdgeActive: append([]int(nil), r.edgeActive...),
	}
}

// SetState restores a report-predictor checkpoint exported with State.
func (r *ReportPredictor) SetState(st ReportState) {
	r.servLTE.setState(st.ServLTE)
	r.neighLTE.setState(st.NeighLTE)
	r.servNR.setState(st.ServNR)
	r.neighNR.setState(st.NeighNR)
	r.heldSteps = make([]int, len(r.configs))
	r.edgeActive = make([]int, len(r.configs))
	copy(r.heldSteps, st.Held)
	copy(r.edgeActive, st.EdgeActive)
}

// Predict forecasts the measurement reports expected within the prediction
// window, ordered by lead time. Three per-event cases, mirroring the UE's
// measurement engine on smoothed signals:
//
//  1. The condition has held past TTT — the report already fired and sits
//     in the observed phase; nothing new to forecast.
//  2. The condition is holding with TTT still running — the report is
//     forecast to complete in (TTT − held) steps.
//  3. The condition is off — a rising edge is searched in the forecast RRS,
//     and the report is predicted when the edge plus TTT fit the horizon.
func (r *ReportPredictor) Predict() []PredictedReport {
	return r.PredictInto(nil)
}

// PredictInto is Predict with caller-supplied storage: forecasts are
// appended to out (which may be a reused scratch slice with length 0) so the
// steady-state prediction path allocates nothing. The returned slice is only
// valid until the caller's next PredictInto call with the same backing array.
func (r *ReportPredictor) PredictInto(out []PredictedReport) []PredictedReport {
	tttSteps := func(ttt time.Duration) int {
		st := int(ttt / r.stepDur)
		if st < 1 {
			st = 1
		}
		return st
	}
	for i, cfg := range r.configs {
		serv, neigh := r.tracksFor(cfg)
		needNeigh := cfg.Type != cellular.EventA1 && cfg.Type != cellular.EventA2
		if !serv.valid && cfg.Type != cellular.EventB1 {
			continue
		}
		need := tttSteps(cfg.TTT)
		if r.enteringNow(cfg) {
			r.edgeActive[i] = 0
			if r.heldSteps[i] >= need {
				// Case 1: already reported. If the event re-reports
				// periodically and the condition persists, the repeat is
				// forecast at roughly the report interval.
				if cfg.ReportInterval > 0 {
					lead := int(cfg.ReportInterval/r.stepDur) / 2
					if lead < 1 {
						lead = 1
					}
					out = append(out, PredictedReport{Event: cfg.Type, Tech: cfg.Tech, LeadSteps: lead, Repeat: true})
				}
				continue
			}
			// Case 2: TTT in progress. A couple of samples must confirm the
			// condition before the completion is forecast.
			if r.heldSteps[i] >= 2 {
				out = append(out, PredictedReport{Event: cfg.Type, Tech: cfg.Tech, LeadSteps: need - r.heldSteps[i]})
			}
			continue
		}
		// Case 3: rising-edge search on the forecast signals; the trigger
		// may complete up to one TTT beyond the window. The approach rate
		// must be significant.
		if !approachSignificant(cfg, serv.forecast.Slope(), neigh.forecast.Slope()) {
			r.edgeActive[i] = 0
			continue
		}
		fired := false
		held := 0
		for k := 1; k <= r.predictionSteps+need; k++ {
			sv, sok := serv.at(k)
			nv, nok := neigh.at(k)
			if !sok {
				break
			}
			if needNeigh && !nok {
				held = 0
				continue
			}
			if !nok {
				nv = -200
			}
			if !cfg.Entering(sv+forecastMarginDB, nv-forecastMarginDB) {
				held = 0
				continue
			}
			held++
			if held >= need {
				fired = true
				r.edgeActive[i]++
				// Debounce flickering edges; silence edges that have failed
				// to materialise within twice the horizon.
				if r.edgeActive[i] >= edgeDebounceTicks && r.edgeActive[i] <= 2*r.predictionSteps {
					out = append(out, PredictedReport{Event: cfg.Type, Tech: cfg.Tech, LeadSteps: k})
				}
				break
			}
		}
		if !fired {
			r.edgeActive[i] = 0
		}
	}
	// Order by when the trigger completes.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].LeadSteps < out[j-1].LeadSteps; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
