package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// ckptConfigs is a minimal event-config set for checkpoint tests.
func ckptConfigs() []cellular.EventConfig {
	return []cellular.EventConfig{
		{Type: cellular.EventA2, Tech: cellular.TechLTE, Threshold1: -100, TTT: 320 * time.Millisecond},
		{Type: cellular.EventA3, Tech: cellular.TechLTE, Offset: 3, TTT: 320 * time.Millisecond},
	}
}

// warmPrognos builds an instance with learned patterns and live smoothing
// state, the shape a mid-drive checkpoint captures.
func warmPrognos(t *testing.T) *Prognos {
	t.Helper()
	p, err := New(Config{EventConfigs: ckptConfigs(), Arch: cellular.ArchLTE, UseReportPredictor: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		at := time.Duration(i) * 50 * time.Millisecond
		p.OnSample(trace.Sample{
			Time:       at,
			Arch:       cellular.ArchLTE,
			ServingLTE: trace.CellObs{PCI: 1, Valid: true, RSRP: -95 - float64(i)},
		})
		p.OnReport(cellular.MeasurementReport{Time: at, Event: cellular.EventA2, Tech: cellular.TechLTE, ServingPCI: 1})
		p.OnHandover(cellular.HandoverEvent{Time: at + 10*time.Millisecond, Type: cellular.HOLTEH})
	}
	return p
}

// TestSnapshotRestoreByteIdentical is the crash-recovery contract: a
// snapshot written before a kill, restored into a fresh instance after the
// restart, must re-export byte-identically — the learned pattern database
// survives process death exactly.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	p := warmPrognos(t)
	snap := p.Snapshot()
	if len(snap.Learner.Patterns) == 0 {
		t.Fatal("warm instance exported no patterns")
	}
	if len(snap.Report.ServLTE.Smooth) == 0 || !snap.Report.ServLTE.Valid {
		t.Fatalf("serving-LTE smoothing state not captured: %+v", snap.Report.ServLTE)
	}

	b1, err := EncodeCheckpoint(CheckpointFile{Version: SnapshotVersion, Carrier: "OpX", Arch: "LTE", Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Config{EventConfigs: ckptConfigs(), Arch: cellular.ArchLTE, UseReportPredictor: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Restore(snap)
	b2, err := EncodeCheckpoint(CheckpointFile{Version: SnapshotVersion, Carrier: "OpX", Arch: "LTE", Snapshot: fresh.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("restore is not byte-identical:\n--- before ---\n%s\n--- after ---\n%s", b1, b2)
	}

	// The restored learner predicts warm: its trigger pattern matches.
	fresh.OnSample(trace.Sample{Time: time.Second, Arch: cellular.ArchLTE, ServingLTE: trace.CellObs{PCI: 1, Valid: true, RSRP: -101}})
	fresh.OnReport(cellular.MeasurementReport{Time: time.Second, Event: cellular.EventA2, Tech: cellular.TechLTE, ServingPCI: 1})
	if pred := fresh.Predict(); pred.Type != cellular.HOLTEH {
		t.Errorf("restored instance predicted %v, want warm LTEH", pred.Type)
	}
}

func TestWriteReadCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := warmPrognos(t)
	n, err := WriteCheckpoint(dir, CheckpointFile{Carrier: "OpX", Arch: "LTE", Snapshot: p.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("checkpoint size %d", n)
	}
	path := filepath.Join(dir, CheckpointFileName("OpX", "LTE"))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(n) {
		t.Errorf("reported %d bytes, file is %d", n, fi.Size())
	}
	f, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Carrier != "OpX" || f.Arch != "LTE" || f.Version != SnapshotVersion {
		t.Errorf("envelope %+v", f)
	}
	if len(f.Snapshot.Learner.Patterns) != len(p.Snapshot().Learner.Patterns) {
		t.Errorf("pattern count drifted through the file")
	}

	// Overwrites are atomic renames: a second write must fully replace the
	// file, and no temp files may linger.
	if _, err := WriteCheckpoint(dir, CheckpointFile{Carrier: "OpX", Arch: "LTE", Snapshot: p.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir holds %d entries, want exactly the published file", len(entries))
	}
}

func TestLoadCheckpointDirSkipsBadFiles(t *testing.T) {
	dir := t.TempDir()
	p := warmPrognos(t)
	if _, err := WriteCheckpoint(dir, CheckpointFile{Carrier: "OpX", Arch: "LTE", Snapshot: p.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	// A corrupt file and a future-version file must both be skipped.
	if err := os.WriteFile(filepath.Join(dir, "torn.ckpt.json"), []byte("{half a reco"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "future.ckpt.json"), []byte(`{"version":99,"carrier":"OpY","arch":"NSA"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := LoadCheckpointDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Carrier != "OpX" {
		t.Fatalf("loaded %+v, want exactly the valid OpX checkpoint", files)
	}

	// A missing directory is an empty load, not an error.
	if files, err := LoadCheckpointDir(filepath.Join(dir, "nope")); err != nil || files != nil {
		t.Errorf("missing dir: files=%v err=%v", files, err)
	}
}

func TestReadCheckpointRejectsWrongVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v0.ckpt.json")
	if err := os.WriteFile(path, []byte(`{"version":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil {
		t.Fatal("version 0 accepted")
	}
}
