package core

import (
	"time"

	"repro/internal/cellular"
	"repro/internal/trace"
)

// Predictor is the interface shared by Prognos and the comparison
// approaches (§7.3): an online consumer of the cross-layer stream that can
// be asked, at any time, for the next prediction window's HO forecast.
type Predictor interface {
	// OnSample feeds one 20 Hz radio sample.
	OnSample(trace.Sample)
	// OnReport feeds one RRC measurement report.
	OnReport(cellular.MeasurementReport)
	// OnHandover feeds one executed handover command.
	OnHandover(cellular.HandoverEvent)
	// Predict forecasts the next prediction window.
	Predict() Prediction
}

// TickPrediction is one per-sample prediction during a replay.
type TickPrediction struct {
	// Time is the radio sample's timestamp (20 Hz grid).
	Time time.Duration
	// Type is the handover type predicted for the prediction window
	// standing at Time (HONone when no handover is expected).
	Type cellular.HOType
	// PatternKey identifies the matched pattern (diagnostics).
	PatternKey string
}

// Replay feeds a trace through a predictor in time order, recording the
// prediction at every sample tick. This is the paper's trace-driven
// emulation (§7.3).
func Replay(p Predictor, log *trace.Log) []TickPrediction {
	out := make([]TickPrediction, 0, len(log.Samples))
	ri, hi := 0, 0
	for _, s := range log.Samples {
		// Deliver control-plane events up to this sample's time.
		for ri < len(log.Reports) && log.Reports[ri].Time <= s.Time {
			p.OnReport(log.Reports[ri])
			ri++
		}
		for hi < len(log.Handovers) && log.Handovers[hi].Time <= s.Time {
			p.OnHandover(log.Handovers[hi])
			hi++
		}
		p.OnSample(s)
		pred := p.Predict()
		out = append(out, TickPrediction{Time: s.Time, Type: pred.Type, PatternKey: pred.PatternKey})
	}
	return out
}

// WindowLabel is the ground truth vs prediction for one evaluation window.
type WindowLabel struct {
	// Start is the window's opening instant.
	Start time.Duration
	// Truth is the first handover command inside the window (HONone when
	// the window is quiet); Pred is the prediction standing at Start.
	Truth cellular.HOType
	Pred  cellular.HOType
}

// Windows discretises per-tick predictions into fixed windows: the
// prediction for a window is the one standing at its first tick; the truth
// is the first handover command falling inside the window (HONone
// otherwise). This matches the paper's 1 s prediction-window evaluation
// with class-imbalance-aware metrics.
func Windows(ticks []TickPrediction, handovers []cellular.HandoverEvent, window time.Duration) []WindowLabel {
	if len(ticks) == 0 {
		return nil
	}
	var out []WindowLabel
	end := ticks[len(ticks)-1].Time
	hi := 0
	ti := 0
	for start := ticks[0].Time; start <= end; start += window {
		// Prediction standing at the window's first tick.
		for ti+1 < len(ticks) && ticks[ti+1].Time <= start {
			ti++
		}
		pred := ticks[ti].Type
		truth := cellular.HONone
		for hi < len(handovers) && handovers[hi].Time < start {
			hi++
		}
		if hi < len(handovers) && handovers[hi].Time < start+window {
			truth = handovers[hi].Type
		}
		out = append(out, WindowLabel{Start: start, Truth: truth, Pred: pred})
	}
	return out
}

// EventOutcome tallies event-level prediction outcomes: each handover is a
// positive event; each maximal run of identical positive predictions is one
// prediction event.
type EventOutcome struct {
	// TP, FP and FN are the event-level tallies behind the §7.3 metrics:
	// a handover predicted with the right type in time is a TP, a
	// prediction event no handover fulfils is an FP, and a handover no
	// prediction covered is an FN.
	TP, FP, FN int
	// WindowsTotal / WindowsCorrect give the window-level accuracy the
	// paper reports alongside F1 (dominated by true negatives).
	WindowsTotal   int
	WindowsCorrect int
}

// Precision returns TP/(TP+FP); 0 when undefined.
func (e EventOutcome) Precision() float64 {
	if e.TP+e.FP == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FP)
}

// Recall returns TP/(TP+FN); 0 when undefined.
func (e EventOutcome) Recall() float64 {
	if e.TP+e.FN == 0 {
		return 0
	}
	return float64(e.TP) / float64(e.TP+e.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (e EventOutcome) F1() float64 {
	p, r := e.Precision(), e.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the window-level accuracy.
func (e EventOutcome) Accuracy() float64 {
	if e.WindowsTotal == 0 {
		return 0
	}
	return float64(e.WindowsCorrect) / float64(e.WindowsTotal)
}

// predRun is one maximal run of identical positive predictions.
type predRun struct {
	typ        cellular.HOType
	patternKey string
	start, end time.Duration
	matched    bool
}

// EvaluateEvents performs event-level matching with the paper's 1 s
// prediction-window semantics: a handover counts as predicted (TP) when a
// prediction run of its type covers any instant in the window preceding it
// (run start ≤ HO time ≤ run end + window); prediction runs matching no
// handover are false positives; unpredicted handovers are false negatives.
// Window-level accuracy is computed over fixed windows as in Windows.
func EvaluateEvents(ticks []TickPrediction, handovers []cellular.HandoverEvent, window time.Duration) EventOutcome {
	var out EventOutcome
	// Build prediction runs.
	var runs []predRun
	for i := 0; i < len(ticks); {
		if ticks[i].Type == cellular.HONone {
			i++
			continue
		}
		j := i
		for j+1 < len(ticks) && ticks[j+1].Type == ticks[i].Type {
			j++
		}
		runs = append(runs, predRun{typ: ticks[i].Type, patternKey: ticks[i].PatternKey, start: ticks[i].Time, end: ticks[j].Time})
		i = j + 1
	}
	// Match each handover to a covering run of its type.
	ri := 0
	for _, ho := range handovers {
		if ho.Type == cellular.HONone {
			continue
		}
		for ri < len(runs) && runs[ri].end+window < ho.Time {
			ri++
		}
		matched := false
		for k := ri; k < len(runs) && runs[k].start <= ho.Time; k++ {
			if runs[k].typ == ho.Type && runs[k].end+window >= ho.Time {
				runs[k].matched = true
				matched = true
			}
		}
		if matched {
			out.TP++
		} else {
			out.FN++
		}
	}
	for _, r := range runs {
		if !r.matched {
			out.FP++
		}
	}
	// Window accuracy.
	wins := Windows(ticks, handovers, window)
	out.WindowsTotal = len(wins)
	for _, w := range wins {
		if w.Truth == w.Pred {
			out.WindowsCorrect++
		}
	}
	return out
}

// LeadTime computes, for each handover, how far in advance the predictor
// was continuously forecasting that handover's type (Fig. 18's lead-time
// metric). Handovers never predicted are skipped; the hit flag reports the
// fraction predicted via the returned count.
func LeadTime(ticks []TickPrediction, handovers []cellular.HandoverEvent) []time.Duration {
	var out []time.Duration
	ti := 0
	for _, ho := range handovers {
		// Advance to the last tick before the HO command.
		for ti < len(ticks) && ticks[ti].Time < ho.Time {
			ti++
		}
		last := ti - 1
		if last < 0 {
			continue
		}
		if ticks[last].Type != ho.Type {
			continue
		}
		first := last
		for first-1 >= 0 && ticks[first-1].Type == ho.Type {
			first--
		}
		out = append(out, ho.Time-ticks[first].Time)
	}
	return out
}
