// Package core implements Prognos, the paper's handover-prediction system
// (§7): a two-stage pipeline that first forecasts the measurement reports a
// UE will send (report predictor) and then matches them against online-
// learned, carrier-specific handover decision patterns (decision learner) to
// predict the next handover's type, timing, and throughput impact
// (ho_score). It works from UE-observable signals only — RRS readings,
// RRC-sniffed measurement reports and HO commands — with no carrier
// cooperation.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cellular"
)

// Pattern is one learned decision rule: a sequence of measurement-report
// keys that repeatedly precedes a specific handover type (§7.2's "unique
// sequence of MRs repeatedly triggering a specific type of HO").
type Pattern struct {
	// Seq is the MR-key sequence, oldest first (e.g. ["A2","A5"]).
	Seq []string
	// HO is the handover type the sequence triggers.
	HO cellular.HOType
	// Support counts how many phases matched this pattern.
	Support int
	// LastPhase is the phase counter value when the pattern was last seen,
	// for freshness-based eviction.
	LastPhase int
	// Hits / Misses accumulate online prediction feedback: a hit when a
	// prediction made from this pattern was followed by the predicted HO,
	// a miss when it expired unfulfilled or the wrong HO arrived. This is
	// the learner's self-applied sanity check (§7.1's "explainable system
	// ... apply sanity checks during prediction process").
	Hits, Misses int
}

// Reliability is the Laplace-smoothed empirical precision of predictions
// from this pattern ((hits+1)/(trials+2); 0.5 before any feedback, pulled
// toward the evidence as trials accumulate).
func (p Pattern) Reliability() float64 {
	return float64(p.Hits+1) / float64(p.Hits+p.Misses+2)
}

// Key returns the canonical identity of the pattern.
func (p Pattern) Key() string { return strings.Join(p.Seq, ",") + "->" + p.HO.String() }

// String renders the pattern in the paper's notation, e.g.
// "[A2,A5,LTEH] (support=12)".
func (p Pattern) String() string {
	return fmt.Sprintf("[%s,%s] (support=%d)", strings.Join(p.Seq, ","), p.HO, p.Support)
}

// LearnerConfig tunes the online decision learner.
type LearnerConfig struct {
	// FreshnessPhases evicts patterns not seen for this many phases
	// (default 200).
	FreshnessPhases int
	// MaxPatterns caps the store; the stalest/least-supported patterns are
	// evicted first (default 256).
	MaxPatterns int
	// MaxSuffixLen bounds the suffix patterns mined from each phase
	// (default 4). Mining suffixes of the phase's MR sequence is the
	// online adaptation of prefixSpan's projected-prefix growth: frequent
	// short trigger sequences accumulate support even when phases carry
	// extra interleaved reports.
	MaxSuffixLen int
}

func (c LearnerConfig) withDefaults() LearnerConfig {
	if c.FreshnessPhases == 0 {
		c.FreshnessPhases = 200
	}
	if c.MaxPatterns == 0 {
		c.MaxPatterns = 256
	}
	if c.MaxSuffixLen == 0 {
		c.MaxSuffixLen = 4
	}
	return c
}

// patEntry is one anchor-index slot: the stored pattern plus its canonical
// key (the same interned string the patterns map is keyed by, so match can
// hand out the identity without re-joining the sequence).
type patEntry struct {
	key string
	pat *Pattern
}

// DecisionLearner learns carrier handover logic online from the stream of
// (MR sequence, HO command) phases.
type DecisionLearner struct {
	cfg      LearnerConfig
	patterns map[string]*Pattern
	// byLast indexes patterns by their final (anchor) key. Match only ever
	// considers patterns anchored at the sequence's newest evidence, so the
	// hot path scans one short bucket instead of the whole store.
	byLast map[string][]patEntry
	phase  int
	// learned/evicted count lifetime pattern churn (§7.3 reports these
	// rates).
	learned int
	evicted int
}

// NewDecisionLearner creates a learner.
func NewDecisionLearner(cfg LearnerConfig) *DecisionLearner {
	return &DecisionLearner{
		cfg:      cfg.withDefaults(),
		patterns: make(map[string]*Pattern),
		byLast:   make(map[string][]patEntry),
	}
}

// index adds a pattern to the anchor index (replacing any entry already
// holding its key, e.g. a Bootstrap overwrite).
func (l *DecisionLearner) index(key string, p *Pattern) {
	last := p.Seq[len(p.Seq)-1]
	bucket := l.byLast[last]
	for i := range bucket {
		if bucket[i].key == key {
			bucket[i].pat = p
			return
		}
	}
	l.byLast[last] = append(bucket, patEntry{key: key, pat: p})
}

// unindex removes a pattern from the anchor index.
func (l *DecisionLearner) unindex(key string, p *Pattern) {
	last := p.Seq[len(p.Seq)-1]
	bucket := l.byLast[last]
	for i := range bucket {
		if bucket[i].key == key {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(l.byLast, last)
		return
	}
	l.byLast[last] = bucket
}

// ObservePhase consumes one completed phase: the MR keys observed since the
// previous handover and the handover type that ended the phase. Every
// suffix of the sequence (up to MaxSuffixLen) is credited, then stale
// patterns are evicted.
func (l *DecisionLearner) ObservePhase(keys []string, ho cellular.HOType) {
	if ho == cellular.HONone || len(keys) == 0 {
		return
	}
	l.phase++
	// Gentle feedback decay: reliability reflects recent behaviour, so a
	// pattern punished by early bad luck (or a temporary radio anomaly)
	// can rehabilitate.
	if l.phase%64 == 0 {
		for _, p := range l.patterns {
			p.Hits -= p.Hits / 4
			p.Misses -= p.Misses / 4
		}
	}
	maxLen := l.cfg.MaxSuffixLen
	if maxLen > len(keys) {
		maxLen = len(keys)
	}
	for n := 1; n <= maxLen; n++ {
		seq := keys[len(keys)-n:]
		key := strings.Join(seq, ",") + "->" + ho.String()
		if p, ok := l.patterns[key]; ok {
			p.Support++
			p.LastPhase = l.phase
		} else {
			cp := make([]string, n)
			copy(cp, seq)
			p := &Pattern{Seq: cp, HO: ho, Support: 1, LastPhase: l.phase}
			l.patterns[key] = p
			l.index(key, p)
			l.learned++
		}
	}
	l.evict()
}

// evict removes stale patterns and enforces the store cap.
func (l *DecisionLearner) evict() {
	for k, p := range l.patterns {
		if l.phase-p.LastPhase > l.cfg.FreshnessPhases {
			delete(l.patterns, k)
			l.unindex(k, p)
			l.evicted++
		}
	}
	if len(l.patterns) <= l.cfg.MaxPatterns {
		return
	}
	ps := l.Patterns()
	sort.Slice(ps, func(i, j int) bool {
		// Evict lowest support first, then stalest.
		if ps[i].Support != ps[j].Support {
			return ps[i].Support < ps[j].Support
		}
		return ps[i].LastPhase < ps[j].LastPhase
	})
	for _, p := range ps[:len(ps)-l.cfg.MaxPatterns] {
		key := p.Key()
		if stored, ok := l.patterns[key]; ok {
			delete(l.patterns, key)
			l.unindex(key, stored)
			l.evicted++
		}
	}
}

// Bootstrap pre-loads patterns (e.g. the most frequent pattern per HO type
// from a prior dataset), addressing the cold-start problem of §9/Fig. 15.
func (l *DecisionLearner) Bootstrap(patterns []Pattern) {
	for _, p := range patterns {
		cp := p
		cp.Seq = append([]string(nil), p.Seq...)
		cp.LastPhase = l.phase
		key := cp.Key()
		l.patterns[key] = &cp
		l.index(key, &cp)
	}
}

// Patterns returns a snapshot of the current store.
func (l *DecisionLearner) Patterns() []Pattern {
	out := make([]Pattern, 0, len(l.patterns))
	for _, p := range l.patterns {
		cp := *p
		cp.Seq = append([]string(nil), p.Seq...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Stats reports lifetime learner churn: patterns learned, patterns evicted,
// phases observed, and the live store size.
func (l *DecisionLearner) Stats() (learned, evicted, phases, live int) {
	return l.learned, l.evicted, l.phase, len(l.patterns)
}

// State exports the learner for checkpointing: the full pattern database
// (sorted by pattern key, so the encoding is canonical) plus the phase and
// churn counters. SetState is the exact inverse.
func (l *DecisionLearner) State() LearnerState {
	return LearnerState{
		Patterns: l.Patterns(),
		Phase:    l.phase,
		Learned:  l.learned,
		Evicted:  l.evicted,
	}
}

// SetState restores a learner checkpoint exported with State, replacing the
// current pattern database and counters exactly (unlike Bootstrap, which
// re-stamps freshness). Restore-then-export round-trips byte-identically.
func (l *DecisionLearner) SetState(st LearnerState) {
	l.patterns = make(map[string]*Pattern, len(st.Patterns))
	l.byLast = make(map[string][]patEntry, len(st.Patterns))
	for _, p := range st.Patterns {
		cp := p
		cp.Seq = append([]string(nil), p.Seq...)
		key := cp.Key()
		l.patterns[key] = &cp
		l.index(key, &cp)
	}
	l.phase = st.Phase
	l.learned = st.Learned
	l.evicted = st.Evicted
}

// reliabilityFloor drops patterns whose online prediction precision has
// fallen below this once enough feedback accumulated.
const (
	reliabilityFloor  = 0.35
	reliabilityTrials = 4
)

// Match finds the learned pattern best explaining the given MR-key sequence
// (observed + predicted). A pattern matches when it is an in-order
// subsequence of seq *anchored at the newest evidence*: its final key must
// be seq's final key, because a handover follows the completing report of
// its trigger sequence, not an arbitrary earlier one. The similarity of a
// match grows with support, sequence length, freshness and feedback
// reliability (§7.2). The optional admit predicate applies the caller's
// sanity checks (radio-state feasibility, reliability gating).
func (l *DecisionLearner) Match(seq []string, admit func(Pattern) bool) (Pattern, float64, bool) {
	bst, _, score, ok := l.match(seq, admit)
	if !ok {
		return Pattern{}, 0, false
	}
	cp := *bst
	cp.Seq = append([]string(nil), bst.Seq...)
	return cp, score, true
}

// match is the allocation-free core of Match: it scans only the anchor
// bucket of seq's final key and returns the stored pattern plus its interned
// canonical key. Callers must treat the returned *Pattern as read-only and
// must not retain it across learner mutations (Match copies; the prediction
// hot path reads and drops it within the same tick).
func (l *DecisionLearner) match(seq []string, admit func(Pattern) bool) (*Pattern, string, float64, bool) {
	if len(seq) == 0 {
		return nil, "", 0, false
	}
	last := seq[len(seq)-1]
	bestScore := -1.0
	var bst *Pattern
	bestKey := ""
	for _, e := range l.byLast[last] {
		p := e.pat
		if p.Hits+p.Misses >= reliabilityTrials && p.Reliability() < reliabilityFloor {
			continue
		}
		if admit != nil && !admit(*p) {
			continue
		}
		if !isSubsequence(p.Seq, seq) {
			continue
		}
		score := l.similarity(p)
		if score > bestScore {
			bestScore = score
			bst = p
			bestKey = e.key
		}
	}
	if bst == nil {
		return nil, "", 0, false
	}
	return bst, bestKey, bestScore, true
}

// Feedback records the outcome of a prediction made from the pattern with
// the given key. Unknown keys (evicted since) are ignored.
func (l *DecisionLearner) Feedback(key string, hit bool) {
	p, ok := l.patterns[key]
	if !ok {
		return
	}
	if hit {
		p.Hits++
	} else {
		p.Misses++
	}
}

// similarity scores a pattern by support (log-damped), length, and
// freshness.
func (l *DecisionLearner) similarity(p *Pattern) float64 {
	support := float64(p.Support)
	length := float64(len(p.Seq))
	fresh := 1.0
	if l.cfg.FreshnessPhases > 0 {
		age := float64(l.phase - p.LastPhase)
		fresh = 1 - age/float64(l.cfg.FreshnessPhases+1)
		if fresh < 0 {
			fresh = 0
		}
	}
	return ((1+math.Log1p(support))*0.6 + length*0.3 + fresh*0.4) * (0.5 + 0.5*p.Reliability())
}

// isSubsequence reports whether needle appears in order within haystack.
func isSubsequence(needle, haystack []string) bool {
	if len(needle) == 0 {
		return false
	}
	hi := 0
	for _, want := range needle {
		found := false
		for hi < len(haystack) {
			if haystack[hi] == want {
				found = true
				hi++
				break
			}
			hi++
		}
		if !found {
			return false
		}
	}
	return true
}
