package core

import "repro/internal/cellular"

// ScoreTable maps a predicted handover type to its ho_score: the expected
// multiplicative change in network capacity once the procedure completes
// (§7.2: "ho_score ∈ (0,∞) ... e.g. 0.4 indicates 60% degradation, 1
// indicates no HO or no degradation").
//
// The default values are the median post-HO/pre-HO throughput ratios of the
// paper's Fig. 16 (mmWave NSA bulk downloads), reproduced by the Fig. 16
// experiment in this repository:
//
//	SCGA  ≈ ×17  (4G→5G adds the high-rate leg; capped for ABR stability)
//	SCGR  ≈ ÷7   (5G→4G)
//	SCGM  ≈ +43% (intra-gNB move lands on a better beam/cell)
//	SCGC  ≈ −14% (inter-gNB via 4G often fails to improve signal, §6.2)
//	MNBH/LTEH ≈ −4% (anchor changes barely move the 5G data plane)
type ScoreTable map[cellular.HOType]float64

// DefaultScores returns the Fig. 16-derived score table. SCGA's raw ×17 is
// capped at ×4: rate adaptation reacts to the capacity step in the next
// chunk anyway, and an uncapped multiplier overshoots the first decision.
func DefaultScores() ScoreTable {
	return ScoreTable{
		cellular.HONone: 1.0,
		cellular.HOSCGA: 4.0,
		cellular.HOSCGR: 1.0 / 7.0,
		cellular.HOSCGM: 1.43,
		cellular.HOSCGC: 0.86,
		cellular.HOMNBH: 0.96,
		cellular.HOLTEH: 0.96,
		cellular.HOMCGH: 1.0,
	}
}

// Score returns the ho_score for a handover type, defaulting to 1 (no
// expected change) for unknown types.
func (t ScoreTable) Score(ho cellular.HOType) float64 {
	if s, ok := t[ho]; ok {
		return s
	}
	return 1.0
}
