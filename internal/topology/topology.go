// Package topology generates synthetic radio deployments along drive routes:
// towers, sectored cells, PCI assignment, and eNB/gNB co-location. Carrier
// profiles model the three anonymised operators of the paper (OpX, OpY,
// OpZ), reproducing their band portfolios and NSA/SA availability (Table 1).
//
// Tower spacing per (technology, band) layer is the deployment-side
// parameter behind the paper's coverage (§6.1) and HO-frequency (§5.1)
// findings; defaults are calibrated so those statistics emerge from the
// simulation rather than being asserted.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cellular"
	"repro/internal/geo"
)

// Tower is one physical site hosting one or more cells.
type Tower struct {
	ID    int
	Pos   geo.Point
	Cells []*cellular.Cell
}

// Layer describes one deployed radio layer: a technology+band combination
// with its own tower chain along the route.
type Layer struct {
	Tech cellular.Tech
	Band cellular.Band
	// SpacingM is the mean inter-tower distance along the route, metres.
	SpacingM float64
	// Sectors is the number of cells per tower (>= 1). Multi-sector NR
	// towers make intra-gNB handovers (SCGM) possible.
	Sectors int
	// TxPowerDBm is the per-cell transmit power.
	TxPowerDBm float64
	// CoLocate, for NR layers, is the probability that a gNB is mounted on
	// the nearest LTE tower (sharing its position and PCI), per §6.3.
	CoLocate float64
}

// CarrierProfile describes one operator's deployment strategy.
type CarrierProfile struct {
	Name string
	// Archs lists the architectures the carrier offers (ArchNSA and/or
	// ArchSA; ArchLTE is always available).
	Archs []cellular.Arch
	// LTELayers and NRLayers enumerate the deployed radio layers.
	LTELayers []Layer
	NRLayers  []Layer
}

// Has reports whether the carrier offers the given architecture.
func (c CarrierProfile) Has(a cellular.Arch) bool {
	if a == cellular.ArchLTE {
		return true
	}
	for _, x := range c.Archs {
		if x == a {
			return true
		}
	}
	return false
}

// Default tower spacings (metres), calibrated against §5.1/§6.1. The LTE
// anchor layer at ~1200 m yields 4G handovers every ~0.6 km once sector
// boundaries are counted; NR layers reproduce the 1.4 / 0.73 / 0.15 km
// coverage ordering.
const (
	SpacingLTEMid   = 1200.0
	SpacingLTELow   = 2600.0
	SpacingNRLow    = 2800.0
	SpacingNRMid    = 1500.0
	SpacingNRMMWave = 300.0
)

// OpX returns the OpX-analogue profile: NSA only, NR low-band + mmWave.
func OpX() CarrierProfile {
	return CarrierProfile{
		Name:  "OpX",
		Archs: []cellular.Arch{cellular.ArchNSA},
		LTELayers: []Layer{
			{Tech: cellular.TechLTE, Band: cellular.BandMid, SpacingM: SpacingLTEMid, Sectors: 2, TxPowerDBm: 27},
			{Tech: cellular.TechLTE, Band: cellular.BandLow, SpacingM: SpacingLTELow, Sectors: 2, TxPowerDBm: 24},
		},
		NRLayers: []Layer{
			{Tech: cellular.TechNR, Band: cellular.BandLow, SpacingM: SpacingNRLow, Sectors: 2, TxPowerDBm: 25, CoLocate: 0.25},
			{Tech: cellular.TechNR, Band: cellular.BandMMWave, SpacingM: SpacingNRMMWave, Sectors: 3, TxPowerDBm: 36, CoLocate: 0.05},
		},
	}
}

// OpY returns the OpY-analogue profile: NSA + SA, NR low-band + mid-band.
func OpY() CarrierProfile {
	return CarrierProfile{
		Name:  "OpY",
		Archs: []cellular.Arch{cellular.ArchNSA, cellular.ArchSA},
		LTELayers: []Layer{
			{Tech: cellular.TechLTE, Band: cellular.BandMid, SpacingM: SpacingLTEMid, Sectors: 2, TxPowerDBm: 27},
			{Tech: cellular.TechLTE, Band: cellular.BandLow, SpacingM: SpacingLTELow, Sectors: 2, TxPowerDBm: 24},
		},
		NRLayers: []Layer{
			{Tech: cellular.TechNR, Band: cellular.BandLow, SpacingM: SpacingNRLow, Sectors: 2, TxPowerDBm: 25, CoLocate: 0.36},
			{Tech: cellular.TechNR, Band: cellular.BandMid, SpacingM: SpacingNRMid, Sectors: 2, TxPowerDBm: 28, CoLocate: 0.2},
		},
	}
}

// OpZ returns the OpZ-analogue profile: NSA only, NR low-band + mmWave.
func OpZ() CarrierProfile {
	return CarrierProfile{
		Name:  "OpZ",
		Archs: []cellular.Arch{cellular.ArchNSA},
		LTELayers: []Layer{
			{Tech: cellular.TechLTE, Band: cellular.BandMid, SpacingM: SpacingLTEMid, Sectors: 2, TxPowerDBm: 27},
			{Tech: cellular.TechLTE, Band: cellular.BandLow, SpacingM: SpacingLTELow, Sectors: 2, TxPowerDBm: 24},
		},
		NRLayers: []Layer{
			{Tech: cellular.TechNR, Band: cellular.BandLow, SpacingM: SpacingNRLow, Sectors: 2, TxPowerDBm: 25, CoLocate: 0.05},
			{Tech: cellular.TechNR, Band: cellular.BandMMWave, SpacingM: SpacingNRMMWave, Sectors: 3, TxPowerDBm: 36, CoLocate: 0.05},
		},
	}
}

// Carriers returns the three operator profiles in the paper's order.
func Carriers() []CarrierProfile {
	return []CarrierProfile{OpX(), OpY(), OpZ()}
}

// CarrierByName returns the named profile.
func CarrierByName(name string) (CarrierProfile, error) {
	for _, c := range Carriers() {
		if c.Name == name {
			return c, nil
		}
	}
	return CarrierProfile{}, fmt.Errorf("topology: unknown carrier %q", name)
}

// Deployment is a generated radio environment along a route.
type Deployment struct {
	Carrier CarrierProfile
	Route   *geo.Polyline
	Towers  []*Tower
	Cells   []*cellular.Cell
	// byLayer indexes cells by technology and band.
	byLayer map[layerKey][]*cellular.Cell
	// byID groups cells by (tech, PCI) identity, in generation order, for
	// O(1) PCI resolution (PCIs repeat spatially, so a group can hold more
	// than one cell).
	byID map[idKey][]*cellular.Cell
	// slotByCell maps Cell.Index to the cell's state slot. Cells sharing a
	// (tech, PCI) identity — co-located gNBs borrowing an eNB PCI block can
	// collide — share one slot, preserving the aliasing semantics of the
	// GlobalID-keyed maps this scheme replaces.
	slotByCell []int32
	slots      int
	// azimuth stores each slot's boresight direction (radians); sectored
	// antennas give neighbouring sectors of one tower distinct coverage
	// lobes. Like the former GlobalID-keyed map, the last generated cell of
	// a shared slot wins.
	azimuth []float64
	// beamwidth (radians, 3 dB) per slot.
	beamwidth []float64
}

type layerKey struct {
	tech cellular.Tech
	band cellular.Band
}

// idKey is a cell's (tech, PCI) identity — the typed equivalent of the
// GlobalID string.
type idKey struct {
	tech cellular.Tech
	pci  cellular.PCI
}

// Options tunes deployment generation.
type Options struct {
	// CityDensity scales tower spacing down for city routes (e.g. 0.7 means
	// towers 30% closer than the freeway default). 0 means 1.0.
	CityDensity float64
	// SpacingJitter is the relative standard deviation of inter-tower
	// spacing (default 0.25).
	SpacingJitter float64
	// LateralOffsetM is the mean perpendicular distance from route to tower
	// (default 80 m).
	LateralOffsetM float64
	// IncludeMMWave controls whether mmWave layers are deployed (they exist
	// only in cities in the paper's dataset). Default true.
	SkipMMWave bool
}

func (o Options) withDefaults() Options {
	if o.CityDensity == 0 {
		o.CityDensity = 1.0
	}
	if o.SpacingJitter == 0 {
		o.SpacingJitter = 0.25
	}
	if o.LateralOffsetM == 0 {
		o.LateralOffsetM = 80
	}
	return o
}

// Generate lays out the carrier's layers along the route.
func Generate(carrier CarrierProfile, route *geo.Polyline, rng *rand.Rand, opts Options) *Deployment {
	opts = opts.withDefaults()
	d := &Deployment{
		Carrier: carrier,
		Route:   route,
		byLayer: make(map[layerKey][]*cellular.Cell),
		byID:    make(map[idKey][]*cellular.Cell),
	}
	nextLTEPCI := cellular.PCI(1)
	// NR PCIs start above the LTE range (0-503) so a co-located gNB can
	// borrow its eNB's PCI (the §6.3 same-PCI heuristic) without colliding
	// with an allocated NR PCI.
	nextNRPCI := cellular.PCI(504)
	towerID := 0

	var lteTowers []*Tower
	for _, layer := range carrier.LTELayers {
		towers := d.genLayer(layer, rng, opts, &towerID, &nextLTEPCI, nil)
		lteTowers = append(lteTowers, towers...)
	}
	for _, layer := range carrier.NRLayers {
		if opts.SkipMMWave && layer.Band == cellular.BandMMWave {
			continue
		}
		d.genLayer(layer, rng, opts, &towerID, &nextNRPCI, lteTowers)
	}
	return d
}

// genLayer places one layer's towers along the route. For NR layers,
// coLocCandidates enables gNB/eNB co-location: with probability
// layer.CoLocate a gNB is snapped onto the nearest LTE tower and reuses its
// PCI (the paper's §6.3 same-PCI heuristic for co-located sites).
func (d *Deployment) genLayer(layer Layer, rng *rand.Rand, opts Options, towerID *int, nextPCI *cellular.PCI, coLocCandidates []*Tower) []*Tower {
	if layer.Sectors < 1 {
		layer.Sectors = 1
	}
	spacing := layer.SpacingM * opts.CityDensity
	var made []*Tower
	side := 1.0
	for s := spacing * (0.3 + 0.4*rng.Float64()); s < d.Route.Length(); {
		pos := d.Route.At(s)
		heading := d.Route.Heading(s)
		normal := geo.Point{X: -heading.Y, Y: heading.X}
		offset := opts.LateralOffsetM * (0.5 + rng.Float64())
		site := pos.Add(normal.Scale(side * offset))
		side = -side

		t := &Tower{ID: *towerID, Pos: site}
		*towerID++

		var pci cellular.PCI
		coLocated := false
		if layer.Tech == cellular.TechNR && len(coLocCandidates) > 0 && rng.Float64() < layer.CoLocate {
			// Snap to the nearest LTE tower, reusing its PCI block and its
			// tower identity (the cells share the physical site).
			best := coLocCandidates[0]
			for _, c := range coLocCandidates[1:] {
				if c.Pos.Dist(site) < best.Pos.Dist(site) {
					best = c
				}
			}
			t.Pos = best.Pos
			t.ID = best.ID
			pci = best.Cells[0].PCI
			coLocated = true
		}
		if !coLocated {
			pci = *nextPCI
			*nextPCI += cellular.PCI(layer.Sectors)
		}

		for sec := 0; sec < layer.Sectors; sec++ {
			// Sectors get consecutive PCIs; a co-located gNB borrows the
			// eNB's PCI block so the paper's same-PCI co-location
			// heuristic holds per sector.
			cellPCI := pci + cellular.PCI(sec)
			c := &cellular.Cell{
				PCI:     cellPCI,
				Tech:    layer.Tech,
				Band:    layer.Band,
				TowerID: t.ID,
				X:       t.Pos.X,
				Y:       t.Pos.Y,
				TxPower: layer.TxPowerDBm,
				ARFCN:   arfcnFor(layer.Band),
			}
			c.Index = len(d.Cells)
			c.CacheGlobalID()
			t.Cells = append(t.Cells, c)
			d.Cells = append(d.Cells, c)
			k := layerKey{layer.Tech, layer.Band}
			d.byLayer[k] = append(d.byLayer[k], c)
			// Sector boresights split the circle; two-sector towers point
			// up/down the route so consecutive road segments belong to
			// different sectors, enabling intra-tower handovers.
			az := math.Atan2(heading.Y, heading.X) + float64(sec)*2*math.Pi/float64(layer.Sectors)
			bw := 2 * math.Pi / float64(layer.Sectors) * 0.8
			id := idKey{c.Tech, c.PCI}
			group := d.byID[id]
			var slot int32
			if len(group) == 0 {
				slot = int32(d.slots)
				d.slots++
				d.azimuth = append(d.azimuth, az)
				d.beamwidth = append(d.beamwidth, bw)
			} else {
				slot = d.slotByCell[group[0].Index]
				d.azimuth[slot] = az
				d.beamwidth[slot] = bw
			}
			d.byID[id] = append(group, c)
			d.slotByCell = append(d.slotByCell, slot)
		}
		d.Towers = append(d.Towers, t)
		made = append(made, t)

		jitter := 1 + opts.SpacingJitter*(2*rng.Float64()-1)
		s += spacing * jitter
	}
	return made
}

// arfcnFor returns a synthetic channel number per band, used only to make
// log records look like the real thing.
func arfcnFor(b cellular.Band) int {
	switch b {
	case cellular.BandLow:
		return 125400
	case cellular.BandMid:
		return 520110
	case cellular.BandMMWave:
		return 2079167
	default:
		return 0
	}
}

// LayerCells returns the cells of one technology+band layer.
func (d *Deployment) LayerCells(tech cellular.Tech, band cellular.Band) []*cellular.Cell {
	return d.byLayer[layerKey{tech, band}]
}

// TechCells returns all cells of a technology across bands.
func (d *Deployment) TechCells(tech cellular.Tech) []*cellular.Cell {
	var out []*cellular.Cell
	for k, cs := range d.byLayer {
		if k.tech == tech {
			out = append(out, cs...)
		}
	}
	return out
}

// Bands returns the deployed bands for a technology, in low→mmWave order.
func (d *Deployment) Bands(tech cellular.Tech) []cellular.Band {
	var out []cellular.Band
	for _, b := range []cellular.Band{cellular.BandLow, cellular.BandMid, cellular.BandMMWave} {
		if len(d.byLayer[layerKey{tech, b}]) > 0 {
			out = append(out, b)
		}
	}
	return out
}

// StateSlots returns the number of per-cell state slots in the deployment:
// one per distinct (tech, PCI) identity. Simulators size their per-cell
// process tables (shadowing, blockage, L3 filters) by this.
func (d *Deployment) StateSlots() int { return d.slots }

// StateSlot returns the state slot of a cell belonging to this deployment.
// Cells sharing a (tech, PCI) identity share a slot.
func (d *Deployment) StateSlot(c *cellular.Cell) int { return int(d.slotByCell[c.Index]) }

// CellsWithPCI returns the cells matching a (tech, PCI) identity in
// generation order, or nil if none exist. Callers disambiguate spatially
// repeated PCIs by distance.
func (d *Deployment) CellsWithPCI(tech cellular.Tech, pci cellular.PCI) []*cellular.Cell {
	return d.byID[idKey{tech, pci}]
}

// SectorGainDB returns the directional antenna gain (dB, <= 0) of the cell
// toward the UE at position p, using a parabolic pattern with a 20 dB
// back-lobe floor. Omnidirectional single-sector cells (and cells foreign
// to the deployment) return 0.
func (d *Deployment) SectorGainDB(c *cellular.Cell, p geo.Point) float64 {
	if c.Index < 0 || c.Index >= len(d.slotByCell) || d.Cells[c.Index] != c {
		return 0
	}
	slot := d.slotByCell[c.Index]
	bw := d.beamwidth[slot]
	if bw >= 2*math.Pi*0.99 {
		return 0
	}
	az := d.azimuth[slot]
	toUE := math.Atan2(p.Y-c.Y, p.X-c.X)
	delta := math.Abs(angleDiff(toUE, az))
	g := -12 * (delta / (bw / 2)) * (delta / (bw / 2))
	if g < -20 {
		g = -20
	}
	return g
}

// CoLocatedPCI reports whether an NR cell shares its tower (and PCI) with an
// LTE cell, the ground truth behind the §6.3 analysis.
func (d *Deployment) CoLocatedPCI(nr *cellular.Cell) bool {
	if nr.Tech != cellular.TechNR {
		return false
	}
	for _, c := range d.Cells {
		if c.Tech == cellular.TechLTE && c.TowerID == nr.TowerID {
			return true
		}
	}
	return false
}

// angleDiff returns the signed smallest difference a-b in (-π, π].
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
