package topology

import (
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
)

func genOpX(t *testing.T, seed int64, opts Options) *Deployment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	route := geo.GenFreeway(rng, 30000)
	return Generate(OpX(), route, rng, opts)
}

func TestCarrierProfiles(t *testing.T) {
	if len(Carriers()) != 3 {
		t.Fatal("three carriers expected")
	}
	opx, opy, opz := OpX(), OpY(), OpZ()
	if opx.Has(cellular.ArchSA) || opz.Has(cellular.ArchSA) {
		t.Error("only OpY deploys SA")
	}
	if !opy.Has(cellular.ArchSA) || !opy.Has(cellular.ArchNSA) {
		t.Error("OpY deploys both NSA and SA")
	}
	if !opx.Has(cellular.ArchLTE) {
		t.Error("LTE is always available")
	}
	hasBand := func(c CarrierProfile, b cellular.Band) bool {
		for _, l := range c.NRLayers {
			if l.Band == b {
				return true
			}
		}
		return false
	}
	if !hasBand(opx, cellular.BandMMWave) || !hasBand(opz, cellular.BandMMWave) {
		t.Error("OpX/OpZ deploy mmWave")
	}
	if hasBand(opy, cellular.BandMMWave) {
		t.Error("OpY has no mmWave")
	}
	if !hasBand(opy, cellular.BandMid) {
		t.Error("OpY deploys mid-band NR")
	}
	if _, err := CarrierByName("OpY"); err != nil {
		t.Error(err)
	}
	if _, err := CarrierByName("nope"); err == nil {
		t.Error("unknown carrier accepted")
	}
}

func TestGenerateLayers(t *testing.T) {
	d := genOpX(t, 1, Options{})
	if len(d.Cells) == 0 || len(d.Towers) == 0 {
		t.Fatal("empty deployment")
	}
	if len(d.LayerCells(cellular.TechLTE, cellular.BandMid)) == 0 {
		t.Error("no LTE mid cells")
	}
	if len(d.LayerCells(cellular.TechNR, cellular.BandLow)) == 0 {
		t.Error("no NR low cells")
	}
	if len(d.LayerCells(cellular.TechNR, cellular.BandMMWave)) == 0 {
		t.Error("no mmWave cells")
	}
	bands := d.Bands(cellular.TechNR)
	if len(bands) != 2 {
		t.Errorf("OpX NR bands = %v", bands)
	}
	if got := len(d.TechCells(cellular.TechNR)); got == 0 {
		t.Error("TechCells empty")
	}
}

func TestSkipMMWave(t *testing.T) {
	d := genOpX(t, 2, Options{SkipMMWave: true})
	if len(d.LayerCells(cellular.TechNR, cellular.BandMMWave)) != 0 {
		t.Error("mmWave cells present despite SkipMMWave")
	}
}

func TestSpacingRoughlyHonoured(t *testing.T) {
	d := genOpX(t, 3, Options{SkipMMWave: true})
	// Count LTE mid towers: ~30 km / 1.2 km ≈ 25.
	seen := map[int]bool{}
	for _, c := range d.LayerCells(cellular.TechLTE, cellular.BandMid) {
		seen[c.TowerID] = true
	}
	n := len(seen)
	if n < 15 || n > 40 {
		t.Errorf("LTE mid tower count %d, want ≈25 over 30 km", n)
	}
}

func TestCoLocationSharesTowerAndPCI(t *testing.T) {
	// Force co-location to make the invariant testable.
	c := OpX()
	c.NRLayers = c.NRLayers[:1]
	c.NRLayers[0].CoLocate = 1.0
	rng := rand.New(rand.NewSource(4))
	route := geo.GenFreeway(rng, 20000)
	d := Generate(c, route, rng, Options{SkipMMWave: true})

	lteByTower := map[int][]*cellular.Cell{}
	for _, cell := range d.Cells {
		if cell.Tech == cellular.TechLTE {
			lteByTower[cell.TowerID] = append(lteByTower[cell.TowerID], cell)
		}
	}
	nrCells := d.TechCells(cellular.TechNR)
	if len(nrCells) == 0 {
		t.Fatal("no NR cells")
	}
	for _, nr := range nrCells {
		mates := lteByTower[nr.TowerID]
		if len(mates) == 0 {
			t.Fatalf("co-located NR cell %v has no LTE tower mate", nr.GlobalID())
		}
		// The §6.3 same-PCI heuristic: the NR PCI block matches the eNB's.
		found := false
		for _, m := range mates {
			if m.PCI == nr.PCI {
				found = true
			}
		}
		if !found {
			t.Fatalf("co-located NR cell PCI %d not shared with eNB PCIs", nr.PCI)
		}
		if !d.CoLocatedPCI(nr) {
			t.Fatal("CoLocatedPCI must report true")
		}
	}
}

func TestNonCoLocatedPCIsDisjoint(t *testing.T) {
	c := OpX()
	c.NRLayers = c.NRLayers[:1]
	c.NRLayers[0].CoLocate = 0
	rng := rand.New(rand.NewSource(5))
	route := geo.GenFreeway(rng, 20000)
	d := Generate(c, route, rng, Options{SkipMMWave: true})
	for _, nr := range d.TechCells(cellular.TechNR) {
		if nr.PCI < 504 {
			t.Fatalf("non-co-located NR PCI %d inside the LTE range", nr.PCI)
		}
	}
}

func TestSectorGain(t *testing.T) {
	d := genOpX(t, 6, Options{SkipMMWave: true})
	cells := d.LayerCells(cellular.TechNR, cellular.BandLow)
	if len(cells) < 2 {
		t.Fatal("need sectored NR cells")
	}
	c := cells[0]
	// Gain is bounded in [-20, 0].
	for _, p := range []geo.Point{{X: c.X + 100, Y: c.Y}, {X: c.X - 100, Y: c.Y}, {X: c.X, Y: c.Y + 100}} {
		g := d.SectorGainDB(c, p)
		if g > 0 || g < -20 {
			t.Fatalf("sector gain %v out of range", g)
		}
	}
	// Two sectors of the same tower point in different directions: their
	// gains toward one position must differ somewhere.
	var mate *cellular.Cell
	for _, o := range cells[1:] {
		if o.TowerID == c.TowerID {
			mate = o
			break
		}
	}
	if mate == nil {
		t.Skip("no sector mate found")
	}
	diff := false
	for _, p := range []geo.Point{{X: c.X + 200, Y: c.Y}, {X: c.X - 200, Y: c.Y}, {X: c.X, Y: c.Y + 200}, {X: c.X, Y: c.Y - 200}} {
		if d.SectorGainDB(c, p) != d.SectorGainDB(mate, p) {
			diff = true
		}
	}
	if !diff {
		t.Error("sector patterns identical in every direction")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := genOpX(t, 9, Options{})
	b := genOpX(t, 9, Options{})
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if *a.Cells[i] != *b.Cells[i] {
			t.Fatalf("cell %d differs between identical seeds", i)
		}
	}
}
