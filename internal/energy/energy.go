// Package energy models the UE power cost of handovers (§5.3): per-HO radio
// power, the energy window spanning preparation, execution and the
// post-HO signalling tail, and the positive coupling between signalling
// message count and drained energy the paper reports.
//
// Calibration targets (paper §5.3 / Fig. 10):
//   - NSA HOs consume 1.2-2.3× the power of LTE HOs.
//   - A single mmWave HO draws ~35% less power than a low-band HO ("54%
//     more energy efficient") but its longer beam-management tail makes it
//     cost more energy overall.
//   - One hour at 130 km/h: ≈553 low-band NSA HOs ≈ 34.7 mAh; ≈998 mmWave
//     HOs ≈ 81.7 mAh; LTE ≈ 3.4 mAh.
package energy

import (
	"time"

	"repro/internal/cellular"
)

// NominalBatteryVoltage converts joules to mAh for a typical smartphone
// battery.
const NominalBatteryVoltage = 3.85

// JoulesToMAh converts energy in joules to battery capacity in mAh at the
// nominal voltage.
func JoulesToMAh(j float64) float64 { return j / (NominalBatteryVoltage * 3.6) }

// MAhToJoules converts battery capacity in mAh to joules.
func MAhToJoules(mah float64) float64 { return mah * NominalBatteryVoltage * 3.6 }

// perMessageJ is the incremental energy of one HO-related signalling
// message; it realises the signalling↔energy correlation of §5.3.
const perMessageJ = 0.002

// HOPowerW returns the mean radio power (W) drawn during the handover
// window for a given technology/band, above the idle baseline.
func HOPowerW(t cellular.HOType, band cellular.Band) float64 {
	switch {
	case t == cellular.HOLTEH && band != cellular.BandMMWave:
		return 0.9
	case t == cellular.HOMCGH:
		return 1.2
	case band == cellular.BandMMWave:
		// mmWave per-HO power is ~0.65× low-band (the paper's "54% more
		// energy efficient" single HO), thanks to the improved PRACH.
		return 1.1
	default:
		return 1.7
	}
}

// tailDuration is the post-execution signalling/measurement tail included
// in the HO energy window. mmWave's beam management stretches it.
func tailDuration(t cellular.HOType, band cellular.Band) time.Duration {
	switch {
	case t == cellular.HOLTEH:
		return 100 * time.Millisecond
	case band == cellular.BandMMWave && t.Is5G():
		return 700 * time.Millisecond
	default:
		return 350 * time.Millisecond
	}
}

// HOEnergyJ returns the total energy (joules) of one handover: window power
// times the T1+T2+tail window, plus the per-message signalling cost.
func HOEnergyJ(ho cellular.HandoverEvent) float64 {
	window := ho.T1 + ho.T2 + tailDuration(ho.Type, ho.Band)
	p := HOPowerW(ho.Type, ho.Band)
	return p*window.Seconds() + perMessageJ*float64(ho.Signaling.Total())
}

// HOEnergyMAh returns the battery drain (mAh) of one handover.
func HOEnergyMAh(ho cellular.HandoverEvent) float64 { return JoulesToMAh(HOEnergyJ(ho)) }

// Drain summarises the handover energy cost of a drive.
type Drain struct {
	Handovers int
	TotalJ    float64
	TotalMAh  float64
	// PerHOAvgW is the mean window power across HOs.
	PerHOAvgW float64
	// PerKmMAh is energy per unit distance (0 when distance unknown).
	PerKmMAh float64
}

// Summarize computes the total HO energy drain for a set of handovers over
// the given distance (km; pass 0 if unknown).
func Summarize(hos []cellular.HandoverEvent, distanceKM float64) Drain {
	d := Drain{Handovers: len(hos)}
	var powerSum float64
	for _, ho := range hos {
		d.TotalJ += HOEnergyJ(ho)
		powerSum += HOPowerW(ho.Type, ho.Band)
	}
	d.TotalMAh = JoulesToMAh(d.TotalJ)
	if len(hos) > 0 {
		d.PerHOAvgW = powerSum / float64(len(hos))
	}
	if distanceKM > 0 {
		d.PerKmMAh = d.TotalMAh / distanceKM
	}
	return d
}

// BaselinePowerW is the stationary no-HO power the paper subtracts from its
// measurements; exported for the examples and docs (the HO model above is
// already baseline-free).
const BaselinePowerW = 1.35

// DataEnergy reports how much bulk data (GB) a given battery budget (mAh)
// would move, using the per-byte slopes the paper borrows from Narayanan
// et al. (Table 8 of [54]) to contextualise HO energy: NSA low-band
// download ≈ 4.3 GB per 34.7 mAh; mmWave ≈ 75.4 GB per 81.7 mAh.
func DataEnergy(band cellular.Band, mah float64) (downloadGB, uploadGB float64) {
	switch band {
	case cellular.BandMMWave:
		return mah * (75.4 / 81.7), mah * (14.5 / 81.7)
	default:
		return mah * (4.3 / 34.7), mah * (2.0 / 34.7)
	}
}
