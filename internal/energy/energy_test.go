package energy

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/ran"
)

func mkHO(ty cellular.HOType, band cellular.Band, rng *rand.Rand) cellular.HandoverEvent {
	t1, t2 := ran.SampleDurations(ran.DurationParams{Type: ty, Band: band}, rng)
	return cellular.HandoverEvent{
		Type: ty, Band: band, T1: t1, T2: t2,
		Signaling: ran.SignalingFor(ty, band, rng),
	}
}

func TestUnitConversions(t *testing.T) {
	if got := JoulesToMAh(MAhToJoules(10)); math.Abs(got-10) > 1e-9 {
		t.Errorf("round trip = %v", got)
	}
	// 1 mAh at 3.85 V is 13.86 J.
	if got := MAhToJoules(1); math.Abs(got-13.86) > 0.01 {
		t.Errorf("1 mAh = %v J", got)
	}
}

func TestPowerRatios(t *testing.T) {
	lte := HOPowerW(cellular.HOLTEH, cellular.BandMid)
	low := HOPowerW(cellular.HOSCGC, cellular.BandLow)
	mmw := HOPowerW(cellular.HOSCGC, cellular.BandMMWave)
	// §5.3: NSA HO power 1.2-2.3× LTE.
	if r := low / lte; r < 1.2 || r > 2.3 {
		t.Errorf("NSA/LTE power ratio %v", r)
	}
	// A single mmWave HO is "54% more energy efficient": ~0.65× power.
	if r := mmw / low; r < 0.55 || r > 0.75 {
		t.Errorf("mmWave/low power ratio %v, want ≈0.65", r)
	}
}

func TestEnergyPositiveAndSignalingCoupled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ho := mkHO(cellular.HOSCGC, cellular.BandLow, rng)
	base := HOEnergyJ(ho)
	if base <= 0 {
		t.Fatal("non-positive HO energy")
	}
	more := ho
	more.Signaling = ho.Signaling.Add(cellular.SignalingCount{PHY: 50})
	if HOEnergyJ(more) <= base {
		t.Error("more signalling must cost more energy (§5.3 correlation)")
	}
}

func TestMMWaveEnergyDespiteLowerPower(t *testing.T) {
	// mmWave HOs draw less power but their longer execution and beam tail
	// cost more energy per HO overall.
	rng := rand.New(rand.NewSource(5))
	var low, mmw float64
	for i := 0; i < 500; i++ {
		low += HOEnergyJ(mkHO(cellular.HOSCGC, cellular.BandLow, rng))
		mmw += HOEnergyJ(mkHO(cellular.HOSCGC, cellular.BandMMWave, rng))
	}
	if mmw <= low {
		t.Errorf("mmWave per-HO energy (%v) should exceed low-band (%v)", mmw, low)
	}
}

func TestSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var hos []cellular.HandoverEvent
	for i := 0; i < 100; i++ {
		hos = append(hos, mkHO(cellular.HOSCGC, cellular.BandLow, rng))
	}
	d := Summarize(hos, 40)
	if d.Handovers != 100 {
		t.Errorf("Handovers = %d", d.Handovers)
	}
	if d.TotalMAh <= 0 || d.PerKmMAh <= 0 || d.PerHOAvgW <= 0 {
		t.Errorf("drain = %+v", d)
	}
	if math.Abs(d.PerKmMAh-d.TotalMAh/40) > 1e-9 {
		t.Error("per-km inconsistent")
	}
	empty := Summarize(nil, 0)
	if empty.TotalMAh != 0 || empty.PerHOAvgW != 0 || empty.PerKmMAh != 0 {
		t.Errorf("empty drain = %+v", empty)
	}
}

func TestHourlyDrainBallpark(t *testing.T) {
	// §5.3: ≈553 low-band NSA HOs in an hour at 130 km/h drain ≈34.7 mAh;
	// LTE HOs drain ≈3.4 mAh. Check the model lands in the right decade
	// with the paper's own event counts.
	rng := rand.New(rand.NewSource(7))
	var nsa, lte float64
	for i := 0; i < 553; i++ {
		nsa += HOEnergyMAh(mkHO(cellular.HOSCGC, cellular.BandLow, rng))
	}
	for i := 0; i < 217; i++ {
		lte += HOEnergyMAh(mkHO(cellular.HOLTEH, cellular.BandMid, rng))
	}
	if nsa < 15 || nsa > 70 {
		t.Errorf("hourly NSA drain %v mAh, want ≈34.7", nsa)
	}
	if lte < 1 || lte > 8 {
		t.Errorf("hourly LTE drain %v mAh, want ≈3.4", lte)
	}
	if nsa/lte < 5 {
		t.Errorf("NSA/LTE hourly ratio %v, want ≈10", nsa/lte)
	}
}

func TestDataEnergyRatios(t *testing.T) {
	down, up := DataEnergy(cellular.BandLow, 34.7)
	if math.Abs(down-4.3) > 0.01 || math.Abs(up-2.0) > 0.01 {
		t.Errorf("low-band data equivalents: %v GB down, %v GB up", down, up)
	}
	down, _ = DataEnergy(cellular.BandMMWave, 81.7)
	if math.Abs(down-75.4) > 0.01 {
		t.Errorf("mmWave download equivalent %v GB", down)
	}
}

func TestTailDurations(t *testing.T) {
	// The beam-management tail makes the mmWave energy window the longest.
	lte := tailDuration(cellular.HOLTEH, cellular.BandMid)
	low := tailDuration(cellular.HOSCGC, cellular.BandLow)
	mmw := tailDuration(cellular.HOSCGC, cellular.BandMMWave)
	if !(lte < low && low < mmw) {
		t.Errorf("tail ordering: lte=%v low=%v mmw=%v", lte, low, mmw)
	}
	if mmw < 500*time.Millisecond {
		t.Error("mmWave tail too short for its signalling load")
	}
}
