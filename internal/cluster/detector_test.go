package cluster

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeProbe is an injectable probe whose answer flips per peer under
// test control.
type fakeProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *fakeProbe) set(peer string, failing bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail == nil {
		p.fail = make(map[string]bool)
	}
	p.fail[peer] = failing
}

func (p *fakeProbe) probe(addr string, _ time.Duration) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[addr] {
		return errors.New("probe refused")
	}
	return nil
}

// TestDetectorConfirmAndRecover walks one peer through the full
// lifecycle: healthy, confirmed down after Threshold consecutive misses,
// confirmed back up on the first answering probe — with OnChange fired
// exactly once per transition in each direction.
func TestDetectorConfirmAndRecover(t *testing.T) {
	probe := &fakeProbe{}
	var downs, ups atomic.Int64
	d := NewDetector(DetectorConfig{
		Peers:     []string{"peer-a", "peer-b"},
		Interval:  5 * time.Millisecond,
		Threshold: 2,
		Probe:     probe.probe,
		OnChange: func(peer string, down bool) {
			if peer != "peer-a" {
				t.Errorf("transition on healthy peer %s", peer)
			}
			if down {
				downs.Add(1)
			} else {
				ups.Add(1)
			}
		},
	})
	d.Start()
	defer d.Stop()

	wait := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Healthy peers never confirm down, however long we probe.
	time.Sleep(40 * time.Millisecond)
	if d.Down("peer-a") || d.Down("peer-b") || d.Suspects() != 0 {
		t.Fatal("healthy peers confirmed down")
	}

	probe.set("peer-a", true)
	wait("peer-a confirmed down", func() bool { return d.Down("peer-a") })
	if d.Down("peer-b") {
		t.Fatal("peer-b confirmed down alongside peer-a")
	}
	if d.Suspects() != 1 {
		t.Fatalf("suspects %d, want 1", d.Suspects())
	}

	// Recovery: the first answering probe clears the confirmation.
	probe.set("peer-a", false)
	wait("peer-a confirmed back up", func() bool { return !d.Down("peer-a") })
	if d.Suspects() != 0 {
		t.Fatalf("suspects %d after recovery, want 0", d.Suspects())
	}

	// Exactly one transition per direction — staying down across many
	// probe rounds must not re-fire OnChange.
	if downs.Load() != 1 || ups.Load() != 1 {
		t.Fatalf("transitions down=%d up=%d, want 1/1", downs.Load(), ups.Load())
	}
	d.Stop() // idempotent with the deferred Stop
}

// TestDetectorThreshold pins that a single missed probe — a blip below
// Threshold — never confirms a peer down.
func TestDetectorThreshold(t *testing.T) {
	probe := &fakeProbe{}
	var rounds atomic.Int64
	fired := make(chan string, 1)
	d := NewDetector(DetectorConfig{
		Peers:     []string{"peer-a"},
		Interval:  5 * time.Millisecond,
		Threshold: 3,
		Probe: func(addr string, timeout time.Duration) error {
			// Fail exactly the first two probes: one short of Threshold.
			if rounds.Add(1) <= 2 {
				return errors.New("blip")
			}
			return probe.probe(addr, timeout)
		},
		OnChange: func(peer string, down bool) {
			select {
			case fired <- peer:
			default:
			}
		},
	})
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for rounds.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Down("peer-a") {
		t.Fatal("sub-threshold misses confirmed the peer down")
	}
	select {
	case p := <-fired:
		t.Fatalf("OnChange fired for %s on sub-threshold misses", p)
	default:
	}
}

// TestProbeStats exercises the default probe end to end against a fake
// stats endpoint: an answering node probes healthy, a node that accepts
// but never answers times out, and a dead port fails the dial.
func TestProbeStats(t *testing.T) {
	// A minimal stats responder: read the hello line, answer one line.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
				c.Write([]byte("{\"sessions\":0}\n"))
			}(conn)
		}
	}()
	if err := ProbeStats(ln.Addr().String(), time.Second); err != nil {
		t.Fatalf("probe against an answering node failed: %v", err)
	}

	// Accepts but never answers: the probe must time out, not hang.
	mute, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	go func() {
		for {
			conn, err := mute.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	if err := ProbeStats(mute.Addr().String(), 30*time.Millisecond); err == nil {
		t.Fatal("probe against a mute node reported healthy")
	}

	// Dead port: reserve one and close it again.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if err := ProbeStats(deadAddr, 100*time.Millisecond); err == nil {
		t.Fatal("probe against a dead port reported healthy")
	}
}
