package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/cellular"
	"repro/internal/core"
	"repro/internal/wire"
)

// SessionStateVersion gates the migration payload schema, independently of
// the checkpoint format's core.SnapshotVersion (which versions Snapshot
// itself): a receiving node rejects states from a future schema instead of
// mis-reading them.
const SessionStateVersion = 1

// SessionState is one unit of warm state shipped between nodes inside a
// FrameMigrate frame (JSON-encoded; docs/PROTOCOL.md §Migration frames).
// Two shapes travel under the same type:
//
//   - Token != "": a parked session. The receiver re-parks it — learned
//     snapshot, resume cursor and replay buffer intact — so the UE's next
//     reconnect resumes warm with exact replay, as if it had never left
//     the origin node.
//   - Token == "": a context-level warm snapshot (the freshest learned
//     state for one (carrier, arch) deployment context). The receiver
//     folds it into its warm store so even UEs without parked state
//     bootstrap from the migrated learning.
type SessionState struct {
	Version int           `json:"version"`
	Origin  string        `json:"origin,omitempty"`
	Token   string        `json:"token,omitempty"`
	Carrier string        `json:"carrier"`
	Arch    cellular.Arch `json:"arch"`
	// Seq is the parked session's resume cursor (highest answered
	// Response.Seq); Responses its replay buffer, oldest first, exactly
	// the responses a resuming client may still be missing.
	Seq       int64           `json:"seq,omitempty"`
	Responses []wire.Response `json:"responses,omitempty"`
	Snapshot  core.Snapshot   `json:"snapshot"`
	// Partial marks a replication push of a live session's resume state
	// (cursor + replay tail) without its learner snapshot: the hot path
	// deposits these cheaply every replication interval, and a promoting
	// node warm-starts the learner from the separately replicated context
	// snapshot instead. Never set on drain migration. Schema note: added
	// under SessionStateVersion 1 — old receivers ignore the field and
	// treat the state as a (stale-snapshot) parked session, which is safe.
	Partial bool `json:"partial,omitempty"`
}

// ShipStats accounts one migration pass to one target node.
type ShipStats struct {
	// Sessions and Contexts count the accepted parked-session and
	// warm-snapshot states; Rejected the states the target nacked.
	Sessions int
	Contexts int
	Rejected int
	// Bytes is the total FrameMigrate payload bytes shipped (the
	// bytes-moved cost of the pass, before framing overhead).
	Bytes int64
}

// Ship opens one migration stream to addr and ships states over it,
// pipelined, returning per-target accounting. origin names the shipping
// node (it travels in the hello and tags the target's trace events). The
// whole exchange — dial, handshake, every frame and ack — happens within
// timeout. Any transport or protocol error aborts the pass; migration is
// best-effort by design, because every shipped state is also recoverable
// the slow way (cold start warmed by checkpoint, §Resilience).
func Ship(addr, origin string, states []SessionState, timeout time.Duration) (ShipStats, error) {
	return ship(addr, origin, states, timeout, false)
}

// ShipReplicas opens one async replication stream to addr and pushes
// states over it — the same wire choreography as Ship, but under a
// "replicate" hello and FrameReplicate/FrameReplicateAck frames, so the
// receiver holds the states passively (replica table + warm store) for
// crash failover instead of serving them. Best-effort like Ship: a failed
// pass costs staleness, never correctness, because the next tick pushes
// fresh state again.
func ShipReplicas(addr, origin string, states []SessionState, timeout time.Duration) (ShipStats, error) {
	return ship(addr, origin, states, timeout, true)
}

// ship is the shared stream body of Ship and ShipReplicas; replica picks
// the hello flag, frame type and ack decoder.
func ship(addr, origin string, states []SessionState, timeout time.Duration, replica bool) (ShipStats, error) {
	var st ShipStats
	if len(states) == 0 {
		return st, nil
	}
	kind := "migrate"
	if replica {
		kind = "replicate"
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return st, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return st, err
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	h := wire.Hello{Node: origin, Framing: string(wire.FramingBinary)}
	if replica {
		h.Replicate = true
	} else {
		h.Migrate = true
	}
	hello, err := json.Marshal(h)
	if err != nil {
		return st, err
	}
	hello = append(hello, '\n')
	if _, err := bw.Write(hello); err != nil {
		return st, err
	}
	if err := bw.Flush(); err != nil {
		return st, err
	}
	line, err := wire.ReadLine(br, wire.MaxLineBytes)
	if err != nil {
		return st, fmt.Errorf("cluster: read %s handshake from %s: %w", kind, addr, err)
	}
	var env struct {
		FramingAck bool   `json:"framing_ack"`
		Err        string `json:"error"`
	}
	if err := json.Unmarshal(line, &env); err != nil {
		return st, fmt.Errorf("cluster: bad %s handshake from %s: %w", kind, addr, err)
	}
	if env.Err != "" {
		return st, fmt.Errorf("cluster: %s rejected %s stream: %s", addr, kind, env.Err)
	}
	if !env.FramingAck {
		return st, fmt.Errorf("cluster: %s answered %s hello without framing ack", addr, kind)
	}

	// Ship everything pipelined, then collect one ack per state. The ack
	// seq is the 1-based send ordinal, so verdicts stay attributable even
	// though the target answers in order.
	fw := wire.NewFrameWriter(bw)
	for _, s := range states {
		s.Version = SessionStateVersion
		if s.Origin == "" {
			s.Origin = origin
		}
		payload, err := json.Marshal(s)
		if err != nil {
			return st, fmt.Errorf("cluster: encode session state %q: %w", s.Token, err)
		}
		if replica {
			err = fw.WriteReplicate(payload)
		} else {
			err = fw.WriteMigrate(payload)
		}
		if err != nil {
			return st, err
		}
		st.Bytes += int64(len(payload))
	}
	if err := bw.Flush(); err != nil {
		return st, err
	}
	wantAck := wire.FrameMigrateAck
	if replica {
		wantAck = wire.FrameReplicateAck
	}
	fr := wire.NewFrameReader(br)
	for i := range states {
		typ, p, err := fr.ReadFrame()
		if err != nil {
			return st, fmt.Errorf("cluster: read %s ack %d/%d from %s: %w", kind, i+1, len(states), addr, err)
		}
		switch typ {
		case wantAck:
		case wire.FrameError:
			return st, fmt.Errorf("cluster: %s aborted %s stream: %s", addr, kind, p)
		default:
			return st, fmt.Errorf("cluster: unexpected frame 0x%02x in %s ack stream", typ, kind)
		}
		var ack wire.MigrateAck
		if replica {
			err = wire.DecodeReplicateAck(p, &ack)
		} else {
			err = wire.DecodeMigrateAck(p, &ack)
		}
		if err != nil {
			return st, err
		}
		if ack.Seq != int64(i+1) {
			return st, fmt.Errorf("cluster: %s ack out of order: got seq %d, want %d", kind, ack.Seq, i+1)
		}
		switch {
		case !ack.OK:
			st.Rejected++
		case states[i].Token != "":
			st.Sessions++
		default:
			st.Contexts++
		}
	}
	return st, nil
}
