// Package cluster turns N prognosd processes into one serving fleet. It
// owns three things: token placement (a consistent-hash ring over session
// tokens, hashed with the exact wire.TokenHash the server's shards use),
// the placement policies the ring can run (consistent hashing, or a modulo
// baseline for migration-cost experiments), and the warm-state migration
// engine that ships parked sessions and warm snapshots between nodes over
// the docs/PROTOCOL.md §Migration frames so a drained node's successors
// resume its sessions warm, not cold.
//
// The membership model is deliberately static-per-run: every node and every
// client is configured with the same member list and derives the same ring.
// There is no gossip or consensus — ROADMAP item 2 asks for horizontal
// scale-out with live migration, not a membership protocol. What keeps the
// fleet coherent through drains and restarts is the sticky-session rule
// (ARCHITECTURE.md §Cluster): a node serves any token it holds warm state
// for, even when the ring names another owner, so migrated sessions do not
// bounce back after their origin node returns.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Ring maps session tokens to cluster members. It is safe for concurrent
// use; Add/Remove rebuild the placement under a write lock, which is fine
// because membership changes are per-drain events, not per-record ones.
type Ring struct {
	mu      sync.RWMutex
	policy  Policy
	members []string // sorted, deduplicated
}

// New builds a ring over members (serving addresses) under the given
// placement policy. Members are deduplicated and sorted, so any permutation
// of the same list yields an identical ring on every node.
func New(members []string, policy Policy) (*Ring, error) {
	if policy == nil {
		policy = NewRingPolicy()
	}
	seen := make(map[string]bool, len(members))
	var ms []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(ms)
	policy.Rebuild(ms)
	return &Ring{policy: policy, members: ms}, nil
}

// Members returns the current member list (sorted copy).
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.members...)
}

// Size returns the current member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member that owns token.
func (r *Ring) Owner(token string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.policy.Candidates(TokenHash(token))[0]
}

// Candidates returns every member in placement-preference order for token:
// index 0 is the owner, index 1 the successor a drain migrates the token
// to, and so on. The slice is freshly allocated.
func (r *Ring) Candidates(token string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.policy.Candidates(TokenHash(token))
}

// Contains reports whether addr is a ring member.
func (r *Ring) Contains(addr string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.members {
		if m == addr {
			return true
		}
	}
	return false
}

// Add inserts a member (no-op if present).
func (r *Ring) Add(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m == addr {
			return
		}
	}
	r.members = append(r.members, addr)
	sort.Strings(r.members)
	r.policy.Rebuild(r.members)
}

// Remove deletes a member (no-op if absent). The last member cannot be
// removed: a ring always has an owner for every token.
func (r *Ring) Remove(addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range r.members {
		if m != addr {
			continue
		}
		if len(r.members) == 1 {
			return fmt.Errorf("cluster: cannot remove last member %s", addr)
		}
		r.members = append(r.members[:i], r.members[i+1:]...)
		r.policy.Rebuild(r.members)
		return nil
	}
	return nil
}

// Without returns a new independent ring over the members minus addr, under
// a fresh policy of the same kind. This is the drain computation: the
// successor of every token a draining node holds is Without(self).Owner —
// exactly where the remaining ring will route the token's UE next.
func (r *Ring) Without(addr string) (*Ring, error) {
	r.mu.RLock()
	rest := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != addr {
			rest = append(rest, m)
		}
	}
	name := r.policy.Name()
	r.mu.RUnlock()
	policy, err := NewPolicy(name)
	if err != nil {
		return nil, err
	}
	return New(rest, policy)
}
