package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/wire"
)

// TokenHash is the placement hash: wire.TokenHash, re-exported so callers
// routing outside a Ring (tests, tooling) provably hash the way the ring
// and the server's warm/parked shards do.
func TokenHash(token string) uint64 { return wire.TokenHash(token) }

// Placement policy names accepted by NewPolicy.
const (
	// PolicyNameRing is consistent hashing with virtual nodes: adding or
	// removing one member moves only ~1/N of the token space.
	PolicyNameRing = "ring"
	// PolicyNameMod is the modulo baseline (owner = hash % N): trivially
	// uniform, but any membership change reshuffles almost every token —
	// kept as the worst-case comparison point for migration-cost
	// experiments (EXPERIMENTS.md).
	PolicyNameMod = "mod"
)

// Policy turns a token hash into a member-preference order. Rebuild is
// called under the ring's write lock whenever membership changes;
// Candidates must be safe for concurrent use between rebuilds and must
// return every member exactly once, owner first.
type Policy interface {
	Name() string
	Rebuild(members []string)
	Candidates(h uint64) []string
}

// NewPolicy builds a placement policy by name ("" = ring).
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "", PolicyNameRing:
		return NewRingPolicy(), nil
	case PolicyNameMod:
		return &modPolicy{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q (want %q or %q)", name, PolicyNameRing, PolicyNameMod)
	}
}

// vnodesPerMember is the virtual-node fan-out of the consistent-hash ring.
// 64 points per member keeps member shares reasonable for small fleets
// without making rebuilds or lookups measurable.
const vnodesPerMember = 64

// mix64 is the splitmix64 finalizer. FNV-1a diffuses differences upward
// from the changed byte, so strings differing only near their end (token
// "...ue-7" vs "...ue-8", vnode "host#3" vs "host#4") get hashes that are
// close in the high bits. The shard pickers never notice (h % 16 reads
// well-mixed low bits) but ring positions order by the full 64-bit value,
// which collapsed all of a member's vnodes onto one arc. Both placement
// policies therefore run TokenHash through this bijection first; placement
// remains a pure function of wire.TokenHash.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringPolicy is consistent hashing: each member projects vnodesPerMember
// points onto the hash circle (point = TokenHash(member + "#" + i)), and a
// token belongs to the first point clockwise from its own hash.
type ringPolicy struct {
	points  []ringPoint // sorted by hash
	members []string
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRingPolicy returns the consistent-hash placement policy.
func NewRingPolicy() Policy { return &ringPolicy{} }

func (p *ringPolicy) Name() string { return PolicyNameRing }

func (p *ringPolicy) Rebuild(members []string) {
	p.members = append(p.members[:0], members...)
	p.points = p.points[:0]
	for _, m := range members {
		for i := 0; i < vnodesPerMember; i++ {
			p.points = append(p.points, ringPoint{
				hash:   mix64(TokenHash(m + "#" + strconv.Itoa(i))),
				member: m,
			})
		}
	}
	sort.Slice(p.points, func(i, j int) bool {
		a, b := p.points[i], p.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic under (vanishingly rare) point collisions
	})
}

func (p *ringPolicy) Candidates(h uint64) []string {
	out := make([]string, 0, len(p.members))
	if len(p.points) == 0 {
		return out
	}
	h = mix64(h)
	// First point clockwise from h, wrapping at the top of the circle.
	start := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= h })
	seen := make(map[string]bool, len(p.members))
	for i := 0; i < len(p.points) && len(out) < len(p.members); i++ {
		m := p.points[(start+i)%len(p.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// modPolicy is the modulo baseline: owner = members[h % N], successors in
// rotating order after it.
type modPolicy struct {
	members []string
}

func (p *modPolicy) Name() string { return PolicyNameMod }

func (p *modPolicy) Rebuild(members []string) {
	p.members = append(p.members[:0], members...)
}

func (p *modPolicy) Candidates(h uint64) []string {
	n := len(p.members)
	out := make([]string, 0, n)
	if n == 0 {
		return out
	}
	at := int(h % uint64(n))
	for i := 0; i < n; i++ {
		out = append(out, p.members[(at+i)%n])
	}
	return out
}
