package cluster

import (
	"bufio"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// DetectorConfig configures a Detector. Zero values pick the defaults
// noted per field.
type DetectorConfig struct {
	// Peers are the addresses to probe — normally the ring members minus
	// the local node.
	Peers []string
	// Interval is the probe cadence per peer (default 50ms). Timeout
	// bounds one probe round trip (default Interval, floored at 10ms).
	Interval time.Duration
	Timeout  time.Duration
	// Threshold is the number of consecutive failed probes that confirms
	// a peer down (default 2). With the defaults a crash is confirmed in
	// ~100–150ms — fast enough that a redirected client still has
	// recovery attempts left when the successor starts serving replicas
	// (see docs/ARCHITECTURE.md §Failure model).
	Threshold int
	// OnChange, if set, is called once per confirmed transition: down=true
	// when a peer crosses Threshold misses, down=false when a confirmed-
	// down peer answers again. Called from the probe loop; keep it cheap.
	OnChange func(peer string, down bool)
	// Probe overrides the probe implementation (tests). The default is
	// ProbeStats: a full stats-hello round trip, so "up" means "serving
	// the session protocol", not merely "port open".
	Probe func(addr string, timeout time.Duration) error
}

// Detector is a lightweight crash-failure detector: it probes the
// configured peers on a fixed interval and confirms a peer down after
// Threshold consecutive probe failures. Confirmation is deliberately the
// only signal the serving path trusts — replicated session state outranks
// ring ownership solely for peers the detector currently holds down — so
// a slow peer costs redirects, never split-brain serving.
type Detector struct {
	cfg DetectorConfig

	mu   sync.Mutex
	miss map[string]int
	down map[string]bool

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewDetector builds a detector; call Start to begin probing.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.Interval <= 0 {
		cfg.Interval = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.Timeout < 10*time.Millisecond {
		cfg.Timeout = 10 * time.Millisecond
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 2
	}
	if cfg.Probe == nil {
		cfg.Probe = ProbeStats
	}
	return &Detector{
		cfg:  cfg,
		miss: make(map[string]int, len(cfg.Peers)),
		down: make(map[string]bool, len(cfg.Peers)),
		done: make(chan struct{}),
	}
}

// Start launches the probe loop. Idempotent with Stop: Start-Stop pairs
// once per detector.
func (d *Detector) Start() {
	d.wg.Add(1)
	go d.loop()
}

// Stop halts probing and waits for in-flight probes to finish.
func (d *Detector) Stop() {
	d.once.Do(func() { close(d.done) })
	d.wg.Wait()
}

// Down reports whether peer is currently confirmed down.
func (d *Detector) Down(peer string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down[peer]
}

// Suspects returns the number of peers currently confirmed down.
func (d *Detector) Suspects() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, v := range d.down {
		if v {
			n++
		}
	}
	return n
}

func (d *Detector) loop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, peer := range d.cfg.Peers {
			wg.Add(1)
			go func(peer string) {
				defer wg.Done()
				d.record(peer, d.cfg.Probe(peer, d.cfg.Timeout) == nil)
			}(peer)
		}
		wg.Wait()
	}
}

// record folds one probe verdict into the per-peer miss counter and fires
// OnChange on confirmed transitions.
func (d *Detector) record(peer string, ok bool) {
	var changed, down bool
	d.mu.Lock()
	if ok {
		d.miss[peer] = 0
		if d.down[peer] {
			d.down[peer] = false
			changed, down = true, false
		}
	} else {
		d.miss[peer]++
		if d.miss[peer] >= d.cfg.Threshold && !d.down[peer] {
			d.down[peer] = true
			changed, down = true, true
		}
	}
	d.mu.Unlock()
	if changed && d.cfg.OnChange != nil {
		d.cfg.OnChange(peer, down)
	}
}

// ProbeStats performs one liveness probe against a prognosd node: dial,
// send a {"stats":true} hello, read the one-line answer. A full protocol
// round trip — rather than a bare TCP connect — both proves the node is
// actually serving and keeps the probe invisible to the peer's session
// accounting (stats queries are never counted as sessions or errors;
// a half-open connect would be logged as a bad hello).
func ProbeStats(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	if _, err := conn.Write([]byte("{\"stats\":true}\n")); err != nil {
		return err
	}
	_, err = wire.ReadLine(bufio.NewReader(conn), wire.MaxLineBytes)
	return err
}
