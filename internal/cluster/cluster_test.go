package cluster

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return out
}

func tokens(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fleet-1-ue-%d", i)
	}
	return out
}

// TestRingDeterminism pins the property everything else rests on: every
// node (and every client) building a ring from any permutation of the same
// member list must agree on every token's full candidate order.
func TestRingDeterminism(t *testing.T) {
	for _, policy := range []string{PolicyNameRing, PolicyNameMod} {
		t.Run(policy, func(t *testing.T) {
			ms := members(5)
			permuted := []string{ms[3], ms[0], ms[4], ms[2], ms[1], ms[0]} // shuffled + duplicate
			pa, _ := NewPolicy(policy)
			pb, _ := NewPolicy(policy)
			a, err := New(ms, pa)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(permuted, pb)
			if err != nil {
				t.Fatal(err)
			}
			for _, tok := range tokens(500) {
				ca, cb := a.Candidates(tok), b.Candidates(tok)
				if fmt.Sprint(ca) != fmt.Sprint(cb) {
					t.Fatalf("candidate order diverges for %q: %v vs %v", tok, ca, cb)
				}
				if len(ca) != 5 {
					t.Fatalf("candidates for %q: %v, want all 5 members", tok, ca)
				}
				seen := map[string]bool{}
				for _, m := range ca {
					if seen[m] {
						t.Fatalf("duplicate member %s in candidates %v", m, ca)
					}
					seen[m] = true
				}
				if a.Owner(tok) != ca[0] {
					t.Fatalf("Owner disagrees with Candidates[0] for %q", tok)
				}
			}
		})
	}
}

// TestRingHashAgreesWithServerShards pins the routing hash to
// wire.TokenHash — the equivalence the satellite task asks for: the ring
// places tokens with the exact function the server's warm slots and parked
// shards pick shards with.
func TestRingHashAgreesWithServerShards(t *testing.T) {
	for _, tok := range tokens(64) {
		if TokenHash(tok) != wire.TokenHash(tok) {
			t.Fatalf("cluster.TokenHash(%q) != wire.TokenHash", tok)
		}
	}
}

// TestRingDistribution checks the consistent-hash ring spreads tokens
// acceptably: with 64 vnodes/member no member should be starved or hold a
// grossly outsized share.
func TestRingDistribution(t *testing.T) {
	ms := members(3)
	r, err := New(ms, NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for _, tok := range tokens(n) {
		counts[r.Owner(tok)]++
	}
	for _, m := range ms {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.1f%% of %d tokens (counts %v)", m, share*100, n, counts)
		}
	}
}

// TestRingMinimalMovement pins the point of consistent hashing: removing
// one of N members must move only that member's tokens — every token owned
// by a surviving member keeps its owner. The mod baseline intentionally
// lacks this property (it reshuffles nearly everything), which is why it
// exists as the migration-cost worst case.
func TestRingMinimalMovement(t *testing.T) {
	ms := members(4)
	r, err := New(ms, NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	gone := ms[2]
	shrunk, err := r.Without(gone)
	if err != nil {
		t.Fatal(err)
	}
	if shrunk.Size() != 3 || shrunk.Contains(gone) {
		t.Fatalf("Without(%s): members %v", gone, shrunk.Members())
	}
	moved := 0
	for _, tok := range tokens(2000) {
		before, after := r.Owner(tok), shrunk.Owner(tok)
		if before == gone {
			moved++
			// The successor must be the drained ring's choice AND the
			// original ring's second candidate — that identity is what
			// lets a draining node compute its successors locally.
			if want := r.Candidates(tok)[1]; after != want {
				t.Fatalf("token %q: successor %s, want original second candidate %s", tok, after, want)
			}
			continue
		}
		if before != after {
			t.Fatalf("token %q moved %s→%s though its owner survived", tok, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no tokens; distribution test should have caught this")
	}
}

// TestRingAddRemove exercises mutable membership round trips.
func TestRingAddRemove(t *testing.T) {
	ms := members(3)
	r, err := New(ms, NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	r.Add("127.0.0.1:9100")
	r.Add("127.0.0.1:9100") // idempotent
	if r.Size() != 4 {
		t.Fatalf("size after add: %d", r.Size())
	}
	if err := r.Remove("127.0.0.1:9100"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("127.0.0.1:9100"); err != nil { // absent: no-op
		t.Fatal(err)
	}
	if fmt.Sprint(r.Members()) != fmt.Sprint(ms) {
		t.Fatalf("members after add/remove round trip: %v", r.Members())
	}
	one, err := New(ms[:1], NewRingPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Remove(ms[0]); err == nil {
		t.Fatal("removing the last member succeeded")
	}
}

// TestRingRejectsBadInput pins constructor validation.
func TestRingRejectsBadInput(t *testing.T) {
	if _, err := New(nil, NewRingPolicy()); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New([]string{"a", ""}, NewRingPolicy()); err == nil {
		t.Error("empty member address accepted")
	}
	if _, err := NewPolicy("nonsense"); err == nil {
		t.Error("unknown policy name accepted")
	}
}

// TestModPolicyRotation pins the baseline policy's candidate order.
func TestModPolicyRotation(t *testing.T) {
	p, _ := NewPolicy(PolicyNameMod)
	p.Rebuild([]string{"a", "b", "c"})
	got := p.Candidates(4) // 4 % 3 == 1
	want := []string{"b", "c", "a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("candidates %v, want %v", got, want)
	}
}
