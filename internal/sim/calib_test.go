package sim

import (
	"testing"

	"repro/internal/cellular"
	"repro/internal/topology"
)

// TestCalibration asserts the emergent §5.1 handover-frequency shape on a
// freeway: SA < LTE < NSA in HOs per km, with LTE near the paper's
// one-per-0.6 km and the NSA event mix containing every NSA procedure type.
func TestCalibration(t *testing.T) {
	perKm := func(carrier topology.CarrierProfile, arch cellular.Arch) (float64, map[cellular.HOType]int) {
		log, err := Run(freewayConfig(carrier, arch, 7))
		if err != nil {
			t.Fatal(err)
		}
		counts := map[cellular.HOType]int{}
		for _, h := range log.Handovers {
			counts[h.Type]++
		}
		rate := float64(len(log.Handovers)) / log.DistanceKM()
		t.Logf("%s/%s: %.2f HO/km (every %.2f km) %v", carrier.Name, arch, rate, 1/rate, counts)
		return rate, counts
	}

	lteRate, _ := perKm(topology.OpX(), cellular.ArchLTE)
	nsaRate, nsaCounts := perKm(topology.OpX(), cellular.ArchNSA)
	saRate, _ := perKm(topology.OpY(), cellular.ArchSA)

	if lteRate < 1.0 || lteRate > 2.5 {
		t.Errorf("LTE HO rate %.2f/km; want ≈1.7 (every 0.6 km, §5.1)", lteRate)
	}
	if nsaRate <= lteRate {
		t.Errorf("NSA rate %.2f/km must exceed LTE %.2f/km (§5.1)", nsaRate, lteRate)
	}
	if saRate >= lteRate {
		t.Errorf("SA rate %.2f/km must be below LTE %.2f/km (§5.1)", saRate, lteRate)
	}
	for _, typ := range []cellular.HOType{cellular.HOSCGA, cellular.HOSCGR, cellular.HOSCGM, cellular.HOSCGC, cellular.HOMNBH} {
		if nsaCounts[typ] == 0 {
			t.Errorf("NSA freeway drive produced no %s procedures", typ)
		}
	}
}
