package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/ran"
	"repro/internal/trace"
)

// logHash hashes a trace exactly as the golden tests do.
func logHash(t *testing.T, log *trace.Log) string {
	t.Helper()
	h := sha256.New()
	if err := log.Write(h); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestAdaptiveDisabledMatchesStatic pins the closed-loop layer's most
// important invariant: a drive with Adaptive nil, all-off, or run through
// RunClosedLoop reproduces the static golden configuration byte-for-byte.
// Every adaptive behaviour is gated on an enabled controller, and this test
// is what keeps that gate honest across every golden case.
func TestAdaptiveDisabledMatchesStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("drives every golden case three ways")
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.Carrier+"-"+c.Arch.String()+"-"+c.Route.String()+"-"+
			string(rune('0'+c.Seed/100)), func(t *testing.T) {
			t.Parallel()
			base := goldenConfig(c, t)
			staticLog, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			want := logHash(t, staticLog)

			cases := []struct {
				name string
				cfg  *ran.AdaptiveConfig
			}{
				{"nil", nil},
				{"all-off", &ran.AdaptiveConfig{}},
			}
			for _, tc := range cases {
				cfg := base
				cfg.Adaptive = tc.cfg
				log, loop, err := RunClosedLoop(cfg)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				if got := logHash(t, log); got != want {
					t.Errorf("%s: RunClosedLoop trace diverged from static Run", tc.name)
				}
				if loop.Ticks != nil || loop.Stats.Forecasts != 0 {
					t.Errorf("%s: disabled run produced closed-loop by-product", tc.name)
				}
			}
		})
	}
}

// TestAdaptiveDeterministic pins that an enabled closed-loop drive is a pure
// function of its Config: same seed, same trace bytes, same controller
// stats.
func TestAdaptiveDeterministic(t *testing.T) {
	cfg := goldenConfig(goldenCases()[2], t) // OpX NSA city loop, seed 101
	cfg.Adaptive = ran.DefaultAdaptive()
	log1, loop1, err := RunClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log2, loop2, err := RunClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1, h2 := logHash(t, log1), logHash(t, log2); h1 != h2 {
		t.Errorf("adaptive trace not deterministic: %s vs %s", h1, h2)
	}
	if loop1.Stats != loop2.Stats {
		t.Errorf("adaptive stats not deterministic:\n  %+v\n  %+v", loop1.Stats, loop2.Stats)
	}
	if len(loop1.Ticks) != len(loop2.Ticks) {
		t.Fatalf("tick counts differ: %d vs %d", len(loop1.Ticks), len(loop2.Ticks))
	}
	if len(loop1.Ticks) != len(log1.Samples) {
		t.Errorf("expected one in-loop prediction per sample: %d ticks, %d samples",
			len(loop1.Ticks), len(log1.Samples))
	}
}

// TestAdaptiveActsOnCityDrive asserts the controller actually engages on the
// city reference drive: forecasts arm, and an enabled drive's trace diverges
// from the static one (the loop is closed, not decorative). The fleet-level
// ping-pong reduction bar lives in the experiments holoop test and the
// `vivisect holoop -gate` CI job, where the aggregate is statistically
// meaningful; a single drive's ping-pong delta is too noisy to pin.
func TestAdaptiveActsOnCityDrive(t *testing.T) {
	cfg := goldenConfig(goldenCases()[2], t) // OpX NSA city loop, seed 101
	staticLog, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = ran.DefaultAdaptive()
	adaptLog, loop, err := RunClosedLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if loop.Stats.Forecasts == 0 {
		t.Error("controller armed no forecasts on the city drive")
	}
	if loop.Stats.EarlyPreps == 0 && loop.Stats.SkipAheads == 0 && loop.Stats.Reconfigs == 0 {
		t.Errorf("controller took no actions: %+v", loop.Stats)
	}
	if logHash(t, staticLog) == logHash(t, adaptLog) {
		t.Error("adaptive drive is byte-identical to static: the loop is not closed")
	}
}
