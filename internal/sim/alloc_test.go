package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/topology"
	"repro/internal/trace"
)

// warmedState builds a state and advances it through its first few hundred
// ticks so every lazily created per-cell process (shadow fields, blockage,
// L3 slots) and scratch buffer on the measured stretch already exists.
func warmedState(t testing.TB, cfg Config) (*state, geo.Point) {
	t.Helper()
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	route := geo.Generate(cfg.RouteKind, rng, cfg.RouteLengthM)
	dep := topology.Generate(cfg.Carrier, route, rng, cfg.TopoOpts)
	s := newState(cfg, route, dep, rng)

	s.scan(route.At(0))
	if cfg.Arch == cellular.ArchSA {
		if o, ok := best(s.obsNR, nil); ok {
			s.nrCell = o.cell
		}
	} else {
		if o, ok := best(s.obsLTE, nil); ok {
			s.lteCell = o.cell
		}
	}
	dt := trace.SamplePeriod
	step := cfg.SpeedMPS * dt.Seconds()
	for i := 0; i < 400; i++ {
		s.tick(s.route.At(s.odo), dt)
		s.now += dt
		s.ticks++
		s.odo += step
	}
	return s, s.route.At(s.odo)
}

// TestSteadyStateTickZeroAllocs pins the per-tick compute path — grid walk,
// per-cell observation/filtering, measurement-input assembly including
// SINR/interferer collection — to zero heap allocations. Excluded by design
// are the sinks that allocate when output is produced (trace.Log appends,
// measurement-report emission) and one-time lazy initialisation; those are
// either amortised growth of the result or cold-path work.
func TestSteadyStateTickZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"NSA-freeway", Config{
			Carrier: topology.OpX(), Arch: cellular.ArchNSA,
			RouteKind: geo.RouteFreeway, RouteLengthM: 6000, SpeedMPS: 29, Seed: 7,
		}},
		{"SA-city", Config{
			Carrier: topology.OpY(), Arch: cellular.ArchSA,
			RouteKind: geo.RouteCityLoop, RouteLengthM: 1600, SpeedMPS: 8, Seed: 11,
			TopoOpts: topology.Options{CityDensity: 0.7},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, p := warmedState(t, tc.cfg)
			avg := testing.AllocsPerRun(200, func() {
				s.scan(p)
				in := s.buildMeasInput(p)
				_ = in
			})
			if avg != 0 {
				t.Errorf("steady-state scan+measurement path allocates %.2f times per tick, want 0", avg)
			}
		})
	}
}
