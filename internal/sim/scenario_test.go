package sim

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/cellular"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/policygen"
	"repro/internal/topology"
)

// TestScenarioBaseMatchesNamedCarrier: a Scenario whose base is the builtin
// portfolio of a named carrier produces the byte-identical trace the
// named-carrier path produces — the policy-as-data plumbing adds nothing.
func TestScenarioBaseMatchesNamedCarrier(t *testing.T) {
	for _, carrier := range []string{"OpX", "OpY", "OpZ"} {
		base := policygen.BuiltinOrDefault(carrier)
		named := Config{
			Carrier: base.Deployment, Arch: cellular.ArchNSA,
			RouteLengthM: 4000, SpeedMPS: 20, Seed: 42,
		}
		scen := named
		scen.Scenario = &policygen.Scenario{Base: base}
		a, err := Run(named)
		if err != nil {
			t.Fatalf("%s named: %v", carrier, err)
		}
		b, err := Run(scen)
		if err != nil {
			t.Fatalf("%s scenario: %v", carrier, err)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if string(ja) != string(jb) {
			t.Errorf("%s: scenario trace differs from named-carrier trace", carrier)
		}
	}
}

// TestDriftRewritesPolicyMidRun: a mid-run drift changes the drive from the
// drift point on (and only from there), and emits one EvPolicyDrift event.
func TestDriftRewritesPolicyMidRun(t *testing.T) {
	base := policygen.Generate(5, 0)
	// A drifted portfolio with visibly different dynamics is practically
	// guaranteed by the continuous threshold sampling.
	drift := policygen.Drifted(5, 0)
	driftAt := 100 * time.Second

	mk := func(scen *policygen.Scenario, tr *obs.Tracer) Config {
		return Config{
			Carrier: base.Deployment, Arch: cellular.ArchNSA,
			RouteKind: geo.RouteCityLoop, RouteLengthM: 2400, Laps: 3,
			SpeedMPS: 8, Seed: 9, Scenario: scen, Tracer: tr,
			TopoOpts: topology.Options{CityDensity: 0.7},
		}
	}

	tr := obs.NewTracer(128)
	plain, err := Run(mk(&policygen.Scenario{Base: base}, nil))
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := Run(mk(&policygen.Scenario{
		Base:   base,
		Drifts: []policygen.Drift{{At: driftAt, Portfolio: drift}},
	}, tr))
	if err != nil {
		t.Fatal(err)
	}

	// Identical before the drift point...
	pre := func(rs []cellular.MeasurementReport) []cellular.MeasurementReport {
		var out []cellular.MeasurementReport
		for _, r := range rs {
			if r.Time < driftAt {
				out = append(out, r)
			}
		}
		return out
	}
	if !reflect.DeepEqual(pre(plain.Reports), pre(drifted.Reports)) {
		t.Error("reports before the drift point differ")
	}
	// ...and genuinely different after it.
	if reflect.DeepEqual(plain.Reports, drifted.Reports) {
		t.Error("drift had no effect on the report stream")
	}

	found := false
	for _, ev := range tr.Events() {
		if ev.Kind == obs.EvPolicyDrift {
			found = true
			if got := time.Duration(ev.SimMS) * time.Millisecond; got < driftAt {
				t.Errorf("drift event at sim %v, before its schedule %v", got, driftAt)
			}
		}
	}
	if !found {
		t.Error("no EvPolicyDrift event traced")
	}
}
